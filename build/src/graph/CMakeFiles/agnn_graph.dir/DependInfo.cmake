
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/erdos_renyi.cpp" "src/graph/CMakeFiles/agnn_graph.dir/erdos_renyi.cpp.o" "gcc" "src/graph/CMakeFiles/agnn_graph.dir/erdos_renyi.cpp.o.d"
  "/root/repo/src/graph/io.cpp" "src/graph/CMakeFiles/agnn_graph.dir/io.cpp.o" "gcc" "src/graph/CMakeFiles/agnn_graph.dir/io.cpp.o.d"
  "/root/repo/src/graph/kronecker.cpp" "src/graph/CMakeFiles/agnn_graph.dir/kronecker.cpp.o" "gcc" "src/graph/CMakeFiles/agnn_graph.dir/kronecker.cpp.o.d"
  "/root/repo/src/graph/sbm.cpp" "src/graph/CMakeFiles/agnn_graph.dir/sbm.cpp.o" "gcc" "src/graph/CMakeFiles/agnn_graph.dir/sbm.cpp.o.d"
  "/root/repo/src/graph/small_world.cpp" "src/graph/CMakeFiles/agnn_graph.dir/small_world.cpp.o" "gcc" "src/graph/CMakeFiles/agnn_graph.dir/small_world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
