file(REMOVE_RECURSE
  "CMakeFiles/agnn_graph.dir/erdos_renyi.cpp.o"
  "CMakeFiles/agnn_graph.dir/erdos_renyi.cpp.o.d"
  "CMakeFiles/agnn_graph.dir/io.cpp.o"
  "CMakeFiles/agnn_graph.dir/io.cpp.o.d"
  "CMakeFiles/agnn_graph.dir/kronecker.cpp.o"
  "CMakeFiles/agnn_graph.dir/kronecker.cpp.o.d"
  "CMakeFiles/agnn_graph.dir/sbm.cpp.o"
  "CMakeFiles/agnn_graph.dir/sbm.cpp.o.d"
  "CMakeFiles/agnn_graph.dir/small_world.cpp.o"
  "CMakeFiles/agnn_graph.dir/small_world.cpp.o.d"
  "libagnn_graph.a"
  "libagnn_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agnn_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
