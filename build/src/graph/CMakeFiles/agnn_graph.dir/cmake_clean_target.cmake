file(REMOVE_RECURSE
  "libagnn_graph.a"
)
