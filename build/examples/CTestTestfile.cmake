# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[example_quickstart]=] "/root/repo/build/examples/quickstart")
set_tests_properties([=[example_quickstart]=] PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_node_classification]=] "/root/repo/build/examples/node_classification")
set_tests_properties([=[example_node_classification]=] PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_distributed_training]=] "/root/repo/build/examples/distributed_training")
set_tests_properties([=[example_distributed_training]=] PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_programmable_models]=] "/root/repo/build/examples/programmable_models")
set_tests_properties([=[example_programmable_models]=] PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_semiring_analytics]=] "/root/repo/build/examples/semiring_analytics")
set_tests_properties([=[example_semiring_analytics]=] PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_graph_analytics]=] "/root/repo/build/examples/graph_analytics")
set_tests_properties([=[example_graph_analytics]=] PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_unified_bench]=] "/root/repo/build/examples/unified_bench")
set_tests_properties([=[example_unified_bench]=] PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_checkpoint_workflow]=] "/root/repo/build/examples/checkpoint_workflow")
set_tests_properties([=[example_checkpoint_workflow]=] PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_reproduce_headlines]=] "/root/repo/build/examples/reproduce_headlines")
set_tests_properties([=[example_reproduce_headlines]=] PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
