file(REMOVE_RECURSE
  "CMakeFiles/semiring_analytics.dir/semiring_analytics.cpp.o"
  "CMakeFiles/semiring_analytics.dir/semiring_analytics.cpp.o.d"
  "semiring_analytics"
  "semiring_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semiring_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
