# Empty dependencies file for semiring_analytics.
# This may be replaced when dependencies are built.
