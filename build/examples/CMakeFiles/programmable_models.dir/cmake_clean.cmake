file(REMOVE_RECURSE
  "CMakeFiles/programmable_models.dir/programmable_models.cpp.o"
  "CMakeFiles/programmable_models.dir/programmable_models.cpp.o.d"
  "programmable_models"
  "programmable_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/programmable_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
