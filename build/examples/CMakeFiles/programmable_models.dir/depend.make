# Empty dependencies file for programmable_models.
# This may be replaced when dependencies are built.
