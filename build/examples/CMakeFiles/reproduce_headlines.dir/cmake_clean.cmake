file(REMOVE_RECURSE
  "CMakeFiles/reproduce_headlines.dir/reproduce_headlines.cpp.o"
  "CMakeFiles/reproduce_headlines.dir/reproduce_headlines.cpp.o.d"
  "reproduce_headlines"
  "reproduce_headlines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reproduce_headlines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
