# Empty dependencies file for reproduce_headlines.
# This may be replaced when dependencies are built.
