file(REMOVE_RECURSE
  "CMakeFiles/unified_bench.dir/unified_bench.cpp.o"
  "CMakeFiles/unified_bench.dir/unified_bench.cpp.o.d"
  "unified_bench"
  "unified_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unified_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
