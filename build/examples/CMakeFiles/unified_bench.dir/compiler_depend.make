# Empty compiler generated dependencies file for unified_bench.
# This may be replaced when dependencies are built.
