file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_makg.dir/bench_fig7_makg.cpp.o"
  "CMakeFiles/bench_fig7_makg.dir/bench_fig7_makg.cpp.o.d"
  "bench_fig7_makg"
  "bench_fig7_makg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_makg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
