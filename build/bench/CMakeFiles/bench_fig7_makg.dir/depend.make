# Empty dependencies file for bench_fig7_makg.
# This may be replaced when dependencies are built.
