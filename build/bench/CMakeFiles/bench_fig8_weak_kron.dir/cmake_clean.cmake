file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_weak_kron.dir/bench_fig8_weak_kron.cpp.o"
  "CMakeFiles/bench_fig8_weak_kron.dir/bench_fig8_weak_kron.cpp.o.d"
  "bench_fig8_weak_kron"
  "bench_fig8_weak_kron.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_weak_kron.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
