# Empty dependencies file for bench_fig8_weak_kron.
# This may be replaced when dependencies are built.
