# Empty dependencies file for bench_fig7_weak_rand.
# This may be replaced when dependencies are built.
