file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_weak_rand.dir/bench_fig7_weak_rand.cpp.o"
  "CMakeFiles/bench_fig7_weak_rand.dir/bench_fig7_weak_rand.cpp.o.d"
  "bench_fig7_weak_rand"
  "bench_fig7_weak_rand.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_weak_rand.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
