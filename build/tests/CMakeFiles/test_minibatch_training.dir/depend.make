# Empty dependencies file for test_minibatch_training.
# This may be replaced when dependencies are built.
