file(REMOVE_RECURSE
  "CMakeFiles/test_minibatch_training.dir/test_minibatch_training.cpp.o"
  "CMakeFiles/test_minibatch_training.dir/test_minibatch_training.cpp.o.d"
  "test_minibatch_training"
  "test_minibatch_training.pdb"
  "test_minibatch_training[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_minibatch_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
