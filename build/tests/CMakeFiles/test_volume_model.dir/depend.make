# Empty dependencies file for test_volume_model.
# This may be replaced when dependencies are built.
