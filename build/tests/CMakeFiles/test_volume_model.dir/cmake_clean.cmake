file(REMOVE_RECURSE
  "CMakeFiles/test_volume_model.dir/test_volume_model.cpp.o"
  "CMakeFiles/test_volume_model.dir/test_volume_model.cpp.o.d"
  "test_volume_model"
  "test_volume_model.pdb"
  "test_volume_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_volume_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
