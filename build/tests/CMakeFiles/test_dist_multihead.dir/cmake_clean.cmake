file(REMOVE_RECURSE
  "CMakeFiles/test_dist_multihead.dir/test_dist_multihead.cpp.o"
  "CMakeFiles/test_dist_multihead.dir/test_dist_multihead.cpp.o.d"
  "test_dist_multihead"
  "test_dist_multihead.pdb"
  "test_dist_multihead[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dist_multihead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
