# Empty compiler generated dependencies file for test_dist_multihead.
# This may be replaced when dependencies are built.
