# Empty compiler generated dependencies file for test_dense_ops.
# This may be replaced when dependencies are built.
