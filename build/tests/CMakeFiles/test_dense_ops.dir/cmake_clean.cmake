file(REMOVE_RECURSE
  "CMakeFiles/test_dense_ops.dir/test_dense_ops.cpp.o"
  "CMakeFiles/test_dense_ops.dir/test_dense_ops.cpp.o.d"
  "test_dense_ops"
  "test_dense_ops.pdb"
  "test_dense_ops[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dense_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
