file(REMOVE_RECURSE
  "CMakeFiles/test_csr_matrix.dir/test_csr_matrix.cpp.o"
  "CMakeFiles/test_csr_matrix.dir/test_csr_matrix.cpp.o.d"
  "test_csr_matrix"
  "test_csr_matrix.pdb"
  "test_csr_matrix[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_csr_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
