# Empty compiler generated dependencies file for test_local_baseline.
# This may be replaced when dependencies are built.
