file(REMOVE_RECURSE
  "CMakeFiles/test_models_forward.dir/test_models_forward.cpp.o"
  "CMakeFiles/test_models_forward.dir/test_models_forward.cpp.o.d"
  "test_models_forward"
  "test_models_forward.pdb"
  "test_models_forward[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_models_forward.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
