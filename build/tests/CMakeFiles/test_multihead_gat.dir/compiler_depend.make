# Empty compiler generated dependencies file for test_multihead_gat.
# This may be replaced when dependencies are built.
