file(REMOVE_RECURSE
  "CMakeFiles/test_multihead_gat.dir/test_multihead_gat.cpp.o"
  "CMakeFiles/test_multihead_gat.dir/test_multihead_gat.cpp.o.d"
  "test_multihead_gat"
  "test_multihead_gat.pdb"
  "test_multihead_gat[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multihead_gat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
