# Empty dependencies file for test_dist_primitives.
# This may be replaced when dependencies are built.
