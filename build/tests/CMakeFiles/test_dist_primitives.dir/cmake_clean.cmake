file(REMOVE_RECURSE
  "CMakeFiles/test_dist_primitives.dir/test_dist_primitives.cpp.o"
  "CMakeFiles/test_dist_primitives.dir/test_dist_primitives.cpp.o.d"
  "test_dist_primitives"
  "test_dist_primitives.pdb"
  "test_dist_primitives[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dist_primitives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
