file(REMOVE_RECURSE
  "CMakeFiles/test_dist_local_baseline.dir/test_dist_local_baseline.cpp.o"
  "CMakeFiles/test_dist_local_baseline.dir/test_dist_local_baseline.cpp.o.d"
  "test_dist_local_baseline"
  "test_dist_local_baseline.pdb"
  "test_dist_local_baseline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dist_local_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
