# Empty dependencies file for test_dist_local_baseline.
# This may be replaced when dependencies are built.
