file(REMOVE_RECURSE
  "CMakeFiles/test_dist_integration.dir/test_dist_integration.cpp.o"
  "CMakeFiles/test_dist_integration.dir/test_dist_integration.cpp.o.d"
  "test_dist_integration"
  "test_dist_integration.pdb"
  "test_dist_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dist_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
