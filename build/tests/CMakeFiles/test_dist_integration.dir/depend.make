# Empty dependencies file for test_dist_integration.
# This may be replaced when dependencies are built.
