# Empty compiler generated dependencies file for test_graph_generators.
# This may be replaced when dependencies are built.
