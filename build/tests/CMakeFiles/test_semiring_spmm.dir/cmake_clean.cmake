file(REMOVE_RECURSE
  "CMakeFiles/test_semiring_spmm.dir/test_semiring_spmm.cpp.o"
  "CMakeFiles/test_semiring_spmm.dir/test_semiring_spmm.cpp.o.d"
  "test_semiring_spmm"
  "test_semiring_spmm.pdb"
  "test_semiring_spmm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_semiring_spmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
