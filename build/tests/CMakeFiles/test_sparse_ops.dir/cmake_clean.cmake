file(REMOVE_RECURSE
  "CMakeFiles/test_sparse_ops.dir/test_sparse_ops.cpp.o"
  "CMakeFiles/test_sparse_ops.dir/test_sparse_ops.cpp.o.d"
  "test_sparse_ops"
  "test_sparse_ops.pdb"
  "test_sparse_ops[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sparse_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
