file(REMOVE_RECURSE
  "CMakeFiles/test_serialization_reorder.dir/test_serialization_reorder.cpp.o"
  "CMakeFiles/test_serialization_reorder.dir/test_serialization_reorder.cpp.o.d"
  "test_serialization_reorder"
  "test_serialization_reorder.pdb"
  "test_serialization_reorder[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_serialization_reorder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
