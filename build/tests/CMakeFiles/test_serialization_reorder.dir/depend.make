# Empty dependencies file for test_serialization_reorder.
# This may be replaced when dependencies are built.
