file(REMOVE_RECURSE
  "CMakeFiles/test_fused_kernels.dir/test_fused_kernels.cpp.o"
  "CMakeFiles/test_fused_kernels.dir/test_fused_kernels.cpp.o.d"
  "test_fused_kernels"
  "test_fused_kernels.pdb"
  "test_fused_kernels[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fused_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
