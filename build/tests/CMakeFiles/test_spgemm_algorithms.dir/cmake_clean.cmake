file(REMOVE_RECURSE
  "CMakeFiles/test_spgemm_algorithms.dir/test_spgemm_algorithms.cpp.o"
  "CMakeFiles/test_spgemm_algorithms.dir/test_spgemm_algorithms.cpp.o.d"
  "test_spgemm_algorithms"
  "test_spgemm_algorithms.pdb"
  "test_spgemm_algorithms[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spgemm_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
