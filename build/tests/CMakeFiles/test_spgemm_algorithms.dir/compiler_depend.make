# Empty compiler generated dependencies file for test_spgemm_algorithms.
# This may be replaced when dependencies are built.
