# Empty compiler generated dependencies file for test_more_generators.
# This may be replaced when dependencies are built.
