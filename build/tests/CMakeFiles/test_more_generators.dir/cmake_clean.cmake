file(REMOVE_RECURSE
  "CMakeFiles/test_more_generators.dir/test_more_generators.cpp.o"
  "CMakeFiles/test_more_generators.dir/test_more_generators.cpp.o.d"
  "test_more_generators"
  "test_more_generators.pdb"
  "test_more_generators[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_more_generators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
