# Empty dependencies file for test_generic_layer.
# This may be replaced when dependencies are built.
