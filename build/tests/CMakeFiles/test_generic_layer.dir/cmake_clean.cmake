file(REMOVE_RECURSE
  "CMakeFiles/test_generic_layer.dir/test_generic_layer.cpp.o"
  "CMakeFiles/test_generic_layer.dir/test_generic_layer.cpp.o.d"
  "test_generic_layer"
  "test_generic_layer.pdb"
  "test_generic_layer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_generic_layer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
