# Empty compiler generated dependencies file for test_activations_loss.
# This may be replaced when dependencies are built.
