# Empty dependencies file for test_dist_gnn.
# This may be replaced when dependencies are built.
