file(REMOVE_RECURSE
  "CMakeFiles/test_dist_gnn.dir/test_dist_gnn.cpp.o"
  "CMakeFiles/test_dist_gnn.dir/test_dist_gnn.cpp.o.d"
  "test_dist_gnn"
  "test_dist_gnn.pdb"
  "test_dist_gnn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dist_gnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
