# Empty dependencies file for test_execution_dag.
# This may be replaced when dependencies are built.
