file(REMOVE_RECURSE
  "CMakeFiles/test_execution_dag.dir/test_execution_dag.cpp.o"
  "CMakeFiles/test_execution_dag.dir/test_execution_dag.cpp.o.d"
  "test_execution_dag"
  "test_execution_dag.pdb"
  "test_execution_dag[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_execution_dag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
