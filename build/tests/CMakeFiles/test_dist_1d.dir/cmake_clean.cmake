file(REMOVE_RECURSE
  "CMakeFiles/test_dist_1d.dir/test_dist_1d.cpp.o"
  "CMakeFiles/test_dist_1d.dir/test_dist_1d.cpp.o.d"
  "test_dist_1d"
  "test_dist_1d.pdb"
  "test_dist_1d[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dist_1d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
