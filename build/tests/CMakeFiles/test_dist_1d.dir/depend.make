# Empty dependencies file for test_dist_1d.
# This may be replaced when dependencies are built.
