// Serving quickstart: stand up the online inference server — request
// batcher, layer-wise neighbor sampler, hot-vertex feature cache — and
// drive it with a few closed-loop Zipf clients.
//
//   ./build/examples/serving_quickstart
//   AGNN_TRACE=1 ./build/examples/serving_quickstart  # writes trace_serving.json
//
// Like every example, this is also a smoke test: each reply is checked
// bitwise against the unbatched sequential pipeline (same request seed =>
// same sampled subgraph => same floats), so a nonzero exit means the
// serving path diverged.
#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include "core/model.hpp"
#include "graph/graph.hpp"
#include "graph/kronecker.hpp"
#include "obs/trace.hpp"
#include "serve/server.hpp"
#include "serve/zipf.hpp"

int main() {
  using namespace agnn;

  // 0. Optional tracing: AGNN_TRACE=1 records every serving stage
  //    (enqueue -> batch -> sample -> gather -> forward -> reply) into
  //    trace_serving.json for https://ui.perfetto.dev.
  const obs::TraceSession trace("trace_serving.json");

  // 1. A graph and a trained-or-loaded model (random weights here).
  graph::KroneckerParams params;
  params.scale = 11;
  params.edges = 40000;
  graph::BuildOptions opt;
  opt.add_self_loops = true;
  const auto g =
      graph::build_graph<float>(graph::generate_kronecker(params), opt);

  GnnConfig cfg;
  cfg.kind = ModelKind::kGAT;
  cfg.in_features = 16;
  cfg.layer_widths = {16, 4};
  cfg.hidden_activation = Activation::kRelu;
  cfg.seed = 7;
  const GnnModel<float> model(cfg);

  Rng rng(1);
  DenseMatrix<float> x(g.num_vertices(), 16);
  x.fill_uniform(rng, -1.0, 1.0);

  // 2. The server: 4 worker threads, batches close at 32 requests or a
  //    2 ms coalescing window, fan-out 8 per layer, 256 cached feature
  //    rows. Sampling is seeded per request id, so any reply can be
  //    replayed offline regardless of which worker served it.
  serve::ServeConfig sc;
  sc.num_threads = 4;
  sc.max_batch = 32;
  sc.batch_window = std::chrono::milliseconds(2);
  sc.fanout = 8;
  sc.sample_seed = 42;
  sc.cache_capacity = 256;
  serve::InferenceServer<float> server(model, g.adj, x, sc);

  // 3. Closed-loop Zipf clients: hot vertices dominate, which is what the
  //    feature cache exploits.
  const serve::ZipfSampler zipf(g.num_vertices(), 0.99, /*perm_seed=*/3);
  constexpr int kClients = 4;
  constexpr int kRequestsPerClient = 100;
  std::vector<std::thread> clients;
  std::vector<serve::InferenceReply<float>> replies(
      static_cast<std::size_t>(kClients * kRequestsPerClient));
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Rng vertex_rng(static_cast<std::uint64_t>(c) + 100);
      for (int i = 0; i < kRequestsPerClient; ++i) {
        auto reply = server.submit(zipf.sample(vertex_rng)).get();
        replies[static_cast<std::size_t>(c * kRequestsPerClient + i)] =
            std::move(reply);
      }
    });
  }
  for (auto& t : clients) t.join();
  server.stop(/*drain=*/true);

  // 4. Validate: every reply ok, and bitwise equal to the unbatched
  //    sequential pipeline replayed from the reply's own sample seed.
  const serve::NeighborSampler sampler(sc.fanout, model.num_layers(),
                                       sc.sample_seed);
  Workspace<float> ws;
  int checked = 0;
  for (const auto& r : replies) {
    if (r.status != serve::ReplyStatus::kOk) {
      std::fprintf(stderr, "reply %llu not ok\n",
                   static_cast<unsigned long long>(r.request_id));
      return 1;
    }
    const auto expect = serve::serve_sequential(model, g.adj, x, sampler,
                                                r.vertex, r.sample_seed, ws);
    if (expect != r.output) {
      std::fprintf(stderr, "reply %llu diverged from sequential replay\n",
                   static_cast<unsigned long long>(r.request_id));
      return 1;
    }
    ++checked;
  }

  const auto stats = server.cache().stats();
  std::printf("served %llu requests on %zu threads, all %d bitwise-equal to "
              "sequential replay\n",
              static_cast<unsigned long long>(server.completed()),
              sc.num_threads, checked);
  std::printf("cache: hits=%llu misses=%llu evictions=%llu hit_rate=%.3f\n",
              static_cast<unsigned long long>(stats.hits),
              static_cast<unsigned long long>(stats.misses),
              static_cast<unsigned long long>(stats.evictions),
              stats.hit_rate());
  return 0;
}
