// The full production workflow: generate a synthetic citation dataset, save
// it to disk, train with validation-based early stopping and dropout,
// checkpoint the model, reload both artifacts, and verify the reloaded
// model reproduces the test accuracy exactly.
//
//   ./build/examples/checkpoint_workflow
#include <cstdio>
#include <filesystem>

#include "core/dataset.hpp"
#include "core/serialization.hpp"

int main() {
  using namespace agnn;
  const auto tmp = std::filesystem::temp_directory_path();
  const std::string dataset_path = (tmp / "agnn_citation.bin").string();
  const std::string model_path = (tmp / "agnn_gat_checkpoint.bin").string();

  // 1. Build and persist a dataset (Cora-like: SBM communities + sparse
  //    bag-of-words features + 60/20/20 split).
  const auto ds = make_synthetic_citation<float>(500, 4, 64, 2026);
  save_dataset(dataset_path, ds);
  std::printf("dataset: n=%lld, m=%lld, %lld classes, %lld features -> %s\n",
              static_cast<long long>(ds.num_vertices()),
              static_cast<long long>(ds.adj.nnz()),
              static_cast<long long>(ds.num_classes),
              static_cast<long long>(ds.feature_dim()), dataset_path.c_str());

  // 2. Train a GAT with dropout and early stopping on the reloaded copy.
  const auto ds2 = load_dataset<float>(dataset_path);
  GnnConfig cfg;
  cfg.kind = ModelKind::kGAT;
  cfg.in_features = ds2.feature_dim();
  cfg.layer_widths = {32, ds2.num_classes};
  cfg.hidden_activation = Activation::kRelu;
  GnnModel<float> model(cfg);
  AdamOptimizer<float> opt(0.01f);
  const auto history =
      fit(model, ds2, opt,
          {.max_epochs = 300, .patience = 50, .dropout = 0.2, .eval_every = 10});
  std::printf("training: %zu epochs%s, best val acc %.1f%% at epoch %d\n",
              history.train_loss.size(),
              history.early_stopped ? " (early stopped)" : "",
              100.0 * history.best_val_accuracy, history.best_epoch);

  const auto eval = evaluate(model, ds2);
  std::printf("accuracy: train %.1f%%  val %.1f%%  test %.1f%%\n",
              100.0 * eval.train_accuracy, 100.0 * eval.val_accuracy,
              100.0 * eval.test_accuracy);

  // 3. Checkpoint, reload, and verify bit-identical behavior.
  save_model(model_path, model);
  const auto reloaded = load_model<float>(model_path);
  const auto eval2 = evaluate(reloaded, ds2);
  const bool identical = eval.test_accuracy == eval2.test_accuracy;
  std::printf("checkpoint round trip: test acc %.1f%% -> %.1f%% %s\n",
              100.0 * eval.test_accuracy, 100.0 * eval2.test_accuracy,
              identical ? "[identical]" : "[MISMATCH]");

  std::filesystem::remove(dataset_path);
  std::filesystem::remove(model_path);
  return identical && eval.test_accuracy > 0.6 ? 0 : 1;
}
