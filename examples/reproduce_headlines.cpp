// One-shot reproduction of the paper's three headline claims, printed as a
// live paper-vs-measured table (a compact, fast alternative to running the
// full benchmark harness; see EXPERIMENTS.md for the complete sweeps).
//
//   1. The global formulation beats the local (message-passing) formulation
//      by ~4x for large k at scale (Fig. 6 regime).
//   2. Per-rank communication volume follows O(n k / sqrt(p) + k^2): the
//      measured/bound ratio is constant in p (Section 7).
//   3. Fused Psi kernels beat unfused (n x n materializing) execution by
//      >20x (Section 6.2).
//
//   ./build/examples/reproduce_headlines
#include <cstdio>

#include "baseline/dist_local_engine.hpp"
#include "comm/communicator.hpp"
#include "comm/cost_model.hpp"
#include "core/model.hpp"
#include "dist/dist_engine.hpp"
#include "dist/volume_model.hpp"
#include "graph/graph.hpp"
#include "graph/erdos_renyi.hpp"
#include "graph/kronecker.hpp"
#include "tensor/fused.hpp"
#include "tensor/reference_impls.hpp"

namespace {

using namespace agnn;

GnnConfig gat_config(index_t k) {
  GnnConfig cfg;
  cfg.kind = ModelKind::kGAT;
  cfg.in_features = k;
  cfg.layer_widths = {k, k, k};
  cfg.seed = 4;
  return cfg;
}

double modeled_train_step(const CsrMatrix<float>& adj, index_t k, int ranks,
                          bool global) {
  const comm::CostModel cost{.alpha = 1.5e-6, .beta = 1.0 / 10.0e9};
  Rng rng(6);
  DenseMatrix<float> x(adj.rows(), k);
  x.fill_uniform(rng, -1.0, 1.0);
  std::vector<index_t> labels(static_cast<std::size_t>(adj.rows()));
  for (auto& l : labels) {
    l = static_cast<index_t>(rng.next_bounded(static_cast<std::uint64_t>(k)));
  }
  const auto stats = comm::SpmdRuntime::run(ranks, [&](comm::Communicator& world) {
    GnnModel<float> model(gat_config(k));
    SgdOptimizer<float> opt(0.01f);
    if (global) {
      dist::DistGnnEngine<float> engine(world, adj, model);
      engine.train_step(x, labels, opt);
      comm::reset_all_stats(world);
      engine.train_step(x, labels, opt);
    } else {
      baseline::DistLocalEngine<float> engine(world, adj, model);
      engine.train_step(x, labels, opt);
      comm::reset_all_stats(world);
      engine.train_step(x, labels, opt);
    }
  });
  return cost.total_time(stats);
}

}  // namespace

int main() {
  std::printf("=== Headline 1: global vs local formulation, GAT k=128 ===\n");
  std::printf("paper: 4-5x over DistDGL for large k at scale (Fig. 6)\n");
  {
    const auto g = graph::build_graph<float>(
        graph::generate_kronecker({.scale = 11, .edges = 40000, .seed = 1}));
    const index_t k = 128;
    for (const int p : {16, 64}) {
      const double tg = modeled_train_step(g.adj, k, p, true);
      const double tl = modeled_train_step(g.adj, k, p, false);
      std::printf("  p=%-3d global %7.2f ms   local %7.2f ms   speedup %.2fx\n",
                  p, 1e3 * tg, 1e3 * tl, tl / tg);
    }
  }

  std::printf("\n=== Headline 2: volume O(n k / sqrt(p) + k^2) (Section 7) ===\n");
  std::printf("paper: constant measured/bound ratio across p\n");
  {
    const auto g = graph::build_graph<float>(
        graph::generate_erdos_renyi({.n = 1024, .q = 0.01, .seed = 2}));
    Rng rng(3);
    DenseMatrix<float> x(1024, 16);
    x.fill_uniform(rng, -1.0, 1.0);
    for (const int p : {4, 16, 64}) {
      const auto stats = comm::SpmdRuntime::run(p, [&](comm::Communicator& world) {
        GnnModel<float> model(gat_config(16));
        dist::DistGnnEngine<float> engine(world, g.adj, model);
        comm::reset_all_stats(world);
        engine.forward(x, nullptr);
      });
      const double measured =
          static_cast<double>(comm::max_bytes_sent(stats)) / sizeof(float);
      const double bound = 3 * dist::section7_bound_words(1024, 16, p);
      std::printf("  p=%-3d measured %8.0f words   bound %8.0f   ratio %.2f\n", p,
                  measured, bound, measured / bound);
    }
  }

  std::printf("\n=== Headline 3: fusion (Section 6.2) ===\n");
  std::printf("paper: virtual n x n intermediates are never materialized\n");
  {
    const auto g = graph::build_graph<float>(
        graph::generate_kronecker({.scale = 10, .edges = 10000, .seed = 5}));
    Rng rng(7);
    DenseMatrix<float> h(g.num_vertices(), 16);
    h.fill_uniform(rng, -1.0, 1.0);
    const auto time_of = [](auto&& fn) {
      const auto t0 = comm::thread_cpu_ns();
      fn();
      return static_cast<double>(comm::thread_cpu_ns() - t0) * 1e-6;
    };
    double fused_ms = 0, unfused_ms = 0;
    for (int rep = 0; rep < 5; ++rep) {
      fused_ms += time_of([&] { (void)psi_va(g.adj, h); });
      unfused_ms += time_of([&] { (void)reference::psi_va_unfused(g.adj, h); });
    }
    std::printf("  Psi_VA n=%lld: fused %.2f ms, unfused %.2f ms -> %.0fx\n",
                static_cast<long long>(g.num_vertices()), fused_ms / 5,
                unfused_ms / 5, unfused_ms / fused_ms);
  }
  return 0;
}
