// Quickstart: build a graph, run GAT inference and a few training steps with
// the global tensor formulation, in ~60 lines of user code.
//
//   ./build/examples/quickstart
//   AGNN_TRACE=1 ./build/examples/quickstart   # also writes trace.json
#include <cstdio>

#include "core/model.hpp"
#include "graph/graph.hpp"
#include "graph/kronecker.hpp"
#include "obs/trace.hpp"

int main() {
  using namespace agnn;

  // 0. Optional tracing: when AGNN_TRACE=1 every kernel and training phase
  //    below lands in trace.json — open it in https://ui.perfetto.dev.
  const obs::TraceSession trace("trace.json");

  // 1. A graph: Kronecker (heavy-tail), n = 1024, ~20k edges, undirected,
  //    isolated vertices patched, self loops for the attention models.
  graph::KroneckerParams params;
  params.scale = 10;
  params.edges = 20000;
  graph::BuildOptions opt;
  opt.add_self_loops = true;
  const auto g = graph::build_graph<float>(graph::generate_kronecker(params), opt);
  std::printf("graph: n=%lld m=%lld max_degree=%lld\n",
              static_cast<long long>(g.num_vertices()),
              static_cast<long long>(g.num_edges()),
              static_cast<long long>(g.max_degree()));

  // 2. A 2-layer GAT in the global formulation: 16 input features,
  //    16 hidden, 4 output classes.
  GnnConfig cfg;
  cfg.kind = ModelKind::kGAT;
  cfg.in_features = 16;
  cfg.layer_widths = {16, 4};
  cfg.hidden_activation = Activation::kRelu;
  GnnModel<float> model(cfg);

  // 3. Random input features and labels (a real application would load its
  //    dataset here).
  Rng rng(1);
  DenseMatrix<float> x(g.num_vertices(), 16);
  x.fill_uniform(rng, -1.0, 1.0);
  std::vector<index_t> labels(static_cast<std::size_t>(g.num_vertices()));
  for (auto& l : labels) l = static_cast<index_t>(rng.next_bounded(4));

  // 4. Inference: one call, no intermediates stored, deepest fused kernels.
  const DenseMatrix<float> h = model.infer(g.adj, x);
  std::printf("inference: output is %lld x %lld\n",
              static_cast<long long>(h.rows()), static_cast<long long>(h.cols()));

  // 5. Full-batch training: forward, softmax cross-entropy, the analytic
  //    backward pass of Section 5, Adam updates.
  Trainer<float> trainer(model, std::make_unique<AdamOptimizer<float>>(0.01f));
  const auto losses = trainer.train(g.adj, x, labels, 20);
  std::printf("training: loss %.4f -> %.4f over %zu epochs\n",
              static_cast<double>(losses.front()),
              static_cast<double>(losses.back()), losses.size());
  return 0;
}
