// Programmability showcase (Sections 4.3–4.4): building new A-GNN variants
// from the generic (Psi, ⊕, Phi) layer — a custom attention function, the
// four semiring aggregations, and both Phi ∘ ⊕ composition orders — without
// touching any engine code.
//
//   ./build/examples/programmable_models
#include <cstdio>

#include "core/generic_layer.hpp"
#include "core/model.hpp"
#include "graph/graph.hpp"
#include "graph/erdos_renyi.hpp"

namespace {

using namespace agnn;

void print_row_summary(const char* name, const DenseMatrix<float>& h) {
  float mn = h.data()[0], mx = h.data()[0];
  double sum = 0;
  for (index_t i = 0; i < h.size(); ++i) {
    mn = std::min(mn, h.data()[i]);
    mx = std::max(mx, h.data()[i]);
    sum += static_cast<double>(h.data()[i]);
  }
  std::printf("  %-34s out %lldx%lld   min %+8.4f  mean %+8.4f  max %+8.4f\n",
              name, static_cast<long long>(h.rows()),
              static_cast<long long>(h.cols()), static_cast<double>(mn),
              sum / static_cast<double>(h.size()), static_cast<double>(mx));
}

}  // namespace

int main() {
  using namespace agnn;
  graph::BuildOptions opt;
  opt.add_self_loops = true;
  const auto g = graph::build_graph<float>(
      graph::generate_erdos_renyi({.n = 256, .q = 0.05, .seed = 3}), opt);
  Rng rng(9);
  DenseMatrix<float> x(g.num_vertices(), 8);
  x.fill_uniform(rng, -1.0, 1.0);
  DenseMatrix<float> w(8, 8);
  w.fill_glorot(rng);

  std::printf("generic A-GNN layer on G(256, 5%%), 8 features\n");

  // 1. The stock attention functions as plug-in Psi functors.
  {
    GenericLayerSpec<float> spec;
    spec.phi = make_phi_linear(w);
    spec.activation = Activation::kRelu;
    spec.psi = make_psi_identity<float>();
    print_row_summary("Psi = A (C-GNN)", generic_layer_forward(spec, g.adj, x));
    spec.psi = make_psi_va<float>();
    print_row_summary("Psi = A .* HH^T (VA)", generic_layer_forward(spec, g.adj, x));
    spec.psi = make_psi_agnn<float>();
    print_row_summary("Psi = cosine (AGNN)", generic_layer_forward(spec, g.adj, x));
  }

  // 2. A *custom* attention: distance-gated attention, keeping only edges
  //    whose endpoint features are similar (|<h_i,h_j>| above a threshold).
  {
    GenericLayerSpec<float> spec;
    spec.phi = make_phi_linear(w);
    spec.activation = Activation::kRelu;
    spec.psi = [](const CsrMatrix<float>& a, const DenseMatrix<float>& h) {
      auto p = psi_va(a, h);
      return map_values(p, [](float v) { return std::abs(v) > 0.5f ? v : 0.0f; });
    };
    print_row_summary("Psi = gated dot-product (custom)",
                      generic_layer_forward(spec, g.adj, x));
  }

  // 3. Semiring aggregations (Section 4.3): one layer each with sum / min /
  //    max / mean over the same attention scores.
  std::printf("\nsemiring aggregations ⊕ over the same Psi:\n");
  for (const Aggregation agg : {Aggregation::kSum, Aggregation::kMean,
                                Aggregation::kMin, Aggregation::kMax}) {
    GenericLayerSpec<float> spec;
    spec.aggregation = agg;
    spec.activation = Activation::kIdentity;
    // Tropical semirings interpret edge values additively; use the 0-valued
    // adjacency for min/max so they select extreme neighbor features.
    const bool tropical = agg == Aggregation::kMin || agg == Aggregation::kMax;
    spec.psi = [tropical](const CsrMatrix<float>& a, const DenseMatrix<float>&) {
      return tropical ? a.with_values(0.0f) : a;
    };
    print_row_summary(to_string(agg), generic_layer_forward(spec, g.adj, x));
  }

  // 4. Phi ∘ ⊕ order (Section 4.4): identical result for linear Phi + sum,
  //    different cost profile — and NOT interchangeable for max.
  {
    GenericLayerSpec<float> spec;
    spec.psi = make_psi_va<float>();
    spec.phi = make_phi_linear(w);
    spec.activation = Activation::kIdentity;
    spec.phi_first = false;
    const auto after = generic_layer_forward(spec, g.adj, x);
    spec.phi_first = true;
    const auto before = generic_layer_forward(spec, g.adj, x);
    std::printf("\nPhi ∘ ⊕ order, linear Phi with sum: max |difference| = %.2e"
                " (orders commute)\n",
                static_cast<double>(max_abs_diff(after, before)));
  }
  return 0;
}
