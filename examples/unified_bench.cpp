// The unified benchmark driver, mirroring the paper artifact's
// unified_single_bench.py / unified_distr_bench.py command-line interface:
//
//   ./build/examples/unified_bench -m VA -v 10000 -e 1000000
//   ./build/examples/unified_bench -m GAT -d kronecker -v 4096 -e 100000 \
//        --features 32 -l 3 --repeat 10 --warmup 2 -p 16
//   ./build/examples/unified_bench -m AGNN -f graph.bin --inference
//
// Options (artifact-compatible, plus -p/--ranks and --engine for the
// simulated cluster):
//   -m/--model {VA,GAT,AGNN,GCN}     model to run (default VA)
//   -v/--vertices N                  vertex count (rounded down to a power
//                                    of two for kronecker, as the artifact)
//   -e/--edges M                     edge count
//   -d/--dataset {uniform,kronecker} generator (default kronecker)
//   -f/--file PATH                   load binary COO instead of generating
//   --features K                     feature width (default 16)
//   -l/--layers L                    GNN layers (default 3)
//   --repeat R / --warmup W          timed / warm-up executions (10 / 2)
//   --inference                      inference only (no intermediates)
//   -s/--seed S                      RNG seed (default 0)
//   -p/--ranks P                     simulated ranks (default 1)
//   --engine {global,local}          formulation to execute (default global)
//
// With --engine global the distribution policy comes from AGNN_DIST
// (1d | 1.5d | 2d | 3d | auto; AGNN_DIST_DEPTH for 3d replication depth).
// The default "auto" picks 1.5D on perfect-square rank counts and 2D
// otherwise, so -p no longer has to be a square.
//   --trace                          also write the profiling repetition's
//                                    timeline as Chrome/Perfetto JSON
//                                    (AGNN_TRACE=1 works too)
//   --trace-out PATH                 trace output path (default trace.json)
//
// After the timed repetitions one extra *traced* repetition runs, and its
// per-collective measured-compute vs modeled-comm table is printed; rows
// whose ratio deviates more than 2x from the volume model are flagged.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "baseline/dist_local_engine.hpp"
#include "comm/communicator.hpp"
#include "comm/cost_model.hpp"
#include "core/cli.hpp"
#include "core/model.hpp"
#include "dist/dist_engine.hpp"
#include "dist/engine_factory.hpp"
#include "graph/erdos_renyi.hpp"
#include "graph/graph.hpp"
#include "graph/io.hpp"
#include "graph/kronecker.hpp"
#include "obs/bench_report.hpp"
#include "obs/perf_counters.hpp"
#include "obs/trace.hpp"
#include "obs/trace_report.hpp"

namespace {

using namespace agnn;

ModelKind parse_model(const std::string& s) {
  if (s == "VA") return ModelKind::kVA;
  if (s == "GAT") return ModelKind::kGAT;
  if (s == "AGNN") return ModelKind::kAGNN;
  if (s == "GCN") return ModelKind::kGCN;
  if (s == "GIN") return ModelKind::kGIN;
  AGNN_ASSERT(false, "unknown model: " + s + " (expected VA, GAT, AGNN, GCN, GIN)");
  return ModelKind::kVA;
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

double stddev(const std::vector<double>& v) {
  double mean = 0;
  for (const double x : v) mean += x;
  mean /= static_cast<double>(v.size());
  double acc = 0;
  for (const double x : v) acc += (x - mean) * (x - mean);
  return std::sqrt(acc / static_cast<double>(v.size()));
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const ModelKind kind = parse_model(args.get_string("-m", "--model", "VA"));
  const auto n_req = static_cast<index_t>(args.get_long("-v", "--vertices", 1024));
  const auto m_req = static_cast<index_t>(args.get_long("-e", "--edges", 10000));
  const std::string dataset = args.get_string("-d", "--dataset", "kronecker");
  const std::string file = args.get_string("-f", "--file", "");
  const auto k = static_cast<index_t>(args.get_long("--features", 16));
  const int layers = static_cast<int>(args.get_long("-l", "--layers", 3));
  const int repeat = static_cast<int>(args.get_long("--repeat", 10));
  const int warmup = static_cast<int>(args.get_long("--warmup", 2));
  const bool inference = args.get_flag("--inference");
  const auto seed = static_cast<std::uint64_t>(args.get_long("-s", "--seed", 0));
  const int ranks = static_cast<int>(args.get_long("-p", "--ranks", 1));
  const std::string engine = args.get_string("--engine", "global");

  // Build the graph exactly as the artifact does.
  graph::EdgeList el;
  if (!file.empty()) {
    el = graph::read_edge_list(file);
  } else if (dataset == "uniform") {
    el = graph::generate_erdos_renyi_m(n_req, m_req, seed + 1);
  } else if (dataset == "kronecker") {
    // The artifact rounds the vertex count down to a power of two.
    int scale = 0;
    while ((index_t(1) << (scale + 1)) <= n_req) ++scale;
    el = graph::generate_kronecker(
        {.scale = scale, .edges = m_req, .seed = seed + 1});
  } else {
    AGNN_ASSERT(false, "unknown dataset: " + dataset);
  }
  graph::BuildOptions opt;
  opt.add_self_loops = (kind == ModelKind::kGAT || kind == ModelKind::kGCN);
  const auto g = graph::build_graph<float>(el, opt);
  const CsrMatrix<float> adj =
      kind == ModelKind::kGCN ? graph::sym_normalize(g.adj) : g.adj;

  Rng rng(seed + 2);
  DenseMatrix<float> x(g.num_vertices(), k);
  x.fill_uniform(rng, -1.0, 1.0);
  std::vector<index_t> labels(static_cast<std::size_t>(g.num_vertices()));
  for (auto& l : labels) {
    l = static_cast<index_t>(rng.next_bounded(static_cast<std::uint64_t>(k)));
  }

  // Resolve (and validate) the distribution grid up front so a bad
  // AGNN_DIST / rank-count combination fails before any rank is spawned.
  const dist::GridShape grid = dist::grid_from_env(ranks);

  std::printf("model=%s engine=%s task=%s n=%lld m=%lld features=%lld layers=%d "
              "ranks=%d dist=%s\n",
              to_string(kind), engine.c_str(),
              inference ? "inference" : "training",
              static_cast<long long>(g.num_vertices()),
              static_cast<long long>(g.num_edges()), static_cast<long long>(k),
              layers, ranks, grid.describe().c_str());

  GnnConfig cfg;
  cfg.kind = kind;
  cfg.in_features = k;
  cfg.layer_widths.assign(static_cast<std::size_t>(layers), k);
  cfg.seed = seed + 3;

  const comm::CostModel cost{.alpha = 1.5e-6, .beta = 1.0 / 10.0e9};
  const auto run_once = [&]() {
    return comm::SpmdRuntime::run(ranks, [&](comm::Communicator& world) {
      GnnModel<float> model(cfg);
      if (engine == "global") {
        const auto eng = dist::make_dist_engine(grid.policy, world, adj, model,
                                                grid.depth);
        comm::reset_all_stats(world);
        if (inference) {
          eng->infer(x);
        } else {
          SgdOptimizer<float> sgd(0.01f);
          eng->train_step(x, labels, sgd);
        }
      } else {
        baseline::DistLocalEngine<float> eng(world, adj, model);
        comm::reset_all_stats(world);
        if (inference) {
          eng.forward(x, nullptr);
        } else {
          SgdOptimizer<float> sgd(0.01f);
          eng.train_step(x, labels, sgd);
        }
      }
    });
  };

  std::vector<double> times;
  double comm_mb = 0;
  for (int r = 0; r < warmup + repeat; ++r) {
    const auto stats = run_once();
    if (r >= warmup) {
      times.push_back(cost.total_time(stats));
      comm_mb = static_cast<double>(comm::max_bytes_sent(stats)) / 1e6;
    }
  }

  std::printf("modeled step time: median %.3f ms, stddev %.3f ms over %d runs\n",
              1e3 * median(times), 1e3 * stddev(times), repeat);
  std::printf("max per-rank communication: %.3f MB\n", comm_mb);

  // One extra repetition with the tracer on: join the measured kernel time
  // between collectives (per rank, max-reduced) against the alpha-beta model
  // of each collective, and flag supersteps off by more than 2x.
  obs::Tracer::instance().clear();
  obs::Tracer::set_enabled(true);
  run_once();
  obs::Tracer::set_enabled(false);
  const auto events = obs::Tracer::instance().collect();

  const obs::TraceReport report(cost, 2.0);
  const auto rows = report.build(events);
  std::printf("\nper-collective compute vs modeled comm (1 traced %s):\n",
              inference ? "inference" : "training step");
  std::ostringstream table;
  const std::size_t flagged = report.print(table, rows);
  std::fputs(table.str().c_str(), stdout);
  if (flagged > 0) {
    std::printf("%zu collective(s) deviate >2x from the volume model's "
                "compute/comm balance\n",
                flagged);
  }
  // Bridge the deviation flags into named gauges so dashboards can alert on
  // trace_report.flagged_rows without parsing the table.
  obs::TraceReport::export_flags(rows);

  // Per-kernel roofline attribution: byte-tagged kernel spans joined with
  // the perf.<kernel>.* registry entries (IPC/cache columns need AGNN_PERF).
  const auto kernel_rows = obs::TraceReport::build_kernels(events);
  if (!kernel_rows.empty()) {
    std::printf("\nper-kernel traffic attribution (1 traced %s):\n",
                inference ? "inference" : "training step");
    std::ostringstream ktable;
    obs::TraceReport::print_kernels(ktable, kernel_rows);
    std::fputs(ktable.str().c_str(), stdout);
    if (!obs::perf::available()) {
      std::printf("perf counters: unavailable (set AGNN_PERF=1; needs "
                  "perf_event_open) — IPC/cache columns omitted\n");
    }
  }

  if (args.get_flag("--trace") || obs::Tracer::env_wants_trace()) {
    const std::string path = args.get_string("--trace-out", "trace.json");
    if (obs::Tracer::instance().write_chrome_json_file(path)) {
      std::printf("wrote %s — open in https://ui.perfetto.dev\n", path.c_str());
    }
  }

  // Machine-readable report (same schema as the bench/ binaries).
  const std::string json_out = args.get_string("--json-out", "");
  if (!json_out.empty()) {
    obs::bench::BenchReport rep;
#ifdef __VERSION__
    rep.context.compiler = __VERSION__;
#endif
    rep.context.cpu_model = "unknown";
    rep.context.perf_available = obs::perf::available();
    obs::bench::BenchEntry entry;
    std::ostringstream name;
    name << "unified/" << to_string(kind) << "/" << engine << "/p" << ranks
         << (inference ? "/inference" : "/training");
    entry.name = name.str();
    for (const double t : times) entry.samples_ns.push_back(t * 1e9);
    obs::bench::finalize(entry);
    entry.counters["comm_MB"] = comm_mb;
    rep.benchmarks.push_back(std::move(entry));
    rep.histograms_json = obs::bench::histograms_snapshot_json();
    if (obs::bench::write_json_file(json_out, rep)) {
      std::printf("wrote %s\n", json_out.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", json_out.c_str());
      return 1;
    }
  }
  return 0;
}
