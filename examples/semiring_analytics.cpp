// Semiring aggregation as graph analytics (Section 4.3): the tropical
// (min, +) semiring SpMM is one relaxation step of shortest paths, so
// iterating the library's min-plus aggregation computes single-source
// shortest path distances — the same kernel that powers the min-aggregation
// GNN layer. Demonstrates that the GNN building blocks double as a
// GraphBLAS-style analytics layer.
//
//   ./build/examples/semiring_analytics
#include <cstdio>
#include <limits>
#include <queue>

#include "graph/erdos_renyi.hpp"
#include "graph/graph.hpp"
#include "tensor/spmm.hpp"

namespace {

using namespace agnn;

// Dijkstra oracle for validation.
std::vector<float> dijkstra(const CsrMatrix<float>& adj, index_t source) {
  const float inf = std::numeric_limits<float>::infinity();
  std::vector<float> dist(static_cast<std::size_t>(adj.rows()), inf);
  using Item = std::pair<float, index_t>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  dist[static_cast<std::size_t>(source)] = 0;
  pq.emplace(0.0f, source);
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[static_cast<std::size_t>(u)]) continue;
    for (index_t e = adj.row_begin(u); e < adj.row_end(u); ++e) {
      const index_t v = adj.col_at(e);
      const float nd = d + adj.val_at(e);
      if (nd < dist[static_cast<std::size_t>(v)]) {
        dist[static_cast<std::size_t>(v)] = nd;
        pq.emplace(nd, v);
      }
    }
  }
  return dist;
}

}  // namespace

int main() {
  const index_t n = 512;
  graph::BuildOptions opt;
  const auto g = graph::build_graph<float>(
      graph::generate_erdos_renyi({.n = n, .q = 0.02, .seed = 12}), opt);
  // Random positive edge weights.
  CsrMatrix<float> adj = g.adj;
  {
    Rng rng(34);
    auto v = adj.vals_mutable();
    for (auto& x : v) x = static_cast<float>(rng.next_uniform(0.1, 2.0));
  }
  // Symmetrize the weights (undirected): w(i,j) = min(w(i,j), w(j,i)). The
  // build pipeline made the *pattern* symmetric, so A and A^T share it and
  // the element-wise min is a single pass over the stored values.
  {
    const CsrMatrix<float> t = adj.transposed();
    AGNN_ASSERT(adj.same_pattern(t), "undirected graph expected");
    auto v = adj.vals_mutable();
    for (index_t e = 0; e < adj.nnz(); ++e) {
      v[static_cast<std::size_t>(e)] = std::min(adj.val_at(e), t.val_at(e));
    }
  }

  const index_t source = 0;
  // Distance vector as an n x 1 "feature matrix"; min-plus SpMM = one
  // Bellman-Ford relaxation over all vertices simultaneously.
  const float inf = std::numeric_limits<float>::infinity();
  DenseMatrix<float> dist(n, 1, inf);
  dist(source, 0) = 0.0f;

  // A^T is used so that dist(i) pulls from in-neighbors; the graph is
  // undirected so A = A^T here.
  int iterations = 0;
  for (; iterations < n; ++iterations) {
    DenseMatrix<float> next = spmm_semiring<MinPlusSemiring<float>>(adj, dist);
    // Keep the self distance (a vertex can always stay put).
    bool changed = false;
    for (index_t i = 0; i < n; ++i) {
      const float best = std::min(dist(i, 0), next(i, 0));
      if (best < dist(i, 0)) changed = true;
      dist(i, 0) = best;
    }
    if (!changed) break;
  }

  const auto oracle = dijkstra(adj, source);
  index_t reached = 0;
  float max_err = 0;
  for (index_t i = 0; i < n; ++i) {
    if (std::isinf(oracle[static_cast<std::size_t>(i)])) continue;
    ++reached;
    max_err = std::max(max_err,
                       std::abs(dist(i, 0) - oracle[static_cast<std::size_t>(i)]));
  }
  std::printf("single-source shortest paths via the min-plus semiring SpMM\n");
  std::printf("  n=%lld, m=%lld, converged after %d relaxation rounds\n",
              static_cast<long long>(n), static_cast<long long>(adj.nnz()),
              iterations + 1);
  std::printf("  vertices reached: %lld; max |distance error| vs Dijkstra: %.2e\n",
              static_cast<long long>(reached), static_cast<double>(max_err));
  return max_err < 1e-5f ? 0 : 1;
}
