// Graph analytics with the GNN library's tensor kernels: BFS, triangle
// counting, connected components, and common-neighbor link scores — the
// GraphBLAS-style usage the paper's Section 9 situates the formulations in.
// Every result is cross-checked against a combinatorial oracle inline.
//
//   ./build/examples/graph_analytics
#include <cstdio>
#include <queue>

#include "graph/algorithms.hpp"
#include "graph/graph.hpp"
#include "graph/kronecker.hpp"

namespace {

using namespace agnn;

std::uint64_t triangles_brute(const CsrMatrix<float>& adj) {
  std::uint64_t count = 0;
  for (index_t i = 0; i < adj.rows(); ++i) {
    for (index_t e = adj.row_begin(i); e < adj.row_end(i); ++e) {
      const index_t j = adj.col_at(e);
      if (j <= i) continue;
      for (index_t f = adj.row_begin(j); f < adj.row_end(j); ++f) {
        const index_t k = adj.col_at(f);
        if (k <= j) continue;
        for (index_t h = adj.row_begin(i); h < adj.row_end(i); ++h) {
          if (adj.col_at(h) == k) {
            ++count;
            break;
          }
        }
      }
    }
  }
  return count;
}

}  // namespace

int main() {
  graph::KroneckerParams params;
  params.scale = 10;
  params.edges = 12000;
  graph::BuildOptions opt;
  const auto g = graph::build_graph<float>(graph::generate_kronecker(params), opt);
  std::printf("Kronecker graph: n=%lld m=%lld\n",
              static_cast<long long>(g.num_vertices()),
              static_cast<long long>(g.num_edges()));

  // BFS as boolean SpMV over frontiers.
  const auto levels = graph::bfs_levels(g.adj, 0);
  index_t reached = 0, max_level = 0;
  for (const auto l : levels) {
    if (l >= 0) {
      ++reached;
      max_level = std::max(max_level, l);
    }
  }
  std::printf("BFS from 0: reached %lld vertices, eccentricity %lld\n",
              static_cast<long long>(reached), static_cast<long long>(max_level));

  // Triangles as masked SpGEMM (A*A) ⊙ A.
  const auto tri = graph::count_triangles(g.adj);
  const auto tri_oracle = triangles_brute(g.adj);
  std::printf("triangles: %llu (oracle: %llu) %s\n",
              static_cast<unsigned long long>(tri),
              static_cast<unsigned long long>(tri_oracle),
              tri == tri_oracle ? "[ok]" : "[MISMATCH]");

  // Connected components as min-label propagation.
  const auto labels = graph::connected_components(g.adj);
  std::vector<index_t> reps;
  for (index_t v = 0; v < g.num_vertices(); ++v) {
    if (labels[static_cast<std::size_t>(v)] == v) reps.push_back(v);
  }
  std::printf("connected components: %lld\n", static_cast<long long>(reps.size()));

  // Common-neighbor scores on edges — the raw material of link prediction.
  const auto cn = graph::common_neighbors(g.adj);
  float best = 0;
  index_t bi = 0, bj = 0;
  for (index_t i = 0; i < cn.rows(); ++i) {
    for (index_t e = cn.row_begin(i); e < cn.row_end(i); ++e) {
      if (cn.val_at(e) > best) {
        best = cn.val_at(e);
        bi = i;
        bj = cn.col_at(e);
      }
    }
  }
  std::printf("strongest edge by common neighbors: (%lld, %lld) with %.0f shared\n",
              static_cast<long long>(bi), static_cast<long long>(bj),
              static_cast<double>(best));
  return tri == tri_oracle ? 0 : 1;
}
