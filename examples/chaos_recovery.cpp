// Chaos-testing quickstart: train a 4-rank distributed GAT while injecting
// deterministic faults (straggler delay + mid-training rank abort), recover
// automatically from checkpoints, and verify the recovered run reproduces
// the fault-free final loss.
//
//   ./build/examples/chaos_recovery
//   ./build/examples/chaos_recovery --faults "delay@r0:s6:300us;abort@r2:s40"
//   AGNN_FAULTS="abort@r1:s30" ./build/examples/chaos_recovery
//
// The fault spec is printed on every run, so any failure replays exactly:
// pass the same spec (and the workload is fixed-seed) to reproduce the same
// fault firing points, recovery path, and trace. Set AGNN_TRACE=1 to record
// the timeline — fault instants land in the "fault" category — into
// chaos_trace.json (open in ui.perfetto.dev).
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <string>
#include <vector>

#include "comm/communicator.hpp"
#include "comm/fault_injection.hpp"
#include "core/model.hpp"
#include "core/serialization.hpp"
#include "dist/dist_engine.hpp"
#include "dist/recovery.hpp"
#include "graph/graph.hpp"
#include "graph/kronecker.hpp"
#include "obs/trace.hpp"

namespace {

using namespace agnn;

constexpr int kRanks = 4;
constexpr int kEpochs = 10;

struct Outcome {
  std::vector<double> losses;
  int restores = 0;
  int checkpoints = 0;
  std::uint64_t supersteps = 0;
};

GnnConfig gat_config(index_t k) {
  GnnConfig cfg;
  cfg.kind = ModelKind::kGAT;
  cfg.in_features = k;
  cfg.layer_widths = {k, 4};
  cfg.hidden_activation = Activation::kTanh;
  cfg.seed = 20260805;
  return cfg;
}

Outcome run_training(const CsrMatrix<double>& adj, const DenseMatrix<double>& x,
                     std::span<const index_t> labels, index_t k,
                     const comm::FaultPlan& plan,
                     const std::string& checkpoint_path) {
  comm::RunOptions ropts;
  ropts.faults = plan;
  // Finite collective deadline only under injected faults: it is what turns
  // a dead rank into a structured CommError instead of a hung barrier.
  if (!plan.empty()) ropts.timeout = std::chrono::milliseconds(500);

  Outcome out;
  std::mutex mu;
  const auto stats =
      comm::SpmdRuntime::run(kRanks, ropts, [&](comm::Communicator& world) {
        GnnModel<double> model(gat_config(k));
        dist::DistGnnEngine<double> engine(world, adj, model);
        SgdOptimizer<double> opt(0.05, 0.9);
        dist::RecoveryOptions opts;
        opts.checkpoint_every = 2;
        opts.checkpoint_path = checkpoint_path;
        const auto report = dist::train_with_recovery(
            world, engine, model, opt, x, labels, kEpochs, {}, opts);
        if (world.rank() == 0) {
          std::lock_guard<std::mutex> lock(mu);
          out.losses.assign(report.losses.begin(), report.losses.end());
          out.restores = report.restores;
          out.checkpoints = report.checkpoints;
        }
      });
  out.supersteps = comm::max_supersteps(stats);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const obs::TraceSession trace("chaos_trace.json");  // active iff AGNN_TRACE=1
  const std::string ckpt_path =
      (std::filesystem::temp_directory_path() / "agnn_chaos_ckpt.bin").string();

  // Fixed-seed workload: a small Kronecker graph and a 2-layer GAT.
  const index_t k = 8;
  graph::KroneckerParams params;
  params.scale = 7;  // n = 128
  params.edges = 1200;
  params.seed = 11;
  graph::BuildOptions bopt;
  bopt.add_self_loops = true;
  const auto g =
      graph::build_graph<double>(graph::generate_kronecker(params), bopt);
  Rng rng(5);
  DenseMatrix<double> x(g.num_vertices(), k);
  x.fill_uniform(rng, -1.0, 1.0);
  std::vector<index_t> labels(static_cast<std::size_t>(g.num_vertices()));
  for (auto& l : labels) l = static_cast<index_t>(rng.next_bounded(4));

  // 1. Fault-free baseline (explicit RunOptions{} ignores AGNN_FAULTS).
  const auto clean =
      run_training(g.adj, x, labels, k, comm::FaultPlan{}, std::string{});
  std::printf("baseline: %d epochs, %llu supersteps, final loss %.12f\n",
              kEpochs, static_cast<unsigned long long>(clean.supersteps),
              clean.losses.back());

  // 2. Chaos run: --faults beats AGNN_FAULTS beats a built-in default that
  //    places a straggler early and an abort mid-training.
  std::string spec;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--faults") == 0 && i + 1 < argc) {
      spec = argv[++i];
    }
  }
  if (spec.empty()) {
    if (const char* env = std::getenv("AGNN_FAULTS")) spec = env;
  }
  if (spec.empty()) {
    const auto mid = clean.supersteps / 2;
    spec = "delay@r0:s6:300us;abort@r2:s" + std::to_string(mid);
  }
  const auto plan = comm::FaultPlan::parse(spec);
  std::printf("chaos:    injecting \"%s\" (replay with --faults)\n",
              plan.spec().c_str());
  const auto chaos = run_training(g.adj, x, labels, k, plan, ckpt_path);
  std::printf("chaos:    %d restore%s, %d checkpoint%s, final loss %.12f\n",
              chaos.restores, chaos.restores == 1 ? "" : "s", chaos.checkpoints,
              chaos.checkpoints == 1 ? "" : "s", chaos.losses.back());

  // 3. The recovered run must land on the fault-free result.
  bool ok = chaos.losses.size() == clean.losses.size();
  for (std::size_t e = 0; ok && e < clean.losses.size(); ++e) {
    ok = std::abs(chaos.losses[e] - clean.losses[e]) <= 1e-6;
  }
  std::printf("verdict:  recovered losses %s fault-free baseline (tol 1e-6)\n",
              ok ? "match" : "DIVERGE from");

  // 4. The persisted rank-0 checkpoint reloads and carries optimizer state.
  bool ckpt_ok = false;
  if (std::filesystem::exists(ckpt_path)) {
    GnnModel<double> reloaded(gat_config(k));
    std::vector<double> opt_state;
    const auto meta = load_checkpoint(ckpt_path, reloaded, &opt_state);
    ckpt_ok = meta.epoch > 0 && !opt_state.empty();
    std::printf("ckpt:     %s @ epoch %lld, %zu optimizer slots %s\n",
                ckpt_path.c_str(), static_cast<long long>(meta.epoch),
                opt_state.size(), ckpt_ok ? "[ok]" : "[BAD]");
    std::filesystem::remove(ckpt_path);
  } else {
    std::printf("ckpt:     %s missing [BAD]\n", ckpt_path.c_str());
  }

  return ok && ckpt_ok ? 0 : 1;
}
