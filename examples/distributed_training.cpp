// Distributed full-batch GAT training on the simulated cluster: runs the
// same workload under the global formulation (1.5D A-stationary scheme) and
// the local formulation (1D ghost exchange, the message-passing baseline),
// and prints per-rank-count communication volume, modeled communication
// time, and modeled end-to-end step time — a miniature of the paper's
// Figure 6 on one machine.
//
//   ./build/examples/distributed_training
//
// Set AGNN_TRACE=1 to record a per-rank timeline of every kernel,
// collective, and superstep into trace.json (open in ui.perfetto.dev).
#include <cstdio>

#include "baseline/dist_local_engine.hpp"
#include "comm/communicator.hpp"
#include "comm/cost_model.hpp"
#include "core/model.hpp"
#include "dist/dist_engine.hpp"
#include "graph/graph.hpp"
#include "graph/kronecker.hpp"
#include "obs/trace.hpp"

namespace {

using namespace agnn;

struct Measured {
  float loss = 0;
  double comm_mb = 0;
  double comm_s = 0;
  double total_s = 0;
};

GnnConfig gat_config(index_t k) {
  GnnConfig cfg;
  cfg.kind = ModelKind::kGAT;
  cfg.in_features = k;
  cfg.layer_widths = {k, k, k};
  cfg.seed = 17;
  return cfg;
}

template <typename MakeEngine>
Measured run(const CsrMatrix<float>& adj, const DenseMatrix<float>& x,
             std::span<const index_t> labels, int ranks, index_t k,
             MakeEngine&& make_engine) {
  const comm::CostModel cost{.alpha = 1.5e-6, .beta = 1.0 / 10.0e9};
  Measured out;
  const auto stats = comm::SpmdRuntime::run(ranks, [&](comm::Communicator& world) {
    GnnModel<float> model(gat_config(k));
    auto engine = make_engine(world, adj, model);
    SgdOptimizer<float> opt(0.01f);
    engine.train_step(x, labels, opt);  // warm-up
    comm::reset_all_stats(world);
    const auto res = engine.train_step(x, labels, opt);
    if (world.rank() == 0) out.loss = res.loss;
  });
  out.comm_mb = static_cast<double>(comm::max_bytes_sent(stats)) / 1e6;
  out.comm_s = cost.max_comm_time(stats);
  out.total_s = cost.total_time(stats);
  return out;
}

}  // namespace

int main() {
  const obs::TraceSession trace("trace.json");  // active iff AGNN_TRACE=1
  const index_t k = 16;
  graph::KroneckerParams params;
  params.scale = 11;  // n = 2048
  params.edges = 40000;
  const auto g = graph::build_graph<float>(graph::generate_kronecker(params));
  Rng rng(5);
  DenseMatrix<float> x(g.num_vertices(), k);
  x.fill_uniform(rng, -1.0, 1.0);
  std::vector<index_t> labels(static_cast<std::size_t>(g.num_vertices()));
  for (auto& l : labels) {
    l = static_cast<index_t>(rng.next_bounded(static_cast<std::uint64_t>(k)));
  }

  std::printf("3-layer GAT training step, n=%lld m=%lld k=%lld (Kronecker)\n",
              static_cast<long long>(g.num_vertices()),
              static_cast<long long>(g.num_edges()), static_cast<long long>(k));
  std::printf("%-22s %5s %12s %12s %12s %10s\n", "formulation", "p", "comm MB/rank",
              "comm time", "step time", "loss");

  for (const int p : {1, 4, 16, 64}) {
    const auto global = run(g.adj, x, labels, p, k,
                            [](comm::Communicator& w, const CsrMatrix<float>& a,
                               GnnModel<float>& m) {
                              return dist::DistGnnEngine<float>(w, a, m);
                            });
    std::printf("%-22s %5d %12.3f %10.2fus %10.2fms %10.4f\n", "global (1.5D)", p,
                global.comm_mb, global.comm_s * 1e6, global.total_s * 1e3,
                static_cast<double>(global.loss));
  }
  for (const int p : {1, 4, 16, 64}) {
    const auto local = run(g.adj, x, labels, p, k,
                           [](comm::Communicator& w, const CsrMatrix<float>& a,
                              GnnModel<float>& m) {
                             return baseline::DistLocalEngine<float>(w, a, m);
                           });
    std::printf("%-22s %5d %12.3f %10.2fus %10.2fms %10.4f\n",
                "local (ghost exch.)", p, local.comm_mb, local.comm_s * 1e6,
                local.total_s * 1e3, static_cast<double>(local.loss));
  }
  std::printf("\nBoth formulations compute identical losses; they differ in data"
              " movement.\n");
  return 0;
}
