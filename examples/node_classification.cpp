// Node classification on a planted-partition graph: the canonical GNN
// workload the paper's models are trained for. Compares all four models
// (GCN / VA / AGNN / GAT) on the same task with a train/test split and
// prints a small leaderboard.
//
//   ./build/examples/node_classification
#include <cstdio>
#include <memory>
#include <vector>

#include "core/model.hpp"
#include "core/multihead_gat.hpp"
#include "graph/graph.hpp"
#include "graph/sbm.hpp"

namespace {

using namespace agnn;

struct Task {
  CsrMatrix<float> adj;
  DenseMatrix<float> x;
  std::vector<index_t> labels;
  std::vector<std::uint8_t> train_mask, test_mask;
  index_t classes = 0;
};

// A 4-community stochastic block model with weakly-informative features:
// intra-community edge probability 0.12, inter 0.01.
Task make_task(index_t n, index_t classes, std::uint64_t seed) {
  const auto sbm = graph::generate_sbm(
      {.n = n, .communities = classes, .p_in = 0.12, .p_out = 0.01, .seed = seed});
  graph::BuildOptions opt;
  opt.add_self_loops = true;
  Task task;
  task.adj = graph::build_graph<float>(sbm.edges, opt).adj;
  task.classes = classes;
  task.labels = sbm.labels;
  task.x = DenseMatrix<float>(n, 8);
  task.train_mask.resize(static_cast<std::size_t>(n));
  task.test_mask.resize(static_cast<std::size_t>(n));
  Rng rng(seed + 1);
  for (index_t i = 0; i < n; ++i) {
    const index_t c = task.labels[static_cast<std::size_t>(i)];
    for (index_t f = 0; f < 8; ++f) {
      const double signal = (f % classes == c) ? 0.6 : -0.2;
      task.x(i, f) = static_cast<float>(signal + rng.next_uniform(-1.0, 1.0));
    }
    const bool train = rng.next_double() < 0.6;
    task.train_mask[static_cast<std::size_t>(i)] = train;
    task.test_mask[static_cast<std::size_t>(i)] = !train;
  }
  return task;
}

}  // namespace

int main() {
  const auto task = make_task(200, 4, 2026);
  std::printf("planted-partition task: n=%lld, m=%lld, 4 classes\n",
              static_cast<long long>(task.adj.rows()),
              static_cast<long long>(task.adj.nnz()));
  std::printf("%-6s %12s %12s %12s\n", "model", "final loss", "train acc", "test acc");

  for (const ModelKind kind :
       {ModelKind::kGCN, ModelKind::kGIN, ModelKind::kVA, ModelKind::kAGNN,
        ModelKind::kGAT}) {
    const CsrMatrix<float> adj =
        kind == ModelKind::kGCN ? graph::sym_normalize(task.adj) : task.adj;
    GnnConfig cfg;
    cfg.kind = kind;
    cfg.in_features = 8;
    cfg.layer_widths = {16, 4};
    cfg.hidden_activation = Activation::kTanh;
    cfg.mlp_activation = Activation::kTanh;
    cfg.seed = 7;
    GnnModel<float> model(cfg);
    Trainer<float> trainer(model, std::make_unique<AdamOptimizer<float>>(0.01f));
    const auto losses =
        trainer.train(adj, task.x, task.labels, 200, task.train_mask);
    const auto h = model.infer(adj, task.x);
    std::printf("%-6s %12.4f %11.1f%% %11.1f%%\n", to_string(kind),
                static_cast<double>(losses.back()),
                100.0 * accuracy<float>(h, task.labels, task.train_mask),
                100.0 * accuracy<float>(h, task.labels, task.test_mask));
  }

  // Multi-head GAT (3 heads concatenated, averaged output layer).
  {
    typename MultiHeadGat<float>::Config cfg;
    cfg.in_features = 8;
    cfg.head_features = 6;
    cfg.heads = 3;
    cfg.out_features = 4;
    cfg.out_heads = 2;
    cfg.hidden_layers = 1;
    cfg.hidden_activation = Activation::kTanh;
    cfg.seed = 7;
    MultiHeadGat<float> model(cfg);
    AdamOptimizer<float> opt(0.01f);
    float final_loss = 0;
    for (int e = 0; e < 200; ++e) {
      std::vector<MultiHeadCache<float>> caches;
      const auto h = model.forward(task.adj, task.x, caches);
      const auto loss =
          softmax_cross_entropy<float>(h, task.labels, task.train_mask);
      final_loss = loss.value;
      model.apply_gradients(model.backward(task.adj, caches, loss.grad), opt);
    }
    const auto h = model.infer(task.adj, task.x);
    std::printf("%-6s %12.4f %11.1f%% %11.1f%%\n", "GATx3",
                static_cast<double>(final_loss),
                100.0 * accuracy<float>(h, task.labels, task.train_mask),
                100.0 * accuracy<float>(h, task.labels, task.test_mask));
  }
  return 0;
}
