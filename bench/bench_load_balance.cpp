// Load-balance study: the effect of vertex ordering on the 2D-blocked
// distributed execution of heavy-tail (Kronecker) graphs.
//
// The paper's evaluation deliberately uses Kronecker graphs because they
// "ensure high load imbalance" (Section 8.1): in the natural order the hubs
// concentrate in the low-id block rows, so grid block (0,0) carries a
// disproportionate share of the non-zeros and its rank becomes the critical
// path. A random vertex shuffle rebalances the blocks; degree-descending
// order is the adversarial worst case. This benchmark quantifies all three
// on the same graph, reporting the block-imbalance factor (max/mean block
// nnz) and the modeled step time of distributed GAT training.
#include "bench_common.hpp"
#include "graph/reorder.hpp"

namespace agnn::bench {
namespace {

enum class Ordering { kNatural, kShuffled, kDegreeDescending };

const char* to_string(Ordering o) {
  switch (o) {
    case Ordering::kNatural: return "natural";
    case Ordering::kShuffled: return "shuffled";
    case Ordering::kDegreeDescending: return "degree_desc";
  }
  return "?";
}

const CsrMatrix<real_t>& ordered_graph(Ordering ordering) {
  static const graph::Graph<real_t> base = kronecker_graph(12, 0.005, 77);
  static const CsrMatrix<real_t> natural = base.adj;
  static const CsrMatrix<real_t> shuffled = graph::permute_graph(
      base.adj, graph::random_permutation(base.num_vertices(), 13));
  static const CsrMatrix<real_t> degree_desc = graph::permute_graph(
      base.adj, graph::degree_descending_permutation(base.adj));
  switch (ordering) {
    case Ordering::kNatural: return natural;
    case Ordering::kShuffled: return shuffled;
    case Ordering::kDegreeDescending: return degree_desc;
  }
  return natural;
}

void LoadBalance(benchmark::State& state) {
  const auto ordering = static_cast<Ordering>(state.range(0));
  const int ranks = static_cast<int>(state.range(1));
  const auto& adj = ordered_graph(ordering);

  Workload w;
  w.adj = &adj;
  w.k = 16;
  w.layers = 3;
  w.training = true;
  for (auto _ : state) {
    report(state, run_global(w, ModelKind::kGAT, ranks));
  }
  const int side = static_cast<int>(std::round(std::sqrt(ranks)));
  state.counters["block_imbalance"] = graph::block_imbalance(adj, side);
  state.counters["p"] = ranks;
  state.SetLabel(to_string(ordering));
}

void register_all() {
  for (const auto ordering : {Ordering::kNatural, Ordering::kShuffled,
                              Ordering::kDegreeDescending}) {
    for (const int p : {4, 16, 64}) {
      benchmark::RegisterBenchmark(
          (std::string("LoadBalance/") + to_string(ordering) + "/p" +
           std::to_string(p))
              .c_str(),
          LoadBalance)
          ->Args({static_cast<long>(ordering), p})
          ->UseManualTime()
          ->Iterations(1);
    }
  }
}

const int registered = (register_all(), 0);

}  // namespace
}  // namespace agnn::bench

BENCHMARK_MAIN();
