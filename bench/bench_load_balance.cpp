// Load-balance study: the effect of vertex ordering on the 2D-blocked
// distributed execution of heavy-tail (Kronecker) graphs.
//
// The paper's evaluation deliberately uses Kronecker graphs because they
// "ensure high load imbalance" (Section 8.1): in the natural order the hubs
// concentrate in the low-id block rows, so grid block (0,0) carries a
// disproportionate share of the non-zeros and its rank becomes the critical
// path. A random vertex shuffle rebalances the blocks; degree-descending
// order is the adversarial worst case. This benchmark quantifies all three
// on the same graph, reporting the block-imbalance factor (max/mean block
// nnz) and the modeled step time of distributed GAT training.
#include "bench_common.hpp"
#include "graph/reorder.hpp"
#include "tensor/fused.hpp"
#include "tensor/schedule.hpp"

namespace agnn::bench {
namespace {

enum class Ordering { kNatural, kShuffled, kDegreeDescending };

const char* to_string(Ordering o) {
  switch (o) {
    case Ordering::kNatural: return "natural";
    case Ordering::kShuffled: return "shuffled";
    case Ordering::kDegreeDescending: return "degree_desc";
  }
  return "?";
}

const CsrMatrix<real_t>& ordered_graph(Ordering ordering) {
  static const graph::Graph<real_t> base = kronecker_graph(12, 0.005, 77);
  static const CsrMatrix<real_t> natural = base.adj;
  static const CsrMatrix<real_t> shuffled = graph::permute_graph(
      base.adj, graph::random_permutation(base.num_vertices(), 13));
  static const CsrMatrix<real_t> degree_desc = graph::permute_graph(
      base.adj, graph::degree_descending_permutation(base.adj));
  switch (ordering) {
    case Ordering::kNatural: return natural;
    case Ordering::kShuffled: return shuffled;
    case Ordering::kDegreeDescending: return degree_desc;
  }
  return natural;
}

void LoadBalance(benchmark::State& state) {
  const auto ordering = static_cast<Ordering>(state.range(0));
  const int ranks = static_cast<int>(state.range(1));
  const auto& adj = ordered_graph(ordering);

  Workload w;
  w.adj = &adj;
  w.k = 16;
  w.layers = 3;
  w.training = true;
  for (auto _ : state) {
    report(state, run_global(w, ModelKind::kGAT, ranks));
  }
  const int side = static_cast<int>(std::round(std::sqrt(ranks)));
  state.counters["block_imbalance"] = graph::block_imbalance(adj, side);
  state.counters["p"] = ranks;
  state.SetLabel(to_string(ordering));
}

// Single-node load balance: the fused GAT aggregation on a skewed Kronecker
// graph under each KernelSchedule policy. Row-parallel serializes whichever
// thread draws a hub row; the edge-balanced and hybrid schedules split the
// hubs into grain-sized pieces with a deterministic partial reduction. Real
// wall-clock (not the BSP model): this is the kernel the schedule exists to
// speed up. Counters report the chunk decomposition so imbalance is visible
// next to the timing.
void ScheduleFusedGat(benchmark::State& state) {
  const auto policy = static_cast<SchedulePolicy>(state.range(0));
  static const graph::Graph<real_t> g = kronecker_graph(14, 0.001, 77);
  const CsrMatrix<real_t>& adj = g.adj;
  const index_t n = adj.rows(), k = 16;
  Rng rng(11);
  DenseMatrix<real_t> x(n, k);
  x.fill_uniform(rng, -1.0, 1.0);
  std::vector<real_t> s1(static_cast<std::size_t>(n)), s2(static_cast<std::size_t>(n));
  for (auto& v : s1) v = static_cast<real_t>(rng.next_uniform(-1.0, 1.0));
  for (auto& v : s2) v = static_cast<real_t>(rng.next_uniform(-1.0, 1.0));

  const auto sched =
      KernelSchedule::build(adj.row_ptr(), policy, kDefaultScheduleGrain);
  DenseMatrix<real_t> out;
  fused_gat_aggregate<real_t>(adj, s1, s2, 0.2f, x, out, &sched);  // warm-up
  for (auto _ : state) {
    fused_gat_aggregate<real_t>(adj, s1, s2, 0.2f, x, out, &sched);
  }
  const auto& st = sched.stats();
  state.counters["nnz"] = static_cast<double>(st.nnz);
  state.counters["max_row_nnz"] = static_cast<double>(st.max_row_nnz);
  state.counters["skew"] = st.skew;
  state.counters["chunks"] = static_cast<double>(sched.chunks().size());
  state.counters["split_rows"] = static_cast<double>(sched.num_split_rows());
  state.SetLabel(to_string(sched.policy()));
}

void register_all() {
  for (const auto ordering : {Ordering::kNatural, Ordering::kShuffled,
                              Ordering::kDegreeDescending}) {
    for (const int p : {4, 16, 64}) {
      benchmark::RegisterBenchmark(
          (std::string("LoadBalance/") + to_string(ordering) + "/p" +
           std::to_string(p))
              .c_str(),
          LoadBalance)
          ->Args({static_cast<long>(ordering), p})
          ->UseManualTime()
          ->Iterations(1);
    }
  }
  for (const auto policy :
       {SchedulePolicy::kRowParallel, SchedulePolicy::kEdgeBalanced,
        SchedulePolicy::kHybridBinned}) {
    benchmark::RegisterBenchmark(
        (std::string("ScheduleFusedGat/") + agnn::to_string(policy)).c_str(),
        ScheduleFusedGat)
        ->Args({static_cast<long>(policy)});
  }
}

const int registered = (register_all(), 0);

}  // namespace
}  // namespace agnn::bench

AGNN_BENCH_MAIN()
