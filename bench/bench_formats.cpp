// Format roofline study: the (reordering x sparse-format x schedule) cross
// product on a skewed Kronecker graph, measured as SpMM throughput.
//
// Each cell reports effective bandwidth (GB/s over the minimal traffic:
// the edge list once, the feature matrix once, the output once) and the
// speedup against the scalar CSR row-parallel kernel on the SAME vertex
// ordering — so the format/schedule effect is isolated from the reordering
// effect, and the reordering effect is visible by comparing cells down a
// column. The blocked formats (SELL-C-sigma, BCSR) own whole output rows
// per chunk and therefore ignore the schedule axis; their cells are
// repeated across schedules so the table stays a full cross product.
//
// The pinned numbers live in results/bench_formats.txt (schema in
// results/README.md).
#include <chrono>
#include <cmath>
#include <string>

#include "bench_common.hpp"
#include "graph/reorder.hpp"
#include "tensor/bcsr_matrix.hpp"
#include "tensor/blocked_ops.hpp"
#include "tensor/schedule.hpp"
#include "tensor/sell_matrix.hpp"
#include "tensor/spmm.hpp"

namespace agnn::bench {
namespace {

enum class Ordering { kNatural, kShuffled, kDegreeDescending, kRcm };
enum class Format { kCsr, kSell, kBcsr };

const char* to_string(Ordering o) {
  switch (o) {
    case Ordering::kNatural: return "natural";
    case Ordering::kShuffled: return "shuffled";
    case Ordering::kDegreeDescending: return "degree_desc";
    case Ordering::kRcm: return "rcm";
  }
  return "?";
}

const char* to_string(Format f) {
  switch (f) {
    case Format::kCsr: return "csr";
    case Format::kSell: return "sell";
    case Format::kBcsr: return "bcsr";
  }
  return "?";
}

// Dataset B0 at reduced scale: heavy-tailed, so the orderings genuinely
// differ in locality and the hub rows stress the blocked formats' padding.
const CsrMatrix<real_t>& ordered_graph(Ordering ordering) {
  static const graph::Graph<real_t> base = kronecker_graph(13, 0.002, 77);
  static const CsrMatrix<real_t> natural = base.adj;
  static const CsrMatrix<real_t> shuffled = graph::permute_graph(
      base.adj, graph::random_permutation(base.num_vertices(), 13));
  static const CsrMatrix<real_t> degree_desc = graph::permute_graph(
      base.adj, graph::degree_descending_permutation(base.adj));
  static const CsrMatrix<real_t> rcm =
      graph::permute_graph(base.adj, graph::rcm_permutation(base.adj));
  switch (ordering) {
    case Ordering::kNatural: return natural;
    case Ordering::kShuffled: return shuffled;
    case Ordering::kDegreeDescending: return degree_desc;
    case Ordering::kRcm: return rcm;
  }
  return natural;
}

// Best-of-reps wall time of a kernel closure (the usual roofline practice:
// the minimum is the least noise-contaminated estimate of the true cost).
template <typename F>
double best_seconds(F&& fn, int reps = 5) {
  fn();  // warm-up: touches allocations and the format caches
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    best = std::min(best, dt.count());
  }
  return best;
}

void FormatRoofline(benchmark::State& state) {
  const auto ordering = static_cast<Ordering>(state.range(0));
  const auto format = static_cast<Format>(state.range(1));
  const auto policy = static_cast<SchedulePolicy>(state.range(2));
  const index_t k = static_cast<index_t>(state.range(3));

  const CsrMatrix<real_t>& adj = ordered_graph(ordering);
  const index_t n = adj.rows();
  Rng rng(11);
  DenseMatrix<real_t> x(n, k);
  x.fill_uniform(rng, -1.0, 1.0);
  DenseMatrix<real_t> out(n, k);

  const auto sched =
      KernelSchedule::build(adj.row_ptr(), policy, kDefaultScheduleGrain);
  const auto row = KernelSchedule::build(adj.row_ptr(),
                                         SchedulePolicy::kRowParallel,
                                         kDefaultScheduleGrain);

  // Format conversions happen outside the timed region, like the cached
  // dispatch path (sell_for / bcsr_for build once per sparsity pattern).
  const auto sell = SellCSigmaMatrix<real_t>::from_csr(adj);
  const auto bcsr = BcsrMatrix<real_t>::from_csr(adj);

  auto run_cell = [&] {
    switch (format) {
      case Format::kCsr: spmm(adj, x, out, &sched); break;
      case Format::kSell: sell_spmm(sell, adj.vals(), x, out); break;
      case Format::kBcsr:
        if (bcsr.valid()) {
          bcsr_spmm(bcsr, adj.vals(), x, out);
        } else {
          spmm(adj, x, out, &sched);  // the dispatch layer's own fallback
        }
        break;
    }
  };
  const double cell_s = best_seconds(run_cell);
  const double base_s = best_seconds([&] { spmm(adj, x, out, &row); });

  for (auto _ : state) state.SetIterationTime(cell_s);

  // Minimal traffic: every edge (value + column index) once, H once, out
  // once. Padding and re-reads only lower the achieved number.
  const double bytes =
      static_cast<double>(adj.nnz()) * (sizeof(real_t) + sizeof(index_t)) +
      2.0 * static_cast<double>(n) * static_cast<double>(k) * sizeof(real_t);
  state.counters["GBps"] = bytes / 1e9 / cell_s;
  state.counters["speedup_vs_csr_row"] = base_s / cell_s;
  state.counters["nnz"] = static_cast<double>(adj.nnz());
  state.counters["k"] = static_cast<double>(k);
  state.SetLabel(std::string(to_string(ordering)) + "/" + to_string(format) +
                 "/" + agnn::to_string(policy));
}

void register_all() {
  for (const auto ordering :
       {Ordering::kNatural, Ordering::kShuffled, Ordering::kDegreeDescending,
        Ordering::kRcm}) {
    for (const auto format : {Format::kCsr, Format::kSell, Format::kBcsr}) {
      for (const auto policy :
           {SchedulePolicy::kRowParallel, SchedulePolicy::kEdgeBalanced,
            SchedulePolicy::kHybridBinned}) {
        for (const long k : {32L, 64L}) {
          benchmark::RegisterBenchmark(
              (std::string("FormatRoofline/") + to_string(ordering) + "/" +
               to_string(format) + "/" + agnn::to_string(policy) + "/k" +
               std::to_string(k))
                  .c_str(),
              FormatRoofline)
              ->Args({static_cast<long>(ordering), static_cast<long>(format),
                      static_cast<long>(policy), k})
              ->UseManualTime()
              ->Iterations(1);
        }
      }
    }
  }
}

const int registered = (register_all(), 0);

}  // namespace
}  // namespace agnn::bench

AGNN_BENCH_MAIN()
