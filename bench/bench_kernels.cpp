// Kernel-level benchmarks and design-choice ablations:
//
//   * Section 6.1/6.2 fusion ablation — the fused Psi kernels (virtual
//     intermediates) vs the unfused reference that materializes the dense
//     n x n matrices, and the fully-fused SDDMM+SpMM aggregation vs the
//     two-kernel pipeline;
//   * Section 4.4 Phi ∘ ⊕ ordering — (Psi H) W vs Psi (H W) at different
//     width ratios (the SpMMM association-order choice);
//   * Section 4.3 semiring aggregations — sum/min/max/mean SpMM;
//   * per-edge local-formulation (DGL-style UDF) execution vs the global
//     fused kernels at equal math;
//   * CSR SpMM loop scheduling (static vs dynamic) on a heavy-tail graph.
#include <benchmark/benchmark.h>

#include "baseline/local_engine.hpp"
#include "bench_common.hpp"
#include "obs/trace.hpp"
#include "tensor/fused.hpp"
#include "tensor/reference_impls.hpp"
#include "tensor/spgemm.hpp"
#include "tensor/spmm.hpp"

namespace agnn::bench {
namespace {

struct KernelFixture {
  graph::Graph<real_t> g;
  DenseMatrix<real_t> h;
  DenseMatrix<real_t> w;
  std::vector<real_t> s1, s2;

  KernelFixture(index_t n, double density, index_t k)
      : g(kronecker_graph(static_cast<int>(std::round(std::log2(n))), density, 17)),
        h(g.num_vertices(), k),
        w(k, k) {
    Rng rng(3);
    h.fill_uniform(rng, -1.0, 1.0);
    w.fill_glorot(rng);
    s1.resize(static_cast<std::size_t>(g.num_vertices()));
    s2.resize(static_cast<std::size_t>(g.num_vertices()));
    for (auto& v : s1) v = static_cast<real_t>(rng.next_uniform(-1, 1));
    for (auto& v : s2) v = static_cast<real_t>(rng.next_uniform(-1, 1));
  }
};

KernelFixture& fixture(index_t n, double density, index_t k) {
  struct Key {
    index_t n;
    double d;
    index_t k;
  };
  static std::vector<std::pair<Key, KernelFixture>> cache;
  for (auto& [key, f] : cache) {
    if (key.n == n && key.d == density && key.k == k) return f;
  }
  cache.emplace_back(Key{n, density, k}, KernelFixture(n, density, k));
  return cache.back().second;
}

// ---- fusion ablation ------------------------------------------------------------

void PsiVaFused(benchmark::State& state) {
  auto& f = fixture(state.range(0), 0.01, state.range(1));
  for (auto _ : state) benchmark::DoNotOptimize(psi_va(f.g.adj, f.h));
  state.counters["nnz"] = static_cast<double>(f.g.num_edges());
}
void PsiVaUnfused(benchmark::State& state) {
  auto& f = fixture(state.range(0), 0.01, state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(reference::psi_va_unfused(f.g.adj, f.h));
  }
}
void PsiGatFused(benchmark::State& state) {
  auto& f = fixture(state.range(0), 0.01, state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(psi_gat<real_t>(f.g.adj, f.s1, f.s2, 0.2f));
  }
}
void PsiGatUnfused(benchmark::State& state) {
  auto& f = fixture(state.range(0), 0.01, state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(row_softmax(
        reference::gat_scores_unfused<real_t>(f.g.adj, f.s1, f.s2, 0.2f)));
  }
}
void PsiAgnnFused(benchmark::State& state) {
  auto& f = fixture(state.range(0), 0.01, state.range(1));
  for (auto _ : state) benchmark::DoNotOptimize(psi_agnn(f.g.adj, f.h));
}
void PsiAgnnUnfused(benchmark::State& state) {
  auto& f = fixture(state.range(0), 0.01, state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(reference::psi_agnn_unfused(f.g.adj, f.h));
  }
}

// Deep fusion: SDDMM folded into the following SpMM (no Psi materialized).
void VaAggregateDeepFused(benchmark::State& state) {
  auto& f = fixture(state.range(0), 0.01, state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fused_va_aggregate(f.g.adj, f.h, f.h));
  }
}
void VaAggregateTwoKernel(benchmark::State& state) {
  auto& f = fixture(state.range(0), 0.01, state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(spmm(psi_va(f.g.adj, f.h), f.h));
  }
}
void GatAggregateDeepFused(benchmark::State& state) {
  auto& f = fixture(state.range(0), 0.01, state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fused_gat_aggregate<real_t>(f.g.adj, f.s1, f.s2, 0.2f, f.h));
  }
}
void GatAggregateTwoKernel(benchmark::State& state) {
  auto& f = fixture(state.range(0), 0.01, state.range(1));
  for (auto _ : state) {
    const auto gp = psi_gat<real_t>(f.g.adj, f.s1, f.s2, 0.2f);
    benchmark::DoNotOptimize(spmm(gp.psi, f.h));
  }
}

// ---- Phi ∘ ⊕ ordering (Section 4.4) ----------------------------------------------

void PhiAfterAggregate(benchmark::State& state) {
  // Z = (Psi H) W — cheap when k_out >= k_in.
  auto& f = fixture(1024, 0.01, state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(matmul(spmm(f.g.adj, f.h), f.w));
  }
}
void PhiBeforeAggregate(benchmark::State& state) {
  // Z = Psi (H W) — cheap when k_out <= k_in.
  auto& f = fixture(1024, 0.01, state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(spmm(f.g.adj, matmul(f.h, f.w)));
  }
}
void SpmmmAutoOrder(benchmark::State& state) {
  auto& f = fixture(1024, 0.01, state.range(0));
  for (auto _ : state) benchmark::DoNotOptimize(spmmm(f.g.adj, f.h, f.w));
}

// ---- semiring aggregations (Section 4.3) ------------------------------------------

void SemiringAggregate(benchmark::State& state) {
  auto& f = fixture(2048, 0.01, 16);
  const auto agg = static_cast<Aggregation>(state.range(0));
  const CsrMatrix<real_t> a =
      (agg == Aggregation::kMin || agg == Aggregation::kMax)
          ? f.g.adj.with_values(0.0f)
          : f.g.adj;
  for (auto _ : state) benchmark::DoNotOptimize(aggregate(a, f.h, agg));
  state.SetLabel(to_string(agg));
}

// ---- per-edge (local, DGL-UDF style) vs global execution ---------------------------

void LayerGlobalKernels(benchmark::State& state) {
  auto& f = fixture(2048, 0.01, 16);
  const auto kind = static_cast<ModelKind>(state.range(0));
  GnnModel<real_t> model(model_config(kind, 16, 1));
  for (auto _ : state) benchmark::DoNotOptimize(model.infer(f.g.adj, f.h));
  state.SetLabel(to_string(kind));
}
void LayerLocalPerEdge(benchmark::State& state) {
  auto& f = fixture(2048, 0.01, 16);
  const auto kind = static_cast<ModelKind>(state.range(0));
  GnnModel<real_t> model(model_config(kind, 16, 1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(baseline::local_infer(model, f.g.adj, f.h));
  }
  state.SetLabel(to_string(kind));
}

// ---- other core kernels ---------------------------------------------------------------

void SpgemmAA(benchmark::State& state) {
  auto& f = fixture(state.range(0), 0.005, 16);
  const auto ones = f.g.adj.with_values(1.0f);
  for (auto _ : state) benchmark::DoNotOptimize(spgemm(ones, ones));
  state.counters["nnz"] = static_cast<double>(f.g.num_edges());
}
void SpgemmMaskedTriangles(benchmark::State& state) {
  auto& f = fixture(state.range(0), 0.005, 16);
  const auto ones = f.g.adj.with_values(1.0f);
  for (auto _ : state) benchmark::DoNotOptimize(spgemm_masked(ones, ones, ones));
}
void SparseTranspose(benchmark::State& state) {
  auto& f = fixture(state.range(0), 0.005, 16);
  for (auto _ : state) benchmark::DoNotOptimize(f.g.adj.transposed());
}
void GraphSoftmax(benchmark::State& state) {
  auto& f = fixture(state.range(0), 0.005, 16);
  for (auto _ : state) benchmark::DoNotOptimize(row_softmax(f.g.adj));
}
void SddmmKernel(benchmark::State& state) {
  auto& f = fixture(state.range(0), 0.005, state.range(1));
  for (auto _ : state) benchmark::DoNotOptimize(sddmm(f.g.adj, f.h, f.h));
}
// Sparse reductions: row sums walk CSR rows contiguously; col sums scatter
// into per-thread partials above the parallel-path nnz threshold (1 << 13).
void SparseRowSums(benchmark::State& state) {
  auto& f = fixture(state.range(0), 0.005, 16);
  std::vector<real_t> sums;
  for (auto _ : state) {
    sparse_row_sums(f.g.adj, sums);
    benchmark::DoNotOptimize(sums.data());
  }
  state.counters["nnz"] = static_cast<double>(f.g.num_edges());
}
void SparseColSums(benchmark::State& state) {
  auto& f = fixture(state.range(0), 0.005, 16);
  std::vector<real_t> sums;
  for (auto _ : state) {
    sparse_col_sums(f.g.adj, sums);
    benchmark::DoNotOptimize(sums.data());
  }
  state.counters["nnz"] = static_cast<double>(f.g.num_edges());
}

// ---- workspace-backed (pooled) execution -------------------------------------------
//
// The out-parameter overloads fed from a Workspace pool: after the first
// iteration every buffer is recycled, so these runs isolate kernel math from
// allocator traffic. Counters report the pool's behavior over the measured
// iterations: hit rate, misses (fresh heap blocks), resident pool size, and
// payload bytes handed out per iteration.

void report_workspace(benchmark::State& state, const WorkspaceStats& st) {
  state.counters["ws_hit_rate"] = st.hit_rate();
  state.counters["ws_misses"] = static_cast<double>(st.pool_misses);
  state.counters["ws_resident_MB"] =
      static_cast<double>(st.resident_bytes) / 1e6;
  state.counters["ws_acquired_MB_iter"] = benchmark::Counter(
      static_cast<double>(st.bytes_acquired) / 1e6,
      benchmark::Counter::kAvgIterations);
}

void SpmmPooled(benchmark::State& state) {
  auto& f = fixture(state.range(0), 0.005, state.range(1));
  Workspace<real_t> ws;
  for (auto _ : state) {
    auto out = ws.acquire_dense(f.g.num_vertices(), f.h.cols());
    spmm(f.g.adj, f.h, *out);
    benchmark::DoNotOptimize(out->data());
  }
  report_workspace(state, ws.stats());
}
void PsiGatPooled(benchmark::State& state) {
  auto& f = fixture(state.range(0), 0.01, state.range(1));
  Workspace<real_t> ws;
  for (auto _ : state) {
    auto pre = ws.acquire_csr_like(f.g.adj);
    auto psi = ws.acquire_csr_like(f.g.adj);
    psi_gat<real_t>(f.g.adj, f.s1, f.s2, 0.2f, *pre, *psi);
    benchmark::DoNotOptimize(psi->vals().data());
  }
  report_workspace(state, ws.stats());
}
void SddmmPooled(benchmark::State& state) {
  auto& f = fixture(state.range(0), 0.005, state.range(1));
  Workspace<real_t> ws;
  for (auto _ : state) {
    auto out = ws.acquire_csr_like(f.g.adj);
    sddmm(f.g.adj, f.h, f.h, *out);
    benchmark::DoNotOptimize(out->vals().data());
  }
  report_workspace(state, ws.stats());
}
void LayerForwardPooled(benchmark::State& state) {
  auto& f = fixture(2048, 0.01, 16);
  const auto kind = static_cast<ModelKind>(state.range(0));
  GnnModel<real_t> model(model_config(kind, 16, 1));
  Workspace<real_t> ws;
  DenseMatrix<real_t> h_out;
  for (auto _ : state) {
    baseline::local_infer(model, f.g.adj, f.h, ws, h_out);
    benchmark::DoNotOptimize(h_out.data());
  }
  report_workspace(state, ws.stats());
  state.SetLabel(to_string(kind));
}
// Full training step through the persistent Trainer: counters measured after
// a warm-up step, so ws_misses == 0 demonstrates the steady-state claim.
void TrainStepPooled(benchmark::State& state) {
  auto& f = fixture(1024, 0.01, 16);
  const auto kind = static_cast<ModelKind>(state.range(0));
  const index_t n = f.g.num_vertices();
  std::vector<index_t> labels(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) labels[static_cast<std::size_t>(i)] = i % 2;
  GnnModel<real_t> model(model_config(kind, 16, 2));
  Trainer<real_t> trainer(model, std::make_unique<AdamOptimizer<real_t>>(0.01));
  const CsrMatrix<real_t> adj_t = f.g.adj.transposed();
  trainer.step(f.g.adj, adj_t, f.h, labels);  // warm-up epoch
  trainer.workspace().reset_stats();
  for (auto _ : state) {
    benchmark::DoNotOptimize(trainer.step(f.g.adj, adj_t, f.h, labels).loss);
  }
  report_workspace(state, trainer.workspace_stats());
  state.SetLabel(to_string(kind));
}

// ---- SpMM scheduling ablation -------------------------------------------------------

template <bool kDynamic>
DenseMatrix<real_t> spmm_scheduled(const CsrMatrix<real_t>& a,
                                   const DenseMatrix<real_t>& h) {
  const index_t n = a.rows(), k = h.cols();
  DenseMatrix<real_t> out(n, k, 0.0f);
  if constexpr (kDynamic) {
#pragma omp parallel for schedule(dynamic, 64)
    for (index_t i = 0; i < n; ++i) {
      real_t* oi = out.data() + i * k;
      for (index_t e = a.row_begin(i); e < a.row_end(i); ++e) {
        const real_t* hj = h.data() + a.col_at(e) * k;
        const real_t av = a.val_at(e);
        for (index_t g = 0; g < k; ++g) oi[g] += av * hj[g];
      }
    }
  } else {
#pragma omp parallel for schedule(static)
    for (index_t i = 0; i < n; ++i) {
      real_t* oi = out.data() + i * k;
      for (index_t e = a.row_begin(i); e < a.row_end(i); ++e) {
        const real_t* hj = h.data() + a.col_at(e) * k;
        const real_t av = a.val_at(e);
        for (index_t g = 0; g < k; ++g) oi[g] += av * hj[g];
      }
    }
  }
  return out;
}

// ---- tracing overhead (the obs/trace.hpp contract) --------------------------------
//
// Every kernel above already contains AGNN_TRACE_SCOPE; these two measure what
// that costs. TraceSpanDisabled is the per-span price every untraced run pays
// (contract: one relaxed atomic load + branch in the constructor, one
// predictable member-bool branch in the destructor — single-digit ns, which
// against the µs-scale kernels above is the <1% overhead the design promises,
// cf. GatAggregateDeepFused). TraceSpanEnabled is the recording price.

void TraceSpanDisabled(benchmark::State& state) {
  obs::Tracer::set_enabled(false);
  for (auto _ : state) {
    AGNN_TRACE_SCOPE("bench_span", kKernel);
    benchmark::ClobberMemory();
  }
}
void TraceSpanEnabled(benchmark::State& state) {
  obs::Tracer::instance().set_buffer_capacity(1u << 16);
  obs::Tracer::instance().clear();
  obs::Tracer::set_enabled(true);
  std::uint64_t i = 0;
  for (auto _ : state) {
    // Drain the thread buffer before it fills so every iteration measures
    // the accept path, not the drop path. clear() is safe here: same
    // thread, no span open.
    if ((++i & ((1u << 14) - 1)) == 0) obs::Tracer::instance().clear();
    AGNN_TRACE_SCOPE("bench_span", kKernel);
    benchmark::ClobberMemory();
  }
  obs::Tracer::set_enabled(false);
  obs::Tracer::instance().clear();
}
// The fused-GAT microbench with recording on: compare against
// GatAggregateDeepFused (same math, spans compiled in but disabled) to see
// the end-to-end tracing cost on a real kernel.
void GatAggregateDeepFusedTraced(benchmark::State& state) {
  auto& f = fixture(state.range(0), 0.01, state.range(1));
  obs::Tracer::instance().set_buffer_capacity(1u << 16);
  obs::Tracer::instance().clear();
  obs::Tracer::set_enabled(true);
  std::uint64_t i = 0;
  for (auto _ : state) {
    if ((++i & ((1u << 12) - 1)) == 0) obs::Tracer::instance().clear();
    benchmark::DoNotOptimize(
        fused_gat_aggregate<real_t>(f.g.adj, f.s1, f.s2, 0.2f, f.h));
  }
  obs::Tracer::set_enabled(false);
  obs::Tracer::instance().clear();
  // Tracing was on, so the kernel's latency histogram recorded every call:
  // surface its tail (and, under AGNN_PERF, the hardware counters) in the
  // report.
  attach_histogram_quantiles(state, "kernel.fused_gat_aggregate.ns");
  attach_perf_counters(state, "fused_gat_aggregate");
}

void SpmmStatic(benchmark::State& state) {
  auto& f = fixture(4096, 0.005, 16);  // heavy-tail: load imbalance matters
  for (auto _ : state) benchmark::DoNotOptimize(spmm_scheduled<false>(f.g.adj, f.h));
}
void SpmmDynamic(benchmark::State& state) {
  auto& f = fixture(4096, 0.005, 16);
  for (auto _ : state) benchmark::DoNotOptimize(spmm_scheduled<true>(f.g.adj, f.h));
}

BENCHMARK(PsiVaFused)->Args({512, 16})->Args({1024, 16})->Args({1024, 128});
BENCHMARK(PsiVaUnfused)->Args({512, 16})->Args({1024, 16})->Args({1024, 128});
BENCHMARK(PsiAgnnFused)->Args({512, 16})->Args({1024, 16});
BENCHMARK(PsiAgnnUnfused)->Args({512, 16})->Args({1024, 16});
BENCHMARK(PsiGatFused)->Args({512, 16})->Args({1024, 16});
BENCHMARK(PsiGatUnfused)->Args({512, 16})->Args({1024, 16});
BENCHMARK(VaAggregateDeepFused)->Args({1024, 16})->Args({1024, 128});
BENCHMARK(VaAggregateTwoKernel)->Args({1024, 16})->Args({1024, 128});
BENCHMARK(GatAggregateDeepFused)->Args({1024, 16});
BENCHMARK(GatAggregateTwoKernel)->Args({1024, 16});
BENCHMARK(PhiAfterAggregate)->Arg(16)->Arg(64)->Arg(128);
BENCHMARK(PhiBeforeAggregate)->Arg(16)->Arg(64)->Arg(128);
BENCHMARK(SpmmmAutoOrder)->Arg(16)->Arg(64)->Arg(128);
BENCHMARK(SemiringAggregate)
    ->Arg(static_cast<long>(Aggregation::kSum))
    ->Arg(static_cast<long>(Aggregation::kMin))
    ->Arg(static_cast<long>(Aggregation::kMax))
    ->Arg(static_cast<long>(Aggregation::kMean));
BENCHMARK(LayerGlobalKernels)
    ->Arg(static_cast<long>(ModelKind::kVA))
    ->Arg(static_cast<long>(ModelKind::kAGNN))
    ->Arg(static_cast<long>(ModelKind::kGAT));
BENCHMARK(LayerLocalPerEdge)
    ->Arg(static_cast<long>(ModelKind::kVA))
    ->Arg(static_cast<long>(ModelKind::kAGNN))
    ->Arg(static_cast<long>(ModelKind::kGAT));
BENCHMARK(SpmmPooled)->Args({2048, 16})->Args({2048, 128});
BENCHMARK(SddmmPooled)->Args({2048, 16})->Args({2048, 128});
BENCHMARK(PsiGatPooled)->Args({1024, 16});
BENCHMARK(LayerForwardPooled)
    ->Arg(static_cast<long>(ModelKind::kVA))
    ->Arg(static_cast<long>(ModelKind::kAGNN))
    ->Arg(static_cast<long>(ModelKind::kGAT));
BENCHMARK(TrainStepPooled)
    ->Arg(static_cast<long>(ModelKind::kGCN))
    ->Arg(static_cast<long>(ModelKind::kGAT));
BENCHMARK(SpmmStatic);
BENCHMARK(SpmmDynamic);
BENCHMARK(SpgemmAA)->Arg(1024)->Arg(2048);
BENCHMARK(SpgemmMaskedTriangles)->Arg(1024)->Arg(2048);
BENCHMARK(SparseTranspose)->Arg(2048)->Arg(4096);
BENCHMARK(GraphSoftmax)->Arg(2048)->Arg(4096);
BENCHMARK(SddmmKernel)->Args({2048, 16})->Args({2048, 128});
BENCHMARK(SparseRowSums)->Arg(2048)->Arg(8192);
BENCHMARK(SparseColSums)->Arg(2048)->Arg(8192);
BENCHMARK(TraceSpanDisabled);
BENCHMARK(TraceSpanEnabled);
BENCHMARK(GatAggregateDeepFusedTraced)->Args({1024, 16});

}  // namespace
}  // namespace agnn::bench

AGNN_BENCH_MAIN()
