// Online-serving benchmark: closed-loop Zipf clients against the
// InferenceServer, reporting end-to-end latency quantiles (p50/p99/p999
// from the serve.request.ns histogram) and sustained throughput, across
// the batch-window x fan-out x server-thread grid — plus the per-request
// sequential baseline the batched rows must beat (the whole point of the
// request batcher is that coalescing amortizes per-forward overheads:
// fewer kernel launches, fewer schedule builds, one attention pass over
// the disjoint union instead of B tiny ones).
//
// Workload: dataset B0 at scale 14 (n = 2^14 Kronecker), 2-layer GAT,
// float32, Zipf(0.99) vertex popularity — the hot-vertex regime the
// feature cache exists for. Closed loop: each client keeps exactly one
// request in flight, so concurrency equals the client count and the
// batcher's window (not an unbounded backlog) is what creates batches.
//
// Pinned rows live in results/baseline_bench.json; CI re-runs this bench
// and gates on regressions via bench_compare.
#include <chrono>
#include <thread>

#include "bench_common.hpp"
#include "serve/server.hpp"
#include "serve/zipf.hpp"

namespace agnn::bench {
namespace {

constexpr int kScale = 14;
constexpr double kDensity = 0.001;  // ~16 neighbors/vertex at scale 14
constexpr index_t kFeatures = 32;
constexpr int kLayers = 2;
constexpr double kZipfExponent = 0.99;
constexpr int kClients = 8;
// Each client keeps kPipeline requests in flight (submit a burst, drain
// it, repeat). Total outstanding = kClients * kPipeline = 64, matched to
// the server's max_batch so full batches close immediately instead of
// idling out the window timer.
constexpr int kPipeline = 8;
constexpr int kRoundsPerClient = 16;
constexpr int kRequestsPerClient = kPipeline * kRoundsPerClient;
constexpr int kTotalRequests = kClients * kRequestsPerClient;

struct ServingFixture {
  graph::Graph<real_t> graph;
  GnnModel<real_t> model;
  DenseMatrix<real_t> x;
  serve::ZipfSampler zipf;

  ServingFixture()
      : graph(kronecker_graph(kScale, kDensity, 77)),
        model([] {
          GnnConfig cfg = model_config(ModelKind::kGAT, kFeatures, kLayers);
          cfg.layer_widths.back() = kFeatures / 2;
          return cfg;
        }()),
        x(graph.num_vertices(), kFeatures),
        zipf(graph.num_vertices(), kZipfExponent, /*perm_seed=*/3) {
    Rng rng(11);
    x.fill_uniform(rng, -1.0, 1.0);
  }
};

const ServingFixture& fixture() {
  static const ServingFixture fx;
  return fx;
}

obs::Histogram& latency_histogram() {
  return obs::MetricsRegistry::global().histogram("serve.request.ns");
}

obs::Histogram& batch_size_histogram() {
  return obs::MetricsRegistry::global().histogram("serve.batch.size");
}

void attach_serving_counters(benchmark::State& state, double elapsed_s,
                             int completed) {
  state.counters["req_per_s"] = static_cast<double>(completed) / elapsed_s;
  attach_histogram_quantiles(state, "serve.request.ns");
  // attach_histogram_quantiles is tracer-gated for kernel latencies, but
  // serve.request.ns records unconditionally, so the quantiles are always
  // present here.
}

// ---- direct baseline -------------------------------------------------------
// No server at all: one thread calling the sampling + gather + forward
// pipeline in a loop. This is the compute floor — no queue, no futures,
// no wakeups — useful to see how much the serving machinery itself costs.
void ServingDirect(benchmark::State& state) {
  const auto& fx = fixture();
  const auto fanout = static_cast<index_t>(state.range(0));
  const serve::NeighborSampler sampler(fanout, kLayers, /*base_seed=*/42);
  Workspace<real_t> ws;
  latency_histogram().reset();

  // Warm the workspace pool outside the measured window.
  (void)serve::serve_sequential(fx.model, fx.graph.adj, fx.x, sampler, 0,
                                serve::derive_request_seed(42, 0), ws);

  double elapsed_s = 0;
  for (auto _ : state) {
    Rng vertex_rng(5);
    const auto begin = std::chrono::steady_clock::now();
    for (int i = 0; i < kTotalRequests; ++i) {
      const index_t v = fx.zipf.sample(vertex_rng);
      const auto t0 = std::chrono::steady_clock::now();
      benchmark::DoNotOptimize(serve::serve_sequential(
          fx.model, fx.graph.adj, fx.x, sampler, v,
          serve::derive_request_seed(42, static_cast<std::uint64_t>(i)), ws));
      latency_histogram().record(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count()));
    }
    elapsed_s = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - begin)
                    .count();
    state.SetIterationTime(elapsed_s);
  }
  attach_serving_counters(state, elapsed_s, kTotalRequests);
  state.counters["fanout"] = static_cast<double>(fanout);
}

// ---- server benches --------------------------------------------------------
// Shared harness: closed-loop pipelined Zipf clients against a live
// InferenceServer. `max_batch == 1` is the per-request sequential serving
// baseline (every request pays its own dispatch + wakeup); `max_batch > 1`
// is the batched path the baseline has to lose to — coalescing amortizes
// the queue/condvar/reply machinery across the whole batch.
void run_server_bench(benchmark::State& state, index_t fanout,
                      std::size_t max_batch, long window_us,
                      std::size_t threads) {
  const auto& fx = fixture();
  serve::ServeConfig sc;
  sc.num_threads = threads;
  sc.max_batch = max_batch;
  sc.batch_window = std::chrono::microseconds(window_us);
  sc.fanout = fanout;
  sc.sample_seed = 42;
  sc.cache_capacity = 2048;
  sc.cache_shards = 8;

  double elapsed_s = 0;
  serve::VertexCache<real_t>::Stats cache_stats;
  for (auto _ : state) {
    serve::InferenceServer<real_t> server(fx.model, fx.graph.adj, fx.x, sc);
    // Warm-up outside the measured window: first touch of the workspace
    // pools, then reset the cumulative registry histograms so the
    // quantiles below describe this configuration only.
    server.submit(0).get();
    latency_histogram().reset();
    batch_size_histogram().reset();

    const auto begin = std::chrono::steady_clock::now();
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        Rng vertex_rng(static_cast<std::uint64_t>(c) + 5);
        std::vector<std::future<serve::InferenceReply<real_t>>> inflight;
        inflight.reserve(kPipeline);
        for (int round = 0; round < kRoundsPerClient; ++round) {
          // Closed loop with pipeline depth kPipeline: burst-submit,
          // then drain the burst before the next one.
          for (int i = 0; i < kPipeline; ++i) {
            inflight.push_back(server.submit(fx.zipf.sample(vertex_rng)));
          }
          for (auto& f : inflight) f.get();
          inflight.clear();
        }
      });
    }
    for (auto& t : clients) t.join();
    elapsed_s = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - begin)
                    .count();
    state.SetIterationTime(elapsed_s);
    cache_stats = server.cache().stats();
    server.stop(/*drain=*/true);
  }
  attach_serving_counters(state, elapsed_s, kTotalRequests);
  state.counters["fanout"] = static_cast<double>(fanout);
  state.counters["max_batch"] = static_cast<double>(max_batch);
  state.counters["window_us"] = static_cast<double>(window_us);
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["cache_hit_rate"] = cache_stats.hit_rate();
  state.counters["cache_evictions"] = static_cast<double>(cache_stats.evictions);
  if (batch_size_histogram().count() > 0) {
    state.counters["batch_p50"] = static_cast<double>(batch_size_histogram().p50());
  }
}

void ServingPerRequest(benchmark::State& state) {
  run_server_bench(state, static_cast<index_t>(state.range(0)),
                   /*max_batch=*/1, /*window_us=*/0,
                   static_cast<std::size_t>(state.range(1)));
}

void ServingBatched(benchmark::State& state) {
  run_server_bench(state, static_cast<index_t>(state.range(0)),
                   /*max_batch=*/64, state.range(1),
                   static_cast<std::size_t>(state.range(2)));
}

void register_all() {
  for (const long fanout : {5L, 10L}) {
    benchmark::RegisterBenchmark(
        ("ServingDirect/fanout" + std::to_string(fanout)).c_str(),
        ServingDirect)
        ->Args({fanout})
        ->UseManualTime()
        ->Iterations(1);
    for (const long threads : {1L, 4L}) {
      benchmark::RegisterBenchmark(
          ("ServingPerRequest/fanout" + std::to_string(fanout) + "/threads" +
           std::to_string(threads))
              .c_str(),
          ServingPerRequest)
          ->Args({fanout, threads})
          ->UseManualTime()
          ->Iterations(1);
    }
    for (const long window_us : {0L, 1000L, 2000L}) {
      for (const long threads : {1L, 4L}) {
        benchmark::RegisterBenchmark(
            ("ServingBatched/fanout" + std::to_string(fanout) + "/window_us" +
             std::to_string(window_us) + "/threads" + std::to_string(threads))
                .c_str(),
            ServingBatched)
            ->Args({fanout, window_us, threads})
            ->UseManualTime()
            ->Iterations(1);
      }
    }
  }
}

const int registered = (register_all(), 0);

}  // namespace
}  // namespace agnn::bench

AGNN_BENCH_MAIN()