// Section 7 — communication-volume verification benchmarks.
//
// (a) Measured max-per-rank volume of one global-formulation training step
//     against the closed-form bound c * (n*k/sqrt(p) + k^2) words per layer,
//     sweeping p; the measured/bound ratio must stay a small constant.
// (b) Global vs local volume ratio as a function of density — the
//     Erdős–Rényi crossover of Section 7.3.
// (c) The Section 8.2 communication-overhead datapoint: GAT at 1% density,
//     modeled communication time as p grows (paper: 0.41 s at 32 nodes to
//     1.13 s at 512 — sublinear growth in p at fixed per-rank work).
// (d) The distribution-policy family crossover (Section 6.3 generalized):
//     measured max-per-rank forward volume of every family member
//     (1D/1.5D/2D/3D) against the exact per-rank protocol replay and the
//     closed-form asymptotic bound, across square AND awkward rank counts.
#include <cmath>

#include "bench_common.hpp"
#include "dist/dist_1d_engine.hpp"
#include "dist/dist_summa_engine.hpp"
#include "dist/engine_factory.hpp"
#include "dist/volume_model.hpp"

namespace agnn::bench {
namespace {

void VolumeVsBound(benchmark::State& state) {
  const auto kind = static_cast<ModelKind>(state.range(0));
  const int ranks = static_cast<int>(state.range(1));
  const index_t n = 1024, k = 16;
  const int layers = 3;
  static const graph::Graph<real_t>& g = *new graph::Graph<real_t>(
      uniform_graph(n, 0.01, 21));

  Workload w;
  w.adj = &g.adj;
  w.k = k;
  w.layers = layers;
  w.training = true;
  for (auto _ : state) {
    const auto r = run_global(w, kind, ranks);
    report(state, r);
    const double q = std::sqrt(static_cast<double>(ranks));
    const double bound_words =
        static_cast<double>(layers) *
        (static_cast<double>(n * k) / q + static_cast<double>(k * k));
    const double measured_words = r.comm_mbytes * 1e6 / sizeof(real_t);
    state.counters["bound_kwords"] = bound_words / 1e3;
    state.counters["measured_kwords"] = measured_words / 1e3;
    state.counters["measured_over_bound"] =
        ranks == 1 ? 0.0 : measured_words / bound_words;
  }
  state.SetLabel(std::string("train/") + to_string(kind));
}

void GlobalVsLocalByDensity(benchmark::State& state) {
  // The crossover needs d in omega(sqrt(p)) to favor the global view
  // (Section 7.3); with the scheme's ~4 block moves per layer that means a
  // large grid: p = 100. The density sweep should straddle the crossover.
  const double density = 1.0 / static_cast<double>(state.range(0));
  const int ranks = 100;
  const index_t n = 2048, k = 16;
  const auto g = uniform_graph(n, density, 23);

  Workload w;
  w.adj = &g.adj;
  w.k = k;
  w.layers = 3;
  w.training = false;
  for (auto _ : state) {
    const auto rg = run_global(w, ModelKind::kGAT, ranks);
    const auto rl = run_local(w, ModelKind::kGAT, ranks);
    state.SetIterationTime(rg.modeled_seconds);
    state.counters["global_MB"] = rg.comm_mbytes;
    state.counters["local_MB"] = rl.comm_mbytes;
    // Section 7.3: this ratio should shrink toward 1 as density decreases.
    state.counters["local_over_global"] =
        rg.comm_mbytes > 0 ? rl.comm_mbytes / rg.comm_mbytes : 0.0;
  }
  state.counters["m"] = static_cast<double>(g.num_edges());
}

// Section 6.3 design-choice ablation: the A-stationary 1.5D scheme vs a
// naive 1D distribution of the same global formulation. Identical math,
// Theta(n k) vs O(n k / sqrt(p)) movement.
void Scheme1dVs15d(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const index_t n = 1024, k = 16;
  static const graph::Graph<real_t>& g = *new graph::Graph<real_t>(
      uniform_graph(n, 0.01, 41));
  Rng rng(11);
  DenseMatrix<real_t> x(n, k);
  x.fill_uniform(rng, -1.0, 1.0);

  for (auto _ : state) {
    const auto stats_15d =
        comm::SpmdRuntime::run(ranks, [&](comm::Communicator& world) {
          GnnModel<real_t> model(model_config(ModelKind::kGAT, k, 3));
          dist::DistGnnEngine<real_t> engine(world, g.adj, model);
          comm::reset_all_stats(world);
          engine.forward(x, nullptr);
        });
    const auto stats_1d =
        comm::SpmdRuntime::run(ranks, [&](comm::Communicator& world) {
          GnnModel<real_t> model(model_config(ModelKind::kGAT, k, 3));
          dist::Dist1dGlobalEngine<real_t> engine(world, g.adj, model);
          comm::reset_all_stats(world);
          engine.forward(x, nullptr);
        });
    const auto r = summarize(stats_15d);
    state.SetIterationTime(r.modeled_seconds);
    state.counters["vol_15d_MB"] =
        static_cast<double>(comm::max_bytes_sent(stats_15d)) / 1e6;
    state.counters["vol_1d_MB"] =
        static_cast<double>(comm::max_bytes_sent(stats_1d)) / 1e6;
    state.counters["ratio_1d_over_15d"] =
        static_cast<double>(comm::max_bytes_sent(stats_1d)) /
        static_cast<double>(std::max<std::uint64_t>(1, comm::max_bytes_sent(stats_15d)));
  }
  state.SetLabel("GAT inference");
}

// One forward pass of each family member, measured against the exact
// per-rank replay (byte-exact for 1D/2D/3D and for 1.5D when sqrt(p)
// divides n) and the closed-form asymptotic bound. The per-p rows across
// policies form the family crossover table pinned in results/.
void PolicyFamilyVolume(benchmark::State& state) {
  const auto policy = static_cast<dist::DistPolicy>(state.range(0));
  const int ranks = static_cast<int>(state.range(1));
  const index_t n = 1024, k = 16;
  const int layers = 3;
  const ModelKind kind = ModelKind::kVA;
  static const graph::Graph<real_t>& g = *new graph::Graph<real_t>(
      uniform_graph(n, 0.01, 21));
  Rng rng(11);
  DenseMatrix<real_t> x(n, k);
  x.fill_uniform(rng, -1.0, 1.0);

  for (auto _ : state) {
    const auto stats =
        comm::SpmdRuntime::run(ranks, [&](comm::Communicator& world) {
          GnnModel<real_t> model(model_config(kind, k, layers));
          switch (policy) {
            case dist::DistPolicy::k1D: {
              dist::Dist1dGlobalEngine<real_t> engine(world, g.adj, model);
              comm::reset_all_stats(world);
              engine.forward(x, nullptr);
              break;
            }
            case dist::DistPolicy::k1_5D: {
              dist::DistGnnEngine<real_t> engine(world, g.adj, model);
              comm::reset_all_stats(world);
              engine.forward(x, nullptr);
              break;
            }
            case dist::DistPolicy::k2D:
            case dist::DistPolicy::k3D: {
              dist::DistSummaEngine<real_t> engine(world, g.adj, model,
                                                   policy);
              comm::reset_all_stats(world);
              engine.forward(x, nullptr);
              break;
            }
          }
        });
    const auto r = summarize(stats);
    state.SetIterationTime(std::max(1e-9, r.modeled_seconds));
    const double measured_words =
        static_cast<double>(comm::max_bytes_sent(stats)) / sizeof(real_t);
    const double exact_words =
        layers * dist::predicted_policy_forward_words(policy, kind, n, k, ranks);
    const double bound_words =
        layers * dist::policy_bound_words(policy, n, k, ranks);
    state.counters["measured_kwords"] = measured_words / 1e3;
    state.counters["exact_kwords"] = exact_words / 1e3;
    state.counters["bound_kwords"] = bound_words / 1e3;
    state.counters["measured_over_bound"] =
        ranks == 1 ? 0.0 : measured_words / bound_words;
    state.counters["measured_over_exact"] =
        exact_words > 0 ? measured_words / exact_words : 0.0;
  }
  state.SetLabel(std::string("fwd/VA/") + dist::to_string(policy));
}

void GatCommOverheadVsRanks(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const index_t k = 16;
  static const graph::Graph<real_t>& g = *new graph::Graph<real_t>(
      kronecker_graph(10, 0.01, 31));  // 1% density, the Section 8.2 datapoint

  Workload w;
  w.adj = &g.adj;
  w.k = k;
  w.layers = 3;
  w.training = true;
  for (auto _ : state) {
    const auto r = run_global(w, ModelKind::kGAT, ranks);
    report(state, r);
  }
  state.counters["p"] = ranks;
  state.SetLabel("GAT/rho=1%");
}

void register_all() {
  for (const auto kind : {ModelKind::kVA, ModelKind::kAGNN, ModelKind::kGAT}) {
    for (const int p : {1, 4, 16, 64}) {
      benchmark::RegisterBenchmark(
          (std::string("Sec7_VolumeVsBound/") +
           agnn::to_string(kind) + "/p" + std::to_string(p))
              .c_str(),
          VolumeVsBound)
          ->Args({static_cast<long>(kind), p})
          ->UseManualTime()
          ->Iterations(1);
    }
  }
  for (const int inv_density : {20, 100, 1000, 10000}) {
    benchmark::RegisterBenchmark(
        (std::string("Sec7_GlobalVsLocal/rho_inv") + std::to_string(inv_density))
            .c_str(),
        GlobalVsLocalByDensity)
        ->Args({inv_density})
        ->UseManualTime()
        ->Iterations(1);
  }
  for (const int p : {4, 16, 64}) {
    benchmark::RegisterBenchmark(
        (std::string("Sec8_GatCommOverhead/p") + std::to_string(p)).c_str(),
        GatCommOverheadVsRanks)
        ->Args({p})
        ->UseManualTime()
        ->Iterations(1);
  }
  for (const int p : {4, 16, 64}) {
    benchmark::RegisterBenchmark(
        (std::string("Sec6_Scheme1dVs15d/p") + std::to_string(p)).c_str(),
        Scheme1dVs15d)
        ->Args({p})
        ->UseManualTime()
        ->Iterations(1);
  }
  // The family crossover table: square counts cover all four members;
  // the awkward counts (6, 8, 12) exercise the members that accept any p.
  for (const auto policy :
       {dist::DistPolicy::k1D, dist::DistPolicy::k1_5D, dist::DistPolicy::k2D,
        dist::DistPolicy::k3D}) {
    for (const int p : {4, 6, 8, 12, 16, 64}) {
      if (!dist::policy_accepts(policy, p)) continue;
      benchmark::RegisterBenchmark(
          (std::string("Sec6_PolicyFamily/") + dist::to_string(policy) + "/p" +
           std::to_string(p))
              .c_str(),
          PolicyFamilyVolume)
          ->Args({static_cast<long>(policy), p})
          ->UseManualTime()
          ->Iterations(1);
    }
  }
}

const int registered = (register_all(), 0);

}  // namespace
}  // namespace agnn::bench

AGNN_BENCH_MAIN()
