// bench_compare: the perf-regression gate.
//
//   bench_compare <baseline.json> <current.json>
//       [--tolerance=1.30] [--min-delta-ns=1000]
//
// Exit codes: 0 = no regression, 1 = at least one regression,
//             2 = bad invocation / unreadable or malformed report.
//
// Policy (obs/bench_report.hpp): a matched benchmark regresses only when
// BOTH its median and its min-of-repetitions exceed baseline * tolerance
// AND the delta clears the absolute floor. Benchmarks present on only one
// side are listed but never fail the gate. A self-compare (same file twice)
// is therefore always exit 0, and CI asserts both that and that a synthetic
// 2x slowdown fails.
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <string_view>

#include "obs/bench_report.hpp"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <baseline.json> <current.json> "
               "[--tolerance=F] [--min-delta-ns=F]\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  using agnn::obs::bench::CompareOptions;
  std::string baseline_path;
  std::string current_path;
  CompareOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string_view a = argv[i];
    if (a.rfind("--tolerance=", 0) == 0) {
      opts.tolerance = std::atof(argv[i] + std::string_view("--tolerance=").size());
      if (opts.tolerance <= 1.0) {
        std::fprintf(stderr, "bench_compare: --tolerance must be > 1.0\n");
        return 2;
      }
    } else if (a.rfind("--min-delta-ns=", 0) == 0) {
      opts.min_delta_ns =
          std::atof(argv[i] + std::string_view("--min-delta-ns=").size());
    } else if (baseline_path.empty()) {
      baseline_path = a;
    } else if (current_path.empty()) {
      current_path = a;
    } else {
      usage(argv[0]);
      return 2;
    }
  }
  if (baseline_path.empty() || current_path.empty()) {
    usage(argv[0]);
    return 2;
  }
  try {
    const auto baseline =
        agnn::obs::bench::parse_report_file(baseline_path);
    const auto current = agnn::obs::bench::parse_report_file(current_path);
    if (baseline.context.cpu_model != current.context.cpu_model) {
      std::cout << "note: cpu differs (baseline: "
                << baseline.context.cpu_model
                << "; current: " << current.context.cpu_model
                << ") — cross-machine comparisons need a loose tolerance\n";
    }
    const auto result = agnn::obs::bench::compare(baseline, current, opts);
    agnn::obs::bench::print_compare(std::cout, result, opts);
    return result.ok() ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_compare: %s\n", e.what());
    return 2;
  }
}
