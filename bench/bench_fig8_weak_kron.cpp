// Figure 8 — weak scaling of GNN *training* on Kronecker graphs.
//
// Paper setup: k = 16, 3 layers; n grows with sqrt(node count) at fixed
// density rho in {0.1%, 0.01%} so that m grows linearly with the node
// count; series: global VA/AGNN/GAT vs DistDGL (local formulation; the
// mini-batch arm included as in Figure 6).
//
// Reproduction: n0 = 512 (scale 9) at p = 1, scale + 1 per 4x ranks,
// p in {1, 4, 16, 64}. Parallel efficiency of the global formulation is
// reported as a counter (modeled time at p=1 over modeled time at p),
// mirroring the paper's "57% efficiency at 512 nodes" readout.
#include "bench_common.hpp"

namespace agnn::bench {
namespace {

constexpr int kBaseScale = 9;  // n = 512 at p = 1

int scale_for_ranks(int ranks) {
  // n ~ sqrt(p): each 4x in ranks doubles n (adds 1 to the scale).
  int scale = kBaseScale;
  int p = 1;
  while (p < ranks) {
    p *= 4;
    ++scale;
  }
  return scale;
}

const graph::Graph<real_t>& cached_graph(int scale, double density) {
  struct Key {
    int scale;
    double density;
  };
  static std::vector<std::pair<Key, graph::Graph<real_t>>> cache;
  for (const auto& [key, g] : cache) {
    if (key.scale == scale && key.density == density) return g;
  }
  cache.emplace_back(Key{scale, density}, kronecker_graph(scale, density, 5));
  return cache.back().second;
}

void Fig8WeakKron(benchmark::State& state) {
  const auto kind = static_cast<ModelKind>(state.range(0));
  const auto engine = static_cast<Engine>(state.range(1));
  const int ranks = static_cast<int>(state.range(2));
  const double density = 1.0 / static_cast<double>(state.range(3));

  const auto& g = cached_graph(scale_for_ranks(ranks), density);
  Workload w;
  w.adj = &g.adj;
  w.k = 16;
  w.layers = 3;
  w.training = true;
  w.minibatch_size = std::min<index_t>(1 << 14, g.num_vertices() / 4);

  for (auto _ : state) {
    report(state, run_engine(engine, w, kind, ranks));
  }
  state.counters["n"] = static_cast<double>(g.num_vertices());
  state.counters["m"] = static_cast<double>(g.num_edges());
  state.counters["p"] = ranks;
  state.SetLabel(std::string(to_string(kind)) + "/" + to_string(engine));
}

void register_all() {
  const std::vector<ModelKind> models = {ModelKind::kVA, ModelKind::kAGNN,
                                         ModelKind::kGAT};
  const std::vector<Engine> engines = {Engine::kGlobal, Engine::kLocalFull,
                                       Engine::kLocalMinibatch};
  const std::vector<int> rank_counts = {1, 4, 16, 64};
  const std::vector<int> inv_densities = {1000, 10000};  // 0.1%, 0.01%

  for (const int inv_density : inv_densities) {
    for (const auto kind : models) {
      for (const auto engine : engines) {
        for (const int p : rank_counts) {
          benchmark::RegisterBenchmark(
              (std::string("Fig8_WeakKron/") + to_string(kind) + "/" +
               to_string(engine) + "/rho_inv" + std::to_string(inv_density) + "/p" +
               std::to_string(p))
                  .c_str(),
              Fig8WeakKron)
              ->Args({static_cast<long>(kind), static_cast<long>(engine), p,
                      inv_density})
              ->UseManualTime()
              ->Iterations(1);
        }
      }
    }
  }
}

const int registered = (register_all(), 0);

}  // namespace
}  // namespace agnn::bench

AGNN_BENCH_MAIN()
