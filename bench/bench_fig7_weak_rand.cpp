// Figure 7 (three rightmost plots) — weak scaling on Erdős–Rényi ("Rand")
// graphs: the empirical verification of the Section 7 communication-cost
// analysis (Section 8.4).
//
// Paper setup: inference pass, densities rho in {1%, 0.1%, 0.01%}; the
// vertex count n grows with sqrt(node count) so that m = rho*n^2 grows
// linearly with the node count (weak scaling). Series: global VA/AGNN/GAT
// vs the local formulation (DistDGL), plus a C-GNN (simple graph
// convolution) as the special case of Section 8.4's last paragraph.
//
// Reproduction: n0 = 512 at p = 1, n = n0 * sqrt(p), p in {1, 4, 16, 64}.
// Expectation to verify: (a) global beats local and scales flat-ish;
// (b) with DECREASING density the global-vs-local gap SHRINKS (the
// Erdős–Rényi prediction of Section 7.3).
#include <cmath>

#include "bench_common.hpp"

namespace agnn::bench {
namespace {

constexpr index_t kBaseVertices = 512;

const graph::Graph<real_t>& cached_graph(index_t n, double density) {
  struct Key {
    index_t n;
    double density;
  };
  static std::vector<std::pair<Key, graph::Graph<real_t>>> cache;
  for (const auto& [key, g] : cache) {
    if (key.n == n && key.density == density) return g;
  }
  cache.emplace_back(Key{n, density}, uniform_graph(n, density));
  return cache.back().second;
}

void Fig7WeakRand(benchmark::State& state) {
  const auto kind = static_cast<ModelKind>(state.range(0));
  const auto engine = static_cast<Engine>(state.range(1));
  const int ranks = static_cast<int>(state.range(2));
  const double density = 1.0 / static_cast<double>(state.range(3));

  const auto n = static_cast<index_t>(
      static_cast<double>(kBaseVertices) * std::sqrt(static_cast<double>(ranks)));
  const auto& g = cached_graph(n, density);
  Workload w;
  w.adj = &g.adj;
  w.k = 16;
  w.layers = 3;
  w.training = false;  // Section 8.4 verifies the inference pass

  for (auto _ : state) {
    report(state, run_engine(engine, w, kind, ranks));
  }
  state.counters["n"] = static_cast<double>(g.num_vertices());
  state.counters["m"] = static_cast<double>(g.num_edges());
  state.counters["p"] = ranks;
  state.SetLabel(std::string(to_string(kind)) + "/" + to_string(engine));
}

void register_all() {
  // GCN is the C-GNN special case the paper adds to this experiment.
  const std::vector<ModelKind> models = {ModelKind::kVA, ModelKind::kAGNN,
                                         ModelKind::kGAT, ModelKind::kGCN};
  const std::vector<Engine> engines = {Engine::kGlobal, Engine::kLocalFull};
  const std::vector<int> rank_counts = {1, 4, 16, 64};
  const std::vector<int> inv_densities = {100, 1000, 10000};  // 1%, 0.1%, 0.01%

  for (const int inv_density : inv_densities) {
    for (const auto kind : models) {
      for (const auto engine : engines) {
        for (const int p : rank_counts) {
          benchmark::RegisterBenchmark(
              (std::string("Fig7_WeakRand/") + to_string(kind) + "/" +
               to_string(engine) + "/rho_inv" + std::to_string(inv_density) + "/p" +
               std::to_string(p))
                  .c_str(),
              Fig7WeakRand)
              ->Args({static_cast<long>(kind), static_cast<long>(engine), p,
                      inv_density})
              ->UseManualTime()
              ->Iterations(1);
        }
      }
    }
  }
}

const int registered = (register_all(), 0);

}  // namespace
}  // namespace agnn::bench

AGNN_BENCH_MAIN()
