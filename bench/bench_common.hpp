// Shared infrastructure for the figure-reproduction benchmarks.
//
// Every distributed benchmark runs on the simulated cluster and reports,
// per measured step:
//   * manual time  = the alpha-beta BSP modeled end-to-end time
//                    (max-rank compute + max-rank modeled communication),
//                    which is what the paper's wall-clock figures measure
//                    on the real machine;
//   * counters     : comm_MB   — max per-rank communication volume,
//                    compute_s — max per-rank compute (thread CPU time),
//                    comm_s    — modeled communication time.
//
// Graph sizes are scaled down from the paper (Section 8 ran on up to 1024
// Piz Daint nodes); the sweep structure — densities, k, layer count, rank
// counts, weak-scaling rule n ~ sqrt(p) — is preserved. See DESIGN.md and
// EXPERIMENTS.md.
#pragma once

#include <benchmark/benchmark.h>

#include <fstream>
#include <string>
#include <thread>
#include <vector>

#if defined(_OPENMP)
#include <omp.h>
#endif

#include "baseline/dist_local_engine.hpp"
#include "baseline/minibatch.hpp"
#include "comm/communicator.hpp"
#include "comm/cost_model.hpp"
#include "core/model.hpp"
#include "dist/dist_engine.hpp"
#include "graph/erdos_renyi.hpp"
#include "graph/graph.hpp"
#include "graph/kronecker.hpp"
#include "obs/bench_report.hpp"
#include "obs/perf_counters.hpp"

namespace agnn::bench {

using real_t = float;  // the paper's evaluation precision (float32)

inline const comm::CostModel& cost_model() {
  // Approximates the Cray Aries interconnect of the paper's testbed.
  static const comm::CostModel model{.alpha = 1.5e-6, .beta = 1.0 / 10.0e9};
  return model;
}

// ---- workloads ----------------------------------------------------------------

// Kronecker graph with n = 2^scale and m ~= density * n^2 (dataset B0).
inline graph::Graph<real_t> kronecker_graph(int scale, double density,
                                            std::uint64_t seed = 1) {
  const double n = static_cast<double>(index_t(1) << scale);
  graph::KroneckerParams params;
  params.scale = scale;
  params.edges = static_cast<index_t>(density * n * n);
  params.seed = seed;
  return graph::build_graph<real_t>(graph::generate_kronecker(params));
}

// Erdős–Rényi graph (dataset B2, the "Rand" graphs of Section 8.4).
inline graph::Graph<real_t> uniform_graph(index_t n, double density,
                                          std::uint64_t seed = 1) {
  return graph::build_graph<real_t>(
      graph::generate_erdos_renyi({.n = n, .q = density, .seed = seed}));
}

inline GnnConfig model_config(ModelKind kind, index_t k, int layers,
                              std::uint64_t seed = 7) {
  GnnConfig cfg;
  cfg.kind = kind;
  cfg.in_features = k;
  cfg.layer_widths.assign(static_cast<std::size_t>(layers), k);
  cfg.hidden_activation = Activation::kRelu;
  cfg.seed = seed;
  return cfg;
}

// ---- measured runs --------------------------------------------------------------

struct RunResult {
  double modeled_seconds = 0;   // max compute + max modeled comm
  double compute_seconds = 0;   // max per-rank thread CPU time
  double comm_seconds = 0;      // max per-rank modeled comm time
  double comm_mbytes = 0;       // max per-rank bytes sent, in MB
};

inline RunResult summarize(const std::vector<comm::VolumeSnapshot>& stats) {
  RunResult r;
  r.compute_seconds = comm::max_compute_seconds(stats);
  r.comm_seconds = cost_model().max_comm_time(stats);
  r.modeled_seconds = r.compute_seconds + r.comm_seconds;
  r.comm_mbytes = static_cast<double>(comm::max_bytes_sent(stats)) / 1e6;
  return r;
}

enum class Engine { kGlobal, kLocalFull, kLocalMinibatch };

inline const char* to_string(Engine e) {
  switch (e) {
    case Engine::kGlobal: return "global";
    case Engine::kLocalFull: return "local_full";
    case Engine::kLocalMinibatch: return "local_minibatch";
  }
  return "?";
}

struct Workload {
  const CsrMatrix<real_t>* adj = nullptr;
  index_t k = 16;
  int layers = 3;          // the paper's figures use 3 GNN layers
  bool training = true;    // forward+backward+update vs inference
  index_t minibatch_size = 1 << 14;  // DistDGL's 16k-vertex mini-batches
};

// One measured step of the GLOBAL formulation on p simulated ranks.
inline RunResult run_global(const Workload& w, ModelKind kind, int ranks) {
  const CsrMatrix<real_t> adj =
      kind == ModelKind::kGCN ? graph::sym_normalize(*w.adj) : *w.adj;
  Rng rng(11);
  DenseMatrix<real_t> x(adj.rows(), w.k);
  x.fill_uniform(rng, -1.0, 1.0);
  std::vector<index_t> labels(static_cast<std::size_t>(adj.rows()));
  for (auto& l : labels) l = static_cast<index_t>(rng.next_bounded(
                             static_cast<std::uint64_t>(w.k)));

  const auto stats = comm::SpmdRuntime::run(ranks, [&](comm::Communicator& world) {
    GnnModel<real_t> model(model_config(kind, w.k, w.layers));
    dist::DistGnnEngine<real_t> engine(world, adj, model);
    // Warm-up step excluded from accounting (the artifact uses 2 warm-ups;
    // one is enough to touch all allocations here).
    if (w.training) {
      SgdOptimizer<real_t> opt(0.01f);
      engine.train_step(x, labels, opt);
      comm::reset_all_stats(world);
      engine.train_step(x, labels, opt);
    } else {
      engine.forward(x, nullptr);
      comm::reset_all_stats(world);
      engine.forward(x, nullptr);
    }
  });
  return summarize(stats);
}

// One measured step of the LOCAL formulation (message-passing / ghost
// exchange — the DistDGL-style baseline) on p simulated ranks.
inline RunResult run_local(const Workload& w, ModelKind kind, int ranks) {
  const CsrMatrix<real_t> adj =
      kind == ModelKind::kGCN ? graph::sym_normalize(*w.adj) : *w.adj;
  Rng rng(11);
  DenseMatrix<real_t> x(adj.rows(), w.k);
  x.fill_uniform(rng, -1.0, 1.0);
  std::vector<index_t> labels(static_cast<std::size_t>(adj.rows()));
  for (auto& l : labels) l = static_cast<index_t>(rng.next_bounded(
                             static_cast<std::uint64_t>(w.k)));

  const auto stats = comm::SpmdRuntime::run(ranks, [&](comm::Communicator& world) {
    GnnModel<real_t> model(model_config(kind, w.k, w.layers));
    baseline::DistLocalEngine<real_t> engine(world, adj, model);
    if (w.training) {
      SgdOptimizer<real_t> opt(0.01f);
      engine.train_step(x, labels, opt);
      comm::reset_all_stats(world);
      engine.train_step(x, labels, opt);
    } else {
      engine.forward(x, nullptr);
      comm::reset_all_stats(world);
      engine.forward(x, nullptr);
    }
  });
  return summarize(stats);
}

// One mini-batch step (the DistDGL mini-batch execution mode): sample a
// 16k-vertex batch (clamped to the graph), run the model on the induced
// subgraph through the local-formulation engine on the same rank count.
inline RunResult run_minibatch(const Workload& w, ModelKind kind, int ranks) {
  const CsrMatrix<real_t> adj =
      kind == ModelKind::kGCN ? graph::sym_normalize(*w.adj) : *w.adj;
  const auto mb = baseline::sample_minibatch(adj, w.minibatch_size, 3);
  Rng rng(11);
  DenseMatrix<real_t> x(mb.adj.rows(), w.k);
  x.fill_uniform(rng, -1.0, 1.0);
  std::vector<index_t> labels(static_cast<std::size_t>(mb.adj.rows()));
  for (auto& l : labels) l = static_cast<index_t>(rng.next_bounded(
                             static_cast<std::uint64_t>(w.k)));

  const auto stats = comm::SpmdRuntime::run(ranks, [&](comm::Communicator& world) {
    GnnModel<real_t> model(model_config(kind, w.k, w.layers));
    baseline::DistLocalEngine<real_t> engine(world, mb.adj, model);
    if (w.training) {
      SgdOptimizer<real_t> opt(0.01f);
      engine.train_step(x, labels, opt);
      comm::reset_all_stats(world);
      engine.train_step(x, labels, opt);
    } else {
      engine.forward(x, nullptr);
      comm::reset_all_stats(world);
      engine.forward(x, nullptr);
    }
  });
  return summarize(stats);
}

inline RunResult run_engine(Engine engine, const Workload& w, ModelKind kind,
                            int ranks) {
  switch (engine) {
    case Engine::kGlobal: return run_global(w, kind, ranks);
    case Engine::kLocalFull: return run_local(w, kind, ranks);
    case Engine::kLocalMinibatch: return run_minibatch(w, kind, ranks);
  }
  return {};
}

// Attach the standard counters and the modeled time to a benchmark state.
inline void report(benchmark::State& state, const RunResult& r) {
  state.SetIterationTime(r.modeled_seconds);
  state.counters["comm_MB"] = r.comm_mbytes;
  state.counters["comm_s"] = r.comm_seconds;
  state.counters["compute_s"] = r.compute_seconds;
}

// Attach a registry histogram's tail quantiles as counters, so a traced
// bench run carries p50/p99/p999 per benchmark in the JSON report. No-op
// when the histogram is absent or empty (untraced run).
inline void attach_histogram_quantiles(benchmark::State& state,
                                       std::string_view hist_name) {
  const obs::Histogram* h =
      obs::MetricsRegistry::global().find_histogram(hist_name);
  if (h == nullptr || h->count() == 0) return;
  state.counters["p50_ns"] = static_cast<double>(h->p50());
  state.counters["p99_ns"] = static_cast<double>(h->p99());
  state.counters["p999_ns"] = static_cast<double>(h->p999());
}

// Attach a perf region's accumulated counters (cycles/instructions/IPC/
// cache miss rate) as benchmark counters. No-op without AGNN_PERF or when
// the syscall was unavailable.
inline void attach_perf_counters(benchmark::State& state,
                                 std::string_view region_name) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  const std::string p = "perf." + std::string(region_name);
  const obs::Counter* cyc = reg.find_counter(p + ".cycles");
  if (cyc == nullptr || cyc->value() == 0) return;
  state.counters["cycles"] = static_cast<double>(cyc->value());
  if (const obs::Counter* ins = reg.find_counter(p + ".instructions")) {
    state.counters["instructions"] = static_cast<double>(ins->value());
  }
  if (const obs::Gauge* ipc = reg.find_gauge(p + ".ipc")) {
    state.counters["ipc"] = ipc->value();
  }
  if (const obs::Gauge* mr = reg.find_gauge(p + ".cache_miss_rate")) {
    state.counters["cache_miss_rate"] = mr->value();
  }
}

// ---- machine-readable JSON reports ----------------------------------------

// Context of this build/machine, stamped into every report. Git sha and
// flags come from CMake compile definitions (bench targets only, so a sha
// change doesn't rebuild the world); CPU model from /proc/cpuinfo.
inline obs::bench::BenchContext build_context() {
  obs::bench::BenchContext ctx;
#ifdef AGNN_GIT_SHA
  ctx.git_sha = AGNN_GIT_SHA;
#endif
#ifdef __VERSION__
  ctx.compiler = __VERSION__;
#endif
#ifdef AGNN_CXX_FLAGS
  ctx.cxx_flags = AGNN_CXX_FLAGS;
#endif
  ctx.cpu_model = "unknown";
  std::ifstream cpuinfo("/proc/cpuinfo");
  std::string line;
  while (std::getline(cpuinfo, line)) {
    if (line.rfind("model name", 0) == 0) {
      const std::size_t colon = line.find(':');
      if (colon != std::string::npos) {
        std::size_t b = colon + 1;
        while (b < line.size() && line[b] == ' ') ++b;
        ctx.cpu_model = line.substr(b);
      }
      break;
    }
  }
  ctx.hardware_threads =
      static_cast<int>(std::thread::hardware_concurrency());
#if defined(_OPENMP)
  ctx.omp_threads = omp_get_max_threads();
#else
  ctx.omp_threads = 1;
#endif
  ctx.perf_available = obs::perf::available();
  return ctx;
}

// Console output as usual, plus captures every per-repetition run so the
// JSON writer gets raw samples (google benchmark's own JSON has no schema
// guarantee across versions and no room for our context/histograms).
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& r : runs) {
      if (r.run_type != Run::RT_Iteration) continue;  // skip aggregates
      if (r.error_occurred) continue;
      captured_.push_back(r);
    }
  }

  const std::vector<Run>& runs() const { return captured_; }

 private:
  std::vector<Run> captured_;
};

inline obs::bench::BenchReport build_report(
    const std::vector<benchmark::BenchmarkReporter::Run>& runs) {
  obs::bench::BenchReport rep;
  rep.context = build_context();
  for (const auto& run : runs) {
    const std::string name = run.benchmark_name();
    obs::bench::BenchEntry* e = nullptr;
    for (auto& b : rep.benchmarks) {
      if (b.name == name) e = &b;
    }
    if (e == nullptr) {
      rep.benchmarks.emplace_back();
      e = &rep.benchmarks.back();
      e->name = name;
    }
    const double iters =
        run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
    e->samples_ns.push_back(run.real_accumulated_time / iters * 1e9);
    for (const auto& [k, c] : run.counters) {
      e->counters[k] = c.value;
    }
  }
  for (auto& b : rep.benchmarks) obs::bench::finalize(b);
  rep.histograms_json = obs::bench::histograms_snapshot_json();
  return rep;
}

// main() for every bench binary: standard google-benchmark flags plus
// `--json-out=<path>` writing the schema'd report after the run.
inline int bench_main(int argc, char** argv) {
  std::string json_out;
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    const std::string_view a = argv[i];
    if (a.rfind("--json-out=", 0) == 0) {
      json_out = a.substr(std::string_view("--json-out=").size());
    } else {
      args.push_back(argv[i]);
    }
  }
  int argc2 = static_cast<int>(args.size());
  benchmark::Initialize(&argc2, args.data());
  if (benchmark::ReportUnrecognizedArguments(argc2, args.data())) return 1;
  CapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!json_out.empty()) {
    const obs::bench::BenchReport rep = build_report(reporter.runs());
    if (!obs::bench::write_json_file(json_out, rep)) {
      std::fprintf(stderr, "bench: cannot write %s\n", json_out.c_str());
      return 1;
    }
    std::fprintf(stderr, "bench: wrote %s (%zu benchmarks)\n",
                 json_out.c_str(), rep.benchmarks.size());
  }
  return 0;
}

}  // namespace agnn::bench

#define AGNN_BENCH_MAIN()                              \
  int main(int argc, char** argv) {                    \
    return ::agnn::bench::bench_main(argc, argv);      \
  }
