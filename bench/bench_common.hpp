// Shared infrastructure for the figure-reproduction benchmarks.
//
// Every distributed benchmark runs on the simulated cluster and reports,
// per measured step:
//   * manual time  = the alpha-beta BSP modeled end-to-end time
//                    (max-rank compute + max-rank modeled communication),
//                    which is what the paper's wall-clock figures measure
//                    on the real machine;
//   * counters     : comm_MB   — max per-rank communication volume,
//                    compute_s — max per-rank compute (thread CPU time),
//                    comm_s    — modeled communication time.
//
// Graph sizes are scaled down from the paper (Section 8 ran on up to 1024
// Piz Daint nodes); the sweep structure — densities, k, layer count, rank
// counts, weak-scaling rule n ~ sqrt(p) — is preserved. See DESIGN.md and
// EXPERIMENTS.md.
#pragma once

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "baseline/dist_local_engine.hpp"
#include "baseline/minibatch.hpp"
#include "comm/communicator.hpp"
#include "comm/cost_model.hpp"
#include "core/model.hpp"
#include "dist/dist_engine.hpp"
#include "graph/erdos_renyi.hpp"
#include "graph/graph.hpp"
#include "graph/kronecker.hpp"

namespace agnn::bench {

using real_t = float;  // the paper's evaluation precision (float32)

inline const comm::CostModel& cost_model() {
  // Approximates the Cray Aries interconnect of the paper's testbed.
  static const comm::CostModel model{.alpha = 1.5e-6, .beta = 1.0 / 10.0e9};
  return model;
}

// ---- workloads ----------------------------------------------------------------

// Kronecker graph with n = 2^scale and m ~= density * n^2 (dataset B0).
inline graph::Graph<real_t> kronecker_graph(int scale, double density,
                                            std::uint64_t seed = 1) {
  const double n = static_cast<double>(index_t(1) << scale);
  graph::KroneckerParams params;
  params.scale = scale;
  params.edges = static_cast<index_t>(density * n * n);
  params.seed = seed;
  return graph::build_graph<real_t>(graph::generate_kronecker(params));
}

// Erdős–Rényi graph (dataset B2, the "Rand" graphs of Section 8.4).
inline graph::Graph<real_t> uniform_graph(index_t n, double density,
                                          std::uint64_t seed = 1) {
  return graph::build_graph<real_t>(
      graph::generate_erdos_renyi({.n = n, .q = density, .seed = seed}));
}

inline GnnConfig model_config(ModelKind kind, index_t k, int layers,
                              std::uint64_t seed = 7) {
  GnnConfig cfg;
  cfg.kind = kind;
  cfg.in_features = k;
  cfg.layer_widths.assign(static_cast<std::size_t>(layers), k);
  cfg.hidden_activation = Activation::kRelu;
  cfg.seed = seed;
  return cfg;
}

// ---- measured runs --------------------------------------------------------------

struct RunResult {
  double modeled_seconds = 0;   // max compute + max modeled comm
  double compute_seconds = 0;   // max per-rank thread CPU time
  double comm_seconds = 0;      // max per-rank modeled comm time
  double comm_mbytes = 0;       // max per-rank bytes sent, in MB
};

inline RunResult summarize(const std::vector<comm::VolumeSnapshot>& stats) {
  RunResult r;
  r.compute_seconds = comm::max_compute_seconds(stats);
  r.comm_seconds = cost_model().max_comm_time(stats);
  r.modeled_seconds = r.compute_seconds + r.comm_seconds;
  r.comm_mbytes = static_cast<double>(comm::max_bytes_sent(stats)) / 1e6;
  return r;
}

enum class Engine { kGlobal, kLocalFull, kLocalMinibatch };

inline const char* to_string(Engine e) {
  switch (e) {
    case Engine::kGlobal: return "global";
    case Engine::kLocalFull: return "local_full";
    case Engine::kLocalMinibatch: return "local_minibatch";
  }
  return "?";
}

struct Workload {
  const CsrMatrix<real_t>* adj = nullptr;
  index_t k = 16;
  int layers = 3;          // the paper's figures use 3 GNN layers
  bool training = true;    // forward+backward+update vs inference
  index_t minibatch_size = 1 << 14;  // DistDGL's 16k-vertex mini-batches
};

// One measured step of the GLOBAL formulation on p simulated ranks.
inline RunResult run_global(const Workload& w, ModelKind kind, int ranks) {
  const CsrMatrix<real_t> adj =
      kind == ModelKind::kGCN ? graph::sym_normalize(*w.adj) : *w.adj;
  Rng rng(11);
  DenseMatrix<real_t> x(adj.rows(), w.k);
  x.fill_uniform(rng, -1.0, 1.0);
  std::vector<index_t> labels(static_cast<std::size_t>(adj.rows()));
  for (auto& l : labels) l = static_cast<index_t>(rng.next_bounded(
                             static_cast<std::uint64_t>(w.k)));

  const auto stats = comm::SpmdRuntime::run(ranks, [&](comm::Communicator& world) {
    GnnModel<real_t> model(model_config(kind, w.k, w.layers));
    dist::DistGnnEngine<real_t> engine(world, adj, model);
    // Warm-up step excluded from accounting (the artifact uses 2 warm-ups;
    // one is enough to touch all allocations here).
    if (w.training) {
      SgdOptimizer<real_t> opt(0.01f);
      engine.train_step(x, labels, opt);
      comm::reset_all_stats(world);
      engine.train_step(x, labels, opt);
    } else {
      engine.forward(x, nullptr);
      comm::reset_all_stats(world);
      engine.forward(x, nullptr);
    }
  });
  return summarize(stats);
}

// One measured step of the LOCAL formulation (message-passing / ghost
// exchange — the DistDGL-style baseline) on p simulated ranks.
inline RunResult run_local(const Workload& w, ModelKind kind, int ranks) {
  const CsrMatrix<real_t> adj =
      kind == ModelKind::kGCN ? graph::sym_normalize(*w.adj) : *w.adj;
  Rng rng(11);
  DenseMatrix<real_t> x(adj.rows(), w.k);
  x.fill_uniform(rng, -1.0, 1.0);
  std::vector<index_t> labels(static_cast<std::size_t>(adj.rows()));
  for (auto& l : labels) l = static_cast<index_t>(rng.next_bounded(
                             static_cast<std::uint64_t>(w.k)));

  const auto stats = comm::SpmdRuntime::run(ranks, [&](comm::Communicator& world) {
    GnnModel<real_t> model(model_config(kind, w.k, w.layers));
    baseline::DistLocalEngine<real_t> engine(world, adj, model);
    if (w.training) {
      SgdOptimizer<real_t> opt(0.01f);
      engine.train_step(x, labels, opt);
      comm::reset_all_stats(world);
      engine.train_step(x, labels, opt);
    } else {
      engine.forward(x, nullptr);
      comm::reset_all_stats(world);
      engine.forward(x, nullptr);
    }
  });
  return summarize(stats);
}

// One mini-batch step (the DistDGL mini-batch execution mode): sample a
// 16k-vertex batch (clamped to the graph), run the model on the induced
// subgraph through the local-formulation engine on the same rank count.
inline RunResult run_minibatch(const Workload& w, ModelKind kind, int ranks) {
  const CsrMatrix<real_t> adj =
      kind == ModelKind::kGCN ? graph::sym_normalize(*w.adj) : *w.adj;
  const auto mb = baseline::sample_minibatch(adj, w.minibatch_size, 3);
  Rng rng(11);
  DenseMatrix<real_t> x(mb.adj.rows(), w.k);
  x.fill_uniform(rng, -1.0, 1.0);
  std::vector<index_t> labels(static_cast<std::size_t>(mb.adj.rows()));
  for (auto& l : labels) l = static_cast<index_t>(rng.next_bounded(
                             static_cast<std::uint64_t>(w.k)));

  const auto stats = comm::SpmdRuntime::run(ranks, [&](comm::Communicator& world) {
    GnnModel<real_t> model(model_config(kind, w.k, w.layers));
    baseline::DistLocalEngine<real_t> engine(world, mb.adj, model);
    if (w.training) {
      SgdOptimizer<real_t> opt(0.01f);
      engine.train_step(x, labels, opt);
      comm::reset_all_stats(world);
      engine.train_step(x, labels, opt);
    } else {
      engine.forward(x, nullptr);
      comm::reset_all_stats(world);
      engine.forward(x, nullptr);
    }
  });
  return summarize(stats);
}

inline RunResult run_engine(Engine engine, const Workload& w, ModelKind kind,
                            int ranks) {
  switch (engine) {
    case Engine::kGlobal: return run_global(w, kind, ranks);
    case Engine::kLocalFull: return run_local(w, kind, ranks);
    case Engine::kLocalMinibatch: return run_minibatch(w, kind, ranks);
  }
  return {};
}

// Attach the standard counters and the modeled time to a benchmark state.
inline void report(benchmark::State& state, const RunResult& r) {
  state.SetIterationTime(r.modeled_seconds);
  state.counters["comm_MB"] = r.comm_mbytes;
  state.counters["comm_s"] = r.comm_seconds;
  state.counters["compute_s"] = r.compute_seconds;
}

}  // namespace agnn::bench
