// Figure 7 (two leftmost plots) — strong scaling of inference AND training
// on the MS Academic Knowledge Graph (MAKG).
//
// Paper setup: MAKG with 111M vertices / 3.2B edges loaded from file,
// k in {16, 64, 128}, 3 layers, inference and training, up to 1024 nodes.
//
// Reproduction: MAKG itself does not fit on this machine, so an "MAKG-like"
// heavy-tail Kronecker graph (scale 13, ~1.3M edges) is written to disk once
// and streamed back through the same binary-COO file path the artifact uses
// for MAKG (graph/io.hpp) — the complete load-build-distribute pipeline is
// exercised; only the scale is reduced. See DESIGN.md's substitution table.
#include <cstdio>
#include <filesystem>

#include "bench_common.hpp"
#include "graph/io.hpp"

namespace agnn::bench {
namespace {

const graph::Graph<real_t>& makg_like_graph() {
  static const graph::Graph<real_t> g = [] {
    const std::string path =
        (std::filesystem::temp_directory_path() / "agnn_makg_like.bin").string();
    if (!std::filesystem::exists(path)) {
      graph::KroneckerParams params;
      params.scale = 13;  // n = 8192
      params.edges = index_t(1) << 21;  // ~2M edge samples before dedup
      params.seed = 99;
      graph::write_edge_list(path, graph::generate_kronecker(params));
    }
    // The MAKG code path: file -> COO -> dedup/symmetrize/fix -> CSR.
    return graph::build_graph<real_t>(graph::read_edge_list(path));
  }();
  return g;
}

void Fig7Makg(benchmark::State& state) {
  const auto kind = static_cast<ModelKind>(state.range(0));
  const int ranks = static_cast<int>(state.range(1));
  const auto k = static_cast<index_t>(state.range(2));
  const bool training = state.range(3) != 0;

  const auto& g = makg_like_graph();
  Workload w;
  w.adj = &g.adj;
  w.k = k;
  w.layers = 3;
  w.training = training;

  for (auto _ : state) {
    report(state, run_global(w, kind, ranks));
  }
  state.counters["n"] = static_cast<double>(g.num_vertices());
  state.counters["m"] = static_cast<double>(g.num_edges());
  state.counters["p"] = ranks;
  state.SetLabel(std::string(to_string(kind)) + (training ? "/training" : "/inference"));
}

void register_all() {
  const std::vector<ModelKind> models = {ModelKind::kVA, ModelKind::kAGNN,
                                         ModelKind::kGAT};
  const std::vector<index_t> widths = {16, 64, 128};
  const std::vector<int> rank_counts = {1, 4, 16, 64};
  for (const auto kind : models) {
    for (const index_t k : widths) {
      for (const int p : rank_counts) {
        for (const bool training : {false, true}) {
          if (k == 128 && p < 4) continue;  // mirrors the paper's memory gates
          benchmark::RegisterBenchmark(
              (std::string("Fig7_MAKG/") + to_string(kind) +
               (training ? "/training" : "/inference") + "/k" + std::to_string(k) +
               "/p" + std::to_string(p))
                  .c_str(),
              Fig7Makg)
              ->Args({static_cast<long>(kind), p, static_cast<long>(k),
                      training ? 1 : 0})
              ->UseManualTime()
              ->Iterations(1);
        }
      }
    }
  }
}

const int registered = (register_all(), 0);

}  // namespace
}  // namespace agnn::bench

AGNN_BENCH_MAIN()
