// Figure 6 — strong scaling of GNN *training* on Kronecker graphs.
//
// Paper setup: n in {131k..2M}, m in {110M..687M}, adjacency densities
// rho = m/n^2 from 1% to 0.01%, hidden width k in {16, 128}, 3 GNN layers,
// p in {1, 4, 16, 64, 256} nodes; series: our global VA/AGNN/GAT vs DistDGL
// (local formulation; full-batch proxy and the 16k-vertex mini-batch mode).
//
// Reproduction: Kronecker scale 11 (n = 2048) and scale 12 (n = 4096) with
// rho in {1%, 0.01%}, k in {16, 128}, p in {1, 4, 16, 64} simulated ranks.
// Fixed dataset, growing rank count = strong scaling. The reported time is
// the modeled cluster time (see bench_common.hpp).
#include "bench_common.hpp"

namespace agnn::bench {
namespace {

// Graphs are cached per (scale, density) so each benchmark row does not pay
// regeneration.
const graph::Graph<real_t>& cached_graph(int scale, double density) {
  struct Key {
    int scale;
    double density;
  };
  static std::vector<std::pair<Key, graph::Graph<real_t>>> cache;
  for (const auto& [key, g] : cache) {
    if (key.scale == scale && key.density == density) return g;
  }
  cache.emplace_back(Key{scale, density}, kronecker_graph(scale, density));
  return cache.back().second;
}

void Fig6Strong(benchmark::State& state) {
  const auto kind = static_cast<ModelKind>(state.range(0));
  const auto engine = static_cast<Engine>(state.range(1));
  const int ranks = static_cast<int>(state.range(2));
  const int scale = static_cast<int>(state.range(3));
  const double density = 1.0 / static_cast<double>(state.range(4));
  const auto k = static_cast<index_t>(state.range(5));

  const auto& g = cached_graph(scale, density);
  Workload w;
  w.adj = &g.adj;
  w.k = k;
  w.layers = 3;
  w.training = true;
  w.minibatch_size = std::min<index_t>(1 << 14, g.num_vertices() / 4);

  for (auto _ : state) {
    report(state, run_engine(engine, w, kind, ranks));
  }
  state.counters["n"] = static_cast<double>(g.num_vertices());
  state.counters["m"] = static_cast<double>(g.num_edges());
  state.counters["k"] = static_cast<double>(k);
  state.counters["p"] = ranks;
  state.SetLabel(std::string(to_string(kind)) + "/" + to_string(engine));
}

void register_all() {
  // Subplots (a)-(d) analog: two graph scales x two densities, k = 16;
  // subplots (e)-(h) analog: the same with k = 128 (scale 11 only, to keep
  // the full suite's runtime reasonable on one machine).
  const std::vector<std::pair<int, int>> graphs_k16 = {{11, 100}, {11, 10000},
                                                       {12, 100}, {12, 10000}};
  const std::vector<std::pair<int, int>> graphs_k128 = {{11, 100}, {11, 10000}};
  const std::vector<ModelKind> models = {ModelKind::kVA, ModelKind::kAGNN,
                                         ModelKind::kGAT};
  const std::vector<Engine> engines = {Engine::kGlobal, Engine::kLocalFull,
                                       Engine::kLocalMinibatch};
  const std::vector<int> rank_counts = {1, 4, 16, 64};

  auto add = [&](int scale, int inv_density, index_t k) {
    for (const auto kind : models) {
      for (const auto engine : engines) {
        for (const int p : rank_counts) {
          if (engine == Engine::kGlobal && p == 64 && scale >= 12) continue;
          benchmark::RegisterBenchmark(
              (std::string("Fig6/") + to_string(kind) + "/" + to_string(engine) +
               "/scale" + std::to_string(scale) + "/rho_inv" +
               std::to_string(inv_density) + "/k" + std::to_string(k) + "/p" +
               std::to_string(p))
                  .c_str(),
              Fig6Strong)
              ->Args({static_cast<long>(kind), static_cast<long>(engine), p, scale,
                      inv_density, static_cast<long>(k)})
              ->UseManualTime()
              ->Iterations(1);
        }
      }
    }
  };
  for (const auto& [scale, inv_density] : graphs_k16) add(scale, inv_density, 16);
  for (const auto& [scale, inv_density] : graphs_k128) add(scale, inv_density, 128);
}

const int registered = (register_all(), 0);

}  // namespace
}  // namespace agnn::bench

AGNN_BENCH_MAIN()
