// BCSR (blocked CSR): the register-blocked companion format to SELL-C-σ
// (DESIGN.md §13). Rows are grouped into block rows of br consecutive rows;
// every br×bc tile that contains at least one non-zero is stored densely
// (row-major within the tile), with `src(slot)` mapping each tile slot back
// to its originating CSR nnz index, or -1 for fill.
//
// Convertibility: a BCSR tile can hold at most one value per (row, column)
// position, so the conversion requires strictly ascending columns within
// each CSR row — no duplicates, no unsorted rows. Graph CSRs built through
// from_coo are always sorted, but duplicate edges are representable in CSR,
// so `from_csr` refuses (valid() == false) rather than silently merging;
// the format dispatcher falls back to CSR for such matrices.
//
// The kernels skip fill slots via src(slot) < 0, so BCSR results are
// bitwise-identical to the scalar CSR kernels for *all* inputs, including
// non-finite values (a processed fill slot would turn 0*inf into NaN).
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "tensor/common.hpp"
#include "tensor/csr_matrix.hpp"

namespace agnn {

template <typename T>
class BcsrMatrix {
 public:
  // 4×8: four output rows re-use each gathered h row; 8 columns give the
  // depth for the k-wide inner axpy to amortize the tile load.
  static constexpr index_t kDefaultBlockRows = 4;
  static constexpr index_t kDefaultBlockCols = 8;

  BcsrMatrix() = default;

  // Pattern + packed values. Check valid() afterwards: a CSR with duplicate
  // or unsorted columns within a row is not BCSR-representable.
  static BcsrMatrix from_csr(const CsrMatrix<T>& a,
                             index_t br = kDefaultBlockRows,
                             index_t bc = kDefaultBlockCols) {
    BcsrMatrix b = pattern_from_csr(a, br, bc);
    if (!b.valid()) return b;
    b.vals_.assign(b.src_.size(), T{});
    const auto av = a.vals();
    for (std::size_t slot = 0; slot < b.src_.size(); ++slot) {
      if (b.src_[slot] >= 0) b.vals_[slot] = av[static_cast<std::size_t>(b.src_[slot])];
    }
    return b;
  }

  // Pattern-only conversion (the form CsrMatrix caches; see sell_matrix.hpp
  // for the freshness rationale).
  static BcsrMatrix pattern_from_csr(const CsrMatrix<T>& a,
                                     index_t br = kDefaultBlockRows,
                                     index_t bc = kDefaultBlockCols) {
    AGNN_ASSERT(br > 0 && bc > 0, "BcsrMatrix: block dims must be positive");
    BcsrMatrix b;
    b.n_rows_ = a.rows();
    b.n_cols_ = a.cols();
    b.nnz_ = a.nnz();
    b.br_ = br;
    b.bc_ = bc;
    b.valid_ = true;
    const index_t n_block_rows = (b.n_rows_ + br - 1) / br;
    b.block_row_ptr_.assign(static_cast<std::size_t>(n_block_rows) + 1, 0);

    // Strict-ascending-column check; also the losslessness precondition.
    const auto cols = a.col_idx();
    for (index_t i = 0; i < b.n_rows_; ++i) {
      for (index_t e = a.row_begin(i) + 1; e < a.row_end(i); ++e) {
        if (cols[static_cast<std::size_t>(e)] <= cols[static_cast<std::size_t>(e - 1)]) {
          b.valid_ = false;
          return b;
        }
      }
    }

    // Pass 1: count distinct block columns per block row. Entries within a
    // block row arrive row-by-row, so per-J presence needs a marker; use an
    // epoch-stamped scratch over block columns (O(n_cols/bc) once).
    const index_t n_block_cols = (b.n_cols_ + bc - 1) / bc;
    std::vector<index_t> stamp(static_cast<std::size_t>(n_block_cols), -1);
    for (index_t I = 0; I < n_block_rows; ++I) {
      const index_t r0 = I * br;
      const index_t r1 = std::min<index_t>(r0 + br, b.n_rows_);
      index_t count = 0;
      for (index_t i = r0; i < r1; ++i) {
        for (index_t e = a.row_begin(i); e < a.row_end(i); ++e) {
          const index_t J = cols[static_cast<std::size_t>(e)] / bc;
          if (stamp[static_cast<std::size_t>(J)] != I) {
            stamp[static_cast<std::size_t>(J)] = I;
            ++count;
          }
        }
      }
      b.block_row_ptr_[static_cast<std::size_t>(I) + 1] = count;
    }
    for (std::size_t i = 1; i < b.block_row_ptr_.size(); ++i) {
      b.block_row_ptr_[i] += b.block_row_ptr_[i - 1];
    }

    // Pass 2: fill block columns (ascending J within each block row) and the
    // slot→nnz map. `pos` maps a block column J to its block index while a
    // block row is being filled.
    const index_t n_blocks = b.block_row_ptr_.back();
    b.block_col_.assign(static_cast<std::size_t>(n_blocks), 0);
    b.src_.assign(static_cast<std::size_t>(n_blocks * br * bc), index_t{-1});
    std::vector<index_t> pos(static_cast<std::size_t>(n_block_cols), -1);
    std::fill(stamp.begin(), stamp.end(), index_t{-1});
    for (index_t I = 0; I < n_block_rows; ++I) {
      const index_t r0 = I * br;
      const index_t r1 = std::min<index_t>(r0 + br, b.n_rows_);
      index_t next = b.block_row_ptr_[static_cast<std::size_t>(I)];
      // Distinct Js arrive interleaved across the block row's rows; collect
      // them in first-seen order, then sort the slice ascending so each
      // output row's block traversal preserves the CSR column order.
      const index_t first = next;
      for (index_t i = r0; i < r1; ++i) {
        for (index_t e = a.row_begin(i); e < a.row_end(i); ++e) {
          const index_t J = cols[static_cast<std::size_t>(e)] / bc;
          if (stamp[static_cast<std::size_t>(J)] != I) {
            stamp[static_cast<std::size_t>(J)] = I;
            b.block_col_[static_cast<std::size_t>(next++)] = J;
          }
        }
      }
      std::sort(b.block_col_.begin() + first, b.block_col_.begin() + next);
      for (index_t blk = first; blk < next; ++blk) {
        pos[static_cast<std::size_t>(b.block_col_[static_cast<std::size_t>(blk)])] = blk;
      }
      for (index_t i = r0; i < r1; ++i) {
        for (index_t e = a.row_begin(i); e < a.row_end(i); ++e) {
          const index_t c = cols[static_cast<std::size_t>(e)];
          const index_t blk = pos[static_cast<std::size_t>(c / bc)];
          const index_t slot = blk * br * bc + (i - r0) * bc + (c % bc);
          b.src_[static_cast<std::size_t>(slot)] = e;
        }
      }
    }
    return b;
  }

  // Exact inverse of from_csr for valid conversions: the strict-ascending
  // precondition means rebuilding rows in ascending-column order reproduces
  // row_ptr/col_idx/vals bit-for-bit.
  CsrMatrix<T> to_csr() const {
    AGNN_ASSERT(valid_, "BcsrMatrix::to_csr: invalid (unconvertible) matrix");
    AGNN_ASSERT(!vals_.empty() || nnz_ == 0,
                "BcsrMatrix::to_csr: pattern-only conversion has no values");
    std::vector<index_t> row_ptr(static_cast<std::size_t>(n_rows_) + 1, 0);
    std::vector<index_t> col_idx(static_cast<std::size_t>(nnz_));
    std::vector<T> vals(static_cast<std::size_t>(nnz_));
    const index_t n_block_rows = block_rows();
    for (int pass = 0; pass < 2; ++pass) {
      for (index_t I = 0; I < n_block_rows; ++I) {
        const index_t r0 = I * br_;
        const index_t r1 = std::min<index_t>(r0 + br_, n_rows_);
        for (index_t blk = block_row_ptr_[static_cast<std::size_t>(I)];
             blk < block_row_ptr_[static_cast<std::size_t>(I) + 1]; ++blk) {
          const index_t J = block_col_[static_cast<std::size_t>(blk)];
          for (index_t i = r0; i < r1; ++i) {
            for (index_t c = 0; c < bc_; ++c) {
              const index_t slot = blk * br_ * bc_ + (i - r0) * bc_ + c;
              if (src_[static_cast<std::size_t>(slot)] < 0) continue;
              if (pass == 0) {
                row_ptr[static_cast<std::size_t>(i) + 1]++;
              } else {
                const index_t at = row_ptr[static_cast<std::size_t>(i)]++;
                col_idx[static_cast<std::size_t>(at)] = J * bc_ + c;
                vals[static_cast<std::size_t>(at)] = vals_[static_cast<std::size_t>(slot)];
              }
            }
          }
        }
      }
      if (pass == 0) {
        for (std::size_t i = 1; i < row_ptr.size(); ++i) row_ptr[i] += row_ptr[i - 1];
      }
    }
    // Pass 1 advanced each row_ptr[i] to row_ptr[i+1]'s value; shift down.
    for (std::size_t i = row_ptr.size() - 1; i > 0; --i) row_ptr[i] = row_ptr[i - 1];
    row_ptr[0] = 0;
    return CsrMatrix<T>(n_rows_, n_cols_, std::move(row_ptr), std::move(col_idx),
                        std::move(vals));
  }

  bool valid() const { return valid_; }
  index_t rows() const { return n_rows_; }
  index_t cols() const { return n_cols_; }
  index_t nnz() const { return nnz_; }
  index_t block_height() const { return br_; }
  index_t block_width() const { return bc_; }
  index_t block_rows() const {
    return static_cast<index_t>(block_row_ptr_.size()) - 1;
  }
  index_t blocks() const { return block_row_ptr_.empty() ? 0 : block_row_ptr_.back(); }
  // Allocated value slots, fill included; slots() - nnz() is the fill cost.
  index_t slots() const { return blocks() * br_ * bc_; }

  std::span<const index_t> block_row_ptr() const { return block_row_ptr_; }
  std::span<const index_t> block_col() const { return block_col_; }
  std::span<const index_t> src() const { return src_; }
  std::span<const T> vals() const { return vals_; }

 private:
  index_t n_rows_ = 0;
  index_t n_cols_ = 0;
  index_t nnz_ = 0;
  index_t br_ = kDefaultBlockRows;
  index_t bc_ = kDefaultBlockCols;
  bool valid_ = false;
  std::vector<index_t> block_row_ptr_;  // per block row: first block index
  std::vector<index_t> block_col_;      // per block: block-column J
  std::vector<index_t> src_;            // per slot: CSR nnz index (-1 = fill)
  std::vector<T> vals_;                 // per slot: packed values (explicit conv only)
};

}  // namespace agnn
