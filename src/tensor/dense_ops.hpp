// Dense kernels: the MM building block of Table 2 plus the element-wise and
// vector operations (projection, replication, summation, Hadamard ops,
// row norms) that the global formulations are written in.
//
// All O(n*k) and larger loops are OpenMP-parallel over rows; feature
// dimensions (k) are kept in the innermost loop so the compiler can
// vectorize over the contiguous row storage.
//
// Every kernel has an out-parameter overload writing into caller-provided
// storage (no allocation within capacity); the by-value signatures are thin
// wrappers. Out-parameters must not alias inputs unless noted.
#pragma once

#include <cmath>
#include <numeric>
#include <vector>

#if defined(_OPENMP)
#include <omp.h>
#endif

#include "tensor/dense_matrix.hpp"

namespace agnn {

// C = A * B                                                     (MM, Table 2)
template <typename T>
void matmul(const DenseMatrix<T>& a, const DenseMatrix<T>& b, DenseMatrix<T>& c) {
  AGNN_ASSERT(a.cols() == b.rows(), "matmul: inner dimensions must agree");
  AGNN_ASSERT(&c != &a && &c != &b, "matmul: output cannot alias an input");
  const index_t n = a.rows(), k = a.cols(), m = b.cols();
  c.resize(n, m);
#pragma omp parallel for schedule(static)
  for (index_t i = 0; i < n; ++i) {
    T* ci = c.data() + i * m;
    const T* ai = a.data() + i * k;
    for (index_t j = 0; j < m; ++j) ci[j] = T(0);
    for (index_t l = 0; l < k; ++l) {
      const T ail = ai[l];
      const T* bl = b.data() + l * m;
      for (index_t j = 0; j < m; ++j) ci[j] += ail * bl[j];
    }
  }
}

template <typename T>
DenseMatrix<T> matmul(const DenseMatrix<T>& a, const DenseMatrix<T>& b) {
  DenseMatrix<T> c;
  matmul(a, b, c);
  return c;
}

// C = A^T * B  (used for weight gradients Y = H^T (...) G)
template <typename T>
void matmul_tn(const DenseMatrix<T>& a, const DenseMatrix<T>& b, DenseMatrix<T>& c) {
  AGNN_ASSERT(a.rows() == b.rows(), "matmul_tn: row counts must agree");
  AGNN_ASSERT(&c != &a && &c != &b, "matmul_tn: output cannot alias an input");
  const index_t n = a.rows(), ka = a.cols(), kb = b.cols();
  c.resize(ka, kb);
  c.fill(T(0));
  // ka, kb are feature dimensions (small); parallelize the reduction over n
  // with per-thread accumulators, then reduce them in thread order so the
  // result is deterministic for a fixed thread count (the by-value and
  // out-parameter paths must match bitwise).
#if defined(_OPENMP)
  const int n_threads = omp_get_max_threads();
#else
  const int n_threads = 1;
#endif
  std::vector<DenseMatrix<T>> locals(static_cast<std::size_t>(n_threads));
#pragma omp parallel
  {
#if defined(_OPENMP)
    const int tid = omp_get_thread_num();
#else
    const int tid = 0;
#endif
    DenseMatrix<T>& local = locals[static_cast<std::size_t>(tid)];
    local.resize(ka, kb);
    local.fill(T(0));
#pragma omp for schedule(static)
    for (index_t i = 0; i < n; ++i) {
      const T* ai = a.data() + i * ka;
      const T* bi = b.data() + i * kb;
      for (index_t l = 0; l < ka; ++l) {
        T* row = local.data() + l * kb;
        const T ail = ai[l];
        for (index_t j = 0; j < kb; ++j) row[j] += ail * bi[j];
      }
    }
  }
  for (const auto& local : locals) {
    if (local.size() != c.size()) continue;  // thread never entered the region
    for (index_t p = 0; p < c.size(); ++p) c.data()[p] += local.data()[p];
  }
}

template <typename T>
DenseMatrix<T> matmul_tn(const DenseMatrix<T>& a, const DenseMatrix<T>& b) {
  DenseMatrix<T> c;
  matmul_tn(a, b, c);
  return c;
}

// C = A * B^T  (used when multiplying by W^T in backward passes)
template <typename T>
void matmul_nt(const DenseMatrix<T>& a, const DenseMatrix<T>& b, DenseMatrix<T>& c) {
  AGNN_ASSERT(a.cols() == b.cols(), "matmul_nt: column counts must agree");
  AGNN_ASSERT(&c != &a && &c != &b, "matmul_nt: output cannot alias an input");
  const index_t n = a.rows(), k = a.cols(), m = b.rows();
  c.resize(n, m);
#pragma omp parallel for schedule(static)
  for (index_t i = 0; i < n; ++i) {
    const T* ai = a.data() + i * k;
    T* ci = c.data() + i * m;
    for (index_t j = 0; j < m; ++j) {
      const T* bj = b.data() + j * k;
      T acc = T(0);
      for (index_t l = 0; l < k; ++l) acc += ai[l] * bj[l];
      ci[j] = acc;
    }
  }
}

template <typename T>
DenseMatrix<T> matmul_nt(const DenseMatrix<T>& a, const DenseMatrix<T>& b) {
  DenseMatrix<T> c;
  matmul_nt(a, b, c);
  return c;
}

template <typename T>
void transpose(const DenseMatrix<T>& a, DenseMatrix<T>& c) {
  AGNN_ASSERT(&c != &a, "transpose: output cannot alias the input");
  c.resize(a.cols(), a.rows());
#pragma omp parallel for schedule(static)
  for (index_t i = 0; i < a.rows(); ++i)
    for (index_t j = 0; j < a.cols(); ++j) c(j, i) = a(i, j);
}

template <typename T>
DenseMatrix<T> transpose(const DenseMatrix<T>& a) {
  DenseMatrix<T> c;
  transpose(a, c);
  return c;
}

// y = A * x (matrix-vector; used for s = H' a in GAT)
template <typename T>
void matvec(const DenseMatrix<T>& a, std::span<const T> x, std::vector<T>& y) {
  AGNN_ASSERT(a.cols() == static_cast<index_t>(x.size()), "matvec: dimension mismatch");
  y.resize(static_cast<std::size_t>(a.rows()));
#pragma omp parallel for schedule(static)
  for (index_t i = 0; i < a.rows(); ++i) {
    const T* ai = a.data() + i * a.cols();
    T acc = T(0);
    for (index_t j = 0; j < a.cols(); ++j) acc += ai[j] * x[static_cast<std::size_t>(j)];
    y[static_cast<std::size_t>(i)] = acc;
  }
}

template <typename T>
std::vector<T> matvec(const DenseMatrix<T>& a, std::span<const T> x) {
  std::vector<T> y;
  matvec(a, x, y);
  return y;
}

// y = A^T * x (used for parameter-vector gradients da = H'^T ds)
template <typename T>
void matvec_tn(const DenseMatrix<T>& a, std::span<const T> x, std::vector<T>& y) {
  AGNN_ASSERT(a.rows() == static_cast<index_t>(x.size()), "matvec_tn: dimension mismatch");
  y.assign(static_cast<std::size_t>(a.cols()), T(0));
  for (index_t i = 0; i < a.rows(); ++i) {
    const T xi = x[static_cast<std::size_t>(i)];
    const T* ai = a.data() + i * a.cols();
    for (index_t j = 0; j < a.cols(); ++j) y[static_cast<std::size_t>(j)] += ai[j] * xi;
  }
}

template <typename T>
std::vector<T> matvec_tn(const DenseMatrix<T>& a, std::span<const T> x) {
  std::vector<T> y;
  matvec_tn(a, x, y);
  return y;
}

// C += alpha * A
template <typename T>
void axpy(T alpha, const DenseMatrix<T>& a, DenseMatrix<T>& c) {
  AGNN_ASSERT(a.same_shape(c), "axpy: shape mismatch");
#pragma omp parallel for schedule(static)
  for (index_t i = 0; i < a.size(); ++i) c.data()[i] += alpha * a.data()[i];
}

// Element-wise kernels. The output may alias either input (pure per-element
// reads before writes), which the in-place gradient paths rely on.
template <typename T>
void add(const DenseMatrix<T>& a, const DenseMatrix<T>& b, DenseMatrix<T>& c) {
  AGNN_ASSERT(a.same_shape(b), "add: shape mismatch");
  c.resize(a.rows(), a.cols());
#pragma omp parallel for schedule(static)
  for (index_t i = 0; i < a.size(); ++i) c.data()[i] = a.data()[i] + b.data()[i];
}

template <typename T>
DenseMatrix<T> add(const DenseMatrix<T>& a, const DenseMatrix<T>& b) {
  DenseMatrix<T> c;
  add(a, b, c);
  return c;
}

template <typename T>
void sub(const DenseMatrix<T>& a, const DenseMatrix<T>& b, DenseMatrix<T>& c) {
  AGNN_ASSERT(a.same_shape(b), "sub: shape mismatch");
  c.resize(a.rows(), a.cols());
#pragma omp parallel for schedule(static)
  for (index_t i = 0; i < a.size(); ++i) c.data()[i] = a.data()[i] - b.data()[i];
}

template <typename T>
DenseMatrix<T> sub(const DenseMatrix<T>& a, const DenseMatrix<T>& b) {
  DenseMatrix<T> c;
  sub(a, b, c);
  return c;
}

// C = A ⊙ B (element-wise Hadamard product)
template <typename T>
void hadamard(const DenseMatrix<T>& a, const DenseMatrix<T>& b, DenseMatrix<T>& c) {
  AGNN_ASSERT(a.same_shape(b), "hadamard: shape mismatch");
  c.resize(a.rows(), a.cols());
#pragma omp parallel for schedule(static)
  for (index_t i = 0; i < a.size(); ++i) c.data()[i] = a.data()[i] * b.data()[i];
}

template <typename T>
DenseMatrix<T> hadamard(const DenseMatrix<T>& a, const DenseMatrix<T>& b) {
  DenseMatrix<T> c;
  hadamard(a, b, c);
  return c;
}

template <typename T>
void scale_inplace(DenseMatrix<T>& a, T alpha) {
#pragma omp parallel for schedule(static)
  for (index_t i = 0; i < a.size(); ++i) a.data()[i] *= alpha;
}

// rep_i(x) = x * 1^T (Table 2): replicate a column vector `cols` times.
// Only used by reference paths and tests — the production kernels keep
// replications virtual (Section 6.1).
template <typename T>
DenseMatrix<T> replicate_cols(std::span<const T> x, index_t cols) {
  DenseMatrix<T> c(static_cast<index_t>(x.size()), cols);
  for (index_t i = 0; i < c.rows(); ++i)
    for (index_t j = 0; j < cols; ++j) c(i, j) = x[static_cast<std::size_t>(i)];
  return c;
}

// sum(X) = X * 1 (Table 2): per-row summation.
template <typename T>
void row_sums(const DenseMatrix<T>& a, std::vector<T>& s) {
  s.resize(static_cast<std::size_t>(a.rows()));
#pragma omp parallel for schedule(static)
  for (index_t i = 0; i < a.rows(); ++i) {
    const T* ai = a.data() + i * a.cols();
    T acc = T(0);
    for (index_t j = 0; j < a.cols(); ++j) acc += ai[j];
    s[static_cast<std::size_t>(i)] = acc;
  }
}

template <typename T>
std::vector<T> row_sums(const DenseMatrix<T>& a) {
  std::vector<T> s;
  row_sums(a, s);
  return s;
}

// The vector n of the AGNN formulation: n_i = ||h_i||_2.
template <typename T>
void row_l2_norms(const DenseMatrix<T>& a, std::vector<T>& s) {
  s.resize(static_cast<std::size_t>(a.rows()));
#pragma omp parallel for schedule(static)
  for (index_t i = 0; i < a.rows(); ++i) {
    const T* ai = a.data() + i * a.cols();
    T acc = T(0);
    for (index_t j = 0; j < a.cols(); ++j) acc += ai[j] * ai[j];
    s[static_cast<std::size_t>(i)] = std::sqrt(acc);
  }
}

template <typename T>
std::vector<T> row_l2_norms(const DenseMatrix<T>& a) {
  std::vector<T> s;
  row_l2_norms(a, s);
  return s;
}

// C = x * y^T (outer product; used by GAT backward: dH' += ds1 a1^T + ...)
template <typename T>
void outer(std::span<const T> x, std::span<const T> y, DenseMatrix<T>& c) {
  c.resize(static_cast<index_t>(x.size()), static_cast<index_t>(y.size()));
#pragma omp parallel for schedule(static)
  for (index_t i = 0; i < c.rows(); ++i) {
    T* ci = c.data() + i * c.cols();
    const T xi = x[static_cast<std::size_t>(i)];
    for (index_t j = 0; j < c.cols(); ++j) ci[j] = xi * y[static_cast<std::size_t>(j)];
  }
}

template <typename T>
DenseMatrix<T> outer(std::span<const T> x, std::span<const T> y) {
  DenseMatrix<T> c;
  outer(x, y, c);
  return c;
}

// C += x * y^T
template <typename T>
void add_outer_inplace(DenseMatrix<T>& c, std::span<const T> x, std::span<const T> y) {
  AGNN_ASSERT(c.rows() == static_cast<index_t>(x.size()) &&
                  c.cols() == static_cast<index_t>(y.size()),
              "add_outer_inplace: shape mismatch");
#pragma omp parallel for schedule(static)
  for (index_t i = 0; i < c.rows(); ++i) {
    T* ci = c.data() + i * c.cols();
    const T xi = x[static_cast<std::size_t>(i)];
    for (index_t j = 0; j < c.cols(); ++j) ci[j] += xi * y[static_cast<std::size_t>(j)];
  }
}

// OUT[i, :] = A[rows[i], :] — the feature-gather of the serving path
// (ego-network feature assembly and the between-layer compaction of the
// block-diagonal batched forward). Forward-only: gathers have no backward
// here because serving never trains. Row-local, so a gathered row is
// byte-identical to its source row regardless of batching or thread count.
template <typename T>
void gather_rows(const DenseMatrix<T>& a, std::span<const index_t> rows,
                 DenseMatrix<T>& out) {
  AGNN_ASSERT(&out != &a, "gather_rows: out must not alias the source");
  const index_t k = a.cols();
  out.resize(static_cast<index_t>(rows.size()), k);
#pragma omp parallel for schedule(static)
  for (index_t i = 0; i < static_cast<index_t>(rows.size()); ++i) {
    const index_t src = rows[static_cast<std::size_t>(i)];
    AGNN_ASSERT(src >= 0 && src < a.rows(), "gather_rows: row index out of range");
    const T* ai = a.data() + src * k;
    T* oi = out.data() + i * k;
    for (index_t j = 0; j < k; ++j) oi[j] = ai[j];
  }
}

template <typename T>
DenseMatrix<T> gather_rows(const DenseMatrix<T>& a, std::span<const index_t> rows) {
  DenseMatrix<T> out;
  gather_rows(a, rows, out);
  return out;
}

template <typename T>
T frobenius_norm(const DenseMatrix<T>& a) {
  double acc = 0;
  for (index_t i = 0; i < a.size(); ++i) {
    acc += static_cast<double>(a.data()[i]) * static_cast<double>(a.data()[i]);
  }
  return static_cast<T>(std::sqrt(acc));
}

template <typename T>
T max_abs_diff(const DenseMatrix<T>& a, const DenseMatrix<T>& b) {
  AGNN_ASSERT(a.same_shape(b), "max_abs_diff: shape mismatch");
  T m = T(0);
  for (index_t i = 0; i < a.size(); ++i) {
    const T d = std::abs(a.data()[i] - b.data()[i]);
    if (d > m) m = d;
  }
  return m;
}

}  // namespace agnn
