// Dense kernels: the MM building block of Table 2 plus the element-wise and
// vector operations (projection, replication, summation, Hadamard ops,
// row norms) that the global formulations are written in.
//
// All O(n*k) and larger loops are OpenMP-parallel over rows; feature
// dimensions (k) are kept in the innermost loop so the compiler can
// vectorize over the contiguous row storage.
#pragma once

#include <cmath>
#include <numeric>
#include <vector>

#include "tensor/dense_matrix.hpp"

namespace agnn {

// C = A * B                                                     (MM, Table 2)
template <typename T>
DenseMatrix<T> matmul(const DenseMatrix<T>& a, const DenseMatrix<T>& b) {
  AGNN_ASSERT(a.cols() == b.rows(), "matmul: inner dimensions must agree");
  DenseMatrix<T> c(a.rows(), b.cols(), T(0));
  const index_t n = a.rows(), k = a.cols(), m = b.cols();
#pragma omp parallel for schedule(static)
  for (index_t i = 0; i < n; ++i) {
    T* ci = c.data() + i * m;
    const T* ai = a.data() + i * k;
    for (index_t l = 0; l < k; ++l) {
      const T ail = ai[l];
      const T* bl = b.data() + l * m;
      for (index_t j = 0; j < m; ++j) ci[j] += ail * bl[j];
    }
  }
  return c;
}

// C = A^T * B  (used for weight gradients Y = H^T (...) G)
template <typename T>
DenseMatrix<T> matmul_tn(const DenseMatrix<T>& a, const DenseMatrix<T>& b) {
  AGNN_ASSERT(a.rows() == b.rows(), "matmul_tn: row counts must agree");
  const index_t n = a.rows(), ka = a.cols(), kb = b.cols();
  DenseMatrix<T> c(ka, kb, T(0));
  // ka, kb are feature dimensions (small); parallelize the reduction over n
  // with per-thread accumulators to avoid atomics.
#pragma omp parallel
  {
    DenseMatrix<T> local(ka, kb, T(0));
#pragma omp for schedule(static) nowait
    for (index_t i = 0; i < n; ++i) {
      const T* ai = a.data() + i * ka;
      const T* bi = b.data() + i * kb;
      for (index_t l = 0; l < ka; ++l) {
        T* row = local.data() + l * kb;
        const T ail = ai[l];
        for (index_t j = 0; j < kb; ++j) row[j] += ail * bi[j];
      }
    }
#pragma omp critical
    {
      for (index_t p = 0; p < c.size(); ++p) c.data()[p] += local.data()[p];
    }
  }
  return c;
}

// C = A * B^T  (used when multiplying by W^T in backward passes)
template <typename T>
DenseMatrix<T> matmul_nt(const DenseMatrix<T>& a, const DenseMatrix<T>& b) {
  AGNN_ASSERT(a.cols() == b.cols(), "matmul_nt: column counts must agree");
  const index_t n = a.rows(), k = a.cols(), m = b.rows();
  DenseMatrix<T> c(n, m, T(0));
#pragma omp parallel for schedule(static)
  for (index_t i = 0; i < n; ++i) {
    const T* ai = a.data() + i * k;
    T* ci = c.data() + i * m;
    for (index_t j = 0; j < m; ++j) {
      const T* bj = b.data() + j * k;
      T acc = T(0);
      for (index_t l = 0; l < k; ++l) acc += ai[l] * bj[l];
      ci[j] = acc;
    }
  }
  return c;
}

template <typename T>
DenseMatrix<T> transpose(const DenseMatrix<T>& a) {
  DenseMatrix<T> c(a.cols(), a.rows());
#pragma omp parallel for schedule(static)
  for (index_t i = 0; i < a.rows(); ++i)
    for (index_t j = 0; j < a.cols(); ++j) c(j, i) = a(i, j);
  return c;
}

// y = A * x (matrix-vector; used for s = H' a in GAT)
template <typename T>
std::vector<T> matvec(const DenseMatrix<T>& a, std::span<const T> x) {
  AGNN_ASSERT(a.cols() == static_cast<index_t>(x.size()), "matvec: dimension mismatch");
  std::vector<T> y(static_cast<std::size_t>(a.rows()), T(0));
#pragma omp parallel for schedule(static)
  for (index_t i = 0; i < a.rows(); ++i) {
    const T* ai = a.data() + i * a.cols();
    T acc = T(0);
    for (index_t j = 0; j < a.cols(); ++j) acc += ai[j] * x[static_cast<std::size_t>(j)];
    y[static_cast<std::size_t>(i)] = acc;
  }
  return y;
}

// y = A^T * x (used for parameter-vector gradients da = H'^T ds)
template <typename T>
std::vector<T> matvec_tn(const DenseMatrix<T>& a, std::span<const T> x) {
  AGNN_ASSERT(a.rows() == static_cast<index_t>(x.size()), "matvec_tn: dimension mismatch");
  std::vector<T> y(static_cast<std::size_t>(a.cols()), T(0));
  for (index_t i = 0; i < a.rows(); ++i) {
    const T xi = x[static_cast<std::size_t>(i)];
    const T* ai = a.data() + i * a.cols();
    for (index_t j = 0; j < a.cols(); ++j) y[static_cast<std::size_t>(j)] += ai[j] * xi;
  }
  return y;
}

// C += alpha * A
template <typename T>
void axpy(T alpha, const DenseMatrix<T>& a, DenseMatrix<T>& c) {
  AGNN_ASSERT(a.same_shape(c), "axpy: shape mismatch");
#pragma omp parallel for schedule(static)
  for (index_t i = 0; i < a.size(); ++i) c.data()[i] += alpha * a.data()[i];
}

template <typename T>
DenseMatrix<T> add(const DenseMatrix<T>& a, const DenseMatrix<T>& b) {
  AGNN_ASSERT(a.same_shape(b), "add: shape mismatch");
  DenseMatrix<T> c(a.rows(), a.cols());
#pragma omp parallel for schedule(static)
  for (index_t i = 0; i < a.size(); ++i) c.data()[i] = a.data()[i] + b.data()[i];
  return c;
}

template <typename T>
DenseMatrix<T> sub(const DenseMatrix<T>& a, const DenseMatrix<T>& b) {
  AGNN_ASSERT(a.same_shape(b), "sub: shape mismatch");
  DenseMatrix<T> c(a.rows(), a.cols());
#pragma omp parallel for schedule(static)
  for (index_t i = 0; i < a.size(); ++i) c.data()[i] = a.data()[i] - b.data()[i];
  return c;
}

// C = A ⊙ B (element-wise Hadamard product)
template <typename T>
DenseMatrix<T> hadamard(const DenseMatrix<T>& a, const DenseMatrix<T>& b) {
  AGNN_ASSERT(a.same_shape(b), "hadamard: shape mismatch");
  DenseMatrix<T> c(a.rows(), a.cols());
#pragma omp parallel for schedule(static)
  for (index_t i = 0; i < a.size(); ++i) c.data()[i] = a.data()[i] * b.data()[i];
  return c;
}

template <typename T>
void scale_inplace(DenseMatrix<T>& a, T alpha) {
#pragma omp parallel for schedule(static)
  for (index_t i = 0; i < a.size(); ++i) a.data()[i] *= alpha;
}

// rep_i(x) = x * 1^T (Table 2): replicate a column vector `cols` times.
// Only used by reference paths and tests — the production kernels keep
// replications virtual (Section 6.1).
template <typename T>
DenseMatrix<T> replicate_cols(std::span<const T> x, index_t cols) {
  DenseMatrix<T> c(static_cast<index_t>(x.size()), cols);
  for (index_t i = 0; i < c.rows(); ++i)
    for (index_t j = 0; j < cols; ++j) c(i, j) = x[static_cast<std::size_t>(i)];
  return c;
}

// sum(X) = X * 1 (Table 2): per-row summation.
template <typename T>
std::vector<T> row_sums(const DenseMatrix<T>& a) {
  std::vector<T> s(static_cast<std::size_t>(a.rows()), T(0));
#pragma omp parallel for schedule(static)
  for (index_t i = 0; i < a.rows(); ++i) {
    const T* ai = a.data() + i * a.cols();
    T acc = T(0);
    for (index_t j = 0; j < a.cols(); ++j) acc += ai[j];
    s[static_cast<std::size_t>(i)] = acc;
  }
  return s;
}

// The vector n of the AGNN formulation: n_i = ||h_i||_2.
template <typename T>
std::vector<T> row_l2_norms(const DenseMatrix<T>& a) {
  std::vector<T> s(static_cast<std::size_t>(a.rows()), T(0));
#pragma omp parallel for schedule(static)
  for (index_t i = 0; i < a.rows(); ++i) {
    const T* ai = a.data() + i * a.cols();
    T acc = T(0);
    for (index_t j = 0; j < a.cols(); ++j) acc += ai[j] * ai[j];
    s[static_cast<std::size_t>(i)] = std::sqrt(acc);
  }
  return s;
}

// C = x * y^T (outer product; used by GAT backward: dH' += ds1 a1^T + ...)
template <typename T>
DenseMatrix<T> outer(std::span<const T> x, std::span<const T> y) {
  DenseMatrix<T> c(static_cast<index_t>(x.size()), static_cast<index_t>(y.size()));
#pragma omp parallel for schedule(static)
  for (index_t i = 0; i < c.rows(); ++i) {
    T* ci = c.data() + i * c.cols();
    const T xi = x[static_cast<std::size_t>(i)];
    for (index_t j = 0; j < c.cols(); ++j) ci[j] = xi * y[static_cast<std::size_t>(j)];
  }
  return c;
}

// C += x * y^T
template <typename T>
void add_outer_inplace(DenseMatrix<T>& c, std::span<const T> x, std::span<const T> y) {
  AGNN_ASSERT(c.rows() == static_cast<index_t>(x.size()) &&
                  c.cols() == static_cast<index_t>(y.size()),
              "add_outer_inplace: shape mismatch");
#pragma omp parallel for schedule(static)
  for (index_t i = 0; i < c.rows(); ++i) {
    T* ci = c.data() + i * c.cols();
    const T xi = x[static_cast<std::size_t>(i)];
    for (index_t j = 0; j < c.cols(); ++j) ci[j] += xi * y[static_cast<std::size_t>(j)];
  }
}

template <typename T>
T frobenius_norm(const DenseMatrix<T>& a) {
  double acc = 0;
  for (index_t i = 0; i < a.size(); ++i) {
    acc += static_cast<double>(a.data()[i]) * static_cast<double>(a.data()[i]);
  }
  return static_cast<T>(std::sqrt(acc));
}

template <typename T>
T max_abs_diff(const DenseMatrix<T>& a, const DenseMatrix<T>& b) {
  AGNN_ASSERT(a.same_shape(b), "max_abs_diff: shape mismatch");
  T m = T(0);
  for (index_t i = 0; i < a.size(); ++i) {
    const T d = std::abs(a.data()[i] - b.data()[i]);
    if (d > m) m = d;
  }
  return m;
}

}  // namespace agnn
