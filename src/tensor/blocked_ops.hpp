// Vectorized kernels over the blocked formats (DESIGN.md §13): SpMM, SDDMM
// and the fused attention forwards on SELL-C-σ, plus SpMM on BCSR.
//
// The bitwise contract. Every kernel here produces output bitwise-identical
// to its scalar CSR counterpart (spmm / sddmm / fused_*_aggregate under a
// row-parallel schedule — which is itself bitwise-identical to the chunked
// policies). Three rules make this possible:
//
//   1. Vectorize across k, never across edges. Each output element's
//      additions form one chain whose order is the contract; the k feature
//      lanes are independent chains, so a k-wide AXPY is free.
//   2. Per-row edge order is the CSR order. SELL lanes store a row's edges
//      depth-ascending in original order; BCSR traverses blocks ascending-J
//      with ascending columns inside, which is the CSR order for the sorted
//      rows BCSR accepts.
//   3. Dot products stay g-sequential. SDDMM-like reductions are never
//      split across SIMD lanes; throughput comes from unrolling across
//      independent edges (separate accumulation chains).
//
// Padding never touches the arithmetic: SELL lanes carry true row lengths
// and stop there; BCSR fill slots are skipped via src(slot) < 0. So the
// contract holds for *all* inputs, non-finite values included.
//
// SIMD structure: each kernel's work unit is one chunk (SELL) or block row
// (BCSR), written as an always_inline body template. The body is
// instantiated twice — once at the build's baseline ISA and once inside a
// `#pragma GCC target("avx2")` region (see simd.hpp for why that region can
// never fuse mul+add into FMA, which would break the bitwise contract) —
// and the public kernel picks per call at chunk granularity via
// simd::have_avx2(). No global -march flags, no per-edge dispatch overhead,
// and the portable instantiation is exactly what the
// -DAGNN_SIMD_INTRINSICS=OFF CI leg always runs.
//
// Values are always read through the format's src() map from the caller's
// live CSR value array (`vals`), so kernels dispatched off a cached
// pattern-only conversion see in-place value updates (attention weights
// change every training step).
#pragma once

#include <cmath>
#include <limits>
#include <span>

#include "tensor/bcsr_matrix.hpp"
#include "tensor/dense_matrix.hpp"
#include "tensor/schedule.hpp"
#include "tensor/sell_matrix.hpp"
#include "tensor/simd.hpp"

namespace agnn {

namespace detail {

// Cache tile over k for the SpMM kernels: the C (resp. br) output rows of a
// chunk stay L1-resident across the chunk's whole edge range, bounding the
// per-edge traffic to the gathered h row. 256 elements × 8 output rows is
// 16 KiB of doubles — half of a typical L1d.
inline constexpr index_t kSpmmKTile = 256;

// ---- chunk/block-row bodies (instantiated per ISA; see header comment) ----

template <typename T>
AGNN_ALWAYS_INLINE void sell_spmm_chunk(const SellCSigmaMatrix<T>& s,
                                        const T* AGNN_RESTRICT vals,
                                        const T* AGNN_RESTRICT h,
                                        T* AGNN_RESTRICT out, index_t k,
                                        index_t c, index_t k0, index_t kt) {
  const index_t C = s.chunk();
  const auto chunk_ptr = s.chunk_ptr();
  const auto row_of = s.row_of_lane();
  const auto len = s.lane_len();
  const auto col = s.col();
  const auto src = s.src();
  const index_t base = chunk_ptr[static_cast<std::size_t>(c)];
  const index_t width = (chunk_ptr[static_cast<std::size_t>(c) + 1] - base) / C;
  // Zero this chunk's output tiles, then accumulate depth-major: at each
  // depth the C lanes' slots are contiguous.
  for (index_t lane = 0; lane < C; ++lane) {
    const index_t row = row_of[static_cast<std::size_t>(c * C + lane)];
    if (row < 0) continue;
    T* AGNN_RESTRICT oi = out + row * k + k0;
    for (index_t g = 0; g < kt; ++g) oi[g] = T(0);
  }
  for (index_t j = 0; j < width; ++j) {
    const index_t slot0 = base + j * C;
    for (index_t lane = 0; lane < C; ++lane) {
      if (j >= len[static_cast<std::size_t>(c * C + lane)]) continue;
      const std::size_t slot = static_cast<std::size_t>(slot0 + lane);
      const index_t row = row_of[static_cast<std::size_t>(c * C + lane)];
      const T av = vals[static_cast<std::size_t>(src[slot])];
      T* AGNN_RESTRICT oi = out + row * k + k0;
      const T* AGNN_RESTRICT hj = h + col[slot] * k + k0;
      for (index_t g = 0; g < kt; ++g) oi[g] += av * hj[g];
    }
  }
}

template <typename T>
AGNN_ALWAYS_INLINE void bcsr_spmm_block_row(const BcsrMatrix<T>& b,
                                            const T* AGNN_RESTRICT vals,
                                            const T* AGNN_RESTRICT h,
                                            T* AGNN_RESTRICT out, index_t k,
                                            index_t I, index_t k0, index_t kt) {
  const index_t br = b.block_height(), bc = b.block_width();
  const auto brp = b.block_row_ptr();
  const auto bcol = b.block_col();
  const auto src = b.src();
  const index_t r0 = I * br;
  const index_t r1 = std::min<index_t>(r0 + br, b.rows());
  for (index_t i = r0; i < r1; ++i) {
    T* AGNN_RESTRICT oi = out + i * k + k0;
    for (index_t g = 0; g < kt; ++g) oi[g] = T(0);
  }
  for (index_t blk = brp[static_cast<std::size_t>(I)];
       blk < brp[static_cast<std::size_t>(I) + 1]; ++blk) {
    const index_t c0 = bcol[static_cast<std::size_t>(blk)] * bc;
    const index_t slot0 = blk * br * bc;
    for (index_t i = r0; i < r1; ++i) {
      T* AGNN_RESTRICT oi = out + i * k + k0;
      for (index_t c = 0; c < bc; ++c) {
        const index_t sidx =
            src[static_cast<std::size_t>(slot0 + (i - r0) * bc + c)];
        if (sidx < 0) continue;  // fill slot — not part of the pattern
        const T av = vals[static_cast<std::size_t>(sidx)];
        const T* AGNN_RESTRICT hj = h + (c0 + c) * k + k0;
        for (index_t g = 0; g < kt; ++g) oi[g] += av * hj[g];
      }
    }
  }
}

template <bool Weighted, typename T>
AGNN_ALWAYS_INLINE void sell_sddmm_chunk(const SellCSigmaMatrix<T>& s,
                                         const T* AGNN_RESTRICT pattern_vals,
                                         const T* AGNN_RESTRICT x,
                                         const T* AGNN_RESTRICT y,
                                         T* AGNN_RESTRICT out_vals, index_t k,
                                         index_t c) {
  const index_t C = s.chunk();
  const auto chunk_ptr = s.chunk_ptr();
  const auto row_of = s.row_of_lane();
  const auto len = s.lane_len();
  const auto col = s.col();
  const auto src = s.src();
  const index_t base = chunk_ptr[static_cast<std::size_t>(c)];
  const auto edge_out = [&](std::size_t slot, T dot) {
    const std::size_t t = static_cast<std::size_t>(src[slot]);
    if constexpr (Weighted) {
      out_vals[t] = pattern_vals[t] * dot;
    } else {
      out_vals[t] = dot;
    }
  };
  for (index_t lane = 0; lane < C; ++lane) {
    const std::size_t gl = static_cast<std::size_t>(c * C + lane);
    const index_t row = row_of[gl];
    if (row < 0) continue;
    const T* AGNN_RESTRICT xi = x + row * k;
    const index_t L = len[gl];
    index_t j = 0;
    // Four independent edges of the lane at a time: four separate dot
    // chains, each g-sequential, sharing the x_i loads.
    for (; j + 4 <= L; j += 4) {
      const std::size_t s0 = static_cast<std::size_t>(base + (j + 0) * C + lane);
      const std::size_t s1 = static_cast<std::size_t>(base + (j + 1) * C + lane);
      const std::size_t s2 = static_cast<std::size_t>(base + (j + 2) * C + lane);
      const std::size_t s3 = static_cast<std::size_t>(base + (j + 3) * C + lane);
      const T* AGNN_RESTRICT y0 = y + col[s0] * k;
      const T* AGNN_RESTRICT y1 = y + col[s1] * k;
      const T* AGNN_RESTRICT y2 = y + col[s2] * k;
      const T* AGNN_RESTRICT y3 = y + col[s3] * k;
      T a0 = T(0), a1 = T(0), a2 = T(0), a3 = T(0);
      for (index_t g = 0; g < k; ++g) {
        const T xg = xi[g];
        a0 += xg * y0[g];
        a1 += xg * y1[g];
        a2 += xg * y2[g];
        a3 += xg * y3[g];
      }
      edge_out(s0, a0);
      edge_out(s1, a1);
      edge_out(s2, a2);
      edge_out(s3, a3);
    }
    for (; j < L; ++j) {
      const std::size_t slot = static_cast<std::size_t>(base + j * C + lane);
      const T* AGNN_RESTRICT yj = y + col[slot] * k;
      T acc = T(0);
      for (index_t g = 0; g < k; ++g) acc += xi[g] * yj[g];
      edge_out(slot, acc);
    }
  }
}

template <typename T>
AGNN_ALWAYS_INLINE void sell_fused_va_chunk(const SellCSigmaMatrix<T>& s,
                                            const T* AGNN_RESTRICT vals,
                                            const T* AGNN_RESTRICT h,
                                            const T* AGNN_RESTRICT x,
                                            T* AGNN_RESTRICT out, index_t k,
                                            index_t kx, index_t c) {
  const index_t C = s.chunk();
  const auto chunk_ptr = s.chunk_ptr();
  const auto row_of = s.row_of_lane();
  const auto len = s.lane_len();
  const auto col = s.col();
  const auto src = s.src();
  const index_t base = chunk_ptr[static_cast<std::size_t>(c)];
  for (index_t lane = 0; lane < C; ++lane) {
    const std::size_t gl = static_cast<std::size_t>(c * C + lane);
    const index_t row = row_of[gl];
    if (row < 0) continue;
    const T* AGNN_RESTRICT hi = h + row * k;
    T* AGNN_RESTRICT oi = out + row * kx;
    for (index_t g = 0; g < kx; ++g) oi[g] = T(0);
    for (index_t j = 0; j < len[gl]; ++j) {
      const std::size_t slot = static_cast<std::size_t>(base + j * C + lane);
      const index_t jc = col[slot];
      const T* AGNN_RESTRICT hj = h + jc * k;
      T score = T(0);
      for (index_t g = 0; g < k; ++g) score += hi[g] * hj[g];
      score *= vals[static_cast<std::size_t>(src[slot])];
      const T* AGNN_RESTRICT xj = x + jc * kx;
      for (index_t g = 0; g < kx; ++g) oi[g] += score * xj[g];
    }
  }
}

template <typename T>
AGNN_ALWAYS_INLINE void sell_fused_gat_chunk(
    const SellCSigmaMatrix<T>& s, const T* AGNN_RESTRICT vals,
    const T* AGNN_RESTRICT s1, const T* AGNN_RESTRICT s2, T leaky_slope,
    const T* AGNN_RESTRICT x, T* AGNN_RESTRICT out, T* AGNN_RESTRICT scores,
    index_t kx, index_t c) {
  const index_t C = s.chunk();
  const auto chunk_ptr = s.chunk_ptr();
  const auto row_of = s.row_of_lane();
  const auto len = s.lane_len();
  const auto col = s.col();
  const auto src = s.src();
  const index_t base = chunk_ptr[static_cast<std::size_t>(c)];
  for (index_t lane = 0; lane < C; ++lane) {
    const std::size_t gl = static_cast<std::size_t>(c * C + lane);
    const index_t row = row_of[gl];
    const index_t L = len[gl];
    if (row < 0 || L == 0) continue;
    // Same three-phase per-row online softmax as fused_gat_aggregate's
    // row_body, in the same edge order.
    const T s1i = s1[static_cast<std::size_t>(row)];
    T mx = -std::numeric_limits<T>::infinity();
    for (index_t j = 0; j < L; ++j) {
      const std::size_t slot = static_cast<std::size_t>(base + j * C + lane);
      const T cc = s1i + s2[static_cast<std::size_t>(col[slot])];
      const T lrelu =
          (cc > T(0) ? cc : leaky_slope * cc) * vals[static_cast<std::size_t>(src[slot])];
      scores[j] = lrelu;
      mx = std::max(mx, lrelu);
    }
    T sum = T(0);
    for (index_t j = 0; j < L; ++j) {
      const T ex = std::exp(scores[j] - mx);
      scores[j] = ex;
      sum += ex;
    }
    const T inv = T(1) / sum;
    T* AGNN_RESTRICT oi = out + row * kx;
    for (index_t j = 0; j < L; ++j) {
      const std::size_t slot = static_cast<std::size_t>(base + j * C + lane);
      const T w = scores[j] * inv;
      const T* AGNN_RESTRICT xj = x + col[slot] * kx;
      for (index_t g = 0; g < kx; ++g) oi[g] += w * xj[g];
    }
  }
}

#if AGNN_SIMD_AVX2_PATH
// AVX2 instantiations: same bodies, compiled under the avx2 target (which
// the autovectorizer uses for the k-wide loops; mul+add stay separate —
// FMA is a distinct target flag that is never enabled). Runtime-gated by
// simd::have_avx2() in the public kernels.
#pragma GCC push_options
#pragma GCC target("avx2")
template <typename T>
void sell_spmm_chunk_avx2(const SellCSigmaMatrix<T>& s, const T* vals,
                          const T* h, T* out, index_t k, index_t c, index_t k0,
                          index_t kt) {
  sell_spmm_chunk(s, vals, h, out, k, c, k0, kt);
}
template <typename T>
void bcsr_spmm_block_row_avx2(const BcsrMatrix<T>& b, const T* vals, const T* h,
                              T* out, index_t k, index_t I, index_t k0,
                              index_t kt) {
  bcsr_spmm_block_row(b, vals, h, out, k, I, k0, kt);
}
template <bool Weighted, typename T>
void sell_sddmm_chunk_avx2(const SellCSigmaMatrix<T>& s, const T* pattern_vals,
                           const T* x, const T* y, T* out_vals, index_t k,
                           index_t c) {
  sell_sddmm_chunk<Weighted>(s, pattern_vals, x, y, out_vals, k, c);
}
template <typename T>
void sell_fused_va_chunk_avx2(const SellCSigmaMatrix<T>& s, const T* vals,
                              const T* h, const T* x, T* out, index_t k,
                              index_t kx, index_t c) {
  sell_fused_va_chunk(s, vals, h, x, out, k, kx, c);
}
template <typename T>
void sell_fused_gat_chunk_avx2(const SellCSigmaMatrix<T>& s, const T* vals,
                               const T* s1, const T* s2, T leaky_slope,
                               const T* x, T* out, T* scores, index_t kx,
                               index_t c) {
  sell_fused_gat_chunk(s, vals, s1, s2, leaky_slope, x, out, scores, kx, c);
}
#pragma GCC pop_options
#endif  // AGNN_SIMD_AVX2_PATH

}  // namespace detail

// out = A * H with A in SELL-C-σ form. Bitwise-identical to spmm().
template <typename T>
void sell_spmm(const SellCSigmaMatrix<T>& s, std::span<const T> vals,
               const DenseMatrix<T>& h, DenseMatrix<T>& out) {
  AGNN_ASSERT(s.cols() == h.rows(), "sell_spmm: dimension mismatch");
  AGNN_ASSERT(static_cast<index_t>(vals.size()) == s.nnz(),
              "sell_spmm: values must be the source CSR value array");
  const index_t k = h.cols();
  out.resize(s.rows(), k);
  const index_t n_chunks = s.chunks();
  const bool avx2 = simd::have_avx2();
  for (index_t k0 = 0; k0 < k; k0 += detail::kSpmmKTile) {
    const index_t kt = std::min<index_t>(detail::kSpmmKTile, k - k0);
#pragma omp parallel for schedule(dynamic, 4)
    for (index_t c = 0; c < n_chunks; ++c) {
#if AGNN_SIMD_AVX2_PATH
      if (avx2) {
        detail::sell_spmm_chunk_avx2(s, vals.data(), h.data(), out.data(), k,
                                     c, k0, kt);
        continue;
      }
#endif
      (void)avx2;
      detail::sell_spmm_chunk(s, vals.data(), h.data(), out.data(), k, c, k0,
                              kt);
    }
  }
}

// out = A * H with A in BCSR form. Bitwise-identical to spmm(); requires a
// valid (strictly-sorted-row) conversion.
template <typename T>
void bcsr_spmm(const BcsrMatrix<T>& b, std::span<const T> vals,
               const DenseMatrix<T>& h, DenseMatrix<T>& out) {
  AGNN_ASSERT(b.valid(), "bcsr_spmm: invalid BCSR conversion");
  AGNN_ASSERT(b.cols() == h.rows(), "bcsr_spmm: dimension mismatch");
  AGNN_ASSERT(static_cast<index_t>(vals.size()) == b.nnz(),
              "bcsr_spmm: values must be the source CSR value array");
  const index_t k = h.cols();
  out.resize(b.rows(), k);
  const index_t n_block_rows = b.block_rows();
  const bool avx2 = simd::have_avx2();
  for (index_t k0 = 0; k0 < k; k0 += detail::kSpmmKTile) {
    const index_t kt = std::min<index_t>(detail::kSpmmKTile, k - k0);
#pragma omp parallel for schedule(dynamic, 4)
    for (index_t I = 0; I < n_block_rows; ++I) {
#if AGNN_SIMD_AVX2_PATH
      if (avx2) {
        detail::bcsr_spmm_block_row_avx2(b, vals.data(), h.data(), out.data(),
                                         k, I, k0, kt);
        continue;
      }
#endif
      (void)avx2;
      detail::bcsr_spmm_block_row(b, vals.data(), h.data(), out.data(), k, I,
                                  k0, kt);
    }
  }
}

// SDDMM on SELL-C-σ: out_vals[src(slot)] = (pattern value ·) <x_i, y_j> for
// every stored edge. Bitwise-identical to sddmm()/sddmm_unweighted().
template <bool Weighted, typename T>
void sell_sddmm(const SellCSigmaMatrix<T>& s, std::span<const T> pattern_vals,
                const DenseMatrix<T>& x, const DenseMatrix<T>& y,
                std::span<T> out_vals) {
  AGNN_ASSERT(s.rows() == x.rows(), "sell_sddmm: row dimension mismatch");
  AGNN_ASSERT(s.cols() == y.rows(), "sell_sddmm: col dimension mismatch");
  AGNN_ASSERT(x.cols() == y.cols(), "sell_sddmm: inner dimension mismatch");
  AGNN_ASSERT(static_cast<index_t>(out_vals.size()) == s.nnz(),
              "sell_sddmm: output size mismatch");
  const index_t k = x.cols();
  const index_t n_chunks = s.chunks();
  const bool avx2 = simd::have_avx2();
#pragma omp parallel for schedule(dynamic, 4)
  for (index_t c = 0; c < n_chunks; ++c) {
#if AGNN_SIMD_AVX2_PATH
    if (avx2) {
      detail::sell_sddmm_chunk_avx2<Weighted>(s, pattern_vals.data(), x.data(),
                                              y.data(), out_vals.data(), k, c);
      continue;
    }
#endif
    (void)avx2;
    detail::sell_sddmm_chunk<Weighted>(s, pattern_vals.data(), x.data(),
                                       y.data(), out_vals.data(), k, c);
  }
}

// Fused VA forward on SELL-C-σ: out = (A ⊙ H H^T) * X in one pass.
// Bitwise-identical to fused_va_aggregate().
template <typename T>
void sell_fused_va_aggregate(const SellCSigmaMatrix<T>& s,
                             std::span<const T> vals, const DenseMatrix<T>& h,
                             const DenseMatrix<T>& x, DenseMatrix<T>& out) {
  AGNN_ASSERT(s.rows() == h.rows() && s.cols() == h.rows(), "fused_va: shape");
  AGNN_ASSERT(s.cols() == x.rows(), "fused_va: aggregation input shape");
  AGNN_ASSERT(&out != &h && &out != &x, "fused_va: output cannot alias an input");
  AGNN_ASSERT(static_cast<index_t>(vals.size()) == s.nnz(),
              "fused_va: values must be the source CSR value array");
  const index_t k = h.cols(), kx = x.cols();
  out.resize(s.rows(), kx);
  const index_t n_chunks = s.chunks();
  const bool avx2 = simd::have_avx2();
#pragma omp parallel for schedule(dynamic, 4)
  for (index_t c = 0; c < n_chunks; ++c) {
#if AGNN_SIMD_AVX2_PATH
    if (avx2) {
      detail::sell_fused_va_chunk_avx2(s, vals.data(), h.data(), x.data(),
                                       out.data(), k, kx, c);
      continue;
    }
#endif
    (void)avx2;
    detail::sell_fused_va_chunk(s, vals.data(), h.data(), x.data(), out.data(),
                                k, kx, c);
  }
}

// Fused GAT forward on SELL-C-σ: out = sm(A ⊙ LeakyReLU(s1 1^T + 1 s2^T)) * X.
// Bitwise-identical to fused_gat_aggregate().
template <typename T>
void sell_fused_gat_aggregate(const SellCSigmaMatrix<T>& s,
                              std::span<const T> vals, std::span<const T> s1,
                              std::span<const T> s2, T leaky_slope,
                              const DenseMatrix<T>& x, DenseMatrix<T>& out) {
  AGNN_ASSERT(s.cols() == x.rows(), "fused_gat: aggregation input shape");
  AGNN_ASSERT(&out != &x, "fused_gat: output cannot alias an input");
  AGNN_ASSERT(static_cast<index_t>(s1.size()) == s.rows(), "fused_gat: s1 size");
  AGNN_ASSERT(static_cast<index_t>(s2.size()) == s.cols(), "fused_gat: s2 size");
  AGNN_ASSERT(static_cast<index_t>(vals.size()) == s.nnz(),
              "fused_gat: values must be the source CSR value array");
  const index_t kx = x.cols();
  out.resize(s.rows(), kx);
  out.fill(T(0));
  const index_t n_chunks = s.chunks();
  const bool avx2 = simd::have_avx2();
  // Per-thread score scratch sized to the widest chunk (= widest row).
  index_t max_w = 0;
  const auto cp = s.chunk_ptr();
  for (index_t c = 0; c < n_chunks; ++c) {
    max_w = std::max(max_w, (cp[static_cast<std::size_t>(c) + 1] -
                             cp[static_cast<std::size_t>(c)]) /
                                s.chunk());
  }
#pragma omp parallel
  {
    T* scores =
        detail::schedule_arena<T, 21>(static_cast<std::size_t>(max_w));
#pragma omp for schedule(dynamic, 4)
    for (index_t c = 0; c < n_chunks; ++c) {
#if AGNN_SIMD_AVX2_PATH
      if (avx2) {
        detail::sell_fused_gat_chunk_avx2(s, vals.data(), s1.data(), s2.data(),
                                          leaky_slope, x.data(), out.data(),
                                          scores, kx, c);
        continue;
      }
#endif
      (void)avx2;
      detail::sell_fused_gat_chunk(s, vals.data(), s1.data(), s2.data(),
                                   leaky_slope, x.data(), out.data(), scores,
                                   kx, c);
    }
  }
}

}  // namespace agnn
