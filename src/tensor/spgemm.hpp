// SpGEMM — sparse x sparse matrix product — and its masked variant.
//
// Not needed by the GNN layers themselves (those are SpMM/SDDMM-shaped),
// but it completes the GraphBLAS-style building-block set the paper's
// formulations are designed to plug into (Section 9): triangle counting is
// (A * A) ⊙ A, Jaccard/overlap similarity is masked SpGEMM, etc.
//
// Row-wise Gustavson with a dense scatter accumulator per thread — the
// right choice for the n up to ~10^6 this project runs at.
#pragma once

#include <vector>

#include "tensor/coo_matrix.hpp"
#include "tensor/csr_matrix.hpp"

namespace agnn {

// C = A * B over the real semiring.
template <typename T>
CsrMatrix<T> spgemm(const CsrMatrix<T>& a, const CsrMatrix<T>& b) {
  AGNN_ASSERT(a.cols() == b.rows(), "spgemm: inner dimensions must agree");
  const index_t n = a.rows(), m = b.cols();

  // Pass 1: row sizes; pass 2: fill. Both passes use a per-thread dense
  // marker array so each output entry costs O(1).
  std::vector<index_t> row_ptr(static_cast<std::size_t>(n + 1), 0);
#pragma omp parallel
  {
    std::vector<index_t> marker(static_cast<std::size_t>(m), -1);
#pragma omp for schedule(dynamic, 32)
    for (index_t i = 0; i < n; ++i) {
      index_t count = 0;
      for (index_t ea = a.row_begin(i); ea < a.row_end(i); ++ea) {
        const index_t k = a.col_at(ea);
        for (index_t eb = b.row_begin(k); eb < b.row_end(k); ++eb) {
          const index_t j = b.col_at(eb);
          if (marker[static_cast<std::size_t>(j)] != i) {
            marker[static_cast<std::size_t>(j)] = i;
            ++count;
          }
        }
      }
      row_ptr[static_cast<std::size_t>(i) + 1] = count;
    }
  }
  for (std::size_t i = 1; i < row_ptr.size(); ++i) row_ptr[i] += row_ptr[i - 1];

  std::vector<index_t> col_idx(static_cast<std::size_t>(row_ptr.back()));
  std::vector<T> vals(col_idx.size(), T(0));
#pragma omp parallel
  {
    std::vector<index_t> pos(static_cast<std::size_t>(m), -1);  // j -> slot
#pragma omp for schedule(dynamic, 32)
    for (index_t i = 0; i < n; ++i) {
      index_t next = row_ptr[static_cast<std::size_t>(i)];
      const index_t begin = next;
      for (index_t ea = a.row_begin(i); ea < a.row_end(i); ++ea) {
        const index_t k = a.col_at(ea);
        const T av = a.val_at(ea);
        for (index_t eb = b.row_begin(k); eb < b.row_end(k); ++eb) {
          const index_t j = b.col_at(eb);
          index_t& slot = pos[static_cast<std::size_t>(j)];
          if (slot < begin || slot >= next ||
              col_idx[static_cast<std::size_t>(slot)] != j) {
            slot = next++;
            col_idx[static_cast<std::size_t>(slot)] = j;
            vals[static_cast<std::size_t>(slot)] = T(0);
          }
          vals[static_cast<std::size_t>(slot)] += av * b.val_at(eb);
        }
      }
      // Sort the row's columns (CSR invariant used elsewhere).
      std::vector<std::pair<index_t, T>> row;
      row.reserve(static_cast<std::size_t>(next - begin));
      for (index_t s = begin; s < next; ++s) {
        row.emplace_back(col_idx[static_cast<std::size_t>(s)],
                         vals[static_cast<std::size_t>(s)]);
      }
      std::sort(row.begin(), row.end());
      for (index_t s = begin; s < next; ++s) {
        col_idx[static_cast<std::size_t>(s)] = row[static_cast<std::size_t>(s - begin)].first;
        vals[static_cast<std::size_t>(s)] = row[static_cast<std::size_t>(s - begin)].second;
      }
    }
  }
  return CsrMatrix<T>(n, m, std::move(row_ptr), std::move(col_idx), std::move(vals));
}

// Masked SpGEMM: C = (A * B) ⊙ mask, computing only the entries the mask
// keeps — the GraphBLAS accumulate-with-mask idiom. Equivalent to an SDDMM
// where the "dense" factors are sparse.
template <typename T>
CsrMatrix<T> spgemm_masked(const CsrMatrix<T>& a, const CsrMatrix<T>& b,
                           const CsrMatrix<T>& mask) {
  AGNN_ASSERT(a.cols() == b.rows(), "spgemm_masked: inner dimensions");
  AGNN_ASSERT(mask.rows() == a.rows() && mask.cols() == b.cols(),
              "spgemm_masked: mask shape");
  CsrMatrix<T> out = mask;
  auto v = out.vals_mutable();
#pragma omp parallel for schedule(dynamic, 32)
  for (index_t i = 0; i < mask.rows(); ++i) {
    for (index_t e = mask.row_begin(i); e < mask.row_end(i); ++e) {
      const index_t j = mask.col_at(e);
      // (A*B)(i,j) = sum_k A(i,k) B(k,j): merge row i of A with column j of
      // B; B's rows are sorted, so use binary search per term.
      T acc = T(0);
      for (index_t ea = a.row_begin(i); ea < a.row_end(i); ++ea) {
        const index_t k = a.col_at(ea);
        // Binary search for j in B's row k.
        index_t lo = b.row_begin(k), hi = b.row_end(k);
        while (lo < hi) {
          const index_t mid = lo + (hi - lo) / 2;
          if (b.col_at(mid) < j) {
            lo = mid + 1;
          } else {
            hi = mid;
          }
        }
        if (lo < b.row_end(k) && b.col_at(lo) == j) {
          acc += a.val_at(ea) * b.val_at(lo);
        }
      }
      v[static_cast<std::size_t>(e)] = mask.val_at(e) * acc;
    }
  }
  return out;
}

}  // namespace agnn
