// SpMM — sparse matrix times tall dense matrix (Table 2) — and its
// semiring generalization (Section 4.3).
//
// This is the ⊕ aggregation of the global formulation: out = A ⊕ H.
// Row-parallel over the sparse matrix; each output row is owned by exactly
// one thread so no atomics are needed.
//
// Every kernel has an out-parameter overload `kernel(..., out)` that resizes
// `out` in place and overwrites every element — within capacity this
// performs no heap allocation, which is what the Workspace pool relies on.
// The by-value signatures are thin wrappers kept for tests and examples.
#pragma once

#include <vector>

#include "obs/obs_scope.hpp"
#include "tensor/autotune.hpp"
#include "tensor/blocked_ops.hpp"
#include "tensor/csr_matrix.hpp"
#include "tensor/dense_matrix.hpp"
#include "tensor/format.hpp"
#include "tensor/schedule.hpp"
#include "tensor/semiring.hpp"

namespace agnn {

// Generalized SpMM over an arbitrary semiring S.
//
// Under a non-row-parallel schedule the split rows of heavy hubs accumulate
// into per-piece partial Accums which a second phase merges (S::merge) in
// fixed piece order — deterministic across runs and thread counts. Unsplit
// rows run the same per-row loop as the legacy path, bitwise identical
// across all policies.
template <typename S, typename T>
void spmm_semiring(const CsrMatrix<T>& a, const DenseMatrix<T>& h,
                   DenseMatrix<T>& out, const KernelSchedule* sched = nullptr) {
  AGNN_KERNEL_SCOPE("spmm_semiring",
                    obs::spmm_traffic_bytes(
                        static_cast<std::uint64_t>(a.nnz()),
                        static_cast<std::uint64_t>(a.rows()),
                        static_cast<std::uint64_t>(h.cols()), sizeof(T),
                        sizeof(index_t)));
  AGNN_ASSERT(a.cols() == h.rows(), "spmm: dimension mismatch");
  const index_t n = a.rows(), k = h.cols();
  out.resize(n, k);
  std::shared_ptr<const KernelSchedule> owned;
  sched = detail::resolve_dispatch("spmm_semiring", a, k, TuneProxy::kSpmmLike,
                                   false, false, sched, owned)
              .sched;
  using Accum = typename S::Accum;
  if (sched->row_parallel()) {
#pragma omp parallel
    {
      Accum* acc = detail::schedule_arena<Accum, 1>(static_cast<std::size_t>(k));
#pragma omp for schedule(dynamic, 64)
      for (index_t i = 0; i < n; ++i) {
        std::fill(acc, acc + k, S::identity());
        for (index_t e = a.row_begin(i); e < a.row_end(i); ++e) {
          const index_t j = a.col_at(e);
          const T av = a.val_at(e);
          const T* hj = h.data() + j * k;
          for (index_t g = 0; g < k; ++g) S::accumulate(acc[g], av, hj[g]);
        }
        T* oi = out.data() + i * k;
        for (index_t g = 0; g < k; ++g) oi[g] = S::finalize(acc[g]);
      }
    }
    return;
  }
  const auto& cs = sched->chunks();
  const auto& srs = sched->split_rows();
  const index_t nc = static_cast<index_t>(cs.size());
  const index_t nsr = sched->num_split_rows();
  Accum* part = detail::schedule_arena<Accum>(
      static_cast<std::size_t>(sched->num_pieces()) * static_cast<std::size_t>(k));
#pragma omp parallel
  {
    Accum* acc = detail::schedule_arena<Accum, 1>(static_cast<std::size_t>(k));
#pragma omp for schedule(dynamic, 1)
    for (index_t ci = 0; ci < nc; ++ci) {
      const KernelSchedule::Chunk& c = cs[static_cast<std::size_t>(ci)];
      Accum* dst = c.piece >= 0 ? part + c.piece * k : acc;
      for (index_t i = c.row_begin; i < c.row_end; ++i) {
        const index_t b = std::max(a.row_begin(i), c.edge_begin);
        const index_t e = std::min(a.row_end(i), c.edge_end);
        std::fill(dst, dst + k, S::identity());
        for (index_t t = b; t < e; ++t) {
          const index_t j = a.col_at(t);
          const T av = a.val_at(t);
          const T* hj = h.data() + j * k;
          for (index_t g = 0; g < k; ++g) S::accumulate(dst[g], av, hj[g]);
        }
        if (c.piece < 0) {
          T* oi = out.data() + i * k;
          for (index_t g = 0; g < k; ++g) oi[g] = S::finalize(dst[g]);
        }
      }
    }
    // implicit barrier: every piece partial is complete before the merge
#pragma omp for schedule(static)
    for (index_t si = 0; si < nsr; ++si) {
      const KernelSchedule::SplitRow& sr = srs[static_cast<std::size_t>(si)];
      std::fill(acc, acc + k, S::identity());
      for (index_t p = sr.piece_begin; p < sr.piece_end; ++p) {
        const Accum* pp = part + p * k;
        for (index_t g = 0; g < k; ++g) S::merge(acc[g], pp[g]);
      }
      T* oi = out.data() + sr.row * k;
      for (index_t g = 0; g < k; ++g) oi[g] = S::finalize(acc[g]);
    }
  }
}

template <typename S, typename T>
DenseMatrix<T> spmm_semiring(const CsrMatrix<T>& a, const DenseMatrix<T>& h) {
  DenseMatrix<T> out;
  spmm_semiring<S>(a, h, out);
  return out;
}

namespace detail {

// Shared core of spmm / spmm_accumulate under a chunked schedule: whole-row
// chunks accumulate straight into `out` (zero-initialized first unless
// Accumulate), piece chunks accumulate into per-piece k-wide partials, and a
// second phase folds each split row's partials into its output row in fixed
// piece order.
template <bool Accumulate, typename T>
void spmm_chunked(const CsrMatrix<T>& a, const DenseMatrix<T>& h,
                  DenseMatrix<T>& out, const KernelSchedule& sched) {
  const index_t k = h.cols();
  const auto& cs = sched.chunks();
  const auto& srs = sched.split_rows();
  const index_t nc = static_cast<index_t>(cs.size());
  const index_t nsr = sched.num_split_rows();
  T* part = schedule_arena<T>(static_cast<std::size_t>(sched.num_pieces()) *
                              static_cast<std::size_t>(k));
#pragma omp parallel
  {
#pragma omp for schedule(dynamic, 1)
    for (index_t ci = 0; ci < nc; ++ci) {
      const KernelSchedule::Chunk& c = cs[static_cast<std::size_t>(ci)];
      for (index_t i = c.row_begin; i < c.row_end; ++i) {
        const index_t b = std::max(a.row_begin(i), c.edge_begin);
        const index_t e = std::min(a.row_end(i), c.edge_end);
        T* oi = c.piece >= 0 ? part + c.piece * k : out.data() + i * k;
        if (c.piece >= 0 || !Accumulate) {
          for (index_t g = 0; g < k; ++g) oi[g] = T(0);
        }
        for (index_t t = b; t < e; ++t) {
          const index_t j = a.col_at(t);
          const T av = a.val_at(t);
          const T* hj = h.data() + j * k;
          for (index_t g = 0; g < k; ++g) oi[g] += av * hj[g];
        }
      }
    }
    // implicit barrier: piece partials complete before the reduction
#pragma omp for schedule(static)
    for (index_t si = 0; si < nsr; ++si) {
      const KernelSchedule::SplitRow& sr = srs[static_cast<std::size_t>(si)];
      T* oi = out.data() + sr.row * k;
      if (!Accumulate) {
        for (index_t g = 0; g < k; ++g) oi[g] = T(0);
      }
      for (index_t p = sr.piece_begin; p < sr.piece_end; ++p) {
        const T* pp = part + p * k;
        for (index_t g = 0; g < k; ++g) oi[g] += pp[g];
      }
    }
  }
}

}  // namespace detail

// The standard real-semiring SpMM fast path: out = A * H.
template <typename T>
void spmm(const CsrMatrix<T>& a, const DenseMatrix<T>& h, DenseMatrix<T>& out,
          const KernelSchedule* sched = nullptr) {
  AGNN_KERNEL_SCOPE("spmm", obs::spmm_traffic_bytes(
                                static_cast<std::uint64_t>(a.nnz()),
                                static_cast<std::uint64_t>(a.rows()),
                                static_cast<std::uint64_t>(h.cols()),
                                sizeof(T), sizeof(index_t)));
  AGNN_ASSERT(a.cols() == h.rows(), "spmm: dimension mismatch");
  const index_t n = a.rows(), k = h.cols();
  // Format + schedule resolution (env pins, AGNN_FORMAT=auto precedence, or
  // the AGNN_TUNE tuner — autotune.hpp owns the rules). The blocked kernels
  // are bitwise-identical to the scalar loops below (blocked_ops.hpp), so
  // this is a pure speed knob. An explicit schedule is irrelevant on the
  // blocked paths — every output row is owned by exactly one chunk.
  std::shared_ptr<const KernelSchedule> owned;
  const detail::ResolvedDispatch rd = detail::resolve_dispatch(
      "spmm", a, k, TuneProxy::kSpmmLike, /*supports_sell=*/true,
      /*supports_bcsr=*/true, sched, owned);
  switch (rd.format) {
    case SparseFormat::kSell:
      sell_spmm(*sell_for(a), a.vals(), h, out);
      return;
    case SparseFormat::kBcsr:
      if (auto b = bcsr_for(a); b->valid()) {
        bcsr_spmm(*b, a.vals(), h, out);
        return;
      }
      break;  // unconvertible (duplicate/unsorted rows): scalar fallback
    default:
      break;
  }
  out.resize(n, k);
  sched = rd.sched;
  if (!sched->row_parallel()) {
    detail::spmm_chunked<false>(a, h, out, *sched);
    return;
  }
#pragma omp parallel for schedule(dynamic, 64)
  for (index_t i = 0; i < n; ++i) {
    T* oi = out.data() + i * k;
    for (index_t g = 0; g < k; ++g) oi[g] = T(0);
    for (index_t e = a.row_begin(i); e < a.row_end(i); ++e) {
      const index_t j = a.col_at(e);
      const T av = a.val_at(e);
      const T* hj = h.data() + j * k;
      for (index_t g = 0; g < k; ++g) oi[g] += av * hj[g];
    }
  }
}

template <typename T>
DenseMatrix<T> spmm(const CsrMatrix<T>& a, const DenseMatrix<T>& h) {
  DenseMatrix<T> out;
  spmm(a, h, out);
  return out;
}

// out += A * H (accumulating variant; the 1.5D distributed SpMM sums
// partial products from each grid column into the same output block).
template <typename T>
void spmm_accumulate(const CsrMatrix<T>& a, const DenseMatrix<T>& h,
                     DenseMatrix<T>& out, const KernelSchedule* sched = nullptr) {
  AGNN_KERNEL_SCOPE("spmm_accumulate",
                    obs::spmm_traffic_bytes(
                        static_cast<std::uint64_t>(a.nnz()),
                        static_cast<std::uint64_t>(a.rows()),
                        static_cast<std::uint64_t>(h.cols()), sizeof(T),
                        sizeof(index_t)));
  AGNN_ASSERT(a.cols() == h.rows(), "spmm_accumulate: dimension mismatch");
  AGNN_ASSERT(out.rows() == a.rows() && out.cols() == h.cols(),
              "spmm_accumulate: output shape mismatch");
  const index_t n = a.rows(), k = h.cols();
  std::shared_ptr<const KernelSchedule> owned;
  sched = detail::resolve_dispatch("spmm_accumulate", a, k,
                                   TuneProxy::kSpmmLike, false, false, sched,
                                   owned)
              .sched;
  if (!sched->row_parallel()) {
    detail::spmm_chunked<true>(a, h, out, *sched);
    return;
  }
#pragma omp parallel for schedule(dynamic, 64)
  for (index_t i = 0; i < n; ++i) {
    T* oi = out.data() + i * k;
    for (index_t e = a.row_begin(i); e < a.row_end(i); ++e) {
      const index_t j = a.col_at(e);
      const T av = a.val_at(e);
      const T* hj = h.data() + j * k;
      for (index_t g = 0; g < k; ++g) oi[g] += av * hj[g];
    }
  }
}

// Runtime-dispatched aggregation, the user-facing ⊕ of the generic model.
template <typename T>
void aggregate(const CsrMatrix<T>& a, const DenseMatrix<T>& h, Aggregation agg,
               DenseMatrix<T>& out, const KernelSchedule* sched = nullptr) {
  AGNN_ASSERT(a.cols() == h.rows(), "aggregate: dimension mismatch");
  switch (agg) {
    case Aggregation::kSum: spmm(a, h, out, sched); return;
    case Aggregation::kMin:
      spmm_semiring<MinPlusSemiring<T>>(a, h, out, sched);
      return;
    case Aggregation::kMax:
      spmm_semiring<MaxPlusSemiring<T>>(a, h, out, sched);
      return;
    case Aggregation::kMean:
      spmm_semiring<AverageSemiring<T>>(a, h, out, sched);
      return;
  }
  AGNN_ASSERT(false, "unknown aggregation");
}

template <typename T>
DenseMatrix<T> aggregate(const CsrMatrix<T>& a, const DenseMatrix<T>& h,
                         Aggregation agg) {
  DenseMatrix<T> out;
  aggregate(a, h, agg, out);
  return out;
}

// SpMMM — sparse x dense x dense (Table 2, new kernel identified by the
// paper). Computes A * H * W choosing the cheaper association order:
// (A*H)*W costs nnz*k_in + n*k_in*k_out, A*(H*W) costs n*k_in*k_out +
// nnz*k_out. This realizes the Phi ∘ ⊕ ordering freedom of Section 4.4.
// The out-parameter form also takes a scratch matrix for the intermediate
// product so a pooled caller stays allocation-free.
template <typename T>
void spmmm(const CsrMatrix<T>& a, const DenseMatrix<T>& h, const DenseMatrix<T>& w,
           DenseMatrix<T>& scratch, DenseMatrix<T>& out) {
  AGNN_KERNEL_SCOPE(
      "spmmm",
      obs::spmm_traffic_bytes(static_cast<std::uint64_t>(a.nnz()),
                              static_cast<std::uint64_t>(a.rows()),
                              static_cast<std::uint64_t>(h.cols()), sizeof(T),
                              sizeof(index_t)) +
          obs::gemm_traffic_bytes(static_cast<std::uint64_t>(a.rows()),
                                  static_cast<std::uint64_t>(w.rows()),
                                  static_cast<std::uint64_t>(w.cols()),
                                  sizeof(T)));
  // Checked up front so a mismatch names spmmm instead of surfacing from an
  // inner spmm/matmul with a misleading message.
  AGNN_ASSERT(a.cols() == h.rows(), "spmmm: A.cols must match H.rows");
  AGNN_ASSERT(h.cols() == w.rows(), "spmmm: H.cols must match W.rows");
  AGNN_ASSERT(&scratch != &out, "spmmm: scratch and out must be distinct");
  const double k_in = static_cast<double>(h.cols());
  const double k_out = static_cast<double>(w.cols());
  const double nnz = static_cast<double>(a.nnz());
  const double n = static_cast<double>(a.rows());
  const double cost_agg_first = nnz * k_in + n * k_in * k_out;
  const double cost_proj_first = n * k_in * k_out + nnz * k_out;
  if (cost_agg_first <= cost_proj_first) {
    spmm(a, h, scratch);
    matmul(scratch, w, out);
  } else {
    matmul(h, w, scratch);
    spmm(a, scratch, out);
  }
}

template <typename T>
DenseMatrix<T> spmmm(const CsrMatrix<T>& a, const DenseMatrix<T>& h,
                     const DenseMatrix<T>& w) {
  DenseMatrix<T> scratch, out;
  spmmm(a, h, w, scratch, out);
  return out;
}

// MSpMM — dense x sparse x dense (Table 2). Computes X^T * A * Y, the
// compute pattern of the backward-pass weight update Y = H^T Psi' G.
template <typename T>
void mspmm(const DenseMatrix<T>& x, const CsrMatrix<T>& a, const DenseMatrix<T>& y,
           DenseMatrix<T>& scratch, DenseMatrix<T>& out) {
  AGNN_KERNEL_SCOPE(
      "mspmm",
      obs::spmm_traffic_bytes(static_cast<std::uint64_t>(a.nnz()),
                              static_cast<std::uint64_t>(a.rows()),
                              static_cast<std::uint64_t>(y.cols()), sizeof(T),
                              sizeof(index_t)) +
          obs::gemm_traffic_bytes(static_cast<std::uint64_t>(x.cols()),
                                  static_cast<std::uint64_t>(x.rows()),
                                  static_cast<std::uint64_t>(y.cols()),
                                  sizeof(T)));
  AGNN_ASSERT(x.rows() == a.rows() && a.cols() == y.rows(),
              "mspmm: dimension mismatch");
  AGNN_ASSERT(&scratch != &out, "mspmm: scratch and out must be distinct");
  // (A * Y) is tall-skinny; X^T * (A*Y) reduces to a small k x k result.
  spmm(a, y, scratch);
  matmul_tn(x, scratch, out);
}

template <typename T>
DenseMatrix<T> mspmm(const DenseMatrix<T>& x, const CsrMatrix<T>& a,
                     const DenseMatrix<T>& y) {
  DenseMatrix<T> scratch, out;
  mspmm(x, a, y, scratch, out);
  return out;
}

}  // namespace agnn
