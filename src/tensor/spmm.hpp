// SpMM — sparse matrix times tall dense matrix (Table 2) — and its
// semiring generalization (Section 4.3).
//
// This is the ⊕ aggregation of the global formulation: out = A ⊕ H.
// Row-parallel over the sparse matrix; each output row is owned by exactly
// one thread so no atomics are needed.
#pragma once

#include <vector>

#include "tensor/csr_matrix.hpp"
#include "tensor/dense_matrix.hpp"
#include "tensor/semiring.hpp"

namespace agnn {

// Generalized SpMM over an arbitrary semiring S.
template <typename S, typename T>
DenseMatrix<T> spmm_semiring(const CsrMatrix<T>& a, const DenseMatrix<T>& h) {
  AGNN_ASSERT(a.cols() == h.rows(), "spmm: dimension mismatch");
  const index_t n = a.rows(), k = h.cols();
  DenseMatrix<T> out(n, k);
#pragma omp parallel
  {
    std::vector<typename S::Accum> acc(static_cast<std::size_t>(k));
#pragma omp for schedule(dynamic, 64)
    for (index_t i = 0; i < n; ++i) {
      std::fill(acc.begin(), acc.end(), S::identity());
      for (index_t e = a.row_begin(i); e < a.row_end(i); ++e) {
        const index_t j = a.col_at(e);
        const T av = a.val_at(e);
        const T* hj = h.data() + j * k;
        for (index_t g = 0; g < k; ++g) {
          S::accumulate(acc[static_cast<std::size_t>(g)], av, hj[g]);
        }
      }
      T* oi = out.data() + i * k;
      for (index_t g = 0; g < k; ++g) oi[g] = S::finalize(acc[static_cast<std::size_t>(g)]);
    }
  }
  return out;
}

// The standard real-semiring SpMM fast path: out = A * H.
template <typename T>
DenseMatrix<T> spmm(const CsrMatrix<T>& a, const DenseMatrix<T>& h) {
  AGNN_ASSERT(a.cols() == h.rows(), "spmm: dimension mismatch");
  const index_t n = a.rows(), k = h.cols();
  DenseMatrix<T> out(n, k, T(0));
#pragma omp parallel for schedule(dynamic, 64)
  for (index_t i = 0; i < n; ++i) {
    T* oi = out.data() + i * k;
    for (index_t e = a.row_begin(i); e < a.row_end(i); ++e) {
      const index_t j = a.col_at(e);
      const T av = a.val_at(e);
      const T* hj = h.data() + j * k;
      for (index_t g = 0; g < k; ++g) oi[g] += av * hj[g];
    }
  }
  return out;
}

// out += A * H (accumulating variant; the 1.5D distributed SpMM sums
// partial products from each grid column into the same output block).
template <typename T>
void spmm_accumulate(const CsrMatrix<T>& a, const DenseMatrix<T>& h,
                     DenseMatrix<T>& out) {
  AGNN_ASSERT(a.cols() == h.rows(), "spmm_accumulate: dimension mismatch");
  AGNN_ASSERT(out.rows() == a.rows() && out.cols() == h.cols(),
              "spmm_accumulate: output shape mismatch");
  const index_t n = a.rows(), k = h.cols();
#pragma omp parallel for schedule(dynamic, 64)
  for (index_t i = 0; i < n; ++i) {
    T* oi = out.data() + i * k;
    for (index_t e = a.row_begin(i); e < a.row_end(i); ++e) {
      const index_t j = a.col_at(e);
      const T av = a.val_at(e);
      const T* hj = h.data() + j * k;
      for (index_t g = 0; g < k; ++g) oi[g] += av * hj[g];
    }
  }
}

// Runtime-dispatched aggregation, the user-facing ⊕ of the generic model.
template <typename T>
DenseMatrix<T> aggregate(const CsrMatrix<T>& a, const DenseMatrix<T>& h,
                         Aggregation agg) {
  switch (agg) {
    case Aggregation::kSum: return spmm(a, h);
    case Aggregation::kMin: return spmm_semiring<MinPlusSemiring<T>>(a, h);
    case Aggregation::kMax: return spmm_semiring<MaxPlusSemiring<T>>(a, h);
    case Aggregation::kMean: return spmm_semiring<AverageSemiring<T>>(a, h);
  }
  AGNN_ASSERT(false, "unknown aggregation");
  return {};
}

// SpMMM — sparse x dense x dense (Table 2, new kernel identified by the
// paper). Computes A * H * W choosing the cheaper association order:
// (A*H)*W costs nnz*k_in + n*k_in*k_out, A*(H*W) costs n*k_in*k_out +
// nnz*k_out. This realizes the Phi ∘ ⊕ ordering freedom of Section 4.4.
template <typename T>
DenseMatrix<T> spmmm(const CsrMatrix<T>& a, const DenseMatrix<T>& h,
                     const DenseMatrix<T>& w) {
  const double k_in = static_cast<double>(h.cols());
  const double k_out = static_cast<double>(w.cols());
  const double nnz = static_cast<double>(a.nnz());
  const double n = static_cast<double>(a.rows());
  const double cost_agg_first = nnz * k_in + n * k_in * k_out;
  const double cost_proj_first = n * k_in * k_out + nnz * k_out;
  if (cost_agg_first <= cost_proj_first) {
    return matmul(spmm(a, h), w);
  }
  return spmm(a, matmul(h, w));
}

// MSpMM — dense x sparse x dense (Table 2). Computes X^T * A * Y, the
// compute pattern of the backward-pass weight update Y = H^T Psi' G.
template <typename T>
DenseMatrix<T> mspmm(const DenseMatrix<T>& x, const CsrMatrix<T>& a,
                     const DenseMatrix<T>& y) {
  AGNN_ASSERT(x.rows() == a.rows() && a.cols() == y.rows(),
              "mspmm: dimension mismatch");
  // (A * Y) is tall-skinny; X^T * (A*Y) reduces to a small k x k result.
  return matmul_tn(x, spmm(a, y));
}

}  // namespace agnn
