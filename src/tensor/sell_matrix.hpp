// SELL-C-σ: the SIMD-blocked sparse format of the format layer (DESIGN.md
// §13). Rows are grouped into chunks of C lanes; within each sorting window
// of σ rows (σ a multiple of C) lanes are ordered by descending row length so
// chunk widths — and therefore zero padding — stay small even on skewed
// degree distributions. Slots are laid out depth-major,
//
//   slot(c, j, lane) = chunk_ptr[c] + j * C + lane,
//
// so that at a fixed depth j the C lanes' columns/values are contiguous.
//
// Two properties the kernels in blocked_ops.hpp rely on:
//
//  * Losslessness. Every CSR entry (including duplicates and unsorted rows)
//    maps to exactly one slot, depth order within a lane preserves the
//    original intra-row order, and `src(slot)` records the originating CSR
//    nnz index. `to_csr()` reproduces the source matrix bit-for-bit.
//
//  * Value freshness. CsrMatrix values mutate in place (vals_mutable()) with
//    no invalidation hook — attention weights change every step — so the
//    cached conversion stored on CsrMatrix is pattern-only and kernels read
//    values through `src(slot)` from the live CSR value array. The packed
//    `vals()` copy is filled only by the explicit `from_csr` conversion and
//    exists for round-trip tests and standalone use.
#pragma once

#include <algorithm>
#include <numeric>
#include <span>
#include <vector>

#include "tensor/common.hpp"
#include "tensor/csr_matrix.hpp"

namespace agnn {

template <typename T>
class SellCSigmaMatrix {
 public:
  // C = 8 covers a 256-bit register of floats and two of doubles; σ = 128
  // keeps the sort window local enough that the lane→row permutation stays
  // cache-friendly while still absorbing power-law skew.
  static constexpr index_t kDefaultChunk = 8;
  static constexpr index_t kDefaultSigma = 128;

  SellCSigmaMatrix() = default;

  // Pattern + values conversion (lossless; see to_csr).
  static SellCSigmaMatrix from_csr(const CsrMatrix<T>& a,
                                   index_t chunk = kDefaultChunk,
                                   index_t sigma = kDefaultSigma) {
    SellCSigmaMatrix s = pattern_from_csr(a, chunk, sigma);
    s.vals_.assign(s.col_.size(), T{});
    const auto av = a.vals();
    for (std::size_t slot = 0; slot < s.src_.size(); ++slot) {
      if (s.src_[slot] >= 0) s.vals_[slot] = av[static_cast<std::size_t>(s.src_[slot])];
    }
    return s;
  }

  // Pattern-only conversion: everything except the packed value copy. This
  // is what CsrMatrix caches; kernels then read values via src() from the
  // live CSR value array so in-place value mutation never goes stale.
  static SellCSigmaMatrix pattern_from_csr(const CsrMatrix<T>& a,
                                           index_t chunk = kDefaultChunk,
                                           index_t sigma = kDefaultSigma) {
    AGNN_ASSERT(chunk > 0, "SellCSigmaMatrix: chunk C must be positive");
    AGNN_ASSERT(sigma > 0 && sigma % chunk == 0,
                "SellCSigmaMatrix: sigma must be a positive multiple of C");
    SellCSigmaMatrix s;
    s.n_rows_ = a.rows();
    s.n_cols_ = a.cols();
    s.nnz_ = a.nnz();
    s.chunk_ = chunk;
    s.sigma_ = sigma;
    const index_t n = s.n_rows_;
    const index_t n_chunks = (n + chunk - 1) / chunk;

    // σ-window sort: within each window of σ consecutive rows, order rows by
    // descending nnz (stable tie-break on row id for determinism).
    std::vector<index_t> order(static_cast<std::size_t>(n));
    std::iota(order.begin(), order.end(), index_t{0});
    for (index_t w = 0; w < n; w += sigma) {
      const index_t e = std::min<index_t>(w + sigma, n);
      std::stable_sort(order.begin() + w, order.begin() + e,
                       [&a](index_t x, index_t y) {
                         return a.row_nnz(x) > a.row_nnz(y);
                       });
    }

    // Lane bookkeeping: pad the last chunk with empty lanes (row -1, len 0)
    // so slot addressing is uniform.
    const std::size_t lanes = static_cast<std::size_t>(n_chunks * chunk);
    s.row_of_lane_.assign(lanes, index_t{-1});
    s.lane_len_.assign(lanes, index_t{0});
    for (index_t l = 0; l < n; ++l) {
      s.row_of_lane_[static_cast<std::size_t>(l)] = order[static_cast<std::size_t>(l)];
      s.lane_len_[static_cast<std::size_t>(l)] = a.row_nnz(order[static_cast<std::size_t>(l)]);
    }

    s.chunk_ptr_.assign(static_cast<std::size_t>(n_chunks) + 1, index_t{0});
    for (index_t c = 0; c < n_chunks; ++c) {
      index_t width = 0;
      for (index_t lane = 0; lane < chunk; ++lane)
        width = std::max(width, s.lane_len_[static_cast<std::size_t>(c * chunk + lane)]);
      s.chunk_ptr_[static_cast<std::size_t>(c) + 1] =
          s.chunk_ptr_[static_cast<std::size_t>(c)] + width * chunk;
    }

    const std::size_t slots = static_cast<std::size_t>(s.chunk_ptr_.back());
    s.col_.assign(slots, index_t{0});   // pad columns point at column 0 ...
    s.src_.assign(slots, index_t{-1});  // ... but src = -1 marks them dead.
    for (index_t c = 0; c < n_chunks; ++c) {
      const index_t base = s.chunk_ptr_[static_cast<std::size_t>(c)];
      for (index_t lane = 0; lane < chunk; ++lane) {
        const std::size_t gl = static_cast<std::size_t>(c * chunk + lane);
        const index_t row = s.row_of_lane_[gl];
        if (row < 0) continue;
        const index_t rb = a.row_begin(row);
        for (index_t j = 0; j < s.lane_len_[gl]; ++j) {
          const std::size_t slot = static_cast<std::size_t>(base + j * chunk + lane);
          s.col_[slot] = a.col_idx()[static_cast<std::size_t>(rb + j)];
          s.src_[slot] = rb + j;
        }
      }
    }
    return s;
  }

  // Exact inverse of from_csr: reproduces row_ptr/col_idx/vals bit-for-bit,
  // including duplicate entries and original intra-row order.
  CsrMatrix<T> to_csr() const {
    AGNN_ASSERT(!vals_.empty() || nnz_ == 0,
                "SellCSigmaMatrix::to_csr: pattern-only conversion has no values");
    std::vector<index_t> row_ptr(static_cast<std::size_t>(n_rows_) + 1, 0);
    std::vector<index_t> col_idx(static_cast<std::size_t>(nnz_));
    std::vector<T> vals(static_cast<std::size_t>(nnz_));
    for (std::size_t gl = 0; gl < row_of_lane_.size(); ++gl) {
      if (row_of_lane_[gl] >= 0)
        row_ptr[static_cast<std::size_t>(row_of_lane_[gl]) + 1] = lane_len_[gl];
    }
    for (std::size_t i = 1; i < row_ptr.size(); ++i) row_ptr[i] += row_ptr[i - 1];
    const index_t n_chunks = chunks();
    for (index_t c = 0; c < n_chunks; ++c) {
      const index_t base = chunk_ptr_[static_cast<std::size_t>(c)];
      for (index_t lane = 0; lane < chunk_; ++lane) {
        const std::size_t gl = static_cast<std::size_t>(c * chunk_ + lane);
        const index_t row = row_of_lane_[gl];
        if (row < 0) continue;
        const index_t rb = row_ptr[static_cast<std::size_t>(row)];
        for (index_t j = 0; j < lane_len_[gl]; ++j) {
          const std::size_t slot = static_cast<std::size_t>(base + j * chunk_ + lane);
          col_idx[static_cast<std::size_t>(rb + j)] = col_[slot];
          vals[static_cast<std::size_t>(rb + j)] = vals_[slot];
        }
      }
    }
    return CsrMatrix<T>(n_rows_, n_cols_, std::move(row_ptr), std::move(col_idx),
                        std::move(vals));
  }

  index_t rows() const { return n_rows_; }
  index_t cols() const { return n_cols_; }
  index_t nnz() const { return nnz_; }
  index_t chunk() const { return chunk_; }
  index_t sigma() const { return sigma_; }
  index_t chunks() const {
    return static_cast<index_t>(chunk_ptr_.size()) - 1;
  }
  // Total allocated slots, pads included; slots() - nnz() is the padding cost.
  index_t slots() const { return chunk_ptr_.empty() ? 0 : chunk_ptr_.back(); }

  std::span<const index_t> chunk_ptr() const { return chunk_ptr_; }
  std::span<const index_t> row_of_lane() const { return row_of_lane_; }
  std::span<const index_t> lane_len() const { return lane_len_; }
  std::span<const index_t> col() const { return col_; }
  std::span<const index_t> src() const { return src_; }
  std::span<const T> vals() const { return vals_; }

 private:
  index_t n_rows_ = 0;
  index_t n_cols_ = 0;
  index_t nnz_ = 0;
  index_t chunk_ = kDefaultChunk;
  index_t sigma_ = kDefaultSigma;
  std::vector<index_t> chunk_ptr_;    // per chunk: first slot offset
  std::vector<index_t> row_of_lane_;  // per lane: original row id (-1 = pad lane)
  std::vector<index_t> lane_len_;     // per lane: true row nnz
  std::vector<index_t> col_;          // per slot: column (0 for pads)
  std::vector<index_t> src_;          // per slot: CSR nnz index (-1 for pads)
  std::vector<T> vals_;               // per slot: packed values (explicit conv only)
};

}  // namespace agnn
