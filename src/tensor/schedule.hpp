// KernelSchedule: edge-balanced adaptive scheduling for the fused A-GNN
// kernels.
//
// Every sparse kernel in the project is row-parallel: each output row is
// owned by one thread, so no atomics are needed. On the power-law graphs the
// paper evaluates (Kronecker, MAKG — Section 8) that ownership rule is also
// the failure mode: a handful of hub rows hold a large fraction of the
// edges, and whichever thread draws a hub serializes the whole team while
// everyone else drains the tail. DF-GNN makes the same observation for GPU
// attention kernels and fixes it with balanced-by-edges work partitioning;
// this header is the CPU analogue.
//
// A KernelSchedule is computed once per sparsity pattern (and cached on the
// CsrMatrix) and decomposes the nnz into *chunks* of roughly equal edge
// count. A chunk is either a run of whole rows or a *piece* of one heavy row
// that was split. Pieces accumulate into per-piece partial buffers; a second
// phase combines the partials of each split row in fixed piece order, so the
// result is deterministic: bitwise reproducible run to run and across thread
// counts, because the chunk decomposition depends only on (row_ptr, policy,
// grain) — never on the team size. Rows that are not split go through
// exactly the same per-row arithmetic as the row-parallel path, so their
// outputs are bitwise identical across all three policies.
//
// Policies:
//   * RowParallel  — the legacy path: omp parallel for over rows,
//                    schedule(dynamic, 64). No chunks, no partials.
//   * EdgeBalanced — greedy partition of the nnz into chunks of <= grain
//                    edges; any row larger than the grain is split into
//                    near-equal pieces. Chunks stay in row order.
//   * HybridBinned — degree-aware: rows are binned by log2(degree); heavy
//                    rows (>= 2x grain) are split into near-equal pieces and
//                    issued first, largest degree first, so the long poles
//                    start before the tail; light rows are grouped whole
//                    (never split) into cache-friendly chunks in row order.
//   * Auto         — a cheap degree-skew heuristic picks one of the above.
//
// Env knobs (read per kernel invocation, so tests can flip them):
//   AGNN_SCHEDULE       = auto | row | edge | hybrid   (default auto)
//   AGNN_SCHEDULE_GRAIN = edges per chunk              (default 1024)
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#if defined(_OPENMP)
#include <omp.h>
#endif

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "tensor/common.hpp"
#include "tensor/csr_matrix.hpp"

namespace agnn {

enum class SchedulePolicy : int {
  kAuto = 0,
  kRowParallel,
  kEdgeBalanced,
  kHybridBinned,
};

inline const char* to_string(SchedulePolicy p) {
  switch (p) {
    case SchedulePolicy::kAuto: return "auto";
    case SchedulePolicy::kRowParallel: return "row_parallel";
    case SchedulePolicy::kEdgeBalanced: return "edge_balanced";
    case SchedulePolicy::kHybridBinned: return "hybrid_binned";
  }
  return "?";
}

// Accepts the short and long spellings; returns false on anything else.
inline bool parse_schedule_policy(std::string_view s, SchedulePolicy& out) {
  if (s == "auto" || s.empty()) {
    out = SchedulePolicy::kAuto;
  } else if (s == "row" || s == "row_parallel") {
    out = SchedulePolicy::kRowParallel;
  } else if (s == "edge" || s == "edge_balanced") {
    out = SchedulePolicy::kEdgeBalanced;
  } else if (s == "hybrid" || s == "hybrid_binned") {
    out = SchedulePolicy::kHybridBinned;
  } else {
    return false;
  }
  return true;
}

inline constexpr index_t kDefaultScheduleGrain = 1024;

inline SchedulePolicy schedule_policy_from_env() {
  const char* e = std::getenv("AGNN_SCHEDULE");
  if (e == nullptr) return SchedulePolicy::kAuto;
  SchedulePolicy p = SchedulePolicy::kAuto;
  if (!parse_schedule_policy(e, p)) return SchedulePolicy::kAuto;
  return p;
}

inline index_t schedule_grain_from_env() {
  const char* e = std::getenv("AGNN_SCHEDULE_GRAIN");
  if (e == nullptr || *e == '\0') return kDefaultScheduleGrain;
  char* end = nullptr;
  const long v = std::strtol(e, &end, 10);
  if (end == e || *end != '\0' || v <= 0) return kDefaultScheduleGrain;
  return static_cast<index_t>(v);
}

// Degree statistics + a log2 histogram, computed in the single stats pass
// over row_ptr. Bin b counts rows whose degree has bit width b: bin 0 holds
// the isolated vertices, bin 1 degree 1, bin 2 degrees 2-3, bin 3 degrees
// 4-7, and so on. The heuristic and the tests both read these.
inline constexpr std::size_t kScheduleDegreeBins = 65;

struct ScheduleStats {
  index_t rows = 0;
  index_t nnz = 0;
  index_t max_row_nnz = 0;
  double mean_row_nnz = 0.0;
  double skew = 0.0;  // max_row_nnz / mean_row_nnz (0 when there are no edges)
  std::array<index_t, kScheduleDegreeBins> bins{};
};

inline ScheduleStats compute_schedule_stats(std::span<const index_t> row_ptr) {
  ScheduleStats st;
  AGNN_ASSERT(!row_ptr.empty(), "schedule: row_ptr must have n+1 entries");
  st.rows = static_cast<index_t>(row_ptr.size()) - 1;
  st.nnz = row_ptr.back();
  for (index_t i = 0; i < st.rows; ++i) {
    const index_t d = row_ptr[static_cast<std::size_t>(i) + 1] -
                      row_ptr[static_cast<std::size_t>(i)];
    st.max_row_nnz = d > st.max_row_nnz ? d : st.max_row_nnz;
    st.bins[std::bit_width(static_cast<std::uint64_t>(d))]++;
  }
  if (st.rows > 0 && st.nnz > 0) {
    st.mean_row_nnz = static_cast<double>(st.nnz) / static_cast<double>(st.rows);
    st.skew = static_cast<double>(st.max_row_nnz) / st.mean_row_nnz;
  }
  return st;
}

// The Auto heuristic. Tiny graphs keep the legacy row-parallel path — the
// chunk machinery costs more than the imbalance it removes. A hub row big
// enough to dominate several whole chunks forces hybrid splitting; moderate
// skew without monster hubs gets the uniform edge partition; balanced
// degree distributions stay row-parallel.
inline constexpr index_t kScheduleAutoMinNnz = index_t(1) << 12;
inline constexpr double kScheduleAutoSkewThreshold = 8.0;

inline SchedulePolicy resolve_schedule_policy(const ScheduleStats& st,
                                              SchedulePolicy requested,
                                              index_t grain) {
  if (requested != SchedulePolicy::kAuto) return requested;
  if (st.nnz < kScheduleAutoMinNnz) return SchedulePolicy::kRowParallel;
  if (st.max_row_nnz >= 4 * grain) return SchedulePolicy::kHybridBinned;
  if (st.skew >= kScheduleAutoSkewThreshold) return SchedulePolicy::kEdgeBalanced;
  return SchedulePolicy::kRowParallel;
}

class KernelSchedule {
 public:
  // A unit of parallel work. Either a run of whole rows (piece == -1, the
  // edge range is exactly the rows' edges) or one piece of a split row
  // (row_end == row_begin + 1, the edge range is a subrange of that row,
  // piece indexes the partial-accumulator slot). Kernels can treat both
  // uniformly: iterate rows [row_begin, row_end) and clamp each row's edge
  // range to [edge_begin, edge_end).
  struct Chunk {
    index_t row_begin = 0;
    index_t row_end = 0;
    index_t edge_begin = 0;
    index_t edge_end = 0;
    index_t piece = -1;
  };

  // One piece of a split row, addressable directly for the phases that walk
  // pieces rather than chunks. `split` indexes split_rows().
  struct Piece {
    index_t row = 0;
    index_t edge_begin = 0;
    index_t edge_end = 0;
    index_t split = 0;
  };

  // A split row's pieces occupy the contiguous slot range
  // [piece_begin, piece_end) in ascending edge order — reductions that walk
  // this range in order are deterministic by construction.
  struct SplitRow {
    index_t row = 0;
    index_t piece_begin = 0;
    index_t piece_end = 0;
  };

  static KernelSchedule build(std::span<const index_t> row_ptr,
                              SchedulePolicy requested, index_t grain) {
    KernelSchedule s;
    s.requested_ = requested;
    s.grain_ = grain < 1 ? 1 : grain;
    s.stats_ = compute_schedule_stats(row_ptr);
    s.policy_ = resolve_schedule_policy(s.stats_, requested, s.grain_);
    switch (s.policy_) {
      case SchedulePolicy::kRowParallel:
        break;  // no chunks: kernels use their legacy row loop
      case SchedulePolicy::kEdgeBalanced:
        s.build_edge_balanced(row_ptr);
        break;
      case SchedulePolicy::kHybridBinned:
        s.build_hybrid_binned(row_ptr);
        break;
      case SchedulePolicy::kAuto:
        AGNN_ASSERT(false, "schedule: auto must resolve to a concrete policy");
    }
    return s;
  }

  SchedulePolicy requested() const { return requested_; }
  SchedulePolicy policy() const { return policy_; }
  index_t grain() const { return grain_; }
  bool row_parallel() const { return policy_ == SchedulePolicy::kRowParallel; }
  const ScheduleStats& stats() const { return stats_; }
  const std::vector<Chunk>& chunks() const { return chunks_; }
  const std::vector<Piece>& pieces() const { return pieces_; }
  const std::vector<SplitRow>& split_rows() const { return split_rows_; }
  index_t num_pieces() const { return static_cast<index_t>(pieces_.size()); }
  index_t num_split_rows() const {
    return static_cast<index_t>(split_rows_.size());
  }

 private:
  // Split row `r` into near-equal pieces of <= grain edges each and record
  // the chunks, pieces, and the SplitRow entry. Requires rn > grain.
  void split_row(index_t r, index_t b, index_t rn) {
    const index_t npieces = (rn + grain_ - 1) / grain_;
    const index_t base = rn / npieces;
    const index_t rem = rn % npieces;
    const index_t piece_begin = static_cast<index_t>(pieces_.size());
    index_t pos = b;
    for (index_t p = 0; p < npieces; ++p) {
      const index_t len = base + (p < rem ? 1 : 0);
      const index_t piece_id = static_cast<index_t>(pieces_.size());
      chunks_.push_back({r, r + 1, pos, pos + len, piece_id});
      pieces_.push_back({r, pos, pos + len,
                         static_cast<index_t>(split_rows_.size())});
      pos += len;
    }
    split_rows_.push_back({r, piece_begin,
                           static_cast<index_t>(pieces_.size())});
  }

  // Greedy uniform partition: accumulate whole rows until a chunk holds
  // >= grain edges; split any single row larger than the grain. Chunks stay
  // in row order. Every row lands in exactly one whole-row chunk or in its
  // pieces; trailing (and interior) empty rows extend the open chunk so
  // row-writing kernels still visit them.
  void build_edge_balanced(std::span<const index_t> row_ptr) {
    const index_t n = stats_.rows;
    index_t open_r0 = 0;  // first row of the open whole-rows chunk
    for (index_t r = 0; r < n; ++r) {
      const index_t b = row_ptr[static_cast<std::size_t>(r)];
      const index_t e = row_ptr[static_cast<std::size_t>(r) + 1];
      const index_t rn = e - b;
      if (rn > grain_) {
        if (open_r0 < r) {
          chunks_.push_back({open_r0, r, row_ptr[static_cast<std::size_t>(open_r0)], b, -1});
        }
        split_row(r, b, rn);
        open_r0 = r + 1;
        continue;
      }
      if (e - row_ptr[static_cast<std::size_t>(open_r0)] >= grain_) {
        chunks_.push_back({open_r0, r + 1, row_ptr[static_cast<std::size_t>(open_r0)], e, -1});
        open_r0 = r + 1;
      }
    }
    if (open_r0 < n) {
      chunks_.push_back({open_r0, n, row_ptr[static_cast<std::size_t>(open_r0)],
                         row_ptr[static_cast<std::size_t>(n)], -1});
    }
  }

  // Degree-binned variant: rows at least 2x the grain count as heavy and are
  // split into near-equal pieces, issued first in descending-degree order so
  // the longest poles start before the tail. Light rows are never split —
  // they are grouped whole, in row order, into chunks of roughly grain
  // edges, which keeps their feature-row accesses as cache-friendly as the
  // legacy path.
  void build_hybrid_binned(std::span<const index_t> row_ptr) {
    const index_t n = stats_.rows;
    const index_t heavy = 2 * grain_;
    std::vector<index_t> heavy_rows;
    for (index_t r = 0; r < n; ++r) {
      const index_t rn = row_ptr[static_cast<std::size_t>(r) + 1] -
                         row_ptr[static_cast<std::size_t>(r)];
      if (rn >= heavy) heavy_rows.push_back(r);
    }
    std::sort(heavy_rows.begin(), heavy_rows.end(),
              [&](index_t x, index_t y) {
                const index_t dx = row_ptr[static_cast<std::size_t>(x) + 1] -
                                   row_ptr[static_cast<std::size_t>(x)];
                const index_t dy = row_ptr[static_cast<std::size_t>(y) + 1] -
                                   row_ptr[static_cast<std::size_t>(y)];
                return dx != dy ? dx > dy : x < y;
              });
    for (const index_t r : heavy_rows) {
      const index_t b = row_ptr[static_cast<std::size_t>(r)];
      split_row(r, b, row_ptr[static_cast<std::size_t>(r) + 1] - b);
    }
    // Light rows: contiguous runs between heavy rows, grouped by edge count.
    index_t open_r0 = -1;
    index_t open_edges = 0;
    auto flush = [&](index_t r_end) {
      if (open_r0 >= 0 && open_r0 < r_end) {
        chunks_.push_back({open_r0, r_end,
                           row_ptr[static_cast<std::size_t>(open_r0)],
                           row_ptr[static_cast<std::size_t>(r_end)], -1});
      }
      open_r0 = -1;
      open_edges = 0;
    };
    for (index_t r = 0; r < n; ++r) {
      const index_t rn = row_ptr[static_cast<std::size_t>(r) + 1] -
                         row_ptr[static_cast<std::size_t>(r)];
      if (rn >= heavy) {
        flush(r);
        continue;
      }
      if (open_r0 < 0) open_r0 = r;
      open_edges += rn;
      if (open_edges >= grain_) flush(r + 1);
    }
    flush(n);
  }

  SchedulePolicy requested_ = SchedulePolicy::kAuto;
  SchedulePolicy policy_ = SchedulePolicy::kRowParallel;
  index_t grain_ = kDefaultScheduleGrain;
  ScheduleStats stats_;
  std::vector<Chunk> chunks_;
  std::vector<Piece> pieces_;
  std::vector<SplitRow> split_rows_;
};

namespace detail {

// Per-OS-thread reusable scratch for piece partials, per-row score buffers,
// and split-row stats. Grown to the high-water mark on first use and reused
// afterwards, so the steady state allocates nothing (the Workspace pool
// cannot serve these: core already links against tensor, and the pool is
// owned by the driving rank thread while these buffers live per OpenMP
// worker). Tag distinguishes arenas of the same element type that are live
// simultaneously inside one kernel.
template <typename U, int Tag = 0>
inline U* schedule_arena(std::size_t n) {
  thread_local std::vector<U> buf;
  if (buf.size() < n) buf.resize(n);
  return buf.data();
}

inline void schedule_built_mark(const KernelSchedule& s) {
  auto& reg = obs::MetricsRegistry::global();
  reg.counter("schedule.builds").add(1);
  switch (s.policy()) {
    case SchedulePolicy::kRowParallel:
      reg.counter("schedule.builds.row_parallel").add(1);
      break;
    case SchedulePolicy::kEdgeBalanced:
      reg.counter("schedule.builds.edge_balanced").add(1);
      break;
    case SchedulePolicy::kHybridBinned:
      reg.counter("schedule.builds.hybrid_binned").add(1);
      break;
    case SchedulePolicy::kAuto: break;
  }
  reg.gauge("schedule.last_chunks").set(static_cast<double>(s.chunks().size()));
  reg.gauge("schedule.last_split_rows")
      .set(static_cast<double>(s.num_split_rows()));
  if (obs::Tracer::enabled()) {
    // Instant-marker names must be string literals (the tracer stores the
    // pointer); one per policy, bytes carries the chunk count.
    const char* name = "schedule.row_parallel";
    if (s.policy() == SchedulePolicy::kEdgeBalanced) name = "schedule.edge_balanced";
    if (s.policy() == SchedulePolicy::kHybridBinned) name = "schedule.hybrid_binned";
    obs::Tracer::instance().instant(name, obs::SpanCategory::kKernel,
                                    static_cast<std::uint64_t>(s.chunks().size()), 0);
  }
}

}  // namespace detail

// The cached accessor used by every kernel when no explicit schedule is
// passed: returns the schedule cached on the CSR when it matches the
// requested (policy, grain), rebuilding and re-caching otherwise. One cache
// slot per requested policy, so the autotuner asking for different policies
// for different kernels on the same matrix never thrashes a rebuild. Safe to
// call from concurrent rank threads sharing one CsrMatrix — each cache slot
// is an atomic shared_ptr, and a lost race just builds the same schedule
// twice.
template <typename T>
std::shared_ptr<const KernelSchedule> schedule_for(const CsrMatrix<T>& a,
                                                   SchedulePolicy requested,
                                                   index_t grain) {
  const int slot = static_cast<int>(requested);
  auto cached = a.cached_schedule(slot);
  if (cached && cached->requested() == requested && cached->grain() == grain) {
    return cached;
  }
  auto built = std::make_shared<const KernelSchedule>(
      KernelSchedule::build(a.row_ptr(), requested, grain));
  detail::schedule_built_mark(*built);
  a.cache_schedule(built, slot);
  return built;
}

template <typename T>
std::shared_ptr<const KernelSchedule> schedule_for(const CsrMatrix<T>& a) {
  return schedule_for(a, schedule_policy_from_env(), schedule_grain_from_env());
}

namespace detail {

// Edge-parallel driver: visits every (row, edge-subrange) of `a` exactly
// once, in parallel. Kernels whose per-edge writes are independent (SDDMM,
// the Psi samplers, scale_rows_cols, ...) route through this — their output
// is bitwise identical under every policy because each v[e] is a pure
// function of e. `body(i, b, e)` receives a row and a clamped edge range.
template <typename T, typename Body>
inline void scheduled_rows(const KernelSchedule& sched, const CsrMatrix<T>& a,
                           Body&& body) {
  if (sched.row_parallel()) {
    const index_t n = a.rows();
#pragma omp parallel for schedule(dynamic, 64)
    for (index_t i = 0; i < n; ++i) {
      body(i, a.row_begin(i), a.row_end(i));
    }
    return;
  }
  const auto& cs = sched.chunks();
  const index_t nc = static_cast<index_t>(cs.size());
#pragma omp parallel for schedule(dynamic, 1)
  for (index_t ci = 0; ci < nc; ++ci) {
    const KernelSchedule::Chunk& c = cs[static_cast<std::size_t>(ci)];
    for (index_t i = c.row_begin; i < c.row_end; ++i) {
      const index_t b = std::max(a.row_begin(i), c.edge_begin);
      const index_t e = std::min(a.row_end(i), c.edge_end);
      body(i, b, e);
    }
  }
}

}  // namespace detail

}  // namespace agnn
