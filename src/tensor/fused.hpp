// Fused Psi kernels (Sections 6.1–6.2).
//
// Each model's attention matrix Psi(A, H) is, written naively, a dense
// n x n "virtual" matrix sampled by the adjacency structure. The fused
// kernels below iterate over the non-zeros of A and compute the sampled
// virtual values in place — the SDDMM-like kernels the paper's fusing pass
// generates from the execution DAG. Nothing of size n x n is ever stored.
//
// The *_unfused reference implementations (which do materialize the dense
// intermediate) live in reference_impls.hpp and exist only for tests and
// for the fusion-ablation benchmark.
//
// Every kernel has an out-parameter overload writing into caller-provided
// (typically Workspace-pooled) storage; by-value signatures are wrappers.
#pragma once

#include <cmath>
#include <limits>
#include <vector>

#include "obs/obs_scope.hpp"
#include "tensor/autotune.hpp"
#include "tensor/blocked_ops.hpp"
#include "tensor/csr_matrix.hpp"
#include "tensor/dense_matrix.hpp"
#include "tensor/dense_ops.hpp"
#include "tensor/format.hpp"
#include "tensor/sparse_ops.hpp"

namespace agnn {

// VA (vanilla attention):  Psi = A ⊙ (H H^T).
// One fused pass: Psi_ij = A_ij * <h_i, h_j>. This is exactly SDDMM with
// X = Y = H, fusing the Hadamard filter into the sampling.
template <typename T>
void psi_va(const CsrMatrix<T>& a, const DenseMatrix<T>& h, CsrMatrix<T>& out,
            const KernelSchedule* sched = nullptr) {
  AGNN_KERNEL_SCOPE("psi_va",
                    obs::sddmm_traffic_bytes(
                        static_cast<std::uint64_t>(a.nnz()),
                        static_cast<std::uint64_t>(a.rows()),
                        static_cast<std::uint64_t>(h.cols()), sizeof(T),
                        sizeof(index_t)));
  sddmm(a, h, h, out, sched);
}

template <typename T>
CsrMatrix<T> psi_va(const CsrMatrix<T>& a, const DenseMatrix<T>& h) {
  return sddmm(a, h, h);
}

// AGNN:  Psi = A ⊙ (H H^T ⊘ n n^T),  n_i = ||h_i||_2.
// The outer product n n^T stays virtual: the fused kernel divides each
// sampled dot product by n_i * n_j on the fly (cosine similarity per edge).
// An all-zero feature row makes n_i * n_j vanish; its dot products are then
// exactly zero too (Cauchy-Schwarz: |dot| <= n_i * n_j), so guarding the
// division on denom > 0 yields 0 for degenerate edges and leaves every
// non-degenerate edge's arithmetic untouched. (An earlier eps-clamp variant
// silently flattened edges whose norm product underflows below the smallest
// normal — subnormal-magnitude features — to ~0 while the unfused reference
// still recovered the cosine; found by the differential harness, pinned in
// DiffRegression.AgnnSubnormalNormProductKeepsCosine.)
template <typename T>
void psi_agnn(const CsrMatrix<T>& a, const DenseMatrix<T>& h,
              std::span<const T> norms, CsrMatrix<T>& out,
              const KernelSchedule* sched = nullptr) {
  AGNN_KERNEL_SCOPE("psi_agnn",
                    obs::sddmm_traffic_bytes(
                        static_cast<std::uint64_t>(a.nnz()),
                        static_cast<std::uint64_t>(a.rows()),
                        static_cast<std::uint64_t>(h.cols()), sizeof(T),
                        sizeof(index_t)) +
                        2 * static_cast<std::uint64_t>(a.nnz()) * sizeof(T));
  AGNN_ASSERT(a.rows() == h.rows() && a.cols() == h.rows(),
              "psi_agnn: A must be n x n matching H's rows");
  AGNN_ASSERT(static_cast<index_t>(norms.size()) == h.rows(), "psi_agnn: norms size");
  if (&out != &a) out = a;
  auto v = out.vals_mutable();
  const index_t k = h.cols();
  std::shared_ptr<const KernelSchedule> owned;
  sched = detail::resolve_tuned_schedule("psi_agnn", a, k,
                                         TuneProxy::kSddmmLike, sched, owned);
  detail::scheduled_rows(*sched, a, [&](index_t i, index_t b, index_t e) {
    const T* hi = h.data() + i * k;
    const T ni = norms[static_cast<std::size_t>(i)];
    for (index_t t = b; t < e; ++t) {
      const index_t j = a.col_at(t);
      const T* hj = h.data() + j * k;
      T dot = T(0);
      for (index_t g = 0; g < k; ++g) dot += hi[g] * hj[g];
      const T denom = ni * norms[static_cast<std::size_t>(j)];
      v[static_cast<std::size_t>(t)] = denom > T(0) ? a.val_at(t) * (dot / denom) : T(0);
    }
  });
}

template <typename T>
void psi_agnn(const CsrMatrix<T>& a, const DenseMatrix<T>& h, CsrMatrix<T>& out,
              const KernelSchedule* sched = nullptr) {
  const std::vector<T> norms = row_l2_norms(h);
  psi_agnn(a, h, std::span<const T>(norms), out, sched);
}

template <typename T>
CsrMatrix<T> psi_agnn(const CsrMatrix<T>& a, const DenseMatrix<T>& h) {
  CsrMatrix<T> out;
  psi_agnn(a, h, out);
  return out;
}

// GAT forward needs both the pre-activation scores C (for the LeakyReLU
// derivative in backward) and the softmax-normalized attention Psi.
template <typename T>
struct GatPsi {
  CsrMatrix<T> scores_pre;  // C_ij = s1_i + s2_j at the edges (pre-activation)
  CsrMatrix<T> psi;         // sm(A ⊙ LeakyReLU(C))
};

// GAT:  Psi = sm( A ⊙ LeakyReLU( s1 1^T + 1 s2^T ) ),
// where s1 = H' a1 and s2 = H' a2 (H' = H W, a = [a1; a2] — the split of
// the concatenation trick, Figure 2). The rank-1 virtual matrix
// s1 1^T + 1 s2^T is sampled at the edges; the softmax is the graph softmax
// of Section 4.2, fused into the same sparse pattern.
template <typename T>
void psi_gat(const CsrMatrix<T>& a, std::span<const T> s1, std::span<const T> s2,
             T leaky_slope, CsrMatrix<T>& scores_pre, CsrMatrix<T>& psi,
             const KernelSchedule* sched = nullptr) {
  AGNN_KERNEL_SCOPE("psi_gat",
                    2 * obs::csr_pass_bytes(
                            static_cast<std::uint64_t>(a.nnz()),
                            static_cast<std::uint64_t>(a.rows()), sizeof(T),
                            sizeof(index_t)) +
                        2 * static_cast<std::uint64_t>(a.nnz()) * sizeof(T));
  AGNN_ASSERT(static_cast<index_t>(s1.size()) == a.rows(), "psi_gat: s1 size");
  AGNN_ASSERT(static_cast<index_t>(s2.size()) == a.cols(), "psi_gat: s2 size");
  AGNN_ASSERT(&scores_pre != &psi, "psi_gat: outputs must be distinct");
  scores_pre = a;
  psi = a;
  auto pre = scores_pre.vals_mutable();
  auto act = psi.vals_mutable();
  std::shared_ptr<const KernelSchedule> owned;
  sched = detail::resolve_tuned_schedule("psi_gat", a, 1,
                                         TuneProxy::kRowPassLike, sched, owned);
  detail::scheduled_rows(*sched, a, [&](index_t i, index_t b, index_t e) {
    const T s1i = s1[static_cast<std::size_t>(i)];
    for (index_t t = b; t < e; ++t) {
      const T c = s1i + s2[static_cast<std::size_t>(a.col_at(t))];
      pre[static_cast<std::size_t>(t)] = c;
      const T lrelu = c > T(0) ? c : leaky_slope * c;
      act[static_cast<std::size_t>(t)] = a.val_at(t) * lrelu;
    }
  });
  // psi copies a's pattern, so a's schedule applies to the softmax too.
  row_softmax_inplace(psi, sched);
}

template <typename T>
void psi_gat(const CsrMatrix<T>& a, std::span<const T> s1, std::span<const T> s2,
             T leaky_slope, GatPsi<T>& out, const KernelSchedule* sched = nullptr) {
  psi_gat(a, s1, s2, leaky_slope, out.scores_pre, out.psi, sched);
}

template <typename T>
GatPsi<T> psi_gat(const CsrMatrix<T>& a, std::span<const T> s1,
                  std::span<const T> s2, T leaky_slope) {
  GatPsi<T> out;
  psi_gat(a, s1, s2, leaky_slope, out);
  return out;
}

// Fully fused VA layer aggregation: out = (A ⊙ H H^T) * X computed in a
// single pass over the non-zeros, never storing Psi. This is the deepest
// fusion the execution DAG admits for VA (SDDMM fused into the following
// SpMM) and is benchmarked against the two-kernel pipeline.
template <typename T>
void fused_va_aggregate(const CsrMatrix<T>& a, const DenseMatrix<T>& h,
                        const DenseMatrix<T>& x, DenseMatrix<T>& out,
                        const KernelSchedule* sched = nullptr) {
  AGNN_KERNEL_SCOPE("fused_va_aggregate",
                    obs::sddmm_traffic_bytes(
                        static_cast<std::uint64_t>(a.nnz()),
                        static_cast<std::uint64_t>(a.rows()),
                        static_cast<std::uint64_t>(h.cols()), sizeof(T),
                        sizeof(index_t)) +
                        (static_cast<std::uint64_t>(a.nnz()) +
                         static_cast<std::uint64_t>(a.rows())) *
                            static_cast<std::uint64_t>(x.cols()) * sizeof(T));
  AGNN_ASSERT(a.rows() == h.rows() && a.cols() == h.rows(), "fused_va: shape");
  AGNN_ASSERT(a.cols() == x.rows(), "fused_va: aggregation input shape");
  AGNN_ASSERT(&out != &h && &out != &x, "fused_va: output cannot alias an input");
  const index_t n = a.rows(), k = h.cols(), kx = x.cols();
  // Format + schedule resolution (autotune.hpp; bitwise-invisible, see
  // blocked_ops.hpp).
  std::shared_ptr<const KernelSchedule> owned;
  const detail::ResolvedDispatch rd = detail::resolve_dispatch(
      "fused_va_aggregate", a, kx, TuneProxy::kSpmmLike, /*supports_sell=*/true,
      /*supports_bcsr=*/false, sched, owned);
  if (rd.format == SparseFormat::kSell) {
    sell_fused_va_aggregate(*sell_for(a), a.vals(), h, x, out);
    return;
  }
  out.resize(n, kx);
  sched = rd.sched;
  if (sched->row_parallel()) {
#pragma omp parallel for schedule(dynamic, 64)
    for (index_t i = 0; i < n; ++i) {
      const T* hi = h.data() + i * k;
      T* oi = out.data() + i * kx;
      for (index_t g = 0; g < kx; ++g) oi[g] = T(0);
      for (index_t e = a.row_begin(i); e < a.row_end(i); ++e) {
        const index_t j = a.col_at(e);
        const T* hj = h.data() + j * k;
        T score = T(0);
        for (index_t g = 0; g < k; ++g) score += hi[g] * hj[g];
        score *= a.val_at(e);
        const T* xj = x.data() + j * kx;
        for (index_t g = 0; g < kx; ++g) oi[g] += score * xj[g];
      }
    }
    return;
  }
  // Chunked: like spmm, with the sampled score computed per edge. Pieces of
  // split rows accumulate kx-wide partials, reduced in fixed piece order.
  const auto& cs = sched->chunks();
  const auto& srs = sched->split_rows();
  const index_t nc = static_cast<index_t>(cs.size());
  const index_t nsr = sched->num_split_rows();
  T* part = detail::schedule_arena<T>(
      static_cast<std::size_t>(sched->num_pieces()) * static_cast<std::size_t>(kx));
#pragma omp parallel
  {
#pragma omp for schedule(dynamic, 1)
    for (index_t ci = 0; ci < nc; ++ci) {
      const KernelSchedule::Chunk& c = cs[static_cast<std::size_t>(ci)];
      for (index_t i = c.row_begin; i < c.row_end; ++i) {
        const index_t b = std::max(a.row_begin(i), c.edge_begin);
        const index_t e = std::min(a.row_end(i), c.edge_end);
        const T* hi = h.data() + i * k;
        T* oi = c.piece >= 0 ? part + c.piece * kx : out.data() + i * kx;
        for (index_t g = 0; g < kx; ++g) oi[g] = T(0);
        for (index_t t = b; t < e; ++t) {
          const index_t j = a.col_at(t);
          const T* hj = h.data() + j * k;
          T score = T(0);
          for (index_t g = 0; g < k; ++g) score += hi[g] * hj[g];
          score *= a.val_at(t);
          const T* xj = x.data() + j * kx;
          for (index_t g = 0; g < kx; ++g) oi[g] += score * xj[g];
        }
      }
    }
#pragma omp for schedule(static)
    for (index_t si = 0; si < nsr; ++si) {
      const KernelSchedule::SplitRow& sr = srs[static_cast<std::size_t>(si)];
      T* oi = out.data() + sr.row * kx;
      for (index_t g = 0; g < kx; ++g) oi[g] = T(0);
      for (index_t p = sr.piece_begin; p < sr.piece_end; ++p) {
        const T* pp = part + p * kx;
        for (index_t g = 0; g < kx; ++g) oi[g] += pp[g];
      }
    }
  }
}

template <typename T>
DenseMatrix<T> fused_va_aggregate(const CsrMatrix<T>& a, const DenseMatrix<T>& h,
                                  const DenseMatrix<T>& x) {
  DenseMatrix<T> out;
  fused_va_aggregate(a, h, x, out);
  return out;
}

// Fully fused GAT layer aggregation: out = sm(A ⊙ LeakyReLU(s1 1^T + 1 s2^T)) * X
// with per-row score buffers only (O(max row nnz) scratch per thread).
template <typename T>
void fused_gat_aggregate(const CsrMatrix<T>& a, std::span<const T> s1,
                         std::span<const T> s2, T leaky_slope,
                         const DenseMatrix<T>& x, DenseMatrix<T>& out,
                         const KernelSchedule* sched = nullptr) {
  AGNN_KERNEL_SCOPE("fused_gat_aggregate",
                    obs::csr_pass_bytes(static_cast<std::uint64_t>(a.nnz()),
                                        static_cast<std::uint64_t>(a.rows()),
                                        sizeof(T), sizeof(index_t)) +
                        2 * static_cast<std::uint64_t>(a.nnz()) * sizeof(T) +
                        (static_cast<std::uint64_t>(a.nnz()) +
                         static_cast<std::uint64_t>(a.rows())) *
                            static_cast<std::uint64_t>(x.cols()) * sizeof(T));
  AGNN_ASSERT(a.cols() == x.rows(), "fused_gat: aggregation input shape");
  AGNN_ASSERT(&out != &x, "fused_gat: output cannot alias an input");
  const index_t n = a.rows(), kx = x.cols();
  // Format + schedule resolution (autotune.hpp; bitwise-invisible, see
  // blocked_ops.hpp).
  std::shared_ptr<const KernelSchedule> owned;
  const detail::ResolvedDispatch rd = detail::resolve_dispatch(
      "fused_gat_aggregate", a, kx, TuneProxy::kSpmmLike,
      /*supports_sell=*/true, /*supports_bcsr=*/false, sched, owned);
  if (rd.format == SparseFormat::kSell) {
    sell_fused_gat_aggregate(*sell_for(a), a.vals(), s1, s2, leaky_slope, x, out);
    return;
  }
  out.resize(n, kx);
  out.fill(T(0));
  sched = rd.sched;
  // The per-row score buffer: rows in whole-row chunks are never larger than
  // the split threshold, so this stays small and is reused across calls.
  auto row_body = [&](index_t i, index_t b, index_t e) {
    if (b == e) return;
    T* scores = detail::schedule_arena<T, 1>(static_cast<std::size_t>(e - b));
    const T s1i = s1[static_cast<std::size_t>(i)];
    T mx = -std::numeric_limits<T>::infinity();
    for (index_t t = b; t < e; ++t) {
      const T c = s1i + s2[static_cast<std::size_t>(a.col_at(t))];
      const T lrelu = (c > T(0) ? c : leaky_slope * c) * a.val_at(t);
      scores[t - b] = lrelu;
      mx = std::max(mx, lrelu);
    }
    T sum = T(0);
    for (index_t t = b; t < e; ++t) {
      const T ex = std::exp(scores[t - b] - mx);
      scores[t - b] = ex;
      sum += ex;
    }
    const T inv = T(1) / sum;
    T* oi = out.data() + i * kx;
    for (index_t t = b; t < e; ++t) {
      const T w = scores[t - b] * inv;
      const T* xj = x.data() + a.col_at(t) * kx;
      for (index_t g = 0; g < kx; ++g) oi[g] += w * xj[g];
    }
  };
  if (sched->row_parallel()) {
#pragma omp parallel for schedule(dynamic, 64)
    for (index_t i = 0; i < n; ++i) row_body(i, a.row_begin(i), a.row_end(i));
    return;
  }
  // Chunked online softmax + aggregation, never materializing a split row's
  // full score vector. Whole rows run row_body unchanged (bitwise identical
  // to RowParallel). Split rows go in four phases:
  //   1. each piece computes (mx_p, sum_p = sum exp(s - mx_p)) from its
  //      recomputed scores;
  //   2. row max / denominator folded from the piece stats in piece order;
  //   3. each piece recomputes its scores and accumulates
  //      exp(s - mx) / denom * x_j into its kx-wide partial;
  //   4. partials fold into the output row in piece order.
  // Phase 2/4 fold orders are schedule-determined, so repeated runs and any
  // thread count reproduce bitwise.
  const auto& cs = sched->chunks();
  const auto& ps = sched->pieces();
  const auto& srs = sched->split_rows();
  const index_t nc = static_cast<index_t>(cs.size());
  const index_t np = sched->num_pieces();
  const index_t nsr = sched->num_split_rows();
  T* pstat = detail::schedule_arena<T, 2>(2 * static_cast<std::size_t>(np));
  T* rv = detail::schedule_arena<T, 3>(2 * static_cast<std::size_t>(nsr));
  T* part = detail::schedule_arena<T>(static_cast<std::size_t>(np) *
                                      static_cast<std::size_t>(kx));
#pragma omp parallel
  {
#pragma omp for schedule(dynamic, 1)
    for (index_t ci = 0; ci < nc; ++ci) {
      const KernelSchedule::Chunk& c = cs[static_cast<std::size_t>(ci)];
      if (c.piece >= 0) {
        const index_t i = c.row_begin;
        const T s1i = s1[static_cast<std::size_t>(i)];
        T mx = -std::numeric_limits<T>::infinity();
        for (index_t t = c.edge_begin; t < c.edge_end; ++t) {
          const T cc = s1i + s2[static_cast<std::size_t>(a.col_at(t))];
          const T lrelu = (cc > T(0) ? cc : leaky_slope * cc) * a.val_at(t);
          mx = std::max(mx, lrelu);
        }
        T sum = T(0);
        for (index_t t = c.edge_begin; t < c.edge_end; ++t) {
          const T cc = s1i + s2[static_cast<std::size_t>(a.col_at(t))];
          const T lrelu = (cc > T(0) ? cc : leaky_slope * cc) * a.val_at(t);
          sum += std::exp(lrelu - mx);
        }
        pstat[2 * c.piece] = mx;
        pstat[2 * c.piece + 1] = sum;
      } else {
        for (index_t i = c.row_begin; i < c.row_end; ++i) {
          row_body(i, a.row_begin(i), a.row_end(i));
        }
      }
    }
#pragma omp for schedule(static)
    for (index_t si = 0; si < nsr; ++si) {
      const KernelSchedule::SplitRow& sr = srs[static_cast<std::size_t>(si)];
      T mx = pstat[2 * sr.piece_begin];
      for (index_t p = sr.piece_begin + 1; p < sr.piece_end; ++p) {
        mx = std::max(mx, pstat[2 * p]);
      }
      T denom = T(0);
      for (index_t p = sr.piece_begin; p < sr.piece_end; ++p) {
        denom += pstat[2 * p + 1] * std::exp(pstat[2 * p] - mx);
      }
      rv[2 * si] = mx;
      rv[2 * si + 1] = T(1) / denom;
    }
#pragma omp for schedule(dynamic, 1)
    for (index_t pi = 0; pi < np; ++pi) {
      const KernelSchedule::Piece& p = ps[static_cast<std::size_t>(pi)];
      const T s1i = s1[static_cast<std::size_t>(p.row)];
      const T mx = rv[2 * p.split];
      const T inv = rv[2 * p.split + 1];
      T* pp = part + pi * kx;
      for (index_t g = 0; g < kx; ++g) pp[g] = T(0);
      for (index_t t = p.edge_begin; t < p.edge_end; ++t) {
        const T cc = s1i + s2[static_cast<std::size_t>(a.col_at(t))];
        const T lrelu = (cc > T(0) ? cc : leaky_slope * cc) * a.val_at(t);
        const T w = std::exp(lrelu - mx) * inv;
        const T* xj = x.data() + a.col_at(t) * kx;
        for (index_t g = 0; g < kx; ++g) pp[g] += w * xj[g];
      }
    }
#pragma omp for schedule(static)
    for (index_t si = 0; si < nsr; ++si) {
      const KernelSchedule::SplitRow& sr = srs[static_cast<std::size_t>(si)];
      T* oi = out.data() + sr.row * kx;
      for (index_t p = sr.piece_begin; p < sr.piece_end; ++p) {
        const T* pp = part + p * kx;
        for (index_t g = 0; g < kx; ++g) oi[g] += pp[g];
      }
    }
  }
}

template <typename T>
DenseMatrix<T> fused_gat_aggregate(const CsrMatrix<T>& a, std::span<const T> s1,
                                   std::span<const T> s2, T leaky_slope,
                                   const DenseMatrix<T>& x) {
  DenseMatrix<T> out;
  fused_gat_aggregate(a, s1, s2, leaky_slope, x, out);
  return out;
}

}  // namespace agnn
