// Fused Psi kernels (Sections 6.1–6.2).
//
// Each model's attention matrix Psi(A, H) is, written naively, a dense
// n x n "virtual" matrix sampled by the adjacency structure. The fused
// kernels below iterate over the non-zeros of A and compute the sampled
// virtual values in place — the SDDMM-like kernels the paper's fusing pass
// generates from the execution DAG. Nothing of size n x n is ever stored.
//
// The *_unfused reference implementations (which do materialize the dense
// intermediate) live in reference_impls.hpp and exist only for tests and
// for the fusion-ablation benchmark.
//
// Every kernel has an out-parameter overload writing into caller-provided
// (typically Workspace-pooled) storage; by-value signatures are wrappers.
#pragma once

#include <cmath>
#include <limits>
#include <vector>

#include "obs/trace.hpp"
#include "tensor/csr_matrix.hpp"
#include "tensor/dense_matrix.hpp"
#include "tensor/dense_ops.hpp"
#include "tensor/sparse_ops.hpp"

namespace agnn {

// VA (vanilla attention):  Psi = A ⊙ (H H^T).
// One fused pass: Psi_ij = A_ij * <h_i, h_j>. This is exactly SDDMM with
// X = Y = H, fusing the Hadamard filter into the sampling.
template <typename T>
void psi_va(const CsrMatrix<T>& a, const DenseMatrix<T>& h, CsrMatrix<T>& out) {
  AGNN_TRACE_SCOPE("psi_va", kKernel);
  sddmm(a, h, h, out);
}

template <typename T>
CsrMatrix<T> psi_va(const CsrMatrix<T>& a, const DenseMatrix<T>& h) {
  return sddmm(a, h, h);
}

// AGNN:  Psi = A ⊙ (H H^T ⊘ n n^T),  n_i = ||h_i||_2.
// The outer product n n^T stays virtual: the fused kernel divides each
// sampled dot product by n_i * n_j on the fly (cosine similarity per edge).
// An all-zero feature row makes n_i * n_j vanish; its dot products are then
// exactly zero too (Cauchy-Schwarz: |dot| <= n_i * n_j), so guarding the
// division on denom > 0 yields 0 for degenerate edges and leaves every
// non-degenerate edge's arithmetic untouched. (An earlier eps-clamp variant
// silently flattened edges whose norm product underflows below the smallest
// normal — subnormal-magnitude features — to ~0 while the unfused reference
// still recovered the cosine; found by the differential harness, pinned in
// DiffRegression.AgnnSubnormalNormProductKeepsCosine.)
template <typename T>
void psi_agnn(const CsrMatrix<T>& a, const DenseMatrix<T>& h,
              std::span<const T> norms, CsrMatrix<T>& out) {
  AGNN_TRACE_SCOPE("psi_agnn", kKernel);
  AGNN_ASSERT(a.rows() == h.rows() && a.cols() == h.rows(),
              "psi_agnn: A must be n x n matching H's rows");
  AGNN_ASSERT(static_cast<index_t>(norms.size()) == h.rows(), "psi_agnn: norms size");
  if (&out != &a) out = a;
  auto v = out.vals_mutable();
  const index_t k = h.cols();
#pragma omp parallel for schedule(dynamic, 64)
  for (index_t i = 0; i < a.rows(); ++i) {
    const T* hi = h.data() + i * k;
    const T ni = norms[static_cast<std::size_t>(i)];
    for (index_t e = a.row_begin(i); e < a.row_end(i); ++e) {
      const index_t j = a.col_at(e);
      const T* hj = h.data() + j * k;
      T dot = T(0);
      for (index_t g = 0; g < k; ++g) dot += hi[g] * hj[g];
      const T denom = ni * norms[static_cast<std::size_t>(j)];
      v[static_cast<std::size_t>(e)] = denom > T(0) ? a.val_at(e) * (dot / denom) : T(0);
    }
  }
}

template <typename T>
void psi_agnn(const CsrMatrix<T>& a, const DenseMatrix<T>& h, CsrMatrix<T>& out) {
  const std::vector<T> norms = row_l2_norms(h);
  psi_agnn(a, h, std::span<const T>(norms), out);
}

template <typename T>
CsrMatrix<T> psi_agnn(const CsrMatrix<T>& a, const DenseMatrix<T>& h) {
  CsrMatrix<T> out;
  psi_agnn(a, h, out);
  return out;
}

// GAT forward needs both the pre-activation scores C (for the LeakyReLU
// derivative in backward) and the softmax-normalized attention Psi.
template <typename T>
struct GatPsi {
  CsrMatrix<T> scores_pre;  // C_ij = s1_i + s2_j at the edges (pre-activation)
  CsrMatrix<T> psi;         // sm(A ⊙ LeakyReLU(C))
};

// GAT:  Psi = sm( A ⊙ LeakyReLU( s1 1^T + 1 s2^T ) ),
// where s1 = H' a1 and s2 = H' a2 (H' = H W, a = [a1; a2] — the split of
// the concatenation trick, Figure 2). The rank-1 virtual matrix
// s1 1^T + 1 s2^T is sampled at the edges; the softmax is the graph softmax
// of Section 4.2, fused into the same sparse pattern.
template <typename T>
void psi_gat(const CsrMatrix<T>& a, std::span<const T> s1, std::span<const T> s2,
             T leaky_slope, CsrMatrix<T>& scores_pre, CsrMatrix<T>& psi) {
  AGNN_TRACE_SCOPE("psi_gat", kKernel);
  AGNN_ASSERT(static_cast<index_t>(s1.size()) == a.rows(), "psi_gat: s1 size");
  AGNN_ASSERT(static_cast<index_t>(s2.size()) == a.cols(), "psi_gat: s2 size");
  AGNN_ASSERT(&scores_pre != &psi, "psi_gat: outputs must be distinct");
  scores_pre = a;
  psi = a;
  auto pre = scores_pre.vals_mutable();
  auto act = psi.vals_mutable();
#pragma omp parallel for schedule(dynamic, 64)
  for (index_t i = 0; i < a.rows(); ++i) {
    const T s1i = s1[static_cast<std::size_t>(i)];
    for (index_t e = a.row_begin(i); e < a.row_end(i); ++e) {
      const T c = s1i + s2[static_cast<std::size_t>(a.col_at(e))];
      pre[static_cast<std::size_t>(e)] = c;
      const T lrelu = c > T(0) ? c : leaky_slope * c;
      act[static_cast<std::size_t>(e)] = a.val_at(e) * lrelu;
    }
  }
  row_softmax_inplace(psi);
}

template <typename T>
void psi_gat(const CsrMatrix<T>& a, std::span<const T> s1, std::span<const T> s2,
             T leaky_slope, GatPsi<T>& out) {
  psi_gat(a, s1, s2, leaky_slope, out.scores_pre, out.psi);
}

template <typename T>
GatPsi<T> psi_gat(const CsrMatrix<T>& a, std::span<const T> s1,
                  std::span<const T> s2, T leaky_slope) {
  GatPsi<T> out;
  psi_gat(a, s1, s2, leaky_slope, out);
  return out;
}

// Fully fused VA layer aggregation: out = (A ⊙ H H^T) * X computed in a
// single pass over the non-zeros, never storing Psi. This is the deepest
// fusion the execution DAG admits for VA (SDDMM fused into the following
// SpMM) and is benchmarked against the two-kernel pipeline.
template <typename T>
void fused_va_aggregate(const CsrMatrix<T>& a, const DenseMatrix<T>& h,
                        const DenseMatrix<T>& x, DenseMatrix<T>& out) {
  AGNN_TRACE_SCOPE("fused_va_aggregate", kKernel);
  AGNN_ASSERT(a.rows() == h.rows() && a.cols() == h.rows(), "fused_va: shape");
  AGNN_ASSERT(a.cols() == x.rows(), "fused_va: aggregation input shape");
  AGNN_ASSERT(&out != &h && &out != &x, "fused_va: output cannot alias an input");
  const index_t n = a.rows(), k = h.cols(), kx = x.cols();
  out.resize(n, kx);
#pragma omp parallel for schedule(dynamic, 64)
  for (index_t i = 0; i < n; ++i) {
    const T* hi = h.data() + i * k;
    T* oi = out.data() + i * kx;
    for (index_t g = 0; g < kx; ++g) oi[g] = T(0);
    for (index_t e = a.row_begin(i); e < a.row_end(i); ++e) {
      const index_t j = a.col_at(e);
      const T* hj = h.data() + j * k;
      T score = T(0);
      for (index_t g = 0; g < k; ++g) score += hi[g] * hj[g];
      score *= a.val_at(e);
      const T* xj = x.data() + j * kx;
      for (index_t g = 0; g < kx; ++g) oi[g] += score * xj[g];
    }
  }
}

template <typename T>
DenseMatrix<T> fused_va_aggregate(const CsrMatrix<T>& a, const DenseMatrix<T>& h,
                                  const DenseMatrix<T>& x) {
  DenseMatrix<T> out;
  fused_va_aggregate(a, h, x, out);
  return out;
}

// Fully fused GAT layer aggregation: out = sm(A ⊙ LeakyReLU(s1 1^T + 1 s2^T)) * X
// with per-row score buffers only (O(max row nnz) scratch per thread).
template <typename T>
void fused_gat_aggregate(const CsrMatrix<T>& a, std::span<const T> s1,
                         std::span<const T> s2, T leaky_slope,
                         const DenseMatrix<T>& x, DenseMatrix<T>& out) {
  AGNN_TRACE_SCOPE("fused_gat_aggregate", kKernel);
  AGNN_ASSERT(a.cols() == x.rows(), "fused_gat: aggregation input shape");
  AGNN_ASSERT(&out != &x, "fused_gat: output cannot alias an input");
  const index_t n = a.rows(), kx = x.cols();
  out.resize(n, kx);
  out.fill(T(0));
#pragma omp parallel
  {
    std::vector<T> scores;
#pragma omp for schedule(dynamic, 64)
    for (index_t i = 0; i < n; ++i) {
      const index_t b = a.row_begin(i), e = a.row_end(i);
      if (b == e) continue;
      scores.resize(static_cast<std::size_t>(e - b));
      const T s1i = s1[static_cast<std::size_t>(i)];
      T mx = -std::numeric_limits<T>::infinity();
      for (index_t t = b; t < e; ++t) {
        const T c = s1i + s2[static_cast<std::size_t>(a.col_at(t))];
        const T lrelu = (c > T(0) ? c : leaky_slope * c) * a.val_at(t);
        scores[static_cast<std::size_t>(t - b)] = lrelu;
        mx = std::max(mx, lrelu);
      }
      T sum = T(0);
      for (auto& s : scores) {
        s = std::exp(s - mx);
        sum += s;
      }
      const T inv = T(1) / sum;
      T* oi = out.data() + i * kx;
      for (index_t t = b; t < e; ++t) {
        const T w = scores[static_cast<std::size_t>(t - b)] * inv;
        const T* xj = x.data() + a.col_at(t) * kx;
        for (index_t g = 0; g < kx; ++g) oi[g] += w * xj[g];
      }
    }
  }
}

template <typename T>
DenseMatrix<T> fused_gat_aggregate(const CsrMatrix<T>& a, std::span<const T> s1,
                                   std::span<const T> s2, T leaky_slope,
                                   const DenseMatrix<T>& x) {
  DenseMatrix<T> out;
  fused_gat_aggregate(a, s1, s2, leaky_slope, x, out);
  return out;
}

}  // namespace agnn
