// Common utilities shared by the tensor-algebra layer.
//
// The whole tensor layer is header-only and templated on the scalar type,
// so both float (the paper's evaluation precision) and double (used by the
// finite-difference gradient checks) instantiations come from the same code.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace agnn {

using index_t = std::int64_t;

// AGNN_ASSERT: checked in all build types. Tensor-shape mismatches are
// programming errors that must never be silently optimized away; the cost of
// the branch is negligible next to the kernels it guards.
#define AGNN_ASSERT(cond, msg)                                             \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::agnn::detail::assert_fail(#cond, (msg), __FILE__, __LINE__);       \
    }                                                                      \
  } while (false)

namespace detail {

[[noreturn]] inline void assert_fail(const char* cond, const std::string& msg,
                                     const char* file, int line) {
  std::string what = std::string("AGNN assertion failed: ") + cond + " (" +
                     msg + ") at " + file + ":" + std::to_string(line);
  throw std::logic_error(what);
}

}  // namespace detail

// A small, fast, reproducible PRNG (xoshiro256**). Used everywhere instead
// of std::mt19937_64: it is an order of magnitude faster, which matters for
// the in-memory graph generators, and its output is identical across
// platforms so tests and benchmarks are deterministic.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t z = seed;
    for (auto& s : s_) {
      z += 0x9e3779b97f4a7c15ULL;
      std::uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
      s = x ^ (x >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  // Uniform in [0, bound). `bound` must be positive (modulo by zero is UB).
  std::uint64_t next_bounded(std::uint64_t bound) {
    AGNN_ASSERT(bound > 0, "next_bounded: bound must be positive");
    // Lemire's nearly-divisionless method is overkill here; modulo bias is
    // below 2^-40 for every bound used in this project.
    return next_u64() % bound;
  }

  // Uniform in [lo, hi).
  double next_uniform(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

}  // namespace agnn
