// DenseMatrix<T>: a row-major dense matrix.
//
// This is the "tall dense matrix" of the paper (Table 1): feature matrices
// H (n x k), gradients G (n x k), and the small square parameter matrices
// W (k x k). Row-major storage keeps each vertex's feature vector
// contiguous, which is what every kernel in this project iterates over.
#pragma once

#include <algorithm>
#include <cmath>
#include <span>
#include <utility>
#include <vector>

#include "tensor/common.hpp"

namespace agnn {

template <typename T>
class DenseMatrix {
 public:
  using value_type = T;

  DenseMatrix() = default;

  DenseMatrix(index_t rows, index_t cols, T init = T(0))
      : rows_(rows), cols_(cols), data_(static_cast<std::size_t>(rows * cols), init) {
    AGNN_ASSERT(rows >= 0 && cols >= 0, "matrix dimensions must be non-negative");
  }

  DenseMatrix(index_t rows, index_t cols, std::vector<T> data)
      : rows_(rows), cols_(cols), data_(std::move(data)) {
    AGNN_ASSERT(static_cast<index_t>(data_.size()) == rows * cols,
                "data size must equal rows*cols");
  }

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t size() const { return rows_ * cols_; }
  bool empty() const { return data_.empty(); }

  // Element capacity of the backing storage. A matrix resized within its
  // capacity performs no heap allocation — the contract the Workspace buffer
  // pool is built on.
  index_t capacity() const { return static_cast<index_t>(data_.capacity()); }

  void reserve(index_t elems) { data_.reserve(static_cast<std::size_t>(elems)); }

  // Reshape in place, reusing the backing storage. Contents after a resize
  // are unspecified (old values are retained where sizes overlap); callers
  // are expected to overwrite every element — this is the entry point of the
  // out-parameter kernel overloads.
  void resize(index_t rows, index_t cols) {
    AGNN_ASSERT(rows >= 0 && cols >= 0, "matrix dimensions must be non-negative");
    rows_ = rows;
    cols_ = cols;
    data_.resize(static_cast<std::size_t>(rows * cols));
  }

  T& operator()(index_t i, index_t j) {
    AGNN_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_, "index out of range");
    return data_[static_cast<std::size_t>(i * cols_ + j)];
  }
  const T& operator()(index_t i, index_t j) const {
    AGNN_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_, "index out of range");
    return data_[static_cast<std::size_t>(i * cols_ + j)];
  }

  std::span<T> row(index_t i) {
    AGNN_ASSERT(i >= 0 && i < rows_, "row index out of range");
    return {data_.data() + i * cols_, static_cast<std::size_t>(cols_)};
  }
  std::span<const T> row(index_t i) const {
    AGNN_ASSERT(i >= 0 && i < rows_, "row index out of range");
    return {data_.data() + i * cols_, static_cast<std::size_t>(cols_)};
  }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }
  std::span<T> flat() { return {data_.data(), data_.size()}; }
  std::span<const T> flat() const { return {data_.data(), data_.size()}; }

  void fill(T v) { std::fill(data_.begin(), data_.end(), v); }

  void set_zero() { fill(T(0)); }

  // Glorot/Xavier-uniform initialization, the standard GNN weight init.
  void fill_glorot(Rng& rng) {
    const double limit = std::sqrt(6.0 / static_cast<double>(rows_ + cols_));
    for (auto& v : data_) v = static_cast<T>(rng.next_uniform(-limit, limit));
  }

  void fill_uniform(Rng& rng, double lo, double hi) {
    for (auto& v : data_) v = static_cast<T>(rng.next_uniform(lo, hi));
  }

  bool same_shape(const DenseMatrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  // Extract rows [begin, end) as a new matrix (used by the block
  // distribution layer to slice feature matrices).
  DenseMatrix slice_rows(index_t begin, index_t end) const {
    AGNN_ASSERT(begin >= 0 && begin <= end && end <= rows_, "bad row slice");
    DenseMatrix out(end - begin, cols_);
    std::copy(data_.begin() + begin * cols_, data_.begin() + end * cols_,
              out.data_.begin());
    return out;
  }

  // Write `block` into rows [begin, begin + block.rows()).
  void set_rows(index_t begin, const DenseMatrix& block) {
    AGNN_ASSERT(block.cols() == cols_, "column mismatch in set_rows");
    AGNN_ASSERT(begin >= 0 && begin + block.rows() <= rows_, "row range out of bounds");
    std::copy(block.data_.begin(), block.data_.end(),
              data_.begin() + begin * cols_);
  }

  template <typename U>
  DenseMatrix<U> cast() const {
    DenseMatrix<U> out(rows_, cols_);
    for (index_t i = 0; i < size(); ++i) out.data()[i] = static_cast<U>(data_[i]);
    return out;
  }

  friend bool operator==(const DenseMatrix& a, const DenseMatrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<T> data_;
};

}  // namespace agnn
