// Sparse-format selection (DESIGN.md §13): the AGNN_FORMAT knob, the cached
// CSR→blocked conversions, and the dispatch predicate the CSR-facing kernels
// (spmm, sddmm, fused_*_aggregate) consult before falling back to their
// scalar loops.
//
// Mirrors the KernelSchedule machinery one file over: parse + env read, a
// lazily-built conversion cached on the CsrMatrix behind an atomic
// shared_ptr (safe for concurrent rank threads; a lost race builds the same
// conversion twice), and metrics marks on every build. The dispatch is
// result-invisible by construction — the blocked kernels are
// bitwise-identical to the scalar CSR ones (blocked_ops.hpp) — so changing
// AGNN_FORMAT can never change a model's output, only its speed; the format
// axis of the equivalence sweep and the differential formats suite enforce
// exactly that.
//
// Default is kCsr: the blocked paths are opt-in via AGNN_FORMAT=sell / bcsr
// / auto, keeping the seed behavior (and every pinned golden) byte-stable by
// default.
#pragma once

#include <cstdlib>
#include <memory>
#include <string_view>

#include "obs/metrics.hpp"
#include "tensor/bcsr_matrix.hpp"
#include "tensor/csr_matrix.hpp"
#include "tensor/sell_matrix.hpp"

namespace agnn {

enum class SparseFormat {
  kCsr,   // scalar CSR loops (the seed behavior; default)
  kSell,  // SELL-C-σ, SIMD-blocked (blocked_ops.hpp)
  kBcsr,  // BCSR register blocks; falls back to CSR where unconvertible
  kAuto,  // kSell above a size threshold, kCsr below it
};

inline const char* to_string(SparseFormat f) {
  switch (f) {
    case SparseFormat::kCsr: return "csr";
    case SparseFormat::kSell: return "sell";
    case SparseFormat::kBcsr: return "bcsr";
    case SparseFormat::kAuto: return "auto";
  }
  return "?";
}

// Accepted spellings for AGNN_FORMAT and the bench/CLI flags. Returns false
// (and leaves `out` untouched) for anything else.
inline bool parse_sparse_format(std::string_view s, SparseFormat& out) {
  if (s == "csr" || s.empty()) {
    out = SparseFormat::kCsr;
  } else if (s == "sell" || s == "sell-c-sigma") {
    out = SparseFormat::kSell;
  } else if (s == "bcsr") {
    out = SparseFormat::kBcsr;
  } else if (s == "auto") {
    out = SparseFormat::kAuto;
  } else {
    return false;
  }
  return true;
}

inline SparseFormat sparse_format_from_env() {
  const char* e = std::getenv("AGNN_FORMAT");
  if (e == nullptr) return SparseFormat::kCsr;
  SparseFormat f = SparseFormat::kCsr;
  if (!parse_sparse_format(e, f)) return SparseFormat::kCsr;
  return f;
}

// Below this the conversion bookkeeping outweighs any SIMD win; kAuto stays
// on the scalar path (which also keeps unit-test-sized graphs on the seed
// code unless a format is forced explicitly).
inline constexpr index_t kFormatAutoMinNnz = 1 << 14;

// Cached pattern-only conversions. Like schedule_for: pure functions of the
// sparsity pattern, so copies share them and in-place pattern rebuilds
// (transposed_into) invalidate them; value mutation needs no invalidation
// because the cached objects carry no values.
template <typename T>
std::shared_ptr<const SellCSigmaMatrix<T>> sell_for(const CsrMatrix<T>& a) {
  auto cached = a.cached_sell();
  if (cached) return cached;
  auto built = std::make_shared<const SellCSigmaMatrix<T>>(
      SellCSigmaMatrix<T>::pattern_from_csr(a));
  auto& reg = obs::MetricsRegistry::global();
  reg.counter("format.builds.sell").add(1);
  reg.gauge("format.last_sell_pad_ratio")
      .set(built->nnz() > 0
               ? static_cast<double>(built->slots()) / static_cast<double>(built->nnz())
               : 1.0);
  a.cache_sell(built);
  return built;
}

template <typename T>
std::shared_ptr<const BcsrMatrix<T>> bcsr_for(const CsrMatrix<T>& a) {
  auto cached = a.cached_bcsr();
  if (cached) return cached;
  auto built = std::make_shared<const BcsrMatrix<T>>(
      BcsrMatrix<T>::pattern_from_csr(a));
  auto& reg = obs::MetricsRegistry::global();
  reg.counter(built->valid() ? "format.builds.bcsr" : "format.builds.bcsr_rejected")
      .add(1);
  if (built->valid() && built->nnz() > 0) {
    reg.gauge("format.last_bcsr_fill_ratio")
        .set(static_cast<double>(built->slots()) / static_cast<double>(built->nnz()));
  }
  a.cache_bcsr(built);
  return built;
}

namespace detail {

// The per-call dispatch decision for a CSR-facing kernel: resolves the env
// knob (and kAuto's size threshold) to a concrete format. Degenerate
// matrices stay on the scalar path — there is nothing to block.
template <typename T>
inline SparseFormat dispatch_format(const CsrMatrix<T>& a) {
  SparseFormat f = sparse_format_from_env();
  if (f == SparseFormat::kAuto) {
    f = a.nnz() >= kFormatAutoMinNnz ? SparseFormat::kSell : SparseFormat::kCsr;
  }
  if (f != SparseFormat::kCsr && (a.rows() == 0 || a.nnz() == 0)) {
    f = SparseFormat::kCsr;
  }
  return f;
}

}  // namespace detail

}  // namespace agnn
