// CooMatrix<T>: coordinate-format sparse matrix.
//
// COO is the interchange format: the graph generators emit COO edge lists,
// the file I/O layer reads/writes COO (mirroring the paper artifact's .npz
// COO path), and CsrMatrix is constructed from it. Kernels never run on COO.
#pragma once

#include <algorithm>
#include <numeric>
#include <tuple>
#include <vector>

#include "tensor/common.hpp"

namespace agnn {

template <typename T>
struct CooMatrix {
  index_t n_rows = 0;
  index_t n_cols = 0;
  std::vector<index_t> rows;
  std::vector<index_t> cols;
  std::vector<T> vals;

  index_t nnz() const { return static_cast<index_t>(rows.size()); }

  void reserve(std::size_t n) {
    rows.reserve(n);
    cols.reserve(n);
    vals.reserve(n);
  }

  void push_back(index_t r, index_t c, T v) {
    rows.push_back(r);
    cols.push_back(c);
    vals.push_back(v);
  }

  // Sort entries into row-major order. Stable with respect to duplicate
  // coordinates so that dedup policies are well-defined.
  void sort() {
    std::vector<index_t> perm(rows.size());
    std::iota(perm.begin(), perm.end(), index_t(0));
    std::stable_sort(perm.begin(), perm.end(), [&](index_t a, index_t b) {
      return std::tie(rows[static_cast<std::size_t>(a)], cols[static_cast<std::size_t>(a)]) <
             std::tie(rows[static_cast<std::size_t>(b)], cols[static_cast<std::size_t>(b)]);
    });
    apply_permutation(perm);
  }

  // Remove duplicate coordinates, summing their values (the standard
  // convention, also what scipy's coo->csr conversion does). Requires no
  // pre-sorting; sorts internally.
  void sum_duplicates() {
    sort();
    std::size_t out = 0;
    for (std::size_t in = 0; in < rows.size(); ++in) {
      if (out > 0 && rows[in] == rows[out - 1] && cols[in] == cols[out - 1]) {
        vals[out - 1] += vals[in];
      } else {
        rows[out] = rows[in];
        cols[out] = cols[in];
        vals[out] = vals[in];
        ++out;
      }
    }
    rows.resize(out);
    cols.resize(out);
    vals.resize(out);
  }

  // Remove duplicates keeping a single entry with value `keep` (used for
  // 0/1 adjacency matrices where duplicate edges must not accumulate).
  void dedup_binary(T keep = T(1)) {
    sum_duplicates();
    for (auto& v : vals) v = keep;
  }

  void remove_self_loops() {
    std::size_t out = 0;
    for (std::size_t in = 0; in < rows.size(); ++in) {
      if (rows[in] != cols[in]) {
        rows[out] = rows[in];
        cols[out] = cols[in];
        vals[out] = vals[in];
        ++out;
      }
    }
    rows.resize(out);
    cols.resize(out);
    vals.resize(out);
  }

  CooMatrix transposed() const {
    CooMatrix t;
    t.n_rows = n_cols;
    t.n_cols = n_rows;
    t.rows = cols;
    t.cols = rows;
    t.vals = vals;
    return t;
  }

 private:
  void apply_permutation(const std::vector<index_t>& perm) {
    std::vector<index_t> r2(rows.size()), c2(cols.size());
    std::vector<T> v2(vals.size());
    for (std::size_t i = 0; i < perm.size(); ++i) {
      const auto p = static_cast<std::size_t>(perm[i]);
      r2[i] = rows[p];
      c2[i] = cols[p];
      v2[i] = vals[p];
    }
    rows = std::move(r2);
    cols = std::move(c2);
    vals = std::move(v2);
  }
};

}  // namespace agnn
