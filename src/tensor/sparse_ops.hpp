// Sparse building blocks: SDDMM, Hadamard ops on a shared sparsity pattern,
// the global graph-softmax of Section 4.2, and row/column reductions.
//
// Everything here operates on the non-zeros of a CSR pattern only — the
// dense n x n matrices of the formulations stay virtual (Section 6.1).
//
// Every kernel has an out-parameter overload that rebuilds `out` in place;
// within capacity (vector copy-assignment reuses storage) this allocates
// nothing, which is what the Workspace pool relies on. Out-parameters may
// alias the sparse inputs unless noted — the value loops read each element
// before writing it.
#pragma once

#include <cmath>
#include <vector>

#if defined(_OPENMP)
#include <omp.h>
#endif

#include "obs/obs_scope.hpp"
#include "tensor/autotune.hpp"
#include "tensor/blocked_ops.hpp"
#include "tensor/csr_matrix.hpp"
#include "tensor/dense_matrix.hpp"
#include "tensor/dense_ops.hpp"
#include "tensor/format.hpp"
#include "tensor/schedule.hpp"

namespace agnn {

namespace detail {

// Resolve an optional explicit schedule against the env-driven cached one.
// Kernels hold the returned shared_ptr alive for the duration of the call.
template <typename T>
inline const KernelSchedule* resolve_schedule(
    const CsrMatrix<T>& a, const KernelSchedule* sched,
    std::shared_ptr<const KernelSchedule>& owned) {
  if (sched != nullptr) return sched;
  owned = schedule_for(a);
  return owned.get();
}

}  // namespace detail

// SDDMM (Table 2): out has the sparsity pattern of `pattern` and values
//   out(i,j) = pattern(i,j) * <x_i, y_j>
// i.e. the dense product X Y^T sampled at the non-zeros, scaled by the
// sampling matrix's own values (the Hadamard with A in the formulations).
template <typename T>
void sddmm(const CsrMatrix<T>& pattern, const DenseMatrix<T>& x,
           const DenseMatrix<T>& y, CsrMatrix<T>& out,
           const KernelSchedule* sched = nullptr) {
  AGNN_KERNEL_SCOPE("sddmm",
                    obs::sddmm_traffic_bytes(
                        static_cast<std::uint64_t>(pattern.nnz()),
                        static_cast<std::uint64_t>(pattern.rows()),
                        static_cast<std::uint64_t>(x.cols()), sizeof(T),
                        sizeof(index_t)));
  AGNN_ASSERT(pattern.rows() == x.rows(), "sddmm: row dimension mismatch");
  AGNN_ASSERT(pattern.cols() == y.rows(), "sddmm: col dimension mismatch");
  AGNN_ASSERT(x.cols() == y.cols(), "sddmm: inner dimension mismatch");
  if (&out != &pattern) out = pattern;
  const index_t k = x.cols();
  auto v = out.vals_mutable();
  // Format + schedule resolution (autotune.hpp owns the precedence; the
  // blocked path is bitwise-invisible, see blocked_ops.hpp). BCSR has no
  // SDDMM kernel — only SELL reroutes, everything else stays scalar. The
  // per-edge read of the pattern value happens before the write, so the
  // usual out-aliases-pattern contract holds on the blocked path too.
  std::shared_ptr<const KernelSchedule> owned;
  const detail::ResolvedDispatch rd = detail::resolve_dispatch(
      "sddmm", pattern, k, TuneProxy::kSddmmLike, /*supports_sell=*/true,
      /*supports_bcsr=*/false, sched, owned);
  if (rd.format == SparseFormat::kSell) {
    sell_sddmm<true>(*sell_for(pattern), pattern.vals(), x, y, v);
    return;
  }
  sched = rd.sched;
  detail::scheduled_rows(*sched, pattern, [&](index_t i, index_t b, index_t e) {
    const T* xi = x.data() + i * k;
    for (index_t t = b; t < e; ++t) {
      const index_t j = pattern.col_at(t);
      const T* yj = y.data() + j * k;
      T acc = T(0);
      for (index_t g = 0; g < k; ++g) acc += xi[g] * yj[g];
      v[static_cast<std::size_t>(t)] = pattern.val_at(t) * acc;
    }
  });
}

template <typename T>
CsrMatrix<T> sddmm(const CsrMatrix<T>& pattern, const DenseMatrix<T>& x,
                   const DenseMatrix<T>& y) {
  CsrMatrix<T> out;
  sddmm(pattern, x, y, out);
  return out;
}

// SDDMM with the sampling values treated as 1: out(i,j) = <x_i, y_j> on the
// pattern of `pattern`. Equivalent to sddmm(pattern.with_values(1), x, y)
// but never materializes the all-ones copy — the GAT backward pass calls
// this every step.
template <typename T>
void sddmm_unweighted(const CsrMatrix<T>& pattern, const DenseMatrix<T>& x,
                      const DenseMatrix<T>& y, CsrMatrix<T>& out,
                      const KernelSchedule* sched = nullptr) {
  AGNN_KERNEL_SCOPE("sddmm_unweighted",
                    obs::sddmm_traffic_bytes(
                        static_cast<std::uint64_t>(pattern.nnz()),
                        static_cast<std::uint64_t>(pattern.rows()),
                        static_cast<std::uint64_t>(x.cols()), sizeof(T),
                        sizeof(index_t)));
  AGNN_ASSERT(pattern.rows() == x.rows(), "sddmm: row dimension mismatch");
  AGNN_ASSERT(pattern.cols() == y.rows(), "sddmm: col dimension mismatch");
  AGNN_ASSERT(x.cols() == y.cols(), "sddmm: inner dimension mismatch");
  if (&out != &pattern) out = pattern;
  const index_t k = x.cols();
  auto v = out.vals_mutable();
  std::shared_ptr<const KernelSchedule> owned;
  const detail::ResolvedDispatch rd = detail::resolve_dispatch(
      "sddmm_unweighted", pattern, k, TuneProxy::kSddmmLike,
      /*supports_sell=*/true, /*supports_bcsr=*/false, sched, owned);
  if (rd.format == SparseFormat::kSell) {
    sell_sddmm<false>(*sell_for(pattern), pattern.vals(), x, y, v);
    return;
  }
  sched = rd.sched;
  detail::scheduled_rows(*sched, pattern, [&](index_t i, index_t b, index_t e) {
    const T* xi = x.data() + i * k;
    for (index_t t = b; t < e; ++t) {
      const index_t j = pattern.col_at(t);
      const T* yj = y.data() + j * k;
      T acc = T(0);
      for (index_t g = 0; g < k; ++g) acc += xi[g] * yj[g];
      v[static_cast<std::size_t>(t)] = acc;
    }
  });
}

template <typename T>
CsrMatrix<T> sddmm_unweighted(const CsrMatrix<T>& pattern, const DenseMatrix<T>& x,
                              const DenseMatrix<T>& y) {
  CsrMatrix<T> out;
  sddmm_unweighted(pattern, x, y, out);
  return out;
}

// Element-wise product of two sparse matrices with identical patterns.
template <typename T>
void hadamard_same_pattern(const CsrMatrix<T>& a, const CsrMatrix<T>& b,
                           CsrMatrix<T>& out) {
  AGNN_KERNEL_SCOPE("hadamard_same_pattern",
                    3 * obs::csr_pass_bytes(
                            static_cast<std::uint64_t>(a.nnz()),
                            static_cast<std::uint64_t>(a.rows()), sizeof(T),
                            sizeof(index_t)));
  AGNN_ASSERT(a.same_pattern(b), "hadamard: patterns must match");
  if (&out != &a && &out != &b) out = a;
  auto v = out.vals_mutable();
  const auto av = a.vals();
  const auto bv = b.vals();
#pragma omp parallel for schedule(static)
  for (index_t e = 0; e < a.nnz(); ++e) {
    v[static_cast<std::size_t>(e)] =
        av[static_cast<std::size_t>(e)] * bv[static_cast<std::size_t>(e)];
  }
}

template <typename T>
CsrMatrix<T> hadamard_same_pattern(const CsrMatrix<T>& a, const CsrMatrix<T>& b) {
  CsrMatrix<T> out;
  hadamard_same_pattern(a, b, out);
  return out;
}

// Apply a scalar function to every stored value (exp, LeakyReLU, ...).
template <typename T, typename F>
void map_values(const CsrMatrix<T>& a, F&& f, CsrMatrix<T>& out) {
  if (&out != &a) out = a;
  auto v = out.vals_mutable();
#pragma omp parallel for schedule(static)
  for (index_t e = 0; e < a.nnz(); ++e) {
    v[static_cast<std::size_t>(e)] = f(v[static_cast<std::size_t>(e)]);
  }
}

template <typename T, typename F>
CsrMatrix<T> map_values(const CsrMatrix<T>& a, F&& f) {
  CsrMatrix<T> out;
  map_values(a, f, out);
  return out;
}

// sum(X) = X * 1 over the sparse pattern: per-row sum of stored values.
// Split rows sum per piece, then fold the piece partials in fixed order.
template <typename T>
void sparse_row_sums(const CsrMatrix<T>& a, std::vector<T>& s,
                     const KernelSchedule* sched = nullptr) {
  AGNN_KERNEL_SCOPE("sparse_row_sums",
                    obs::csr_pass_bytes(static_cast<std::uint64_t>(a.nnz()),
                                        static_cast<std::uint64_t>(a.rows()),
                                        sizeof(T), sizeof(index_t)) +
                        static_cast<std::uint64_t>(a.rows()) * sizeof(T));
  s.resize(static_cast<std::size_t>(a.rows()));
  std::shared_ptr<const KernelSchedule> owned;
  sched = detail::resolve_tuned_schedule("sparse_row_sums", a, 1,
                                         TuneProxy::kRowPassLike, sched, owned);
  if (sched->row_parallel()) {
#pragma omp parallel for schedule(dynamic, 64)
    for (index_t i = 0; i < a.rows(); ++i) {
      T acc = T(0);
      for (index_t e = a.row_begin(i); e < a.row_end(i); ++e) acc += a.val_at(e);
      s[static_cast<std::size_t>(i)] = acc;
    }
    return;
  }
  const auto& cs = sched->chunks();
  const auto& srs = sched->split_rows();
  const index_t nc = static_cast<index_t>(cs.size());
  const index_t nsr = sched->num_split_rows();
  T* part = detail::schedule_arena<T>(
      static_cast<std::size_t>(sched->num_pieces()));
#pragma omp parallel
  {
#pragma omp for schedule(dynamic, 1)
    for (index_t ci = 0; ci < nc; ++ci) {
      const KernelSchedule::Chunk& c = cs[static_cast<std::size_t>(ci)];
      for (index_t i = c.row_begin; i < c.row_end; ++i) {
        const index_t b = std::max(a.row_begin(i), c.edge_begin);
        const index_t e = std::min(a.row_end(i), c.edge_end);
        T acc = T(0);
        for (index_t t = b; t < e; ++t) acc += a.val_at(t);
        if (c.piece >= 0) {
          part[c.piece] = acc;
        } else {
          s[static_cast<std::size_t>(i)] = acc;
        }
      }
    }
#pragma omp for schedule(static)
    for (index_t si = 0; si < nsr; ++si) {
      const KernelSchedule::SplitRow& sr = srs[static_cast<std::size_t>(si)];
      T acc = T(0);
      for (index_t p = sr.piece_begin; p < sr.piece_end; ++p) acc += part[p];
      s[static_cast<std::size_t>(sr.row)] = acc;
    }
  }
}

template <typename T>
std::vector<T> sparse_row_sums(const CsrMatrix<T>& a) {
  std::vector<T> s;
  sparse_row_sums(a, s);
  return s;
}

// sum^T(X) = 1^T * X: per-column sum of stored values.
//
// Rows cannot be split across threads naively (two rows may hit the same
// column), so the parallel path accumulates into per-thread partial vectors
// and merges them column-parallel. The row partition uses a *static*
// schedule so each thread sums a deterministic row range — the result is
// bitwise reproducible run to run, which the differential harness and the
// dist-vs-sequential tests rely on. Small inputs keep the serial path: no
// partial-buffer allocation, and below the threshold the merge would cost
// more than the sums.
template <typename T>
void sparse_col_sums(const CsrMatrix<T>& a, std::vector<T>& s) {
  AGNN_KERNEL_SCOPE("sparse_col_sums",
                    obs::csr_pass_bytes(static_cast<std::uint64_t>(a.nnz()),
                                        static_cast<std::uint64_t>(a.rows()),
                                        sizeof(T), sizeof(index_t)) +
                        static_cast<std::uint64_t>(a.cols()) * sizeof(T));
  const std::size_t cols = static_cast<std::size_t>(a.cols());
  s.assign(cols, T(0));
#if defined(_OPENMP)
  constexpr index_t kParallelNnzThreshold = index_t(1) << 13;
  if (omp_get_max_threads() > 1 && a.nnz() >= kParallelNnzThreshold) {
    std::vector<T> partials;
    int teams = 1;
#pragma omp parallel
    {
#pragma omp single
      {
        teams = omp_get_num_threads();
        partials.assign(static_cast<std::size_t>(teams) * cols, T(0));
      }  // implicit barrier: partials is sized before any thread writes
      T* mine = partials.data() +
                static_cast<std::size_t>(omp_get_thread_num()) * cols;
#pragma omp for schedule(static)
      for (index_t i = 0; i < a.rows(); ++i) {
        for (index_t e = a.row_begin(i); e < a.row_end(i); ++e) {
          mine[static_cast<std::size_t>(a.col_at(e))] += a.val_at(e);
        }
      }  // implicit barrier: all partials complete before the merge
#pragma omp for schedule(static)
      for (index_t j = 0; j < a.cols(); ++j) {
        T acc = T(0);
        for (int t = 0; t < teams; ++t) {
          acc += partials[static_cast<std::size_t>(t) * cols +
                          static_cast<std::size_t>(j)];
        }
        s[static_cast<std::size_t>(j)] = acc;
      }
    }
    return;
  }
#endif
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t e = a.row_begin(i); e < a.row_end(i); ++e) {
      s[static_cast<std::size_t>(a.col_at(e))] += a.val_at(e);
    }
  }
}

template <typename T>
std::vector<T> sparse_col_sums(const CsrMatrix<T>& a) {
  std::vector<T> s;
  sparse_col_sums(a, s);
  return s;
}

// Graph softmax (Section 4.2): sm(X) = exp(X) ⊘ rs_n(exp(X)), restricted to
// the non-zeros of X. Each row is exponentiated with the max-subtraction
// trick (a row-local shift cancels in the normalization but prevents
// overflow for large attention scores) and divided by its row sum.
// The replication rs_n stays virtual: only the n-vector of row sums exists.
template <typename T>
void row_softmax_inplace(CsrMatrix<T>& x, const KernelSchedule* sched = nullptr) {
  AGNN_KERNEL_SCOPE("row_softmax",
                    2 * obs::csr_pass_bytes(
                            static_cast<std::uint64_t>(x.nnz()),
                            static_cast<std::uint64_t>(x.rows()), sizeof(T),
                            sizeof(index_t)));
  auto v = x.vals_mutable();
  std::shared_ptr<const KernelSchedule> owned;
  sched = detail::resolve_tuned_schedule("row_softmax", x, 1,
                                         TuneProxy::kRowPassLike, sched, owned);
  if (sched->row_parallel()) {
#pragma omp parallel for schedule(dynamic, 64)
    for (index_t i = 0; i < x.rows(); ++i) {
      const index_t b = x.row_begin(i), e = x.row_end(i);
      if (b == e) continue;
      T mx = v[static_cast<std::size_t>(b)];
      for (index_t t = b + 1; t < e; ++t) mx = std::max(mx, v[static_cast<std::size_t>(t)]);
      T sum = T(0);
      for (index_t t = b; t < e; ++t) {
        const T ex = std::exp(v[static_cast<std::size_t>(t)] - mx);
        v[static_cast<std::size_t>(t)] = ex;
        sum += ex;
      }
      const T inv = T(1) / sum;
      for (index_t t = b; t < e; ++t) v[static_cast<std::size_t>(t)] *= inv;
    }
    return;
  }
  // Chunked online softmax. Whole rows run the legacy per-row arithmetic
  // (bitwise identical to RowParallel). Split rows go in three phases:
  //   1. each piece computes its local max mx_p and sum_p = sum exp(v - mx_p)
  //      without writing anything;
  //   2. the row max is the max of the piece maxes, and the row denominator
  //      is sum_p * exp(mx_p - mx) folded in fixed piece order;
  //   3. each piece writes v = exp(v - mx) / denom.
  // Phase 2's fold order and phase 1/3's per-piece arithmetic depend only on
  // the schedule, so the result is bitwise reproducible across runs and
  // thread counts. The piece holding the row max contributes
  // sum_p * exp(0) >= 1 to the denominator, so the division is safe.
  const auto& cs = sched->chunks();
  const auto& ps = sched->pieces();
  const auto& srs = sched->split_rows();
  const index_t nc = static_cast<index_t>(cs.size());
  const index_t np = sched->num_pieces();
  const index_t nsr = sched->num_split_rows();
  // pstat[2p] = piece max, pstat[2p+1] = piece expsum;
  // rv[2s] = row max, rv[2s+1] = 1 / row denominator.
  T* pstat = detail::schedule_arena<T>(2 * static_cast<std::size_t>(np));
  T* rv = detail::schedule_arena<T, 2>(2 * static_cast<std::size_t>(nsr));
#pragma omp parallel
  {
#pragma omp for schedule(dynamic, 1)
    for (index_t ci = 0; ci < nc; ++ci) {
      const KernelSchedule::Chunk& c = cs[static_cast<std::size_t>(ci)];
      for (index_t i = c.row_begin; i < c.row_end; ++i) {
        const index_t b = std::max(x.row_begin(i), c.edge_begin);
        const index_t e = std::min(x.row_end(i), c.edge_end);
        if (b == e) continue;
        T mx = v[static_cast<std::size_t>(b)];
        for (index_t t = b + 1; t < e; ++t) {
          mx = std::max(mx, v[static_cast<std::size_t>(t)]);
        }
        if (c.piece >= 0) {
          T sum = T(0);
          for (index_t t = b; t < e; ++t) {
            sum += std::exp(v[static_cast<std::size_t>(t)] - mx);
          }
          pstat[2 * c.piece] = mx;
          pstat[2 * c.piece + 1] = sum;
        } else {
          T sum = T(0);
          for (index_t t = b; t < e; ++t) {
            const T ex = std::exp(v[static_cast<std::size_t>(t)] - mx);
            v[static_cast<std::size_t>(t)] = ex;
            sum += ex;
          }
          const T inv = T(1) / sum;
          for (index_t t = b; t < e; ++t) v[static_cast<std::size_t>(t)] *= inv;
        }
      }
    }
#pragma omp for schedule(static)
    for (index_t si = 0; si < nsr; ++si) {
      const KernelSchedule::SplitRow& sr = srs[static_cast<std::size_t>(si)];
      T mx = pstat[2 * sr.piece_begin];
      for (index_t p = sr.piece_begin + 1; p < sr.piece_end; ++p) {
        mx = std::max(mx, pstat[2 * p]);
      }
      T denom = T(0);
      for (index_t p = sr.piece_begin; p < sr.piece_end; ++p) {
        denom += pstat[2 * p + 1] * std::exp(pstat[2 * p] - mx);
      }
      rv[2 * si] = mx;
      rv[2 * si + 1] = T(1) / denom;
    }
#pragma omp for schedule(dynamic, 1)
    for (index_t pi = 0; pi < np; ++pi) {
      const KernelSchedule::Piece& p = ps[static_cast<std::size_t>(pi)];
      const T mx = rv[2 * p.split];
      const T inv = rv[2 * p.split + 1];
      for (index_t t = p.edge_begin; t < p.edge_end; ++t) {
        v[static_cast<std::size_t>(t)] =
            std::exp(v[static_cast<std::size_t>(t)] - mx) * inv;
      }
    }
  }
}

template <typename T>
void row_softmax(const CsrMatrix<T>& x, CsrMatrix<T>& out,
                 const KernelSchedule* sched = nullptr) {
  if (&out != &x) out = x;
  row_softmax_inplace(out, sched);
}

template <typename T>
CsrMatrix<T> row_softmax(const CsrMatrix<T>& x) {
  CsrMatrix<T> out;
  row_softmax(x, out);
  return out;
}

// Backward of row_softmax. Given S = row_softmax(X) and dS = dL/dS (same
// pattern), returns dX with
//   dX(i,j) = S(i,j) * (dS(i,j) - sum_j' S(i,j') dS(i,j'))
// — the per-row softmax Jacobian applied without materializing it.
template <typename T>
void row_softmax_backward(const CsrMatrix<T>& s, const CsrMatrix<T>& ds,
                          CsrMatrix<T>& dx, const KernelSchedule* sched = nullptr) {
  AGNN_KERNEL_SCOPE("row_softmax_backward",
                    3 * obs::csr_pass_bytes(
                            static_cast<std::uint64_t>(s.nnz()),
                            static_cast<std::uint64_t>(s.rows()), sizeof(T),
                            sizeof(index_t)));
  AGNN_ASSERT(s.same_pattern(ds), "softmax backward: patterns must match");
  if (&dx != &s && &dx != &ds) dx = s;
  auto v = dx.vals_mutable();
  std::shared_ptr<const KernelSchedule> owned;
  sched = detail::resolve_tuned_schedule("row_softmax_backward", s, 1,
                                         TuneProxy::kRowPassLike, sched, owned);
  if (sched->row_parallel()) {
#pragma omp parallel for schedule(dynamic, 64)
    for (index_t i = 0; i < s.rows(); ++i) {
      T dot = T(0);
      for (index_t e = s.row_begin(i); e < s.row_end(i); ++e) {
        dot += s.val_at(e) * ds.val_at(e);
      }
      for (index_t e = s.row_begin(i); e < s.row_end(i); ++e) {
        v[static_cast<std::size_t>(e)] = s.val_at(e) * (ds.val_at(e) - dot);
      }
    }
    return;
  }
  // Split rows: piece-local dots, folded in fixed piece order, then a pure
  // per-edge write phase (safe even when dx aliases s or ds — the dot is
  // already computed and each edge reads before it writes).
  const auto& cs = sched->chunks();
  const auto& ps = sched->pieces();
  const auto& srs = sched->split_rows();
  const index_t nc = static_cast<index_t>(cs.size());
  const index_t np = sched->num_pieces();
  const index_t nsr = sched->num_split_rows();
  T* pdot = detail::schedule_arena<T>(static_cast<std::size_t>(np));
  T* rdot = detail::schedule_arena<T, 2>(static_cast<std::size_t>(nsr));
#pragma omp parallel
  {
#pragma omp for schedule(dynamic, 1)
    for (index_t ci = 0; ci < nc; ++ci) {
      const KernelSchedule::Chunk& c = cs[static_cast<std::size_t>(ci)];
      for (index_t i = c.row_begin; i < c.row_end; ++i) {
        const index_t b = std::max(s.row_begin(i), c.edge_begin);
        const index_t e = std::min(s.row_end(i), c.edge_end);
        T dot = T(0);
        for (index_t t = b; t < e; ++t) dot += s.val_at(t) * ds.val_at(t);
        if (c.piece >= 0) {
          pdot[c.piece] = dot;
        } else {
          for (index_t t = b; t < e; ++t) {
            v[static_cast<std::size_t>(t)] = s.val_at(t) * (ds.val_at(t) - dot);
          }
        }
      }
    }
#pragma omp for schedule(static)
    for (index_t si = 0; si < nsr; ++si) {
      const KernelSchedule::SplitRow& sr = srs[static_cast<std::size_t>(si)];
      T dot = T(0);
      for (index_t p = sr.piece_begin; p < sr.piece_end; ++p) dot += pdot[p];
      rdot[si] = dot;
    }
#pragma omp for schedule(dynamic, 1)
    for (index_t pi = 0; pi < np; ++pi) {
      const KernelSchedule::Piece& p = ps[static_cast<std::size_t>(pi)];
      const T dot = rdot[p.split];
      for (index_t t = p.edge_begin; t < p.edge_end; ++t) {
        v[static_cast<std::size_t>(t)] = s.val_at(t) * (ds.val_at(t) - dot);
      }
    }
  }
}

template <typename T>
CsrMatrix<T> row_softmax_backward(const CsrMatrix<T>& s, const CsrMatrix<T>& ds) {
  CsrMatrix<T> dx;
  row_softmax_backward(s, ds, dx);
  return dx;
}

// out(i,j) = a(i,j) * scale_row(i) * scale_col(j): the virtual Hadamard
// division by an outer product (AGNN's ⊘ n n^T) with scale vectors already
// inverted by the caller.
template <typename T>
void scale_rows_cols(const CsrMatrix<T>& a, std::span<const T> scale_row,
                     std::span<const T> scale_col, CsrMatrix<T>& out,
                     const KernelSchedule* sched = nullptr) {
  AGNN_KERNEL_SCOPE("scale_rows_cols",
                    2 * obs::csr_pass_bytes(
                            static_cast<std::uint64_t>(a.nnz()),
                            static_cast<std::uint64_t>(a.rows()), sizeof(T),
                            sizeof(index_t)) +
                        2 * static_cast<std::uint64_t>(a.nnz()) * sizeof(T));
  AGNN_ASSERT(static_cast<index_t>(scale_row.size()) == a.rows(), "row scale size");
  AGNN_ASSERT(static_cast<index_t>(scale_col.size()) == a.cols(), "col scale size");
  if (&out != &a) out = a;
  auto v = out.vals_mutable();
  std::shared_ptr<const KernelSchedule> owned;
  sched = detail::resolve_tuned_schedule("scale_rows_cols", a, 1,
                                         TuneProxy::kRowPassLike, sched, owned);
  detail::scheduled_rows(*sched, a, [&](index_t i, index_t b, index_t e) {
    const T ri = scale_row[static_cast<std::size_t>(i)];
    for (index_t t = b; t < e; ++t) {
      v[static_cast<std::size_t>(t)] *=
          ri * scale_col[static_cast<std::size_t>(a.col_at(t))];
    }
  });
}

template <typename T>
CsrMatrix<T> scale_rows_cols(const CsrMatrix<T>& a, std::span<const T> scale_row,
                             std::span<const T> scale_col) {
  CsrMatrix<T> out;
  scale_rows_cols(a, scale_row, scale_col, out);
  return out;
}

// X + X^T for a sparse matrix (the X_+ building block of Table 2, used by
// the VA backward pass N_+ = N + N^T). The result's pattern is the union.
template <typename T>
CsrMatrix<T> add_transpose(const CsrMatrix<T>& x) {
  AGNN_KERNEL_SCOPE("add_transpose",
                    4 * obs::csr_pass_bytes(
                            static_cast<std::uint64_t>(x.nnz()),
                            static_cast<std::uint64_t>(x.rows()), sizeof(T),
                            sizeof(index_t)));
  AGNN_ASSERT(x.rows() == x.cols(), "add_transpose: matrix must be square");
  const CsrMatrix<T> xt = x.transposed();
  CooMatrix<T> coo = x.to_coo();
  const CooMatrix<T> coo_t = xt.to_coo();
  coo.rows.insert(coo.rows.end(), coo_t.rows.begin(), coo_t.rows.end());
  coo.cols.insert(coo.cols.end(), coo_t.cols.begin(), coo_t.cols.end());
  coo.vals.insert(coo.vals.end(), coo_t.vals.begin(), coo_t.vals.end());
  coo.sum_duplicates();
  return CsrMatrix<T>::from_coo(coo);
}

}  // namespace agnn
