// Persistent tuning cache for the measurement-driven autotuner
// (tensor/autotune.hpp; DESIGN.md §16).
//
// The tuner memoizes one TunedChoice per (kernel, graph-signature) pair. The
// signature buckets the shape-relevant statistics logarithmically — {rows,
// nnz, max-degree, skew, feature width k} — so graphs of the same size class
// share a choice and a handful of samples covers a whole workload. It ALSO
// carries the exact effective schedule grain and the auto-policy baseline
// resolved under it: the baseline fixes the bitwise-equivalence class the
// candidates were allowed to race in (a chunked baseline's split-row fold
// order depends on the grain), so a choice sampled under one
// AGNN_SCHEDULE_GRAIN must never be served under another — that would let
// AGNN_TUNE change result bits. The in-memory table is backed by an
// optional on-disk file (AGNN_TUNE_CACHE=path): every store rewrites the
// file atomically (unique temp + rename, in-process saves serialized), and
// a warm file is merged in lazily the first time the tuner runs, so a
// restart re-samples nothing (proven by counter assertions in
// test_autotune).
//
// The file format is versioned ("AGNNTUNE v2" header) and loading is
// defensive by design: a missing file, a foreign/stale header, or a
// corrupt/truncated line can never throw or abort — bad files are ignored
// (counted in tune.cache.rejected_files), bad lines skipped (counted in
// tune.cache.corrupt_lines), and the tuner simply re-measures what it could
// not load.
#pragma once

#include <atomic>
#include <bit>
#include <compare>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>

#include <unistd.h>

#include "obs/metrics.hpp"
#include "tensor/common.hpp"
#include "tensor/format.hpp"
#include "tensor/schedule.hpp"

namespace agnn {

// v2: the signature gained {grain, baseline} — v1 entries lack the fields
// that keep tuned dispatch bitwise-invisible across AGNN_SCHEDULE_GRAIN
// changes, so v1 files are rejected (gracefully) rather than migrated.
inline constexpr int kTuningCacheVersion = 2;

// Log2 size-class bucket: 0 for 0, otherwise bit_width. Monotone, cheap,
// and deterministic — two graphs land in the same bucket iff they agree in
// every field, which is what the round-trip tests pin.
inline std::uint8_t tune_bucket(std::uint64_t v) {
  return static_cast<std::uint8_t>(std::bit_width(v));
}

struct GraphSignature {
  std::uint8_t rows_b = 0;     // bit_width(rows)
  std::uint8_t nnz_b = 0;      // bit_width(nnz)
  std::uint8_t max_deg_b = 0;  // bit_width(max_row_nnz)
  std::uint8_t skew_b = 0;     // bit_width(floor(skew))
  std::uint8_t k_b = 0;        // bit_width(feature width)
  // The dispatch environment the choice was sampled under. The auto-policy
  // baseline depends on the schedule grain (max_row_nnz >= 4*grain flips
  // row-parallel to hybrid-binned, schedule.hpp), and the baseline fixes
  // the bitwise-equivalence class the candidates were allowed to race in —
  // so a choice is only valid under the exact (grain, baseline) it was
  // measured with. The grain is stored EXACTLY, not log-bucketed: a chunked
  // baseline's split-row decomposition (and thus its fold order) changes
  // with any grain change, and two graphs sharing every log2 bucket can
  // still straddle the 4*grain threshold under a non-power-of-two grain.
  index_t grain = kDefaultScheduleGrain;
  std::uint8_t baseline =
      static_cast<std::uint8_t>(SchedulePolicy::kRowParallel);

  auto operator<=>(const GraphSignature&) const = default;
};

inline GraphSignature make_graph_signature(const ScheduleStats& st, index_t k,
                                           index_t grain) {
  GraphSignature s;
  s.rows_b = tune_bucket(static_cast<std::uint64_t>(st.rows));
  s.nnz_b = tune_bucket(static_cast<std::uint64_t>(st.nnz));
  s.max_deg_b = tune_bucket(static_cast<std::uint64_t>(st.max_row_nnz));
  s.skew_b = tune_bucket(static_cast<std::uint64_t>(st.skew < 0.0 ? 0.0 : st.skew));
  s.k_b = tune_bucket(static_cast<std::uint64_t>(k < 0 ? 0 : k));
  s.grain = grain < 1 ? 1 : grain;  // KernelSchedule::build's clamp
  s.baseline = static_cast<std::uint8_t>(
      resolve_schedule_policy(st, SchedulePolicy::kAuto, s.grain));
  return s;
}

// A tuner decision: the dispatch configuration that won the micro-sampling
// for its (kernel, signature) cell, plus the winning median sample time
// (diagnostic only — it does not participate in dispatch).
struct TunedChoice {
  SchedulePolicy policy = SchedulePolicy::kRowParallel;
  index_t grain = kDefaultScheduleGrain;
  SparseFormat format = SparseFormat::kCsr;
  std::uint64_t sample_ns = 0;
};

class TuningCache {
 public:
  static TuningCache& global() {
    static TuningCache c;
    return c;
  }

  std::optional<TunedChoice> lookup(std::string_view kernel,
                                    const GraphSignature& sig) const {
    std::lock_guard<std::mutex> lock(mu_);
    const auto kit = table_.find(kernel);
    if (kit == table_.end()) return std::nullopt;
    const auto sit = kit->second.find(sig);
    if (sit == kit->second.end()) return std::nullopt;
    return sit->second;
  }

  // Insert (overwriting any stale entry) and, when AGNN_TUNE_CACHE names a
  // path, rewrite the file so the choice survives the process.
  void store(const std::string& kernel, const GraphSignature& sig,
             const TunedChoice& choice) {
    std::string path;
    if (const char* p = std::getenv("AGNN_TUNE_CACHE")) path = p;
    {
      std::lock_guard<std::mutex> lock(mu_);
      table_[kernel][sig] = choice;
    }
    obs::MetricsRegistry::global().counter("tune.cache.stores").add(1);
    if (!path.empty()) save_file(path);
  }

  // Lazily merge the env-named file the first time (or whenever the path
  // changes — tests repoint it). Never throws; a bad file just means the
  // tuner re-measures.
  void sync_with_env() {
    const char* p = std::getenv("AGNN_TUNE_CACHE");
    if (p == nullptr || *p == '\0') return;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (loaded_path_ == p) return;
      loaded_path_ = p;
    }
    load_file(p);
  }

  // Merge a cache file into the table. Returns false (and counts
  // tune.cache.rejected_files) when the file is unreadable or its header is
  // missing/of another version; corrupt lines are skipped individually so a
  // truncated tail never discards the valid prefix.
  bool load_file(const std::string& path) {
    auto& reg = obs::MetricsRegistry::global();
    std::ifstream in(path);
    std::string header;
    if (!in.good() || !std::getline(in, header) ||
        header != "AGNNTUNE v" + std::to_string(kTuningCacheVersion)) {
      reg.counter("tune.cache.rejected_files").add(1);
      return false;
    }
    std::uint64_t loaded = 0, corrupt = 0;
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      std::istringstream ls(line);
      std::string kernel, baseline_s, policy_s, format_s;
      unsigned rows_b, nnz_b, max_deg_b, skew_b, k_b;
      long sig_grain, grain;
      std::uint64_t ns;
      SchedulePolicy baseline = SchedulePolicy::kAuto;
      SchedulePolicy policy = SchedulePolicy::kAuto;
      SparseFormat format = SparseFormat::kCsr;
      if (!(ls >> kernel >> rows_b >> nnz_b >> max_deg_b >> skew_b >> k_b >>
            sig_grain >> baseline_s >> policy_s >> grain >> format_s >> ns) ||
          !parse_schedule_policy(baseline_s, baseline) ||
          baseline == SchedulePolicy::kAuto ||
          !parse_schedule_policy(policy_s, policy) ||
          policy == SchedulePolicy::kAuto ||
          !parse_sparse_format(format_s, format) ||
          format == SparseFormat::kAuto || sig_grain <= 0 || grain <= 0 ||
          rows_b > 64 || nnz_b > 64 || max_deg_b > 64 || skew_b > 64 ||
          k_b > 64) {
        ++corrupt;
        continue;
      }
      GraphSignature sig;
      sig.rows_b = static_cast<std::uint8_t>(rows_b);
      sig.nnz_b = static_cast<std::uint8_t>(nnz_b);
      sig.max_deg_b = static_cast<std::uint8_t>(max_deg_b);
      sig.skew_b = static_cast<std::uint8_t>(skew_b);
      sig.k_b = static_cast<std::uint8_t>(k_b);
      sig.grain = static_cast<index_t>(sig_grain);
      sig.baseline = static_cast<std::uint8_t>(baseline);
      TunedChoice c;
      c.policy = policy;
      c.grain = static_cast<index_t>(grain);
      c.format = format;
      c.sample_ns = ns;
      std::lock_guard<std::mutex> lock(mu_);
      // First writer wins: entries measured in this process are fresher
      // than whatever the file says.
      table_[kernel].emplace(sig, c);
      ++loaded;
    }
    reg.counter("tune.cache.loads").add(1);
    reg.counter("tune.cache.loaded_entries").add(loaded);
    if (corrupt > 0) reg.counter("tune.cache.corrupt_lines").add(corrupt);
    return true;
  }

  // Atomic rewrite: serialize to a writer-unique temp, then rename over the
  // target, so a concurrent reader never observes a torn file. The temp name
  // carries the pid plus a process-wide counter — two processes sharing one
  // AGNN_TUNE_CACHE (or two threads racing store()) never interleave writes
  // into the same temp or rename a half-written one — and in-process saves
  // additionally serialize on save_mu_ across the whole write+rename, so the
  // last completed save is always a complete snapshot.
  bool save_file(const std::string& path) const {
    std::lock_guard<std::mutex> save_lock(save_mu_);
    std::ostringstream os;
    os << "AGNNTUNE v" << kTuningCacheVersion << '\n';
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const auto& [kernel, entries] : table_) {
        for (const auto& [sig, c] : entries) {
          os << kernel << ' ' << unsigned(sig.rows_b) << ' '
             << unsigned(sig.nnz_b) << ' ' << unsigned(sig.max_deg_b) << ' '
             << unsigned(sig.skew_b) << ' ' << unsigned(sig.k_b) << ' '
             << sig.grain << ' '
             << to_string(static_cast<SchedulePolicy>(sig.baseline)) << ' '
             << to_string(c.policy) << ' ' << c.grain << ' '
             << to_string(c.format) << ' ' << c.sample_ns << '\n';
        }
      }
    }
    static std::atomic<std::uint64_t> save_seq{0};
    const std::string tmp =
        path + ".tmp." + std::to_string(static_cast<long>(::getpid())) + "." +
        std::to_string(save_seq.fetch_add(1, std::memory_order_relaxed));
    {
      std::ofstream out(tmp, std::ios::trunc);
      if (!out.good()) return false;
      out << os.str();
      if (!out.good()) return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
      std::remove(tmp.c_str());
      return false;
    }
    return true;
  }

  // Drop everything, including the loaded-path memo — the next sync_with_env
  // reloads the file. Tests use this to simulate a process restart.
  void clear() {
    std::lock_guard<std::mutex> lock(mu_);
    table_.clear();
    loaded_path_.clear();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t n = 0;
    for (const auto& [kernel, entries] : table_) n += entries.size();
    return n;
  }

 private:
  TuningCache() = default;
  mutable std::mutex mu_;
  mutable std::mutex save_mu_;  // serializes save_file's write+rename
  // std::less<> keeps the per-call lookup heterogeneous: a string_view key
  // probes without allocating, so tuned steady-state dispatch stays off the
  // heap.
  std::map<std::string, std::map<GraphSignature, TunedChoice>, std::less<>>
      table_;
  std::string loaded_path_;
};

}  // namespace agnn
