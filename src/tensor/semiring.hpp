// Semirings for the generalized aggregation ⊕ of Section 4.3.
//
// A semiring here drives the generalized sparse-dense product A ⊕ H: for
// each output element (i, gamma),
//
//     out(i, gamma) = reduce_{j in N(i)}  combine(A(i,j), H(j, gamma))
//
// with `reduce` the additive monoid (op1) and `combine` the multiplicative
// monoid (op2). The paper's four aggregations are provided:
//
//   * sum      — the real semiring (R, +, *, 0, 1)
//   * min      — the tropical semiring (R ∪ {+inf}, min, +, +inf, 0);
//                off-diagonal zeros of A are conceptually +inf, which the
//                sparse kernel realizes by simply skipping non-edges
//   * max      — (R ∪ {-inf}, max, +, -inf, 0)
//   * average  — the tuple semiring over R^2 described in Section 4.3:
//                elements carry (weighted value, weight) and op2 merges two
//                tuples by computing their weighted average
//
// Each semiring defines an Accumulator type so that the tuple-valued average
// semiring and the scalar semirings share one SpMM kernel.
#pragma once

#include <algorithm>
#include <limits>

#include "tensor/common.hpp"

namespace agnn {

template <typename T>
struct PlusTimesSemiring {
  using Accum = T;
  static constexpr const char* name() { return "plus_times"; }
  static Accum identity() { return T(0); }
  // accumulate: acc = op1(acc, op2(a, h))
  static void accumulate(Accum& acc, T a, T h) { acc += a * h; }
  // merge: acc = op1(acc, other) — folds a split-row piece partial into the
  // running accumulator (tensor/schedule.hpp reduces pieces in fixed order).
  static void merge(Accum& acc, const Accum& other) { acc += other; }
  static T finalize(const Accum& acc) { return acc; }
};

template <typename T>
struct MinPlusSemiring {
  using Accum = T;
  static constexpr const char* name() { return "min_plus"; }
  static Accum identity() { return std::numeric_limits<T>::infinity(); }
  static void accumulate(Accum& acc, T a, T h) { acc = std::min(acc, a + h); }
  static void merge(Accum& acc, const Accum& other) { acc = std::min(acc, other); }
  static T finalize(const Accum& acc) { return acc; }
};

template <typename T>
struct MaxPlusSemiring {
  using Accum = T;
  static constexpr const char* name() { return "max_plus"; }
  static Accum identity() { return -std::numeric_limits<T>::infinity(); }
  static void accumulate(Accum& acc, T a, T h) { acc = std::max(acc, a + h); }
  static void merge(Accum& acc, const Accum& other) { acc = std::max(acc, other); }
  static T finalize(const Accum& acc) { return acc; }
};

// The average semiring of Section 4.3. The accumulator is the tuple
// (weighted mean so far, total weight so far); op2 merges two tuples by
// weighted average, which is associative and commutative over the weights.
// For a 0/1 adjacency matrix this computes the plain neighborhood mean.
template <typename T>
struct AverageSemiring {
  struct Accum {
    T mean = T(0);
    T weight = T(0);
  };
  static constexpr const char* name() { return "average"; }
  static Accum identity() { return {}; }
  static void accumulate(Accum& acc, T a, T h) {
    // Merge the tuple (h, a) — value h with weight a — into the accumulator.
    const T w = acc.weight + a;
    if (w != T(0)) acc.mean = (acc.mean * acc.weight + h * a) / w;
    acc.weight = w;
  }
  // Weighted average of two partial averages — associative over the weights,
  // so piece partials merge exactly like individual (h, a) contributions.
  static void merge(Accum& acc, const Accum& other) {
    const T w = acc.weight + other.weight;
    if (w != T(0)) acc.mean = (acc.mean * acc.weight + other.mean * other.weight) / w;
    acc.weight = w;
  }
  static T finalize(const Accum& acc) { return acc.mean; }
};

enum class Aggregation { kSum, kMin, kMax, kMean };

inline const char* to_string(Aggregation agg) {
  switch (agg) {
    case Aggregation::kSum: return "sum";
    case Aggregation::kMin: return "min";
    case Aggregation::kMax: return "max";
    case Aggregation::kMean: return "mean";
  }
  return "?";
}

}  // namespace agnn
