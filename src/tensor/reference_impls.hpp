// Unfused reference implementations of the Psi formulations.
//
// These follow the global tensor formulas *literally*: they materialize the
// dense n x n intermediates (H H^T, the replications rep(s) of Table 2, the
// outer product n n^T) that the production kernels keep virtual. They are
// O(n^2) in time and memory, so they are used only
//   (a) as oracles in the test suite, and
//   (b) as the "unfused" arm of the Section 6.2 fusion-ablation benchmark.
#pragma once

#include <cmath>
#include <limits>
#include <vector>

#include "tensor/csr_matrix.hpp"
#include "tensor/dense_matrix.hpp"
#include "tensor/dense_ops.hpp"

namespace agnn::reference {

// Dense element-wise filter by the sparse pattern: out = A ⊙ X.
template <typename T>
CsrMatrix<T> sample_dense(const CsrMatrix<T>& a, const DenseMatrix<T>& x) {
  AGNN_ASSERT(a.rows() == x.rows() && a.cols() == x.cols(), "sample_dense shape");
  CsrMatrix<T> out = a;
  auto v = out.vals_mutable();
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t e = a.row_begin(i); e < a.row_end(i); ++e) {
      v[static_cast<std::size_t>(e)] = a.val_at(e) * x(i, a.col_at(e));
    }
  }
  return out;
}

// Psi_VA = A ⊙ (H H^T), with H H^T materialized densely.
template <typename T>
CsrMatrix<T> psi_va_unfused(const CsrMatrix<T>& a, const DenseMatrix<T>& h) {
  const DenseMatrix<T> hx = matmul_nt(h, h);  // H H^T, n x n dense
  return sample_dense(a, hx);
}

// Psi_AGNN = A ⊙ (H H^T ⊘ n n^T), both n x n intermediates materialized.
template <typename T>
CsrMatrix<T> psi_agnn_unfused(const CsrMatrix<T>& a, const DenseMatrix<T>& h) {
  DenseMatrix<T> hx = matmul_nt(h, h);
  const std::vector<T> norms = row_l2_norms(h);
  const DenseMatrix<T> nn = outer<T>(norms, norms);
  for (index_t i = 0; i < hx.size(); ++i) {
    hx.data()[i] = nn.data()[i] > T(0) ? hx.data()[i] / nn.data()[i] : T(0);
  }
  return sample_dense(a, hx);
}

// Pre-softmax GAT scores A ⊙ LeakyReLU(s1 1^T + 1 s2^T), with the rank-1
// replication matrix materialized densely (rep_n(s1) + rep_n^T(s2)).
template <typename T>
CsrMatrix<T> gat_scores_unfused(const CsrMatrix<T>& a, std::span<const T> s1,
                                std::span<const T> s2, T leaky_slope) {
  const index_t n = a.rows();
  DenseMatrix<T> c = replicate_cols(s1, n);  // s1 1^T
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) c(i, j) += s2[static_cast<std::size_t>(j)];
  }
  for (index_t i = 0; i < c.size(); ++i) {
    const T v = c.data()[i];
    c.data()[i] = v > T(0) ? v : leaky_slope * v;
  }
  return sample_dense(a, c);
}

// Dense row-softmax over the *sparsity support* of `mask`, as an oracle for
// the sparse graph softmax. Non-edges are treated as -inf.
template <typename T>
DenseMatrix<T> masked_row_softmax_dense(const CsrMatrix<T>& mask,
                                        const DenseMatrix<T>& scores) {
  DenseMatrix<T> out(scores.rows(), scores.cols(), T(0));
  for (index_t i = 0; i < mask.rows(); ++i) {
    T mx = -std::numeric_limits<T>::infinity();
    for (index_t e = mask.row_begin(i); e < mask.row_end(i); ++e) {
      mx = std::max(mx, scores(i, mask.col_at(e)));
    }
    T sum = T(0);
    for (index_t e = mask.row_begin(i); e < mask.row_end(i); ++e) {
      sum += std::exp(scores(i, mask.col_at(e)) - mx);
    }
    if (sum <= T(0)) continue;
    for (index_t e = mask.row_begin(i); e < mask.row_end(i); ++e) {
      const index_t j = mask.col_at(e);
      out(i, j) = std::exp(scores(i, j) - mx) / sum;
    }
  }
  return out;
}

// Naive triple-loop dense matmul oracle.
template <typename T>
DenseMatrix<T> matmul_naive(const DenseMatrix<T>& a, const DenseMatrix<T>& b) {
  AGNN_ASSERT(a.cols() == b.rows(), "matmul_naive: shape");
  DenseMatrix<T> c(a.rows(), b.cols(), T(0));
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t j = 0; j < b.cols(); ++j) {
      T acc = T(0);
      for (index_t l = 0; l < a.cols(); ++l) acc += a(i, l) * b(l, j);
      c(i, j) = acc;
    }
  }
  return c;
}

// Naive per-element semiring SpMM oracle (works for scalar aggregations).
template <typename T, typename Reduce>
DenseMatrix<T> aggregate_naive(const CsrMatrix<T>& a, const DenseMatrix<T>& h,
                               T identity, Reduce&& reduce) {
  DenseMatrix<T> out(a.rows(), h.cols(), identity);
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t e = a.row_begin(i); e < a.row_end(i); ++e) {
      const index_t j = a.col_at(e);
      for (index_t g = 0; g < h.cols(); ++g) {
        out(i, g) = reduce(out(i, g), a.val_at(e), h(j, g));
      }
    }
  }
  return out;
}

}  // namespace agnn::reference
