// Portable SIMD layer for the blocked sparse kernels (DESIGN.md §13).
//
// Every blocked kernel is written so that per-output-element floating-point
// evaluation order is *identical* to the scalar CSR kernels: vectorization
// happens across the dense feature dimension k (independent accumulation
// chains), never across the sparse edge dimension (a single accumulation
// chain whose order is the bitwise contract).
//
// Bitwise-reproducibility rules this layer enforces:
//   * mul + add only, never FMA. The scalar baselines are compiled without
//     -mfma, so a fused multiply-add in the AVX2 path would round differently
//     (single rounding vs. two) and break the "blocked == scalar CSR bitwise"
//     contract that test_formats.cpp and the differential formats suite pin.
//     The AVX2 code is compiled under target("avx2") — attribute or pragma —
//     which enables the AVX2 ISA only; FMA is a separate target flag that is
//     never set, so the compiler cannot contract mul/add pairs, whether they
//     come from intrinsics here or from autovectorized loops in the blocked
//     kernel bodies.
//   * No horizontal reductions. Dot products (SDDMM) stay g-sequential per
//     edge; speed there comes from unrolling across independent edges.
//
// Dispatch granularity matters: a per-edge call into a target("avx2")
// function cannot be inlined across the target boundary, and the call
// overhead eats the SIMD win (measured slower than scalar CSR). So the
// blocked kernels dispatch per *chunk*: each kernel's chunk body is an
// AGNN_ALWAYS_INLINE template instantiated twice — once at baseline ISA,
// once inside a `#pragma GCC target("avx2")` region (pragmas, unlike
// attributes, apply to template instantiations) — and have_avx2() picks the
// twin at runtime. No global -march flags, so the rest of the build is
// unchanged. Building with -DAGNN_SIMD_INTRINSICS=OFF (CI's portable leg)
// defines AGNN_DISABLE_SIMD_INTRINSICS and removes the AVX2 twins entirely,
// leaving the portable bodies — which the autovectorizer still turns into
// baseline-ISA code, same as the scalar CSR kernels get.
#pragma once

#include <type_traits>

#include "tensor/common.hpp"

#if defined(__GNUC__) || defined(__clang__)
#define AGNN_RESTRICT __restrict__
// Forces the blocked-kernel chunk bodies to inline into their per-ISA
// instantiation wrappers, so the avx2 twin really compiles the loops under
// the avx2 target instead of calling back into baseline-ISA code.
#define AGNN_ALWAYS_INLINE __attribute__((always_inline)) inline
#else
#define AGNN_RESTRICT
#define AGNN_ALWAYS_INLINE inline
#endif

#if defined(__GNUC__) && defined(__x86_64__) && !defined(__clang__) && \
    !defined(AGNN_DISABLE_SIMD_INTRINSICS)
#define AGNN_SIMD_AVX2_PATH 1
#include <immintrin.h>
#else
#define AGNN_SIMD_AVX2_PATH 0
#endif

namespace agnn::simd {

// True when this build carries the AVX2 intrinsic paths at all (the CI
// portable leg compiles them out to keep the fallback honestly tested).
constexpr bool compiled_with_avx2() { return AGNN_SIMD_AVX2_PATH != 0; }

// Runtime CPU check, cached after the first call.
inline bool have_avx2() {
#if AGNN_SIMD_AVX2_PATH
  static const bool ok = __builtin_cpu_supports("avx2");
  return ok;
#else
  return false;
#endif
}

namespace detail {

// Portable fallback: a plain loop the autovectorizer handles at the build's
// baseline ISA. Per-element order matches the scalar kernels trivially.
template <typename T>
inline void axpy_portable(T* AGNN_RESTRICT o, const T* AGNN_RESTRICT x, T a,
                          index_t n) {
  for (index_t g = 0; g < n; ++g) o[g] += a * x[g];
}

#if AGNN_SIMD_AVX2_PATH
__attribute__((target("avx2"))) inline void axpy_avx2(
    double* AGNN_RESTRICT o, const double* AGNN_RESTRICT x, double a,
    index_t n) {
  const __m256d va = _mm256_set1_pd(a);
  index_t g = 0;
  for (; g + 8 <= n; g += 8) {
    // Two independent 4-lane streams per iteration; mul then add (no FMA).
    const __m256d p0 = _mm256_mul_pd(va, _mm256_loadu_pd(x + g));
    const __m256d p1 = _mm256_mul_pd(va, _mm256_loadu_pd(x + g + 4));
    _mm256_storeu_pd(o + g, _mm256_add_pd(_mm256_loadu_pd(o + g), p0));
    _mm256_storeu_pd(o + g + 4, _mm256_add_pd(_mm256_loadu_pd(o + g + 4), p1));
  }
  for (; g + 4 <= n; g += 4) {
    const __m256d p = _mm256_mul_pd(va, _mm256_loadu_pd(x + g));
    _mm256_storeu_pd(o + g, _mm256_add_pd(_mm256_loadu_pd(o + g), p));
  }
  for (; g < n; ++g) o[g] += a * x[g];
}

__attribute__((target("avx2"))) inline void axpy_avx2(
    float* AGNN_RESTRICT o, const float* AGNN_RESTRICT x, float a, index_t n) {
  const __m256 va = _mm256_set1_ps(a);
  index_t g = 0;
  for (; g + 16 <= n; g += 16) {
    const __m256 p0 = _mm256_mul_ps(va, _mm256_loadu_ps(x + g));
    const __m256 p1 = _mm256_mul_ps(va, _mm256_loadu_ps(x + g + 8));
    _mm256_storeu_ps(o + g, _mm256_add_ps(_mm256_loadu_ps(o + g), p0));
    _mm256_storeu_ps(o + g + 8, _mm256_add_ps(_mm256_loadu_ps(o + g + 8), p1));
  }
  for (; g + 8 <= n; g += 8) {
    const __m256 p = _mm256_mul_ps(va, _mm256_loadu_ps(x + g));
    _mm256_storeu_ps(o + g, _mm256_add_ps(_mm256_loadu_ps(o + g), p));
  }
  for (; g < n; ++g) o[g] += a * x[g];
}
#endif  // AGNN_SIMD_AVX2_PATH

}  // namespace detail

// o[0..n) += a * x[0..n). Bitwise-identical across all paths (see header
// comment). `o` and `x` must not overlap.
template <typename T>
inline void axpy(T* AGNN_RESTRICT o, const T* AGNN_RESTRICT x, T a,
                 index_t n) {
#if AGNN_SIMD_AVX2_PATH
  if constexpr (std::is_same_v<T, double> || std::is_same_v<T, float>) {
    if (have_avx2()) {
      detail::axpy_avx2(o, x, a, n);
      return;
    }
  }
#endif
  detail::axpy_portable(o, x, a, n);
}

}  // namespace agnn::simd
