// Measurement-driven kernel autotuner (DESIGN.md §16).
//
// PR 5 (adaptive schedules) and PR 7 (SELL-C-σ/BCSR formats) opened a
// variant space — {schedule policy, grain, format} per kernel — governed by
// two hand-written heuristics. This header replaces guessing with measuring:
// on the first touch of a (kernel, graph-signature) pair the tuner
// micro-samples the candidate space with a cheap proxy of the kernel's
// memory-access pattern (median of kTuneReps wall-clock reps, recorded in
// the tune.<kernel>.sample_ns histogram), picks the fastest candidate, and
// memoizes it in the TuningCache (tensor/tuning_cache.hpp) — in memory and,
// when AGNN_TUNE_CACHE names a path, on disk across process restarts.
//
// The tuner is bitwise invisible BY CONSTRUCTION: each kernel's candidate
// space is restricted to the bitwise-equivalence class of what the untuned
// heuristics would run, so AGNN_TUNE can never change a result, only its
// speed. Concretely (sample_candidates):
//   - per-edge kernels (SDDMM, the Psi samplers) write each v[e] as a pure
//     function of e, so every schedule policy AND the SELL variant land the
//     same bits — the whole space races;
//   - row-reduction kernels (SpMM-like, row passes) on a row-parallel
//     baseline race the storage formats (SELL/BCSR are bitwise-identical to
//     row-at-a-time CSR, blocked_ops.hpp);
//   - row-reduction kernels on a chunked baseline keep the baseline
//     decomposition: split-row folds pin the reduction order, and racing a
//     different policy would legitimately reassociate (the schedule suite
//     compares cross-policy runs at kTol, not bitwise).
// The differential `tune` suite and the tuned golden leg enforce exactly
// this: AGNN_TUNE=on vs off agree to the bit on every public kernel.
//
// Env knobs (read per kernel invocation, like AGNN_SCHEDULE/AGNN_FORMAT):
//   AGNN_TUNE       = off | on | force-resample   (default off)
//                     Unknown values THROW (std::logic_error): a typo that
//                     silently fell back to `off` would fake a tuned run.
//   AGNN_TUNE_CACHE = path of the persistent cache file (optional)
//
// Precedence (the single owner of the schedule-vs-format decision; the fix
// for the old both-auto ambiguity where AGNN_FORMAT=auto's nnz threshold
// silently overrode KernelSchedule::auto's chunking decision):
//   1. an explicit KernelSchedule* argument pins the schedule axis;
//   2. a concrete AGNN_FORMAT (csr|sell|bcsr) pins the format axis;
//   3. a concrete AGNN_SCHEDULE (row|edge|hybrid) pins the schedule axis;
//   4. if neither axis is pinned and AGNN_TUNE=on|force-resample, the tuner
//      owns both axes jointly;
//   5. otherwise the auto heuristics run with the SCHEDULE resolving first:
//      AGNN_FORMAT=auto picks SELL only when the resolved schedule is
//      row-parallel AND nnz >= kFormatAutoMinNnz — a chunked schedule keeps
//      CSR, because hub-row load balancing is worth more than SIMD lanes
//      and the blocked kernels cannot honor a chunk decomposition.
//   If either axis is pinned (rules 1–3), the tuner backs off entirely:
//   explicit knobs always beat measurements, which keeps the CI sweep legs
//   meaningful under the AGNN_TUNE matrix.
//
// The fused-vs-unfused axis of the candidate space collapses at runtime:
// every production kernel is already the fused form (the *_unfused
// references in reference_impls.hpp are O(n^2) test oracles, not
// dispatchable variants), so the tuner tunes {policy × grain × format}.
//
// Serving: the InferenceServer warms the tuner once at construction and
// then freezes it (tune_freeze). A frozen tuner still serves warm cache
// entries but never samples — an unseen signature falls back to the auto
// heuristics (counted in tune.frozen_fallbacks) — so request latency never
// pays a sampling stall.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "tensor/blocked_ops.hpp"
#include "tensor/csr_matrix.hpp"
#include "tensor/dense_matrix.hpp"
#include "tensor/format.hpp"
#include "tensor/schedule.hpp"
#include "tensor/tuning_cache.hpp"

namespace agnn {

enum class TuneMode {
  kOff,            // heuristics only (the seed behavior; default)
  kOn,             // sample on first touch, then serve memoized choices
  kForceResample,  // ignore memoized choices; re-measure every touch
};

inline const char* to_string(TuneMode m) {
  switch (m) {
    case TuneMode::kOff: return "off";
    case TuneMode::kOn: return "on";
    case TuneMode::kForceResample: return "force-resample";
  }
  return "?";
}

inline bool parse_tune_mode(std::string_view s, TuneMode& out) {
  if (s == "off" || s.empty()) {
    out = TuneMode::kOff;
  } else if (s == "on") {
    out = TuneMode::kOn;
  } else if (s == "force-resample" || s == "force_resample") {
    out = TuneMode::kForceResample;
  } else {
    return false;
  }
  return true;
}

// Strict by design (same contract as AGNN_DIST): a typo must surface, not
// silently run untuned while the operator believes the tuner is on.
inline TuneMode tune_mode_from_env() {
  const char* e = std::getenv("AGNN_TUNE");
  if (e == nullptr) return TuneMode::kOff;
  TuneMode m = TuneMode::kOff;
  if (!parse_tune_mode(e, m)) {
    throw std::logic_error(std::string("AGNN_TUNE: unknown mode '") + e +
                           "' (expected off|on|force-resample)");
  }
  return m;
}

// ---- freeze (serving warmup contract) --------------------------------------
// While frozen the tuner serves warm entries but never samples. Nestable
// (a depth counter), thread-safe, process-global.

namespace detail {
inline std::atomic<int>& tune_freeze_depth() {
  static std::atomic<int> depth{0};
  return depth;
}
}  // namespace detail

inline void tune_freeze() {
  detail::tune_freeze_depth().fetch_add(1, std::memory_order_relaxed);
}
inline void tune_unfreeze() {
  detail::tune_freeze_depth().fetch_sub(1, std::memory_order_relaxed);
}
inline bool tune_frozen() {
  return detail::tune_freeze_depth().load(std::memory_order_relaxed) > 0;
}

struct TuneFreezeGuard {
  TuneFreezeGuard() { tune_freeze(); }
  ~TuneFreezeGuard() { tune_unfreeze(); }
  TuneFreezeGuard(const TuneFreezeGuard&) = delete;
  TuneFreezeGuard& operator=(const TuneFreezeGuard&) = delete;
};

// ---- choice encoding for the metrics/roofline export -----------------------
// tune.<kernel>.choice carries the decision as a small integer so the
// TraceReport roofline table can decode it without depending on tensor
// headers: policy*10000 + format*1000 + bit_width(grain), with the enum
// integer values (row_parallel=1, edge_balanced=2, hybrid_binned=3; csr=0,
// sell=1, bcsr=2). obs::TraceReport::decode_tuned_choice implements the
// inverse; Autotune.ChoiceEncodingRoundTrips pins the two in sync.

inline int encode_tuned_choice(const TunedChoice& c) {
  return static_cast<int>(c.policy) * 10000 + static_cast<int>(c.format) * 1000 +
         static_cast<int>(tune_bucket(static_cast<std::uint64_t>(c.grain)));
}

// Which micro-benchmark stands in for the kernel. The proxy reproduces the
// kernel's dominant memory-access pattern under each candidate — it is a
// ranking instrument, not the kernel itself.
enum class TuneProxy {
  kSpmmLike,     // gather k-wide feature rows per edge, accumulate per row
  kSddmmLike,    // k-wide dot per edge, one value written per edge
  kRowPassLike,  // value-array pass with a per-row reduction
};

namespace detail {

inline constexpr int kTuneReps = 3;
inline constexpr index_t kTuneProxyMaxK = 32;       // clamp proxy width
inline constexpr index_t kTuneMinChunkedNnz = 256;  // below: row-only candidates

struct TuneCandidate {
  SchedulePolicy policy = SchedulePolicy::kRowParallel;
  index_t grain = kDefaultScheduleGrain;
  SparseFormat format = SparseFormat::kCsr;
};

// Stats for the signature: reuse whatever schedule is already cached on the
// matrix (its stats are a pure pattern function, valid under any requested
// policy); first touch pays one O(n) pass.
template <typename T>
inline ScheduleStats tune_stats_for(const CsrMatrix<T>& a) {
  if (auto cached = a.cached_schedule()) return cached->stats();
  return compute_schedule_stats(a.row_ptr());
}

// One timed proxy run under `cand`. Scalar-CSR candidates drive the real
// scheduled_rows decomposition; split-row pieces accumulate into
// thread-local scratch instead of the shared output row, so the proxy is
// race-free under every candidate (the skipped hub-row write is noise next
// to the gather traffic being ranked). Blocked candidates run the real
// blocked kernels — they are race-free internally.
template <typename T>
void run_tune_proxy(const CsrMatrix<T>& a, index_t k, TuneProxy proxy,
                    const TuneCandidate& cand, const KernelSchedule& cs,
                    const DenseMatrix<T>& hx, const DenseMatrix<T>& hy,
                    DenseMatrix<T>& out, std::vector<T>& edge_out) {
  // hx is row-indexed (a.rows() tall), hy col-indexed (a.cols() tall): the
  // blocked kernels assert exact operand dimensions, and local blocks of a
  // distributed matrix are rectangular, so one shared operand cannot serve
  // both gather sides.
  if (cand.format == SparseFormat::kSell) {
    switch (proxy) {
      case TuneProxy::kSpmmLike:
        sell_spmm(*sell_for(a), a.vals(), hy, out);
        return;
      case TuneProxy::kSddmmLike: {
        std::span<T> v(edge_out);
        sell_sddmm<false>(*sell_for(a), a.vals(), hx, hy, v);
        return;
      }
      case TuneProxy::kRowPassLike:
        break;  // no blocked row-pass kernels; candidate never offered
    }
    return;
  }
  if (cand.format == SparseFormat::kBcsr) {
    bcsr_spmm(*bcsr_for(a), a.vals(), hy, out);
    return;
  }
  switch (proxy) {
    case TuneProxy::kSpmmLike:
      scheduled_rows(cs, a, [&](index_t i, index_t b, index_t e) {
        const bool whole = b == a.row_begin(i) && e == a.row_end(i);
        T* acc = schedule_arena<T, 6>(static_cast<std::size_t>(k));
        T* dst = whole ? out.data() + i * k : acc;
        for (index_t g = 0; g < k; ++g) dst[g] = T(0);
        for (index_t t = b; t < e; ++t) {
          const index_t j = a.col_at(t);
          const T av = a.val_at(t);
          const T* hj = hy.data() + j * k;
          for (index_t g = 0; g < k; ++g) dst[g] += av * hj[g];
        }
        if (!whole) {
          T* sink = schedule_arena<T, 7>(static_cast<std::size_t>(k));
          for (index_t g = 0; g < k; ++g) sink[g] += dst[g];
        }
      });
      return;
    case TuneProxy::kSddmmLike:
      scheduled_rows(cs, a, [&](index_t i, index_t b, index_t e) {
        const T* xi = hx.data() + i * k;
        for (index_t t = b; t < e; ++t) {
          const T* yj = hy.data() + a.col_at(t) * k;
          T acc = T(0);
          for (index_t g = 0; g < k; ++g) acc += xi[g] * yj[g];
          edge_out[static_cast<std::size_t>(t)] = acc;
        }
      });
      return;
    case TuneProxy::kRowPassLike:
      scheduled_rows(cs, a, [&](index_t i, index_t b, index_t e) {
        (void)i;
        T acc = T(0);
        for (index_t t = b; t < e; ++t) acc += a.val_at(t);
        schedule_arena<T, 7>(1)[0] += acc;
      });
      return;
  }
}

// Time every candidate (median of kTuneReps), pick the fastest. Sampling is
// rare (once per (kernel, signature) per cache lifetime), so the proxy
// operands may allocate freely — the zero-allocation steady-state audits
// only cover the memoized path.
template <typename T>
TunedChoice sample_candidates(const char* kernel, const CsrMatrix<T>& a,
                              index_t k, TuneProxy proxy, bool supports_sell,
                              bool supports_bcsr, const ScheduleStats& st) {
  const index_t kk = std::clamp<index_t>(k, 1, kTuneProxyMaxK);
  const index_t env_grain = schedule_grain_from_env();
  const SchedulePolicy base =
      resolve_schedule_policy(st, SchedulePolicy::kAuto, env_grain);
  // Candidate generation honors the bitwise-invisibility contract in the
  // header comment: only variants bitwise-identical to the untuned run may
  // race.
  std::vector<TuneCandidate> cands;
  if (proxy == TuneProxy::kSddmmLike) {
    // Per-edge output writes: every policy (and SELL) lands the same bits.
    cands.push_back(
        {SchedulePolicy::kRowParallel, env_grain, SparseFormat::kCsr});
    if (st.nnz >= kTuneMinChunkedNnz) {
      for (const SchedulePolicy p :
           {SchedulePolicy::kEdgeBalanced, SchedulePolicy::kHybridBinned}) {
        for (const index_t g : {index_t(256), kDefaultScheduleGrain}) {
          cands.push_back({p, g, SparseFormat::kCsr});
        }
      }
    }
    if (supports_sell && st.nnz > 0) {
      cands.push_back(
          {SchedulePolicy::kRowParallel, env_grain, SparseFormat::kSell});
    }
  } else if (base == SchedulePolicy::kRowParallel) {
    // Row reductions on a row-parallel baseline: the bitwise class is
    // row-at-a-time CSR edge order — race the storage formats within it.
    cands.push_back(
        {SchedulePolicy::kRowParallel, env_grain, SparseFormat::kCsr});
    if (supports_sell && st.nnz > 0) {
      cands.push_back(
          {SchedulePolicy::kRowParallel, env_grain, SparseFormat::kSell});
    }
    if (supports_bcsr && st.nnz > 0 && bcsr_for(a)->valid()) {
      cands.push_back(
          {SchedulePolicy::kRowParallel, env_grain, SparseFormat::kBcsr});
    }
  } else {
    // Chunked baseline: the split-row fold order IS the result, so the only
    // bitwise-equal variant is the baseline decomposition itself. Confirm it
    // (the timed sample still prices it for the roofline) rather than race
    // variants that would move the bits.
    cands.push_back({base, env_grain, SparseFormat::kCsr});
  }

  // Proxy operands: one feature block per gather side (SDDMM x_i reads by
  // row, SpMM/SDDMM y_j by column — distinct extents on rectangular local
  // blocks), with deterministic non-trivial values.
  auto make_operand = [kk](index_t n) {
    DenseMatrix<T> m(std::max<index_t>(n, 1), kk);
    for (index_t i = 0; i < m.rows(); ++i) {
      for (index_t g = 0; g < kk; ++g) {
        m(i, g) = T(1) + T((i + g) % 7) * T(0.125);
      }
    }
    return m;
  };
  const DenseMatrix<T> hx = make_operand(a.rows());
  const DenseMatrix<T> hy = make_operand(a.cols());
  DenseMatrix<T> out(a.rows(), kk, T(0));
  std::vector<T> edge_out(proxy == TuneProxy::kSddmmLike
                              ? static_cast<std::size_t>(a.nnz())
                              : std::size_t(0));

  auto& reg = obs::MetricsRegistry::global();
  obs::Histogram& hist =
      reg.histogram(std::string("tune.") + kernel + ".sample_ns");
  TuneCandidate best = cands.front();
  std::uint64_t best_ns = ~std::uint64_t(0);
  for (const TuneCandidate& cand : cands) {
    // Candidate schedules are built locally, never cached on the matrix —
    // only the winner earns the cache slot via schedule_for below.
    const KernelSchedule cs = KernelSchedule::build(
        a.row_ptr(),
        cand.format == SparseFormat::kCsr ? cand.policy
                                          : SchedulePolicy::kRowParallel,
        cand.grain);
    std::array<std::uint64_t, kTuneReps> t{};
    for (int rep = 0; rep < kTuneReps; ++rep) {
      const std::uint64_t t0 = obs::detail::now_ns();
      run_tune_proxy(a, kk, proxy, cand, cs, hx, hy, out, edge_out);
      t[static_cast<std::size_t>(rep)] = obs::detail::now_ns() - t0;
      hist.record(t[static_cast<std::size_t>(rep)]);
    }
    std::sort(t.begin(), t.end());
    const std::uint64_t med = t[kTuneReps / 2];
    if (med < best_ns) {
      best_ns = med;
      best = cand;
    }
  }
  const std::uint64_t total =
      static_cast<std::uint64_t>(cands.size()) * kTuneReps;
  reg.counter(std::string("tune.") + kernel + ".samples").add(total);
  reg.counter("tune.samples").add(total);
  return TunedChoice{best.policy, best.grain, best.format, best_ns};
}

// The full tuner decision for one kernel call: warm cache -> memoized
// choice; cold + frozen -> heuristic fallback (never sampled, never
// stored); cold + live -> sample, memoize, persist.
template <typename T>
TunedChoice tuned_choice(const char* kernel, const CsrMatrix<T>& a, index_t k,
                         TuneProxy proxy, bool supports_sell,
                         bool supports_bcsr, TuneMode mode) {
  auto& cache = TuningCache::global();
  cache.sync_with_env();
  const ScheduleStats st = tune_stats_for(a);
  // The signature carries the effective grain and the baseline policy it
  // resolves: the baseline fixes the bitwise-equivalence class the
  // candidates raced in, so a choice sampled under one AGNN_SCHEDULE_GRAIN
  // (say, a row-parallel baseline at the 1024 default) must miss — and
  // re-sample — under a grain whose baseline is a different decomposition
  // (say, hybrid-binned at 64). Serving a stale cell across that boundary
  // would let AGNN_TUNE change result bits.
  const index_t env_grain = schedule_grain_from_env();
  const GraphSignature sig = make_graph_signature(st, k, env_grain);
  auto& reg = obs::MetricsRegistry::global();
  if (mode != TuneMode::kForceResample) {
    if (auto hit = cache.lookup(kernel, sig)) {
      reg.counter("tune.cache.hits").add(1);
      return *hit;
    }
    reg.counter("tune.cache.misses").add(1);
  }
  if (tune_frozen()) {
    reg.counter("tune.frozen_fallbacks").add(1);
    // The documented fallback is the auto heuristics — BOTH axes: the
    // schedule resolves first, then the AGNN_FORMAT=auto rule picks SELL
    // for large row-parallel reductions (resolve_dispatch rule 5). Pinning
    // CSR here would silently run the slower scalar path on every unseen
    // signature of a frozen InferenceServer.
    TunedChoice c;
    c.grain = env_grain;
    c.policy = resolve_schedule_policy(st, SchedulePolicy::kAuto, c.grain);
    c.format = (supports_sell && c.policy == SchedulePolicy::kRowParallel &&
                st.nnz >= kFormatAutoMinNnz)
                   ? SparseFormat::kSell
                   : SparseFormat::kCsr;
    return c;
  }
  const TunedChoice c = sample_candidates(kernel, a, k, proxy, supports_sell,
                                          supports_bcsr, st);
  cache.store(kernel, sig, c);
  reg.gauge(std::string("tune.") + kernel + ".choice")
      .set(static_cast<double>(encode_tuned_choice(c)));
  if (obs::Tracer::enabled()) {
    obs::Tracer::instance().instant(
        "tune.sampled", obs::SpanCategory::kKernel,
        static_cast<std::uint64_t>(encode_tuned_choice(c)), 0);
  }
  return c;
}

// ---- the per-call dispatch resolution --------------------------------------
// Every scheduled kernel entry point routes through this: it owns the
// precedence rules in the header comment and returns a concrete (format,
// schedule) pair. `sched` is non-null in every case that can reach a scalar
// path (tuned blocked choices still carry a schedule so a bcsr-invalid
// fallback has one to run on).

struct ResolvedDispatch {
  SparseFormat format = SparseFormat::kCsr;
  const KernelSchedule* sched = nullptr;
};

template <typename T>
ResolvedDispatch resolve_dispatch(const char* kernel, const CsrMatrix<T>& a,
                                  index_t k, TuneProxy proxy,
                                  bool supports_sell, bool supports_bcsr,
                                  const KernelSchedule* explicit_sched,
                                  std::shared_ptr<const KernelSchedule>& owned) {
  ResolvedDispatch r;
  const TuneMode mode = tune_mode_from_env();  // strict: throws on a typo
  const bool degenerate = a.rows() == 0 || a.nnz() == 0;
  const bool has_blocked = supports_sell || supports_bcsr;

  // Axis pins (precedence rules 1-3). An unparseable AGNN_FORMAT keeps the
  // csr default without pinning, matching sparse_format_from_env's
  // tolerance; AGNN_TUNE itself is strict.
  SparseFormat env_fmt = SparseFormat::kCsr;
  bool fmt_pinned = false;
  bool fmt_auto = false;
  if (const char* e = std::getenv("AGNN_FORMAT")) {
    SparseFormat f = SparseFormat::kCsr;
    if (parse_sparse_format(e, f)) {
      if (f == SparseFormat::kAuto) {
        fmt_auto = true;
      } else {
        env_fmt = f;
        fmt_pinned = true;
      }
    }
  }
  const SchedulePolicy env_policy = schedule_policy_from_env();
  const index_t env_grain = schedule_grain_from_env();
  const bool sched_pinned =
      explicit_sched != nullptr || env_policy != SchedulePolicy::kAuto;

  // Rule 4: both axes free and the tuner is live -> it owns the decision.
  if (mode != TuneMode::kOff && !degenerate && !fmt_pinned && !sched_pinned) {
    const TunedChoice c = tuned_choice(kernel, a, k, proxy, supports_sell,
                                       supports_bcsr, mode);
    r.format = c.format;
    owned = schedule_for(a, c.policy, c.grain);
    r.sched = owned.get();
    return r;
  }

  // Rules 1-3 and 5: heuristics, schedule first.
  if (explicit_sched != nullptr) {
    r.sched = explicit_sched;
  } else {
    owned = schedule_for(a, env_policy, env_grain);
    r.sched = owned.get();
  }
  if (!has_blocked || degenerate) return r;  // format stays csr
  if (fmt_pinned) {
    r.format = env_fmt;
  } else if (fmt_auto) {
    r.format = (r.sched->row_parallel() && a.nnz() >= kFormatAutoMinNnz)
                   ? SparseFormat::kSell
                   : SparseFormat::kCsr;
  }
  return r;
}

// Shorthand for kernels with no blocked variant — only the schedule axis is
// tunable.
template <typename T>
const KernelSchedule* resolve_tuned_schedule(
    const char* kernel, const CsrMatrix<T>& a, index_t k, TuneProxy proxy,
    const KernelSchedule* explicit_sched,
    std::shared_ptr<const KernelSchedule>& owned) {
  return resolve_dispatch(kernel, a, k, proxy, false, false, explicit_sched,
                          owned)
      .sched;
}

}  // namespace detail

}  // namespace agnn
