// CsrMatrix<T>: compressed-sparse-row matrix.
//
// This is the n x n sparse matrix of Table 1 — it stores either the graph
// adjacency structure or the per-edge attention scores Psi. Every sparse
// kernel in the project (SpMM, SDDMM, fused Psi, graph softmax) runs on CSR.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "tensor/coo_matrix.hpp"
#include "tensor/common.hpp"
#include "tensor/dense_matrix.hpp"

namespace agnn {

// Defined in tensor/schedule.hpp; the CSR only carries an opaque cache slot.
class KernelSchedule;

// Defined in tensor/sell_matrix.hpp / tensor/bcsr_matrix.hpp; like the
// schedule, the CSR only carries opaque cache slots for its blocked-format
// conversions. The cached objects are pattern-only (kernels read values
// through their src() maps from the live CSR value array), so in-place value
// mutation via vals_mutable() never makes them stale.
template <typename U>
class SellCSigmaMatrix;
template <typename U>
class BcsrMatrix;

template <typename T>
class CsrMatrix {
 public:
  using value_type = T;

  CsrMatrix() = default;

  // The schedule cache makes these non-defaultable: pattern and values copy
  // or move as before, and the cached schedule travels with them (a copy has
  // the same pattern, so the same schedule applies). The cache slot is an
  // atomic shared_ptr because distinct rank threads may run kernels on one
  // shared const CsrMatrix concurrently.
  CsrMatrix(const CsrMatrix& o)
      : n_rows_(o.n_rows_),
        n_cols_(o.n_cols_),
        row_ptr_(o.row_ptr_),
        col_idx_(o.col_idx_),
        vals_(o.vals_) {
    copy_caches_from(o);
  }

  CsrMatrix& operator=(const CsrMatrix& o) {
    if (this != &o) {
      n_rows_ = o.n_rows_;
      n_cols_ = o.n_cols_;
      row_ptr_ = o.row_ptr_;
      col_idx_ = o.col_idx_;
      vals_ = o.vals_;
      copy_caches_from(o);
    }
    return *this;
  }

  CsrMatrix(CsrMatrix&& o) noexcept
      : n_rows_(o.n_rows_),
        n_cols_(o.n_cols_),
        row_ptr_(std::move(o.row_ptr_)),
        col_idx_(std::move(o.col_idx_)),
        vals_(std::move(o.vals_)) {
    copy_caches_from(o);
  }

  CsrMatrix& operator=(CsrMatrix&& o) noexcept {
    if (this != &o) {
      n_rows_ = o.n_rows_;
      n_cols_ = o.n_cols_;
      row_ptr_ = std::move(o.row_ptr_);
      col_idx_ = std::move(o.col_idx_);
      vals_ = std::move(o.vals_);
      copy_caches_from(o);
    }
    return *this;
  }

  ~CsrMatrix() = default;

  CsrMatrix(index_t n_rows, index_t n_cols, std::vector<index_t> row_ptr,
            std::vector<index_t> col_idx, std::vector<T> vals)
      : n_rows_(n_rows),
        n_cols_(n_cols),
        row_ptr_(std::move(row_ptr)),
        col_idx_(std::move(col_idx)),
        vals_(std::move(vals)) {
    AGNN_ASSERT(static_cast<index_t>(row_ptr_.size()) == n_rows_ + 1,
                "row_ptr must have n_rows+1 entries");
    AGNN_ASSERT(col_idx_.size() == vals_.size(), "col_idx/vals size mismatch");
    AGNN_ASSERT(row_ptr_.back() == static_cast<index_t>(col_idx_.size()),
                "row_ptr must end at nnz");
  }

  static CsrMatrix from_coo(const CooMatrix<T>& coo_in) {
    CooMatrix<T> coo = coo_in;
    coo.sort();
    CsrMatrix csr;
    csr.n_rows_ = coo.n_rows;
    csr.n_cols_ = coo.n_cols;
    csr.row_ptr_.assign(static_cast<std::size_t>(coo.n_rows + 1), 0);
    csr.col_idx_.resize(coo.rows.size());
    csr.vals_.resize(coo.rows.size());
    for (std::size_t e = 0; e < coo.rows.size(); ++e) {
      AGNN_ASSERT(coo.rows[e] >= 0 && coo.rows[e] < coo.n_rows, "row index out of range");
      AGNN_ASSERT(coo.cols[e] >= 0 && coo.cols[e] < coo.n_cols, "col index out of range");
      csr.row_ptr_[static_cast<std::size_t>(coo.rows[e]) + 1]++;
      csr.col_idx_[e] = coo.cols[e];
      csr.vals_[e] = coo.vals[e];
    }
    for (std::size_t i = 1; i < csr.row_ptr_.size(); ++i) {
      csr.row_ptr_[i] += csr.row_ptr_[i - 1];
    }
    return csr;
  }

  CooMatrix<T> to_coo() const {
    CooMatrix<T> coo;
    coo.n_rows = n_rows_;
    coo.n_cols = n_cols_;
    coo.reserve(static_cast<std::size_t>(nnz()));
    for (index_t i = 0; i < n_rows_; ++i) {
      for (index_t e = row_ptr_[static_cast<std::size_t>(i)];
           e < row_ptr_[static_cast<std::size_t>(i) + 1]; ++e) {
        coo.push_back(i, col_idx_[static_cast<std::size_t>(e)],
                      vals_[static_cast<std::size_t>(e)]);
      }
    }
    return coo;
  }

  index_t rows() const { return n_rows_; }
  index_t cols() const { return n_cols_; }
  index_t nnz() const { return static_cast<index_t>(col_idx_.size()); }

  // Backing-storage capacities, used by the Workspace pool to decide whether
  // an existing buffer can absorb a pattern without allocating.
  index_t nnz_capacity() const { return static_cast<index_t>(vals_.capacity()); }
  index_t rows_capacity() const {
    return static_cast<index_t>(row_ptr_.capacity()) - 1;
  }

  void reserve(index_t rows, index_t nnz) {
    row_ptr_.reserve(static_cast<std::size_t>(rows + 1));
    col_idx_.reserve(static_cast<std::size_t>(nnz));
    vals_.reserve(static_cast<std::size_t>(nnz));
  }

  std::span<const index_t> row_ptr() const { return row_ptr_; }
  std::span<const index_t> col_idx() const { return col_idx_; }
  std::span<const T> vals() const { return vals_; }
  std::span<T> vals_mutable() { return vals_; }

  index_t row_begin(index_t i) const { return row_ptr_[static_cast<std::size_t>(i)]; }
  index_t row_end(index_t i) const { return row_ptr_[static_cast<std::size_t>(i) + 1]; }
  index_t row_nnz(index_t i) const { return row_end(i) - row_begin(i); }
  index_t col_at(index_t e) const { return col_idx_[static_cast<std::size_t>(e)]; }
  T val_at(index_t e) const { return vals_[static_cast<std::size_t>(e)]; }
  T& val_at(index_t e) { return vals_[static_cast<std::size_t>(e)]; }

  // A structural copy with the same sparsity pattern and all values set to v.
  // The pattern buffers are shared copies (cheap vectors), values fresh.
  CsrMatrix with_values(T v) const {
    CsrMatrix out = *this;
    std::fill(out.vals_.begin(), out.vals_.end(), v);
    return out;
  }

  bool same_pattern(const CsrMatrix& other) const {
    return n_rows_ == other.n_rows_ && n_cols_ == other.n_cols_ &&
           row_ptr_ == other.row_ptr_ && col_idx_ == other.col_idx_;
  }

  // Transpose via a counting pass; O(nnz + n). The backward pass runs on the
  // reversed graph (Section 5.2), so this is on the training hot path.
  //
  // The out-parameter form writes into caller-owned storage and allocates
  // nothing once `out`'s buffers have the capacity (Workspace-friendly). It
  // avoids the usual scratch cursor vector: row_ptr_ entries themselves serve
  // as insertion cursors, then get shifted back down by one at the end.
  void transposed_into(CsrMatrix& out) const {
    AGNN_ASSERT(&out != this, "transposed_into cannot alias its input");
    out.invalidate_schedule_cache();  // out's pattern is rebuilt in place
    out.n_rows_ = n_cols_;
    out.n_cols_ = n_rows_;
    out.row_ptr_.assign(static_cast<std::size_t>(n_cols_ + 1), 0);
    out.col_idx_.resize(col_idx_.size());
    out.vals_.resize(vals_.size());
    auto& rp = out.row_ptr_;
    for (const index_t c : col_idx_) rp[static_cast<std::size_t>(c) + 1]++;
    for (std::size_t i = 1; i < rp.size(); ++i) rp[i] += rp[i - 1];
    for (index_t i = 0; i < n_rows_; ++i) {
      for (index_t e = row_begin(i); e < row_end(i); ++e) {
        const index_t c = col_at(e);
        const index_t pos = rp[static_cast<std::size_t>(c)]++;
        out.col_idx_[static_cast<std::size_t>(pos)] = i;
        out.vals_[static_cast<std::size_t>(pos)] = val_at(e);
      }
    }
    // Each rp[c] has advanced to rp[c+1]'s final value; shift back down.
    for (std::size_t c = rp.size() - 1; c > 0; --c) rp[c] = rp[c - 1];
    rp[0] = 0;
  }

  CsrMatrix transposed() const {
    CsrMatrix t;
    transposed_into(t);
    return t;
  }

  // Densify — only for tests and the "unfused" ablation reference; O(n^2).
  DenseMatrix<T> to_dense() const {
    DenseMatrix<T> d(n_rows_, n_cols_, T(0));
    for (index_t i = 0; i < n_rows_; ++i) {
      for (index_t e = row_begin(i); e < row_end(i); ++e) d(i, col_at(e)) += val_at(e);
    }
    return d;
  }

  // Extract the submatrix of rows [r0, r1) and columns [c0, c1), reindexed
  // to local coordinates. Used by the 2D block distribution of A.
  CsrMatrix block(index_t r0, index_t r1, index_t c0, index_t c1) const {
    AGNN_ASSERT(0 <= r0 && r0 <= r1 && r1 <= n_rows_, "bad row block");
    AGNN_ASSERT(0 <= c0 && c0 <= c1 && c1 <= n_cols_, "bad col block");
    CsrMatrix out;
    out.n_rows_ = r1 - r0;
    out.n_cols_ = c1 - c0;
    out.row_ptr_.assign(static_cast<std::size_t>(out.n_rows_ + 1), 0);
    for (index_t i = r0; i < r1; ++i) {
      index_t cnt = 0;
      for (index_t e = row_begin(i); e < row_end(i); ++e) {
        const index_t c = col_at(e);
        if (c >= c0 && c < c1) ++cnt;
      }
      out.row_ptr_[static_cast<std::size_t>(i - r0) + 1] = cnt;
    }
    for (std::size_t i = 1; i < out.row_ptr_.size(); ++i) {
      out.row_ptr_[i] += out.row_ptr_[i - 1];
    }
    out.col_idx_.resize(static_cast<std::size_t>(out.row_ptr_.back()));
    out.vals_.resize(out.col_idx_.size());
    for (index_t i = r0; i < r1; ++i) {
      index_t pos = out.row_ptr_[static_cast<std::size_t>(i - r0)];
      for (index_t e = row_begin(i); e < row_end(i); ++e) {
        const index_t c = col_at(e);
        if (c >= c0 && c < c1) {
          out.col_idx_[static_cast<std::size_t>(pos)] = c - c0;
          out.vals_[static_cast<std::size_t>(pos)] = val_at(e);
          ++pos;
        }
      }
    }
    return out;
  }

  template <typename U>
  CsrMatrix<U> cast() const {
    std::vector<U> v(vals_.size());
    for (std::size_t i = 0; i < vals_.size(); ++i) v[i] = static_cast<U>(vals_[i]);
    return CsrMatrix<U>(n_rows_, n_cols_, row_ptr_, col_idx_, std::move(v));
  }

  // --- kernel-schedule cache (tensor/schedule.hpp) -----------------------
  // The schedule is a pure function of the sparsity pattern plus the
  // requested (policy, grain); schedule_for() compares those and rebuilds on
  // mismatch. Mutating the pattern in place must invalidate the slots —
  // today transposed_into is the only such path. The slots are mutable: a
  // const matrix shared by rank threads still caches its schedules.
  //
  // One slot per *requested* policy (auto/row/edge/hybrid, indexed by the
  // SchedulePolicy integer value): the autotuner legitimately asks for
  // different concrete policies for different kernels on the same matrix,
  // and a single slot would thrash — every alternation pays the O(n + nnz)
  // rebuild. KernelSchedule is only forward-declared here, so the slot index
  // arrives as a plain int from schedule_for().
  static constexpr int kScheduleCacheSlots = 4;
  std::shared_ptr<const KernelSchedule> cached_schedule(int slot) const {
    return schedule_cache_[static_cast<std::size_t>(slot)].load(
        std::memory_order_acquire);
  }
  // No-slot probe: any cached schedule (the stats it carries are a pure
  // pattern function, identical across slots).
  std::shared_ptr<const KernelSchedule> cached_schedule() const {
    for (const auto& s : schedule_cache_) {
      if (auto p = s.load(std::memory_order_acquire)) return p;
    }
    return nullptr;
  }
  void cache_schedule(std::shared_ptr<const KernelSchedule> s,
                      int slot = 0) const {
    schedule_cache_[static_cast<std::size_t>(slot)].store(
        std::move(s), std::memory_order_release);
  }
  void invalidate_schedule_cache() const {
    for (auto& s : schedule_cache_) {
      s.store(nullptr, std::memory_order_release);
    }
    invalidate_format_cache();
  }

  // --- blocked-format cache (tensor/format.hpp) --------------------------
  // Pattern-only SELL-C-σ / BCSR conversions, built lazily by sell_for() /
  // bcsr_for(). Same lifecycle as the schedule cache: pure functions of the
  // sparsity pattern, shared across copies, invalidated when the pattern is
  // rebuilt in place. Value mutation needs no invalidation — the cached
  // objects carry no values (kernels read via src() from the live CSR).
  std::shared_ptr<const SellCSigmaMatrix<T>> cached_sell() const {
    return sell_cache_.load(std::memory_order_acquire);
  }
  void cache_sell(std::shared_ptr<const SellCSigmaMatrix<T>> s) const {
    sell_cache_.store(std::move(s), std::memory_order_release);
  }
  std::shared_ptr<const BcsrMatrix<T>> cached_bcsr() const {
    return bcsr_cache_.load(std::memory_order_acquire);
  }
  void cache_bcsr(std::shared_ptr<const BcsrMatrix<T>> b) const {
    bcsr_cache_.store(std::move(b), std::memory_order_release);
  }
  void invalidate_format_cache() const {
    sell_cache_.store(nullptr, std::memory_order_release);
    bcsr_cache_.store(nullptr, std::memory_order_release);
  }

 private:
  void copy_caches_from(const CsrMatrix& o) {
    for (int slot = 0; slot < kScheduleCacheSlots; ++slot) {
      schedule_cache_[static_cast<std::size_t>(slot)].store(
          o.cached_schedule(slot), std::memory_order_release);
    }
    sell_cache_.store(o.cached_sell(), std::memory_order_release);
    bcsr_cache_.store(o.cached_bcsr(), std::memory_order_release);
  }

  index_t n_rows_ = 0;
  index_t n_cols_ = 0;
  std::vector<index_t> row_ptr_{0};
  std::vector<index_t> col_idx_;
  std::vector<T> vals_;
  mutable std::array<std::atomic<std::shared_ptr<const KernelSchedule>>,
                     kScheduleCacheSlots>
      schedule_cache_{};
  mutable std::atomic<std::shared_ptr<const SellCSigmaMatrix<T>>> sell_cache_{};
  mutable std::atomic<std::shared_ptr<const BcsrMatrix<T>>> bcsr_cache_{};
};

}  // namespace agnn
