// Node-classification datasets: container, synthetic citation-style
// generator, binary save/load, split protocol, and an evaluation/early-
// stopping training loop — the end-to-end workflow a downstream user runs
// (the Planetoid-style protocol of the GNN benchmarks the paper's
// evaluation section cites [28, 41]).
#pragma once

#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/loss.hpp"
#include "core/model.hpp"
#include "graph/graph.hpp"
#include "graph/sbm.hpp"

namespace agnn {

template <typename T>
struct NodeClassificationDataset {
  CsrMatrix<T> adj;
  DenseMatrix<T> features;
  std::vector<index_t> labels;
  std::vector<std::uint8_t> train_mask, val_mask, test_mask;
  index_t num_classes = 0;

  index_t num_vertices() const { return adj.rows(); }
  index_t feature_dim() const { return features.cols(); }
};

// Disjoint train/val/test split by fractions (remainder goes to test).
struct SplitFractions {
  double train = 0.6;
  double val = 0.2;
};

template <typename T>
void assign_split(NodeClassificationDataset<T>& ds, const SplitFractions& frac,
                  std::uint64_t seed) {
  AGNN_ASSERT(frac.train >= 0 && frac.val >= 0 && frac.train + frac.val <= 1.0,
              "invalid split fractions");
  const index_t n = ds.num_vertices();
  ds.train_mask.assign(static_cast<std::size_t>(n), 0);
  ds.val_mask.assign(static_cast<std::size_t>(n), 0);
  ds.test_mask.assign(static_cast<std::size_t>(n), 0);
  Rng rng(seed);
  for (index_t v = 0; v < n; ++v) {
    const double r = rng.next_double();
    if (r < frac.train) {
      ds.train_mask[static_cast<std::size_t>(v)] = 1;
    } else if (r < frac.train + frac.val) {
      ds.val_mask[static_cast<std::size_t>(v)] = 1;
    } else {
      ds.test_mask[static_cast<std::size_t>(v)] = 1;
    }
  }
}

// A synthetic citation-network-style dataset: SBM community structure plus
// sparse "bag of words" features whose active dimensions correlate with the
// community — qualitatively the structure of Cora/Citeseer-class datasets.
template <typename T>
NodeClassificationDataset<T> make_synthetic_citation(index_t n, index_t classes,
                                                     index_t feature_dim,
                                                     std::uint64_t seed) {
  AGNN_ASSERT(feature_dim >= classes, "need at least one feature per class");
  const auto sbm = graph::generate_sbm({.n = n,
                                        .communities = classes,
                                        .p_in = 8.0 / static_cast<double>(n),
                                        .p_out = 0.8 / static_cast<double>(n),
                                        .seed = seed});
  graph::BuildOptions opt;
  opt.add_self_loops = true;
  NodeClassificationDataset<T> ds;
  ds.adj = graph::build_graph<T>(sbm.edges, opt).adj;
  ds.labels = sbm.labels;
  ds.num_classes = classes;
  ds.features = DenseMatrix<T>(n, feature_dim, T(0));
  Rng rng(seed + 1);
  // Each class owns a band of feature dimensions; a vertex activates ~20%
  // of its class band plus ~5% background noise (sparse binary features).
  const index_t band = feature_dim / classes;
  for (index_t v = 0; v < n; ++v) {
    const index_t c = ds.labels[static_cast<std::size_t>(v)];
    for (index_t f = 0; f < feature_dim; ++f) {
      const bool in_band = f / band == c;
      const double p = in_band ? 0.20 : 0.05;
      if (rng.next_double() < p) ds.features(v, f) = T(1);
    }
  }
  assign_split(ds, SplitFractions{}, seed + 2);
  return ds;
}

// ---- binary container I/O -------------------------------------------------------

namespace detail {
constexpr char kDatasetMagic[8] = {'A', 'G', 'N', 'N', 'D', 'S', 'T', '1'};
}  // namespace detail

template <typename T>
void save_dataset(const std::string& path, const NodeClassificationDataset<T>& ds) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  AGNN_ASSERT(out.good(), "cannot open dataset file for writing: " + path);
  out.write(detail::kDatasetMagic, sizeof(detail::kDatasetMagic));
  const index_t n = ds.num_vertices(), k = ds.feature_dim(), nnz = ds.adj.nnz();
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  out.write(reinterpret_cast<const char*>(&k), sizeof(k));
  out.write(reinterpret_cast<const char*>(&nnz), sizeof(nnz));
  out.write(reinterpret_cast<const char*>(&ds.num_classes), sizeof(index_t));
  const auto coo = ds.adj.to_coo();
  out.write(reinterpret_cast<const char*>(coo.rows.data()),
            static_cast<std::streamsize>(coo.rows.size() * sizeof(index_t)));
  out.write(reinterpret_cast<const char*>(coo.cols.data()),
            static_cast<std::streamsize>(coo.cols.size() * sizeof(index_t)));
  for (index_t i = 0; i < ds.features.size(); ++i) {
    const double v = static_cast<double>(ds.features.data()[i]);
    out.write(reinterpret_cast<const char*>(&v), sizeof(v));
  }
  out.write(reinterpret_cast<const char*>(ds.labels.data()),
            static_cast<std::streamsize>(ds.labels.size() * sizeof(index_t)));
  for (const auto* mask : {&ds.train_mask, &ds.val_mask, &ds.test_mask}) {
    out.write(reinterpret_cast<const char*>(mask->data()),
              static_cast<std::streamsize>(mask->size()));
  }
  AGNN_ASSERT(out.good(), "dataset write failed: " + path);
}

template <typename T>
NodeClassificationDataset<T> load_dataset(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  AGNN_ASSERT(in.good(), "cannot open dataset file: " + path);
  char magic[8];
  in.read(magic, sizeof(magic));
  AGNN_ASSERT(in.good() && std::memcmp(magic, detail::kDatasetMagic, 8) == 0,
              "bad magic in dataset file: " + path);
  index_t n = 0, k = 0, nnz = 0;
  NodeClassificationDataset<T> ds;
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  in.read(reinterpret_cast<char*>(&k), sizeof(k));
  in.read(reinterpret_cast<char*>(&nnz), sizeof(nnz));
  in.read(reinterpret_cast<char*>(&ds.num_classes), sizeof(index_t));
  AGNN_ASSERT(in.good() && n > 0 && k > 0 && nnz >= 0, "corrupt dataset header");
  CooMatrix<T> coo;
  coo.n_rows = coo.n_cols = n;
  coo.rows.resize(static_cast<std::size_t>(nnz));
  coo.cols.resize(static_cast<std::size_t>(nnz));
  coo.vals.assign(static_cast<std::size_t>(nnz), T(1));
  in.read(reinterpret_cast<char*>(coo.rows.data()),
          static_cast<std::streamsize>(coo.rows.size() * sizeof(index_t)));
  in.read(reinterpret_cast<char*>(coo.cols.data()),
          static_cast<std::streamsize>(coo.cols.size() * sizeof(index_t)));
  ds.adj = CsrMatrix<T>::from_coo(coo);
  ds.features = DenseMatrix<T>(n, k);
  for (index_t i = 0; i < ds.features.size(); ++i) {
    double v = 0;
    in.read(reinterpret_cast<char*>(&v), sizeof(v));
    ds.features.data()[i] = static_cast<T>(v);
  }
  ds.labels.resize(static_cast<std::size_t>(n));
  in.read(reinterpret_cast<char*>(ds.labels.data()),
          static_cast<std::streamsize>(ds.labels.size() * sizeof(index_t)));
  for (auto* mask : {&ds.train_mask, &ds.val_mask, &ds.test_mask}) {
    mask->resize(static_cast<std::size_t>(n));
    in.read(reinterpret_cast<char*>(mask->data()),
            static_cast<std::streamsize>(mask->size()));
  }
  AGNN_ASSERT(in.good(), "truncated dataset file: " + path);
  return ds;
}

// ---- evaluation protocol -----------------------------------------------------------

struct EvalResult {
  double train_accuracy = 0;
  double val_accuracy = 0;
  double test_accuracy = 0;
};

template <typename T>
EvalResult evaluate(const GnnModel<T>& model, const NodeClassificationDataset<T>& ds) {
  const CsrMatrix<T> adj = model.config().kind == ModelKind::kGCN
                               ? graph::sym_normalize(ds.adj)
                               : ds.adj;
  const DenseMatrix<T> h = model.infer(adj, ds.features);
  return {accuracy(h, std::span<const index_t>(ds.labels), ds.train_mask),
          accuracy(h, std::span<const index_t>(ds.labels), ds.val_mask),
          accuracy(h, std::span<const index_t>(ds.labels), ds.test_mask)};
}

struct FitOptions {
  int max_epochs = 300;
  int patience = 30;      // stop after this many epochs without val improvement
  double dropout = 0.0;
  int eval_every = 5;
};

struct FitHistory {
  std::vector<double> train_loss;
  std::vector<double> val_accuracy;
  int best_epoch = 0;
  double best_val_accuracy = 0;
  bool early_stopped = false;
};

// Train with validation-based early stopping (best-effort: the model is
// left at its final — not best — epoch; checkpoint externally via
// serialization.hpp if the best weights are needed).
template <typename T>
FitHistory fit(GnnModel<T>& model, const NodeClassificationDataset<T>& ds,
               Optimizer<T>& opt, const FitOptions& options = {}) {
  const CsrMatrix<T> adj = model.config().kind == ModelKind::kGCN
                               ? graph::sym_normalize(ds.adj)
                               : ds.adj;
  const CsrMatrix<T> adj_t = adj.transposed();
  FitHistory history;
  int since_best = 0;
  for (int epoch = 0; epoch < options.max_epochs; ++epoch) {
    std::vector<LayerCache<T>> caches;
    const DenseMatrix<T> h = model.forward(adj, ds.features, caches,
                                           options.dropout,
                                           static_cast<std::uint64_t>(epoch));
    const LossResult<T> loss = softmax_cross_entropy<T>(
        h, ds.labels, ds.train_mask);
    history.train_loss.push_back(static_cast<double>(loss.value));
    const auto grads = model.backward(adj, adj_t, caches, loss.grad);
    model.apply_gradients(grads, opt);

    if (epoch % options.eval_every == 0) {
      const double val =
          accuracy(model.infer(adj, ds.features),
                   std::span<const index_t>(ds.labels), ds.val_mask);
      history.val_accuracy.push_back(val);
      if (val > history.best_val_accuracy) {
        history.best_val_accuracy = val;
        history.best_epoch = epoch;
        since_best = 0;
      } else {
        since_best += options.eval_every;
        if (since_best >= options.patience) {
          history.early_stopped = true;
          break;
        }
      }
    }
  }
  return history;
}

}  // namespace agnn
