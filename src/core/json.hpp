// Minimal JSON value + recursive-descent parser.
//
// Exists so the bench-report layer (obs/bench_report.hpp, the bench_compare
// tool) can read the machine-readable benchmark JSON without growing a
// third-party dependency. Scope is deliberately small: the full JSON value
// grammar (objects, arrays, strings with the standard escapes, numbers,
// true/false/null), UTF-8 passed through verbatim, no comments, no
// trailing commas. Numbers parse as double — benchmark wall-times and
// counter snapshots fit double's 2^53 integer range; this is a report
// format, not a wire protocol.
//
// Parse errors throw std::runtime_error with a byte offset; the tools treat
// a malformed report as a hard failure (a truncated baseline must never
// pass a perf gate by accident).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace agnn::json {

class Value;
using Array = std::vector<Value>;
// std::map: deterministic iteration order, matching the registry's sorted
// dump convention.
using Object = std::map<std::string, Value>;

class Value {
 public:
  enum class Type : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  Value() = default;
  Value(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)
  Value(bool b) : type_(Type::kBool), bool_(b) {}  // NOLINT
  Value(double n) : type_(Type::kNumber), num_(n) {}  // NOLINT
  Value(std::string s)  // NOLINT
      : type_(Type::kString), str_(std::move(s)) {}
  Value(const char* s) : type_(Type::kString), str_(s) {}  // NOLINT
  Value(Array a)  // NOLINT
      : type_(Type::kArray), arr_(std::make_shared<Array>(std::move(a))) {}
  Value(Object o)  // NOLINT
      : type_(Type::kObject), obj_(std::make_shared<Object>(std::move(o))) {}

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool() const {
    require(Type::kBool, "bool");
    return bool_;
  }
  double as_number() const {
    require(Type::kNumber, "number");
    return num_;
  }
  std::uint64_t as_u64() const {
    return static_cast<std::uint64_t>(as_number());
  }
  const std::string& as_string() const {
    require(Type::kString, "string");
    return str_;
  }
  const Array& as_array() const {
    require(Type::kArray, "array");
    return *arr_;
  }
  const Object& as_object() const {
    require(Type::kObject, "object");
    return *obj_;
  }

  // Object member access: `get` returns nullptr when absent, `at` throws.
  const Value* get(std::string_view key) const {
    const Object& o = as_object();
    const auto it = o.find(std::string(key));
    return it == o.end() ? nullptr : &it->second;
  }
  const Value& at(std::string_view key) const {
    const Value* v = get(key);
    if (v == nullptr) {
      throw std::runtime_error("json: missing key '" + std::string(key) + "'");
    }
    return *v;
  }

 private:
  void require(Type t, const char* what) const {
    if (type_ != t) {
      throw std::runtime_error(std::string("json: value is not a ") + what);
    }
  }

  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
  // shared_ptr keeps Value copyable without deep copies of large reports
  // (sub-values handed around by the comparers alias the parse tree).
  std::shared_ptr<Array> arr_;
  std::shared_ptr<Object> obj_;
};

// ---- writing --------------------------------------------------------------

inline void escape(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          const char* hex = "0123456789abcdef";
          os << "\\u00" << hex[(c >> 4) & 0xF] << hex[c & 0xF];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

// ---- parsing --------------------------------------------------------------

namespace detail {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("json: " + why + " at byte " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Value(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Value(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Value(nullptr);
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Object o;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(o));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      o.insert_or_assign(std::move(key), parse_value());
      skip_ws();
      const char d = peek();
      ++pos_;
      if (d == '}') return Value(std::move(o));
      if (d != ',') fail("expected ',' or '}' in object");
    }
  }

  Value parse_array() {
    expect('[');
    Array a;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(a));
    }
    while (true) {
      a.push_back(parse_value());
      skip_ws();
      const char d = peek();
      ++pos_;
      if (d == ']') return Value(std::move(a));
      if (d != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // Report strings are ASCII in practice; encode BMP code points as
          // UTF-8 and reject surrogates (no escaped astral-plane content in
          // bench reports).
          if (code >= 0xD800 && code <= 0xDFFF) fail("surrogate in \\u escape");
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    auto digits = [&] {
      const std::size_t d0 = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
      if (pos_ == d0) fail("expected digits");
    };
    digits();
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      digits();
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      digits();
    }
    return Value(std::stod(std::string(text_.substr(start, pos_ - start))));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace detail

inline Value parse(std::string_view text) {
  return detail::Parser(text).parse_document();
}

}  // namespace agnn::json
