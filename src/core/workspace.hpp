// Workspace<T>: a per-rank, size-bucketed buffer pool for hot-path tensors.
//
// Every kernel in src/tensor/ has an out-parameter overload that writes into
// caller-provided storage. The Workspace is where that storage comes from on
// the training hot path: engines acquire matrices, kernels resize them within
// capacity (no heap traffic), and RAII handles return them to the pool when
// they go out of scope. After a warm-up epoch the pool has one buffer per
// live intermediate, so steady-state training performs zero heap allocations.
//
// Pooling policy:
//  - Buffers are bucketed by floor(log2(element capacity)), so lookup touches
//    O(log max-size) buckets.
//  - acquire_* uses best-fit: the smallest pooled buffer whose capacity
//    covers the request. Because buckets partition capacities by power of
//    two, the best fit is the min-capacity qualifying entry of the lowest
//    qualifying non-empty bucket. Best-fit (rather than first-fit) keeps a
//    deterministic, periodic request sequence — which is exactly what a
//    training loop issues — mapping to the same buffers every epoch, which
//    is what makes the 100%-hit steady state reachable.
//  - The pool only grows (no trimming); `resident_bytes` / `peak_resident`
//    track what it holds so regressions are observable in benchmarks.
//
// Ownership convention (see DESIGN.md §8): the caller owns kernel outputs,
// the Workspace owns scratch, and anything acquired is returned automatically
// by the PooledDense / PooledCsr handle destructor. The Workspace is
// per-rank and NOT thread-safe: kernels parallelise internally with OpenMP,
// but acquire/release happens on the engine's driving thread only.
#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "tensor/common.hpp"
#include "tensor/csr_matrix.hpp"
#include "tensor/dense_matrix.hpp"

namespace agnn {

struct WorkspaceStats {
  std::uint64_t acquires = 0;         // total acquire_* calls
  std::uint64_t pool_hits = 0;        // served from pooled storage
  std::uint64_t pool_misses = 0;      // required a fresh heap allocation
  std::uint64_t bytes_acquired = 0;   // payload bytes handed out (hits + misses)
  std::uint64_t resident_bytes = 0;   // bytes of backing storage the pool has created
  std::uint64_t peak_resident_bytes = 0;

  double hit_rate() const {
    return acquires == 0 ? 1.0
                         : static_cast<double>(pool_hits) / static_cast<double>(acquires);
  }
};

template <typename T>
class Workspace;

// Move-only RAII handle over a pooled std::vector<T> (the n- and k-length
// vectors of the formulations: row norms, attention halves, row/col sums).
template <typename T>
class PooledVec {
 public:
  PooledVec() = default;
  PooledVec(Workspace<T>* ws, std::vector<T>&& v) : ws_(ws), v_(std::move(v)) {}
  PooledVec(const PooledVec&) = delete;
  PooledVec& operator=(const PooledVec&) = delete;
  PooledVec(PooledVec&& other) noexcept
      : ws_(std::exchange(other.ws_, nullptr)), v_(std::move(other.v_)) {}
  PooledVec& operator=(PooledVec&& other) noexcept {
    if (this != &other) {
      release();
      ws_ = std::exchange(other.ws_, nullptr);
      v_ = std::move(other.v_);
    }
    return *this;
  }
  ~PooledVec() { release(); }

  std::vector<T>& operator*() { return v_; }
  const std::vector<T>& operator*() const { return v_; }
  std::vector<T>* operator->() { return &v_; }
  const std::vector<T>* operator->() const { return &v_; }
  std::vector<T>& get() { return v_; }
  const std::vector<T>& get() const { return v_; }
  std::span<const T> cspan() const { return {v_.data(), v_.size()}; }

 private:
  void release();

  Workspace<T>* ws_ = nullptr;
  std::vector<T> v_;
};

// Move-only RAII handle over a pooled DenseMatrix. Dereference like a
// pointer; the buffer returns to its Workspace on destruction.
template <typename T>
class PooledDense {
 public:
  PooledDense() = default;
  PooledDense(Workspace<T>* ws, DenseMatrix<T>&& m) : ws_(ws), m_(std::move(m)) {}
  PooledDense(const PooledDense&) = delete;
  PooledDense& operator=(const PooledDense&) = delete;
  PooledDense(PooledDense&& other) noexcept
      : ws_(std::exchange(other.ws_, nullptr)), m_(std::move(other.m_)) {}
  PooledDense& operator=(PooledDense&& other) noexcept {
    if (this != &other) {
      release();
      ws_ = std::exchange(other.ws_, nullptr);
      m_ = std::move(other.m_);
    }
    return *this;
  }
  ~PooledDense() { release(); }

  DenseMatrix<T>& operator*() { return m_; }
  const DenseMatrix<T>& operator*() const { return m_; }
  DenseMatrix<T>* operator->() { return &m_; }
  const DenseMatrix<T>* operator->() const { return &m_; }
  DenseMatrix<T>& get() { return m_; }
  const DenseMatrix<T>& get() const { return m_; }

 private:
  void release();

  Workspace<T>* ws_ = nullptr;
  DenseMatrix<T> m_;
};

// Move-only RAII handle over a pooled CsrMatrix.
template <typename T>
class PooledCsr {
 public:
  PooledCsr() = default;
  PooledCsr(Workspace<T>* ws, CsrMatrix<T>&& m) : ws_(ws), m_(std::move(m)) {}
  PooledCsr(const PooledCsr&) = delete;
  PooledCsr& operator=(const PooledCsr&) = delete;
  PooledCsr(PooledCsr&& other) noexcept
      : ws_(std::exchange(other.ws_, nullptr)), m_(std::move(other.m_)) {}
  PooledCsr& operator=(PooledCsr&& other) noexcept {
    if (this != &other) {
      release();
      ws_ = std::exchange(other.ws_, nullptr);
      m_ = std::move(other.m_);
    }
    return *this;
  }
  ~PooledCsr() { release(); }

  CsrMatrix<T>& operator*() { return m_; }
  const CsrMatrix<T>& operator*() const { return m_; }
  CsrMatrix<T>* operator->() { return &m_; }
  const CsrMatrix<T>* operator->() const { return &m_; }
  CsrMatrix<T>& get() { return m_; }
  const CsrMatrix<T>& get() const { return m_; }

 private:
  void release();

  Workspace<T>* ws_ = nullptr;
  CsrMatrix<T> m_;
};

template <typename T>
class Workspace {
 public:
  // ~2^48 elements is far beyond anything addressable here; 49 buckets
  // covers every floor(log2(capacity)) we can see.
  static constexpr int kBuckets = 49;

  Workspace() : dense_pool_(kBuckets), csr_pool_(kBuckets), vec_pool_(kBuckets) {}
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  // A dense rows x cols buffer. Contents are unspecified; the out-parameter
  // kernels overwrite every element.
  PooledDense<T> acquire_dense(index_t rows, index_t cols) {
    AGNN_ASSERT(rows >= 0 && cols >= 0, "acquire_dense: bad shape");
    const index_t elems = rows * cols;
    ++stats_.acquires;
    stats_.bytes_acquired += static_cast<std::uint64_t>(elems) * sizeof(T);
    for (int b = bucket_of(elems); b < kBuckets; ++b) {
      auto& bucket = dense_pool_[static_cast<std::size_t>(b)];
      int best = -1;
      for (int i = 0; i < static_cast<int>(bucket.size()); ++i) {
        const index_t cap = bucket[static_cast<std::size_t>(i)].capacity();
        if (cap >= elems &&
            (best < 0 || cap < bucket[static_cast<std::size_t>(best)].capacity())) {
          best = i;
        }
      }
      if (best >= 0) {
        ++stats_.pool_hits;
        DenseMatrix<T> m = take(bucket, best);
        m.resize(rows, cols);
        return PooledDense<T>(this, std::move(m));
      }
    }
    ++stats_.pool_misses;
    add_resident(static_cast<std::uint64_t>(elems) * sizeof(T));
    DenseMatrix<T> m;
    m.reserve(elems);
    m.resize(rows, cols);
    return PooledDense<T>(this, std::move(m));
  }

  // A CSR buffer that is a full copy of `a` (pattern + values). Within
  // capacity, vector copy-assignment allocates nothing, so a steady-state
  // SDDMM-shaped acquire is heap-silent. Callers typically overwrite vals.
  PooledCsr<T> acquire_csr_like(const CsrMatrix<T>& a) {
    PooledCsr<T> h = acquire_csr(a.rows(), a.cols(), a.nnz());
    *h = a;
    return h;
  }

  // A CSR buffer with capacity for `rows` rows and `nnz` entries. Its
  // logical contents are whatever the pooled buffer last held — callers
  // rebuild it entirely (e.g. via transposed_into or copy-assignment).
  PooledCsr<T> acquire_csr(index_t rows, index_t cols, index_t nnz) {
    AGNN_ASSERT(rows >= 0 && cols >= 0 && nnz >= 0, "acquire_csr: bad shape");
    (void)cols;
    ++stats_.acquires;
    stats_.bytes_acquired += csr_bytes(rows, nnz);
    for (int b = bucket_of(nnz); b < kBuckets; ++b) {
      auto& bucket = csr_pool_[static_cast<std::size_t>(b)];
      int best = -1;
      for (int i = 0; i < static_cast<int>(bucket.size()); ++i) {
        const auto& cand = bucket[static_cast<std::size_t>(i)];
        if (cand.nnz_capacity() >= nnz && cand.rows_capacity() >= rows &&
            (best < 0 ||
             cand.nnz_capacity() < bucket[static_cast<std::size_t>(best)].nnz_capacity())) {
          best = i;
        }
      }
      if (best >= 0) {
        ++stats_.pool_hits;
        return PooledCsr<T>(this, take(bucket, best));
      }
    }
    ++stats_.pool_misses;
    add_resident(csr_bytes(rows, nnz));
    CsrMatrix<T> m;
    m.reserve(rows, nnz);
    return PooledCsr<T>(this, std::move(m));
  }

  // A pooled std::vector<T> resized to `n`; contents unspecified, callers
  // overwrite (row norms, attention halves, sparse row/col sums).
  PooledVec<T> acquire_vec(index_t n) {
    AGNN_ASSERT(n >= 0, "acquire_vec: bad size");
    ++stats_.acquires;
    stats_.bytes_acquired += static_cast<std::uint64_t>(n) * sizeof(T);
    for (int b = bucket_of(n); b < kBuckets; ++b) {
      auto& bucket = vec_pool_[static_cast<std::size_t>(b)];
      int best = -1;
      for (int i = 0; i < static_cast<int>(bucket.size()); ++i) {
        const index_t cap =
            static_cast<index_t>(bucket[static_cast<std::size_t>(i)].capacity());
        if (cap >= n &&
            (best < 0 ||
             cap < static_cast<index_t>(
                       bucket[static_cast<std::size_t>(best)].capacity()))) {
          best = i;
        }
      }
      if (best >= 0) {
        ++stats_.pool_hits;
        std::vector<T> v = take(bucket, best);
        v.resize(static_cast<std::size_t>(n));
        return PooledVec<T>(this, std::move(v));
      }
    }
    ++stats_.pool_misses;
    add_resident(static_cast<std::uint64_t>(n) * sizeof(T));
    std::vector<T> v;
    v.reserve(static_cast<std::size_t>(n));
    v.resize(static_cast<std::size_t>(n));
    return PooledVec<T>(this, std::move(v));
  }

  // Return storage to the pool. Normally called by the handle destructors,
  // but also usable directly to donate a matrix whose storage should be
  // recycled (e.g. a temporary built outside the workspace).
  void recycle(DenseMatrix<T>&& m) {
    if (m.capacity() <= 0) return;
    dense_pool_[static_cast<std::size_t>(bucket_of(m.capacity()))].push_back(std::move(m));
  }
  void recycle(CsrMatrix<T>&& m) {
    if (m.nnz_capacity() <= 0 && m.rows_capacity() <= 0) return;
    csr_pool_[static_cast<std::size_t>(bucket_of(m.nnz_capacity()))].push_back(std::move(m));
  }
  void recycle(std::vector<T>&& v) {
    if (v.capacity() == 0) return;
    const int b = bucket_of(static_cast<index_t>(v.capacity()));
    vec_pool_[static_cast<std::size_t>(b)].push_back(std::move(v));
  }

  const WorkspaceStats& stats() const { return stats_; }

  // Zero the traffic counters (acquires / hits / misses / bytes_acquired)
  // while keeping the residency gauges, so callers can measure a window
  // (e.g. "epochs after the first") in isolation.
  void reset_stats() {
    const std::uint64_t resident = stats_.resident_bytes;
    const std::uint64_t peak = stats_.peak_resident_bytes;
    stats_ = WorkspaceStats{};
    stats_.resident_bytes = resident;
    stats_.peak_resident_bytes = peak;
  }

 private:
  static int bucket_of(index_t elems) {
    if (elems <= 0) return 0;
    const int b = std::bit_width(static_cast<std::uint64_t>(elems)) - 1;
    return b < kBuckets ? b : kBuckets - 1;
  }

  static std::uint64_t csr_bytes(index_t rows, index_t nnz) {
    return static_cast<std::uint64_t>(nnz) * (sizeof(T) + sizeof(index_t)) +
           static_cast<std::uint64_t>(rows + 1) * sizeof(index_t);
  }

  template <typename M>
  static M take(std::vector<M>& bucket, int i) {
    M m = std::move(bucket[static_cast<std::size_t>(i)]);
    bucket[static_cast<std::size_t>(i)] = std::move(bucket.back());
    bucket.pop_back();
    return m;
  }

  void add_resident(std::uint64_t bytes) {
    stats_.resident_bytes += bytes;
    if (stats_.resident_bytes > stats_.peak_resident_bytes) {
      stats_.peak_resident_bytes = stats_.resident_bytes;
    }
  }

  std::vector<std::vector<DenseMatrix<T>>> dense_pool_;
  std::vector<std::vector<CsrMatrix<T>>> csr_pool_;
  std::vector<std::vector<std::vector<T>>> vec_pool_;
  WorkspaceStats stats_;
};

template <typename T>
void PooledDense<T>::release() {
  if (ws_ != nullptr) {
    ws_->recycle(std::move(m_));
    ws_ = nullptr;
  }
}

template <typename T>
void PooledCsr<T>::release() {
  if (ws_ != nullptr) {
    ws_->recycle(std::move(m_));
    ws_ = nullptr;
  }
}

template <typename T>
void PooledVec<T>::release() {
  if (ws_ != nullptr) {
    ws_->recycle(std::move(v_));
    ws_ = nullptr;
  }
}

}  // namespace agnn
