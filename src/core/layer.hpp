// A single GNN layer in the global tensor formulation, for all four models:
//
//   VA    Z = (A ⊙ H H^T) H W                                    (Section 4.1)
//   AGNN  Z = (A ⊙ (H H^T ⊘ n n^T)) H W
//   GAT   Z = sm(A ⊙ LeakyReLU(s1 1^T + 1 s2^T)) H W,  s = (HW)[a1; a2]
//   GCN   Z = Â H W                                    (the C-GNN special case)
//   GIN   Z = MLP((A + (1+eps) I) H),  MLP(X) = sigma_mlp(X W) W2
//         (the MLP-as-Phi case of Section 4.4; the (1+eps) self-term is
//          applied by the layer, so the caller passes the plain adjacency)
//
// followed by H_out = sigma(Z). The backward pass implements the paper's
// Eq. (6)–(7): given G = dL/dZ of this layer it returns dW, da, and
// Gamma = dL/dH_in; the model loop then forms the previous layer's
// G^{l-1} = sigma'(Z^{l-1}) ⊙ Gamma. VA backward follows the paper's
// Eq. (11)–(13) literally; AGNN and GAT backward are derived in this repo
// (the paper defers them to its technical report) and are validated against
// finite differences in tests/test_gradcheck.cpp.
#pragma once

#include <optional>
#include <vector>

#include "core/activations.hpp"
#include "tensor/csr_matrix.hpp"
#include "tensor/dense_matrix.hpp"
#include "tensor/dense_ops.hpp"
#include "tensor/fused.hpp"
#include "tensor/sparse_ops.hpp"
#include "tensor/spmm.hpp"

namespace agnn {

enum class ModelKind { kVA, kAGNN, kGAT, kGCN, kGIN };

inline const char* to_string(ModelKind m) {
  switch (m) {
    case ModelKind::kVA: return "VA";
    case ModelKind::kAGNN: return "AGNN";
    case ModelKind::kGAT: return "GAT";
    case ModelKind::kGCN: return "GCN";
    case ModelKind::kGIN: return "GIN";
  }
  return "?";
}

// Intermediate tensors cached by the forward pass for reuse in backward
// (training mode). Inference mode leaves this empty — the --inference
// execution of the paper's artifact, which stores no intermediates.
template <typename T>
struct LayerCache {
  DenseMatrix<T> h_in;       // H^l (post-dropout if dropout is active)
  DenseMatrix<T> z;          // Z^l (pre-activation)
  DenseMatrix<T> dropout_mask;  // inverted-dropout multiplier (empty if off)
  CsrMatrix<T> psi;          // Psi(A, H) — attention matrix
  DenseMatrix<T> psi_h;      // Psi * H (VA/AGNN) or Psi * H' (GAT): dW reuse
  // GIN-only:
  DenseMatrix<T> mlp_pre;    // X W1 (pre-activation of the MLP hidden layer)
  DenseMatrix<T> mlp_hidden; // sigma_mlp(X W1)
  // GAT-only:
  DenseMatrix<T> h_proj;     // H' = H W
  CsrMatrix<T> scores_pre;   // C_ij = s1_i + s2_j (pre-LeakyReLU)
  std::vector<T> s1, s2;     // per-vertex attention halves
};

template <typename T>
struct LayerGrads {
  DenseMatrix<T> d_w;        // dL/dW   (Y^l of the paper)
  DenseMatrix<T> d_w2;       // dL/dW2  (GIN's second MLP matrix; else empty)
  std::vector<T> d_a;        // dL/da   (GAT only; empty otherwise)
  DenseMatrix<T> d_h_in;     // Gamma = dL/dH^l
};

template <typename T>
class Layer {
 public:
  Layer(ModelKind kind, index_t k_in, index_t k_out, Activation act, Rng& rng,
        T attention_slope = T(0.2), Activation mlp_activation = Activation::kRelu,
        T gin_epsilon = T(0))
      : kind_(kind),
        k_in_(k_in),
        k_out_(k_out),
        act_(act),
        attention_slope_(attention_slope),
        mlp_act_(mlp_activation),
        gin_epsilon_(gin_epsilon),
        w_(k_in, k_out) {
    w_.fill_glorot(rng);
    if (kind_ == ModelKind::kGAT) {
      a_.resize(static_cast<std::size_t>(2 * k_out));
      const double limit = std::sqrt(6.0 / static_cast<double>(2 * k_out + 1));
      for (auto& v : a_) v = static_cast<T>(rng.next_uniform(-limit, limit));
    }
    if (kind_ == ModelKind::kGIN) {
      // MLP(X) = sigma_mlp(X W) W2, hidden width = k_out.
      w2_ = DenseMatrix<T>(k_out, k_out);
      w2_.fill_glorot(rng);
    }
  }

  ModelKind kind() const { return kind_; }
  index_t in_features() const { return k_in_; }
  index_t out_features() const { return k_out_; }
  Activation activation() const { return act_; }
  T attention_slope() const { return attention_slope_; }

  DenseMatrix<T>& weights() { return w_; }
  const DenseMatrix<T>& weights() const { return w_; }
  DenseMatrix<T>& weights2() { return w2_; }
  const DenseMatrix<T>& weights2() const { return w2_; }
  std::vector<T>& attention_params() { return a_; }
  const std::vector<T>& attention_params() const { return a_; }
  Activation mlp_activation() const { return mlp_act_; }
  T gin_epsilon() const { return gin_epsilon_; }

  // The attention matrix Psi(A, H) this layer would use — exposed for
  // interpretability (which neighbors does each vertex attend to?) and for
  // external GraphBLAS-style consumers. For GCN this is the (normalized)
  // adjacency itself; for GIN the plain adjacency (sum aggregation).
  CsrMatrix<T> attention_scores(const CsrMatrix<T>& adj, const DenseMatrix<T>& h) const {
    switch (kind_) {
      case ModelKind::kGCN:
      case ModelKind::kGIN:
        return adj;
      case ModelKind::kVA:
        return psi_va(adj, h);
      case ModelKind::kAGNN:
        return psi_agnn(adj, h);
      case ModelKind::kGAT: {
        const DenseMatrix<T> hp = matmul(h, w_);
        const std::span<const T> a_all(a_);
        const std::vector<T> s1 =
            matvec(hp, a_all.subspan(0, static_cast<std::size_t>(k_out_)));
        const std::vector<T> s2 =
            matvec(hp, a_all.subspan(static_cast<std::size_t>(k_out_)));
        return psi_gat<T>(adj, s1, s2, attention_slope_).psi;
      }
    }
    AGNN_ASSERT(false, "unknown model kind");
    return {};
  }

  // Forward pass. If `cache` is null, runs in inference mode (no
  // intermediates stored; the deepest fused kernels are used).
  DenseMatrix<T> forward(const CsrMatrix<T>& adj, const DenseMatrix<T>& h,
                         LayerCache<T>* cache) const {
    AGNN_ASSERT(h.cols() == k_in_, "layer forward: feature width mismatch");
    AGNN_ASSERT(adj.rows() == h.rows() && adj.cols() == h.rows(),
                "layer forward: adjacency/feature shape mismatch");
    DenseMatrix<T> z = compute_z(adj, h, cache);
    DenseMatrix<T> out = activate(act_, z, T(0.01));
    if (cache) {
      cache->h_in = h;
      cache->z = std::move(z);
    }
    return out;
  }

  // Backward pass. `g` is G^l = dL/dZ^l; `adj_t` is A^T (the reversed graph
  // of Section 5.2 — equal to A for undirected inputs).
  LayerGrads<T> backward(const CsrMatrix<T>& adj, const CsrMatrix<T>& adj_t,
                         const LayerCache<T>& cache, const DenseMatrix<T>& g) const {
    switch (kind_) {
      case ModelKind::kGCN: return backward_gcn(adj_t, cache, g);
      case ModelKind::kVA: return backward_va(adj, adj_t, cache, g);
      case ModelKind::kAGNN: return backward_agnn(adj, cache, g);
      case ModelKind::kGAT: return backward_gat(adj, cache, g);
      case ModelKind::kGIN: return backward_gin(adj_t, cache, g);
    }
    AGNN_ASSERT(false, "unknown model kind");
    return {};
  }

 private:
  DenseMatrix<T> compute_z(const CsrMatrix<T>& adj, const DenseMatrix<T>& h,
                           LayerCache<T>* cache) const {
    switch (kind_) {
      case ModelKind::kGCN: {
        // Z = Â H W — SpMMM with association order chosen by cost.
        if (!cache) return spmmm(adj, h, w_);
        DenseMatrix<T> ah = spmm(adj, h);
        DenseMatrix<T> z = matmul(ah, w_);
        cache->psi_h = std::move(ah);
        return z;
      }
      case ModelKind::kGIN: {
        // X = (A + (1+eps) I) H, Z = sigma_mlp(X W) W2.
        DenseMatrix<T> x = spmm(adj, h);
        axpy(T(1) + gin_epsilon_, h, x);
        DenseMatrix<T> pre = matmul(x, w_);
        DenseMatrix<T> hidden = activate(mlp_act_, pre, T(0.01));
        DenseMatrix<T> z = matmul(hidden, w2_);
        if (cache) {
          cache->psi_h = std::move(x);
          cache->mlp_pre = std::move(pre);
          cache->mlp_hidden = std::move(hidden);
        }
        return z;
      }
      case ModelKind::kVA: {
        if (!cache) {
          // Inference: deepest fusion — never materialize Psi.
          return matmul(fused_va_aggregate(adj, h, h), w_);
        }
        CsrMatrix<T> psi = psi_va(adj, h);
        DenseMatrix<T> ph = spmm(psi, h);
        DenseMatrix<T> z = matmul(ph, w_);
        cache->psi = std::move(psi);
        cache->psi_h = std::move(ph);
        return z;
      }
      case ModelKind::kAGNN: {
        CsrMatrix<T> psi = psi_agnn(adj, h);
        DenseMatrix<T> ph = spmm(psi, h);
        DenseMatrix<T> z = matmul(ph, w_);
        if (cache) {
          cache->psi = std::move(psi);
          cache->psi_h = std::move(ph);
        }
        return z;
      }
      case ModelKind::kGAT: {
        DenseMatrix<T> hp = matmul(h, w_);
        const std::span<const T> a_all(a_);
        const auto a1 = a_all.subspan(0, static_cast<std::size_t>(k_out_));
        const auto a2 = a_all.subspan(static_cast<std::size_t>(k_out_));
        std::vector<T> s1 = matvec(hp, a1);
        std::vector<T> s2 = matvec(hp, a2);
        if (!cache) {
          return fused_gat_aggregate(adj, std::span<const T>(s1),
                                     std::span<const T>(s2), attention_slope_, hp);
        }
        GatPsi<T> gp = psi_gat(adj, std::span<const T>(s1), std::span<const T>(s2),
                               attention_slope_);
        DenseMatrix<T> z = spmm(gp.psi, hp);
        cache->psi = std::move(gp.psi);
        cache->scores_pre = std::move(gp.scores_pre);
        cache->psi_h = z;  // Psi * H' — not needed for dW here but kept for symmetry
        cache->h_proj = std::move(hp);
        cache->s1 = std::move(s1);
        cache->s2 = std::move(s2);
        return z;
      }
    }
    AGNN_ASSERT(false, "unknown model kind");
    return {};
  }

  LayerGrads<T> backward_gcn(const CsrMatrix<T>& adj_t, const LayerCache<T>& cache,
                             const DenseMatrix<T>& g) const {
    LayerGrads<T> out;
    out.d_w = matmul_tn(cache.psi_h, g);        // (Â H)^T G
    out.d_h_in = spmm(adj_t, matmul_nt(g, w_)); // Â^T (G W^T)
    return out;
  }

  // GIN backward: dW2 = hidden^T G, dHidden = G W2^T,
  // dPre = dHidden ⊙ sigma_mlp'(pre), dW = X^T dPre, dX = dPre W^T,
  // Gamma = A^T dX + (1+eps) dX.
  LayerGrads<T> backward_gin(const CsrMatrix<T>& adj_t, const LayerCache<T>& cache,
                             const DenseMatrix<T>& g) const {
    LayerGrads<T> out;
    out.d_w2 = matmul_tn(cache.mlp_hidden, g);
    const DenseMatrix<T> d_hidden = matmul_nt(g, w2_);
    const DenseMatrix<T> d_pre =
        activation_backward(mlp_act_, cache.mlp_pre, d_hidden, T(0.01));
    out.d_w = matmul_tn(cache.psi_h, d_pre);
    const DenseMatrix<T> d_x = matmul_nt(d_pre, w_);
    DenseMatrix<T> gamma = spmm(adj_t, d_x);
    axpy(T(1) + gin_epsilon_, d_x, gamma);
    out.d_h_in = std::move(gamma);
    return out;
  }

  // Paper Eq. (11)–(13): M = G W^T, N = A ⊙ (M H^T),
  // Gamma = N_+ H + (A^T ⊙ H_x) M,  Y = H^T (A^T ⊙ H_x) G = (Psi H)^T G.
  LayerGrads<T> backward_va(const CsrMatrix<T>& adj, const CsrMatrix<T>& adj_t,
                            const LayerCache<T>& cache, const DenseMatrix<T>& g) const {
    LayerGrads<T> out;
    const DenseMatrix<T>& h = cache.h_in;
    out.d_w = matmul_tn(cache.psi_h, g);
    const DenseMatrix<T> m = matmul_nt(g, w_);
    // N = A ⊙ (M H^T): an SDDMM — the MSpMM pattern of the backward DAG.
    const CsrMatrix<T> n = sddmm(adj, m, h);
    // Gamma = (N + N^T) H + Psi^T M. Computed as two SpMMs instead of
    // materializing N_+'s union pattern.
    DenseMatrix<T> gamma = spmm(n, h);
    spmm_accumulate(n.transposed(), h, gamma);
    // Psi^T = A^T ⊙ H_x; reuse the transposed adjacency pattern.
    const CsrMatrix<T> psi_t = sddmm(adj_t, h, h);
    spmm_accumulate(psi_t, m, gamma);
    out.d_h_in = std::move(gamma);
    return out;
  }

  // AGNN backward (derivation in DESIGN.md / README):
  //   D = A ⊙ (M H^T)   with M = G W^T          (dL/d cosine scores)
  //   Gamma = Psi^T M
  //         + diag(1/n) [ (D + D^T) Ĥ - diag(rowsum(D ⊙ Ĉ) + colsum(D ⊙ Ĉ)) Ĥ ]
  // where Ĥ has unit-normalized rows and Ĉ holds the cosine values.
  LayerGrads<T> backward_agnn(const CsrMatrix<T>& adj, const LayerCache<T>& cache,
                              const DenseMatrix<T>& g) const {
    LayerGrads<T> out;
    const DenseMatrix<T>& h = cache.h_in;
    out.d_w = matmul_tn(cache.psi_h, g);
    const DenseMatrix<T> m = matmul_nt(g, w_);
    const CsrMatrix<T> d = sddmm(adj, m, h);

    const std::vector<T> norms = row_l2_norms(h);
    // Ĥ: unit rows (zero rows stay zero).
    DenseMatrix<T> h_hat = h;
    for (index_t i = 0; i < h.rows(); ++i) {
      const T ni = norms[static_cast<std::size_t>(i)];
      if (ni <= T(0)) continue;
      T* row = h_hat.data() + i * h.cols();
      for (index_t j = 0; j < h.cols(); ++j) row[j] /= ni;
    }
    // Cosine matrix Ĉ on the adjacency pattern: Psi values divided by A
    // values (identical when A is binary, which attention models use).
    CsrMatrix<T> cos = cache.psi;
    {
      auto cv = cos.vals_mutable();
      const auto av = adj.vals();
      for (index_t e = 0; e < cos.nnz(); ++e) {
        const T a = av[static_cast<std::size_t>(e)];
        cv[static_cast<std::size_t>(e)] =
            a != T(0) ? cv[static_cast<std::size_t>(e)] / a : T(0);
      }
    }
    const CsrMatrix<T> dc = hadamard_same_pattern(d, cos);
    const std::vector<T> rs = sparse_row_sums(dc);
    const std::vector<T> cs = sparse_col_sums(dc);

    DenseMatrix<T> gamma = spmm(d, h_hat);
    spmm_accumulate(d.transposed(), h_hat, gamma);
    for (index_t i = 0; i < gamma.rows(); ++i) {
      const T ni = norms[static_cast<std::size_t>(i)];
      T* gi = gamma.data() + i * gamma.cols();
      if (ni <= T(0)) {
        for (index_t j = 0; j < gamma.cols(); ++j) gi[j] = T(0);
        continue;
      }
      const T coef = rs[static_cast<std::size_t>(i)] + cs[static_cast<std::size_t>(i)];
      const T* hhi = h_hat.data() + i * gamma.cols();
      const T inv = T(1) / ni;
      for (index_t j = 0; j < gamma.cols(); ++j) {
        gi[j] = (gi[j] - coef * hhi[j]) * inv;
      }
    }
    spmm_accumulate(cache.psi.transposed(), m, gamma);
    out.d_h_in = std::move(gamma);
    return out;
  }

  // GAT backward:
  //   dH' = Psi^T G + ds1 a1^T + ds2 a2^T,
  //   dPsi = A-sampled G H'^T, dE = softmax-Jacobian(dPsi),
  //   dC = dE ⊙ A ⊙ LeakyReLU'(C), ds1 = row-sums(dC), ds2 = col-sums(dC),
  //   da = [H'^T ds1; H'^T ds2], dW = H^T dH', Gamma = dH' W^T.
  LayerGrads<T> backward_gat(const CsrMatrix<T>& adj, const LayerCache<T>& cache,
                             const DenseMatrix<T>& g) const {
    LayerGrads<T> out;
    const DenseMatrix<T>& h = cache.h_in;
    const DenseMatrix<T>& hp = cache.h_proj;
    const CsrMatrix<T>& s = cache.psi;

    // dPsi sampled on the adjacency pattern (pattern of s, values unused).
    const CsrMatrix<T> d_psi = sddmm(s.with_values(T(1)), g, hp);
    const CsrMatrix<T> d_e = row_softmax_backward(s, d_psi);
    // dC = dE ⊙ A ⊙ LeakyReLU'(C): the A values were folded into E during
    // forward, so they reappear as a factor here (1 for binary adjacency).
    CsrMatrix<T> d_c = d_e;
    {
      auto v = d_c.vals_mutable();
      const auto c = cache.scores_pre.vals();
      const auto av = adj.vals();
      for (index_t e = 0; e < d_c.nnz(); ++e) {
        const T ce = c[static_cast<std::size_t>(e)];
        v[static_cast<std::size_t>(e)] *=
            av[static_cast<std::size_t>(e)] * (ce > T(0) ? T(1) : attention_slope_);
      }
    }
    const std::vector<T> ds1 = sparse_row_sums(d_c);
    const std::vector<T> ds2 = sparse_col_sums(d_c);

    DenseMatrix<T> d_hp = spmm(s.transposed(), g);
    const std::span<const T> a_all(a_);
    const auto a1 = a_all.subspan(0, static_cast<std::size_t>(k_out_));
    const auto a2 = a_all.subspan(static_cast<std::size_t>(k_out_));
    add_outer_inplace(d_hp, std::span<const T>(ds1), a1);
    add_outer_inplace(d_hp, std::span<const T>(ds2), a2);

    out.d_a.resize(static_cast<std::size_t>(2 * k_out_));
    const std::vector<T> da1 = matvec_tn(hp, std::span<const T>(ds1));
    const std::vector<T> da2 = matvec_tn(hp, std::span<const T>(ds2));
    std::copy(da1.begin(), da1.end(), out.d_a.begin());
    std::copy(da2.begin(), da2.end(), out.d_a.begin() + k_out_);

    out.d_w = matmul_tn(h, d_hp);
    out.d_h_in = matmul_nt(d_hp, w_);
    return out;
  }

  ModelKind kind_;
  index_t k_in_;
  index_t k_out_;
  Activation act_;
  T attention_slope_;
  Activation mlp_act_;
  T gin_epsilon_;
  DenseMatrix<T> w_;
  DenseMatrix<T> w2_;  // GIN only
  std::vector<T> a_;
};

}  // namespace agnn
