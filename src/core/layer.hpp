// A single GNN layer in the global tensor formulation, for all four models:
//
//   VA    Z = (A ⊙ H H^T) H W                                    (Section 4.1)
//   AGNN  Z = (A ⊙ (H H^T ⊘ n n^T)) H W
//   GAT   Z = sm(A ⊙ LeakyReLU(s1 1^T + 1 s2^T)) H W,  s = (HW)[a1; a2]
//   GCN   Z = Â H W                                    (the C-GNN special case)
//   GIN   Z = MLP((A + (1+eps) I) H),  MLP(X) = sigma_mlp(X W) W2
//         (the MLP-as-Phi case of Section 4.4; the (1+eps) self-term is
//          applied by the layer, so the caller passes the plain adjacency)
//
// followed by H_out = sigma(Z). The backward pass implements the paper's
// Eq. (6)–(7): given G = dL/dZ of this layer it returns dW, da, and
// Gamma = dL/dH_in; the model loop then forms the previous layer's
// G^{l-1} = sigma'(Z^{l-1}) ⊙ Gamma. VA backward follows the paper's
// Eq. (11)–(13) literally; AGNN and GAT backward are derived in this repo
// (the paper defers them to its technical report) and are validated against
// finite differences in tests/test_gradcheck.cpp.
//
// Memory discipline (DESIGN.md §8): the workspace-threaded entry points
// write results into caller-owned storage, reuse the LayerCache slots'
// backing storage in place across steps, and draw every transient through
// the Workspace pool — a steady-state training step allocates nothing. The
// by-value signatures are thin wrappers over the same code paths.
#pragma once

#include <optional>
#include <vector>

#include "core/activations.hpp"
#include "core/workspace.hpp"
#include "tensor/csr_matrix.hpp"
#include "tensor/dense_matrix.hpp"
#include "tensor/dense_ops.hpp"
#include "tensor/fused.hpp"
#include "tensor/sparse_ops.hpp"
#include "tensor/spmm.hpp"

namespace agnn {

enum class ModelKind { kVA, kAGNN, kGAT, kGCN, kGIN };

inline const char* to_string(ModelKind m) {
  switch (m) {
    case ModelKind::kVA: return "VA";
    case ModelKind::kAGNN: return "AGNN";
    case ModelKind::kGAT: return "GAT";
    case ModelKind::kGCN: return "GCN";
    case ModelKind::kGIN: return "GIN";
  }
  return "?";
}

// Intermediate tensors cached by the forward pass for reuse in backward
// (training mode). Inference mode leaves this empty — the --inference
// execution of the paper's artifact, which stores no intermediates.
//
// The slots are plain members (not pool handles) so they stay valid between
// forward and backward; the forward pass overwrites them in place, so their
// backing storage is reused for the lifetime of the cache — engines keep
// caches as persistent members and reach a zero-allocation steady state.
template <typename T>
struct LayerCache {
  DenseMatrix<T> h_in;       // H^l (post-dropout if dropout is active)
  DenseMatrix<T> z;          // Z^l (pre-activation)
  DenseMatrix<T> dropout_mask;  // inverted-dropout multiplier (empty if off)
  CsrMatrix<T> psi;          // Psi(A, H) — attention matrix
  DenseMatrix<T> psi_h;      // Psi * H (VA/AGNN) or Psi * H' (GAT): dW reuse
  // GIN-only:
  DenseMatrix<T> mlp_pre;    // X W1 (pre-activation of the MLP hidden layer)
  DenseMatrix<T> mlp_hidden; // sigma_mlp(X W1)
  // GAT-only:
  DenseMatrix<T> h_proj;     // H' = H W
  CsrMatrix<T> scores_pre;   // C_ij = s1_i + s2_j (pre-LeakyReLU)
  std::vector<T> s1, s2;     // per-vertex attention halves
};

template <typename T>
struct LayerGrads {
  DenseMatrix<T> d_w;        // dL/dW   (Y^l of the paper)
  DenseMatrix<T> d_w2;       // dL/dW2  (GIN's second MLP matrix; else empty)
  std::vector<T> d_a;        // dL/da   (GAT only; empty otherwise)
  DenseMatrix<T> d_h_in;     // Gamma = dL/dH^l
};

template <typename T>
class Layer {
 public:
  Layer(ModelKind kind, index_t k_in, index_t k_out, Activation act, Rng& rng,
        T attention_slope = T(0.2), Activation mlp_activation = Activation::kRelu,
        T gin_epsilon = T(0))
      : kind_(kind),
        k_in_(k_in),
        k_out_(k_out),
        act_(act),
        attention_slope_(attention_slope),
        mlp_act_(mlp_activation),
        gin_epsilon_(gin_epsilon),
        w_(k_in, k_out) {
    w_.fill_glorot(rng);
    if (kind_ == ModelKind::kGAT) {
      a_.resize(static_cast<std::size_t>(2 * k_out));
      const double limit = std::sqrt(6.0 / static_cast<double>(2 * k_out + 1));
      for (auto& v : a_) v = static_cast<T>(rng.next_uniform(-limit, limit));
    }
    if (kind_ == ModelKind::kGIN) {
      // MLP(X) = sigma_mlp(X W) W2, hidden width = k_out.
      w2_ = DenseMatrix<T>(k_out, k_out);
      w2_.fill_glorot(rng);
    }
  }

  ModelKind kind() const { return kind_; }
  index_t in_features() const { return k_in_; }
  index_t out_features() const { return k_out_; }
  Activation activation() const { return act_; }
  T attention_slope() const { return attention_slope_; }

  DenseMatrix<T>& weights() { return w_; }
  const DenseMatrix<T>& weights() const { return w_; }
  DenseMatrix<T>& weights2() { return w2_; }
  const DenseMatrix<T>& weights2() const { return w2_; }
  std::vector<T>& attention_params() { return a_; }
  const std::vector<T>& attention_params() const { return a_; }
  Activation mlp_activation() const { return mlp_act_; }
  T gin_epsilon() const { return gin_epsilon_; }

  // The attention matrix Psi(A, H) this layer would use — exposed for
  // interpretability (which neighbors does each vertex attend to?) and for
  // external GraphBLAS-style consumers. For GCN this is the (normalized)
  // adjacency itself; for GIN the plain adjacency (sum aggregation).
  CsrMatrix<T> attention_scores(const CsrMatrix<T>& adj, const DenseMatrix<T>& h) const {
    switch (kind_) {
      case ModelKind::kGCN:
      case ModelKind::kGIN:
        return adj;
      case ModelKind::kVA:
        return psi_va(adj, h);
      case ModelKind::kAGNN:
        return psi_agnn(adj, h);
      case ModelKind::kGAT: {
        const DenseMatrix<T> hp = matmul(h, w_);
        const std::span<const T> a_all(a_);
        const std::vector<T> s1 =
            matvec(hp, a_all.subspan(0, static_cast<std::size_t>(k_out_)));
        const std::vector<T> s2 =
            matvec(hp, a_all.subspan(static_cast<std::size_t>(k_out_)));
        return psi_gat<T>(adj, s1, s2, attention_slope_).psi;
      }
    }
    AGNN_ASSERT(false, "unknown model kind");
    return {};
  }

  // Forward pass into caller-owned `out`. If `cache` is null, runs in
  // inference mode (no intermediates stored; the deepest fused kernels are
  // used). All transients come from `ws`; nothing is allocated once the
  // pool and the cache slots are warm. `out` must not alias `h`.
  void forward(const CsrMatrix<T>& adj, const DenseMatrix<T>& h,
               LayerCache<T>* cache, Workspace<T>& ws, DenseMatrix<T>& out) const {
    AGNN_ASSERT(h.cols() == k_in_, "layer forward: feature width mismatch");
    AGNN_ASSERT(adj.rows() == h.rows() && adj.cols() == h.rows(),
                "layer forward: adjacency/feature shape mismatch");
    AGNN_ASSERT(&out != &h, "layer forward: out must not alias h");
    if (cache) {
      compute_z(adj, h, cache, ws, cache->z);
      activate(act_, cache->z, out, T(0.01));
      if (&cache->h_in != &h) cache->h_in = h;
    } else {
      compute_z(adj, h, nullptr, ws, out);
      activate(act_, out, out, T(0.01));  // in place
    }
  }

  DenseMatrix<T> forward(const CsrMatrix<T>& adj, const DenseMatrix<T>& h,
                         LayerCache<T>* cache) const {
    Workspace<T> ws;
    DenseMatrix<T> out;
    forward(adj, h, cache, ws, out);
    return out;
  }

  // Backward pass into caller-owned `out`. `g` is G^l = dL/dZ^l; `adj_t` is
  // A^T (the reversed graph of Section 5.2 — equal to A for undirected
  // inputs). Scratch comes from `ws`; the LayerGrads slots are resized in
  // place, so persistent grads reach a zero-allocation steady state.
  void backward(const CsrMatrix<T>& adj, const CsrMatrix<T>& adj_t,
                const LayerCache<T>& cache, const DenseMatrix<T>& g,
                Workspace<T>& ws, LayerGrads<T>& out) const {
    if (kind_ != ModelKind::kGIN) out.d_w2.resize(0, 0);
    if (kind_ != ModelKind::kGAT) out.d_a.clear();
    switch (kind_) {
      case ModelKind::kGCN: backward_gcn(adj_t, cache, g, ws, out); return;
      case ModelKind::kVA: backward_va(adj, adj_t, cache, g, ws, out); return;
      case ModelKind::kAGNN: backward_agnn(adj, cache, g, ws, out); return;
      case ModelKind::kGAT: backward_gat(adj, cache, g, ws, out); return;
      case ModelKind::kGIN: backward_gin(adj_t, cache, g, ws, out); return;
    }
    AGNN_ASSERT(false, "unknown model kind");
  }

  LayerGrads<T> backward(const CsrMatrix<T>& adj, const CsrMatrix<T>& adj_t,
                         const LayerCache<T>& cache, const DenseMatrix<T>& g) const {
    Workspace<T> ws;
    LayerGrads<T> out;
    backward(adj, adj_t, cache, g, ws, out);
    return out;
  }

 private:
  void compute_z(const CsrMatrix<T>& adj, const DenseMatrix<T>& h,
                 LayerCache<T>* cache, Workspace<T>& ws, DenseMatrix<T>& z) const {
    const index_t n = adj.rows();
    switch (kind_) {
      case ModelKind::kGCN: {
        // Z = Â H W — SpMMM with association order chosen by cost.
        if (!cache) {
          auto scratch = ws.acquire_dense(n, std::max(k_in_, k_out_));
          spmmm(adj, h, w_, *scratch, z);
          return;
        }
        spmm(adj, h, cache->psi_h);
        matmul(cache->psi_h, w_, z);
        return;
      }
      case ModelKind::kGIN: {
        // X = (A + (1+eps) I) H, Z = sigma_mlp(X W) W2.
        PooledDense<T> xb, preb, hidb;
        DenseMatrix<T>* x;
        DenseMatrix<T>* pre;
        DenseMatrix<T>* hidden;
        if (cache) {
          x = &cache->psi_h;
          pre = &cache->mlp_pre;
          hidden = &cache->mlp_hidden;
        } else {
          xb = ws.acquire_dense(n, k_in_);
          preb = ws.acquire_dense(n, k_out_);
          hidb = ws.acquire_dense(n, k_out_);
          x = &*xb;
          pre = &*preb;
          hidden = &*hidb;
        }
        spmm(adj, h, *x);
        axpy(T(1) + gin_epsilon_, h, *x);
        matmul(*x, w_, *pre);
        activate(mlp_act_, *pre, *hidden, T(0.01));
        matmul(*hidden, w2_, z);
        return;
      }
      case ModelKind::kVA: {
        if (!cache) {
          // Inference: deepest fusion — never materialize Psi.
          auto tmp = ws.acquire_dense(n, k_in_);
          fused_va_aggregate(adj, h, h, *tmp);
          matmul(*tmp, w_, z);
          return;
        }
        psi_va(adj, h, cache->psi);
        spmm(cache->psi, h, cache->psi_h);
        matmul(cache->psi_h, w_, z);
        return;
      }
      case ModelKind::kAGNN: {
        auto norms = ws.acquire_vec(n);
        row_l2_norms(h, *norms);
        if (cache) {
          psi_agnn(adj, h, norms.cspan(), cache->psi);
          spmm(cache->psi, h, cache->psi_h);
          matmul(cache->psi_h, w_, z);
          return;
        }
        auto psi = ws.acquire_csr(adj.rows(), adj.cols(), adj.nnz());
        psi_agnn(adj, h, norms.cspan(), *psi);
        auto ph = ws.acquire_dense(n, k_in_);
        spmm(*psi, h, *ph);
        matmul(*ph, w_, z);
        return;
      }
      case ModelKind::kGAT: {
        const std::span<const T> a_all(a_);
        const auto a1 = a_all.subspan(0, static_cast<std::size_t>(k_out_));
        const auto a2 = a_all.subspan(static_cast<std::size_t>(k_out_));
        if (!cache) {
          auto hp = ws.acquire_dense(n, k_out_);
          matmul(h, w_, *hp);
          auto s1 = ws.acquire_vec(n);
          auto s2 = ws.acquire_vec(n);
          matvec(*hp, a1, *s1);
          matvec(*hp, a2, *s2);
          fused_gat_aggregate(adj, s1.cspan(), s2.cspan(), attention_slope_, *hp, z);
          return;
        }
        matmul(h, w_, cache->h_proj);
        matvec(cache->h_proj, a1, cache->s1);
        matvec(cache->h_proj, a2, cache->s2);
        psi_gat<T>(adj, cache->s1, cache->s2, attention_slope_,
                   cache->scores_pre, cache->psi);
        spmm(cache->psi, cache->h_proj, z);
        cache->psi_h = z;  // Psi * H' — not needed for dW here but kept for symmetry
        return;
      }
    }
    AGNN_ASSERT(false, "unknown model kind");
  }

  void backward_gcn(const CsrMatrix<T>& adj_t, const LayerCache<T>& cache,
                    const DenseMatrix<T>& g, Workspace<T>& ws,
                    LayerGrads<T>& out) const {
    matmul_tn(cache.psi_h, g, out.d_w);          // (Â H)^T G
    auto gw = ws.acquire_dense(g.rows(), k_in_); // G W^T
    matmul_nt(g, w_, *gw);
    spmm(adj_t, *gw, out.d_h_in);                // Â^T (G W^T)
  }

  // GIN backward: dW2 = hidden^T G, dHidden = G W2^T,
  // dPre = dHidden ⊙ sigma_mlp'(pre), dW = X^T dPre, dX = dPre W^T,
  // Gamma = A^T dX + (1+eps) dX.
  void backward_gin(const CsrMatrix<T>& adj_t, const LayerCache<T>& cache,
                    const DenseMatrix<T>& g, Workspace<T>& ws,
                    LayerGrads<T>& out) const {
    matmul_tn(cache.mlp_hidden, g, out.d_w2);
    auto d_pre = ws.acquire_dense(g.rows(), k_out_);
    matmul_nt(g, w2_, *d_pre);  // dHidden
    activation_backward(mlp_act_, cache.mlp_pre, *d_pre, *d_pre, T(0.01));  // in place
    matmul_tn(cache.psi_h, *d_pre, out.d_w);
    auto d_x = ws.acquire_dense(g.rows(), k_in_);
    matmul_nt(*d_pre, w_, *d_x);
    spmm(adj_t, *d_x, out.d_h_in);
    axpy(T(1) + gin_epsilon_, *d_x, out.d_h_in);
  }

  // Paper Eq. (11)–(13): M = G W^T, N = A ⊙ (M H^T),
  // Gamma = N_+ H + (A^T ⊙ H_x) M,  Y = H^T (A^T ⊙ H_x) G = (Psi H)^T G.
  void backward_va(const CsrMatrix<T>& adj, const CsrMatrix<T>& adj_t,
                   const LayerCache<T>& cache, const DenseMatrix<T>& g,
                   Workspace<T>& ws, LayerGrads<T>& out) const {
    const DenseMatrix<T>& h = cache.h_in;
    matmul_tn(cache.psi_h, g, out.d_w);
    auto m = ws.acquire_dense(g.rows(), k_in_);
    matmul_nt(g, w_, *m);
    // N = A ⊙ (M H^T): an SDDMM — the MSpMM pattern of the backward DAG.
    auto n = ws.acquire_csr(adj.rows(), adj.cols(), adj.nnz());
    sddmm(adj, *m, h, *n);
    // Gamma = (N + N^T) H + Psi^T M. Computed as two SpMMs instead of
    // materializing N_+'s union pattern.
    spmm(*n, h, out.d_h_in);
    auto scratch = ws.acquire_csr(adj.cols(), adj.rows(), adj.nnz());
    n->transposed_into(*scratch);
    spmm_accumulate(*scratch, h, out.d_h_in);
    // Psi^T = A^T ⊙ H_x; reuse the transposed adjacency pattern (and the
    // same pooled buffer as N^T — its job there is done).
    sddmm(adj_t, h, h, *scratch);
    spmm_accumulate(*scratch, *m, out.d_h_in);
  }

  // AGNN backward (derivation in DESIGN.md / README):
  //   D = A ⊙ (M H^T)   with M = G W^T          (dL/d cosine scores)
  //   Gamma = Psi^T M
  //         + diag(1/n) [ (D + D^T) Ĥ - diag(rowsum(D ⊙ Ĉ) + colsum(D ⊙ Ĉ)) Ĥ ]
  // where Ĥ has unit-normalized rows and Ĉ holds the cosine values.
  void backward_agnn(const CsrMatrix<T>& adj, const LayerCache<T>& cache,
                     const DenseMatrix<T>& g, Workspace<T>& ws,
                     LayerGrads<T>& out) const {
    const DenseMatrix<T>& h = cache.h_in;
    matmul_tn(cache.psi_h, g, out.d_w);
    auto m = ws.acquire_dense(g.rows(), k_in_);
    matmul_nt(g, w_, *m);
    auto d = ws.acquire_csr(adj.rows(), adj.cols(), adj.nnz());
    sddmm(adj, *m, h, *d);

    auto norms = ws.acquire_vec(h.rows());
    row_l2_norms(h, *norms);
    // Ĥ: unit rows (zero rows stay zero).
    auto h_hat = ws.acquire_dense(h.rows(), h.cols());
    *h_hat = h;
    for (index_t i = 0; i < h.rows(); ++i) {
      const T ni = (*norms)[static_cast<std::size_t>(i)];
      if (ni <= T(0)) continue;
      T* row = h_hat->data() + i * h.cols();
      for (index_t j = 0; j < h.cols(); ++j) row[j] /= ni;
    }
    // Cosine matrix Ĉ on the adjacency pattern: Psi values divided by A
    // values (identical when A is binary, which attention models use).
    auto cos = ws.acquire_csr_like(cache.psi);
    {
      auto cv = cos->vals_mutable();
      const auto av = adj.vals();
      for (index_t e = 0; e < cos->nnz(); ++e) {
        const T a = av[static_cast<std::size_t>(e)];
        cv[static_cast<std::size_t>(e)] =
            a != T(0) ? cv[static_cast<std::size_t>(e)] / a : T(0);
      }
    }
    auto dc = ws.acquire_csr(adj.rows(), adj.cols(), adj.nnz());
    hadamard_same_pattern(*d, *cos, *dc);
    auto rs = ws.acquire_vec(adj.rows());
    sparse_row_sums(*dc, *rs);
    auto cs = ws.acquire_vec(adj.cols());
    sparse_col_sums(*dc, *cs);

    spmm(*d, *h_hat, out.d_h_in);
    auto scratch = ws.acquire_csr(adj.cols(), adj.rows(), adj.nnz());
    d->transposed_into(*scratch);
    spmm_accumulate(*scratch, *h_hat, out.d_h_in);
    DenseMatrix<T>& gamma = out.d_h_in;
    for (index_t i = 0; i < gamma.rows(); ++i) {
      const T ni = (*norms)[static_cast<std::size_t>(i)];
      T* gi = gamma.data() + i * gamma.cols();
      if (ni <= T(0)) {
        for (index_t j = 0; j < gamma.cols(); ++j) gi[j] = T(0);
        continue;
      }
      const T coef =
          (*rs)[static_cast<std::size_t>(i)] + (*cs)[static_cast<std::size_t>(i)];
      const T* hhi = h_hat->data() + i * gamma.cols();
      const T inv = T(1) / ni;
      for (index_t j = 0; j < gamma.cols(); ++j) {
        gi[j] = (gi[j] - coef * hhi[j]) * inv;
      }
    }
    cache.psi.transposed_into(*scratch);  // reuse the transpose buffer
    spmm_accumulate(*scratch, *m, gamma);
  }

  // GAT backward:
  //   dH' = Psi^T G + ds1 a1^T + ds2 a2^T,
  //   dPsi = A-sampled G H'^T, dE = softmax-Jacobian(dPsi),
  //   dC = dE ⊙ A ⊙ LeakyReLU'(C), ds1 = row-sums(dC), ds2 = col-sums(dC),
  //   da = [H'^T ds1; H'^T ds2], dW = H^T dH', Gamma = dH' W^T.
  void backward_gat(const CsrMatrix<T>& adj, const LayerCache<T>& cache,
                    const DenseMatrix<T>& g, Workspace<T>& ws,
                    LayerGrads<T>& out) const {
    const DenseMatrix<T>& h = cache.h_in;
    const DenseMatrix<T>& hp = cache.h_proj;
    const CsrMatrix<T>& s = cache.psi;

    // dPsi sampled on the adjacency pattern (pattern of s, values unused).
    auto d_psi = ws.acquire_csr(s.rows(), s.cols(), s.nnz());
    sddmm_unweighted(s, g, hp, *d_psi);
    // dE, then dC in place: dC = dE ⊙ A ⊙ LeakyReLU'(C) — the A values were
    // folded into E during forward, so they reappear as a factor here
    // (1 for binary adjacency).
    auto d_c = ws.acquire_csr(s.rows(), s.cols(), s.nnz());
    row_softmax_backward(s, *d_psi, *d_c);
    {
      auto v = d_c->vals_mutable();
      const auto c = cache.scores_pre.vals();
      const auto av = adj.vals();
      for (index_t e = 0; e < d_c->nnz(); ++e) {
        const T ce = c[static_cast<std::size_t>(e)];
        v[static_cast<std::size_t>(e)] *=
            av[static_cast<std::size_t>(e)] * (ce > T(0) ? T(1) : attention_slope_);
      }
    }
    auto ds1 = ws.acquire_vec(s.rows());
    sparse_row_sums(*d_c, *ds1);
    auto ds2 = ws.acquire_vec(s.cols());
    sparse_col_sums(*d_c, *ds2);

    auto st = ws.acquire_csr(s.cols(), s.rows(), s.nnz());
    s.transposed_into(*st);
    auto d_hp = ws.acquire_dense(g.rows(), k_out_);
    spmm(*st, g, *d_hp);
    const std::span<const T> a_all(a_);
    const auto a1 = a_all.subspan(0, static_cast<std::size_t>(k_out_));
    const auto a2 = a_all.subspan(static_cast<std::size_t>(k_out_));
    add_outer_inplace(*d_hp, ds1.cspan(), a1);
    add_outer_inplace(*d_hp, ds2.cspan(), a2);

    out.d_a.resize(static_cast<std::size_t>(2 * k_out_));
    auto da1 = ws.acquire_vec(k_out_);
    matvec_tn(hp, ds1.cspan(), *da1);
    auto da2 = ws.acquire_vec(k_out_);
    matvec_tn(hp, ds2.cspan(), *da2);
    std::copy(da1->begin(), da1->end(), out.d_a.begin());
    std::copy(da2->begin(), da2->end(), out.d_a.begin() + k_out_);

    matmul_tn(h, *d_hp, out.d_w);
    matmul_nt(*d_hp, w_, out.d_h_in);
  }

  ModelKind kind_;
  index_t k_in_;
  index_t k_out_;
  Activation act_;
  T attention_slope_;
  Activation mlp_act_;
  T gin_epsilon_;
  DenseMatrix<T> w_;
  DenseMatrix<T> w2_;  // GIN only
  std::vector<T> a_;
};

}  // namespace agnn
