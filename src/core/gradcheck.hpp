// Central finite-difference gradient checking.
//
// The analytic backward passes (Section 5, plus the AGNN/GAT derivations of
// this repo) are validated by perturbing every parameter and input entry:
//   dL/dp ~ (L(p + eps) - L(p - eps)) / (2 eps)
// in double precision. This is the ground truth the test suite holds every
// model's backward pass to.
#pragma once

#include <cmath>
#include <functional>
#include <span>
#include <vector>

#include "tensor/common.hpp"

namespace agnn {

struct GradCheckResult {
  double max_abs_error = 0.0;
  double max_rel_error = 0.0;
  std::size_t worst_index = 0;
};

// `loss` recomputes the scalar loss from the current parameter buffer (it
// must observe mutations of `params` through the span).
template <typename T>
GradCheckResult gradcheck(std::span<T> params, std::span<const T> analytic_grad,
                          const std::function<double()>& loss, double eps = 1e-5) {
  AGNN_ASSERT(params.size() == analytic_grad.size(), "gradcheck: size mismatch");
  GradCheckResult res;
  for (std::size_t i = 0; i < params.size(); ++i) {
    const T saved = params[i];
    params[i] = saved + static_cast<T>(eps);
    const double lp = loss();
    params[i] = saved - static_cast<T>(eps);
    const double lm = loss();
    params[i] = saved;
    const double numeric = (lp - lm) / (2.0 * eps);
    const double analytic = static_cast<double>(analytic_grad[i]);
    const double abs_err = std::abs(numeric - analytic);
    const double denom = std::max({std::abs(numeric), std::abs(analytic), 1e-8});
    const double rel_err = abs_err / denom;
    if (abs_err > res.max_abs_error) res.max_abs_error = abs_err;
    if (rel_err > res.max_rel_error) {
      res.max_rel_error = rel_err;
      res.worst_index = i;
    }
  }
  return res;
}

}  // namespace agnn
