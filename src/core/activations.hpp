// Element-wise non-linearities sigma and their derivatives sigma'.
//
// The global formulation deliberately decouples sigma from Phi (Section 4):
// H^{l+1} = sigma(Z^l). The backward pass needs sigma'(Z) for the
// G^{l-1} = sigma'(Z^{l-1}) ⊙ Gamma^l recursion (Eq. 6).
#pragma once

#include <cmath>

#include "tensor/dense_matrix.hpp"

namespace agnn {

enum class Activation { kIdentity, kRelu, kLeakyRelu, kTanh, kSigmoid };

inline const char* to_string(Activation a) {
  switch (a) {
    case Activation::kIdentity: return "identity";
    case Activation::kRelu: return "relu";
    case Activation::kLeakyRelu: return "leaky_relu";
    case Activation::kTanh: return "tanh";
    case Activation::kSigmoid: return "sigmoid";
  }
  return "?";
}

template <typename T>
T apply_activation(Activation a, T z, T leaky_slope = T(0.01)) {
  switch (a) {
    case Activation::kIdentity: return z;
    case Activation::kRelu: return z > T(0) ? z : T(0);
    case Activation::kLeakyRelu: return z > T(0) ? z : leaky_slope * z;
    case Activation::kTanh: return std::tanh(z);
    case Activation::kSigmoid: return T(1) / (T(1) + std::exp(-z));
  }
  return z;
}

template <typename T>
T activation_derivative(Activation a, T z, T leaky_slope = T(0.01)) {
  switch (a) {
    case Activation::kIdentity: return T(1);
    case Activation::kRelu: return z > T(0) ? T(1) : T(0);
    case Activation::kLeakyRelu: return z > T(0) ? T(1) : leaky_slope;
    case Activation::kTanh: {
      const T t = std::tanh(z);
      return T(1) - t * t;
    }
    case Activation::kSigmoid: {
      const T s = T(1) / (T(1) + std::exp(-z));
      return s * (T(1) - s);
    }
  }
  return T(1);
}

// H = sigma(Z), element-wise. The out-parameter form resizes `h` in place
// (no allocation within capacity); `h` may alias `z`.
template <typename T>
void activate(Activation a, const DenseMatrix<T>& z, DenseMatrix<T>& h,
              T leaky_slope = T(0.01)) {
  h.resize(z.rows(), z.cols());
#pragma omp parallel for schedule(static)
  for (index_t i = 0; i < z.size(); ++i) {
    h.data()[i] = apply_activation(a, z.data()[i], leaky_slope);
  }
}

template <typename T>
DenseMatrix<T> activate(Activation a, const DenseMatrix<T>& z, T leaky_slope = T(0.01)) {
  DenseMatrix<T> h;
  activate(a, z, h, leaky_slope);
  return h;
}

// G = Gamma ⊙ sigma'(Z): the per-layer gradient recursion of Eq. (6).
// `g` may alias `z` or `gamma` (pure element-wise read-before-write).
template <typename T>
void activation_backward(Activation a, const DenseMatrix<T>& z,
                         const DenseMatrix<T>& gamma, DenseMatrix<T>& g,
                         T leaky_slope = T(0.01)) {
  AGNN_ASSERT(z.same_shape(gamma), "activation_backward: shape mismatch");
  g.resize(z.rows(), z.cols());
#pragma omp parallel for schedule(static)
  for (index_t i = 0; i < z.size(); ++i) {
    g.data()[i] = gamma.data()[i] * activation_derivative(a, z.data()[i], leaky_slope);
  }
}

template <typename T>
DenseMatrix<T> activation_backward(Activation a, const DenseMatrix<T>& z,
                                   const DenseMatrix<T>& gamma,
                                   T leaky_slope = T(0.01)) {
  DenseMatrix<T> g;
  activation_backward(a, z, gamma, g, leaky_slope);
  return g;
}

}  // namespace agnn
