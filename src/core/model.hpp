// GnnModel<T>: an L-layer GNN in the global formulation, plus the full-batch
// training loop (forward pass, loss, backward recursion of Eq. (6)–(7), and
// parameter update).
//
// Mirrors the paper artifact's GnnModel/GnnLayer/Loss structure: forward and
// backward are overloaded per model kind via Layer, and intermediate results
// are cached between the passes (or skipped entirely in inference mode).
//
// The workspace-threaded entry points write into caller-owned storage and
// reuse the cache/grad slots in place; the Trainer keeps them (and the
// Workspace) as members, so every training step after the first reuses the
// same buffers — zero steady-state allocations, observable via
// Trainer::workspace_stats().
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/layer.hpp"
#include "core/loss.hpp"
#include "core/optimizer.hpp"
#include "core/workspace.hpp"
#include "obs/obs_scope.hpp"

namespace agnn {

struct GnnConfig {
  ModelKind kind = ModelKind::kGAT;
  index_t in_features = 16;
  std::vector<index_t> layer_widths = {16, 16};  // output width per layer
  Activation hidden_activation = Activation::kRelu;
  Activation output_activation = Activation::kIdentity;
  double attention_slope = 0.2;  // LeakyReLU slope inside GAT attention
  Activation mlp_activation = Activation::kRelu;  // GIN's in-MLP non-linearity
  double gin_epsilon = 0.0;      // GIN's (1 + eps) self-loop weight
  std::uint64_t seed = 42;
};

template <typename T>
class GnnModel {
 public:
  explicit GnnModel(const GnnConfig& config) : config_(config) {
    AGNN_ASSERT(!config.layer_widths.empty(), "model needs at least one layer");
    Rng rng(config.seed);
    index_t k_in = config.in_features;
    for (std::size_t l = 0; l < config.layer_widths.size(); ++l) {
      const bool last = (l + 1 == config.layer_widths.size());
      const Activation act = last ? config.output_activation : config.hidden_activation;
      layers_.emplace_back(config.kind, k_in, config.layer_widths[l], act, rng,
                           static_cast<T>(config.attention_slope),
                           config.mlp_activation,
                           static_cast<T>(config.gin_epsilon));
      k_in = config.layer_widths[l];
    }
  }

  const GnnConfig& config() const { return config_; }
  std::size_t num_layers() const { return layers_.size(); }
  Layer<T>& layer(std::size_t l) { return layers_[l]; }
  const Layer<T>& layer(std::size_t l) const { return layers_[l]; }

  index_t max_layer_width() const {
    index_t w = 0;
    for (const auto& layer : layers_) w = std::max(w, layer.out_features());
    return w;
  }

  // Inference: forward pass without storing intermediates. Feature buffers
  // ping-pong between two pooled matrices; all scratch comes from `ws`.
  void infer(const CsrMatrix<T>& adj, const DenseMatrix<T>& x, Workspace<T>& ws,
             DenseMatrix<T>& h_out) const {
    AGNN_TRACE_SCOPE("model.infer", kPhase);
    if (layers_.size() == 1) {
      layers_[0].forward(adj, x, nullptr, ws, h_out);
      return;
    }
    auto buf0 = ws.acquire_dense(x.rows(), max_layer_width());
    auto buf1 = ws.acquire_dense(x.rows(), max_layer_width());
    const DenseMatrix<T>* src = &x;
    for (std::size_t l = 0; l < layers_.size(); ++l) {
      const bool last = (l + 1 == layers_.size());
      DenseMatrix<T>* dst = last ? &h_out : (l % 2 == 0 ? &*buf0 : &*buf1);
      layers_[l].forward(adj, *src, nullptr, ws, *dst);
      src = dst;
    }
  }

  DenseMatrix<T> infer(const CsrMatrix<T>& adj, const DenseMatrix<T>& x) const {
    Workspace<T> ws;
    DenseMatrix<T> h;
    infer(adj, x, ws, h);
    return h;
  }

  // Training-mode forward: fills one cache per layer and writes H^L into
  // `h_out`. Each layer's output is written directly into the next layer's
  // h_in cache slot, so there is no separate feature ping-pong and no copy.
  // `dropout_rate` > 0 applies inverted feature dropout to every layer's
  // input (deterministic for a given `dropout_seed`, so gradient checks and
  // replays see identical masks).
  void forward(const CsrMatrix<T>& adj, const DenseMatrix<T>& x,
               std::vector<LayerCache<T>>& caches, Workspace<T>& ws,
               DenseMatrix<T>& h_out, double dropout_rate = 0.0,
               std::uint64_t dropout_seed = 0) const {
    AGNN_TRACE_SCOPE("model.forward", kPhase);
    AGNN_ASSERT(dropout_rate >= 0.0 && dropout_rate < 1.0,
                "dropout rate must be in [0, 1)");
    caches.resize(layers_.size());  // preserves slot storage across steps
    Rng rng(0x5eedULL ^ dropout_seed);
    for (std::size_t l = 0; l < layers_.size(); ++l) {
      DenseMatrix<T>& h = caches[l].h_in;
      if (l == 0) h = x;
      if (dropout_rate > 0.0) {
        const T keep_inv = static_cast<T>(1.0 / (1.0 - dropout_rate));
        DenseMatrix<T>& mask = caches[l].dropout_mask;
        mask.resize(h.rows(), h.cols());
        for (index_t i = 0; i < mask.size(); ++i) {
          mask.data()[i] = rng.next_double() < dropout_rate ? T(0) : keep_inv;
        }
        hadamard(h, mask, h);  // in place
      } else {
        caches[l].dropout_mask.resize(0, 0);
      }
      const bool last = (l + 1 == layers_.size());
      DenseMatrix<T>& dst = last ? h_out : caches[l + 1].h_in;
      layers_[l].forward(adj, h, &caches[l], ws, dst);
    }
  }

  DenseMatrix<T> forward(const CsrMatrix<T>& adj, const DenseMatrix<T>& x,
                         std::vector<LayerCache<T>>& caches,
                         double dropout_rate = 0.0,
                         std::uint64_t dropout_seed = 0) const {
    Workspace<T> ws;
    DenseMatrix<T> h;
    forward(adj, x, caches, ws, h, dropout_rate, dropout_seed);
    return h;
  }

  // Backward recursion. `d_h_out` is nabla_{H^L} L from the loss. Fills
  // per-layer gradients (same order as layers) in place. dL/dX (the
  // input-feature gradient) is available as grads[0].d_h_in.
  void backward(const CsrMatrix<T>& adj, const CsrMatrix<T>& adj_t,
                const std::vector<LayerCache<T>>& caches,
                const DenseMatrix<T>& d_h_out, Workspace<T>& ws,
                std::vector<LayerGrads<T>>& grads) const {
    AGNN_TRACE_SCOPE("model.backward", kPhase);
    AGNN_ASSERT(caches.size() == layers_.size(), "backward: cache count mismatch");
    grads.resize(layers_.size());
    // One pooled G buffer serves the whole recursion: layer widths vary, but
    // activation_backward resizes within the max-width capacity.
    auto g = ws.acquire_dense(d_h_out.rows(), max_layer_width());
    // Bootstrap: G^L = nabla_{H^L} L ⊙ sigma'(Z^L)      (Eq. 4)
    activation_backward(layers_.back().activation(), caches.back().z, d_h_out, *g);
    for (std::size_t l = layers_.size(); l-- > 0;) {
      layers_[l].backward(adj, adj_t, caches[l], *g, ws, grads[l]);
      // If dropout was applied to this layer's input, the gradient w.r.t.
      // the pre-dropout features picks up the same mask.
      if (!caches[l].dropout_mask.empty()) {
        hadamard(grads[l].d_h_in, caches[l].dropout_mask, grads[l].d_h_in);
      }
      if (l > 0) {
        // G^{l-1} = sigma'(Z^{l-1}) ⊙ Gamma^l            (Eq. 6)
        activation_backward(layers_[l - 1].activation(), caches[l - 1].z,
                            grads[l].d_h_in, *g);
      }
    }
  }

  std::vector<LayerGrads<T>> backward(const CsrMatrix<T>& adj,
                                      const CsrMatrix<T>& adj_t,
                                      const std::vector<LayerCache<T>>& caches,
                                      const DenseMatrix<T>& d_h_out) const {
    Workspace<T> ws;
    std::vector<LayerGrads<T>> grads;
    backward(adj, adj_t, caches, d_h_out, ws, grads);
    return grads;
  }

  // Apply parameter updates via the optimizer. Each layer's W and a get
  // stable optimizer slots so per-parameter state (momentum, Adam moments)
  // is tracked correctly across steps.
  void apply_gradients(const std::vector<LayerGrads<T>>& grads, Optimizer<T>& opt) {
    AGNN_ASSERT(grads.size() == layers_.size(), "apply_gradients: size mismatch");
    for (std::size_t l = 0; l < layers_.size(); ++l) {
      opt.step(3 * l, layers_[l].weights().flat(), grads[l].d_w.flat());
      if (!layers_[l].attention_params().empty()) {
        opt.step(3 * l + 1, std::span<T>(layers_[l].attention_params()),
                 std::span<const T>(grads[l].d_a));
      }
      if (!layers_[l].weights2().empty()) {
        opt.step(3 * l + 2, layers_[l].weights2().flat(), grads[l].d_w2.flat());
      }
    }
  }

 private:
  GnnConfig config_;
  std::vector<Layer<T>> layers_;
};

// Full-batch trainer for node classification, the paper's training workload.
// Supports feature dropout (off by default) and per-parameter weight decay
// via the optimizer. Caches, gradients, the loss buffer, and the Workspace
// are persistent members: after the first step every buffer is warm and a
// step performs zero heap allocations (workspace_stats() proves it).
template <typename T>
class Trainer {
 public:
  Trainer(GnnModel<T>& model, std::unique_ptr<Optimizer<T>> opt,
          double dropout_rate = 0.0)
      : model_(model), opt_(std::move(opt)), dropout_rate_(dropout_rate) {}

  struct StepResult {
    T loss = T(0);
    double train_accuracy = 0.0;
  };

  // One full-batch training step: forward, loss, backward, update.
  StepResult step(const CsrMatrix<T>& adj, const CsrMatrix<T>& adj_t,
                  const DenseMatrix<T>& x, std::span<const index_t> labels,
                  std::span<const std::uint8_t> mask = {}) {
    AGNN_EPOCH_SCOPE("trainer.step");
    model_.forward(adj, x, caches_, ws_, h_, dropout_rate_, step_count_++);
    softmax_cross_entropy(h_, labels, loss_, mask);
    model_.backward(adj, adj_t, caches_, loss_.grad, ws_, grads_);
    model_.apply_gradients(grads_, *opt_);
    return {loss_.value, accuracy(h_, labels, mask)};
  }

  // Train for `epochs` steps; returns the loss trajectory.
  std::vector<T> train(const CsrMatrix<T>& adj, const DenseMatrix<T>& x,
                       std::span<const index_t> labels, int epochs,
                       std::span<const std::uint8_t> mask = {}) {
    const CsrMatrix<T> adj_t = adj.transposed();
    std::vector<T> losses;
    losses.reserve(static_cast<std::size_t>(epochs));
    for (int e = 0; e < epochs; ++e) {
      AGNN_EPOCH_SCOPE("trainer.epoch");
      losses.push_back(step(adj, adj_t, x, labels, mask).loss);
    }
    return losses;
  }

  Workspace<T>& workspace() { return ws_; }
  const WorkspaceStats& workspace_stats() const { return ws_.stats(); }

  // Exposed for checkpointing (serialization.hpp persists the model's
  // parameters and the optimizer's flattened state together).
  GnnModel<T>& model() { return model_; }
  Optimizer<T>& optimizer() { return *opt_; }

 private:
  GnnModel<T>& model_;
  std::unique_ptr<Optimizer<T>> opt_;
  double dropout_rate_ = 0.0;
  std::uint64_t step_count_ = 0;
  Workspace<T> ws_;
  std::vector<LayerCache<T>> caches_;
  std::vector<LayerGrads<T>> grads_;
  DenseMatrix<T> h_;
  LossResult<T> loss_;
};

}  // namespace agnn
