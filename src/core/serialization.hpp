// Model checkpointing: binary save/load of a GnnModel's configuration and
// parameters (W, a, W2 per layer). The format is versioned and validated on
// load; loading reconstructs an identical model (bit-exact parameters).
//
// Format (little-endian):
//   8 bytes  magic "AGNNMDL1"
//   i64      model kind, in_features, #layers
//   i64      hidden act, output act, mlp act
//   f64      attention_slope, gin_epsilon
//   per layer: i64 width; i64 w_size, w data; i64 a_size, a data;
//              i64 w2_size, w2 data                         (all doubles)
#pragma once

#include <cstring>
#include <fstream>
#include <string>

#include "core/model.hpp"

namespace agnn {

namespace detail {

constexpr char kModelMagic[8] = {'A', 'G', 'N', 'N', 'M', 'D', 'L', '1'};

template <typename T>
void write_pod(std::ofstream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::ifstream& in) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  AGNN_ASSERT(in.good(), "model file truncated");
  return v;
}

template <typename T>
void write_buffer(std::ofstream& out, std::span<const T> data) {
  write_pod<std::int64_t>(out, static_cast<std::int64_t>(data.size()));
  for (const T& v : data) write_pod<double>(out, static_cast<double>(v));
}

template <typename T>
void read_buffer(std::ifstream& in, std::span<T> data) {
  const auto size = read_pod<std::int64_t>(in);
  AGNN_ASSERT(size == static_cast<std::int64_t>(data.size()),
              "model file: parameter size mismatch");
  for (T& v : data) v = static_cast<T>(read_pod<double>(in));
}

}  // namespace detail

template <typename T>
void save_model(const std::string& path, const GnnModel<T>& model) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  AGNN_ASSERT(out.good(), "cannot open model file for writing: " + path);
  out.write(detail::kModelMagic, sizeof(detail::kModelMagic));
  const GnnConfig& cfg = model.config();
  detail::write_pod<std::int64_t>(out, static_cast<std::int64_t>(cfg.kind));
  detail::write_pod<std::int64_t>(out, cfg.in_features);
  detail::write_pod<std::int64_t>(out, static_cast<std::int64_t>(model.num_layers()));
  detail::write_pod<std::int64_t>(out,
                                  static_cast<std::int64_t>(cfg.hidden_activation));
  detail::write_pod<std::int64_t>(out,
                                  static_cast<std::int64_t>(cfg.output_activation));
  detail::write_pod<std::int64_t>(out, static_cast<std::int64_t>(cfg.mlp_activation));
  detail::write_pod<double>(out, cfg.attention_slope);
  detail::write_pod<double>(out, cfg.gin_epsilon);
  for (std::size_t l = 0; l < model.num_layers(); ++l) {
    const Layer<T>& layer = model.layer(l);
    detail::write_pod<std::int64_t>(out, layer.out_features());
    detail::write_buffer<T>(out, layer.weights().flat());
    detail::write_buffer<T>(out, layer.attention_params());
    detail::write_buffer<T>(out, layer.weights2().flat());
  }
  AGNN_ASSERT(out.good(), "model write failed: " + path);
}

template <typename T>
GnnModel<T> load_model(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  AGNN_ASSERT(in.good(), "cannot open model file: " + path);
  char magic[8];
  in.read(magic, sizeof(magic));
  AGNN_ASSERT(in.good() && std::memcmp(magic, detail::kModelMagic, 8) == 0,
              "bad magic in model file: " + path);
  GnnConfig cfg;
  cfg.kind = static_cast<ModelKind>(detail::read_pod<std::int64_t>(in));
  cfg.in_features = detail::read_pod<std::int64_t>(in);
  const auto layers = detail::read_pod<std::int64_t>(in);
  AGNN_ASSERT(layers > 0 && layers < 1024, "model file: bad layer count");
  cfg.hidden_activation =
      static_cast<Activation>(detail::read_pod<std::int64_t>(in));
  cfg.output_activation =
      static_cast<Activation>(detail::read_pod<std::int64_t>(in));
  cfg.mlp_activation = static_cast<Activation>(detail::read_pod<std::int64_t>(in));
  cfg.attention_slope = detail::read_pod<double>(in);
  cfg.gin_epsilon = detail::read_pod<double>(in);

  // First pass cannot construct the model until widths are known; read the
  // per-layer blocks into a staging structure.
  struct LayerBlob {
    index_t width;
    std::vector<T> w, a, w2;
  };
  std::vector<LayerBlob> blobs;
  cfg.layer_widths.clear();
  index_t k_in = cfg.in_features;
  for (std::int64_t l = 0; l < layers; ++l) {
    LayerBlob blob;
    blob.width = detail::read_pod<std::int64_t>(in);
    AGNN_ASSERT(blob.width > 0, "model file: bad layer width");
    blob.w.resize(static_cast<std::size_t>(k_in * blob.width));
    detail::read_buffer<T>(in, blob.w);
    const auto a_size = (cfg.kind == ModelKind::kGAT) ? 2 * blob.width : 0;
    blob.a.resize(static_cast<std::size_t>(a_size));
    detail::read_buffer<T>(in, blob.a);
    const auto w2_size =
        (cfg.kind == ModelKind::kGIN) ? blob.width * blob.width : 0;
    blob.w2.resize(static_cast<std::size_t>(w2_size));
    detail::read_buffer<T>(in, blob.w2);
    cfg.layer_widths.push_back(blob.width);
    k_in = blob.width;
    blobs.push_back(std::move(blob));
  }
  GnnModel<T> model(cfg);
  for (std::size_t l = 0; l < blobs.size(); ++l) {
    Layer<T>& layer = model.layer(l);
    std::copy(blobs[l].w.begin(), blobs[l].w.end(), layer.weights().data());
    layer.attention_params() = blobs[l].a;
    if (!blobs[l].w2.empty()) {
      std::copy(blobs[l].w2.begin(), blobs[l].w2.end(), layer.weights2().data());
    }
  }
  return model;
}

}  // namespace agnn
