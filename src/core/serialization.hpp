// Model checkpointing: binary save/load of a GnnModel's configuration and
// parameters (W, a, W2 per layer). The format is versioned and validated on
// load; loading reconstructs an identical model (bit-exact parameters).
//
// Model format (little-endian):
//   8 bytes  magic "AGNNMDL1"
//   i64      model kind, in_features, #layers
//   i64      hidden act, output act, mlp act
//   f64      attention_slope, gin_epsilon
//   per layer: i64 width; i64 w_size, w data; i64 a_size, a data;
//              i64 w2_size, w2 data                         (all doubles)
//
// Training checkpoints (the recovery loop's persistence format) wrap a
// model blob with progress metadata and flattened optimizer state:
//   8 bytes  magic "AGNNCKP1"
//   i64      epoch (completed epochs at checkpoint time)
//   i64      optimizer state size; f64 state...   (Optimizer::snapshot_state)
//   <model blob as above>
// Checkpoints are written to `path + ".tmp"` and renamed into place, so a
// crash mid-write never corrupts the previous checkpoint.
#pragma once

#include <cstdio>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "core/model.hpp"

namespace agnn {

namespace detail {

constexpr char kModelMagic[8] = {'A', 'G', 'N', 'N', 'M', 'D', 'L', '1'};
constexpr char kCheckpointMagic[8] = {'A', 'G', 'N', 'N', 'C', 'K', 'P', '1'};

template <typename T>
void write_pod(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  AGNN_ASSERT(in.good(), "model file truncated");
  return v;
}

template <typename T>
void write_buffer(std::ostream& out, std::span<const T> data) {
  write_pod<std::int64_t>(out, static_cast<std::int64_t>(data.size()));
  for (const T& v : data) write_pod<double>(out, static_cast<double>(v));
}

template <typename T>
void read_buffer(std::istream& in, std::span<T> data) {
  const auto size = read_pod<std::int64_t>(in);
  AGNN_ASSERT(size == static_cast<std::int64_t>(data.size()),
              "model file: parameter size mismatch");
  for (T& v : data) v = static_cast<T>(read_pod<double>(in));
}

}  // namespace detail

template <typename T>
void save_model(std::ostream& out, const GnnModel<T>& model) {
  out.write(detail::kModelMagic, sizeof(detail::kModelMagic));
  const GnnConfig& cfg = model.config();
  detail::write_pod<std::int64_t>(out, static_cast<std::int64_t>(cfg.kind));
  detail::write_pod<std::int64_t>(out, cfg.in_features);
  detail::write_pod<std::int64_t>(out, static_cast<std::int64_t>(model.num_layers()));
  detail::write_pod<std::int64_t>(out,
                                  static_cast<std::int64_t>(cfg.hidden_activation));
  detail::write_pod<std::int64_t>(out,
                                  static_cast<std::int64_t>(cfg.output_activation));
  detail::write_pod<std::int64_t>(out, static_cast<std::int64_t>(cfg.mlp_activation));
  detail::write_pod<double>(out, cfg.attention_slope);
  detail::write_pod<double>(out, cfg.gin_epsilon);
  for (std::size_t l = 0; l < model.num_layers(); ++l) {
    const Layer<T>& layer = model.layer(l);
    detail::write_pod<std::int64_t>(out, layer.out_features());
    detail::write_buffer<T>(out, layer.weights().flat());
    detail::write_buffer<T>(out, layer.attention_params());
    detail::write_buffer<T>(out, layer.weights2().flat());
  }
}

template <typename T>
void save_model(const std::string& path, const GnnModel<T>& model) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  AGNN_ASSERT(out.good(), "cannot open model file for writing: " + path);
  save_model(out, model);
  AGNN_ASSERT(out.good(), "model write failed: " + path);
}

template <typename T>
GnnModel<T> load_model(std::istream& in, const std::string& what) {
  char magic[8];
  in.read(magic, sizeof(magic));
  AGNN_ASSERT(in.good() && std::memcmp(magic, detail::kModelMagic, 8) == 0,
              "bad magic in model file: " + what);
  GnnConfig cfg;
  cfg.kind = static_cast<ModelKind>(detail::read_pod<std::int64_t>(in));
  cfg.in_features = detail::read_pod<std::int64_t>(in);
  const auto layers = detail::read_pod<std::int64_t>(in);
  AGNN_ASSERT(layers > 0 && layers < 1024, "model file: bad layer count");
  cfg.hidden_activation =
      static_cast<Activation>(detail::read_pod<std::int64_t>(in));
  cfg.output_activation =
      static_cast<Activation>(detail::read_pod<std::int64_t>(in));
  cfg.mlp_activation = static_cast<Activation>(detail::read_pod<std::int64_t>(in));
  cfg.attention_slope = detail::read_pod<double>(in);
  cfg.gin_epsilon = detail::read_pod<double>(in);

  // First pass cannot construct the model until widths are known; read the
  // per-layer blocks into a staging structure.
  struct LayerBlob {
    index_t width;
    std::vector<T> w, a, w2;
  };
  std::vector<LayerBlob> blobs;
  cfg.layer_widths.clear();
  index_t k_in = cfg.in_features;
  for (std::int64_t l = 0; l < layers; ++l) {
    LayerBlob blob;
    blob.width = detail::read_pod<std::int64_t>(in);
    AGNN_ASSERT(blob.width > 0, "model file: bad layer width");
    blob.w.resize(static_cast<std::size_t>(k_in * blob.width));
    detail::read_buffer<T>(in, blob.w);
    const auto a_size = (cfg.kind == ModelKind::kGAT) ? 2 * blob.width : 0;
    blob.a.resize(static_cast<std::size_t>(a_size));
    detail::read_buffer<T>(in, blob.a);
    const auto w2_size =
        (cfg.kind == ModelKind::kGIN) ? blob.width * blob.width : 0;
    blob.w2.resize(static_cast<std::size_t>(w2_size));
    detail::read_buffer<T>(in, blob.w2);
    cfg.layer_widths.push_back(blob.width);
    k_in = blob.width;
    blobs.push_back(std::move(blob));
  }
  GnnModel<T> model(cfg);
  for (std::size_t l = 0; l < blobs.size(); ++l) {
    Layer<T>& layer = model.layer(l);
    std::copy(blobs[l].w.begin(), blobs[l].w.end(), layer.weights().data());
    layer.attention_params() = blobs[l].a;
    if (!blobs[l].w2.empty()) {
      std::copy(blobs[l].w2.begin(), blobs[l].w2.end(), layer.weights2().data());
    }
  }
  return model;
}

template <typename T>
GnnModel<T> load_model(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  AGNN_ASSERT(in.good(), "cannot open model file: " + path);
  return load_model<T>(in, path);
}

// ---- training checkpoints -------------------------------------------------

struct CheckpointMeta {
  std::int64_t epoch = 0;  // completed epochs at checkpoint time
};

// Copy parameters from `src` into `dst`; both must share the same
// architecture (kind, widths). Used by checkpoint restore, which loads into
// the live model that engines hold references to.
template <typename T>
void copy_params(const GnnModel<T>& src, GnnModel<T>& dst) {
  AGNN_ASSERT(src.num_layers() == dst.num_layers() &&
                  src.config().kind == dst.config().kind &&
                  src.config().in_features == dst.config().in_features,
              "checkpoint: model architecture mismatch");
  for (std::size_t l = 0; l < src.num_layers(); ++l) {
    const Layer<T>& a = src.layer(l);
    Layer<T>& b = dst.layer(l);
    AGNN_ASSERT(a.out_features() == b.out_features(),
                "checkpoint: layer width mismatch");
    std::copy(a.weights().flat().begin(), a.weights().flat().end(),
              b.weights().data());
    b.attention_params() = a.attention_params();
    if (!a.weights2().empty()) {
      std::copy(a.weights2().flat().begin(), a.weights2().flat().end(),
                b.weights2().data());
    }
  }
}

template <typename T>
void save_checkpoint(const std::string& path, const GnnModel<T>& model,
                     std::int64_t epoch,
                     std::span<const double> opt_state = {}) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    AGNN_ASSERT(out.good(), "cannot open checkpoint for writing: " + tmp);
    out.write(detail::kCheckpointMagic, sizeof(detail::kCheckpointMagic));
    detail::write_pod<std::int64_t>(out, epoch);
    detail::write_buffer<double>(out, opt_state);
    save_model(out, model);
    AGNN_ASSERT(out.good(), "checkpoint write failed: " + tmp);
  }
  AGNN_ASSERT(std::rename(tmp.c_str(), path.c_str()) == 0,
              "checkpoint rename failed: " + path);
}

// Loads parameters into the existing `model` (engines keep their references)
// and returns the progress metadata; `opt_state`, if non-null, receives the
// flattened optimizer state for Optimizer::restore_state.
template <typename T>
CheckpointMeta load_checkpoint(const std::string& path, GnnModel<T>& model,
                               std::vector<double>* opt_state = nullptr) {
  std::ifstream in(path, std::ios::binary);
  AGNN_ASSERT(in.good(), "cannot open checkpoint: " + path);
  char magic[8];
  in.read(magic, sizeof(magic));
  AGNN_ASSERT(in.good() && std::memcmp(magic, detail::kCheckpointMagic, 8) == 0,
              "bad magic in checkpoint file: " + path);
  CheckpointMeta meta;
  meta.epoch = detail::read_pod<std::int64_t>(in);
  const auto state_size = detail::read_pod<std::int64_t>(in);
  AGNN_ASSERT(state_size >= 0, "checkpoint: bad optimizer state size");
  std::vector<double> state(static_cast<std::size_t>(state_size));
  for (double& v : state) v = detail::read_pod<double>(in);
  if (opt_state != nullptr) *opt_state = std::move(state);
  GnnModel<T> loaded = load_model<T>(in, path);
  copy_params(loaded, model);
  return meta;
}

inline bool checkpoint_exists(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return in.good();
}

// Trainer-level checkpointed training: resumes from `opts.path` when a
// checkpoint exists there, and persists one every `opts.every` epochs plus
// at the end. Returns the losses of the epochs run *by this call* (a full
// trajectory when starting fresh, the tail when resuming).
struct TrainerCheckpointOptions {
  std::string path;
  int every = 10;
};

template <typename T>
std::vector<T> train_with_checkpoints(Trainer<T>& trainer,
                                      const CsrMatrix<T>& adj,
                                      const DenseMatrix<T>& x,
                                      std::span<const index_t> labels,
                                      int epochs,
                                      const TrainerCheckpointOptions& opts,
                                      std::span<const std::uint8_t> mask = {}) {
  AGNN_ASSERT(!opts.path.empty() && opts.every >= 1,
              "train_with_checkpoints: bad options");
  std::int64_t start = 0;
  if (checkpoint_exists(opts.path)) {
    std::vector<double> opt_state;
    const CheckpointMeta meta =
        load_checkpoint(opts.path, trainer.model(), &opt_state);
    trainer.optimizer().restore_state(opt_state);
    start = meta.epoch;
  }
  const CsrMatrix<T> adj_t = adj.transposed();
  std::vector<T> losses;
  std::vector<double> opt_state;
  for (std::int64_t e = start; e < epochs; ++e) {
    losses.push_back(trainer.step(adj, adj_t, x, labels, mask).loss);
    if ((e + 1) % opts.every == 0 || e + 1 == epochs) {
      trainer.optimizer().snapshot_state(opt_state);
      save_checkpoint(opts.path, trainer.model(), e + 1, opt_state);
    }
  }
  return losses;
}

}  // namespace agnn
