// Execution DAGs and the fusing optimization of Section 6.2.
//
// The paper constructs the forward and backward execution DAGs of each
// model (Figure 5) and then fuses operation chains: walk the DAG until an
// edge produces a VIRTUAL matrix (a dense n x n intermediate that must never
// be materialized — Section 6.1), keep walking until an edge produces a
// SPARSE intermediate (an operation that *samples* the virtual values at the
// edges), and fuse everything on that path into one SDDMM-like kernel.
//
// This module reproduces that analysis as a small tensor IR: DAG builders
// for the VA / AGNN / GAT / GCN forward and backward passes, the fusion
// planner, and a memory estimator that quantifies what fusion saves (the
// n^2-vs-nnz gap). The production kernels in tensor/fused.hpp are exactly
// the kernels this planner derives; the test suite checks the two agree on
// which intermediates stay virtual.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "tensor/common.hpp"

namespace agnn::ir {

// What a tensor node materializes as (Table 1's shape/density taxonomy).
enum class TensorClass {
  kDenseTall,    // n x k   (features, gradients)
  kDenseSmall,   // k x k   (parameters) or length-k/n vectors
  kSparse,       // n x n with the adjacency pattern (A, Psi, N, D)
  kVirtualDense, // n x n dense — must NEVER be materialized
};

inline const char* to_string(TensorClass c) {
  switch (c) {
    case TensorClass::kDenseTall: return "dense_tall";
    case TensorClass::kDenseSmall: return "dense_small";
    case TensorClass::kSparse: return "sparse";
    case TensorClass::kVirtualDense: return "virtual";
  }
  return "?";
}

enum class OpClass {
  kInput,      // leaf (no producer)
  kMatMul,     // dense x dense
  kSpMM,       // sparse x dense
  kSDDMM,      // dense x dense sampled by a sparse pattern
  kOuter,      // rank-1 (replication) products: x 1^T, 1 y^T, x y^T
  kElementwise,// Hadamard, non-linearity, exp, ...
  kRowReduce,  // row/column sums, softmax normalization terms
};

inline const char* to_string(OpClass o) {
  switch (o) {
    case OpClass::kInput: return "input";
    case OpClass::kMatMul: return "matmul";
    case OpClass::kSpMM: return "spmm";
    case OpClass::kSDDMM: return "sddmm";
    case OpClass::kOuter: return "outer";
    case OpClass::kElementwise: return "elementwise";
    case OpClass::kRowReduce: return "row_reduce";
  }
  return "?";
}

struct Node {
  int id = -1;
  std::string name;
  TensorClass tensor_class = TensorClass::kDenseTall;
  OpClass producer = OpClass::kInput;
  std::vector<int> inputs;
};

class ExecutionDag {
 public:
  explicit ExecutionDag(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  int add_input(const std::string& name, TensorClass cls) {
    return add_node(name, cls, OpClass::kInput, {});
  }

  int add_op(const std::string& name, TensorClass cls, OpClass op,
             std::vector<int> inputs) {
    for (const int in : inputs) {
      AGNN_ASSERT(in >= 0 && in < static_cast<int>(nodes_.size()),
                  "dag op references unknown input");
    }
    return add_node(name, cls, op, std::move(inputs));
  }

  const std::vector<Node>& nodes() const { return nodes_; }
  const Node& node(int id) const { return nodes_[static_cast<std::size_t>(id)]; }
  std::size_t size() const { return nodes_.size(); }

  // All nodes that consume `id` as an input.
  std::vector<int> consumers(int id) const {
    std::vector<int> out;
    for (const auto& n : nodes_) {
      for (const int in : n.inputs) {
        if (in == id) {
          out.push_back(n.id);
          break;
        }
      }
    }
    return out;
  }

 private:
  int add_node(const std::string& name, TensorClass cls, OpClass op,
               std::vector<int> inputs) {
    Node n;
    n.id = static_cast<int>(nodes_.size());
    n.name = name;
    n.tensor_class = cls;
    n.producer = op;
    n.inputs = std::move(inputs);
    nodes_.push_back(std::move(n));
    return nodes_.back().id;
  }

  std::string name_;
  std::vector<Node> nodes_;
};

// One fused kernel: the chain of node ids from the first virtual
// intermediate to (and including) the sparse sampling operation.
struct FusedKernel {
  std::vector<int> path;  // virtual nodes ..., terminated by a sparse node
  int terminal() const { return path.back(); }
};

struct FusionPlan {
  std::vector<FusedKernel> kernels;
  // Virtual nodes that no fusion eliminates — a planning failure: executing
  // the DAG would materialize an n x n dense matrix.
  std::vector<int> unfused_virtual;

  bool all_virtual_fused() const { return unfused_virtual.empty(); }
};

// The Section 6.2 pass: for every virtual intermediate, follow its consumer
// chain until a sparse result samples it; the chain becomes one SDDMM-like
// kernel. Virtual nodes feeding other virtual nodes extend the chain.
inline FusionPlan plan_fusions(const ExecutionDag& dag) {
  FusionPlan plan;
  std::vector<bool> covered(dag.size(), false);

  for (const auto& n : dag.nodes()) {
    if (n.tensor_class != TensorClass::kVirtualDense) continue;
    if (covered[static_cast<std::size_t>(n.id)]) continue;

    // Walk forward through consumers, collecting the virtual chain.
    FusedKernel kernel;
    int cur = n.id;
    bool terminated = false;
    while (true) {
      kernel.path.push_back(cur);
      covered[static_cast<std::size_t>(cur)] = true;
      const auto next = dag.consumers(cur);
      // Section 6.2's DAGs are chains at virtual nodes: each virtual value
      // is consumed by exactly one downstream op (otherwise it would have
      // to be kept alive, i.e. materialized).
      if (next.size() != 1) break;
      const Node& consumer = dag.node(next.front());
      if (consumer.tensor_class == TensorClass::kSparse) {
        kernel.path.push_back(consumer.id);
        terminated = true;
        break;
      }
      if (consumer.tensor_class != TensorClass::kVirtualDense) break;
      cur = consumer.id;
    }
    if (terminated) {
      plan.kernels.push_back(std::move(kernel));
    } else {
      for (const int id : kernel.path) plan.unfused_virtual.push_back(id);
    }
  }
  return plan;
}

// Peak intermediate memory (bytes) for executing the DAG with and without
// the fusion plan: unfused, every virtual node is an n x n dense tensor;
// fused, each kernel's intermediates collapse to one nnz-sized sparse
// result (already counted by its terminal node).
struct MemoryEstimate {
  double unfused_bytes = 0;
  double fused_bytes = 0;
  double saving_factor() const {
    return fused_bytes > 0 ? unfused_bytes / fused_bytes : 0;
  }
};

inline MemoryEstimate estimate_memory(const ExecutionDag& dag, double n, double k,
                                      double nnz, double elem_bytes = 4) {
  MemoryEstimate est;
  for (const auto& node : dag.nodes()) {
    double bytes = 0;
    switch (node.tensor_class) {
      case TensorClass::kDenseTall: bytes = n * k * elem_bytes; break;
      case TensorClass::kDenseSmall: bytes = k * k * elem_bytes; break;
      case TensorClass::kSparse: bytes = nnz * elem_bytes; break;
      case TensorClass::kVirtualDense: bytes = n * n * elem_bytes; break;
    }
    est.unfused_bytes += bytes;
    if (node.tensor_class != TensorClass::kVirtualDense) est.fused_bytes += bytes;
  }
  return est;
}

// ---- model DAG builders (Figure 5) -------------------------------------------

// VA forward: Psi = A ⊙ (H H^T); Z = Psi H W.
inline ExecutionDag build_va_forward() {
  ExecutionDag dag("VA forward");
  const int a = dag.add_input("A", TensorClass::kSparse);
  const int h = dag.add_input("H", TensorClass::kDenseTall);
  const int w = dag.add_input("W", TensorClass::kDenseSmall);
  const int hx = dag.add_op("H H^T", TensorClass::kVirtualDense, OpClass::kMatMul,
                            {h, h});
  const int psi = dag.add_op("Psi = A .* HH^T", TensorClass::kSparse,
                             OpClass::kSDDMM, {a, hx});
  const int ph = dag.add_op("Psi H", TensorClass::kDenseTall, OpClass::kSpMM,
                            {psi, h});
  dag.add_op("Z = (Psi H) W", TensorClass::kDenseTall, OpClass::kMatMul, {ph, w});
  return dag;
}

// VA backward (Eq. 11-13): M = G W^T; N = A ⊙ (M H^T);
// Gamma = N_+ H + Psi^T M; Y = (Psi H)^T G.
inline ExecutionDag build_va_backward() {
  ExecutionDag dag("VA backward");
  const int a = dag.add_input("A", TensorClass::kSparse);
  const int h = dag.add_input("H", TensorClass::kDenseTall);
  const int g = dag.add_input("G", TensorClass::kDenseTall);
  const int w = dag.add_input("W", TensorClass::kDenseSmall);
  const int psi_t = dag.add_input("Psi^T", TensorClass::kSparse);  // from forward
  const int m = dag.add_op("M = G W^T", TensorClass::kDenseTall, OpClass::kMatMul,
                           {g, w});
  const int mh = dag.add_op("M H^T", TensorClass::kVirtualDense, OpClass::kMatMul,
                            {m, h});
  const int nmat = dag.add_op("N = A .* MH^T", TensorClass::kSparse,
                              OpClass::kSDDMM, {a, mh});
  const int nh = dag.add_op("N_+ H", TensorClass::kDenseTall, OpClass::kSpMM,
                            {nmat, h});
  const int pm = dag.add_op("Psi^T M", TensorClass::kDenseTall, OpClass::kSpMM,
                            {psi_t, m});
  dag.add_op("Gamma", TensorClass::kDenseTall, OpClass::kElementwise, {nh, pm});
  return dag;
}

// AGNN forward: Psi = A ⊙ (H H^T ⊘ n n^T); Z = Psi H W.
inline ExecutionDag build_agnn_forward() {
  ExecutionDag dag("AGNN forward");
  const int a = dag.add_input("A", TensorClass::kSparse);
  const int h = dag.add_input("H", TensorClass::kDenseTall);
  const int w = dag.add_input("W", TensorClass::kDenseSmall);
  const int norms = dag.add_op("n = row norms", TensorClass::kDenseSmall,
                               OpClass::kRowReduce, {h});
  const int hx = dag.add_op("H H^T", TensorClass::kVirtualDense, OpClass::kMatMul,
                            {h, h});
  const int nn = dag.add_op("n n^T", TensorClass::kVirtualDense, OpClass::kOuter,
                            {norms, norms});
  const int cos = dag.add_op("HH^T ./ nn^T", TensorClass::kVirtualDense,
                             OpClass::kElementwise, {hx, nn});
  const int psi = dag.add_op("Psi = A .* cos", TensorClass::kSparse,
                             OpClass::kSDDMM, {a, cos});
  const int ph = dag.add_op("Psi H", TensorClass::kDenseTall, OpClass::kSpMM,
                            {psi, h});
  dag.add_op("Z = (Psi H) W", TensorClass::kDenseTall, OpClass::kMatMul, {ph, w});
  return dag;
}

// GAT forward (Figure 2): H' = H W; s = H'[a1; a2];
// C = s1 1^T + 1 s2^T (virtual, rank-1); E = A ⊙ LeakyReLU(C);
// Psi = sm(E); Z = Psi H'.
inline ExecutionDag build_gat_forward() {
  ExecutionDag dag("GAT forward");
  const int a = dag.add_input("A", TensorClass::kSparse);
  const int h = dag.add_input("H", TensorClass::kDenseTall);
  const int w = dag.add_input("W", TensorClass::kDenseSmall);
  const int avec = dag.add_input("a", TensorClass::kDenseSmall);
  const int hp = dag.add_op("H' = H W", TensorClass::kDenseTall, OpClass::kMatMul,
                            {h, w});
  const int s = dag.add_op("s = H' [a1;a2]", TensorClass::kDenseSmall,
                           OpClass::kMatMul, {hp, avec});
  const int c = dag.add_op("C = s1 1^T + 1 s2^T", TensorClass::kVirtualDense,
                           OpClass::kOuter, {s});
  const int lrelu = dag.add_op("LeakyReLU(C)", TensorClass::kVirtualDense,
                               OpClass::kElementwise, {c});
  const int e = dag.add_op("E = A .* LeakyReLU(C)", TensorClass::kSparse,
                           OpClass::kSDDMM, {a, lrelu});
  const int psi = dag.add_op("Psi = sm(E)", TensorClass::kSparse,
                             OpClass::kRowReduce, {e});
  dag.add_op("Z = Psi H'", TensorClass::kDenseTall, OpClass::kSpMM, {psi, hp});
  return dag;
}

// GAT backward: dPsi = (G H'^T) sampled; then softmax Jacobian, LeakyReLU',
// row/col sums, outer-product parameter paths.
inline ExecutionDag build_gat_backward() {
  ExecutionDag dag("GAT backward");
  const int g = dag.add_input("G", TensorClass::kDenseTall);
  const int hp = dag.add_input("H'", TensorClass::kDenseTall);
  const int psi = dag.add_input("Psi", TensorClass::kSparse);
  const int psi_t = dag.add_input("Psi^T", TensorClass::kSparse);
  const int ghp = dag.add_op("G H'^T", TensorClass::kVirtualDense, OpClass::kMatMul,
                             {g, hp});
  const int dpsi = dag.add_op("dPsi = pattern(A) .* GH'^T", TensorClass::kSparse,
                              OpClass::kSDDMM, {psi, ghp});
  const int de = dag.add_op("dE (softmax Jacobian)", TensorClass::kSparse,
                            OpClass::kRowReduce, {psi, dpsi});
  const int dc = dag.add_op("dC = dE .* lrelu'(C)", TensorClass::kSparse,
                            OpClass::kElementwise, {de});
  dag.add_op("ds1 = row sums(dC)", TensorClass::kDenseSmall, OpClass::kRowReduce,
             {dc});
  dag.add_op("ds2 = col sums(dC)", TensorClass::kDenseSmall, OpClass::kRowReduce,
             {dc});
  dag.add_op("dH' = Psi^T G + ...", TensorClass::kDenseTall, OpClass::kSpMM,
             {psi_t, g});
  return dag;
}

// GCN forward (no virtual intermediates — the C-GNN case).
inline ExecutionDag build_gcn_forward() {
  ExecutionDag dag("GCN forward");
  const int a = dag.add_input("A_hat", TensorClass::kSparse);
  const int h = dag.add_input("H", TensorClass::kDenseTall);
  const int w = dag.add_input("W", TensorClass::kDenseSmall);
  const int ah = dag.add_op("A_hat H", TensorClass::kDenseTall, OpClass::kSpMM,
                            {a, h});
  dag.add_op("Z = (A_hat H) W", TensorClass::kDenseTall, OpClass::kMatMul, {ah, w});
  return dag;
}

}  // namespace agnn::ir
