// Multi-head graph attention (the full GAT of Velickovic et al., which the
// single-head Layer specializes): K independent attention heads per layer,
// concatenated on hidden layers and averaged on the output layer.
//
// In the global formulation each head h is an independent
//   Psi_h = sm(A ⊙ LeakyReLU(s1_h 1^T + 1 s2_h^T)),   Z_h = Psi_h (H W_h),
// and the layer output is [Z_1 || ... || Z_K] (concat) or (1/K) sum_h Z_h
// (average). All heads share the adjacency pattern, so the fused kernels
// are reused verbatim per head. The backward pass follows the single-head
// derivation per head with the incoming gradient sliced (concat) or scaled
// (average).
#pragma once

#include <vector>

#include "core/activations.hpp"
#include "core/optimizer.hpp"
#include "tensor/fused.hpp"
#include "tensor/sparse_ops.hpp"
#include "tensor/spmm.hpp"

namespace agnn {

enum class HeadCombine { kConcat, kAverage };

template <typename T>
struct GatHeadParams {
  DenseMatrix<T> w;    // k_in x k_head
  std::vector<T> a;    // 2 * k_head ([a1; a2])
};

template <typename T>
struct GatHeadGrads {
  DenseMatrix<T> d_w;
  std::vector<T> d_a;
};

template <typename T>
struct MultiHeadCache {
  DenseMatrix<T> h_in;
  DenseMatrix<T> z;  // combined pre-activation
  struct Head {
    CsrMatrix<T> psi;
    CsrMatrix<T> scores_pre;
    DenseMatrix<T> hp;
    std::vector<T> s1, s2;
  };
  std::vector<Head> heads;
};

template <typename T>
struct MultiHeadGrads {
  std::vector<GatHeadGrads<T>> heads;
  DenseMatrix<T> d_h_in;
};

template <typename T>
class MultiHeadGatLayer {
 public:
  MultiHeadGatLayer(index_t k_in, index_t k_head, int heads, HeadCombine combine,
                    Activation act, Rng& rng, T slope = T(0.2))
      : k_in_(k_in),
        k_head_(k_head),
        combine_(combine),
        act_(act),
        slope_(slope) {
    AGNN_ASSERT(heads >= 1, "need at least one attention head");
    heads_.reserve(static_cast<std::size_t>(heads));
    for (int h = 0; h < heads; ++h) {
      GatHeadParams<T> p;
      p.w = DenseMatrix<T>(k_in, k_head);
      p.w.fill_glorot(rng);
      p.a.resize(static_cast<std::size_t>(2 * k_head));
      const double limit = std::sqrt(6.0 / static_cast<double>(2 * k_head + 1));
      for (auto& v : p.a) v = static_cast<T>(rng.next_uniform(-limit, limit));
      heads_.push_back(std::move(p));
    }
  }

  int num_heads() const { return static_cast<int>(heads_.size()); }
  index_t in_features() const { return k_in_; }
  index_t head_features() const { return k_head_; }
  index_t out_features() const {
    return combine_ == HeadCombine::kConcat
               ? k_head_ * static_cast<index_t>(heads_.size())
               : k_head_;
  }
  HeadCombine combine() const { return combine_; }
  Activation activation() const { return act_; }
  T attention_slope() const { return slope_; }
  GatHeadParams<T>& head(int h) { return heads_[static_cast<std::size_t>(h)]; }
  const GatHeadParams<T>& head(int h) const {
    return heads_[static_cast<std::size_t>(h)];
  }

  DenseMatrix<T> forward(const CsrMatrix<T>& adj, const DenseMatrix<T>& h,
                         MultiHeadCache<T>* cache) const {
    AGNN_ASSERT(h.cols() == k_in_, "multi-head forward: feature width mismatch");
    const index_t n = h.rows();
    DenseMatrix<T> z(n, out_features(), T(0));
    if (cache) {
      cache->h_in = h;
      cache->heads.assign(heads_.size(), typename MultiHeadCache<T>::Head{});
    }
    const T head_scale = combine_ == HeadCombine::kAverage
                             ? T(1) / static_cast<T>(heads_.size())
                             : T(1);
    for (std::size_t hd = 0; hd < heads_.size(); ++hd) {
      const auto& p = heads_[hd];
      DenseMatrix<T> hp = matmul(h, p.w);
      const std::span<const T> a_all(p.a);
      const auto a1 = a_all.subspan(0, static_cast<std::size_t>(k_head_));
      const auto a2 = a_all.subspan(static_cast<std::size_t>(k_head_));
      std::vector<T> s1 = matvec(hp, a1);
      std::vector<T> s2 = matvec(hp, a2);
      GatPsi<T> gp = psi_gat<T>(adj, s1, s2, slope_);
      const DenseMatrix<T> z_head = spmm(gp.psi, hp);
      // Place the head's output into its combined slot.
      const index_t off = combine_ == HeadCombine::kConcat
                              ? static_cast<index_t>(hd) * k_head_
                              : 0;
      for (index_t i = 0; i < n; ++i) {
        T* zi = z.data() + i * z.cols() + off;
        const T* src = z_head.data() + i * k_head_;
        for (index_t j = 0; j < k_head_; ++j) zi[j] += head_scale * src[j];
      }
      if (cache) {
        auto& hc = cache->heads[hd];
        hc.psi = std::move(gp.psi);
        hc.scores_pre = std::move(gp.scores_pre);
        hc.hp = std::move(hp);
        hc.s1 = std::move(s1);
        hc.s2 = std::move(s2);
      }
    }
    if (cache) cache->z = z;
    return activate(act_, z, T(0.01));
  }

  // `g` is dL/dZ of the combined pre-activation.
  MultiHeadGrads<T> backward(const CsrMatrix<T>& adj, const MultiHeadCache<T>& cache,
                             const DenseMatrix<T>& g) const {
    MultiHeadGrads<T> out;
    out.heads.resize(heads_.size());
    out.d_h_in = DenseMatrix<T>(cache.h_in.rows(), k_in_, T(0));
    const T head_scale = combine_ == HeadCombine::kAverage
                             ? T(1) / static_cast<T>(heads_.size())
                             : T(1);
    for (std::size_t hd = 0; hd < heads_.size(); ++hd) {
      const auto& p = heads_[hd];
      const auto& hc = cache.heads[hd];
      // Slice (concat) or scale (average) the incoming gradient.
      DenseMatrix<T> g_head(g.rows(), k_head_);
      const index_t off = combine_ == HeadCombine::kConcat
                              ? static_cast<index_t>(hd) * k_head_
                              : 0;
      for (index_t i = 0; i < g.rows(); ++i) {
        const T* gi = g.data() + i * g.cols() + off;
        T* dst = g_head.data() + i * k_head_;
        for (index_t j = 0; j < k_head_; ++j) dst[j] = head_scale * gi[j];
      }

      // Single-head GAT backward (same derivation as Layer::backward_gat).
      const CsrMatrix<T> d_psi = sddmm(hc.psi.with_values(T(1)), g_head, hc.hp);
      const CsrMatrix<T> d_e = row_softmax_backward(hc.psi, d_psi);
      CsrMatrix<T> d_c = d_e;
      {
        auto v = d_c.vals_mutable();
        const auto pre = hc.scores_pre.vals();
        const auto av = adj.vals();
        for (index_t e = 0; e < d_c.nnz(); ++e) {
          const T ce = pre[static_cast<std::size_t>(e)];
          v[static_cast<std::size_t>(e)] *=
              av[static_cast<std::size_t>(e)] * (ce > T(0) ? T(1) : slope_);
        }
      }
      const std::vector<T> ds1 = sparse_row_sums(d_c);
      const std::vector<T> ds2 = sparse_col_sums(d_c);
      DenseMatrix<T> d_hp = spmm(hc.psi.transposed(), g_head);
      const std::span<const T> a_all(p.a);
      const auto a1 = a_all.subspan(0, static_cast<std::size_t>(k_head_));
      const auto a2 = a_all.subspan(static_cast<std::size_t>(k_head_));
      add_outer_inplace(d_hp, std::span<const T>(ds1), a1);
      add_outer_inplace(d_hp, std::span<const T>(ds2), a2);

      auto& hg = out.heads[hd];
      hg.d_a.resize(static_cast<std::size_t>(2 * k_head_));
      const std::vector<T> da1 = matvec_tn(hc.hp, std::span<const T>(ds1));
      const std::vector<T> da2 = matvec_tn(hc.hp, std::span<const T>(ds2));
      std::copy(da1.begin(), da1.end(), hg.d_a.begin());
      std::copy(da2.begin(), da2.end(), hg.d_a.begin() + k_head_);
      hg.d_w = matmul_tn(cache.h_in, d_hp);
      axpy(T(1), matmul_nt(d_hp, p.w), out.d_h_in);
    }
    return out;
  }

 private:
  index_t k_in_;
  index_t k_head_;
  HeadCombine combine_;
  Activation act_;
  T slope_;
  std::vector<GatHeadParams<T>> heads_;
};

// A complete multi-head GAT model: hidden layers concatenate their heads,
// the output layer averages them (the configuration of the original paper).
template <typename T>
class MultiHeadGat {
 public:
  struct Config {
    index_t in_features = 16;
    index_t head_features = 8;   // per-head width of hidden layers
    int heads = 4;
    index_t out_features = 4;    // classes (output layer head width)
    int out_heads = 1;
    int hidden_layers = 1;
    Activation hidden_activation = Activation::kRelu;
    double attention_slope = 0.2;
    std::uint64_t seed = 42;
  };

  explicit MultiHeadGat(const Config& cfg) : cfg_(cfg) {
    Rng rng(cfg.seed);
    index_t k_in = cfg.in_features;
    for (int l = 0; l < cfg.hidden_layers; ++l) {
      layers_.emplace_back(k_in, cfg.head_features, cfg.heads, HeadCombine::kConcat,
                           cfg.hidden_activation, rng,
                           static_cast<T>(cfg.attention_slope));
      k_in = layers_.back().out_features();
    }
    layers_.emplace_back(k_in, cfg.out_features, cfg.out_heads,
                         HeadCombine::kAverage, Activation::kIdentity, rng,
                         static_cast<T>(cfg.attention_slope));
  }

  std::size_t num_layers() const { return layers_.size(); }
  MultiHeadGatLayer<T>& layer(std::size_t l) { return layers_[l]; }
  const MultiHeadGatLayer<T>& layer(std::size_t l) const { return layers_[l]; }

  DenseMatrix<T> infer(const CsrMatrix<T>& adj, const DenseMatrix<T>& x) const {
    DenseMatrix<T> h = x;
    for (const auto& layer : layers_) h = layer.forward(adj, h, nullptr);
    return h;
  }

  DenseMatrix<T> forward(const CsrMatrix<T>& adj, const DenseMatrix<T>& x,
                         std::vector<MultiHeadCache<T>>& caches) const {
    caches.assign(layers_.size(), MultiHeadCache<T>{});
    DenseMatrix<T> h = x;
    for (std::size_t l = 0; l < layers_.size(); ++l) {
      h = layers_[l].forward(adj, h, &caches[l]);
    }
    return h;
  }

  std::vector<MultiHeadGrads<T>> backward(const CsrMatrix<T>& adj,
                                          const std::vector<MultiHeadCache<T>>& caches,
                                          const DenseMatrix<T>& d_h_out) const {
    std::vector<MultiHeadGrads<T>> grads(layers_.size());
    DenseMatrix<T> g = activation_backward(layers_.back().activation(),
                                           caches.back().z, d_h_out);
    for (std::size_t l = layers_.size(); l-- > 0;) {
      grads[l] = layers_[l].backward(adj, caches[l], g);
      if (l > 0) {
        g = activation_backward(layers_[l - 1].activation(), caches[l - 1].z,
                                grads[l].d_h_in);
      }
    }
    return grads;
  }

  void apply_gradients(const std::vector<MultiHeadGrads<T>>& grads,
                       Optimizer<T>& opt) {
    std::size_t slot = 0;
    for (std::size_t l = 0; l < layers_.size(); ++l) {
      for (int h = 0; h < layers_[l].num_heads(); ++h) {
        auto& p = layers_[l].head(h);
        const auto& hg = grads[l].heads[static_cast<std::size_t>(h)];
        opt.step(slot++, p.w.flat(), hg.d_w.flat());
        opt.step(slot++, std::span<T>(p.a), std::span<const T>(hg.d_a));
      }
    }
  }

 private:
  Config cfg_;
  std::vector<MultiHeadGatLayer<T>> layers_;
};

}  // namespace agnn
