// Multi-head graph attention (the full GAT of Velickovic et al., which the
// single-head Layer specializes): K independent attention heads per layer,
// concatenated on hidden layers and averaged on the output layer.
//
// In the global formulation each head h is an independent
//   Psi_h = sm(A ⊙ LeakyReLU(s1_h 1^T + 1 s2_h^T)),   Z_h = Psi_h (H W_h),
// and the layer output is [Z_1 || ... || Z_K] (concat) or (1/K) sum_h Z_h
// (average). All heads share the adjacency pattern, so the fused kernels
// are reused verbatim per head. The backward pass follows the single-head
// derivation per head with the incoming gradient sliced (concat) or scaled
// (average).
//
// The workspace-threaded entry points reuse cache slots in place and draw
// per-head scratch from the pool; handles released at the end of one head's
// iteration are re-acquired by the next head, so a layer needs one set of
// scratch buffers regardless of head count.
#pragma once

#include <vector>

#include "core/activations.hpp"
#include "core/optimizer.hpp"
#include "core/workspace.hpp"
#include "tensor/fused.hpp"
#include "tensor/sparse_ops.hpp"
#include "tensor/spmm.hpp"

namespace agnn {

enum class HeadCombine { kConcat, kAverage };

template <typename T>
struct GatHeadParams {
  DenseMatrix<T> w;    // k_in x k_head
  std::vector<T> a;    // 2 * k_head ([a1; a2])
};

template <typename T>
struct GatHeadGrads {
  DenseMatrix<T> d_w;
  std::vector<T> d_a;
};

template <typename T>
struct MultiHeadCache {
  DenseMatrix<T> h_in;
  DenseMatrix<T> z;  // combined pre-activation
  struct Head {
    CsrMatrix<T> psi;
    CsrMatrix<T> scores_pre;
    DenseMatrix<T> hp;
    std::vector<T> s1, s2;
  };
  std::vector<Head> heads;
};

template <typename T>
struct MultiHeadGrads {
  std::vector<GatHeadGrads<T>> heads;
  DenseMatrix<T> d_h_in;
};

template <typename T>
class MultiHeadGatLayer {
 public:
  MultiHeadGatLayer(index_t k_in, index_t k_head, int heads, HeadCombine combine,
                    Activation act, Rng& rng, T slope = T(0.2))
      : k_in_(k_in),
        k_head_(k_head),
        combine_(combine),
        act_(act),
        slope_(slope) {
    AGNN_ASSERT(heads >= 1, "need at least one attention head");
    heads_.reserve(static_cast<std::size_t>(heads));
    for (int h = 0; h < heads; ++h) {
      GatHeadParams<T> p;
      p.w = DenseMatrix<T>(k_in, k_head);
      p.w.fill_glorot(rng);
      p.a.resize(static_cast<std::size_t>(2 * k_head));
      const double limit = std::sqrt(6.0 / static_cast<double>(2 * k_head + 1));
      for (auto& v : p.a) v = static_cast<T>(rng.next_uniform(-limit, limit));
      heads_.push_back(std::move(p));
    }
  }

  int num_heads() const { return static_cast<int>(heads_.size()); }
  index_t in_features() const { return k_in_; }
  index_t head_features() const { return k_head_; }
  index_t out_features() const {
    return combine_ == HeadCombine::kConcat
               ? k_head_ * static_cast<index_t>(heads_.size())
               : k_head_;
  }
  HeadCombine combine() const { return combine_; }
  Activation activation() const { return act_; }
  T attention_slope() const { return slope_; }
  GatHeadParams<T>& head(int h) { return heads_[static_cast<std::size_t>(h)]; }
  const GatHeadParams<T>& head(int h) const {
    return heads_[static_cast<std::size_t>(h)];
  }

  void forward(const CsrMatrix<T>& adj, const DenseMatrix<T>& h,
               MultiHeadCache<T>* cache, Workspace<T>& ws,
               DenseMatrix<T>& out) const {
    AGNN_ASSERT(h.cols() == k_in_, "multi-head forward: feature width mismatch");
    AGNN_ASSERT(&out != &h, "multi-head forward: out must not alias h");
    const index_t n = h.rows();
    // The combined pre-activation accumulates across heads; with a cache it
    // lives in the cache slot (backward needs it), otherwise in `out` itself
    // and is activated in place at the end.
    PooledDense<T> zb;
    DenseMatrix<T>* z;
    if (cache) {
      if (&cache->h_in != &h) cache->h_in = h;
      cache->heads.resize(heads_.size());  // preserves per-head slot storage
      z = &cache->z;
    } else {
      z = &out;
    }
    z->resize(n, out_features());
    z->fill(T(0));
    const T head_scale = combine_ == HeadCombine::kAverage
                             ? T(1) / static_cast<T>(heads_.size())
                             : T(1);
    auto z_head = ws.acquire_dense(n, k_head_);
    for (std::size_t hd = 0; hd < heads_.size(); ++hd) {
      const auto& p = heads_[hd];
      // Per-head slots: cache members when training, pooled when not. The
      // pooled handles release at the end of the iteration, so every head
      // after the first re-acquires the same buffers.
      PooledDense<T> hpb;
      PooledCsr<T> psib, preb;
      PooledVec<T> s1b, s2b;
      DenseMatrix<T>* hp;
      CsrMatrix<T>* psi;
      CsrMatrix<T>* pre;
      std::vector<T>* s1;
      std::vector<T>* s2;
      if (cache) {
        auto& hc = cache->heads[hd];
        hp = &hc.hp;
        psi = &hc.psi;
        pre = &hc.scores_pre;
        s1 = &hc.s1;
        s2 = &hc.s2;
      } else {
        hpb = ws.acquire_dense(n, k_head_);
        psib = ws.acquire_csr(adj.rows(), adj.cols(), adj.nnz());
        preb = ws.acquire_csr(adj.rows(), adj.cols(), adj.nnz());
        s1b = ws.acquire_vec(n);
        s2b = ws.acquire_vec(n);
        hp = &*hpb;
        psi = &*psib;
        pre = &*preb;
        s1 = &*s1b;
        s2 = &*s2b;
      }
      matmul(h, p.w, *hp);
      const std::span<const T> a_all(p.a);
      const auto a1 = a_all.subspan(0, static_cast<std::size_t>(k_head_));
      const auto a2 = a_all.subspan(static_cast<std::size_t>(k_head_));
      matvec(*hp, a1, *s1);
      matvec(*hp, a2, *s2);
      psi_gat<T>(adj, *s1, *s2, slope_, *pre, *psi);
      spmm(*psi, *hp, *z_head);
      // Place the head's output into its combined slot.
      const index_t off = combine_ == HeadCombine::kConcat
                              ? static_cast<index_t>(hd) * k_head_
                              : 0;
      for (index_t i = 0; i < n; ++i) {
        T* zi = z->data() + i * z->cols() + off;
        const T* src = z_head->data() + i * k_head_;
        for (index_t j = 0; j < k_head_; ++j) zi[j] += head_scale * src[j];
      }
    }
    if (cache) {
      activate(act_, cache->z, out, T(0.01));
    } else {
      activate(act_, out, out, T(0.01));  // in place
    }
  }

  DenseMatrix<T> forward(const CsrMatrix<T>& adj, const DenseMatrix<T>& h,
                         MultiHeadCache<T>* cache) const {
    Workspace<T> ws;
    DenseMatrix<T> out;
    forward(adj, h, cache, ws, out);
    return out;
  }

  // `g` is dL/dZ of the combined pre-activation.
  void backward(const CsrMatrix<T>& adj, const MultiHeadCache<T>& cache,
                const DenseMatrix<T>& g, Workspace<T>& ws,
                MultiHeadGrads<T>& out) const {
    out.heads.resize(heads_.size());
    out.d_h_in.resize(cache.h_in.rows(), k_in_);
    out.d_h_in.fill(T(0));
    const T head_scale = combine_ == HeadCombine::kAverage
                             ? T(1) / static_cast<T>(heads_.size())
                             : T(1);
    auto g_head = ws.acquire_dense(g.rows(), k_head_);
    for (std::size_t hd = 0; hd < heads_.size(); ++hd) {
      const auto& p = heads_[hd];
      const auto& hc = cache.heads[hd];
      // Slice (concat) or scale (average) the incoming gradient.
      const index_t off = combine_ == HeadCombine::kConcat
                              ? static_cast<index_t>(hd) * k_head_
                              : 0;
      for (index_t i = 0; i < g.rows(); ++i) {
        const T* gi = g.data() + i * g.cols() + off;
        T* dst = g_head->data() + i * k_head_;
        for (index_t j = 0; j < k_head_; ++j) dst[j] = head_scale * gi[j];
      }

      // Single-head GAT backward (same derivation as Layer::backward_gat).
      auto d_psi = ws.acquire_csr(hc.psi.rows(), hc.psi.cols(), hc.psi.nnz());
      sddmm_unweighted(hc.psi, *g_head, hc.hp, *d_psi);
      auto d_c = ws.acquire_csr(hc.psi.rows(), hc.psi.cols(), hc.psi.nnz());
      row_softmax_backward(hc.psi, *d_psi, *d_c);
      {
        auto v = d_c->vals_mutable();
        const auto pre = hc.scores_pre.vals();
        const auto av = adj.vals();
        for (index_t e = 0; e < d_c->nnz(); ++e) {
          const T ce = pre[static_cast<std::size_t>(e)];
          v[static_cast<std::size_t>(e)] *=
              av[static_cast<std::size_t>(e)] * (ce > T(0) ? T(1) : slope_);
        }
      }
      auto ds1 = ws.acquire_vec(hc.psi.rows());
      sparse_row_sums(*d_c, *ds1);
      auto ds2 = ws.acquire_vec(hc.psi.cols());
      sparse_col_sums(*d_c, *ds2);
      auto st = ws.acquire_csr(hc.psi.cols(), hc.psi.rows(), hc.psi.nnz());
      hc.psi.transposed_into(*st);
      auto d_hp = ws.acquire_dense(g.rows(), k_head_);
      spmm(*st, *g_head, *d_hp);
      const std::span<const T> a_all(p.a);
      const auto a1 = a_all.subspan(0, static_cast<std::size_t>(k_head_));
      const auto a2 = a_all.subspan(static_cast<std::size_t>(k_head_));
      add_outer_inplace(*d_hp, ds1.cspan(), a1);
      add_outer_inplace(*d_hp, ds2.cspan(), a2);

      auto& hg = out.heads[hd];
      hg.d_a.resize(static_cast<std::size_t>(2 * k_head_));
      auto da1 = ws.acquire_vec(k_head_);
      matvec_tn(hc.hp, ds1.cspan(), *da1);
      auto da2 = ws.acquire_vec(k_head_);
      matvec_tn(hc.hp, ds2.cspan(), *da2);
      std::copy(da1->begin(), da1->end(), hg.d_a.begin());
      std::copy(da2->begin(), da2->end(), hg.d_a.begin() + k_head_);
      matmul_tn(cache.h_in, *d_hp, hg.d_w);
      auto gw = ws.acquire_dense(g.rows(), k_in_);
      matmul_nt(*d_hp, p.w, *gw);
      axpy(T(1), *gw, out.d_h_in);
    }
  }

  MultiHeadGrads<T> backward(const CsrMatrix<T>& adj, const MultiHeadCache<T>& cache,
                             const DenseMatrix<T>& g) const {
    Workspace<T> ws;
    MultiHeadGrads<T> out;
    backward(adj, cache, g, ws, out);
    return out;
  }

 private:
  index_t k_in_;
  index_t k_head_;
  HeadCombine combine_;
  Activation act_;
  T slope_;
  std::vector<GatHeadParams<T>> heads_;
};

// A complete multi-head GAT model: hidden layers concatenate their heads,
// the output layer averages them (the configuration of the original paper).
template <typename T>
class MultiHeadGat {
 public:
  struct Config {
    index_t in_features = 16;
    index_t head_features = 8;   // per-head width of hidden layers
    int heads = 4;
    index_t out_features = 4;    // classes (output layer head width)
    int out_heads = 1;
    int hidden_layers = 1;
    Activation hidden_activation = Activation::kRelu;
    double attention_slope = 0.2;
    std::uint64_t seed = 42;
  };

  explicit MultiHeadGat(const Config& cfg) : cfg_(cfg) {
    Rng rng(cfg.seed);
    index_t k_in = cfg.in_features;
    for (int l = 0; l < cfg.hidden_layers; ++l) {
      layers_.emplace_back(k_in, cfg.head_features, cfg.heads, HeadCombine::kConcat,
                           cfg.hidden_activation, rng,
                           static_cast<T>(cfg.attention_slope));
      k_in = layers_.back().out_features();
    }
    layers_.emplace_back(k_in, cfg.out_features, cfg.out_heads,
                         HeadCombine::kAverage, Activation::kIdentity, rng,
                         static_cast<T>(cfg.attention_slope));
  }

  std::size_t num_layers() const { return layers_.size(); }
  MultiHeadGatLayer<T>& layer(std::size_t l) { return layers_[l]; }
  const MultiHeadGatLayer<T>& layer(std::size_t l) const { return layers_[l]; }

  index_t max_layer_width() const {
    index_t w = 0;
    for (const auto& layer : layers_) w = std::max(w, layer.out_features());
    return w;
  }

  void infer(const CsrMatrix<T>& adj, const DenseMatrix<T>& x, Workspace<T>& ws,
             DenseMatrix<T>& h_out) const {
    if (layers_.size() == 1) {
      layers_[0].forward(adj, x, nullptr, ws, h_out);
      return;
    }
    auto buf0 = ws.acquire_dense(x.rows(), max_layer_width());
    auto buf1 = ws.acquire_dense(x.rows(), max_layer_width());
    const DenseMatrix<T>* src = &x;
    for (std::size_t l = 0; l < layers_.size(); ++l) {
      const bool last = (l + 1 == layers_.size());
      DenseMatrix<T>* dst = last ? &h_out : (l % 2 == 0 ? &*buf0 : &*buf1);
      layers_[l].forward(adj, *src, nullptr, ws, *dst);
      src = dst;
    }
  }

  DenseMatrix<T> infer(const CsrMatrix<T>& adj, const DenseMatrix<T>& x) const {
    Workspace<T> ws;
    DenseMatrix<T> h;
    infer(adj, x, ws, h);
    return h;
  }

  // Training forward: each layer's output lands directly in the next
  // layer's h_in cache slot (no intermediate feature buffer).
  void forward(const CsrMatrix<T>& adj, const DenseMatrix<T>& x,
               std::vector<MultiHeadCache<T>>& caches, Workspace<T>& ws,
               DenseMatrix<T>& h_out) const {
    caches.resize(layers_.size());  // preserves slot storage across steps
    for (std::size_t l = 0; l < layers_.size(); ++l) {
      DenseMatrix<T>& h = caches[l].h_in;
      if (l == 0) h = x;
      const bool last = (l + 1 == layers_.size());
      DenseMatrix<T>& dst = last ? h_out : caches[l + 1].h_in;
      layers_[l].forward(adj, h, &caches[l], ws, dst);
    }
  }

  DenseMatrix<T> forward(const CsrMatrix<T>& adj, const DenseMatrix<T>& x,
                         std::vector<MultiHeadCache<T>>& caches) const {
    Workspace<T> ws;
    DenseMatrix<T> h;
    forward(adj, x, caches, ws, h);
    return h;
  }

  void backward(const CsrMatrix<T>& adj,
                const std::vector<MultiHeadCache<T>>& caches,
                const DenseMatrix<T>& d_h_out, Workspace<T>& ws,
                std::vector<MultiHeadGrads<T>>& grads) const {
    grads.resize(layers_.size());
    auto g = ws.acquire_dense(d_h_out.rows(), max_layer_width());
    activation_backward(layers_.back().activation(), caches.back().z, d_h_out, *g);
    for (std::size_t l = layers_.size(); l-- > 0;) {
      layers_[l].backward(adj, caches[l], *g, ws, grads[l]);
      if (l > 0) {
        activation_backward(layers_[l - 1].activation(), caches[l - 1].z,
                            grads[l].d_h_in, *g);
      }
    }
  }

  std::vector<MultiHeadGrads<T>> backward(const CsrMatrix<T>& adj,
                                          const std::vector<MultiHeadCache<T>>& caches,
                                          const DenseMatrix<T>& d_h_out) const {
    Workspace<T> ws;
    std::vector<MultiHeadGrads<T>> grads;
    backward(adj, caches, d_h_out, ws, grads);
    return grads;
  }

  void apply_gradients(const std::vector<MultiHeadGrads<T>>& grads,
                       Optimizer<T>& opt) {
    std::size_t slot = 0;
    for (std::size_t l = 0; l < layers_.size(); ++l) {
      for (int h = 0; h < layers_[l].num_heads(); ++h) {
        auto& p = layers_[l].head(h);
        const auto& hg = grads[l].heads[static_cast<std::size_t>(h)];
        opt.step(slot++, p.w.flat(), hg.d_w.flat());
        opt.step(slot++, std::span<T>(p.a), std::span<const T>(hg.d_a));
      }
    }
  }

 private:
  Config cfg_;
  std::vector<MultiHeadGatLayer<T>> layers_;
};

}  // namespace agnn
