// The programmable generic layer of Eq. (1):
//
//   H^{l+1} = sigma( (Phi ∘ ⊕)( Psi(A, H^l), H^l ) )
//
// The user supplies Psi (edge-score function producing the sparse attention
// matrix), the aggregation ⊕ (any of the Section 4.3 semirings), and Phi
// (the update, default a linear projection), plus the composition order of
// Phi and ⊕ (Section 4.4). This is the programmability story of the paper:
// new A-GNN variants are a Psi-functor away, and once Psi is computed the
// same execution path serves C-GNNs and A-GNNs alike.
//
// Forward-only by design — it is the rapid-prototyping surface; the tuned
// trainable models live in layer.hpp.
#pragma once

#include <functional>

#include "core/activations.hpp"
#include "tensor/fused.hpp"
#include "tensor/spmm.hpp"

namespace agnn {

template <typename T>
struct GenericLayerSpec {
  // Psi(A, H) -> sparse attention matrix with A's pattern.
  std::function<CsrMatrix<T>(const CsrMatrix<T>&, const DenseMatrix<T>&)> psi;
  Aggregation aggregation = Aggregation::kSum;
  // Phi: dense update applied to the aggregated features (default H * W).
  std::function<DenseMatrix<T>(const DenseMatrix<T>&)> phi;
  // Apply Phi before ⊕ (Z = (Psi ⊕ Phi(H))) or after (Z = Phi(Psi ⊕ H)).
  // Legal only when Phi commutes with ⊕ (true for linear Phi with the sum
  // aggregation; the caller is responsible, as Section 4 notes).
  bool phi_first = false;
  Activation activation = Activation::kRelu;
};

// Ready-made Psi functors for the spec.
template <typename T>
auto make_psi_identity() {
  return [](const CsrMatrix<T>& a, const DenseMatrix<T>&) { return a; };
}
template <typename T>
auto make_psi_va() {
  return [](const CsrMatrix<T>& a, const DenseMatrix<T>& h) { return psi_va(a, h); };
}
template <typename T>
auto make_psi_agnn() {
  return [](const CsrMatrix<T>& a, const DenseMatrix<T>& h) { return psi_agnn(a, h); };
}

template <typename T>
DenseMatrix<T> generic_layer_forward(const GenericLayerSpec<T>& spec,
                                     const CsrMatrix<T>& adj,
                                     const DenseMatrix<T>& h) {
  AGNN_ASSERT(static_cast<bool>(spec.psi), "generic layer: Psi must be set");
  const CsrMatrix<T> psi = spec.psi(adj, h);
  DenseMatrix<T> z;
  if (spec.phi_first && spec.phi) {
    z = aggregate(psi, spec.phi(h), spec.aggregation);
  } else {
    z = aggregate(psi, h, spec.aggregation);
    if (spec.phi) z = spec.phi(z);
  }
  return activate(spec.activation, z);
}

// Convenience Phi: multiplication by a fixed parameter matrix.
template <typename T>
auto make_phi_linear(DenseMatrix<T> w) {
  return [w = std::move(w)](const DenseMatrix<T>& h) { return matmul(h, w); };
}

}  // namespace agnn
