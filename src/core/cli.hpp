// A minimal command-line option parser for the example/benchmark drivers,
// mirroring the flag set of the paper artifact's unified_single_bench.py /
// unified_distr_bench.py (-m model, -v vertices, -e edges, -d dataset,
// --features, -l layers, --repeat, --warmup, --inference, ...).
#pragma once

#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "tensor/common.hpp"

namespace agnn {

class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      AGNN_ASSERT(arg.size() >= 2 && arg[0] == '-',
                  "expected an option, got: " + arg);
      // Split --opt=value.
      std::string value;
      const auto eq = arg.find('=');
      bool has_inline_value = false;
      if (eq != std::string::npos) {
        value = arg.substr(eq + 1);
        arg = arg.substr(0, eq);
        has_inline_value = true;
      }
      if (!has_inline_value && i + 1 < argc && argv[i + 1][0] != '-') {
        value = argv[++i];
        has_inline_value = true;
      }
      values_[arg] = has_inline_value ? value : std::string("1");  // flag = true
    }
  }

  bool has(const std::string& name) const { return values_.count(name) > 0; }

  std::string get_string(const std::string& name, const std::string& fallback) const {
    const auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
  }

  // Two spellings (short and long) resolve to the same option.
  std::string get_string(const std::string& short_name, const std::string& long_name,
                         const std::string& fallback) const {
    if (has(short_name)) return get_string(short_name, fallback);
    return get_string(long_name, fallback);
  }

  long get_long(const std::string& name, long fallback) const {
    const auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    char* end = nullptr;
    const long v = std::strtol(it->second.c_str(), &end, 10);
    AGNN_ASSERT(end != nullptr && *end == '\0',
                "option " + name + " expects an integer, got: " + it->second);
    return v;
  }

  long get_long(const std::string& short_name, const std::string& long_name,
                long fallback) const {
    if (has(short_name)) return get_long(short_name, fallback);
    return get_long(long_name, fallback);
  }

  bool get_flag(const std::string& name) const { return has(name); }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace agnn
