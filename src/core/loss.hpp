// Losses on the final-layer feature matrix H^L.
//
// Each loss returns both the scalar value and nabla_{H^L} L, the gradient
// that bootstraps the backward recursion (Eq. 4):
//   G^L = nabla_{H^L} L ⊙ sigma'(Z^L).
#pragma once

#include <cmath>
#include <vector>

#if defined(_OPENMP)
#include <omp.h>
#endif

#include "tensor/dense_matrix.hpp"

namespace agnn {

template <typename T>
struct LossResult {
  T value = T(0);
  DenseMatrix<T> grad;  // dL/dH, same shape as H
};

// Softmax cross-entropy over rows (node classification). `labels[i]` is the
// class of vertex i; `mask` (optional) selects the training vertices —
// unmasked rows contribute neither loss nor gradient.
// `normalize_count`, when positive, overrides the divisor (the distributed
// engine normalizes local blocks by the *global* active-vertex count).
// The out-parameter form reuses `out.grad`'s storage across steps (no
// allocation within capacity) — the training loops call this every epoch.
template <typename T>
void softmax_cross_entropy(const DenseMatrix<T>& h,
                           std::span<const index_t> labels, LossResult<T>& out,
                           std::span<const std::uint8_t> mask = {},
                           index_t normalize_count = -1) {
  AGNN_ASSERT(static_cast<index_t>(labels.size()) == h.rows(),
              "cross entropy: one label per row required");
  AGNN_ASSERT(mask.empty() || static_cast<index_t>(mask.size()) == h.rows(),
              "cross entropy: mask size mismatch");
  out.value = T(0);
  out.grad.resize(h.rows(), h.cols());
  out.grad.fill(T(0));
  const index_t n = h.rows(), c = h.cols();
  index_t active = 0;
  for (index_t i = 0; i < n; ++i) {
    if (!mask.empty() && !mask[static_cast<std::size_t>(i)]) continue;
    ++active;
  }
  if (normalize_count > 0) active = normalize_count;
  if (active == 0) return;
  const T inv_n = T(1) / static_cast<T>(active);
  auto row_loss = [&](index_t i) -> double {
    if (!mask.empty() && !mask[static_cast<std::size_t>(i)]) return 0.0;
    const index_t y = labels[static_cast<std::size_t>(i)];
    AGNN_ASSERT(y >= 0 && y < c, "cross entropy: label out of range");
    const T* hi = h.data() + i * c;
    T mx = hi[0];
    for (index_t j = 1; j < c; ++j) mx = std::max(mx, hi[j]);
    T sum = T(0);
    for (index_t j = 0; j < c; ++j) sum += std::exp(hi[j] - mx);
    const T log_z = std::log(sum) + mx;
    T* gi = out.grad.data() + i * c;
    for (index_t j = 0; j < c; ++j) {
      const T p = std::exp(hi[j] - log_z);  // softmax probability
      gi[j] = (p - (j == y ? T(1) : T(0))) * inv_n;
    }
    return static_cast<double>(log_z - hi[y]);
  };
  double loss = 0.0;
#if defined(_OPENMP)
  // reduction(+) combines the per-thread partial sums in an unspecified
  // order, so repeated runs could differ in the last bits. Summing explicit
  // per-thread partials in thread-index order (over the same static row
  // partition) makes the loss bitwise reproducible run to run. The partial
  // buffer is per calling thread and grows once.
  {
    thread_local std::vector<double> partials;
    partials.assign(static_cast<std::size_t>(omp_get_max_threads()), 0.0);
    double* parts = partials.data();
#pragma omp parallel
    {
      double mine = 0.0;
#pragma omp for schedule(static) nowait
      for (index_t i = 0; i < n; ++i) mine += row_loss(i);
      parts[static_cast<std::size_t>(omp_get_thread_num())] = mine;
    }
    for (const double p : partials) loss += p;
  }
#else
  for (index_t i = 0; i < n; ++i) loss += row_loss(i);
#endif
  out.value = static_cast<T>(loss) * inv_n;
}

template <typename T>
LossResult<T> softmax_cross_entropy(const DenseMatrix<T>& h,
                                    std::span<const index_t> labels,
                                    std::span<const std::uint8_t> mask = {},
                                    index_t normalize_count = -1) {
  LossResult<T> out;
  softmax_cross_entropy(h, labels, out, mask, normalize_count);
  return out;
}

// Mean squared error against a target matrix: L = ||H - Y||_F^2 / (2 n).
template <typename T>
LossResult<T> mse_loss(const DenseMatrix<T>& h, const DenseMatrix<T>& target) {
  AGNN_ASSERT(h.same_shape(target), "mse: shape mismatch");
  LossResult<T> out;
  out.grad = DenseMatrix<T>(h.rows(), h.cols());
  const T inv_n = T(1) / static_cast<T>(h.rows());
  double loss = 0.0;
  for (index_t i = 0; i < h.size(); ++i) {
    const T d = h.data()[i] - target.data()[i];
    loss += 0.5 * static_cast<double>(d) * static_cast<double>(d);
    out.grad.data()[i] = d * inv_n;
  }
  out.value = static_cast<T>(loss) * inv_n;
  return out;
}

// Row-wise argmax — the predicted class per vertex.
template <typename T>
std::vector<index_t> argmax_rows(const DenseMatrix<T>& h) {
  std::vector<index_t> pred(static_cast<std::size_t>(h.rows()));
  for (index_t i = 0; i < h.rows(); ++i) {
    const T* hi = h.data() + i * h.cols();
    index_t best = 0;
    for (index_t j = 1; j < h.cols(); ++j) {
      if (hi[j] > hi[best]) best = j;
    }
    pred[static_cast<std::size_t>(i)] = best;
  }
  return pred;
}

template <typename T>
double accuracy(const DenseMatrix<T>& h, std::span<const index_t> labels,
                std::span<const std::uint8_t> mask = {}) {
  const auto pred = argmax_rows(h);
  index_t correct = 0, total = 0;
  for (index_t i = 0; i < h.rows(); ++i) {
    if (!mask.empty() && !mask[static_cast<std::size_t>(i)]) continue;
    ++total;
    if (pred[static_cast<std::size_t>(i)] == labels[static_cast<std::size_t>(i)]) ++correct;
  }
  return total > 0 ? static_cast<double>(correct) / static_cast<double>(total) : 0.0;
}

}  // namespace agnn
