// First-order optimizers updating flat parameter buffers.
//
// The paper trains with the generic rule W := W - alpha * Y (Section 5.1,
// Step 6) — plain SGD. Momentum-SGD and Adam are provided as the standard
// extensions a downstream user expects; all three operate on spans so that
// the same optimizer instance updates W matrices and a vectors alike.
#pragma once

#include <cmath>
#include <span>
#include <vector>

#include "tensor/common.hpp"

namespace agnn {

template <typename T>
class Optimizer {
 public:
  virtual ~Optimizer() = default;
  // Update parameter buffer `slot` (a stable id per parameter tensor).
  virtual void step(std::size_t slot, std::span<T> param, std::span<const T> grad) = 0;
  virtual void reset() = 0;

  // Flatten/restore the internal state (momentum, Adam moments) so a
  // recovery checkpoint reproduces the optimizer bit-for-bit. The blob
  // layout is private to each optimizer; a stateless optimizer keeps these
  // defaults (empty blob, restore == reset).
  virtual void snapshot_state(std::vector<double>& out) const { out.clear(); }
  virtual void restore_state(std::span<const double> in) {
    AGNN_ASSERT(in.empty(), "optimizer: unexpected state blob");
    reset();
  }
};

template <typename T>
class SgdOptimizer final : public Optimizer<T> {
 public:
  explicit SgdOptimizer(T lr, T momentum = T(0), T weight_decay = T(0))
      : lr_(lr), momentum_(momentum), weight_decay_(weight_decay) {}

  void step(std::size_t slot, std::span<T> param, std::span<const T> grad) override {
    AGNN_ASSERT(param.size() == grad.size(), "sgd: param/grad size mismatch");
    if (momentum_ == T(0)) {
      for (std::size_t i = 0; i < param.size(); ++i) {
        param[i] -= lr_ * (grad[i] + weight_decay_ * param[i]);
      }
      return;
    }
    auto& v = velocity(slot, param.size());
    for (std::size_t i = 0; i < param.size(); ++i) {
      v[i] = momentum_ * v[i] + grad[i] + weight_decay_ * param[i];
      param[i] -= lr_ * v[i];
    }
  }

  void reset() override { velocities_.clear(); }

  // Blob layout: [#slots][per slot: size, values...].
  void snapshot_state(std::vector<double>& out) const override {
    out.clear();
    out.push_back(static_cast<double>(velocities_.size()));
    for (const auto& v : velocities_) {
      out.push_back(static_cast<double>(v.size()));
      for (const T& x : v) out.push_back(static_cast<double>(x));
    }
  }

  void restore_state(std::span<const double> in) override {
    if (in.empty()) {  // checkpoint taken before any stateful step
      reset();
      return;
    }
    std::size_t pos = 0;
    const auto next = [&] {
      AGNN_ASSERT(pos < in.size(), "sgd: truncated state blob");
      return in[pos++];
    };
    velocities_.assign(static_cast<std::size_t>(next()), {});
    for (auto& v : velocities_) {
      v.resize(static_cast<std::size_t>(next()));
      for (T& x : v) x = static_cast<T>(next());
    }
    AGNN_ASSERT(pos == in.size(), "sgd: oversized state blob");
  }

 private:
  std::vector<T>& velocity(std::size_t slot, std::size_t size) {
    if (slot >= velocities_.size()) velocities_.resize(slot + 1);
    if (velocities_[slot].size() != size) velocities_[slot].assign(size, T(0));
    return velocities_[slot];
  }

  T lr_, momentum_, weight_decay_;
  std::vector<std::vector<T>> velocities_;
};

template <typename T>
class AdamOptimizer final : public Optimizer<T> {
 public:
  explicit AdamOptimizer(T lr, T beta1 = T(0.9), T beta2 = T(0.999),
                         T eps = T(1e-8), T weight_decay = T(0))
      : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps), weight_decay_(weight_decay) {}

  void step(std::size_t slot, std::span<T> param, std::span<const T> grad) override {
    AGNN_ASSERT(param.size() == grad.size(), "adam: param/grad size mismatch");
    auto& st = state(slot, param.size());
    st.t += 1;
    const T bc1 = T(1) - static_cast<T>(std::pow(static_cast<double>(beta1_), st.t));
    const T bc2 = T(1) - static_cast<T>(std::pow(static_cast<double>(beta2_), st.t));
    for (std::size_t i = 0; i < param.size(); ++i) {
      const T g = grad[i] + weight_decay_ * param[i];
      st.m[i] = beta1_ * st.m[i] + (T(1) - beta1_) * g;
      st.v[i] = beta2_ * st.v[i] + (T(1) - beta2_) * g * g;
      const T m_hat = st.m[i] / bc1;
      const T v_hat = st.v[i] / bc2;
      param[i] -= lr_ * m_hat / (std::sqrt(v_hat) + eps_);
    }
  }

  void reset() override { states_.clear(); }

  // Blob layout: [#slots][per slot: t, size, m..., v...].
  void snapshot_state(std::vector<double>& out) const override {
    out.clear();
    out.push_back(static_cast<double>(states_.size()));
    for (const State& st : states_) {
      out.push_back(static_cast<double>(st.t));
      out.push_back(static_cast<double>(st.m.size()));
      for (const T& x : st.m) out.push_back(static_cast<double>(x));
      for (const T& x : st.v) out.push_back(static_cast<double>(x));
    }
  }

  void restore_state(std::span<const double> in) override {
    if (in.empty()) {
      reset();
      return;
    }
    std::size_t pos = 0;
    const auto next = [&] {
      AGNN_ASSERT(pos < in.size(), "adam: truncated state blob");
      return in[pos++];
    };
    states_.assign(static_cast<std::size_t>(next()), {});
    for (State& st : states_) {
      st.t = static_cast<int>(next());
      const auto size = static_cast<std::size_t>(next());
      st.m.resize(size);
      st.v.resize(size);
      for (T& x : st.m) x = static_cast<T>(next());
      for (T& x : st.v) x = static_cast<T>(next());
    }
    AGNN_ASSERT(pos == in.size(), "adam: oversized state blob");
  }

 private:
  struct State {
    std::vector<T> m, v;
    int t = 0;
  };
  State& state(std::size_t slot, std::size_t size) {
    if (slot >= states_.size()) states_.resize(slot + 1);
    auto& st = states_[slot];
    if (st.m.size() != size) {
      st.m.assign(size, T(0));
      st.v.assign(size, T(0));
      st.t = 0;
    }
    return st;
  }

  T lr_, beta1_, beta2_, eps_, weight_decay_;
  std::vector<State> states_;
};

}  // namespace agnn
