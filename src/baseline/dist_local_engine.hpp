// Distributed LOCAL-formulation engine: the communication pattern of
// message-passing GNN systems (DistDGL and friends), implemented faithfully
// so the paper's global-vs-local comparison runs on identical hardware.
//
// Vertices are 1D block-partitioned over p ranks. Every layer:
//   1. ghost exchange — each rank fetches the feature vectors of all remote
//      neighbors of its owned vertices: Theta(min(n, d*n/p) * k) words per
//      rank, the local-formulation volume of Section 7 (vs the global
//      formulation's O(n*k/sqrt(p)));
//   2. local compute on the owned rows against the [owned; ghosts] feature
//      table;
//   3. (backward only) ghost scatter — gradient contributions to remote
//      vertices are shipped back to their owners, the reverse pattern with
//      the same volume.
//
// Per-rank compute uses the same fused kernels as the global engine, so the
// two engines differ *only* in communication — exactly the comparison the
// paper's analysis isolates.
#pragma once

#include <algorithm>
#include <vector>

#include "comm/communicator.hpp"
#include "core/layer.hpp"
#include "core/loss.hpp"
#include "core/model.hpp"
#include "core/optimizer.hpp"
#include "core/workspace.hpp"
#include "dist/process_grid.hpp"
#include "obs/trace.hpp"

namespace agnn::baseline {

template <typename T>
struct LocalLayerCache {
  DenseMatrix<T> table;         // [H_own; H_ghost] feature table
  DenseMatrix<T> z_own;         // pre-activation, owned rows
  CsrMatrix<T> psi_loc;         // attention block, owned rows x table cols
  CsrMatrix<T> cos_loc;         // AGNN cosine block
  CsrMatrix<T> scores_pre_loc;  // GAT pre-activation scores
  DenseMatrix<T> hp_table;      // GAT: W-projected table
  DenseMatrix<T> ph_own;        // pre-W aggregate (VA/AGNN/GCN); GIN: X
  DenseMatrix<T> mlp_pre_own;   // GIN: (X W) pre-activation
  DenseMatrix<T> mlp_hidden_own;  // GIN: sigma_mlp(X W)
};

template <typename T>
class DistLocalEngine {
 public:
  DistLocalEngine(comm::Communicator& world, const CsrMatrix<T>& a_global,
                  GnnModel<T>& model)
      : world_(world),
        p_(world.size()),
        n_(a_global.rows()),
        vr_(dist::block_range(n_, p_, world.rank())),
        model_(model) {
    build_partition(a_global);
    exchange_ghost_lists();
  }

  index_t num_vertices() const { return n_; }
  const dist::BlockRange& owned_block() const { return vr_; }
  index_t num_ghosts() const { return static_cast<index_t>(ghost_ids_.size()); }
  Workspace<T>& workspace() { return ws_; }
  const WorkspaceStats& workspace_stats() const { return ws_.stats(); }

  DenseMatrix<T> forward(const DenseMatrix<T>& x_global,
                         std::vector<LocalLayerCache<T>>* caches) {
    AGNN_TRACE_SCOPE("local_dist.forward", kPhase);
    DenseMatrix<T> h_own = x_global.slice_rows(vr_.begin, vr_.end);
    if (caches) caches->resize(model_.num_layers());  // keeps slot storage warm
    for (std::size_t l = 0; l < model_.num_layers(); ++l) {
      h_own = layer_forward(model_.layer(l), h_own, caches ? &(*caches)[l] : nullptr);
    }
    return h_own;
  }

  DenseMatrix<T> infer(const DenseMatrix<T>& x_global) {
    const DenseMatrix<T> h_own = forward(x_global, nullptr);
    const std::vector<T> flat = world_.allgatherv(std::span<const T>(h_own.flat()));
    return DenseMatrix<T>(n_, h_own.cols(), flat);
  }

  struct StepResult {
    T loss = T(0);
  };

  StepResult train_step(const DenseMatrix<T>& x_global,
                        std::span<const index_t> labels, Optimizer<T>& opt,
                        std::span<const std::uint8_t> mask = {}) {
    AGNN_TRACE_SCOPE("local_dist.train_step", kPhase);
    std::vector<LocalLayerCache<T>>& caches = caches_;  // persistent slots
    const DenseMatrix<T> h_own = forward(x_global, &caches);

    index_t active = 0;
    for (index_t i = 0; i < static_cast<index_t>(labels.size()); ++i) {
      if (mask.empty() || mask[static_cast<std::size_t>(i)]) ++active;
    }
    const auto local_labels = labels.subspan(static_cast<std::size_t>(vr_.begin),
                                             static_cast<std::size_t>(vr_.size()));
    const auto local_mask =
        mask.empty() ? mask
                     : mask.subspan(static_cast<std::size_t>(vr_.begin),
                                    static_cast<std::size_t>(vr_.size()));
    LossResult<T> loss = softmax_cross_entropy(h_own, local_labels, local_mask, active);
    std::vector<T> loss_buf{loss.value};
    world_.allreduce_sum(std::span<T>(loss_buf));

    const auto& last = model_.layer(model_.num_layers() - 1);
    DenseMatrix<T> g_own =
        activation_backward(last.activation(), caches.back().z_own, loss.grad);

    std::vector<LayerGrads<T>> grads(model_.num_layers());
    for (std::size_t l = model_.num_layers(); l-- > 0;) {
      DenseMatrix<T> gamma_own =
          layer_backward(model_.layer(l), caches[l], g_own, grads[l]);
      if (l > 0) {
        g_own = activation_backward(model_.layer(l - 1).activation(),
                                    caches[l - 1].z_own, gamma_own);
      }
    }
    model_.apply_gradients(grads, opt);
    return {loss_buf[0]};
  }

  // The world communicator (exposed so the recovery loop can barrier and
  // rendezvous on the same group the engine trains over).
  comm::Communicator& world() { return world_; }

 private:
  // ---- setup ---------------------------------------------------------------

  void build_partition(const CsrMatrix<T>& a_global) {
    const CsrMatrix<T> rows = a_global.block(vr_.begin, vr_.end, 0, n_);
    // Collect remote neighbor ids (ghosts), sorted and unique.
    std::vector<index_t> ghosts;
    for (index_t e = 0; e < rows.nnz(); ++e) {
      const index_t c = rows.col_at(e);
      if (c < vr_.begin || c >= vr_.end) ghosts.push_back(c);
    }
    std::sort(ghosts.begin(), ghosts.end());
    ghosts.erase(std::unique(ghosts.begin(), ghosts.end()), ghosts.end());
    ghost_ids_ = std::move(ghosts);

    // Re-index columns: owned -> [0, own), ghost g -> own + index(g).
    const index_t own = vr_.size();
    CooMatrix<T> coo;
    coo.n_rows = own;
    coo.n_cols = own + static_cast<index_t>(ghost_ids_.size());
    coo.reserve(static_cast<std::size_t>(rows.nnz()));
    for (index_t i = 0; i < own; ++i) {
      for (index_t e = rows.row_begin(i); e < rows.row_end(i); ++e) {
        const index_t c = rows.col_at(e);
        index_t lc;
        if (c >= vr_.begin && c < vr_.end) {
          lc = c - vr_.begin;
        } else {
          const auto it = std::lower_bound(ghost_ids_.begin(), ghost_ids_.end(), c);
          lc = own + static_cast<index_t>(it - ghost_ids_.begin());
        }
        coo.push_back(i, lc, rows.val_at(e));
      }
    }
    local_adj_ = CsrMatrix<T>::from_coo(coo);

    // Per-owner contiguous slices of the sorted ghost list.
    ghost_slice_.assign(static_cast<std::size_t>(p_) + 1, 0);
    for (int r = 0; r < p_; ++r) {
      const auto range = dist::block_range(n_, p_, r);
      const auto it = std::lower_bound(ghost_ids_.begin(), ghost_ids_.end(), range.begin);
      ghost_slice_[static_cast<std::size_t>(r)] =
          static_cast<index_t>(it - ghost_ids_.begin());
    }
    ghost_slice_[static_cast<std::size_t>(p_)] = static_cast<index_t>(ghost_ids_.size());
  }

  // Every rank learns, for every other rank r, which of r's ghosts it owns
  // (and where they sit in r's ghost list). Static partition-time metadata —
  // the analogue of DistDGL's partitioning step; per-layer accounting starts
  // after construction (callers reset the volume stats).
  void exchange_ghost_lists() {
    std::vector<std::size_t> offsets;
    const std::vector<index_t> all =
        world_.allgatherv(std::span<const index_t>(ghost_ids_), &offsets);
    incoming_offset_.assign(static_cast<std::size_t>(p_), 0);
    incoming_local_rows_.assign(static_cast<std::size_t>(p_), {});
    for (int r = 0; r < p_; ++r) {
      if (r == world_.rank()) continue;
      const std::size_t begin = offsets[static_cast<std::size_t>(r)];
      const std::size_t end = (r + 1 < p_) ? offsets[static_cast<std::size_t>(r) + 1]
                                           : all.size();
      // r's ghost list is sorted; my owned range is contiguous within it.
      const auto* lo = std::lower_bound(all.data() + begin, all.data() + end, vr_.begin);
      const auto* hi = std::lower_bound(all.data() + begin, all.data() + end, vr_.end);
      incoming_offset_[static_cast<std::size_t>(r)] =
          static_cast<index_t>(lo - (all.data() + begin));
      auto& rows = incoming_local_rows_[static_cast<std::size_t>(r)];
      rows.reserve(static_cast<std::size_t>(hi - lo));
      for (const auto* it = lo; it != hi; ++it) rows.push_back(*it - vr_.begin);
    }
  }

  // ---- communication steps ---------------------------------------------------

  // Fetch ghost feature rows from their owners (forward exchange), writing
  // directly into rows [own, own + G) of the feature table — no staging
  // buffer, so a reused table means a reused exchange target.
  void fetch_ghost_rows_into(const DenseMatrix<T>& h_own, DenseMatrix<T>& table) {
    AGNN_TRACE_SCOPE("local_dist.ghost_exchange", kPhase);
    const index_t k = h_own.cols();
    const index_t own = vr_.size();
    auto win = world_.expose(std::span<const T>(h_own.flat()));
    for (std::size_t g = 0; g < ghost_ids_.size(); ++g) {
      const index_t id = ghost_ids_[g];
      const int owner = owner_of(id);
      const auto range = dist::block_range(n_, p_, owner);
      win.get(table.row(own + static_cast<index_t>(g)), owner,
              static_cast<std::size_t>((id - range.begin) * k));
    }
    win.close();
  }

  // Ship ghost gradient contributions back to their owners and accumulate
  // into `gamma_own` (backward exchange). `contrib_ghost` rows follow the
  // ghost list order.
  void scatter_ghost_contributions(const DenseMatrix<T>& contrib_ghost,
                                   DenseMatrix<T>& gamma_own) {
    AGNN_TRACE_SCOPE("local_dist.ghost_scatter", kPhase);
    const index_t k = contrib_ghost.cols();
    auto win = world_.expose(std::span<const T>(contrib_ghost.flat()));
    for (int r = 0; r < p_; ++r) {
      if (r == world_.rank()) continue;
      const auto& rows = incoming_local_rows_[static_cast<std::size_t>(r)];
      if (rows.empty()) continue;
      DenseMatrix<T> buf(static_cast<index_t>(rows.size()), k);
      win.get(buf.flat(), r,
              static_cast<std::size_t>(incoming_offset_[static_cast<std::size_t>(r)] * k));
      for (std::size_t i = 0; i < rows.size(); ++i) {
        const T* src = buf.data() + static_cast<index_t>(i) * k;
        T* dst = gamma_own.data() + rows[i] * k;
        for (index_t j = 0; j < k; ++j) dst[j] += src[j];
      }
    }
    win.close();
  }

  int owner_of(index_t id) const {
    // Blocks are near-equal; locate by search over the p ranges.
    int lo = 0, hi = p_ - 1;
    while (lo < hi) {
      const int mid = (lo + hi) / 2;
      if (dist::block_range(n_, p_, mid).end <= id) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  // ---- per-layer forward -----------------------------------------------------

  DenseMatrix<T> layer_forward(const Layer<T>& layer, const DenseMatrix<T>& h_own,
                               LocalLayerCache<T>* cache) {
    AGNN_TRACE_SCOPE("local_dist.layer_forward", kPhase);
    DenseMatrix<T> w = layer.weights();
    world_.broadcast(w.flat(), 0);
    std::vector<T> a = layer.attention_params();
    if (!a.empty()) world_.broadcast(std::span<T>(a), 0);

    const index_t own = vr_.size();
    const index_t k_in = h_own.cols();
    // All intermediates live in the cache slots (or a throwaway scratch in
    // inference mode), overwritten in place across steps.
    LocalLayerCache<T> scratch;
    LocalLayerCache<T>& c = cache ? *cache : scratch;
    // Ghost exchange, straight into the feature table.
    c.table.resize(own + num_ghosts(), k_in);
    c.table.set_rows(0, h_own);
    fetch_ghost_rows_into(h_own, c.table);

    DenseMatrix<T> w2 = layer.weights2();
    if (!w2.empty()) world_.broadcast(w2.flat(), 0);

    comm::ComputeRegion t(world_.stats());
    switch (layer.kind()) {
      case ModelKind::kGCN: {
        spmm(local_adj_, c.table, c.ph_own);
        matmul(c.ph_own, w, c.z_own);
        c.psi_loc = local_adj_;
        break;
      }
      case ModelKind::kGIN: {
        spmm(local_adj_, c.table, c.ph_own);  // X = A H ...
        axpy(T(1) + layer.gin_epsilon(), h_own, c.ph_own);  // ... + (1+eps) H
        matmul(c.ph_own, w, c.mlp_pre_own);
        activate(layer.mlp_activation(), c.mlp_pre_own, c.mlp_hidden_own, T(0.01));
        matmul(c.mlp_hidden_own, w2, c.z_own);
        c.psi_loc = local_adj_;
        break;
      }
      case ModelKind::kVA: {
        sddmm(local_adj_, h_own, c.table, c.psi_loc);
        spmm(c.psi_loc, c.table, c.ph_own);
        matmul(c.ph_own, w, c.z_own);
        break;
      }
      case ModelKind::kAGNN: {
        sddmm_unweighted(local_adj_, h_own, c.table, c.cos_loc);
        auto inv_r = ws_.acquire_vec(own);
        auto inv_c = ws_.acquire_vec(c.table.rows());
        row_l2_norms(h_own, *inv_r);
        row_l2_norms(c.table, *inv_c);
        for (auto& v : *inv_r) v = v > T(0) ? T(1) / v : T(0);
        for (auto& v : *inv_c) v = v > T(0) ? T(1) / v : T(0);
        scale_rows_cols<T>(c.cos_loc, inv_r.cspan(), inv_c.cspan(), c.cos_loc);
        hadamard_same_pattern(c.cos_loc, local_adj_, c.psi_loc);
        spmm(c.psi_loc, c.table, c.ph_own);
        matmul(c.ph_own, w, c.z_own);
        break;
      }
      case ModelKind::kGAT: {
        matmul(c.table, w, c.hp_table);
        const index_t k_out = layer.out_features();
        const std::span<const T> a_all(a);
        const auto a1 = a_all.subspan(0, static_cast<std::size_t>(k_out));
        const auto a2 = a_all.subspan(static_cast<std::size_t>(k_out));
        auto s1 = ws_.acquire_vec(own);
        auto s2 = ws_.acquire_vec(c.hp_table.rows());
        for (index_t i = 0; i < own; ++i) {  // s1 needs only the owned rows
          const T* r = c.hp_table.data() + i * k_out;
          T acc = T(0);
          for (index_t g = 0; g < k_out; ++g) acc += r[g] * a1[static_cast<std::size_t>(g)];
          (*s1)[static_cast<std::size_t>(i)] = acc;
        }
        matvec(c.hp_table, a2, *s2);
        psi_gat<T>(local_adj_, s1.cspan(), s2.cspan(), layer.attention_slope(),
                   c.scores_pre_loc, c.psi_loc);
        spmm(c.psi_loc, c.hp_table, c.z_own);
        break;
      }
    }
    return activate(layer.activation(), c.z_own, T(0.01));
  }

  // ---- per-layer backward ------------------------------------------------------

  DenseMatrix<T> layer_backward(const Layer<T>& layer, const LocalLayerCache<T>& cache,
                                const DenseMatrix<T>& g_own, LayerGrads<T>& grads) {
    AGNN_TRACE_SCOPE("local_dist.layer_backward", kPhase);
    const DenseMatrix<T>& w = layer.weights();
    const index_t own = vr_.size();
    const index_t k_in = layer.in_features();
    DenseMatrix<T> h_own = cache.table.slice_rows(0, own);

    DenseMatrix<T> gamma_table;  // contributions to every table vertex
    switch (layer.kind()) {
      case ModelKind::kGCN: {
        comm::ComputeRegion t(world_.stats());
        grads.d_w = matmul_tn(cache.ph_own, g_own);
        const DenseMatrix<T> m_own = matmul_nt(g_own, w);
        gamma_table = spmm(local_adj_.transposed(), m_own);
        break;
      }
      case ModelKind::kGIN: {
        comm::ComputeRegion t(world_.stats());
        grads.d_w2 = matmul_tn(cache.mlp_hidden_own, g_own);
        const DenseMatrix<T> d_hidden = matmul_nt(g_own, layer.weights2());
        const DenseMatrix<T> d_pre = activation_backward(
            layer.mlp_activation(), cache.mlp_pre_own, d_hidden, T(0.01));
        grads.d_w = matmul_tn(cache.ph_own, d_pre);
        const DenseMatrix<T> d_x = matmul_nt(d_pre, w);
        gamma_table = spmm(local_adj_.transposed(), d_x);
        // The (1+eps) self-term lands on owned rows directly.
        for (index_t i = 0; i < own; ++i) {
          T* dst = gamma_table.data() + i * k_in;
          const T* src = d_x.data() + i * k_in;
          const T c = T(1) + layer.gin_epsilon();
          for (index_t j = 0; j < k_in; ++j) dst[j] += c * src[j];
        }
        break;
      }
      case ModelKind::kVA: {
        comm::ComputeRegion t(world_.stats());
        grads.d_w = matmul_tn(cache.ph_own, g_own);
        const DenseMatrix<T> m_own = matmul_nt(g_own, w);
        const CsrMatrix<T> n_loc = sddmm(local_adj_, m_own, cache.table);
        gamma_table = spmm(n_loc.transposed(), h_own);
        spmm_accumulate(cache.psi_loc.transposed(), m_own, gamma_table);
        // The N H term lands on owned rows directly.
        DenseMatrix<T> nh_own = spmm(n_loc, cache.table);
        for (index_t i = 0; i < own; ++i) {
          T* dst = gamma_table.data() + i * k_in;
          const T* src = nh_own.data() + i * k_in;
          for (index_t j = 0; j < k_in; ++j) dst[j] += src[j];
        }
        break;
      }
      case ModelKind::kAGNN: {
        comm::ComputeRegion t(world_.stats());
        grads.d_w = matmul_tn(cache.ph_own, g_own);
        const DenseMatrix<T> m_own = matmul_nt(g_own, w);
        const CsrMatrix<T> d_loc = sddmm(local_adj_, m_own, cache.table);
        const CsrMatrix<T> dc = hadamard_same_pattern(d_loc, cache.cos_loc);
        const std::vector<T> rs_own = sparse_row_sums(dc);
        const std::vector<T> cs_table = sparse_col_sums(dc);
        const std::vector<T> norms = row_l2_norms(cache.table);
        DenseMatrix<T> hhat = cache.table;
        for (index_t i = 0; i < hhat.rows(); ++i) {
          const T ni = norms[static_cast<std::size_t>(i)];
          if (ni <= T(0)) continue;
          T* row = hhat.data() + i * k_in;
          for (index_t j = 0; j < k_in; ++j) row[j] /= ni;
        }
        const DenseMatrix<T> hhat_own = hhat.slice_rows(0, own);
        // Column-side (ghost-reaching) cosine contributions, scaled by 1/n_j.
        gamma_table = spmm(d_loc.transposed(), hhat_own);
        for (index_t j = 0; j < gamma_table.rows(); ++j) {
          const T nj = norms[static_cast<std::size_t>(j)];
          T* row = gamma_table.data() + j * k_in;
          if (nj <= T(0)) {
            for (index_t g = 0; g < k_in; ++g) row[g] = T(0);
            continue;
          }
          const T coef = cs_table[static_cast<std::size_t>(j)];
          const T* hh = hhat.data() + j * k_in;
          const T inv = T(1) / nj;
          for (index_t g = 0; g < k_in; ++g) row[g] = (row[g] - coef * hh[g]) * inv;
        }
        spmm_accumulate(cache.psi_loc.transposed(), m_own, gamma_table);
        // Row-side cosine contributions land on owned rows.
        const DenseMatrix<T> dh_own = spmm(d_loc, hhat);
        for (index_t i = 0; i < own; ++i) {
          const T ni = norms[static_cast<std::size_t>(i)];
          if (ni <= T(0)) continue;
          T* dst = gamma_table.data() + i * k_in;
          const T* src = dh_own.data() + i * k_in;
          const T coef = rs_own[static_cast<std::size_t>(i)];
          const T* hh = hhat.data() + i * k_in;
          const T inv = T(1) / ni;
          for (index_t g = 0; g < k_in; ++g) dst[g] += (src[g] - coef * hh[g]) * inv;
        }
        break;
      }
      case ModelKind::kGAT: {
        comm::ComputeRegion t(world_.stats());
        const index_t k_out = layer.out_features();
        const std::span<const T> a_all(layer.attention_params());
        const auto a1 = a_all.subspan(0, static_cast<std::size_t>(k_out));
        const auto a2 = a_all.subspan(static_cast<std::size_t>(k_out));
        const CsrMatrix<T> d_psi =
            sddmm(cache.psi_loc.with_values(T(1)), g_own, cache.hp_table);
        const CsrMatrix<T> d_e = row_softmax_backward(cache.psi_loc, d_psi);
        CsrMatrix<T> d_c = d_e;
        {
          auto v = d_c.vals_mutable();
          const auto pre = cache.scores_pre_loc.vals();
          const T slope = layer.attention_slope();
          for (index_t e = 0; e < d_c.nnz(); ++e) {
            const T c = pre[static_cast<std::size_t>(e)];
            v[static_cast<std::size_t>(e)] *=
                local_adj_.val_at(e) * (c > T(0) ? T(1) : slope);
          }
        }
        const std::vector<T> ds1_own = sparse_row_sums(d_c);
        const std::vector<T> ds2_table = sparse_col_sums(d_c);
        DenseMatrix<T> dhp_table = spmm(cache.psi_loc.transposed(), g_own);
        for (index_t i = 0; i < own; ++i) {
          T* row = dhp_table.data() + i * k_out;
          const T s = ds1_own[static_cast<std::size_t>(i)];
          for (index_t g = 0; g < k_out; ++g) row[g] += s * a1[static_cast<std::size_t>(g)];
        }
        add_outer_inplace(dhp_table, std::span<const T>(ds2_table), a2);
        grads.d_w = matmul_tn(cache.table, dhp_table);
        grads.d_a.assign(static_cast<std::size_t>(2 * k_out), T(0));
        const DenseMatrix<T> hp_own = cache.hp_table.slice_rows(0, own);
        const std::vector<T> da1 = matvec_tn(hp_own, std::span<const T>(ds1_own));
        const std::vector<T> da2 = matvec_tn(cache.hp_table, std::span<const T>(ds2_table));
        std::copy(da1.begin(), da1.end(), grads.d_a.begin());
        std::copy(da2.begin(), da2.end(), grads.d_a.begin() + k_out);
        gamma_table = matmul_nt(dhp_table, w);
        break;
      }
    }

    // Parameter gradients are partial sums over ranks: allreduce.
    world_.allreduce_sum(grads.d_w.flat());
    if (!grads.d_w2.empty()) world_.allreduce_sum(grads.d_w2.flat());
    if (!grads.d_a.empty()) world_.allreduce_sum(std::span<T>(grads.d_a));

    // Assemble Gamma for owned rows: own part + remote contributions.
    DenseMatrix<T> gamma_own = gamma_table.slice_rows(0, own);
    const DenseMatrix<T> contrib_ghost =
        gamma_table.slice_rows(own, gamma_table.rows());
    scatter_ghost_contributions(contrib_ghost, gamma_own);
    return gamma_own;
  }

  comm::Communicator& world_;
  int p_;
  index_t n_;
  dist::BlockRange vr_;
  GnnModel<T>& model_;
  CsrMatrix<T> local_adj_;          // owned rows x [owned; ghosts]
  std::vector<index_t> ghost_ids_;  // sorted global ids of ghost vertices
  std::vector<index_t> ghost_slice_;  // per-owner ranges in ghost_ids_
  std::vector<index_t> incoming_offset_;               // per source rank
  std::vector<std::vector<index_t>> incoming_local_rows_;  // per source rank
  Workspace<T> ws_;                          // per-rank scratch pool
  std::vector<LocalLayerCache<T>> caches_;   // persistent training caches
};

}  // namespace agnn::baseline
