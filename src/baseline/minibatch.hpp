// Mini-batch sampling, mirroring the DistDGL baseline configuration of the
// paper's evaluation (mini-batches of up to 16k seed vertices).
//
// A batch is the induced subgraph on the seed vertices plus their 1-hop
// neighborhood (neighbors participate as feature sources; loss is taken on
// the seeds). The figure benchmarks run the same models on such batches to
// reproduce the paper's full-batch-vs-mini-batch comparison: the mini-batch
// engine touches many orders of magnitude fewer vertices per step, which is
// exactly the asterisk the paper attaches to DistDGL's numbers.
#pragma once

#include <algorithm>
#include <vector>

#include "tensor/coo_matrix.hpp"
#include "tensor/csr_matrix.hpp"
#include "tensor/dense_matrix.hpp"

namespace agnn::baseline {

template <typename T>
struct Minibatch {
  CsrMatrix<T> adj;                 // induced subgraph, local indices
  std::vector<index_t> vertices;    // local index -> global vertex id
  index_t num_seeds = 0;            // the first num_seeds vertices are seeds
};

template <typename T>
Minibatch<T> sample_minibatch(const CsrMatrix<T>& adj_global, index_t batch_size,
                              std::uint64_t seed) {
  const index_t n = adj_global.rows();
  batch_size = std::min(batch_size, n);
  Rng rng(seed);

  // Sample distinct seed vertices (Floyd-style would be overkill; sample
  // with rejection into a sorted set — batch sizes are << n in the regime
  // that matters, and == n degenerates to full batch).
  std::vector<index_t> seeds;
  if (batch_size >= n) {
    seeds.resize(static_cast<std::size_t>(n));
    for (index_t i = 0; i < n; ++i) seeds[static_cast<std::size_t>(i)] = i;
  } else {
    std::vector<bool> taken(static_cast<std::size_t>(n), false);
    seeds.reserve(static_cast<std::size_t>(batch_size));
    while (static_cast<index_t>(seeds.size()) < batch_size) {
      const auto v = static_cast<index_t>(rng.next_bounded(static_cast<std::uint64_t>(n)));
      if (!taken[static_cast<std::size_t>(v)]) {
        taken[static_cast<std::size_t>(v)] = true;
        seeds.push_back(v);
      }
    }
    std::sort(seeds.begin(), seeds.end());
  }

  // 1-hop frontier.
  std::vector<index_t> vertices = seeds;
  {
    std::vector<index_t> frontier;
    for (const index_t v : seeds) {
      for (index_t e = adj_global.row_begin(v); e < adj_global.row_end(v); ++e) {
        frontier.push_back(adj_global.col_at(e));
      }
    }
    std::sort(frontier.begin(), frontier.end());
    frontier.erase(std::unique(frontier.begin(), frontier.end()), frontier.end());
    // Keep only non-seed frontier vertices, appended after the seeds.
    std::vector<index_t> extra;
    std::set_difference(frontier.begin(), frontier.end(), seeds.begin(), seeds.end(),
                        std::back_inserter(extra));
    vertices.insert(vertices.end(), extra.begin(), extra.end());
  }

  // Global -> local index map (vertices is seeds-sorted then extras-sorted;
  // use a hash-free lookup via binary search on the two segments).
  auto local_of = [&](index_t g) -> index_t {
    const auto sit = std::lower_bound(seeds.begin(), seeds.end(), g);
    if (sit != seeds.end() && *sit == g) {
      return static_cast<index_t>(sit - seeds.begin());
    }
    const auto ebegin = vertices.begin() + static_cast<std::ptrdiff_t>(seeds.size());
    const auto eit = std::lower_bound(ebegin, vertices.end(), g);
    if (eit != vertices.end() && *eit == g) {
      return static_cast<index_t>(eit - vertices.begin());
    }
    return -1;
  };

  // Induced edges among batch vertices.
  CooMatrix<T> coo;
  coo.n_rows = coo.n_cols = static_cast<index_t>(vertices.size());
  for (std::size_t li = 0; li < vertices.size(); ++li) {
    const index_t g = vertices[li];
    for (index_t e = adj_global.row_begin(g); e < adj_global.row_end(g); ++e) {
      const index_t lc = local_of(adj_global.col_at(e));
      if (lc >= 0) {
        coo.push_back(static_cast<index_t>(li), lc, adj_global.val_at(e));
      }
    }
  }

  Minibatch<T> mb;
  mb.adj = CsrMatrix<T>::from_coo(coo);
  mb.vertices = std::move(vertices);
  mb.num_seeds = static_cast<index_t>(seeds.size());
  return mb;
}

// Extract the batch's feature rows from the global feature matrix.
template <typename T>
DenseMatrix<T> gather_batch_features(const DenseMatrix<T>& x_global,
                                     const Minibatch<T>& mb) {
  DenseMatrix<T> x(static_cast<index_t>(mb.vertices.size()), x_global.cols());
  for (std::size_t i = 0; i < mb.vertices.size(); ++i) {
    const auto src = x_global.row(mb.vertices[i]);
    std::copy(src.begin(), src.end(), x.row(static_cast<index_t>(i)).begin());
  }
  return x;
}

}  // namespace agnn::baseline
