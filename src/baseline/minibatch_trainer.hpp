// Mini-batch training, the execution mode of the DistDGL baseline (and the
// extension the paper's conclusion points to: "one can straightforwardly
// extend most of our routines to mini-batching").
//
// Each step samples a batch of seed vertices plus its 1-hop neighborhood,
// runs the (global-formulation) model on the induced subgraph, and takes the
// loss on the seeds only — neighbors participate as feature context. The
// same GnnModel is updated in place, so mini-batch and full-batch training
// are interchangeable on one model.
#pragma once

#include "baseline/minibatch.hpp"
#include "core/loss.hpp"
#include "core/model.hpp"
#include "core/optimizer.hpp"
#include "core/workspace.hpp"
#include "obs/obs_scope.hpp"

namespace agnn::baseline {

template <typename T>
class MinibatchTrainer {
 public:
  MinibatchTrainer(GnnModel<T>& model, std::unique_ptr<Optimizer<T>> opt,
                   index_t batch_size, std::uint64_t seed = 1)
      : model_(model), opt_(std::move(opt)), batch_size_(batch_size), seed_(seed) {}

  struct StepResult {
    T loss = T(0);
    index_t seeds = 0;
    index_t batch_vertices = 0;
  };

  StepResult step(const CsrMatrix<T>& adj, const DenseMatrix<T>& x,
                  std::span<const index_t> labels) {
    AGNN_EPOCH_SCOPE("minibatch.step");
    const Minibatch<T> mb = sample_minibatch(adj, batch_size_, seed_ + step_count_);
    ++step_count_;
    const DenseMatrix<T> bx = gather_batch_features(x, mb);
    std::vector<index_t> blabels(mb.vertices.size());
    std::vector<std::uint8_t> bmask(mb.vertices.size(), 0);
    for (std::size_t i = 0; i < mb.vertices.size(); ++i) {
      blabels[i] = labels[static_cast<std::size_t>(mb.vertices[i])];
      bmask[i] = static_cast<index_t>(i) < mb.num_seeds ? 1 : 0;
    }

    // Batch sizes vary step to step, but the workspace's size-bucketed pool
    // absorbs the jitter: buffers are recycled across batches, not per step.
    model_.forward(mb.adj, bx, caches_, ws_, h_);
    softmax_cross_entropy<T>(h_, blabels, loss_, bmask);
    auto adj_t = ws_.acquire_csr(mb.adj.cols(), mb.adj.rows(), mb.adj.nnz());
    mb.adj.transposed_into(*adj_t);
    model_.backward(mb.adj, *adj_t, caches_, loss_.grad, ws_, grads_);
    model_.apply_gradients(grads_, *opt_);
    return {loss_.value, mb.num_seeds, static_cast<index_t>(mb.vertices.size())};
  }

  Workspace<T>& workspace() { return ws_; }
  const WorkspaceStats& workspace_stats() const { return ws_.stats(); }

  // Run `steps` mini-batch steps; returns the loss trajectory.
  std::vector<T> train(const CsrMatrix<T>& adj, const DenseMatrix<T>& x,
                       std::span<const index_t> labels, int steps) {
    std::vector<T> losses;
    losses.reserve(static_cast<std::size_t>(steps));
    for (int s = 0; s < steps; ++s) losses.push_back(step(adj, x, labels).loss);
    return losses;
  }

 private:
  GnnModel<T>& model_;
  std::unique_ptr<Optimizer<T>> opt_;
  index_t batch_size_;
  std::uint64_t seed_;
  std::uint64_t step_count_ = 0;
  Workspace<T> ws_;
  std::vector<LayerCache<T>> caches_;
  std::vector<LayerGrads<T>> grads_;
  DenseMatrix<T> h_;
  LossResult<T> loss_;
};

}  // namespace agnn::baseline
