// The LOCAL formulation of the GNN models, executed the way message-passing
// frameworks execute it: per-vertex loops over adjacency lists with
// per-edge user-defined functions (gather -> edge-UDF -> scatter/reduce).
//
// This is the baseline the paper argues against (Section 2.2): identical
// mathematics to the global formulation, but expressed per vertex:
//
//   h_i^{l+1} = phi( h_i^l, ⊕_{j in N(i)} psi(h_i^l, h_j^l) )
//
// It serves two roles in this repo:
//   1. an independent oracle — the global-formulation layers must reproduce
//      it exactly (tests/test_models_forward.cpp);
//   2. the per-edge-UDF execution arm in the kernel benchmarks, mirroring
//      how DGL executes A-GNNs via local formulations.
//
// Forward pass only; the trainable local-formulation baseline (with the
// ghost-exchange communication pattern) is baseline/dist_local_engine.hpp.
#pragma once

#include <cmath>
#include <limits>
#include <vector>

#include "core/layer.hpp"
#include "core/model.hpp"
#include "core/workspace.hpp"
#include "obs/trace.hpp"

namespace agnn::baseline {

// One local-formulation layer forward, parameterized by the same Layer
// object the global engine uses (so weights are shared bit-for-bit).
// Scratch (projected features, norms, score vectors) comes from `ws`.
template <typename T>
void local_layer_forward(const Layer<T>& layer, const CsrMatrix<T>& adj,
                         const DenseMatrix<T>& h, Workspace<T>& ws,
                         DenseMatrix<T>& out) {
  AGNN_TRACE_SCOPE("local.layer_forward", kPhase);
  AGNN_ASSERT(&out != &h, "local forward: out must not alias h");
  const index_t n = adj.rows();
  const index_t k_in = h.cols();
  const index_t k_out = layer.out_features();
  const DenseMatrix<T>& w = layer.weights();
  DenseMatrix<T>& z = out;
  z.resize(n, k_out);
  z.fill(T(0));

  switch (layer.kind()) {
    case ModelKind::kGCN: {
      // h_i' = W^T sum_j Â_ij h_j, vertex by vertex.
#pragma omp parallel for schedule(dynamic, 64)
      for (index_t i = 0; i < n; ++i) {
        std::vector<T> agg(static_cast<std::size_t>(k_in), T(0));
        for (index_t e = adj.row_begin(i); e < adj.row_end(i); ++e) {
          const T* hj = h.data() + adj.col_at(e) * k_in;
          const T av = adj.val_at(e);
          for (index_t g = 0; g < k_in; ++g) agg[static_cast<std::size_t>(g)] += av * hj[g];
        }
        T* zi = z.data() + i * k_out;
        for (index_t g = 0; g < k_in; ++g) {
          const T* wg = w.data() + g * k_out;
          const T ag = agg[static_cast<std::size_t>(g)];
          for (index_t o = 0; o < k_out; ++o) zi[o] += ag * wg[o];
        }
      }
      break;
    }
    case ModelKind::kVA: {
      // psi(h_i, h_j) = <h_i, h_j> h_j, per edge; then project with W.
#pragma omp parallel for schedule(dynamic, 64)
      for (index_t i = 0; i < n; ++i) {
        const T* hi = h.data() + i * k_in;
        std::vector<T> agg(static_cast<std::size_t>(k_in), T(0));
        for (index_t e = adj.row_begin(i); e < adj.row_end(i); ++e) {
          const T* hj = h.data() + adj.col_at(e) * k_in;
          T score = T(0);
          for (index_t g = 0; g < k_in; ++g) score += hi[g] * hj[g];
          score *= adj.val_at(e);
          for (index_t g = 0; g < k_in; ++g) agg[static_cast<std::size_t>(g)] += score * hj[g];
        }
        T* zi = z.data() + i * k_out;
        for (index_t g = 0; g < k_in; ++g) {
          const T* wg = w.data() + g * k_out;
          const T ag = agg[static_cast<std::size_t>(g)];
          for (index_t o = 0; o < k_out; ++o) zi[o] += ag * wg[o];
        }
      }
      break;
    }
    case ModelKind::kAGNN: {
      // psi = cosine(h_i, h_j) h_j per edge.
      auto norms_h = ws.acquire_vec(n);
      std::vector<T>& norms = *norms_h;
      for (index_t i = 0; i < n; ++i) {
        const T* hi = h.data() + i * k_in;
        T acc = T(0);
        for (index_t g = 0; g < k_in; ++g) acc += hi[g] * hi[g];
        norms[static_cast<std::size_t>(i)] = std::sqrt(acc);
      }
#pragma omp parallel for schedule(dynamic, 64)
      for (index_t i = 0; i < n; ++i) {
        const T* hi = h.data() + i * k_in;
        const T ni = norms[static_cast<std::size_t>(i)];
        std::vector<T> agg(static_cast<std::size_t>(k_in), T(0));
        for (index_t e = adj.row_begin(i); e < adj.row_end(i); ++e) {
          const index_t j = adj.col_at(e);
          const T* hj = h.data() + j * k_in;
          T dot = T(0);
          for (index_t g = 0; g < k_in; ++g) dot += hi[g] * hj[g];
          const T denom = ni * norms[static_cast<std::size_t>(j)];
          const T score = adj.val_at(e) * (denom > T(0) ? dot / denom : T(0));
          for (index_t g = 0; g < k_in; ++g) agg[static_cast<std::size_t>(g)] += score * hj[g];
        }
        T* zi = z.data() + i * k_out;
        for (index_t g = 0; g < k_in; ++g) {
          const T* wg = w.data() + g * k_out;
          const T ag = agg[static_cast<std::size_t>(g)];
          for (index_t o = 0; o < k_out; ++o) zi[o] += ag * wg[o];
        }
      }
      break;
    }
    case ModelKind::kGIN: {
      // h_i' = MLP((1+eps) h_i + sum_j h_j), vertex by vertex.
      const DenseMatrix<T>& w2 = layer.weights2();
      const T self_w = T(1) + layer.gin_epsilon();
#pragma omp parallel for schedule(dynamic, 64)
      for (index_t i = 0; i < n; ++i) {
        std::vector<T> agg(static_cast<std::size_t>(k_in), T(0));
        const T* hi = h.data() + i * k_in;
        for (index_t g = 0; g < k_in; ++g) {
          agg[static_cast<std::size_t>(g)] = self_w * hi[g];
        }
        for (index_t e = adj.row_begin(i); e < adj.row_end(i); ++e) {
          const T* hj = h.data() + adj.col_at(e) * k_in;
          const T av = adj.val_at(e);
          for (index_t g = 0; g < k_in; ++g) agg[static_cast<std::size_t>(g)] += av * hj[g];
        }
        std::vector<T> hidden(static_cast<std::size_t>(k_out), T(0));
        for (index_t g = 0; g < k_in; ++g) {
          const T* wg = w.data() + g * k_out;
          const T ag = agg[static_cast<std::size_t>(g)];
          for (index_t o = 0; o < k_out; ++o) hidden[static_cast<std::size_t>(o)] += ag * wg[o];
        }
        for (auto& v : hidden) v = apply_activation(layer.mlp_activation(), v, T(0.01));
        T* zi = z.data() + i * k_out;
        for (index_t g = 0; g < k_out; ++g) {
          const T* w2g = w2.data() + g * k_out;
          const T hg = hidden[static_cast<std::size_t>(g)];
          for (index_t o = 0; o < k_out; ++o) zi[o] += hg * w2g[o];
        }
      }
      break;
    }
    case ModelKind::kGAT: {
      // The textbook GAT local formulation (Section 1): per-vertex softmax
      // over per-edge scores a^T [W h_i || W h_j].
      const std::span<const T> a_all(layer.attention_params());
      const auto a1 = a_all.subspan(0, static_cast<std::size_t>(k_out));
      const auto a2 = a_all.subspan(static_cast<std::size_t>(k_out));
      const T slope = layer.attention_slope();
      // Projected features W h_j, recomputed per vertex's use in the pure
      // local style would be O(m k^2); like DGL, precompute per vertex once.
      auto hp_h = ws.acquire_dense(n, k_out);
      matmul(h, w, *hp_h);
      const DenseMatrix<T>& hp = *hp_h;
      auto s1_h = ws.acquire_vec(n);
      auto s2_h = ws.acquire_vec(n);
      std::vector<T>& s1 = *s1_h;
      std::vector<T>& s2 = *s2_h;
      for (index_t i = 0; i < n; ++i) {
        const T* hpi = hp.data() + i * k_out;
        T d1 = T(0), d2 = T(0);
        for (index_t g = 0; g < k_out; ++g) {
          d1 += hpi[g] * a1[static_cast<std::size_t>(g)];
          d2 += hpi[g] * a2[static_cast<std::size_t>(g)];
        }
        s1[static_cast<std::size_t>(i)] = d1;
        s2[static_cast<std::size_t>(i)] = d2;
      }
#pragma omp parallel
      {
        std::vector<T> scores;
#pragma omp for schedule(dynamic, 64)
        for (index_t i = 0; i < n; ++i) {
          const index_t b = adj.row_begin(i), e = adj.row_end(i);
          if (b == e) continue;
          scores.resize(static_cast<std::size_t>(e - b));
          T mx = -std::numeric_limits<T>::infinity();
          for (index_t t = b; t < e; ++t) {
            const T c = s1[static_cast<std::size_t>(i)] +
                        s2[static_cast<std::size_t>(adj.col_at(t))];
            const T lrelu = (c > T(0) ? c : slope * c) * adj.val_at(t);
            scores[static_cast<std::size_t>(t - b)] = lrelu;
            mx = std::max(mx, lrelu);
          }
          T sum = T(0);
          for (auto& s : scores) {
            s = std::exp(s - mx);
            sum += s;
          }
          const T inv = T(1) / sum;
          T* zi = z.data() + i * k_out;
          for (index_t t = b; t < e; ++t) {
            const T alpha = scores[static_cast<std::size_t>(t - b)] * inv;
            const T* hpj = hp.data() + adj.col_at(t) * k_out;
            for (index_t g = 0; g < k_out; ++g) zi[g] += alpha * hpj[g];
          }
        }
      }
      break;
    }
  }
  activate(layer.activation(), z, z, T(0.01));  // in place
}

template <typename T>
DenseMatrix<T> local_layer_forward(const Layer<T>& layer, const CsrMatrix<T>& adj,
                                   const DenseMatrix<T>& h) {
  Workspace<T> ws;
  DenseMatrix<T> out;
  local_layer_forward(layer, adj, h, ws, out);
  return out;
}

// Full local-formulation inference for a model. Feature buffers ping-pong
// between two pooled matrices sized for the widest layer.
template <typename T>
void local_infer(const GnnModel<T>& model, const CsrMatrix<T>& adj,
                 const DenseMatrix<T>& x, Workspace<T>& ws,
                 DenseMatrix<T>& h_out) {
  if (model.num_layers() == 1) {
    local_layer_forward(model.layer(0), adj, x, ws, h_out);
    return;
  }
  auto buf0 = ws.acquire_dense(x.rows(), model.max_layer_width());
  auto buf1 = ws.acquire_dense(x.rows(), model.max_layer_width());
  const DenseMatrix<T>* src = &x;
  for (std::size_t l = 0; l < model.num_layers(); ++l) {
    const bool last = (l + 1 == model.num_layers());
    DenseMatrix<T>* dst = last ? &h_out : (l % 2 == 0 ? &*buf0 : &*buf1);
    local_layer_forward(model.layer(l), adj, *src, ws, *dst);
    src = dst;
  }
}

template <typename T>
DenseMatrix<T> local_infer(const GnnModel<T>& model, const CsrMatrix<T>& adj,
                           const DenseMatrix<T>& x) {
  Workspace<T> ws;
  DenseMatrix<T> h;
  local_infer(model, adj, x, ws, h);
  return h;
}

}  // namespace agnn::baseline
