#include "graph/sbm.hpp"

#include "tensor/common.hpp"

namespace agnn::graph {

SbmGraph generate_sbm(const SbmParams& params) {
  AGNN_ASSERT(params.n > 0 && params.communities > 0, "sbm: bad sizes");
  AGNN_ASSERT(params.p_in >= 0.0 && params.p_in <= 1.0 && params.p_out >= 0.0 &&
                  params.p_out <= 1.0,
              "sbm: probabilities must be in [0, 1]");
  SbmGraph out;
  out.edges.n = params.n;
  out.labels.resize(static_cast<std::size_t>(params.n));
  for (index_t v = 0; v < params.n; ++v) {
    out.labels[static_cast<std::size_t>(v)] = v % params.communities;
  }
  Rng rng(params.seed);
  for (index_t i = 0; i < params.n; ++i) {
    for (index_t j = i + 1; j < params.n; ++j) {
      const bool same = out.labels[static_cast<std::size_t>(i)] ==
                        out.labels[static_cast<std::size_t>(j)];
      const double p = same ? params.p_in : params.p_out;
      if (rng.next_double() < p) out.edges.push_back(i, j);
    }
  }
  return out;
}

}  // namespace agnn::graph
