// Graph<T>: the adjacency substrate handed to the GNN models.
//
// Wraps the CSR adjacency matrix plus the preprocessing the paper's
// artifact applies to every dataset: duplicate-edge removal, isolated-vertex
// fixing (each vertex is connected to at least one other), optional
// symmetrization, self-loops (GAT's N̂(v) = N(v) ∪ {v}), and the symmetric
// degree normalization 1/sqrt(d_i d_j) used by the GCN / C-GNN path.
#pragma once

#include <cmath>
#include <vector>

#include "graph/edge_list.hpp"
#include "tensor/coo_matrix.hpp"
#include "tensor/csr_matrix.hpp"

namespace agnn::graph {

struct BuildOptions {
  bool symmetrize = true;       // undirected graphs: A := A ∪ A^T
  bool add_self_loops = false;  // N̂(v) = N(v) ∪ {v}
  bool fix_isolated = true;     // connect isolated v to (v+1) mod n (artifact B0)
  bool remove_self_loops = true;  // drop generator-produced loops first
};

template <typename T>
struct Graph {
  CsrMatrix<T> adj;  // n x n, values are edge weights (1 unless normalized)

  index_t num_vertices() const { return adj.rows(); }
  index_t num_edges() const { return adj.nnz(); }
  double density() const {
    const double n = static_cast<double>(adj.rows());
    return n > 0 ? static_cast<double>(adj.nnz()) / (n * n) : 0.0;
  }

  std::vector<index_t> out_degrees() const {
    std::vector<index_t> d(static_cast<std::size_t>(adj.rows()));
    for (index_t i = 0; i < adj.rows(); ++i) d[static_cast<std::size_t>(i)] = adj.row_nnz(i);
    return d;
  }

  index_t max_degree() const {
    index_t m = 0;
    for (index_t i = 0; i < adj.rows(); ++i) m = std::max(m, adj.row_nnz(i));
    return m;
  }
};

// Build a Graph from a raw generator edge list, applying the artifact's
// post-processing pipeline.
template <typename T>
Graph<T> build_graph(const EdgeList& el, const BuildOptions& opt = {}) {
  CooMatrix<T> coo;
  coo.n_rows = el.n;
  coo.n_cols = el.n;
  const std::size_t base = el.src.size();
  coo.reserve(opt.symmetrize ? 2 * base : base);
  for (std::size_t e = 0; e < base; ++e) {
    coo.push_back(el.src[e], el.dst[e], T(1));
    if (opt.symmetrize && el.src[e] != el.dst[e]) {
      coo.push_back(el.dst[e], el.src[e], T(1));
    }
  }
  if (opt.remove_self_loops) coo.remove_self_loops();
  coo.dedup_binary(T(1));

  if (opt.fix_isolated && el.n > 1) {
    // A vertex with no incident edge at all breaks softmax rows and degree
    // normalization; attach it to its successor (and back, if symmetric).
    std::vector<bool> touched(static_cast<std::size_t>(el.n), false);
    for (std::size_t e = 0; e < coo.rows.size(); ++e) {
      touched[static_cast<std::size_t>(coo.rows[e])] = true;
      touched[static_cast<std::size_t>(coo.cols[e])] = true;
    }
    bool added = false;
    for (index_t v = 0; v < el.n; ++v) {
      if (!touched[static_cast<std::size_t>(v)]) {
        const index_t u = (v + 1) % el.n;
        coo.push_back(v, u, T(1));
        if (opt.symmetrize) coo.push_back(u, v, T(1));
        added = true;
      }
    }
    if (added) coo.dedup_binary(T(1));
  }

  if (opt.add_self_loops) {
    for (index_t v = 0; v < el.n; ++v) coo.push_back(v, v, T(1));
    coo.dedup_binary(T(1));
  }

  return Graph<T>{CsrMatrix<T>::from_coo(coo)};
}

// Symmetric normalization Â(i,j) = A(i,j) / sqrt(d_i d_j) (degrees from row
// sums). The GCN model runs on Â; attention models keep A binary.
template <typename T>
CsrMatrix<T> sym_normalize(const CsrMatrix<T>& a) {
  AGNN_ASSERT(a.rows() == a.cols(), "sym_normalize: A must be square");
  std::vector<T> inv_sqrt_deg(static_cast<std::size_t>(a.rows()), T(0));
  for (index_t i = 0; i < a.rows(); ++i) {
    T d = T(0);
    for (index_t e = a.row_begin(i); e < a.row_end(i); ++e) d += a.val_at(e);
    inv_sqrt_deg[static_cast<std::size_t>(i)] =
        d > T(0) ? T(1) / std::sqrt(d) : T(0);
  }
  CsrMatrix<T> out = a;
  auto v = out.vals_mutable();
  for (index_t i = 0; i < a.rows(); ++i) {
    const T ri = inv_sqrt_deg[static_cast<std::size_t>(i)];
    for (index_t e = a.row_begin(i); e < a.row_end(i); ++e) {
      v[static_cast<std::size_t>(e)] *=
          ri * inv_sqrt_deg[static_cast<std::size_t>(a.col_at(e))];
    }
  }
  return out;
}

// Row normalization A(i,j) / d_i (random-walk normalization).
template <typename T>
CsrMatrix<T> row_normalize(const CsrMatrix<T>& a) {
  CsrMatrix<T> out = a;
  auto v = out.vals_mutable();
  for (index_t i = 0; i < a.rows(); ++i) {
    T d = T(0);
    for (index_t e = a.row_begin(i); e < a.row_end(i); ++e) d += a.val_at(e);
    if (d <= T(0)) continue;
    const T inv = T(1) / d;
    for (index_t e = a.row_begin(i); e < a.row_end(i); ++e) {
      v[static_cast<std::size_t>(e)] *= inv;
    }
  }
  return out;
}

}  // namespace agnn::graph
