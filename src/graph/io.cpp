#include "graph/io.hpp"

#include <cstring>
#include <fstream>

#include "tensor/common.hpp"

namespace agnn::graph {

namespace {
constexpr char kMagic[8] = {'A', 'G', 'N', 'N', 'C', 'O', 'O', '1'};
}  // namespace

void write_edge_list(const std::string& path, const EdgeList& el) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  AGNN_ASSERT(out.good(), "cannot open file for writing: " + path);
  out.write(kMagic, sizeof(kMagic));
  const index_t n = el.n;
  const index_t nnz = el.size();
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  out.write(reinterpret_cast<const char*>(&nnz), sizeof(nnz));
  out.write(reinterpret_cast<const char*>(el.src.data()),
            static_cast<std::streamsize>(el.src.size() * sizeof(index_t)));
  out.write(reinterpret_cast<const char*>(el.dst.data()),
            static_cast<std::streamsize>(el.dst.size() * sizeof(index_t)));
  AGNN_ASSERT(out.good(), "write failed: " + path);
}

EdgeList read_edge_list(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  AGNN_ASSERT(in.good(), "cannot open file for reading: " + path);
  char magic[8];
  in.read(magic, sizeof(magic));
  AGNN_ASSERT(in.good() && std::memcmp(magic, kMagic, sizeof(kMagic)) == 0,
              "bad magic in graph file: " + path);
  EdgeList el;
  index_t n = 0, nnz = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  in.read(reinterpret_cast<char*>(&nnz), sizeof(nnz));
  AGNN_ASSERT(in.good() && n >= 0 && nnz >= 0, "corrupt header in: " + path);
  el.n = n;
  el.src.resize(static_cast<std::size_t>(nnz));
  el.dst.resize(static_cast<std::size_t>(nnz));
  in.read(reinterpret_cast<char*>(el.src.data()),
          static_cast<std::streamsize>(el.src.size() * sizeof(index_t)));
  in.read(reinterpret_cast<char*>(el.dst.data()),
          static_cast<std::streamsize>(el.dst.size() * sizeof(index_t)));
  AGNN_ASSERT(in.good(), "truncated graph file: " + path);
  for (std::size_t e = 0; e < el.src.size(); ++e) {
    AGNN_ASSERT(el.src[e] >= 0 && el.src[e] < n && el.dst[e] >= 0 && el.dst[e] < n,
                "edge index out of range in: " + path);
  }
  return el;
}

}  // namespace agnn::graph
