// Vertex reordering utilities: permutations applied consistently to the
// adjacency matrix (P A P^T) and feature matrices (P X).
//
// Reordering matters for the distributed engines: Kronecker graphs
// concentrate the hubs on low vertex ids, so the natural order gives the
// first grid row/rank a disproportionate share of the edges. A random
// shuffle rebalances the 2D blocks; degree-descending order does the
// opposite (worst case) and is useful for stress-testing load imbalance.
// RCM clusters each vertex's neighbors nearby, which is what the blocked
// formats (tensor/format.hpp) want: tighter column ranges per row chunk.
#pragma once

#include <algorithm>
#include <numeric>
#include <vector>

#include "dist/process_grid.hpp"
#include "tensor/coo_matrix.hpp"
#include "tensor/csr_matrix.hpp"
#include "tensor/dense_matrix.hpp"

namespace agnn::graph {

// perm[v] = new id of vertex v. Must be a bijection on [0, n).
using Permutation = std::vector<index_t>;

// Bijection check in O(n) with no steady-state allocation: the scratch is an
// epoch-stamped thread_local buffer (grown to the high-water mark, never
// cleared — a stale stamp from a previous epoch reads as "unseen"). The
// permute_* helpers below run in the reorder × format sweep's hot loop, so
// a fresh vector<bool> per call was a measurable allocation leak; the
// zero-allocation audit in test_schedule.cpp now covers this path.
inline void validate_permutation(const Permutation& perm, index_t n) {
  AGNN_ASSERT(static_cast<index_t>(perm.size()) == n, "permutation size mismatch");
  thread_local std::vector<index_t> stamp;
  thread_local index_t epoch = 0;
  if (static_cast<index_t>(stamp.size()) < n) {
    stamp.assign(static_cast<std::size_t>(n), epoch);
  }
  ++epoch;
  for (const index_t p : perm) {
    AGNN_ASSERT(p >= 0 && p < n, "permutation value out of range");
    AGNN_ASSERT(stamp[static_cast<std::size_t>(p)] != epoch,
                "permutation has duplicates");
    stamp[static_cast<std::size_t>(p)] = epoch;
  }
}

inline Permutation identity_permutation(index_t n) {
  Permutation perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), index_t(0));
  return perm;
}

inline Permutation random_permutation(index_t n, std::uint64_t seed) {
  Permutation perm = identity_permutation(n);
  Rng rng(seed);
  for (index_t i = n - 1; i > 0; --i) {  // Fisher-Yates
    const auto j = static_cast<index_t>(
        rng.next_bounded(static_cast<std::uint64_t>(i + 1)));
    std::swap(perm[static_cast<std::size_t>(i)], perm[static_cast<std::size_t>(j)]);
  }
  return perm;
}

// Degree-descending: hubs first (new id 0 = highest degree). Ties broken by
// vertex id for determinism.
template <typename T>
Permutation degree_descending_permutation(const CsrMatrix<T>& adj) {
  const index_t n = adj.rows();
  std::vector<index_t> order = identity_permutation(n);
  std::stable_sort(order.begin(), order.end(), [&](index_t a, index_t b) {
    return adj.row_nnz(a) > adj.row_nnz(b);
  });
  Permutation perm(static_cast<std::size_t>(n));
  for (index_t new_id = 0; new_id < n; ++new_id) {
    perm[static_cast<std::size_t>(order[static_cast<std::size_t>(new_id)])] = new_id;
  }
  return perm;
}

// Reverse Cuthill–McKee: BFS from a minimum-degree vertex of each connected
// component, visiting neighbors in ascending-degree order (ties by id), then
// reverse the visit order. Produces a low-bandwidth ordering on (near-)
// symmetric adjacencies — neighbor columns cluster near the diagonal, which
// shrinks the gather footprint of the blocked SpMM kernels. Deterministic:
// no randomness, all ties broken by vertex id. Treats adj's rows as the
// neighbor lists (graph CSRs here are symmetrized; on a directed matrix
// this orders by out-neighbors only).
template <typename T>
Permutation rcm_permutation(const CsrMatrix<T>& adj) {
  AGNN_ASSERT(adj.rows() == adj.cols(), "rcm_permutation: adjacency must be square");
  const index_t n = adj.rows();
  // Component seeds in ascending (degree, id): one sort gives every BFS
  // restart the minimum-degree unvisited vertex without rescanning.
  std::vector<index_t> seeds = identity_permutation(n);
  std::stable_sort(seeds.begin(), seeds.end(), [&](index_t a, index_t b) {
    return adj.row_nnz(a) < adj.row_nnz(b);
  });
  std::vector<char> visited(static_cast<std::size_t>(n), 0);
  std::vector<index_t> order;
  order.reserve(static_cast<std::size_t>(n));
  std::vector<index_t> nbrs;
  for (const index_t seed : seeds) {
    if (visited[static_cast<std::size_t>(seed)]) continue;
    const std::size_t head = order.size();
    order.push_back(seed);
    visited[static_cast<std::size_t>(seed)] = 1;
    for (std::size_t q = head; q < order.size(); ++q) {
      const index_t v = order[q];
      nbrs.clear();
      for (index_t e = adj.row_begin(v); e < adj.row_end(v); ++e) {
        const index_t w = adj.col_at(e);
        if (!visited[static_cast<std::size_t>(w)]) {
          visited[static_cast<std::size_t>(w)] = 1;
          nbrs.push_back(w);
        }
      }
      std::stable_sort(nbrs.begin(), nbrs.end(), [&](index_t a, index_t b) {
        return adj.row_nnz(a) < adj.row_nnz(b);
      });
      order.insert(order.end(), nbrs.begin(), nbrs.end());
    }
  }
  Permutation perm(static_cast<std::size_t>(n));
  for (index_t pos = 0; pos < n; ++pos) {
    // Reverse: the vertex visited at `pos` gets new id n-1-pos.
    perm[static_cast<std::size_t>(order[static_cast<std::size_t>(pos)])] = n - 1 - pos;
  }
  return perm;
}

// B = P A P^T: vertex v of A becomes vertex perm[v] of B.
template <typename T>
CsrMatrix<T> permute_graph(const CsrMatrix<T>& adj, const Permutation& perm) {
  AGNN_ASSERT(adj.rows() == adj.cols(), "permute_graph: adjacency must be square");
  validate_permutation(perm, adj.rows());
  CooMatrix<T> coo;
  coo.n_rows = coo.n_cols = adj.rows();
  coo.reserve(static_cast<std::size_t>(adj.nnz()));
  for (index_t i = 0; i < adj.rows(); ++i) {
    for (index_t e = adj.row_begin(i); e < adj.row_end(i); ++e) {
      coo.push_back(perm[static_cast<std::size_t>(i)],
                    perm[static_cast<std::size_t>(adj.col_at(e))], adj.val_at(e));
    }
  }
  return CsrMatrix<T>::from_coo(coo);
}

// Y = P X: row v of X becomes row perm[v] of Y. The out-parameter form
// allocates nothing within capacity; `out` must not alias `x`. The
// permutation is validated once here — the row copies themselves can't
// go out of bounds after validation.
template <typename T>
void permute_rows(const DenseMatrix<T>& x, const Permutation& perm,
                  DenseMatrix<T>& out) {
  AGNN_ASSERT(&out != &x, "permute_rows: output cannot alias the input");
  validate_permutation(perm, x.rows());
  out.resize(x.rows(), x.cols());
  for (index_t v = 0; v < x.rows(); ++v) {
    const auto src = x.row(v);
    auto dst = out.row(perm[static_cast<std::size_t>(v)]);
    std::copy(src.begin(), src.end(), dst.begin());
  }
}

template <typename T>
DenseMatrix<T> permute_rows(const DenseMatrix<T>& x, const Permutation& perm) {
  DenseMatrix<T> out;
  permute_rows(x, perm, out);
  return out;
}

template <typename T>
void permute_vector(const std::vector<T>& x, const Permutation& perm,
                    std::vector<T>& out) {
  AGNN_ASSERT(&out != &x, "permute_vector: output cannot alias the input");
  validate_permutation(perm, static_cast<index_t>(x.size()));
  out.resize(x.size());
  for (std::size_t v = 0; v < x.size(); ++v) {
    out[static_cast<std::size_t>(perm[v])] = x[v];
  }
}

template <typename T>
std::vector<T> permute_vector(const std::vector<T>& x, const Permutation& perm) {
  std::vector<T> out;
  permute_vector(x, perm, out);
  return out;
}

// Imbalance of a 2D block partition: max block nnz over mean block nnz —
// the quantity vertex reordering changes for heavy-tail graphs. The
// partition is dist::block_index_of, the exact inverse of the
// dist::block_range partition the process grids use — so the imbalance
// measured here is the imbalance the 2D engines actually see (an earlier
// local reimplementation diverged from it when grid_side > n).
template <typename T>
double block_imbalance(const CsrMatrix<T>& adj, int grid_side) {
  AGNN_ASSERT(grid_side >= 1, "grid side must be positive");
  const index_t n = adj.rows();
  std::vector<double> block_nnz(static_cast<std::size_t>(grid_side * grid_side), 0);
  for (index_t i = 0; i < n; ++i) {
    const index_t bi = dist::block_index_of(n, grid_side, i);
    for (index_t e = adj.row_begin(i); e < adj.row_end(i); ++e) {
      block_nnz[static_cast<std::size_t>(
          bi * grid_side + dist::block_index_of(n, grid_side, adj.col_at(e)))] += 1;
    }
  }
  double mx = 0, total = 0;
  for (const double b : block_nnz) {
    mx = std::max(mx, b);
    total += b;
  }
  const double mean = total / static_cast<double>(block_nnz.size());
  return mean > 0 ? mx / mean : 0.0;
}

}  // namespace agnn::graph
