// Vertex reordering utilities: permutations applied consistently to the
// adjacency matrix (P A P^T) and feature matrices (P X).
//
// Reordering matters for the distributed engines: Kronecker graphs
// concentrate the hubs on low vertex ids, so the natural order gives the
// first grid row/rank a disproportionate share of the edges. A random
// shuffle rebalances the 2D blocks; degree-descending order does the
// opposite (worst case) and is useful for stress-testing load imbalance.
#pragma once

#include <algorithm>
#include <numeric>
#include <vector>

#include "tensor/coo_matrix.hpp"
#include "tensor/csr_matrix.hpp"
#include "tensor/dense_matrix.hpp"

namespace agnn::graph {

// perm[v] = new id of vertex v. Must be a bijection on [0, n).
using Permutation = std::vector<index_t>;

inline void validate_permutation(const Permutation& perm, index_t n) {
  AGNN_ASSERT(static_cast<index_t>(perm.size()) == n, "permutation size mismatch");
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  for (const index_t p : perm) {
    AGNN_ASSERT(p >= 0 && p < n, "permutation value out of range");
    AGNN_ASSERT(!seen[static_cast<std::size_t>(p)], "permutation has duplicates");
    seen[static_cast<std::size_t>(p)] = true;
  }
}

inline Permutation identity_permutation(index_t n) {
  Permutation perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), index_t(0));
  return perm;
}

inline Permutation random_permutation(index_t n, std::uint64_t seed) {
  Permutation perm = identity_permutation(n);
  Rng rng(seed);
  for (index_t i = n - 1; i > 0; --i) {  // Fisher-Yates
    const auto j = static_cast<index_t>(
        rng.next_bounded(static_cast<std::uint64_t>(i + 1)));
    std::swap(perm[static_cast<std::size_t>(i)], perm[static_cast<std::size_t>(j)]);
  }
  return perm;
}

// Degree-descending: hubs first (new id 0 = highest degree). Ties broken by
// vertex id for determinism.
template <typename T>
Permutation degree_descending_permutation(const CsrMatrix<T>& adj) {
  const index_t n = adj.rows();
  std::vector<index_t> order = identity_permutation(n);
  std::stable_sort(order.begin(), order.end(), [&](index_t a, index_t b) {
    return adj.row_nnz(a) > adj.row_nnz(b);
  });
  Permutation perm(static_cast<std::size_t>(n));
  for (index_t new_id = 0; new_id < n; ++new_id) {
    perm[static_cast<std::size_t>(order[static_cast<std::size_t>(new_id)])] = new_id;
  }
  return perm;
}

// B = P A P^T: vertex v of A becomes vertex perm[v] of B.
template <typename T>
CsrMatrix<T> permute_graph(const CsrMatrix<T>& adj, const Permutation& perm) {
  AGNN_ASSERT(adj.rows() == adj.cols(), "permute_graph: adjacency must be square");
  validate_permutation(perm, adj.rows());
  CooMatrix<T> coo;
  coo.n_rows = coo.n_cols = adj.rows();
  coo.reserve(static_cast<std::size_t>(adj.nnz()));
  for (index_t i = 0; i < adj.rows(); ++i) {
    for (index_t e = adj.row_begin(i); e < adj.row_end(i); ++e) {
      coo.push_back(perm[static_cast<std::size_t>(i)],
                    perm[static_cast<std::size_t>(adj.col_at(e))], adj.val_at(e));
    }
  }
  return CsrMatrix<T>::from_coo(coo);
}

// Y = P X: row v of X becomes row perm[v] of Y.
template <typename T>
DenseMatrix<T> permute_rows(const DenseMatrix<T>& x, const Permutation& perm) {
  validate_permutation(perm, x.rows());
  DenseMatrix<T> out(x.rows(), x.cols());
  for (index_t v = 0; v < x.rows(); ++v) {
    const auto src = x.row(v);
    auto dst = out.row(perm[static_cast<std::size_t>(v)]);
    std::copy(src.begin(), src.end(), dst.begin());
  }
  return out;
}

template <typename T>
std::vector<T> permute_vector(const std::vector<T>& x, const Permutation& perm) {
  validate_permutation(perm, static_cast<index_t>(x.size()));
  std::vector<T> out(x.size());
  for (std::size_t v = 0; v < x.size(); ++v) {
    out[static_cast<std::size_t>(perm[v])] = x[v];
  }
  return out;
}

// Imbalance of a 2D block partition: max block nnz over mean block nnz —
// the quantity vertex reordering changes for heavy-tail graphs.
template <typename T>
double block_imbalance(const CsrMatrix<T>& adj, int grid_side) {
  AGNN_ASSERT(grid_side >= 1, "grid side must be positive");
  const index_t n = adj.rows();
  std::vector<double> block_nnz(static_cast<std::size_t>(grid_side * grid_side), 0);
  auto block_of = [&](index_t v) {
    // Even partition, matching dist::block_range.
    const index_t base = n / grid_side;
    const index_t rem = n % grid_side;
    const index_t split = rem * (base + 1);
    return v < split ? v / (base + 1) : rem + (v - split) / std::max<index_t>(base, 1);
  };
  for (index_t i = 0; i < n; ++i) {
    const index_t bi = block_of(i);
    for (index_t e = adj.row_begin(i); e < adj.row_end(i); ++e) {
      block_nnz[static_cast<std::size_t>(bi * grid_side + block_of(adj.col_at(e)))] += 1;
    }
  }
  double mx = 0, total = 0;
  for (const double b : block_nnz) {
    mx = std::max(mx, b);
    total += b;
  }
  const double mean = total / static_cast<double>(block_nnz.size());
  return mean > 0 ? mx / mean : 0.0;
}

}  // namespace agnn::graph
