// Graph algorithms expressed with the library's tensor building blocks —
// the "irregular computations with linear algebra" lineage the paper builds
// on (Section 9): BFS as boolean SpMV over frontiers, triangle counting as
// masked SpGEMM, connected components as min-semiring label propagation.
//
// These double as integration tests of the kernels and as a demonstration
// that the GNN substrate is a usable GraphBLAS-style layer.
#pragma once

#include <limits>
#include <vector>

#include "tensor/csr_matrix.hpp"
#include "tensor/spgemm.hpp"

namespace agnn::graph {

// BFS levels from `source` (-1 = unreachable). Each round is one sparse
// matrix-vector product of A^T with the frontier indicator over the
// boolean-or/and semiring, masked by the unvisited set.
template <typename T>
std::vector<index_t> bfs_levels(const CsrMatrix<T>& adj, index_t source) {
  AGNN_ASSERT(adj.rows() == adj.cols(), "bfs: adjacency must be square");
  AGNN_ASSERT(source >= 0 && source < adj.rows(), "bfs: bad source");
  const index_t n = adj.rows();
  std::vector<index_t> level(static_cast<std::size_t>(n), -1);
  std::vector<std::uint8_t> frontier(static_cast<std::size_t>(n), 0);
  level[static_cast<std::size_t>(source)] = 0;
  frontier[static_cast<std::size_t>(source)] = 1;

  // Pull direction: next(v) = OR_{u in in-neighbors(v)} frontier(u); with a
  // symmetric adjacency (the usual case) rows already give in-neighbors.
  const CsrMatrix<T> adj_t = adj.transposed();
  for (index_t depth = 1; depth < n + 1; ++depth) {
    std::vector<std::uint8_t> next(static_cast<std::size_t>(n), 0);
    bool any = false;
#pragma omp parallel for schedule(dynamic, 128) reduction(|| : any)
    for (index_t v = 0; v < n; ++v) {
      if (level[static_cast<std::size_t>(v)] >= 0) continue;  // visited mask
      for (index_t e = adj_t.row_begin(v); e < adj_t.row_end(v); ++e) {
        if (frontier[static_cast<std::size_t>(adj_t.col_at(e))]) {
          next[static_cast<std::size_t>(v)] = 1;
          any = true;
          break;  // boolean OR short-circuits
        }
      }
    }
    if (!any) break;
    for (index_t v = 0; v < n; ++v) {
      if (next[static_cast<std::size_t>(v)]) level[static_cast<std::size_t>(v)] = depth;
    }
    frontier = std::move(next);
  }
  return level;
}

// Triangle count of a simple undirected graph: sum((A * A) ⊙ A) / 6 —
// a single masked SpGEMM (each triangle is counted once per ordered edge
// per apex, i.e. six times).
template <typename T>
std::uint64_t count_triangles(const CsrMatrix<T>& adj) {
  AGNN_ASSERT(adj.rows() == adj.cols(), "triangles: adjacency must be square");
  const CsrMatrix<T> ones = adj.with_values(T(1));
  const CsrMatrix<T> c = spgemm_masked(ones, ones, ones);
  double total = 0;
  for (index_t e = 0; e < c.nnz(); ++e) total += static_cast<double>(c.val_at(e));
  return static_cast<std::uint64_t>(total / 6.0 + 0.5);
}

// Connected components by min-label propagation: label(v) starts as v and
// each round takes the minimum over the closed neighborhood — a sparse
// product over the (min, min) selection semiring, iterated to fixpoint.
// Returns the component id (smallest vertex id in the component).
template <typename T>
std::vector<index_t> connected_components(const CsrMatrix<T>& adj) {
  AGNN_ASSERT(adj.rows() == adj.cols(), "components: adjacency must be square");
  const index_t n = adj.rows();
  std::vector<index_t> label(static_cast<std::size_t>(n));
  for (index_t v = 0; v < n; ++v) label[static_cast<std::size_t>(v)] = v;

  bool changed = true;
  while (changed) {
    changed = false;
    std::vector<index_t> next = label;
#pragma omp parallel for schedule(dynamic, 128)
    for (index_t v = 0; v < n; ++v) {
      index_t best = label[static_cast<std::size_t>(v)];
      for (index_t e = adj.row_begin(v); e < adj.row_end(v); ++e) {
        best = std::min(best, label[static_cast<std::size_t>(adj.col_at(e))]);
      }
      next[static_cast<std::size_t>(v)] = best;
    }
    for (index_t v = 0; v < n; ++v) {
      if (next[static_cast<std::size_t>(v)] != label[static_cast<std::size_t>(v)]) {
        changed = true;
        break;
      }
    }
    label = std::move(next);
  }
  return label;
}

// Common-neighbor counts on existing edges: C = (A * A) ⊙ A with binary A —
// the numerator of Jaccard/overlap similarity (Section 9 cites the
// communication-efficient Jaccard work this generalizes).
template <typename T>
CsrMatrix<T> common_neighbors(const CsrMatrix<T>& adj) {
  const CsrMatrix<T> ones = adj.with_values(T(1));
  return spgemm_masked(ones, ones, ones);
}

}  // namespace agnn::graph
