#include "graph/erdos_renyi.hpp"

#include <cmath>

#include "tensor/common.hpp"

namespace agnn::graph {

EdgeList generate_erdos_renyi(const ErdosRenyiParams& params) {
  AGNN_ASSERT(params.n > 0, "erdos-renyi: n must be positive");
  AGNN_ASSERT(params.q > 0.0 && params.q <= 1.0, "erdos-renyi: q in (0, 1]");
  EdgeList el;
  el.n = params.n;
  const double total_pairs =
      static_cast<double>(params.n) * static_cast<double>(params.n);
  el.reserve(static_cast<std::size_t>(total_pairs * params.q * 1.1) + 16);

  Rng rng(params.seed);
  const double log1mq = std::log1p(-params.q);
  // Walk the linearized index space [0, n^2) with geometric gaps.
  double idx = -1.0;
  const double n_d = static_cast<double>(params.n);
  while (true) {
    // Gap ~ 1 + floor(log(U) / log(1-q)), the standard skip formula.
    const double u = rng.next_double();
    const double gap =
        1.0 + std::floor(std::log(u > 0.0 ? u : 1e-300) / log1mq);
    idx += gap;
    if (idx >= total_pairs) break;
    const auto flat = static_cast<std::uint64_t>(idx);
    const auto row = static_cast<index_t>(flat / static_cast<std::uint64_t>(params.n));
    const auto col = static_cast<index_t>(flat % static_cast<std::uint64_t>(params.n));
    if (!params.self_loops && row == col) continue;
    AGNN_ASSERT(row < params.n && col < params.n, "erdos-renyi: index overflow");
    el.push_back(row, col);
    (void)n_d;
  }
  return el;
}

EdgeList generate_erdos_renyi_m(index_t n, index_t m, std::uint64_t seed) {
  const double q = static_cast<double>(m) /
                   (static_cast<double>(n) * static_cast<double>(n));
  return generate_erdos_renyi({.n = n, .q = q, .seed = seed});
}

}  // namespace agnn::graph
