// Erdős–Rényi G(n, q) generator (dataset B2 of the artifact; the "Rand"
// graphs of Section 8.4 with random uniform degree distribution).
//
// For the sparse regime the paper evaluates (q between 1e-4 and 1e-2),
// enumeration of all n^2 pairs is wasteful, so edges are drawn by geometric
// skipping over the linearized pair index: the gap between consecutive
// present edges is Geometric(q), giving exactly G(n, q) in O(m) time.
#pragma once

#include <cstdint>

#include "graph/edge_list.hpp"

namespace agnn::graph {

struct ErdosRenyiParams {
  index_t n = 1024;
  double q = 0.01;  // independent edge probability (density rho)
  std::uint64_t seed = 1;
  bool self_loops = false;
};

EdgeList generate_erdos_renyi(const ErdosRenyiParams& params);

// Convenience: G(n, q) with q chosen so that the expected edge count is m.
EdgeList generate_erdos_renyi_m(index_t n, index_t m, std::uint64_t seed = 1);

}  // namespace agnn::graph
