// Graph500-style Kronecker graph generator (dataset B0 of the artifact).
//
// Generates edges by recursive quadrant sampling with the standard R-MAT /
// Graph500 initiator probabilities (A=0.57, B=0.19, C=0.19, D=0.05), which
// yields the heavy-tail, highly load-imbalanced degree distributions the
// paper evaluates on. n = 2^scale vertices; `edges` samples before
// deduplication (matching the artifact, which also rounds the vertex count
// down to a power of two and post-processes duplicates).
#pragma once

#include <cstdint>

#include "graph/edge_list.hpp"

namespace agnn::graph {

struct KroneckerParams {
  int scale = 10;             // n = 2^scale
  index_t edges = 1 << 14;    // edge samples before dedup
  double a = 0.57;            // initiator matrix quadrant probabilities
  double b = 0.19;
  double c = 0.19;
  std::uint64_t seed = 1;
};

// Generate a Kronecker edge list. Deterministic for a fixed seed.
EdgeList generate_kronecker(const KroneckerParams& params);

}  // namespace agnn::graph
