#include "graph/small_world.hpp"

#include <vector>

#include "tensor/common.hpp"

namespace agnn::graph {

EdgeList generate_watts_strogatz(const WattsStrogatzParams& params) {
  AGNN_ASSERT(params.n >= 3, "watts-strogatz: need at least 3 vertices");
  AGNN_ASSERT(params.k >= 2 && params.k % 2 == 0 && params.k < params.n,
              "watts-strogatz: k must be even and < n");
  AGNN_ASSERT(params.beta >= 0.0 && params.beta <= 1.0,
              "watts-strogatz: beta in [0, 1]");
  Rng rng(params.seed);
  EdgeList el;
  el.n = params.n;
  el.reserve(static_cast<std::size_t>(params.n * params.k / 2));

  // Ring lattice: vertex v connects to v+1 .. v+k/2 (mod n). Each lattice
  // edge is rewired to a uniform random endpoint with probability beta,
  // avoiding self loops (duplicates are handled by the build pipeline).
  for (index_t v = 0; v < params.n; ++v) {
    for (index_t d = 1; d <= params.k / 2; ++d) {
      index_t u = (v + d) % params.n;
      if (rng.next_double() < params.beta) {
        // Rewire the far endpoint.
        do {
          u = static_cast<index_t>(
              rng.next_bounded(static_cast<std::uint64_t>(params.n)));
        } while (u == v);
      }
      el.push_back(v, u);
    }
  }
  return el;
}

EdgeList generate_barabasi_albert(const BarabasiAlbertParams& params) {
  AGNN_ASSERT(params.m >= 1 && params.m < params.n,
              "barabasi-albert: need 1 <= m < n");
  Rng rng(params.seed);
  EdgeList el;
  el.n = params.n;
  el.reserve(static_cast<std::size_t>(params.n * params.m));

  // Attachment targets are sampled uniformly from the endpoint list, which
  // realizes degree-proportional (preferential) sampling.
  std::vector<index_t> endpoints;
  endpoints.reserve(2 * static_cast<std::size_t>(params.n * params.m));

  // Seed: a clique on the first m+1 vertices.
  for (index_t i = 0; i <= params.m; ++i) {
    for (index_t j = i + 1; j <= params.m; ++j) {
      el.push_back(i, j);
      endpoints.push_back(i);
      endpoints.push_back(j);
    }
  }
  for (index_t v = params.m + 1; v < params.n; ++v) {
    // m distinct targets by rejection (m is small).
    std::vector<index_t> targets;
    while (static_cast<index_t>(targets.size()) < params.m) {
      const index_t t = endpoints[static_cast<std::size_t>(
          rng.next_bounded(endpoints.size()))];
      bool dup = (t == v);
      for (const index_t existing : targets) dup = dup || existing == t;
      if (!dup) targets.push_back(t);
    }
    for (const index_t t : targets) {
      el.push_back(v, t);
      endpoints.push_back(v);
      endpoints.push_back(t);
    }
  }
  return el;
}

}  // namespace agnn::graph
