// Stochastic block model (planted partition) generator.
//
// The canonical node-classification benchmark graph: `communities` equal
// groups with intra-community edge probability p_in and inter-community
// probability p_out, plus ground-truth labels. Used by the examples and the
// training tests as a task the GNN models can actually learn.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/edge_list.hpp"

namespace agnn::graph {

struct SbmParams {
  index_t n = 100;
  index_t communities = 2;
  double p_in = 0.2;    // intra-community edge probability
  double p_out = 0.02;  // inter-community edge probability
  std::uint64_t seed = 1;
};

struct SbmGraph {
  EdgeList edges;                // undirected (each pair emitted once)
  std::vector<index_t> labels;   // community of each vertex (v mod communities)
};

SbmGraph generate_sbm(const SbmParams& params);

}  // namespace agnn::graph
