// Additional synthetic graph families beyond the paper's evaluation set:
// Watts–Strogatz small-world and Barabási–Albert preferential attachment.
//
// Both are standard models downstream users expect from a graph library;
// BA in particular produces power-law degree distributions by growth (a
// different mechanism from Kronecker's recursive self-similarity), which is
// useful for robustness-testing the load-balance behavior of the
// distributed engines.
#pragma once

#include <cstdint>

#include "graph/edge_list.hpp"

namespace agnn::graph {

struct WattsStrogatzParams {
  index_t n = 100;
  index_t k = 4;       // each vertex connects to k nearest ring neighbors
                       // (k/2 on each side; must be even and < n)
  double beta = 0.1;   // rewiring probability
  std::uint64_t seed = 1;
};

// Undirected ring lattice with random rewiring (each pair emitted once).
EdgeList generate_watts_strogatz(const WattsStrogatzParams& params);

struct BarabasiAlbertParams {
  index_t n = 100;
  index_t m = 3;  // edges added per new vertex (also the seed clique size)
  std::uint64_t seed = 1;
};

// Preferential-attachment growth (each pair emitted once).
EdgeList generate_barabasi_albert(const BarabasiAlbertParams& params);

}  // namespace agnn::graph
