// EdgeList: the raw output of the graph generators — (src, dst) pairs with a
// vertex count — before deduplication and CSR conversion.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "tensor/common.hpp"

namespace agnn::graph {

struct EdgeList {
  index_t n = 0;  // number of vertices
  std::vector<index_t> src;
  std::vector<index_t> dst;

  index_t size() const { return static_cast<index_t>(src.size()); }

  void reserve(std::size_t m) {
    src.reserve(m);
    dst.reserve(m);
  }

  void push_back(index_t s, index_t d) {
    src.push_back(s);
    dst.push_back(d);
  }
};

}  // namespace agnn::graph
