#include "graph/kronecker.hpp"

#include "tensor/common.hpp"

namespace agnn::graph {

EdgeList generate_kronecker(const KroneckerParams& params) {
  AGNN_ASSERT(params.scale >= 1 && params.scale < 62, "kronecker scale out of range");
  AGNN_ASSERT(params.a + params.b + params.c < 1.0,
              "initiator probabilities must sum below 1");
  EdgeList el;
  el.n = index_t(1) << params.scale;
  el.reserve(static_cast<std::size_t>(params.edges));

  Rng rng(params.seed);
  const double ab = params.a + params.b;
  const double abc = params.a + params.b + params.c;

  for (index_t e = 0; e < params.edges; ++e) {
    index_t row = 0, col = 0;
    for (int level = 0; level < params.scale; ++level) {
      const double r = rng.next_double();
      // Pick the quadrant of the initiator matrix; descend one level.
      if (r < params.a) {
        // top-left: no bits set
      } else if (r < ab) {
        col |= index_t(1) << level;  // top-right
      } else if (r < abc) {
        row |= index_t(1) << level;  // bottom-left
      } else {
        row |= index_t(1) << level;  // bottom-right
        col |= index_t(1) << level;
      }
    }
    el.push_back(row, col);
  }
  return el;
}

}  // namespace agnn::graph
