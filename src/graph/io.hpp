// Binary COO graph file I/O.
//
// This mirrors the paper artifact's file-loading path for the MAKG dataset
// (there: scipy COO inside an .npz archive; here: a little-endian binary COO
// container). The MAKG experiments in this reproduction write a heavy-tail
// Kronecker "MAKG-like" graph to disk once and stream it back through this
// loader, so the code path (file -> COO -> dedup -> CSR -> distribute) is
// exercised exactly as it would be for the real dataset.
//
// Format (little-endian):
//   8 bytes  magic "AGNNCOO1"
//   int64    n (vertex count)
//   int64    nnz
//   nnz x int64  row indices
//   nnz x int64  col indices
#pragma once

#include <string>

#include "graph/edge_list.hpp"

namespace agnn::graph {

void write_edge_list(const std::string& path, const EdgeList& el);
EdgeList read_edge_list(const std::string& path);

}  // namespace agnn::graph
