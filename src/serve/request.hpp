// Request/reply types of the online inference serving layer.
//
// A request is one per-user ego-network query: "run the model on vertex v's
// sampled neighborhood and give me v's output embedding". Requests carry a
// monotonically assigned id; everything downstream that must be reproducible
// (neighbor sampling above all) derives its randomness from that id, never
// from the thread that happens to process the request — see
// serve::derive_request_seed and DESIGN.md §15.
#pragma once

#include <chrono>
#include <cstdint>
#include <future>
#include <vector>

#include "tensor/common.hpp"

namespace agnn::serve {

enum class ReplyStatus : int {
  kOk = 0,
  kCancelled,  // server stopped without draining; request never ran
  kRejected,   // submitted after close, or the bounded queue refused it
};

inline const char* to_string(ReplyStatus s) {
  switch (s) {
    case ReplyStatus::kOk: return "ok";
    case ReplyStatus::kCancelled: return "cancelled";
    case ReplyStatus::kRejected: return "rejected";
  }
  return "?";
}

// SplitMix64 finalizer: the standard 64-bit avalanche mix. Used to turn
// (base seed, request id) into an Rng stream that is independent across
// requests and identical across server thread counts.
inline std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// The per-request sampling seed. A pure function of the server's base seed
// and the request id — NOT of the worker thread, the batch composition, or
// submission timing — so a request's sampled ego-network (and therefore its
// reply, by row-locality of every forward kernel) is replayable with
// `serve_sequential(..., derive_request_seed(base, id))`.
inline std::uint64_t derive_request_seed(std::uint64_t base_seed,
                                         std::uint64_t request_id) {
  return mix64(base_seed ^ mix64(request_id));
}

template <typename T>
struct InferenceReply {
  std::uint64_t request_id = 0;
  index_t vertex = -1;
  ReplyStatus status = ReplyStatus::kOk;
  std::vector<T> output;             // the seed vertex's final-layer embedding
  std::uint64_t sample_seed = 0;     // derive_request_seed(base, request_id)
  std::uint64_t dispatch_seq = 0;    // order the batcher dequeued the request
  index_t batch_size = 0;            // requests coalesced into the same batch
  index_t sampled_vertices = 0;      // |ego network| (widest level)
  std::uint64_t latency_ns = 0;      // enqueue -> reply
};

template <typename T>
struct InferenceRequest {
  std::uint64_t id = 0;
  index_t vertex = -1;
  std::chrono::steady_clock::time_point enqueue_time{};
  std::promise<InferenceReply<T>> promise;
};

}  // namespace agnn::serve
