// Disjoint-union batching of sampled ego networks + the forward-only pass
// that drives the workspace-backed kernels over the resulting blocks.
//
// A batch is the BLOCK-DIAGONAL union of its requests' per-layer blocks:
// request r's sub-block occupies a contiguous row/column range of the
// batched square adjacency for every layer, with no cross-request edges.
// Combined with the row-locality of every forward kernel (per-row CSR-order
// reductions, row-local attention normalization, deterministic schedule
// folds — DESIGN.md §11), this makes the batched output for request r
// BITWISE EQUAL to running the same ego network alone through
// serve_sequential: batching is a pure throughput transform, never an
// accuracy (or even ULP) transform. tests/test_serving.cpp and the
// differential `serving` suite enforce exactly that.
//
// Between layers the dst rows of each request must be re-packed into a
// contiguous input for the next layer (request r's dst rows are a prefix of
// its own segment, not of the whole batched output); that compaction is a
// row gather with precomputed indices (tensor/dense_ops.hpp gather_rows).
#pragma once

#include <vector>

#include "core/model.hpp"
#include "serve/sampler.hpp"
#include "tensor/dense_ops.hpp"

namespace agnn::serve {

template <typename T>
struct BatchBlocks {
  index_t num_requests = 0;
  index_t num_layers = 0;
  std::vector<CsrMatrix<T>> adj;        // per layer: block-diagonal, square
  std::vector<index_t> input_vertices;  // global ids feeding layer 0, in batch order
  // compaction[i]: row indices into layer i's output. For i < L-1 they
  // assemble layer i+1's input; compaction[L-1] selects the seed rows of
  // the final output (one per request, in batch order).
  std::vector<std::vector<index_t>> compaction;
  std::vector<index_t> seed_vertices;   // global seed per request (diagnostics)
};

// Assemble the block-diagonal batch. Every net must have the same number of
// layers (they come from one sampler). Nets are consumed read-only; the
// batch copies their patterns into fresh CSRs (per-batch temporaries — the
// serving path is allocating by design, the zero-alloc contract covers the
// kernels it calls, not batch assembly).
template <typename T>
BatchBlocks<T> build_batch(std::span<const SampledEgoNet<T>* const> nets) {
  AGNN_ASSERT(!nets.empty(), "build_batch: empty batch");
  BatchBlocks<T> bb;
  bb.num_requests = static_cast<index_t>(nets.size());
  bb.num_layers = nets[0]->num_layers();
  for (const auto* net : nets) {
    AGNN_ASSERT(net->num_layers() == bb.num_layers,
                "build_batch: mixed layer counts in one batch");
    bb.input_vertices.insert(bb.input_vertices.end(), net->vertices.begin(),
                             net->vertices.end());
    bb.seed_vertices.push_back(net->vertices.front());
  }

  bb.adj.reserve(static_cast<std::size_t>(bb.num_layers));
  bb.compaction.resize(static_cast<std::size_t>(bb.num_layers));
  for (index_t i = 0; i < bb.num_layers; ++i) {
    const auto li = static_cast<std::size_t>(i);
    index_t total_n = 0, total_nnz = 0;
    for (const auto* net : nets) {
      total_n += net->src_size(li);
      total_nnz += net->blocks[li].nnz();
    }
    std::vector<index_t> row_ptr;
    std::vector<index_t> col_idx;
    std::vector<T> vals;
    row_ptr.reserve(static_cast<std::size_t>(total_n) + 1);
    col_idx.reserve(static_cast<std::size_t>(total_nnz));
    vals.reserve(static_cast<std::size_t>(total_nnz));
    row_ptr.push_back(0);
    index_t row_off = 0;
    for (const auto* net : nets) {
      const CsrMatrix<T>& b = net->blocks[li];
      for (index_t r = 0; r < b.rows(); ++r) {
        for (index_t e = b.row_begin(r); e < b.row_end(r); ++e) {
          col_idx.push_back(b.col_at(e) + row_off);
          vals.push_back(b.val_at(e));
        }
        row_ptr.push_back(static_cast<index_t>(col_idx.size()));
      }
      // Compaction: this request's dst rows (a prefix of its segment).
      const index_t dst_n =
          i + 1 < bb.num_layers ? net->dst_size(li) : net->num_seeds();
      for (index_t d = 0; d < dst_n; ++d) {
        bb.compaction[li].push_back(row_off + d);
      }
      row_off += b.rows();
    }
    bb.adj.emplace_back(total_n, total_n, std::move(row_ptr),
                        std::move(col_idx), std::move(vals));
  }
  return bb;
}

// Run the model's layers forward over the batched blocks. `x0` holds the
// input features of `bb.input_vertices` (same order). `out` receives one
// row per request: the seed vertex's final-layer embedding, in batch order.
// All scratch comes from `ws`; nothing but the per-batch CSRs allocates
// once the pool is warm.
template <typename T>
void forward_batch(const GnnModel<T>& model, const BatchBlocks<T>& bb,
                   const DenseMatrix<T>& x0, Workspace<T>& ws,
                   DenseMatrix<T>& out) {
  AGNN_ASSERT(static_cast<index_t>(model.num_layers()) == bb.num_layers,
              "forward_batch: model/batch layer count mismatch");
  AGNN_ASSERT(x0.rows() == bb.adj[0].rows(),
              "forward_batch: input feature rows must match layer-0 block");
  // `x` only ever holds compacted layer OUTPUTS (layer 0 reads x0 in
  // place), so max_layer_width covers both ping-pong buffers.
  const index_t max_w = model.max_layer_width();
  auto x = ws.acquire_dense(x0.rows(), max_w);
  auto z = ws.acquire_dense(x0.rows(), max_w);
  const DenseMatrix<T>* src = &x0;
  for (index_t i = 0; i < bb.num_layers; ++i) {
    const auto li = static_cast<std::size_t>(i);
    model.layer(li).forward(bb.adj[li], *src, nullptr, ws, *z);
    if (i + 1 < bb.num_layers) {
      gather_rows(*z, std::span<const index_t>(bb.compaction[li]), *x);
      src = &x.get();
    } else {
      gather_rows(*z, std::span<const index_t>(bb.compaction[li]), out);
    }
  }
}

// The per-request reference path: sample one ego network, gather its input
// features straight from the global matrix (no cache), run the blocks
// forward. The batched server path must reproduce this bitwise for every
// request — this is the oracle the tests and the `serving` fuzz suite diff
// against, and the baseline the serving benchmark compares throughput to.
template <typename T>
std::vector<T> serve_sequential(const GnnModel<T>& model,
                                const CsrMatrix<T>& adj,
                                const DenseMatrix<T>& x_global,
                                const NeighborSampler& sampler, index_t vertex,
                                std::uint64_t sample_seed, Workspace<T>& ws) {
  const SampledEgoNet<T> net = sampler.sample(adj, vertex, sample_seed);
  const SampledEgoNet<T>* nets[] = {&net};
  const BatchBlocks<T> bb = build_batch(std::span<const SampledEgoNet<T>* const>(nets));
  auto x0 = ws.acquire_dense(static_cast<index_t>(bb.input_vertices.size()),
                             x_global.cols());
  gather_rows(x_global, std::span<const index_t>(bb.input_vertices), *x0);
  auto out = ws.acquire_dense(1, model.max_layer_width());
  forward_batch(model, bb, *x0, ws, *out);
  const auto row = out->row(0);
  return std::vector<T>(row.begin(), row.end());
}

}  // namespace agnn::serve
