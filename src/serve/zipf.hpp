// Zipf-distributed vertex popularity for the closed-loop load generator.
//
// P(rank r) proportional to 1 / (r+1)^s over n ranks. Sampling inverts the
// precomputed CDF with a binary search — O(log n) per draw, exact (no
// rejection), and fully determined by the caller's Rng, which keeps the
// bench's request schedule replayable from its seed. Rank r maps to vertex
// id `perm[r]` under a seeded shuffle so the popular vertices are spread
// across the id space rather than clustered at 0 (Kronecker generators
// correlate degree with id; the shuffle decorrelates popularity from
// degree so the cache's working set is not an artifact of graph layout).
#pragma once

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "tensor/common.hpp"

namespace agnn::serve {

class ZipfSampler {
 public:
  ZipfSampler(index_t n, double exponent, std::uint64_t perm_seed = 0)
      : cdf_(static_cast<std::size_t>(n)), perm_(static_cast<std::size_t>(n)) {
    AGNN_ASSERT(n > 0, "ZipfSampler: need at least one vertex");
    AGNN_ASSERT(exponent >= 0.0, "ZipfSampler: exponent must be non-negative");
    double acc = 0.0;
    for (index_t r = 0; r < n; ++r) {
      acc += 1.0 / std::pow(static_cast<double>(r) + 1.0, exponent);
      cdf_[static_cast<std::size_t>(r)] = acc;
    }
    for (auto& c : cdf_) c /= acc;
    cdf_.back() = 1.0;  // guard against round-off at the top
    std::iota(perm_.begin(), perm_.end(), index_t{0});
    Rng rng(perm_seed ^ 0x5a1bf00dULL);
    for (std::size_t i = perm_.size(); i > 1; --i) {
      std::swap(perm_[i - 1],
                perm_[static_cast<std::size_t>(rng.next_bounded(i))]);
    }
  }

  index_t num_vertices() const { return static_cast<index_t>(cdf_.size()); }

  index_t sample(Rng& rng) const {
    const double u = rng.next_double();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    const auto rank = static_cast<std::size_t>(it - cdf_.begin());
    return perm_[std::min(rank, perm_.size() - 1)];
  }

 private:
  std::vector<double> cdf_;    // cdf_[r] = P(rank <= r)
  std::vector<index_t> perm_;  // rank -> vertex id
};

}  // namespace agnn::serve
