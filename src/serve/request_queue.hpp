// RequestQueue + Batcher: the admission path of the inference server.
//
// RequestQueue is a bounded MPMC queue (mutex + two condvars, so it is
// TSan-clean by construction — the serving layer runs in the sanitizer
// matrix, where lock-free cleverness would buy microseconds and cost a
// weekend). Producers block when the queue is at capacity (backpressure;
// try_push is the non-blocking form), consumers pop whole batches.
//
// Batcher implements the coalescing policy on top of pop_batch: a batch
// closes when EITHER max_batch requests are waiting OR batch_window has
// elapsed since the OLDEST request in the batch was dequeued-eligible.
// Requests leave in strict FIFO order — a batch is always a contiguous
// prefix of the arrival order — which is what makes per-client dispatch
// order provable (tests/test_serving_stress.cpp).
//
// Shutdown: close(drain=true) lets consumers keep popping until the queue is
// empty, then pop_batch returns false; close(drain=false) returns the
// still-queued requests to the caller so it can fail them explicitly
// (ReplyStatus::kCancelled). Push after close fails with kRejected.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

#include "serve/request.hpp"

namespace agnn::serve {

template <typename T>
class RequestQueue {
 public:
  explicit RequestQueue(std::size_t capacity = 4096) : capacity_(capacity) {
    AGNN_ASSERT(capacity > 0, "RequestQueue: capacity must be positive");
  }

  // Blocking push: waits while the queue is full (backpressure). Returns
  // false — without enqueueing — once the queue is closed.
  bool push(InferenceRequest<T>&& req) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [&] { return closed_ || queue_.size() < capacity_; });
    if (closed_) return false;
    queue_.push_back(std::move(req));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  // Non-blocking push: false when full or closed (the request is untouched
  // and still owned by the caller, so it can fail the promise itself).
  bool try_push(InferenceRequest<T>&& req) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || queue_.size() >= capacity_) return false;
      queue_.push_back(std::move(req));
    }
    not_empty_.notify_one();
    return true;
  }

  // Pop up to `max_batch` requests in FIFO order. Blocks until the first
  // request arrives, then keeps collecting until max_batch is reached or
  // `window` has elapsed since the first request of THIS batch was popped.
  // A zero window degenerates to "whatever is queued right now, at least 1".
  // Returns false only when the queue is closed and empty.
  bool pop_batch(std::size_t max_batch, std::chrono::nanoseconds window,
                 std::vector<InferenceRequest<T>>& out) {
    out.clear();
    AGNN_ASSERT(max_batch > 0, "pop_batch: max_batch must be positive");
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !queue_.empty(); });
    if (queue_.empty()) return false;  // closed and drained
    const auto deadline = std::chrono::steady_clock::now() + window;
    take_locked(max_batch, out);
    while (out.size() < max_batch && window.count() > 0) {
      if (!not_empty_.wait_until(lock, deadline, [&] {
            return closed_ || !queue_.empty();
          })) {
        break;  // window elapsed
      }
      if (queue_.empty()) break;  // closed while waiting
      take_locked(max_batch, out);
    }
    lock.unlock();
    not_full_.notify_all();
    return true;
  }

  // Close the queue. drain=true: leftovers stay for consumers to pop.
  // drain=false: leftovers are handed back so the caller can cancel them.
  std::vector<InferenceRequest<T>> close(bool drain) {
    std::vector<InferenceRequest<T>> leftovers;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
      if (!drain) {
        leftovers.reserve(queue_.size());
        for (auto& r : queue_) leftovers.push_back(std::move(r));
        queue_.clear();
      }
    }
    not_empty_.notify_all();
    not_full_.notify_all();
    return leftovers;
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  void take_locked(std::size_t max_batch, std::vector<InferenceRequest<T>>& out) {
    while (!queue_.empty() && out.size() < max_batch) {
      out.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
  }

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<InferenceRequest<T>> queue_;
  bool closed_ = false;
};

// The coalescing policy, as a small named object so the window/max knobs
// live in one place and the server loop reads as `while (batcher.next(...))`.
template <typename T>
class Batcher {
 public:
  Batcher(RequestQueue<T>& queue, std::size_t max_batch,
          std::chrono::nanoseconds window)
      : queue_(queue), max_batch_(max_batch), window_(window) {
    AGNN_ASSERT(max_batch > 0, "Batcher: max_batch must be positive");
  }

  bool next(std::vector<InferenceRequest<T>>& out) {
    return queue_.pop_batch(max_batch_, window_, out);
  }

  std::size_t max_batch() const { return max_batch_; }
  std::chrono::nanoseconds window() const { return window_; }

 private:
  RequestQueue<T>& queue_;
  std::size_t max_batch_;
  std::chrono::nanoseconds window_;
};

}  // namespace agnn::serve
