// Layer-wise, fan-out-bounded neighbor sampling over the sealed CSR,
// producing bipartite blocks with seed-local renumbering — the
// sampler/block decomposition DGL uses for mini-batch inference, adapted to
// the global-formulation kernels of this repo.
//
// Sampling contract
// -----------------
// For an L-layer model and seed vertex v, the sampler builds nested vertex
// levels
//
//   level 0 = {v}                                   (the seeds)
//   level t = level t-1  ++  sampled out-neighbors of level t-1's vertices
//
// up to level L. Levels are NESTED BY PREFIX: level t-1 is literally the
// first `level_sizes[t-1]` entries of level t's vertex list, so one local
// numbering (`vertices`: local index -> global id, seed at index 0) serves
// every level — that is the "seed-local renumbering" of the block
// decomposition, and what makes the round-trip test trivial to state.
//
// The bipartite block feeding model layer i (i = 0 is the first layer the
// features enter) has
//
//   src = level L-i      (features available),
//   dst = level L-i-1    (features produced),
//
// stored as a SQUARE CSR over src: the first |dst| rows carry the sampled
// edges, the remaining rows are empty. Square blocks mean every existing
// square-adjacency kernel (fused GAT/AGNN included) runs on them unchanged;
// rows past |dst| compute values nobody reads, and attention's row-local
// normalization guarantees they cannot contaminate the dst rows.
//
// Determinism: the edges sampled for a vertex are a pure function of
// (sample_seed, global vertex id, fanout) — not of the level, the visit
// order, the batch, or the thread. Sampled edges keep their CSR order, so a
// dst row in a block is a subsequence of the same row in the global CSR and
// per-row float reductions see the same operand order everywhere. Values
// are copied from the live CSR at sample time, so a vals_mutable() write to
// the global adjacency is picked up by the next sample (blocks are per-batch
// and never cached across batches — DESIGN.md §15).
#pragma once

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "serve/request.hpp"
#include "tensor/csr_matrix.hpp"

namespace agnn::serve {

// One request's sampled multi-layer neighborhood.
template <typename T>
struct SampledEgoNet {
  std::vector<index_t> vertices;     // local -> global; seed(s) first
  std::vector<index_t> level_sizes;  // level_sizes[t] = |level t|, t = 0..L
  // blocks[i] feeds model layer i: square over level L-i, first
  // level_sizes[L-i-1] rows carry edges. blocks.size() == L.
  std::vector<CsrMatrix<T>> blocks;

  index_t num_layers() const { return static_cast<index_t>(blocks.size()); }
  index_t num_vertices() const { return static_cast<index_t>(vertices.size()); }
  index_t num_seeds() const { return level_sizes.empty() ? 0 : level_sizes[0]; }

  // Block i's src/dst widths (local prefix lengths of `vertices`).
  index_t src_size(std::size_t i) const {
    return level_sizes[level_sizes.size() - 1 - i];
  }
  index_t dst_size(std::size_t i) const {
    return level_sizes[level_sizes.size() - 2 - i];
  }
};

class NeighborSampler {
 public:
  NeighborSampler(index_t fanout, index_t num_layers,
                  std::uint64_t base_seed = 0x5eedULL)
      : fanout_(fanout), num_layers_(num_layers), base_seed_(base_seed) {
    AGNN_ASSERT(fanout > 0, "NeighborSampler: fanout must be positive");
    AGNN_ASSERT(num_layers > 0, "NeighborSampler: need at least one layer");
  }

  index_t fanout() const { return fanout_; }
  index_t num_layers() const { return num_layers_; }
  std::uint64_t base_seed() const { return base_seed_; }

  // The edge positions (global CSR edge indices, ascending) sampled for
  // `vertex` under `sample_seed`: min(degree, fanout) positions without
  // replacement via Floyd's algorithm; full rows pass through untouched.
  template <typename T>
  void sampled_edges(const CsrMatrix<T>& adj, index_t vertex,
                     std::uint64_t sample_seed,
                     std::vector<index_t>& out) const {
    out.clear();
    const index_t begin = adj.row_begin(vertex);
    const index_t deg = adj.row_end(vertex) - begin;
    if (deg <= fanout_) {
      for (index_t e = 0; e < deg; ++e) out.push_back(begin + e);
      return;
    }
    // Floyd's subset sampling: exactly `fanout_` distinct offsets in
    // [0, deg), kept sorted so the edge order matches the CSR row. The
    // stream depends only on (sample_seed, vertex).
    Rng rng(sample_seed ^
            mix64(static_cast<std::uint64_t>(vertex) * 0x9e3779b97f4a7c15ULL));
    out.reserve(static_cast<std::size_t>(fanout_));
    for (index_t j = deg - fanout_; j < deg; ++j) {
      const auto t = static_cast<index_t>(
          rng.next_bounded(static_cast<std::uint64_t>(j) + 1));
      const auto it = std::lower_bound(out.begin(), out.end(), t);
      if (it != out.end() && *it == t) {
        out.insert(std::lower_bound(out.begin(), out.end(), j), j);
      } else {
        out.insert(it, t);
      }
    }
    for (auto& e : out) e += begin;  // offsets -> global edge positions
  }

  // Sample the full L-level ego network of `seed_vertex`.
  template <typename T>
  SampledEgoNet<T> sample(const CsrMatrix<T>& adj, index_t seed_vertex,
                          std::uint64_t sample_seed) const {
    AGNN_ASSERT(seed_vertex >= 0 && seed_vertex < adj.rows(),
                "sample: seed vertex out of range");
    SampledEgoNet<T> net;
    net.vertices.push_back(seed_vertex);
    net.level_sizes.push_back(1);

    std::unordered_map<index_t, index_t> local_of;  // global -> local
    local_of.emplace(seed_vertex, 0);

    // Expand levels outward. Only the vertices NEW to the previous level
    // need expanding: older vertices' sampled edge sets are fixed (they
    // depend on the vertex id alone), so their targets are already members.
    // edges_of[li] records vertex li's sampled edge positions; vertices
    // discovered in the final level are never expanded and never dst rows.
    std::vector<std::vector<index_t>> edges_of(1);
    std::size_t frontier_begin = 0;
    for (index_t t = 0; t < num_layers_; ++t) {
      const std::size_t frontier_end = net.vertices.size();
      for (std::size_t li = frontier_begin; li < frontier_end; ++li) {
        sampled_edges(adj, net.vertices[li], sample_seed, edges_of[li]);
        for (const index_t e : edges_of[li]) {
          const index_t g = adj.col_at(e);
          if (local_of.emplace(g, static_cast<index_t>(net.vertices.size()))
                  .second) {
            net.vertices.push_back(g);
            edges_of.emplace_back();
          }
        }
      }
      frontier_begin = frontier_end;
      net.level_sizes.push_back(static_cast<index_t>(net.vertices.size()));
    }

    // Build the square block for each model layer from the recorded edges.
    net.blocks.reserve(static_cast<std::size_t>(num_layers_));
    for (index_t i = 0; i < num_layers_; ++i) {
      const index_t src_n =
          net.level_sizes[static_cast<std::size_t>(num_layers_ - i)];
      const index_t dst_n =
          net.level_sizes[static_cast<std::size_t>(num_layers_ - i - 1)];
      std::vector<index_t> row_ptr(static_cast<std::size_t>(src_n) + 1, 0);
      std::vector<index_t> col_idx;
      std::vector<T> vals;
      for (index_t d = 0; d < dst_n; ++d) {
        for (const index_t e : edges_of[static_cast<std::size_t>(d)]) {
          col_idx.push_back(local_of.at(adj.col_at(e)));
          vals.push_back(adj.val_at(e));
        }
        row_ptr[static_cast<std::size_t>(d) + 1] =
            static_cast<index_t>(col_idx.size());
      }
      for (index_t r = dst_n; r < src_n; ++r) {
        row_ptr[static_cast<std::size_t>(r) + 1] =
            static_cast<index_t>(col_idx.size());
      }
      net.blocks.emplace_back(src_n, src_n, std::move(row_ptr),
                              std::move(col_idx), std::move(vals));
    }
    return net;
  }

  // Convenience: the per-request seed derivation applied.
  template <typename T>
  SampledEgoNet<T> sample_for_request(const CsrMatrix<T>& adj,
                                      index_t seed_vertex,
                                      std::uint64_t request_id) const {
    return sample<T>(adj, seed_vertex,
                     derive_request_seed(base_seed_, request_id));
  }

 private:
  index_t fanout_;
  index_t num_layers_;
  std::uint64_t base_seed_;
};

}  // namespace agnn::serve
