// InferenceServer<T>: the multi-threaded online serving loop.
//
// Worker threads pull coalesced batches off the RequestQueue (Batcher policy:
// max_batch OR batch_window, whichever closes first), sample each request's
// ego network with its id-derived seed, assemble the block-diagonal batch,
// gather input features through the hot-vertex cache, run the forward-only
// pass through the workspace-backed kernels, and fulfil each request's
// promise with its seed row of the output.
//
// Every stage is traced (AGNN_STAGE_SCOPE: serve.batch / serve.sample /
// serve.gather / serve.forward / serve.reply, plus serve.enqueue on the
// submit side), so `AGNN_TRACE=trace.json` on a serving run shows the
// batch pipeline exactly like an epoch shows the kernel pipeline. The
// end-to-end latency histogram serve.request.ns is recorded UNCONDITIONALLY
// (not gated on the tracer) — it is the benchmark's p50/p99/p999 source and
// must work in untraced runs.
//
// Reproducibility contract (tested across thread counts): request id ->
// sample seed via derive_request_seed, so a reply depends only on (model,
// graph, features, fanout, base seed, request id) — never on which worker
// ran it, what else shared its batch, or the batch window. Batching is
// bitwise-invisible (see batch_forward.hpp).
//
// Threading: one Workspace per worker (the pool is not thread-safe); the
// model, adjacency, and feature matrix are shared read-only; the cache and
// queue lock internally.
#pragma once

#include <atomic>
#include <optional>
#include <thread>
#include <vector>

#include "core/model.hpp"
#include "obs/obs_scope.hpp"
#include "serve/batch_forward.hpp"
#include "serve/request_queue.hpp"
#include "serve/vertex_cache.hpp"
#include "tensor/autotune.hpp"

namespace agnn::serve {

struct ServeConfig {
  std::size_t num_threads = 1;
  std::size_t max_batch = 32;
  std::chrono::nanoseconds batch_window = std::chrono::milliseconds(1);
  std::size_t queue_capacity = 4096;
  index_t fanout = 10;
  std::uint64_t sample_seed = 0x5eedULL;  // base; per-request via request id
  std::size_t cache_capacity = 1024;      // feature rows
  std::size_t cache_shards = 8;
  // When AGNN_TUNE is live, run representative forward passes at
  // construction so the autotuner samples once at warmup, then freeze it —
  // request latency never pays a sampling stall (tensor/autotune.hpp).
  bool warmup_tuning = true;
};

template <typename T>
class InferenceServer {
 public:
  InferenceServer(const GnnModel<T>& model, const CsrMatrix<T>& adj,
                  const DenseMatrix<T>& x, const ServeConfig& config)
      : model_(model),
        adj_(adj),
        x_(x),
        config_(config),
        sampler_(config.fanout, static_cast<index_t>(model.num_layers()),
                 config.sample_seed),
        queue_(config.queue_capacity),
        cache_(config.cache_capacity, config.cache_shards),
        latency_hist_(
            obs::MetricsRegistry::global().histogram("serve.request.ns")),
        batch_size_hist_(
            obs::MetricsRegistry::global().histogram("serve.batch.size")),
        completed_metric_(
            obs::MetricsRegistry::global().counter("serve.requests.completed")),
        batches_metric_(
            obs::MetricsRegistry::global().counter("serve.batches")) {
    AGNN_ASSERT(config.num_threads > 0, "InferenceServer: need a worker");
    AGNN_ASSERT(x.rows() == adj.rows(),
                "InferenceServer: feature rows must match graph");
    AGNN_ASSERT(x.cols() == model.config().in_features,
                "InferenceServer: feature width must match model");
    // Tune-at-warmup, then freeze: sampling happens here, on representative
    // batch subgraphs, never on the request path. tune_mode_from_env() is
    // strict and may throw — better at construction than mid-request.
    if (config.warmup_tuning && adj_.rows() > 0 &&
        tune_mode_from_env() != TuneMode::kOff) {
      warmup_tune();
      tune_freeze();
      frozen_by_us_ = true;
    }
    workers_.reserve(config.num_threads);
    for (std::size_t i = 0; i < config.num_threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ~InferenceServer() { stop(/*drain=*/true); }

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  // Submit one query. Blocks while the queue is full (backpressure). The
  // future always becomes ready: kOk after a forward pass, kRejected if the
  // server is stopped, kCancelled if stop(false) discarded it.
  std::future<InferenceReply<T>> submit(index_t vertex) {
    AGNN_STAGE_SCOPE("serve.enqueue");
    InferenceRequest<T> req = make_request(vertex);
    auto future = req.promise.get_future();
    if (!queue_.push(std::move(req))) {
      // push only fails on a closed queue and leaves `req` unconsumed, so
      // the original promise can carry the rejection.
      InferenceReply<T> reply = make_terminal_reply(vertex, ReplyStatus::kRejected);
      reply.request_id = req.id;
      req.promise.set_value(std::move(reply));
    }
    return future;
  }

  // Non-blocking submit: nullopt when the queue is full (the caller decides
  // whether to retry, shed, or block); a ready kRejected future when closed.
  std::optional<std::future<InferenceReply<T>>> try_submit(index_t vertex) {
    AGNN_STAGE_SCOPE("serve.enqueue");
    if (queue_.closed()) {
      std::promise<InferenceReply<T>> p;
      auto future = p.get_future();
      p.set_value(make_terminal_reply(vertex, ReplyStatus::kRejected));
      return future;
    }
    InferenceRequest<T> req = make_request(vertex);
    auto future = req.promise.get_future();
    if (!queue_.try_push(std::move(req))) return std::nullopt;
    return future;
  }

  // Stop the server. drain=true: workers finish everything already queued.
  // drain=false: queued-but-unstarted requests are failed with kCancelled.
  // Idempotent; the destructor calls stop(true).
  void stop(bool drain) {
    std::vector<InferenceRequest<T>> leftovers = queue_.close(drain);
    for (auto& req : leftovers) {
      InferenceReply<T> reply = make_terminal_reply(req.vertex, ReplyStatus::kCancelled);
      reply.request_id = req.id;
      reply.sample_seed = derive_request_seed(config_.sample_seed, req.id);
      req.promise.set_value(std::move(reply));
    }
    for (auto& w : workers_) {
      if (w.joinable()) w.join();
    }
    workers_.clear();
    if (frozen_by_us_) {
      tune_unfreeze();
      frozen_by_us_ = false;
    }
  }

  const ServeConfig& config() const { return config_; }
  const NeighborSampler& sampler() const { return sampler_; }
  const VertexCache<T>& cache() const { return cache_; }
  VertexCache<T>& cache() { return cache_; }
  std::uint64_t completed() const {
    return completed_.load(std::memory_order_relaxed);
  }
  std::uint64_t submitted() const {
    return next_id_.load(std::memory_order_relaxed);
  }

 private:
  InferenceRequest<T> make_request(index_t vertex) {
    AGNN_ASSERT(vertex >= 0 && vertex < adj_.rows(),
                "submit: vertex out of range");
    InferenceRequest<T> req;
    req.id = next_id_.fetch_add(1, std::memory_order_relaxed);
    req.vertex = vertex;
    req.enqueue_time = std::chrono::steady_clock::now();
    return req;
  }

  InferenceReply<T> make_terminal_reply(index_t vertex, ReplyStatus status) {
    InferenceReply<T> reply;
    reply.vertex = vertex;
    reply.status = status;
    return reply;
  }

  // One representative batch forward so every kernel the request path will
  // run gets its (kernel, signature) cell sampled and memoized while nothing
  // is latency-sensitive yet. Counted in serve.warmup_tunes (the serving
  // test asserts it fires exactly once and that tune.samples is flat across
  // subsequent requests). Vertices are spread across the graph and sampled
  // with the same id-derived seeds the first real requests would use, so the
  // warmup subgraph signatures match the request-path ones. Features are
  // gathered straight from x_, bypassing the vertex cache — warmup must not
  // skew the cache hit-rate metrics.
  void warmup_tune() {
    AGNN_STAGE_SCOPE("serve.warmup_tune");
    obs::MetricsRegistry::global().counter("serve.warmup_tunes").add(1);
    Workspace<T> ws;
    const std::size_t nwarm =
        std::min<std::size_t>(std::max<std::size_t>(config_.max_batch, 1), 4);
    std::vector<SampledEgoNet<T>> nets;
    nets.reserve(nwarm);
    for (std::size_t i = 0; i < nwarm; ++i) {
      const index_t v = static_cast<index_t>(
          (i * static_cast<std::size_t>(adj_.rows())) / nwarm);
      nets.push_back(sampler_.template sample_for_request<T>(
          adj_, v, static_cast<std::uint64_t>(i)));
    }
    std::vector<const SampledEgoNet<T>*> net_ptrs;
    net_ptrs.reserve(nets.size());
    for (const auto& net : nets) net_ptrs.push_back(&net);
    const BatchBlocks<T> bb =
        build_batch(std::span<const SampledEgoNet<T>* const>(net_ptrs));
    auto x0 = ws.acquire_dense(static_cast<index_t>(bb.input_vertices.size()),
                               x_.cols());
    for (std::size_t i = 0; i < bb.input_vertices.size(); ++i) {
      const auto row = x_.row(bb.input_vertices[i]);
      std::copy(row.begin(), row.end(),
                x0->data() + static_cast<index_t>(i) * x_.cols());
    }
    auto out = ws.acquire_dense(static_cast<index_t>(nwarm),
                                model_.max_layer_width());
    forward_batch(model_, bb, *x0, ws, *out);
  }

  void worker_loop() {
    Workspace<T> ws;
    std::vector<InferenceRequest<T>> batch;
    for (;;) {
      {
        // Spans batch formation: the wait for the first request plus the
        // coalescing window. Idle time between batches lands here.
        AGNN_STAGE_SCOPE("serve.batch");
        if (!queue_.pop_batch(config_.max_batch, config_.batch_window, batch)) {
          return;  // closed and drained
        }
      }
      process_batch(batch, ws);
    }
  }

  void process_batch(std::vector<InferenceRequest<T>>& batch, Workspace<T>& ws) {
    const std::uint64_t seq_base =
        dispatch_seq_.fetch_add(batch.size(), std::memory_order_relaxed);
    batches_metric_.add(1);
    batch_size_hist_.record(batch.size());

    std::vector<SampledEgoNet<T>> nets;
    nets.reserve(batch.size());
    {
      AGNN_STAGE_SCOPE("serve.sample");
      for (const auto& req : batch) {
        nets.push_back(sampler_.template sample_for_request<T>(
            adj_, req.vertex, req.id));
      }
    }
    std::vector<const SampledEgoNet<T>*> net_ptrs;
    net_ptrs.reserve(nets.size());
    for (const auto& net : nets) net_ptrs.push_back(&net);
    const BatchBlocks<T> bb =
        build_batch(std::span<const SampledEgoNet<T>* const>(net_ptrs));

    auto x0 = ws.acquire_dense(static_cast<index_t>(bb.input_vertices.size()),
                               x_.cols());
    {
      AGNN_STAGE_SCOPE("serve.gather");
      const auto k = static_cast<std::size_t>(x_.cols());
      for (std::size_t i = 0; i < bb.input_vertices.size(); ++i) {
        const index_t g = bb.input_vertices[i];
        cache_.fetch(g, x0->data() + static_cast<index_t>(i) * x_.cols(), k,
                     [this](index_t v, T* dst) {
                       const auto row = x_.row(v);
                       std::copy(row.begin(), row.end(), dst);
                     });
      }
    }

    auto out = ws.acquire_dense(static_cast<index_t>(batch.size()),
                                model_.max_layer_width());
    {
      AGNN_STAGE_SCOPE("serve.forward");
      forward_batch(model_, bb, *x0, ws, *out);
    }

    {
      AGNN_STAGE_SCOPE("serve.reply");
      const auto now = std::chrono::steady_clock::now();
      for (std::size_t r = 0; r < batch.size(); ++r) {
        InferenceRequest<T>& req = batch[r];
        InferenceReply<T> reply;
        reply.request_id = req.id;
        reply.vertex = req.vertex;
        reply.status = ReplyStatus::kOk;
        const auto row = out->row(static_cast<index_t>(r));
        reply.output.assign(row.begin(), row.end());
        reply.sample_seed = derive_request_seed(config_.sample_seed, req.id);
        reply.dispatch_seq = seq_base + r;
        reply.batch_size = static_cast<index_t>(batch.size());
        reply.sampled_vertices = nets[r].num_vertices();
        reply.latency_ns = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                now - req.enqueue_time)
                .count());
        latency_hist_.record(reply.latency_ns);
        completed_metric_.add(1);
        completed_.fetch_add(1, std::memory_order_relaxed);
        req.promise.set_value(std::move(reply));
      }
    }
  }

  const GnnModel<T>& model_;
  const CsrMatrix<T>& adj_;
  const DenseMatrix<T>& x_;
  const ServeConfig config_;
  const NeighborSampler sampler_;
  RequestQueue<T> queue_;
  VertexCache<T> cache_;
  obs::Histogram& latency_hist_;
  obs::Histogram& batch_size_hist_;
  obs::Counter& completed_metric_;
  obs::Counter& batches_metric_;
  std::atomic<std::uint64_t> next_id_{0};
  std::atomic<std::uint64_t> dispatch_seq_{0};
  std::atomic<std::uint64_t> completed_{0};
  bool frozen_by_us_ = false;  // this server holds one tune_freeze() level
  std::vector<std::thread> workers_;
};

}  // namespace agnn::serve
