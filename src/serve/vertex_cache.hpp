// VertexCache<T>: a sharded LRU cache of hot-vertex feature rows.
//
// Online serving reads the same few feature rows over and over — request
// popularity is Zipf-shaped, and a sampled ego network re-touches the hub
// vertices of the graph on almost every query. The cache keeps those rows
// in LRU order, sharded by a hash of the vertex id so concurrent server
// workers mostly lock different shards.
//
// Accounting: every instance keeps its own hit/miss/eviction atomics (the
// unit tests assert exact counts per cache), and mirrors each event into
// the global metrics registry under serve.cache.{hits,misses,evictions}
// so the serving benchmark and the CI smoke test can read the hit rate
// from the same place as every other counter. Counter references are
// resolved once in the constructor (the registry guarantees reference
// stability), so the hot path never takes the registry lock.
//
// Coherence: the cache stores COPIES of feature rows. If the underlying
// feature matrix changes, the owner must call invalidate() — the serving
// layer treats features as immutable between explicit reload events
// (DESIGN.md §15). Adjacency values are deliberately NOT cached anywhere:
// sampled blocks copy them from the live CSR at sample time.
#pragma once

#include <atomic>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/request.hpp"
#include "tensor/common.hpp"

namespace agnn::serve {

template <typename T>
class VertexCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;

    double hit_rate() const {
      const std::uint64_t total = hits + misses;
      return total == 0 ? 0.0
                        : static_cast<double>(hits) / static_cast<double>(total);
    }
  };

  // `capacity` is the total number of cached rows across all shards.
  explicit VertexCache(std::size_t capacity, std::size_t num_shards = 8)
      : hits_metric_(obs::MetricsRegistry::global().counter("serve.cache.hits")),
        misses_metric_(
            obs::MetricsRegistry::global().counter("serve.cache.misses")),
        evictions_metric_(
            obs::MetricsRegistry::global().counter("serve.cache.evictions")) {
    AGNN_ASSERT(capacity > 0, "VertexCache: capacity must be positive");
    AGNN_ASSERT(num_shards > 0, "VertexCache: need at least one shard");
    if (num_shards > capacity) num_shards = capacity;
    shards_ = std::vector<Shard>(num_shards);
    per_shard_capacity_ = (capacity + num_shards - 1) / num_shards;
  }

  std::size_t num_shards() const { return shards_.size(); }
  std::size_t capacity() const { return per_shard_capacity_ * shards_.size(); }

  // Copy vertex's feature row (k elements) into `dst`. On a miss, `loader`
  // is invoked as loader(vertex, row_ptr) to fill the freshly inserted row,
  // which is then copied out. Returns true on a hit.
  template <typename Loader>
  bool fetch(index_t vertex, T* dst, std::size_t k, Loader&& loader) {
    Shard& shard = shards_[shard_of(vertex)];
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.index.find(vertex);
    if (it != shard.index.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      const std::vector<T>& row = it->second->row;
      AGNN_ASSERT(row.size() == k, "VertexCache: feature width changed");
      std::copy(row.begin(), row.end(), dst);
      hits_.fetch_add(1, std::memory_order_relaxed);
      hits_metric_.add(1);
      return true;
    }
    shard.lru.emplace_front();
    Entry& e = shard.lru.front();
    e.vertex = vertex;
    e.row.resize(k);
    loader(vertex, e.row.data());
    std::copy(e.row.begin(), e.row.end(), dst);
    shard.index.emplace(vertex, shard.lru.begin());
    if (shard.index.size() > per_shard_capacity_) {
      shard.index.erase(shard.lru.back().vertex);
      shard.lru.pop_back();
      evictions_.fetch_add(1, std::memory_order_relaxed);
      evictions_metric_.add(1);
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    misses_metric_.add(1);
    return false;
  }

  // Drop every cached row (features changed under us). Counters are NOT
  // reset — they are lifetime totals.
  void invalidate() {
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mutex);
      shard.index.clear();
      shard.lru.clear();
    }
  }

  std::size_t size() const {
    std::size_t n = 0;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mutex);
      n += shard.index.size();
    }
    return n;
  }

  Stats stats() const {
    return {hits_.load(std::memory_order_relaxed),
            misses_.load(std::memory_order_relaxed),
            evictions_.load(std::memory_order_relaxed)};
  }

 private:
  struct Entry {
    index_t vertex = -1;
    std::vector<T> row;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::list<Entry> lru;  // front = most recent
    std::unordered_map<index_t, typename std::list<Entry>::iterator> index;
  };

  std::size_t shard_of(index_t vertex) const {
    return static_cast<std::size_t>(mix64(static_cast<std::uint64_t>(vertex))) %
           shards_.size();
  }

  std::vector<Shard> shards_;
  std::size_t per_shard_capacity_ = 0;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
  obs::Counter& hits_metric_;
  obs::Counter& misses_metric_;
  obs::Counter& evictions_metric_;
};

}  // namespace agnn::serve
