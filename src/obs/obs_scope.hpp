// Combined per-call-site observability scopes.
//
// One macro per instrumented entry-point kind bundles the three signals the
// performance observatory wants from that site:
//
//   AGNN_KERNEL_SCOPE(name, bytes)     kernel entry points (src/tensor/)
//     = trace span (kKernel, byte-tagged with the kernel's algorithmic
//       traffic estimate, which TraceReport turns into GB/s)
//     + latency histogram  kernel.<name>.ns
//     + perf region        perf.<name>.*   (AGNN_PERF)
//
//   AGNN_COLLECTIVE_SCOPE(name, bytes) Communicator collectives
//     = trace span (kCollective, byte-tagged as before)
//     + latency histogram  comm.<name>.ns
//     + size histogram     comm.<name>.bytes
//
//   AGNN_EPOCH_SCOPE(name)             Trainer / MinibatchTrainer steps
//     = trace span (kEpoch)
//     + latency histogram  <name>.ns
//
// Cost model: everything except the perf region is gated on
// Tracer::enabled() — when tracing is off each scope costs the same one
// relaxed load + branch as a bare AGNN_TRACE_SCOPE (the disabled-cost
// contract bench_kernels asserts). The perf region is gated on its own
// AGNN_PERF flag so hardware counting works with or without the tracer.
// Histogram references resolve once per call site through a function-local
// static inside a captureless lambda, so the enabled hot path is a clock
// read + one wait-free record — no strings, no registry lock, no
// allocation.
#pragma once

#include "obs/histogram.hpp"
#include "obs/metrics.hpp"
#include "obs/perf_counters.hpp"
#include "obs/trace.hpp"

namespace agnn::obs {

// RAII latency recorder. `HistFn` is only invoked when tracing is enabled,
// so disabled runs never touch the registry at all.
class LatencyScope {
 public:
  using HistFn = Histogram& (*)();

  explicit LatencyScope(HistFn fn) {
    if (!Tracer::enabled()) return;
    hist_ = &fn();
    start_ns_ = detail::now_ns();
  }

  ~LatencyScope() {
    if (hist_ != nullptr) hist_->record(detail::now_ns() - start_ns_);
  }

  LatencyScope(const LatencyScope&) = delete;
  LatencyScope& operator=(const LatencyScope&) = delete;

 private:
  Histogram* hist_ = nullptr;
  std::uint64_t start_ns_ = 0;
};

// LatencyScope plus a message-size observation at entry (collectives want
// both the latency and the payload distribution per collective kind).
class CollectiveObsScope {
 public:
  using HistFn = Histogram& (*)();

  CollectiveObsScope(HistFn latency_fn, HistFn size_fn, std::uint64_t bytes) {
    if (!Tracer::enabled()) return;
    size_fn().record(bytes);
    hist_ = &latency_fn();
    start_ns_ = detail::now_ns();
  }

  ~CollectiveObsScope() {
    if (hist_ != nullptr) hist_->record(detail::now_ns() - start_ns_);
  }

  CollectiveObsScope(const CollectiveObsScope&) = delete;
  CollectiveObsScope& operator=(const CollectiveObsScope&) = delete;

 private:
  Histogram* hist_ = nullptr;
  std::uint64_t start_ns_ = 0;
};

// ---- algorithmic-traffic estimates ---------------------------------------
// The byte tags on kernel spans. These count compulsory traffic — every
// CSR array once, every dense operand element once per use, every gather
// once — not measured cache-line traffic; they are the numerator of the
// roofline GB/s attribution (TraceReport::build_kernels), good for
// comparing kernels and variants, not for absolute bandwidth claims.

// One pass over a CSR matrix: values + column indices + row pointers.
constexpr std::uint64_t csr_pass_bytes(std::uint64_t nnz, std::uint64_t rows,
                                       std::size_t val_size,
                                       std::size_t idx_size) {
  return nnz * (val_size + idx_size) + (rows + 1) * idx_size;
}

// CSR x dense SpMM: CSR pass + one dense gather per nonzero + the output.
constexpr std::uint64_t spmm_traffic_bytes(std::uint64_t nnz,
                                           std::uint64_t rows,
                                           std::uint64_t k,
                                           std::size_t val_size,
                                           std::size_t idx_size) {
  return csr_pass_bytes(nnz, rows, val_size, idx_size) +
         (nnz + rows) * k * val_size;
}

// SDDMM: CSR pass + two dense row gathers per nonzero + the sampled output.
constexpr std::uint64_t sddmm_traffic_bytes(std::uint64_t nnz,
                                            std::uint64_t rows,
                                            std::uint64_t k,
                                            std::size_t val_size,
                                            std::size_t idx_size) {
  return csr_pass_bytes(nnz, rows, val_size, idx_size) +
         2 * nnz * k * val_size + nnz * val_size;
}

// Dense (m x k) * (k x n): each operand and the output once.
constexpr std::uint64_t gemm_traffic_bytes(std::uint64_t m, std::uint64_t k,
                                           std::uint64_t n,
                                           std::size_t val_size) {
  return (m * k + k * n + m * n) * val_size;
}

}  // namespace agnn::obs

// Resolve-once histogram reference: a captureless lambda (decays to the
// plain function pointer LatencyScope expects) wrapping a function-local
// static registration.
#define AGNN_OBS_HIST_FN(hist_name)                                     \
  +[]() -> ::agnn::obs::Histogram& {                                    \
    static ::agnn::obs::Histogram& agnn_h =                             \
        ::agnn::obs::MetricsRegistry::global().histogram(hist_name);    \
    return agnn_h;                                                      \
  }

#define AGNN_KERNEL_SCOPE(name, bytes)                                  \
  AGNN_TRACE_SCOPE_BYTES(name, kKernel, bytes);                         \
  const ::agnn::obs::LatencyScope AGNN_OBS_CONCAT(agnn_kernel_lat_,     \
                                                  __COUNTER__)(         \
      AGNN_OBS_HIST_FN("kernel." name ".ns"));                          \
  AGNN_PERF_SCOPE(name)

#define AGNN_COLLECTIVE_SCOPE(name, bytes)                              \
  AGNN_TRACE_SCOPE_BYTES(name, kCollective, bytes);                     \
  const ::agnn::obs::CollectiveObsScope AGNN_OBS_CONCAT(                \
      agnn_coll_obs_, __COUNTER__)(                                     \
      AGNN_OBS_HIST_FN("comm." name ".ns"),                             \
      AGNN_OBS_HIST_FN("comm." name ".bytes"),                          \
      static_cast<std::uint64_t>(bytes))

#define AGNN_EPOCH_SCOPE(name)                                          \
  AGNN_TRACE_SCOPE(name, kEpoch);                                       \
  const ::agnn::obs::LatencyScope AGNN_OBS_CONCAT(agnn_epoch_lat_,      \
                                                  __COUNTER__)(         \
      AGNN_OBS_HIST_FN(name ".ns"))

// Serving pipeline stages (enqueue -> batch -> sample -> gather -> forward
// -> reply). Same shape as AGNN_EPOCH_SCOPE but in the kPhase category, so
// a traced serving run shows the per-batch stage breakdown alongside the
// kernel spans it encloses.
#define AGNN_STAGE_SCOPE(name)                                          \
  AGNN_TRACE_SCOPE(name, kPhase);                                       \
  const ::agnn::obs::LatencyScope AGNN_OBS_CONCAT(agnn_stage_lat_,      \
                                                  __COUNTER__)(         \
      AGNN_OBS_HIST_FN(name ".ns"))
