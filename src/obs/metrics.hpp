// Named metrics registry: one place where the repo's ad-hoc counters —
// workspace hit/miss/residency, comm::VolumeStats bytes/messages/supersteps,
// cost-model seconds — meet under stable names, with text and JSON dumps.
//
// Three metric kinds:
//   * Counter   — monotonically increasing integer (atomic, relaxed). The
//     API is add-only; `set_max` exists for importing externally-maintained
//     monotonic snapshots (a watermark: it never moves the value backwards,
//     so re-importing after an external reset keeps the high-water mark).
//   * Gauge     — last-write-wins double.
//   * Histogram — HDR-style log-bucketed distribution (obs/histogram.hpp)
//     with p50/p90/p99/p999 in the dumps.
//
// Registration is idempotent: asking for an existing name of the same kind
// returns the same metric object; asking for an existing name of another
// kind is a programming error and fails the usual AGNN_ASSERT way.
//
// Metric objects are reference-stable for the registry's lifetime (std::map
// node stability), so hot paths may cache `Counter&`/`Histogram&` and never
// re-lock. Dumps are deterministically ordered by name (std::map order) so
// two dumps of the same state are byte-identical.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>

#include "obs/histogram.hpp"
#include "tensor/common.hpp"

namespace agnn::obs {

// Add-only monotonic counter. The old `set` footgun (a silent backwards
// jump on a documented-monotonic metric) is gone: use `add` for deltas and
// `set_max` to import an externally-tracked monotonic value.
class Counter {
 public:
  void add(std::uint64_t v) { value_.fetch_add(v, std::memory_order_relaxed); }

  // Monotonic import: value = max(value, v). Never decreases.
  void set_max(std::uint64_t v) {
    std::uint64_t cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;  // reset() only
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

class MetricsRegistry {
 public:
  static MetricsRegistry& global() {
    static MetricsRegistry r;
    return r;
  }

  Counter& counter(std::string_view name) {
    return slot(name, Kind::kCounter, "counter").counter;
  }

  Gauge& gauge(std::string_view name) {
    return slot(name, Kind::kGauge, "gauge").gauge;
  }

  Histogram& histogram(std::string_view name) {
    Metric& m = slot(name, Kind::kHistogram, "histogram");
    return *m.histogram;
  }

  void add(std::string_view name, std::uint64_t v) { counter(name).add(v); }
  void set(std::string_view name, double v) { gauge(name).set(v); }
  void observe(std::string_view name, std::uint64_t v) {
    histogram(name).record(v);
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return metrics_.size();
  }

  // Read-only lookups: nullptr when the name is absent or of another kind
  // (unlike the registering accessors these never create the metric, so
  // report builders can probe without polluting the dump).
  const Counter* find_counter(std::string_view name) const {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = metrics_.find(name);
    return it != metrics_.end() && it->second.kind == Kind::kCounter
               ? &it->second.counter
               : nullptr;
  }
  const Gauge* find_gauge(std::string_view name) const {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = metrics_.find(name);
    return it != metrics_.end() && it->second.kind == Kind::kGauge
               ? &it->second.gauge
               : nullptr;
  }
  const Histogram* find_histogram(std::string_view name) const {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = metrics_.find(name);
    return it != metrics_.end() && it->second.kind == Kind::kHistogram
               ? it->second.histogram.get()
               : nullptr;
  }

  // `name value` per line (histograms: `name count=... p50=... ...`),
  // sorted by name.
  std::string dump_text() const {
    std::ostringstream os;
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [name, m] : metrics_) {
      os << name << ' ';
      switch (m.kind) {
        case Kind::kCounter: os << m.counter.value(); break;
        case Kind::kGauge: os << m.gauge.value(); break;
        case Kind::kHistogram: m.histogram->summary_text(os); break;
      }
      os << '\n';
    }
    return os.str();
  }

  // Flat JSON object sorted by name; counters/gauges are numbers,
  // histograms nested objects {"count":...,"p50":...,...}.
  std::string dump_json() const {
    std::ostringstream os;
    os << "{";
    std::lock_guard<std::mutex> lock(mutex_);
    bool first = true;
    for (const auto& [name, m] : metrics_) {
      if (!first) os << ",";
      first = false;
      os << "\"" << name << "\":";
      switch (m.kind) {
        case Kind::kCounter: os << m.counter.value(); break;
        case Kind::kGauge: os << m.gauge.value(); break;
        case Kind::kHistogram: m.histogram->summary_json(os); break;
      }
    }
    os << "}";
    return os.str();
  }

  // Test-only: zero every metric's value but keep all registrations — any
  // cached Counter&/Gauge&/Histogram& stays valid (unlike clear()). Callers
  // must quiesce recording threads first.
  void reset() {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [name, m] : metrics_) {
      switch (m.kind) {
        case Kind::kCounter:
          m.counter.value_.store(0, std::memory_order_relaxed);
          break;
        case Kind::kGauge: m.gauge.set(0.0); break;
        case Kind::kHistogram: m.histogram->reset(); break;
      }
    }
  }

  // Drops every registration. Invalidates cached references — only for
  // tests that own a local registry; production code uses reset().
  void clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    metrics_.clear();
  }

 private:
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };
  struct Metric {
    Kind kind = Kind::kCounter;
    Counter counter;
    Gauge gauge;
    // Lazily allocated: a histogram is ~15 KiB, counters/gauges shouldn't
    // pay for it.
    std::unique_ptr<Histogram> histogram;
  };

  Metric& slot(std::string_view name, Kind kind, const char* kind_name) {
    (void)kind_name;
    std::lock_guard<std::mutex> lock(mutex_);
    auto [it, inserted] = metrics_.try_emplace(std::string(name));
    if (inserted) {
      it->second.kind = kind;
      if (kind == Kind::kHistogram) {
        it->second.histogram = std::make_unique<Histogram>();
      }
    } else {
      AGNN_ASSERT(it->second.kind == kind,
                  "metrics: name already registered as another kind");
    }
    return it->second;
  }

  mutable std::mutex mutex_;
  std::map<std::string, Metric, std::less<>> metrics_;
};

// ---- importers for the existing ad-hoc stats --------------------------
// Templates so this header stays dependency-free: any struct with the
// respective field names qualifies (core::WorkspaceStats,
// comm::VolumeSnapshot). Monotonic fields import via Counter::set_max
// (watermark semantics); point-in-time fields are gauges.

// WorkspaceStats → counters under `<prefix>.{acquires,hits,misses,...}`.
template <typename WorkspaceStatsT>
void import_workspace_stats(MetricsRegistry& reg, const WorkspaceStatsT& ws,
                            std::string_view prefix) {
  const std::string p(prefix);
  reg.counter(p + ".acquires").set_max(ws.acquires);
  reg.counter(p + ".pool_hits").set_max(ws.pool_hits);
  reg.counter(p + ".pool_misses").set_max(ws.pool_misses);
  reg.counter(p + ".bytes_acquired").set_max(ws.bytes_acquired);
  // Current residency is a point-in-time value (the pool can be rebuilt),
  // so it is a gauge; the peak is the monotonic watermark.
  reg.gauge(p + ".resident_bytes").set(static_cast<double>(ws.resident_bytes));
  reg.counter(p + ".peak_resident_bytes").set_max(ws.peak_resident_bytes);
  reg.gauge(p + ".hit_rate").set(ws.hit_rate());
}

// VolumeSnapshot → counters/gauge under `<prefix>.{bytes_sent,...}`.
template <typename VolumeSnapshotT>
void import_volume_snapshot(MetricsRegistry& reg, const VolumeSnapshotT& s,
                            std::string_view prefix) {
  const std::string p(prefix);
  reg.counter(p + ".bytes_sent").set_max(s.bytes_sent);
  reg.counter(p + ".messages").set_max(s.messages);
  reg.counter(p + ".supersteps").set_max(s.supersteps);
  reg.gauge(p + ".compute_seconds").set(s.compute_seconds);
  reg.gauge(p + ".wait_seconds").set(s.wait_seconds);
}

// Alpha-beta cost-model outputs → gauges under `<prefix>.{...}_seconds`.
inline void import_cost_model(MetricsRegistry& reg, double comm_seconds,
                              double compute_seconds, double total_seconds,
                              std::string_view prefix) {
  const std::string p(prefix);
  reg.gauge(p + ".modeled_comm_seconds").set(comm_seconds);
  reg.gauge(p + ".measured_compute_seconds").set(compute_seconds);
  reg.gauge(p + ".modeled_total_seconds").set(total_seconds);
}

}  // namespace agnn::obs
