// Named metrics registry: one place where the repo's ad-hoc counters —
// workspace hit/miss/residency, comm::VolumeStats bytes/messages/supersteps,
// cost-model seconds — meet under stable names, with text and JSON dumps.
//
// Counters are monotonically increasing integers (atomic, relaxed — callers
// may bump them from rank threads); gauges are last-write-wins doubles.
// Registration is idempotent: asking for an existing name of the same kind
// returns the same metric object; asking for an existing name of the *other*
// kind is a programming error and fails the usual AGNN_ASSERT way.
//
// Metric objects are reference-stable for the registry's lifetime (std::map
// node stability), so hot paths may cache `Counter&` and never re-lock.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>

#include "tensor/common.hpp"

namespace agnn::obs {

class Counter {
 public:
  void add(std::uint64_t v) { value_.fetch_add(v, std::memory_order_relaxed); }
  void set(std::uint64_t v) { value_.store(v, std::memory_order_relaxed); }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

class MetricsRegistry {
 public:
  static MetricsRegistry& global() {
    static MetricsRegistry r;
    return r;
  }

  Counter& counter(std::string_view name) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto [it, inserted] = metrics_.try_emplace(std::string(name));
    if (inserted) {
      it->second.kind = Kind::kCounter;
    } else {
      AGNN_ASSERT(it->second.kind == Kind::kCounter,
                  "metrics: name already registered as a gauge");
    }
    return it->second.counter;
  }

  Gauge& gauge(std::string_view name) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto [it, inserted] = metrics_.try_emplace(std::string(name));
    if (inserted) {
      it->second.kind = Kind::kGauge;
    } else {
      AGNN_ASSERT(it->second.kind == Kind::kGauge,
                  "metrics: name already registered as a counter");
    }
    return it->second.gauge;
  }

  void add(std::string_view name, std::uint64_t v) { counter(name).add(v); }
  void set(std::string_view name, double v) { gauge(name).set(v); }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return metrics_.size();
  }

  // `name value` per line, sorted by name (std::map order).
  std::string dump_text() const {
    std::ostringstream os;
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [name, m] : metrics_) {
      os << name << ' ';
      if (m.kind == Kind::kCounter) {
        os << m.counter.value();
      } else {
        os << m.gauge.value();
      }
      os << '\n';
    }
    return os.str();
  }

  // Flat JSON object: {"name": value, ...}, sorted by name.
  std::string dump_json() const {
    std::ostringstream os;
    os << "{";
    std::lock_guard<std::mutex> lock(mutex_);
    bool first = true;
    for (const auto& [name, m] : metrics_) {
      if (!first) os << ",";
      first = false;
      os << "\"" << name << "\":";
      if (m.kind == Kind::kCounter) {
        os << m.counter.value();
      } else {
        os << m.gauge.value();
      }
    }
    os << "}";
    return os.str();
  }

  void clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    metrics_.clear();
  }

 private:
  enum class Kind : std::uint8_t { kCounter, kGauge };
  struct Metric {
    Kind kind = Kind::kCounter;
    Counter counter;
    Gauge gauge;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Metric, std::less<>> metrics_;
};

// ---- importers for the existing ad-hoc stats --------------------------
// Templates so this header stays dependency-free: any struct with the
// respective field names qualifies (core::WorkspaceStats,
// comm::VolumeSnapshot).

// WorkspaceStats → counters under `<prefix>.{acquires,hits,misses,...}`.
template <typename WorkspaceStatsT>
void import_workspace_stats(MetricsRegistry& reg, const WorkspaceStatsT& ws,
                            std::string_view prefix) {
  const std::string p(prefix);
  reg.counter(p + ".acquires").set(ws.acquires);
  reg.counter(p + ".pool_hits").set(ws.pool_hits);
  reg.counter(p + ".pool_misses").set(ws.pool_misses);
  reg.counter(p + ".bytes_acquired").set(ws.bytes_acquired);
  reg.counter(p + ".resident_bytes").set(ws.resident_bytes);
  reg.counter(p + ".peak_resident_bytes").set(ws.peak_resident_bytes);
  reg.gauge(p + ".hit_rate").set(ws.hit_rate());
}

// VolumeSnapshot → counters/gauge under `<prefix>.{bytes_sent,...}`.
template <typename VolumeSnapshotT>
void import_volume_snapshot(MetricsRegistry& reg, const VolumeSnapshotT& s,
                            std::string_view prefix) {
  const std::string p(prefix);
  reg.counter(p + ".bytes_sent").set(s.bytes_sent);
  reg.counter(p + ".messages").set(s.messages);
  reg.counter(p + ".supersteps").set(s.supersteps);
  reg.gauge(p + ".compute_seconds").set(s.compute_seconds);
  reg.gauge(p + ".wait_seconds").set(s.wait_seconds);
}

// Alpha-beta cost-model outputs → gauges under `<prefix>.{...}_seconds`.
inline void import_cost_model(MetricsRegistry& reg, double comm_seconds,
                              double compute_seconds, double total_seconds,
                              std::string_view prefix) {
  const std::string p(prefix);
  reg.gauge(p + ".modeled_comm_seconds").set(comm_seconds);
  reg.gauge(p + ".measured_compute_seconds").set(compute_seconds);
  reg.gauge(p + ".modeled_total_seconds").set(total_seconds);
}

}  // namespace agnn::obs
