// HDR-style log-bucketed latency/size histogram.
//
// The obs/ layer so far reports only counters and gauges — totals and
// last-writes. The serving and autotuning work (ROADMAP items 1 and 4)
// needs *distributions*: p50 tells you what a user sees, p999 tells you
// what the slowest shard sees, and neither is recoverable from a sum.
//
// Bucketing (the HdrHistogram log-linear scheme, fixed at compile time):
//
//   * values 0 .. 2^kUnitBits-1 land in unit-width buckets (exact);
//   * every octave [2^p, 2^(p+1)) above that is split into
//     kSubBuckets = 2^(kUnitBits-1) equal-width sub-buckets,
//
// so the relative bucket width — and therefore the worst-case quantile
// error — is bounded by 1/kSubBuckets (3.125% at the default 6/32), while
// the whole uint64 range fits in a fixed 1.9k-bucket array. No allocation
// ever happens after construction.
//
// Concurrency contract: `record` is wait-free (one relaxed fetch_add per
// bucket/count/sum plus two bounded CAS loops for min/max) and may be
// called from any number of threads. Readers (`quantile`, `merge_from`,
// dumps) see a *consistent-enough* snapshot: counts never go backwards and
// a concurrent read can at worst miss in-flight records — the same relaxed
// contract as comm::VolumeStats::snapshot(), documented there. Bitwise
// determinism of merges holds because everything is integer arithmetic:
// merge is associative and commutative exactly (tests/test_histogram.cpp
// proves it bucket-by-bucket).
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <ostream>
#include <sstream>
#include <string>

#include "tensor/common.hpp"

namespace agnn::obs {

class Histogram {
 public:
  // 64 unit buckets, then 32 sub-buckets per octave: <= 3.125% relative
  // quantile error, 1920 buckets, ~15 KiB per histogram.
  static constexpr std::uint32_t kUnitBits = 6;
  static constexpr std::uint64_t kUnitBuckets = 1ull << kUnitBits;
  static constexpr std::uint64_t kSubBuckets = kUnitBuckets / 2;
  static constexpr std::size_t kBucketCount =
      kUnitBuckets + (64 - kUnitBits) * kSubBuckets;

  Histogram() = default;

  // Non-copyable (atomics); merge_from is the aggregation primitive.
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  // ---- recording (hot path) --------------------------------------------
  void record(std::uint64_t value) {
    buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    atomic_min(min_, value);
    atomic_max(max_, value);
  }

  // ---- bucket math (static, so tests can probe it directly) ------------
  static std::size_t bucket_index(std::uint64_t v) {
    if (v < kUnitBuckets) return static_cast<std::size_t>(v);
    // v is in octave p = floor(log2 v) >= kUnitBits; shift so the top
    // (kUnitBits-1)+1 bits remain -> sub-bucket in [kSubBuckets, 2*kSub).
    const std::uint32_t p = 63u - static_cast<std::uint32_t>(
                                      std::countl_zero(v));
    const std::uint32_t shift = p - (kUnitBits - 1);
    const std::uint64_t sub = (v >> shift) - kSubBuckets;
    return static_cast<std::size_t>(kUnitBuckets +
                                    (p - kUnitBits) * kSubBuckets + sub);
  }

  // Highest value mapping to `idx` (the "highest equivalent value"):
  // quantile estimates are upper bounds, never under-reports — the right
  // bias for latency SLOs.
  static std::uint64_t bucket_upper(std::size_t idx) {
    if (idx < kUnitBuckets) return static_cast<std::uint64_t>(idx);
    const std::uint64_t rel = idx - kUnitBuckets;
    const std::uint32_t octave =
        kUnitBits + static_cast<std::uint32_t>(rel / kSubBuckets);
    const std::uint64_t sub = rel % kSubBuckets;
    const std::uint32_t shift = octave - (kUnitBits - 1);
    const std::uint64_t lower = (kSubBuckets + sub) << shift;
    return lower + ((1ull << shift) - 1);
  }

  // ---- reading ----------------------------------------------------------
  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t min() const {
    const std::uint64_t m = min_.load(std::memory_order_relaxed);
    return count() == 0 ? 0 : m;
  }
  std::uint64_t max() const {
    return max_.load(std::memory_order_relaxed);
  }
  double mean() const {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
  }

  // Value at quantile q in [0,1]: the upper edge of the bucket holding the
  // ceil(q*count)-th smallest recorded value. Empty histogram -> 0.
  std::uint64_t quantile(double q) const {
    const std::uint64_t n = count();
    if (n == 0) return 0;
    q = std::clamp(q, 0.0, 1.0);
    std::uint64_t target =
        static_cast<std::uint64_t>(q * static_cast<double>(n) + 0.5);
    if (target == 0) target = 1;
    if (target > n) target = n;
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < kBucketCount; ++i) {
      cum += buckets_[i].load(std::memory_order_relaxed);
      if (cum >= target) {
        // Never report above the recorded max (the last bucket's upper
        // edge can overshoot it by the bucket width).
        return std::min(bucket_upper(i), max());
      }
    }
    return max();
  }

  std::uint64_t p50() const { return quantile(0.50); }
  std::uint64_t p90() const { return quantile(0.90); }
  std::uint64_t p99() const { return quantile(0.99); }
  std::uint64_t p999() const { return quantile(0.999); }

  std::uint64_t bucket_count(std::size_t idx) const {
    return buckets_[idx].load(std::memory_order_relaxed);
  }

  // ---- merge / reset ----------------------------------------------------
  // Integer-exact: merging A into B then C gives bitwise the same buckets
  // as merging C then A (commutative, associative). Safe against concurrent
  // recorders on either side (per-bucket relaxed adds).
  void merge_from(const Histogram& other) {
    for (std::size_t i = 0; i < kBucketCount; ++i) {
      const std::uint64_t c = other.buckets_[i].load(std::memory_order_relaxed);
      if (c != 0) buckets_[i].fetch_add(c, std::memory_order_relaxed);
    }
    count_.fetch_add(other.count(), std::memory_order_relaxed);
    sum_.fetch_add(other.sum(), std::memory_order_relaxed);
    if (other.count() != 0) {
      atomic_min(min_, other.min_.load(std::memory_order_relaxed));
      atomic_max(max_, other.max());
    }
  }

  // Test-only (like MetricsRegistry::reset): zero everything, keeping the
  // object (and any cached references to it) valid. Callers must quiesce
  // recorders first.
  void reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    min_.store(~0ull, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

  // ---- dumps ------------------------------------------------------------
  // One-line summary used by MetricsRegistry::dump_text.
  void summary_text(std::ostream& os) const {
    os << "count=" << count() << " sum=" << sum() << " min=" << min()
       << " p50=" << p50() << " p90=" << p90() << " p99=" << p99()
       << " p999=" << p999() << " max=" << max();
  }

  // JSON object used by MetricsRegistry::dump_json.
  void summary_json(std::ostream& os) const {
    os << "{\"count\":" << count() << ",\"sum\":" << sum()
       << ",\"min\":" << min() << ",\"p50\":" << p50() << ",\"p90\":" << p90()
       << ",\"p99\":" << p99() << ",\"p999\":" << p999()
       << ",\"max\":" << max() << "}";
  }

 private:
  static void atomic_min(std::atomic<std::uint64_t>& a, std::uint64_t v) {
    std::uint64_t cur = a.load(std::memory_order_relaxed);
    while (v < cur &&
           !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  static void atomic_max(std::atomic<std::uint64_t>& a, std::uint64_t v) {
    std::uint64_t cur = a.load(std::memory_order_relaxed);
    while (v > cur &&
           !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  std::array<std::atomic<std::uint64_t>, kBucketCount> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~0ull};
  std::atomic<std::uint64_t> max_{0};
};

}  // namespace agnn::obs
