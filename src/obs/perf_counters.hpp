// Hardware performance counters via Linux perf_event_open.
//
// One PerfGroup per thread opens a single counter *group* — cycles (leader),
// instructions, cache-references, cache-misses, branches, branch-misses —
// so all six are scheduled and read atomically with one read(2). A
// PerfRegion brackets a code region: counters are reset+enabled at entry
// and disabled+read at exit, and the deltas accumulate into the
// MetricsRegistry under `perf.<name>.*` together with derived IPC /
// cache-miss-rate / branch-miss-rate gauges. Regions nest; only the
// outermost region on a thread records (the same depth-1 rule TraceReport
// uses for kernel spans, so fused kernels don't double-bill the kernels
// they call).
//
// Availability is best-effort BY DESIGN — never a hard failure:
//   * the whole layer is off unless AGNN_PERF is set (or set_enabled(true));
//   * perf_event_open may be missing (non-Linux), forbidden
//     (kernel.perf_event_paranoid > 2, seccomp, containers) or partially
//     available (some PMU events unsupported under virtualization). A
//     member that fails to open is skipped; if the *leader* fails the
//     thread's group is marked unavailable and every PerfRegion on it is a
//     no-op. `PerfSample::valid` tells consumers whether numbers exist.
//   * counters are scaled by time_enabled/time_running when the kernel
//     multiplexed the group (PERF_FORMAT_TOTAL_TIME_*).
//
// Threading: a group counts the *calling thread* only (pid=0, cpu=-1), so
// a region around an OpenMP parallel kernel measures the calling thread's
// share — documented in DESIGN.md §14 with the availability matrix.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "obs/metrics.hpp"
#include "tensor/common.hpp"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace agnn::obs::perf {

// Counter deltas for one region. `valid` is false when the perf layer was
// unavailable (consumers must not divide by zero-cycles garbage).
struct PerfSample {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t cache_references = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t branches = 0;
  std::uint64_t branch_misses = 0;
  bool valid = false;

  double ipc() const {
    return cycles == 0 ? 0.0
                       : static_cast<double>(instructions) /
                             static_cast<double>(cycles);
  }
  double cache_miss_rate() const {
    return cache_references == 0
               ? 0.0
               : static_cast<double>(cache_misses) /
                     static_cast<double>(cache_references);
  }
  double branch_miss_rate() const {
    return branches == 0 ? 0.0
                         : static_cast<double>(branch_misses) /
                               static_cast<double>(branches);
  }
};

// ---- global switches ------------------------------------------------------

namespace detail {
inline std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> on{[] {
    const char* v = std::getenv("AGNN_PERF");
    return v != nullptr && v[0] != '\0' && std::strcmp(v, "0") != 0;
  }()};
  return on;
}
inline std::atomic<bool>& force_unavailable_flag() {
  static std::atomic<bool> f{false};
  return f;
}
inline int& region_depth() {
  thread_local int depth = 0;
  return depth;
}
}  // namespace detail

// AGNN_PERF env (or set_enabled) turns the layer on; availability of the
// syscall is probed separately, per thread, on first use.
inline bool enabled() {
  return detail::enabled_flag().load(std::memory_order_relaxed);
}
inline void set_enabled(bool on) {
  detail::enabled_flag().store(on, std::memory_order_relaxed);
}

// Test hook: pretend perf_event_open is unavailable (the degraded path must
// be a clean no-op — tests/test_perf_counters.cpp asserts it).
inline void force_unavailable(bool f) {
  detail::force_unavailable_flag().store(f, std::memory_order_relaxed);
}
inline bool forced_unavailable() {
  return detail::force_unavailable_flag().load(std::memory_order_relaxed);
}

// ---- the per-thread counter group ----------------------------------------

class PerfGroup {
 public:
  PerfGroup() { open_group(); }
  ~PerfGroup() { close_group(); }
  PerfGroup(const PerfGroup&) = delete;
  PerfGroup& operator=(const PerfGroup&) = delete;

  // The leader opened and the test hook is not forcing the degraded path.
  bool available() const { return leader_fd_ >= 0 && !forced_unavailable(); }

  // Number of group members that actually opened (<= 6); 0 if unavailable.
  int members() const { return available() ? nr_open_ : 0; }

  void start() {
#if defined(__linux__)
    if (!available()) return;
    ioctl(leader_fd_, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
    ioctl(leader_fd_, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
#endif
  }

  PerfSample stop() {
    PerfSample s;
#if defined(__linux__)
    if (!available()) return s;
    ioctl(leader_fd_, PERF_EVENT_IOC_DISABLE, PERF_IOC_FLAG_GROUP);
    // PERF_FORMAT_GROUP | TOTAL_TIME_ENABLED | TOTAL_TIME_RUNNING layout:
    //   u64 nr; u64 time_enabled; u64 time_running; u64 values[nr];
    std::uint64_t buf[3 + kMaxEvents] = {0};
    const ssize_t n = read(leader_fd_, buf, sizeof(buf));
    if (n < static_cast<ssize_t>(3 * sizeof(std::uint64_t))) return s;
    const std::uint64_t nr = buf[0];
    const std::uint64_t enabled_ns = buf[1];
    const std::uint64_t running_ns = buf[2];
    if (nr == 0 || running_ns == 0) return s;
    const double scale = running_ns < enabled_ns
                             ? static_cast<double>(enabled_ns) /
                                   static_cast<double>(running_ns)
                             : 1.0;
    for (int i = 0; i < nr_open_ && i < static_cast<int>(nr); ++i) {
      const double v = static_cast<double>(buf[3 + i]) * scale;
      *field(slot_[i], s) = static_cast<std::uint64_t>(v);
    }
    s.valid = true;
#endif
    return s;
  }

 private:
  static constexpr int kMaxEvents = 6;

  // Which PerfSample field group-member i feeds.
  enum class Slot : std::uint8_t {
    kCycles,
    kInstructions,
    kCacheRefs,
    kCacheMisses,
    kBranches,
    kBranchMisses,
  };

  static std::uint64_t* field(Slot slot, PerfSample& s) {
    switch (slot) {
      case Slot::kCycles: return &s.cycles;
      case Slot::kInstructions: return &s.instructions;
      case Slot::kCacheRefs: return &s.cache_references;
      case Slot::kCacheMisses: return &s.cache_misses;
      case Slot::kBranches: return &s.branches;
      case Slot::kBranchMisses: return &s.branch_misses;
    }
    return &s.cycles;
  }

  void open_group() {
#if defined(__linux__)
    if (forced_unavailable()) return;
    struct Event {
      std::uint64_t config;
      Slot slot;
    };
    static constexpr Event kEvents[kMaxEvents] = {
        {PERF_COUNT_HW_CPU_CYCLES, Slot::kCycles},
        {PERF_COUNT_HW_INSTRUCTIONS, Slot::kInstructions},
        {PERF_COUNT_HW_CACHE_REFERENCES, Slot::kCacheRefs},
        {PERF_COUNT_HW_CACHE_MISSES, Slot::kCacheMisses},
        {PERF_COUNT_HW_BRANCH_INSTRUCTIONS, Slot::kBranches},
        {PERF_COUNT_HW_BRANCH_MISSES, Slot::kBranchMisses},
    };
    for (const Event& ev : kEvents) {
      perf_event_attr attr;
      std::memset(&attr, 0, sizeof(attr));
      attr.type = PERF_TYPE_HARDWARE;
      attr.size = sizeof(attr);
      attr.config = ev.config;
      attr.disabled = (leader_fd_ < 0) ? 1 : 0;  // leader starts disabled
      attr.exclude_kernel = 1;
      attr.exclude_hv = 1;
      attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_TOTAL_TIME_ENABLED |
                         PERF_FORMAT_TOTAL_TIME_RUNNING;
      const long fd = syscall(SYS_perf_event_open, &attr, /*pid=*/0,
                              /*cpu=*/-1, /*group_fd=*/leader_fd_,
                              /*flags=*/0UL);
      if (fd < 0) {
        // Leader failing means no perf at all on this thread (paranoid
        // sysctl, seccomp, missing PMU); a member failing just means that
        // event is unsupported here — keep the rest.
        if (leader_fd_ < 0) return;
        continue;
      }
      fds_[nr_open_] = static_cast<int>(fd);
      slot_[nr_open_] = ev.slot;
      if (leader_fd_ < 0) leader_fd_ = static_cast<int>(fd);
      ++nr_open_;
    }
#endif
  }

  void close_group() {
#if defined(__linux__)
    for (int i = 0; i < nr_open_; ++i) close(fds_[i]);
#endif
    nr_open_ = 0;
    leader_fd_ = -1;
  }

  int leader_fd_ = -1;
  int nr_open_ = 0;
  int fds_[kMaxEvents] = {-1, -1, -1, -1, -1, -1};
  Slot slot_[kMaxEvents] = {};
};

// The calling thread's group, opened on first use. A thread whose open
// failed keeps a permanently-unavailable group — the probe is not retried,
// so the degraded path stays one branch per region.
inline PerfGroup& thread_group() {
  thread_local PerfGroup g;
  return g;
}

// ---- metric accumulation --------------------------------------------------

// The registry metrics one region name feeds. Resolved once per call site
// (the AGNN_PERF_SCOPE macro caches the reference in a function-local
// static), so the hot path never builds strings or locks the registry map.
struct RegionMetrics {
  Counter& regions;
  Counter& cycles;
  Counter& instructions;
  Counter& cache_references;
  Counter& cache_misses;
  Counter& branches;
  Counter& branch_misses;
  Gauge& ipc;
  Gauge& cache_miss_rate;
  Gauge& branch_miss_rate;

  static RegionMetrics& get(const char* prefix) {
    static std::mutex mu;
    static std::map<std::string, std::unique_ptr<RegionMetrics>> cache;
    std::lock_guard<std::mutex> lock(mu);
    auto it = cache.find(prefix);
    if (it == cache.end()) {
      MetricsRegistry& reg = MetricsRegistry::global();
      const std::string p(prefix);
      it = cache
               .emplace(p, std::unique_ptr<RegionMetrics>(new RegionMetrics{
                               reg.counter(p + ".regions"),
                               reg.counter(p + ".cycles"),
                               reg.counter(p + ".instructions"),
                               reg.counter(p + ".cache_references"),
                               reg.counter(p + ".cache_misses"),
                               reg.counter(p + ".branches"),
                               reg.counter(p + ".branch_misses"),
                               reg.gauge(p + ".ipc"),
                               reg.gauge(p + ".cache_miss_rate"),
                               reg.gauge(p + ".branch_miss_rate")}))
               .first;
    }
    return *it->second;
  }

  void accumulate(const PerfSample& s) {
    if (!s.valid) return;
    regions.add(1);
    cycles.add(s.cycles);
    instructions.add(s.instructions);
    cache_references.add(s.cache_references);
    cache_misses.add(s.cache_misses);
    branches.add(s.branches);
    branch_misses.add(s.branch_misses);
    // Derived rates over the accumulated totals, so the gauges converge to
    // the region's lifetime average rather than the last call's noise.
    const double cyc = static_cast<double>(cycles.value());
    const double ins = static_cast<double>(instructions.value());
    const double refs = static_cast<double>(cache_references.value());
    const double cms = static_cast<double>(cache_misses.value());
    const double brs = static_cast<double>(branches.value());
    const double bms = static_cast<double>(branch_misses.value());
    if (cyc > 0) ipc.set(ins / cyc);
    if (refs > 0) cache_miss_rate.set(cms / refs);
    if (brs > 0) branch_miss_rate.set(bms / brs);
  }
};

// ---- the RAII region ------------------------------------------------------

// Measures the enclosed code on the calling thread and accumulates into
// `metrics` at scope exit. Disabled (one relaxed load) unless AGNN_PERF is
// on; no-op when the thread's group is unavailable; inner nested regions
// are no-ops (depth-1 rule).
class PerfRegion {
 public:
  explicit PerfRegion(RegionMetrics& metrics) : metrics_(&metrics) {
    if (!enabled()) return;
    counted_ = true;
    if (++detail::region_depth() != 1) return;
    PerfGroup& g = thread_group();
    if (!g.available()) return;
    g.start();
    active_ = true;
  }

  ~PerfRegion() {
    if (!counted_) return;
    --detail::region_depth();
    if (!active_) return;
    metrics_->accumulate(thread_group().stop());
  }

  PerfRegion(const PerfRegion&) = delete;
  PerfRegion& operator=(const PerfRegion&) = delete;

  bool active() const { return active_; }

 private:
  RegionMetrics* metrics_;
  bool counted_ = false;  // we incremented the depth (enabled at entry)
  bool active_ = false;   // outermost + group available: we own the window
};

// One-shot availability probe for reports ("perf counters: unavailable
// (perf_event_paranoid?)" vs a member count). Touches this thread's group.
inline bool available() { return enabled() && thread_group().available(); }

}  // namespace agnn::obs::perf

// Same token-for-token definition as obs/trace.hpp (identical redefinition
// is legal), so this header works with or without the tracer included.
#ifndef AGNN_OBS_CONCAT
#define AGNN_OBS_CONCAT2(a, b) a##b
#define AGNN_OBS_CONCAT(a, b) AGNN_OBS_CONCAT2(a, b)
#endif

// Scoped perf region: AGNN_PERF_SCOPE("spmm"); — accumulates into
// perf.spmm.* when AGNN_PERF is on and the syscall works.
#define AGNN_PERF_SCOPE(name_lit)                                         \
  static ::agnn::obs::perf::RegionMetrics& AGNN_OBS_CONCAT(               \
      agnn_perf_metrics_, __LINE__) =                                     \
      ::agnn::obs::perf::RegionMetrics::get("perf." name_lit);            \
  const ::agnn::obs::perf::PerfRegion AGNN_OBS_CONCAT(agnn_perf_region_,  \
                                                      __LINE__)(          \
      AGNN_OBS_CONCAT(agnn_perf_metrics_, __LINE__))
