// Machine-readable benchmark reports: schema, writer, parser, comparer.
//
// Every bench binary (bench/*, examples/unified_bench) accepts
// `--json-out=<path>` and emits one report in this schema:
//
//   {
//     "schema_version": 1,
//     "context": {
//       "git_sha": "...", "compiler": "...", "cxx_flags": "...",
//       "cpu_model": "...", "hardware_threads": N, "omp_threads": N,
//       "perf_available": true|false
//     },
//     "benchmarks": [
//       { "name": "...", "repetitions": R,
//         "samples_ns": [ ... per-repetition wall ns / iteration ... ],
//         "median_ns": ..., "min_ns": ...,
//         "counters": { "comm_MB": ..., "p99_ns": ..., ... } }
//     ],
//     "histograms": { "kernel.spmm.ns": {"count":..,"p50":..,...}, ... }
//   }
//
// `histograms` snapshots every histogram in the global MetricsRegistry at
// exit (present only when tracing recorded something), so a traced bench
// run carries its full latency distributions alongside the timings.
//
// The comparer implements the CI perf gate's policy. Noise awareness is
// statistic-based, not threshold-tweaking: a benchmark counts as regressed
// only when BOTH its median and its min-of-samples exceed the baseline by
// the tolerance factor (the min of R repetitions is the classic low-noise
// wall-clock statistic; a scheduler hiccup inflates the median but almost
// never the min), AND the absolute delta clears a floor that sub-microsecond
// benchmarks can't trip by jitter. Missing/new benchmarks are reported but
// do not fail the gate — benches evolve; the gate is about the matched set.
#pragma once

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "core/json.hpp"
#include "obs/metrics.hpp"

namespace agnn::obs::bench {

inline constexpr int kSchemaVersion = 1;

struct BenchContext {
  std::string git_sha = "unknown";
  std::string compiler;
  std::string cxx_flags;
  std::string cpu_model;
  int hardware_threads = 0;
  int omp_threads = 0;
  bool perf_available = false;
};

struct BenchEntry {
  std::string name;
  int repetitions = 0;
  std::vector<double> samples_ns;  // one per repetition (wall ns / iter)
  double median_ns = 0;
  double min_ns = 0;
  std::map<std::string, double> counters;
};

struct BenchReport {
  int schema_version = kSchemaVersion;
  BenchContext context;
  std::vector<BenchEntry> benchmarks;
  // Raw JSON object text from MetricsRegistry::dump_json (already valid
  // JSON); empty when the registry recorded nothing.
  std::string histograms_json;

  const BenchEntry* find(std::string_view name) const {
    for (const auto& b : benchmarks) {
      if (b.name == name) return &b;
    }
    return nullptr;
  }
};

inline double median_of(std::vector<double> v) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

// Fill the derived statistics from `samples_ns`.
inline void finalize(BenchEntry& e) {
  e.repetitions = static_cast<int>(e.samples_ns.size());
  e.median_ns = median_of(e.samples_ns);
  e.min_ns = e.samples_ns.empty()
                 ? 0
                 : *std::min_element(e.samples_ns.begin(), e.samples_ns.end());
}

// ---- writing --------------------------------------------------------------

inline void write_json(std::ostream& os, const BenchReport& r) {
  os << "{\n  \"schema_version\": " << r.schema_version << ",\n";
  os << "  \"context\": {";
  os << "\"git_sha\": ";
  json::escape(os, r.context.git_sha);
  os << ", \"compiler\": ";
  json::escape(os, r.context.compiler);
  os << ", \"cxx_flags\": ";
  json::escape(os, r.context.cxx_flags);
  os << ", \"cpu_model\": ";
  json::escape(os, r.context.cpu_model);
  os << ", \"hardware_threads\": " << r.context.hardware_threads;
  os << ", \"omp_threads\": " << r.context.omp_threads;
  os << ", \"perf_available\": "
     << (r.context.perf_available ? "true" : "false");
  os << "},\n  \"benchmarks\": [";
  bool first = true;
  for (const auto& b : r.benchmarks) {
    os << (first ? "\n" : ",\n") << "    {\"name\": ";
    first = false;
    json::escape(os, b.name);
    os << ", \"repetitions\": " << b.repetitions << ", \"samples_ns\": [";
    for (std::size_t i = 0; i < b.samples_ns.size(); ++i) {
      os << (i != 0 ? ", " : "") << b.samples_ns[i];
    }
    os << "], \"median_ns\": " << b.median_ns << ", \"min_ns\": " << b.min_ns;
    os << ", \"counters\": {";
    bool cfirst = true;
    for (const auto& [k, v] : b.counters) {
      os << (cfirst ? "" : ", ");
      cfirst = false;
      json::escape(os, k);
      os << ": " << v;
    }
    os << "}}";
  }
  os << "\n  ]";
  if (!r.histograms_json.empty()) {
    os << ",\n  \"histograms\": " << r.histograms_json;
  }
  os << "\n}\n";
}

inline bool write_json_file(const std::string& path, const BenchReport& r) {
  std::ofstream f(path);
  if (!f) return false;
  write_json(f, r);
  return static_cast<bool>(f);
}

// Snapshot every histogram in `reg` as one JSON object (for the report's
// "histograms" section). Empty string when there are none.
inline std::string histograms_snapshot_json(
    const MetricsRegistry& reg = MetricsRegistry::global()) {
  const json::Value all = json::parse(reg.dump_json());
  std::ostringstream os;
  bool any = false;
  os << "{";
  for (const auto& [name, v] : all.as_object()) {
    if (!v.is_object()) continue;  // histograms are the only nested values
    if (any) os << ", ";
    any = true;
    json::escape(os, name);
    // Re-serialize the summary from the parsed fields (all integers).
    os << ": {";
    bool f2 = true;
    for (const auto& [k, n] : v.as_object()) {
      os << (f2 ? "" : ", ");
      f2 = false;
      json::escape(os, k);
      os << ": " << n.as_u64();
    }
    os << "}";
  }
  os << "}";
  return any ? os.str() : std::string();
}

// ---- parsing --------------------------------------------------------------

// Throws std::runtime_error on malformed input or schema mismatch.
inline BenchReport parse_report(std::string_view text) {
  const json::Value doc = json::parse(text);
  BenchReport r;
  r.schema_version = static_cast<int>(doc.at("schema_version").as_number());
  if (r.schema_version != kSchemaVersion) {
    throw std::runtime_error("bench report: unsupported schema_version " +
                             std::to_string(r.schema_version));
  }
  const json::Value& ctx = doc.at("context");
  r.context.git_sha = ctx.at("git_sha").as_string();
  r.context.compiler = ctx.at("compiler").as_string();
  r.context.cxx_flags = ctx.at("cxx_flags").as_string();
  r.context.cpu_model = ctx.at("cpu_model").as_string();
  r.context.hardware_threads =
      static_cast<int>(ctx.at("hardware_threads").as_number());
  r.context.omp_threads = static_cast<int>(ctx.at("omp_threads").as_number());
  r.context.perf_available = ctx.at("perf_available").as_bool();
  for (const json::Value& b : doc.at("benchmarks").as_array()) {
    BenchEntry e;
    e.name = b.at("name").as_string();
    e.repetitions = static_cast<int>(b.at("repetitions").as_number());
    for (const json::Value& s : b.at("samples_ns").as_array()) {
      e.samples_ns.push_back(s.as_number());
    }
    e.median_ns = b.at("median_ns").as_number();
    e.min_ns = b.at("min_ns").as_number();
    for (const auto& [k, v] : b.at("counters").as_object()) {
      e.counters[k] = v.as_number();
    }
    r.benchmarks.push_back(std::move(e));
  }
  return r;
}

inline BenchReport parse_report_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("bench report: cannot open " + path);
  std::ostringstream buf;
  buf << f.rdbuf();
  return parse_report(buf.str());
}

// ---- comparison (the perf-gate policy) ------------------------------------

struct CompareOptions {
  // Regression factor: current must exceed baseline * tolerance on BOTH the
  // median and the min statistic to count. 1.30 absorbs run-to-run noise on
  // a quiet machine; CI uses a looser factor against a pinned cross-machine
  // baseline (see .github/workflows/ci.yml).
  double tolerance = 1.30;
  // Absolute floor: deltas below this many ns are never regressions (ns-
  // scale benchmarks jitter by whole multiples of themselves).
  double min_delta_ns = 1000.0;
};

struct CompareRow {
  std::string name;
  double baseline_median_ns = 0;
  double current_median_ns = 0;
  double baseline_min_ns = 0;
  double current_min_ns = 0;
  double median_ratio = 0;  // current / baseline
  double min_ratio = 0;
  bool regressed = false;
};

struct CompareResult {
  std::vector<CompareRow> rows;          // matched benchmarks, report order
  std::vector<std::string> missing;      // in baseline, not in current
  std::vector<std::string> added;        // in current, not in baseline
  int regressions = 0;

  bool ok() const { return regressions == 0; }
};

inline CompareResult compare(const BenchReport& baseline,
                             const BenchReport& current,
                             const CompareOptions& opts = {}) {
  CompareResult out;
  for (const auto& b : baseline.benchmarks) {
    const BenchEntry* c = current.find(b.name);
    if (c == nullptr) {
      out.missing.push_back(b.name);
      continue;
    }
    CompareRow row;
    row.name = b.name;
    row.baseline_median_ns = b.median_ns;
    row.current_median_ns = c->median_ns;
    row.baseline_min_ns = b.min_ns;
    row.current_min_ns = c->min_ns;
    row.median_ratio = b.median_ns > 0 ? c->median_ns / b.median_ns : 0;
    row.min_ratio = b.min_ns > 0 ? c->min_ns / b.min_ns : 0;
    const bool median_bad =
        c->median_ns > b.median_ns * opts.tolerance &&
        c->median_ns - b.median_ns > opts.min_delta_ns;
    const bool min_bad = c->min_ns > b.min_ns * opts.tolerance &&
                         c->min_ns - b.min_ns > opts.min_delta_ns;
    row.regressed = median_bad && min_bad;
    if (row.regressed) ++out.regressions;
    out.rows.push_back(std::move(row));
  }
  for (const auto& c : current.benchmarks) {
    if (baseline.find(c.name) == nullptr) out.added.push_back(c.name);
  }
  return out;
}

inline void print_compare(std::ostream& os, const CompareResult& r,
                          const CompareOptions& opts) {
  os << "benchmark comparison (tolerance " << opts.tolerance << "x, floor "
     << opts.min_delta_ns << " ns; regression = median AND min exceed)\n";
  for (const auto& row : r.rows) {
    os << (row.regressed ? "  REGRESSED " : "  ok        ") << row.name
       << "  median " << row.baseline_median_ns << " -> "
       << row.current_median_ns << " ns (" << row.median_ratio << "x), min "
       << row.baseline_min_ns << " -> " << row.current_min_ns << " ns ("
       << row.min_ratio << "x)\n";
  }
  for (const auto& m : r.missing) os << "  missing   " << m << "\n";
  for (const auto& a : r.added) os << "  new       " << a << "\n";
  os << (r.ok() ? "PASS" : "FAIL") << ": " << r.regressions
     << " regression(s) across " << r.rows.size() << " matched benchmark(s)\n";
}

}  // namespace agnn::obs::bench
