// Per-rank span tracing for the simulated cluster.
//
// The paper's claims are about *where time goes* — compute vs. communication
// per BSP superstep — so the reproduction records a timeline, not just
// end-of-run aggregates. Design constraints, in order:
//
//  1. Always compiled, near-zero overhead when disabled. The AGNN_TRACE_SCOPE
//     macro expands to an RAII object whose constructor is a single relaxed
//     atomic load + branch when tracing is off (bench_kernels asserts the
//     per-span cost). No #ifdef builds: the traced binary IS the measured
//     binary.
//  2. Lock-free recording on the hot path. Each recording thread owns a
//     fixed-capacity buffer (allocated once, on that thread's first event);
//     recording is a bounds check + a store + a release publish. The only
//     lock is taken when a *new thread* registers its buffer.
//  3. Bounded memory with balanced spans. When a buffer fills, new Begins are
//     refused (drop-newest, counted), but the End of every *accepted* Begin
//     is guaranteed a slot — the buffer reserves headroom for all open spans,
//     so exported traces always have balanced B/E events per thread.
//
// Rank mapping: `SpmdRuntime::run` binds each rank thread via `RankBinding`,
// and every event records the rank current at record time. In the exported
// Chrome/Perfetto `trace_event` JSON each simulated rank renders as a
// "thread" (tid == rank) of one "process" (the simulated cluster); code that
// runs outside any rank (the driver) lands on a separate "driver" track.
// Superstep boundaries are instant events emitted by the Communicator when a
// collective charges its superstep count.
//
// Open `trace.json` in https://ui.perfetto.dev or chrome://tracing.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "tensor/common.hpp"

namespace agnn::obs {

// Span taxonomy (see DESIGN.md §9). The category becomes the `cat` field in
// the exported JSON, so Perfetto can filter e.g. only collectives.
enum class SpanCategory : std::uint8_t {
  kKernel,      // one src/tensor/ kernel entry point
  kCollective,  // one Communicator collective / one-sided exchange
  kPhase,       // engine-level phase: layer forward/backward, exchange, ...
  kEpoch,       // Trainer epoch / train_step
  kSuperstep,   // instant marker: a rank's superstep counter advanced
  kFault,       // instant marker: injected fault / failure declaration
};

inline const char* to_string(SpanCategory c) {
  switch (c) {
    case SpanCategory::kKernel: return "kernel";
    case SpanCategory::kCollective: return "collective";
    case SpanCategory::kPhase: return "phase";
    case SpanCategory::kEpoch: return "epoch";
    case SpanCategory::kSuperstep: return "superstep";
    case SpanCategory::kFault: return "fault";
  }
  return "?";
}

// One recorded event. POD, fixed size; `name` must be a string literal (or
// otherwise outlive the tracer) — recording never copies or allocates.
struct TraceEvent {
  const char* name = nullptr;
  std::uint64_t ts_ns = 0;     // steady-clock ns since tracer epoch
  std::uint64_t bytes = 0;     // payload bytes (collectives; 0 otherwise)
  std::uint64_t superstep = 0; // rank's superstep counter (instants; 0 else)
  std::int32_t rank = -1;      // simulated rank at record time; -1 = driver
  SpanCategory category = SpanCategory::kKernel;
  char phase = 'B';            // 'B' begin, 'E' end, 'i' instant
};

namespace detail {

// Rank bound to the current thread; -1 outside any simulated rank.
inline thread_local std::int32_t t_rank = -1;

inline std::uint64_t now_ns() {
  static const auto epoch = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

// Single-producer fixed-capacity event buffer. The owning thread writes;
// any thread may read the committed prefix (count_ is the release-published
// high-water mark, so concurrent export of a *quiescent* producer is safe,
// and export during recording sees a consistent prefix).
class ThreadBuffer {
 public:
  explicit ThreadBuffer(std::size_t capacity)
      : storage_(std::make_unique<TraceEvent[]>(capacity)), cap_(capacity) {}

  // Invariant: count + open_ <= cap_, so every accepted Begin's End fits.
  bool try_begin(const TraceEvent& ev) {
    const std::size_t n = count_.load(std::memory_order_relaxed);
    if (n + open_ + 2 > cap_) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    storage_[n] = ev;
    ++open_;
    count_.store(n + 1, std::memory_order_release);
    return true;
  }

  // Only called for spans whose Begin was accepted; a slot is guaranteed.
  void end(const TraceEvent& ev) {
    const std::size_t n = count_.load(std::memory_order_relaxed);
    storage_[n] = ev;
    --open_;
    count_.store(n + 1, std::memory_order_release);
  }

  bool try_instant(const TraceEvent& ev) {
    const std::size_t n = count_.load(std::memory_order_relaxed);
    if (n + open_ + 1 > cap_) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    storage_[n] = ev;
    count_.store(n + 1, std::memory_order_release);
    return true;
  }

  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  void collect_into(std::vector<TraceEvent>& out) const {
    const std::size_t n = count_.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < n; ++i) out.push_back(storage_[i]);
  }

  void clear() {
    // Writer-side only (or quiesced): resets the committed prefix.
    open_ = 0;
    count_.store(0, std::memory_order_release);
    dropped_.store(0, std::memory_order_relaxed);
  }

 private:
  std::unique_ptr<TraceEvent[]> storage_;
  std::size_t cap_;
  std::size_t open_ = 0;  // accepted Begins without their End; writer-only
  std::atomic<std::size_t> count_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

}  // namespace detail

// Process-wide tracer. Enabled state is a relaxed atomic so the disabled
// fast path is one load + branch; everything else only runs when enabled.
class Tracer {
 public:
  static Tracer& instance() {
    static Tracer t;
    return t;
  }

  static bool enabled() {
    return enabled_flag().load(std::memory_order_relaxed);
  }

  static void set_enabled(bool on) {
    enabled_flag().store(on, std::memory_order_relaxed);
  }

  // True when the AGNN_TRACE environment variable is set to anything but
  // "" or "0".
  static bool env_wants_trace() {
    const char* v = std::getenv("AGNN_TRACE");
    return v != nullptr && v[0] != '\0' && std::strcmp(v, "0") != 0;
  }

  // Capacity (events per recording thread) for buffers created *after* this
  // call. Overridable via AGNN_TRACE_BUFFER (events).
  void set_buffer_capacity(std::size_t events) {
    buffer_capacity_.store(events < 64 ? 64 : events,
                           std::memory_order_relaxed);
  }

  // --- recording (hot path; caller has checked enabled()) ---------------
  bool begin(const char* name, SpanCategory cat, std::uint64_t bytes) {
    return buffer().try_begin({name, detail::now_ns(), bytes, 0,
                               detail::t_rank, cat, 'B'});
  }

  void end(const char* name, SpanCategory cat) {
    buffer().end({name, detail::now_ns(), 0, 0, detail::t_rank, cat, 'E'});
  }

  void instant(const char* name, SpanCategory cat, std::uint64_t bytes,
               std::uint64_t superstep) {
    buffer().try_instant({name, detail::now_ns(), bytes, superstep,
                          detail::t_rank, cat, 'i'});
  }

  // --- export -----------------------------------------------------------
  // Snapshot of every registered buffer's committed prefix. Call when the
  // recording threads are quiescent (e.g. after SpmdRuntime::run returned)
  // for a complete trace; a concurrent call sees a consistent prefix.
  std::vector<TraceEvent> collect() const {
    std::vector<TraceEvent> out;
    std::lock_guard<std::mutex> lock(registry_mutex_);
    for (const auto& b : buffers_) b->collect_into(out);
    return out;
  }

  std::uint64_t dropped_events() const {
    std::uint64_t d = 0;
    std::lock_guard<std::mutex> lock(registry_mutex_);
    for (const auto& b : buffers_) d += b->dropped();
    return d;
  }

  // Surface the drop-newest policy: export the total and every per-thread
  // dropped-span count (nonzero buffers only, named by registration order)
  // into the registry, so a metrics dump shows *that* and *where* the ring
  // buffers saturated instead of the trace silently thinning. Watermark
  // semantics (set_max): safe to call repeatedly. Returns the total.
  std::uint64_t export_drop_metrics(
      MetricsRegistry& reg = MetricsRegistry::global()) const {
    std::uint64_t total = 0;
    std::lock_guard<std::mutex> lock(registry_mutex_);
    for (std::size_t i = 0; i < buffers_.size(); ++i) {
      const std::uint64_t d = buffers_[i]->dropped();
      total += d;
      if (d != 0) {
        reg.counter("trace.dropped_spans.t" + std::to_string(i)).set_max(d);
      }
    }
    reg.counter("trace.dropped_spans").set_max(total);
    return total;
  }

  // Drop all recorded events (buffers stay registered and allocated). Only
  // safe when recording threads are quiescent.
  void clear() {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    for (const auto& b : buffers_) b->clear();
  }

  // Chrome trace_event JSON (the "JSON array format": a single array, each
  // element one event; ts/dur are microseconds). One pid for the cluster;
  // tid == simulated rank, driver code on its own track.
  void write_chrome_json(std::ostream& os) const {
    write_chrome_json(os, collect());
  }

  static void write_chrome_json(std::ostream& os,
                                const std::vector<TraceEvent>& events) {
    std::int32_t max_rank = -1;
    for (const auto& e : events) max_rank = std::max(max_rank, e.rank);
    const std::int32_t driver_tid = max_rank + 1;

    os << "[\n";
    os << "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\","
          "\"args\":{\"name\":\"agnn simulated cluster\"}}";
    for (std::int32_t r = 0; r <= max_rank; ++r) {
      os << ",\n{\"ph\":\"M\",\"pid\":0,\"tid\":" << r
         << ",\"name\":\"thread_name\",\"args\":{\"name\":\"rank " << r
         << "\"}}";
    }
    os << ",\n{\"ph\":\"M\",\"pid\":0,\"tid\":" << driver_tid
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\"driver\"}}";

    char ts_buf[32];
    // Per-tid stack of open Begins: a span still open at export time (the
    // recording thread unwound without reaching its End, or export ran
    // mid-span) gets a synthesized End below so the JSON stays balanced.
    std::map<std::int32_t, std::vector<const TraceEvent*>> open;
    std::uint64_t last_ts_ns = 0;
    for (const auto& e : events) {
      const std::int32_t tid = e.rank < 0 ? driver_tid : e.rank;
      last_ts_ns = std::max(last_ts_ns, e.ts_ns);
      if (e.phase == 'B') {
        open[tid].push_back(&e);
      } else if (e.phase == 'E' && !open[tid].empty()) {
        open[tid].pop_back();
      }
      // ts is microseconds; keep ns resolution with three decimals.
      std::snprintf(ts_buf, sizeof(ts_buf), "%llu.%03u",
                    static_cast<unsigned long long>(e.ts_ns / 1000),
                    static_cast<unsigned>(e.ts_ns % 1000));
      os << ",\n{\"ph\":\"" << e.phase << "\",\"pid\":0,\"tid\":" << tid
         << ",\"ts\":" << ts_buf << ",\"name\":\"" << e.name
         << "\",\"cat\":\"" << to_string(e.category) << "\"";
      if (e.phase == 'i') {
        os << ",\"s\":\"t\"";  // thread-scoped instant
      }
      if (e.phase != 'E') {
        os << ",\"args\":{";
        bool first = true;
        if (e.bytes != 0) {
          os << "\"bytes\":" << e.bytes;
          first = false;
        }
        if (e.category == SpanCategory::kSuperstep) {
          if (!first) os << ",";
          os << "\"superstep\":" << e.superstep;
          first = false;
        }
        if (first) os << "\"rank\":" << e.rank;
        os << "}";
      }
      os << "}";
    }
    std::snprintf(ts_buf, sizeof(ts_buf), "%llu.%03u",
                  static_cast<unsigned long long>(last_ts_ns / 1000),
                  static_cast<unsigned>(last_ts_ns % 1000));
    for (const auto& [tid, stack] : open) {
      for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
        os << ",\n{\"ph\":\"E\",\"pid\":0,\"tid\":" << tid
           << ",\"ts\":" << ts_buf << ",\"name\":\"" << (*it)->name
           << "\",\"cat\":\"" << to_string((*it)->category) << "\"}";
      }
    }
    os << "\n]\n";
  }

  // Convenience: write the full trace to `path`. Returns false on I/O error.
  bool write_chrome_json_file(const std::string& path) const;

 private:
  Tracer() {
    if (const char* v = std::getenv("AGNN_TRACE_BUFFER")) {
      const long n = std::atol(v);
      if (n > 0) set_buffer_capacity(static_cast<std::size_t>(n));
    }
  }

  static std::atomic<bool>& enabled_flag() {
    static std::atomic<bool> on{false};
    return on;
  }

  detail::ThreadBuffer& buffer() {
    thread_local detail::ThreadBuffer* buf = nullptr;
    // A new thread's first event registers its buffer (the only lock on the
    // recording path, paid once per thread, before the hot loop).
    if (buf == nullptr) buf = register_thread_buffer();
    return *buf;
  }

  detail::ThreadBuffer* register_thread_buffer() {
    auto owned = std::make_unique<detail::ThreadBuffer>(
        buffer_capacity_.load(std::memory_order_relaxed));
    detail::ThreadBuffer* raw = owned.get();
    std::lock_guard<std::mutex> lock(registry_mutex_);
    buffers_.push_back(std::move(owned));
    return raw;
  }

  mutable std::mutex registry_mutex_;
  // Buffers are never destroyed (threads come and go across SpmdRuntime
  // runs; their events must survive the join for export). Bounded by
  // capacity * total distinct recording threads — the 64k default costs
  // ~3 MB per recording thread, so even a 64-rank sweep stays modest;
  // long traced runs raise it via AGNN_TRACE_BUFFER.
  std::vector<std::unique_ptr<detail::ThreadBuffer>> buffers_;
  std::atomic<std::size_t> buffer_capacity_{1u << 16};
};

// RAII scoped span. When tracing is disabled the constructor is one relaxed
// load + branch and the destructor one predictable branch on a member bool —
// the disabled cost asserted by bench_kernels' TraceSpanDisabled.
class SpanScope {
 public:
  SpanScope(const char* name, SpanCategory cat, std::uint64_t bytes = 0) {
    if (!Tracer::enabled()) return;
    if (Tracer::instance().begin(name, cat, bytes)) {
      name_ = name;
      cat_ = cat;
    }
  }
  ~SpanScope() {
    if (name_ != nullptr) Tracer::instance().end(name_, cat_);
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  const char* name_ = nullptr;  // non-null iff the Begin was recorded
  SpanCategory cat_ = SpanCategory::kKernel;
};

// Binds the current thread to a simulated rank for the binding's lifetime;
// installed by SpmdRuntime::run around each rank body.
class RankBinding {
 public:
  explicit RankBinding(std::int32_t rank) : prev_(detail::t_rank) {
    detail::t_rank = rank;
  }
  ~RankBinding() { detail::t_rank = prev_; }
  RankBinding(const RankBinding&) = delete;
  RankBinding& operator=(const RankBinding&) = delete;

 private:
  std::int32_t prev_;
};

inline std::int32_t current_rank() { return detail::t_rank; }

// Instant marker for a superstep boundary; `bytes` is what the charge just
// billed this rank (the exact network volume, e.g. total-minus-own for
// allgatherv) and `superstep` the rank's counter value after the charge.
inline void superstep_mark(std::uint64_t bytes, std::uint64_t superstep) {
  if (!Tracer::enabled()) return;
  Tracer::instance().instant("superstep", SpanCategory::kSuperstep, bytes,
                             superstep);
}

// Instant marker for the fault-injection layer (comm/fault_injection.hpp):
// an injected fault firing, a failure being declared, or a recovery
// completing. `name` must be a string literal ("fault.delay", ...); `arg`
// carries a kind-specific detail (the delay in us for stragglers).
inline void fault_mark(const char* name, std::uint64_t arg,
                       std::uint64_t superstep) {
  if (!Tracer::enabled()) return;
  Tracer::instance().instant(name, SpanCategory::kFault, arg, superstep);
}

// Env/flag-driven session for example mains: enables tracing when forced or
// when AGNN_TRACE is set, and writes `path` on destruction.
class TraceSession {
 public:
  explicit TraceSession(std::string path = "trace.json", bool force = false)
      : path_(std::move(path)),
        active_(force || Tracer::env_wants_trace()) {
    if (active_) {
      Tracer::instance().clear();
      Tracer::set_enabled(true);
    }
  }
  ~TraceSession() {
    if (!active_) return;
    Tracer::set_enabled(false);
    // Drops are reported whether or not the file write succeeds, and land
    // in the metrics registry too — an incomplete trace must never look
    // like a quiet one.
    const std::uint64_t d = Tracer::instance().export_drop_metrics();
    if (d != 0) {
      std::fprintf(stderr,
                   "[obs] warning: %llu spans dropped by full trace buffers "
                   "(raise AGNN_TRACE_BUFFER)\n",
                   static_cast<unsigned long long>(d));
    }
    if (Tracer::instance().write_chrome_json_file(path_)) {
      std::fprintf(stderr,
                   "[obs] wrote %s — open in https://ui.perfetto.dev or "
                   "chrome://tracing\n",
                   path_.c_str());
    } else {
      std::fprintf(stderr, "[obs] failed to write %s\n", path_.c_str());
    }
  }
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  bool active() const { return active_; }

 private:
  std::string path_;
  bool active_;
};

#define AGNN_OBS_CONCAT2(a, b) a##b
#define AGNN_OBS_CONCAT(a, b) AGNN_OBS_CONCAT2(a, b)

// Scoped span: AGNN_TRACE_SCOPE("spmm", kKernel);
#define AGNN_TRACE_SCOPE(name, cat)                                       \
  const ::agnn::obs::SpanScope AGNN_OBS_CONCAT(agnn_trace_span_,          \
                                               __COUNTER__)(              \
      name, ::agnn::obs::SpanCategory::cat)

// Scoped span with a byte payload: collectives tag their volume.
#define AGNN_TRACE_SCOPE_BYTES(name, cat, bytes)                          \
  const ::agnn::obs::SpanScope AGNN_OBS_CONCAT(agnn_trace_span_,          \
                                               __COUNTER__)(              \
      name, ::agnn::obs::SpanCategory::cat,                               \
      static_cast<std::uint64_t>(bytes))

}  // namespace agnn::obs

#include <fstream>

namespace agnn::obs {
inline bool Tracer::write_chrome_json_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  write_chrome_json(os);
  return os.good();
}
}  // namespace agnn::obs
