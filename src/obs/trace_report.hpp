// Model-vs-measurement report over a recorded trace.
//
// The simulated cluster *measures* compute (span wall time on the rank
// threads) but *models* communication (alpha-beta over the charged volume).
// This report joins the two: every collective span becomes a row group —
// keyed by the collective's name — accumulating
//
//   * the measured kernel time that preceded it on the same rank since the
//     previous collective (the compute the BSP superstep overlaps nothing
//     with), reduced with max over ranks per occurrence, and
//   * the modeled comm time of the collective itself, alpha * supersteps +
//     beta * bytes, again max over ranks per occurrence.
//
// A row whose measured compute is more than `deviation_factor` times the
// modeled comm (or less than 1/factor of it) is flagged: that superstep's
// balance is not what the volume model predicts, which is exactly the
// discrepancy the paper's Section 7 accounting is supposed to rule out.
// Only depth-1 kernel spans count toward compute (fused kernels call other
// instrumented kernels; counting both would double-bill).
#pragma once

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "comm/cost_model.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace agnn::obs {

struct TraceReportRow {
  std::string name;             // collective span name
  std::uint64_t calls = 0;      // occurrences (summed over ranks)
  std::uint64_t bytes = 0;      // total charged bytes (summed over ranks)
  std::uint64_t supersteps = 0; // total supersteps (summed over ranks)
  double compute_seconds = 0;   // measured kernel time preceding, max-rank
  double comm_seconds = 0;      // modeled alpha-beta time, max-rank
  bool flagged = false;         // compute/comm ratio outside [1/f, f]

  double ratio() const {
    return comm_seconds > 0 ? compute_seconds / comm_seconds : 0.0;
  }
};

class TraceReport {
 public:
  explicit TraceReport(comm::CostModel model = {},
                       double deviation_factor = 2.0)
      : model_(model), factor_(deviation_factor) {}

  // Build rows from raw events (e.g. Tracer::instance().collect()).
  std::vector<TraceReportRow> build(std::vector<TraceEvent> events) const {
    // Per-rank chronological order; buffers from different threads of the
    // same rank (across SpmdRuntime runs) interleave correctly because the
    // timestamps share one steady clock.
    std::stable_sort(events.begin(), events.end(),
                     [](const TraceEvent& a, const TraceEvent& b) {
                       if (a.rank != b.rank) return a.rank < b.rank;
                       return a.ts_ns < b.ts_ns;
                     });

    struct Accum {
      std::uint64_t calls = 0;
      std::uint64_t bytes = 0;
      std::uint64_t supersteps = 0;
      double compute_seconds = 0;
      double comm_seconds = 0;
    };
    std::map<std::string, Accum> rows;

    std::size_t i = 0;
    while (i < events.size()) {
      const std::int32_t rank = events[i].rank;
      // Walk one rank's timeline.
      std::uint64_t kernel_ns_since_collective = 0;
      std::uint64_t kernel_begin_ns = 0;
      int kernel_depth = 0;
      const char* open_collective = nullptr;  // innermost collective span
      std::uint64_t open_collective_bytes = 0;
      std::uint64_t open_collective_charged = 0;  // from superstep instants
      std::uint64_t open_collective_begin_step = 0;
      std::uint64_t last_superstep = 0;
      for (; i < events.size() && events[i].rank == rank; ++i) {
        const TraceEvent& e = events[i];
        switch (e.category) {
          case SpanCategory::kKernel:
            if (e.phase == 'B') {
              if (kernel_depth == 0) kernel_begin_ns = e.ts_ns;
              ++kernel_depth;
            } else if (e.phase == 'E' && kernel_depth > 0) {
              --kernel_depth;
              if (kernel_depth == 0) {
                kernel_ns_since_collective += e.ts_ns - kernel_begin_ns;
              }
            }
            break;
          case SpanCategory::kCollective:
            if (e.phase == 'B') {
              open_collective = e.name;
              open_collective_bytes = e.bytes;
              open_collective_charged = 0;
              open_collective_begin_step = last_superstep;
            } else if (e.phase == 'E' && open_collective != nullptr) {
              // Prefer what the charge actually billed (exact even for
              // allgatherv, whose volume is only known mid-call) over the
              // span's entry-time estimate.
              const std::uint64_t bytes = open_collective_charged > 0
                                              ? open_collective_charged
                                              : open_collective_bytes;
              Accum& a = rows[open_collective];
              a.calls += 1;
              a.bytes += bytes;
              const std::uint64_t steps =
                  last_superstep - open_collective_begin_step;
              a.supersteps += steps;
              const double comm =
                  model_.alpha * static_cast<double>(steps) +
                  model_.beta * static_cast<double>(bytes);
              a.comm_seconds = std::max(a.comm_seconds, comm);
              a.compute_seconds =
                  std::max(a.compute_seconds,
                           static_cast<double>(kernel_ns_since_collective) *
                               1e-9);
              kernel_ns_since_collective = 0;
              open_collective = nullptr;
            }
            break;
          case SpanCategory::kSuperstep:
            last_superstep = std::max(last_superstep, e.superstep);
            if (open_collective != nullptr) {
              open_collective_charged += e.bytes;
            }
            break;
          default:
            break;  // phases/epochs structure the trace, not this table
        }
      }
    }

    std::vector<TraceReportRow> out;
    out.reserve(rows.size());
    for (const auto& [name, a] : rows) {
      TraceReportRow r;
      r.name = name;
      r.calls = a.calls;
      r.bytes = a.bytes;
      r.supersteps = a.supersteps;
      r.compute_seconds = a.compute_seconds;
      r.comm_seconds = a.comm_seconds;
      r.flagged = a.comm_seconds > 0 &&
                  (r.ratio() > factor_ || r.ratio() < 1.0 / factor_);
      out.push_back(std::move(r));
    }
    return out;
  }

  // Render the table. Returns the number of flagged rows.
  std::size_t print(std::ostream& os,
                    const std::vector<TraceReportRow>& rows) const {
    os << std::left << std::setw(28) << "collective" << std::right
       << std::setw(8) << "calls" << std::setw(14) << "bytes"
       << std::setw(7) << "steps" << std::setw(13) << "compute_ms"
       << std::setw(13) << "comm_ms(mod)" << std::setw(9) << "ratio"
       << "  flag\n";
    std::size_t flagged = 0;
    for (const auto& r : rows) {
      os << std::left << std::setw(28) << r.name << std::right
         << std::setw(8) << r.calls << std::setw(14) << r.bytes
         << std::setw(7) << r.supersteps << std::setw(13) << std::fixed
         << std::setprecision(4) << r.compute_seconds * 1e3 << std::setw(13)
         << r.comm_seconds * 1e3 << std::setw(9) << std::setprecision(2)
         << r.ratio() << "  " << (r.flagged ? ">2x" : "") << "\n";
      if (r.flagged) ++flagged;
    }
    return flagged;
  }

  std::size_t print(std::ostream& os) const {
    return print(os, build(Tracer::instance().collect()));
  }

  // Bridge the deviation flags into the metrics registry so they survive
  // into the machine-readable dump instead of living only in the printed
  // table: one gauge per flagged collective carrying its compute/comm
  // ratio, plus the flagged-row count.
  static void export_flags(const std::vector<TraceReportRow>& rows,
                           MetricsRegistry& reg = MetricsRegistry::global()) {
    std::size_t flagged = 0;
    for (const auto& r : rows) {
      if (!r.flagged) continue;
      ++flagged;
      reg.gauge("trace_report.deviation." + r.name).set(r.ratio());
    }
    reg.gauge("trace_report.flagged_rows")
        .set(static_cast<double>(flagged));
  }

  // ---- per-kernel roofline attribution ----------------------------------
  // Depth-1 kernel spans carry a byte tag (the kernel's algorithmic memory
  // traffic, set at the AGNN_KERNEL_SCOPE call site); joining wall time
  // against those bytes gives effective GB/s, and joining against the
  // perf.<kernel>.* counters (when AGNN_PERF ran) gives IPC and miss
  // rates — the "why does this variant win" attribution, not just the
  // ranking.
  struct KernelRow {
    std::string name;
    std::uint64_t calls = 0;
    std::uint64_t bytes = 0;       // summed algorithmic traffic estimate
    double wall_seconds = 0;       // summed over calls and ranks
    std::uint64_t cycles = 0;      // perf counters (0 when unavailable)
    std::uint64_t instructions = 0;
    double ipc = 0;
    double cache_miss_rate = 0;
    bool has_perf = false;
    std::string tuned;  // autotuner decision ("row/csr/g1024"), "" if untuned

    double gbps() const {
      return wall_seconds > 0
                 ? static_cast<double>(bytes) / wall_seconds * 1e-9
                 : 0.0;
    }
  };

  // Inverse of agnn::encode_tuned_choice (tensor/autotune.hpp): the tuner
  // exports its decision through the tune.<kernel>.choice gauge as
  // policy*10000 + format*1000 + bit_width(grain) so the obs layer can
  // render it without a tensor-layer dependency. The enum integer values are
  // part of that contract; Autotune.ChoiceEncodingRoundTrips pins it.
  static std::string decode_tuned_choice(double encoded) {
    const int code = static_cast<int>(encoded);
    if (code <= 0) return "";
    static constexpr const char* kPolicies[] = {"?", "row", "edge", "hybrid"};
    static constexpr const char* kFormats[] = {"csr", "sell", "bcsr"};
    const int p = code / 10000;
    const int f = (code / 1000) % 10;
    const int gbits = code % 1000;
    if (p < 1 || p > 3 || f < 0 || f > 2 || gbits < 1 || gbits > 62) {
      return "?";
    }
    return std::string(kPolicies[p]) + "/" + kFormats[f] + "/g" +
           std::to_string(std::uint64_t(1) << (gbits - 1));
  }

  static std::vector<KernelRow> build_kernels(
      std::vector<TraceEvent> events,
      const MetricsRegistry& reg = MetricsRegistry::global()) {
    std::stable_sort(events.begin(), events.end(),
                     [](const TraceEvent& a, const TraceEvent& b) {
                       if (a.rank != b.rank) return a.rank < b.rank;
                       return a.ts_ns < b.ts_ns;
                     });

    struct Accum {
      std::uint64_t calls = 0;
      std::uint64_t bytes = 0;
      std::uint64_t wall_ns = 0;
    };
    std::map<std::string, Accum> acc;

    // Per-rank span stack; only depth-1 kernel spans accumulate (fused
    // kernels call instrumented kernels — counting both would double-bill,
    // same rule as the compute accounting above).
    struct Open {
      const char* name;
      std::uint64_t begin_ns;
      std::uint64_t bytes;
    };
    std::size_t i = 0;
    while (i < events.size()) {
      const std::int32_t rank = events[i].rank;
      std::vector<Open> stack;
      for (; i < events.size() && events[i].rank == rank; ++i) {
        const TraceEvent& e = events[i];
        if (e.category != SpanCategory::kKernel) continue;
        if (e.phase == 'B') {
          stack.push_back({e.name, e.ts_ns, e.bytes});
        } else if (e.phase == 'E' && !stack.empty()) {
          const Open top = stack.back();
          stack.pop_back();
          if (stack.empty()) {
            Accum& a = acc[top.name];
            a.calls += 1;
            a.bytes += top.bytes;
            a.wall_ns += e.ts_ns - top.begin_ns;
          }
        }
      }
    }

    std::vector<KernelRow> out;
    out.reserve(acc.size());
    for (const auto& [name, a] : acc) {
      KernelRow r;
      r.name = name;
      r.calls = a.calls;
      r.bytes = a.bytes;
      r.wall_seconds = static_cast<double>(a.wall_ns) * 1e-9;
      const std::string p = "perf." + name;
      if (const Counter* c = reg.find_counter(p + ".cycles")) {
        r.cycles = c->value();
      }
      if (const Counter* c = reg.find_counter(p + ".instructions")) {
        r.instructions = c->value();
      }
      r.has_perf = r.cycles > 0;
      if (const Gauge* g = reg.find_gauge(p + ".ipc")) r.ipc = g->value();
      if (const Gauge* g = reg.find_gauge(p + ".cache_miss_rate")) {
        r.cache_miss_rate = g->value();
      }
      if (const Gauge* g = reg.find_gauge("tune." + name + ".choice")) {
        r.tuned = decode_tuned_choice(g->value());
      }
      out.push_back(std::move(r));
    }
    return out;
  }

  // Render the roofline table; perf columns show '-' when the counters
  // were unavailable (or AGNN_PERF was off).
  static void print_kernels(std::ostream& os,
                            const std::vector<KernelRow>& rows) {
    os << std::left << std::setw(24) << "kernel" << std::right
       << std::setw(8) << "calls" << std::setw(11) << "wall_ms"
       << std::setw(11) << "MB" << std::setw(9) << "GB/s"
       << std::setw(7) << "IPC" << std::setw(10) << "cache_mr"
       << std::setw(18) << "tuned" << "\n";
    for (const auto& r : rows) {
      os << std::left << std::setw(24) << r.name << std::right
         << std::setw(8) << r.calls << std::setw(11) << std::fixed
         << std::setprecision(4) << r.wall_seconds * 1e3 << std::setw(11)
         << std::setprecision(3) << static_cast<double>(r.bytes) / 1e6
         << std::setw(9) << std::setprecision(2) << r.gbps();
      if (r.has_perf) {
        os << std::setw(7) << std::setprecision(2) << r.ipc << std::setw(10)
           << std::setprecision(4) << r.cache_miss_rate;
      } else {
        os << std::setw(7) << "-" << std::setw(10) << "-";
      }
      os << std::setw(18) << (r.tuned.empty() ? "-" : r.tuned) << "\n";
    }
  }

 private:
  comm::CostModel model_;
  double factor_;
};

}  // namespace agnn::obs
