// Alpha-beta BSP communication cost model.
//
// Converts the exact per-rank volume accounting of the simulated cluster
// into a modeled communication time, so that the scaling benchmarks can
// report an end-to-end "cluster time" even though they run on one machine:
//
//   T_comm(rank) = alpha * supersteps + beta * bytes_sent
//   T_total      = max_r compute_seconds(r) + max_r T_comm(r)
//
// Default parameters approximate the paper's testbed interconnect (Cray
// Aries, Dragonfly): ~1.5 us latency per message round and ~10 GB/s
// effective per-node injection bandwidth.
#pragma once

#include <algorithm>
#include <vector>

#include "comm/volume_stats.hpp"

namespace agnn::comm {

struct CostModel {
  double alpha = 1.5e-6;        // seconds per superstep (latency)
  double beta = 1.0 / 10.0e9;   // seconds per byte (inverse bandwidth)

  double comm_time(const VolumeSnapshot& s) const {
    return alpha * static_cast<double>(s.supersteps) +
           beta * static_cast<double>(s.bytes_sent);
  }

  double max_comm_time(const std::vector<VolumeSnapshot>& all) const {
    double m = 0.0;
    for (const auto& s : all) m = std::max(m, comm_time(s));
    return m;
  }

  // Modeled end-to-end time of the BSP execution: the slowest rank's
  // compute plus the slowest rank's communication.
  double total_time(const std::vector<VolumeSnapshot>& all) const {
    double comp = 0.0;
    for (const auto& s : all) comp = std::max(comp, s.compute_seconds);
    return comp + max_comm_time(all);
  }
};

}  // namespace agnn::comm
