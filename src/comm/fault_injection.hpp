// Deterministic fault injection for the simulated cluster.
//
// The SPMD runtime models a healthy BSP machine; this layer adds the
// unhealthy one. A FaultPlan schedules faults at (rank, superstep) points —
// logical time, not wall time — so a given plan replays identically on every
// run of the same program: the n-th collective a rank enters at superstep
// counter >= S is the same collective every time. Three fault kinds:
//
//   delay    the rank sleeps at the collective entry (a straggler); peers
//            observe the stall as barrier wait time (VolumeStats::wait_ns)
//   abort    the rank declares a failure and throws CommError; every other
//            rank's next collective throws the same structured CommError
//   timeout  the rank stalls past the collective timeout; a peer's barrier
//            deadline trips and declares the failure for everyone
//
// Failure agreement protocol: a single runtime-wide FaultState is shared by
// the world group and every split sub-group. Declaring a failure stores the
// fault info and flips an atomic flag; every barrier wait polls the flag, so
// all ranks — whatever group they are blocked in — unwind with CommError
// instead of deadlocking. Communicator::recover() is the only rendezvous
// that works while a failure is active; once all ranks arrive it clears the
// flag and bumps the recovery epoch, which lazily re-arms every group's
// barrier state (see GroupContext::barrier_wait).
//
// Plans come from code (tests), from the AGNN_FAULTS environment variable,
// or from a CLI flag that examples forward — the spec string is its own
// replay format: `kind@rR:sS[:Nus]`, ';'-separated, e.g.
//     AGNN_FAULTS="delay@r0:s3:500us;abort@r1:s12"
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace.hpp"
#include "tensor/common.hpp"

namespace agnn::comm {

enum class FaultKind : std::uint8_t {
  kStragglerDelay,     // sleep at the collective entry, then proceed
  kRankAbort,          // declare failure + throw CommError on the faulted rank
  kCollectiveTimeout,  // stall until a peer's barrier deadline declares failure
};

inline const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kStragglerDelay: return "delay";
    case FaultKind::kRankAbort: return "abort";
    case FaultKind::kCollectiveTimeout: return "timeout";
  }
  return "?";
}

// One scheduled fault: fires exactly once, at the first collective entry on
// global rank `rank` whose superstep counter has reached `superstep`.
struct FaultEvent {
  FaultKind kind = FaultKind::kStragglerDelay;
  int rank = 0;
  std::uint64_t superstep = 0;
  std::uint64_t delay_us = 0;  // kStragglerDelay only
};

// Structured communication failure. Thrown on *every* rank of the run: the
// faulted/declaring rank throws first, all others throw from their next
// collective entry or barrier wait. `origin_rank` is the declaring rank —
// for timeouts that may be a detecting peer rather than the stalled rank.
class CommError : public std::runtime_error {
 public:
  CommError(FaultKind kind, int origin_rank, std::uint64_t superstep,
            const char* where)
      : std::runtime_error(std::string("CommError: ") + to_string(kind) +
                           " (origin rank " + std::to_string(origin_rank) +
                           ", superstep " + std::to_string(superstep) +
                           ", in " + where + ")"),
        kind_(kind),
        origin_rank_(origin_rank),
        superstep_(superstep),
        where_(where) {}

  FaultKind kind() const { return kind_; }
  int origin_rank() const { return origin_rank_; }
  std::uint64_t superstep() const { return superstep_; }
  const char* where() const { return where_; }

 private:
  FaultKind kind_;
  int origin_rank_;
  std::uint64_t superstep_;
  const char* where_;  // string literal (collective name)
};

// An ordered list of FaultEvents plus the spec-string round trip. The spec
// is the replay handle: tests and CI log `plan.spec()` so any observed run
// can be reproduced with AGNN_FAULTS=<spec>.
class FaultPlan {
 public:
  FaultPlan() = default;

  void add(const FaultEvent& ev) { events_.push_back(ev); }
  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }
  const FaultEvent& event(std::size_t i) const { return events_[i]; }
  const std::vector<FaultEvent>& events() const { return events_; }

  // Grammar: spec := event (';' event)*
  //          event := kind '@r' rank ':s' superstep [':' delay 'us']
  static FaultPlan parse(const std::string& spec) {
    FaultPlan plan;
    std::size_t pos = 0;
    while (pos < spec.size()) {
      std::size_t end = spec.find(';', pos);
      if (end == std::string::npos) end = spec.size();
      if (end > pos) plan.add(parse_event(spec.substr(pos, end - pos)));
      pos = end + 1;
    }
    return plan;
  }

  std::string spec() const {
    std::string s;
    for (const FaultEvent& ev : events_) {
      if (!s.empty()) s += ';';
      s += to_string(ev.kind);
      s += "@r" + std::to_string(ev.rank) + ":s" + std::to_string(ev.superstep);
      if (ev.kind == FaultKind::kStragglerDelay) {
        s += ":" + std::to_string(ev.delay_us) + "us";
      }
    }
    return s;
  }

  // Seeded random plan (xoshiro Rng: identical across platforms). At most
  // one abort-class event so a bounded-retry recovery loop always converges;
  // superstep targets land in the middle half of [1, max_superstep].
  static FaultPlan random(std::uint64_t seed, int nranks,
                          std::uint64_t max_superstep, int max_events = 2,
                          std::uint64_t max_delay_us = 2000) {
    AGNN_ASSERT(nranks >= 1 && max_superstep >= 1 && max_events >= 1,
                "fault plan: bad random-plan bounds");
    Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0xfa17ULL);
    FaultPlan plan;
    const int n = 1 + static_cast<int>(rng.next_bounded(
                          static_cast<std::uint64_t>(max_events)));
    bool have_hard_fault = false;
    for (int i = 0; i < n; ++i) {
      FaultEvent ev;
      const std::uint64_t k = rng.next_bounded(3);
      ev.kind = static_cast<FaultKind>(k);
      if (ev.kind != FaultKind::kStragglerDelay) {
        if (have_hard_fault) ev.kind = FaultKind::kStragglerDelay;
        have_hard_fault = true;
      }
      ev.rank = static_cast<int>(rng.next_bounded(static_cast<std::uint64_t>(nranks)));
      const std::uint64_t lo = 1 + max_superstep / 4;
      const std::uint64_t hi = 1 + (3 * max_superstep) / 4;
      ev.superstep = lo + rng.next_bounded(hi - lo + 1);
      if (ev.kind == FaultKind::kStragglerDelay) {
        ev.delay_us = 1 + rng.next_bounded(max_delay_us);
      }
      plan.add(ev);
    }
    return plan;
  }

  static FaultPlan from_env() {
    const char* v = std::getenv("AGNN_FAULTS");
    if (v == nullptr || v[0] == '\0') return {};
    return parse(v);
  }

 private:
  static FaultEvent parse_event(const std::string& tok) {
    FaultEvent ev;
    const std::size_t at = tok.find('@');
    AGNN_ASSERT(at != std::string::npos, "fault spec: missing '@' in " + tok);
    const std::string kind = tok.substr(0, at);
    if (kind == "delay") {
      ev.kind = FaultKind::kStragglerDelay;
    } else if (kind == "abort") {
      ev.kind = FaultKind::kRankAbort;
    } else if (kind == "timeout") {
      ev.kind = FaultKind::kCollectiveTimeout;
    } else {
      AGNN_ASSERT(false, "fault spec: unknown kind '" + kind + "'");
    }
    std::size_t pos = at + 1;
    AGNN_ASSERT(pos < tok.size() && tok[pos] == 'r',
                "fault spec: expected 'r<rank>' in " + tok);
    ev.rank = static_cast<int>(parse_u64(tok, ++pos));
    AGNN_ASSERT(pos < tok.size() && tok[pos] == ':' && pos + 1 < tok.size() &&
                    tok[pos + 1] == 's',
                "fault spec: expected ':s<superstep>' in " + tok);
    pos += 2;
    ev.superstep = parse_u64(tok, pos);
    if (ev.kind == FaultKind::kStragglerDelay) {
      if (pos < tok.size()) {
        AGNN_ASSERT(tok[pos] == ':', "fault spec: expected ':<delay>us' in " + tok);
        ev.delay_us = parse_u64(tok, ++pos);
        AGNN_ASSERT(tok.compare(pos, std::string::npos, "us") == 0,
                    "fault spec: delay must end in 'us' in " + tok);
        pos = tok.size();
      } else {
        ev.delay_us = 1000;  // a bare delay event defaults to 1ms
      }
    }
    AGNN_ASSERT(pos == tok.size(), "fault spec: trailing junk in " + tok);
    return ev;
  }

  static std::uint64_t parse_u64(const std::string& tok, std::size_t& pos) {
    AGNN_ASSERT(pos < tok.size() && tok[pos] >= '0' && tok[pos] <= '9',
                "fault spec: expected a number in " + tok);
    std::uint64_t v = 0;
    while (pos < tok.size() && tok[pos] >= '0' && tok[pos] <= '9') {
      v = v * 10 + static_cast<std::uint64_t>(tok[pos] - '0');
      ++pos;
    }
    return v;
  }

  std::vector<FaultEvent> events_;
};

// Runtime-wide fault machinery, shared (by pointer) between the world group
// and every split sub-group of one SpmdRuntime::run. Owns the installed
// plan, the active-failure flag, and the recovery rendezvous.
//
// Locking: `mu_` is a leaf lock — it is acquired with a GroupContext's
// barrier mutex possibly held (barrier_wait -> check/declare), never the
// other way round, so the two layers cannot deadlock.
class FaultState {
 public:
  explicit FaultState(int nranks) : nranks_(nranks) {}

  void install(FaultPlan plan, std::chrono::nanoseconds timeout) {
    plan_ = std::move(plan);
    fired_.assign(plan_.size(), 0);
    timeout_ = timeout;
    armed_.store(!plan_.empty(), std::memory_order_release);
  }

  std::chrono::nanoseconds timeout() const { return timeout_; }
  bool has_timeout() const { return timeout_.count() > 0; }

  bool failure_active() const {
    return active_.load(std::memory_order_acquire);
  }

  std::uint64_t recovery_epoch() const {
    return recovery_epoch_.load(std::memory_order_acquire);
  }

  // Throws the active failure (if any) as a CommError. Every collective
  // entry and every barrier-wait wake calls this, which is what turns one
  // declared failure into a CommError on all ranks.
  void check(const char* where) {
    if (!failure_active()) return;
    std::unique_lock<std::mutex> lk(mu_);
    throw CommError(info_.kind, info_.rank, info_.superstep,
                    where != nullptr ? where : info_where_);
  }

  // First declaration wins; later ones (other ranks detecting the same
  // stall) are dropped so the reported origin is stable per failure.
  void declare(FaultKind kind, int origin_rank, std::uint64_t superstep,
               const char* where) {
    {
      std::unique_lock<std::mutex> lk(mu_);
      if (active_.load(std::memory_order_relaxed)) return;
      info_ = {kind, origin_rank, superstep, 0};
      info_where_ = where;
      active_.store(true, std::memory_order_release);
    }
    obs::fault_mark("fault.declared", 0, superstep);
    cv_.notify_all();
  }

  // Called by the runtime when a rank's body exits with a CommError: the
  // rank will never reach recover(), so waiters must not hold out for it.
  void mark_rank_dead(int rank) {
    declare(FaultKind::kRankAbort, rank, 0, "rank exit");
    {
      std::unique_lock<std::mutex> lk(mu_);
      ++dead_ranks_;
    }
    cv_.notify_all();
  }

  // The collective-entry hook: fires any due plan events for this rank,
  // then surfaces an active failure. Cheap when disarmed (two atomic loads).
  void on_collective(const char* where, int global_rank,
                     std::uint64_t superstep) {
    if (armed_.load(std::memory_order_relaxed)) {
      fire_due_events(where, global_rank, superstep);
    }
    check(where);
  }

  // Recovery rendezvous: collective over ALL ranks of the runtime. Once
  // every rank arrives the failure is cleared and the recovery epoch bumps,
  // which re-arms the (abandoned) barrier state of every group. Throws if a
  // rank died (its body exited) or the rendezvous itself times out —
  // recovery is then impossible and the run unwinds everywhere.
  void recover(int global_rank) {
    std::unique_lock<std::mutex> lk(mu_);
    if (!active_.load(std::memory_order_relaxed)) return;  // already recovered
    ++recover_count_;
    const std::uint64_t gen = recover_gen_;
    if (recover_count_ == nranks_) {
      recover_count_ = 0;
      ++recover_gen_;
      recovery_epoch_.fetch_add(1, std::memory_order_release);
      active_.store(false, std::memory_order_release);
      lk.unlock();
      cv_.notify_all();
      obs::fault_mark("fault.recovered", 0, 0);
      return;
    }
    const auto deadline = std::chrono::steady_clock::now() + recover_timeout();
    while (recover_gen_ == gen) {
      if (dead_ranks_ > 0) {
        throw CommError(FaultKind::kRankAbort, info_.rank, info_.superstep,
                        "recover: a rank died");
      }
      if (cv_.wait_until(lk, deadline) == std::cv_status::timeout &&
          recover_gen_ == gen) {
        throw CommError(FaultKind::kCollectiveTimeout, global_rank, 0,
                        "recover: rendezvous timed out");
      }
    }
  }

 private:
  std::chrono::nanoseconds recover_timeout() const {
    // Always finite: an unrecoverable cluster must fail, not hang. 4x the
    // collective timeout leaves room for slow (sanitized) unwinding.
    const auto floor = std::chrono::seconds(2);
    return has_timeout() ? std::max<std::chrono::nanoseconds>(4 * timeout_, floor)
                         : std::chrono::nanoseconds(std::chrono::seconds(10));
  }

  void fire_due_events(const char* where, int global_rank,
                       std::uint64_t superstep) {
    // Scan outside the per-event actions: plans are tiny (a handful of
    // events), and firing is once-per-event, so the lock cost is negligible
    // next to the collective itself.
    for (std::size_t i = 0; i < plan_.size(); ++i) {
      const FaultEvent& ev = plan_.event(i);
      if (ev.rank != global_rank || superstep < ev.superstep) continue;
      {
        std::unique_lock<std::mutex> lk(mu_);
        if (fired_[i]) continue;
        fired_[i] = 1;
      }
      switch (ev.kind) {
        case FaultKind::kStragglerDelay:
          obs::fault_mark("fault.delay", ev.delay_us, superstep);
          std::this_thread::sleep_for(std::chrono::microseconds(ev.delay_us));
          break;
        case FaultKind::kRankAbort:
          obs::fault_mark("fault.abort", 0, superstep);
          declare(FaultKind::kRankAbort, global_rank, superstep, where);
          check(where);  // throws for this rank too
          break;
        case FaultKind::kCollectiveTimeout: {
          obs::fault_mark("fault.timeout", 0, superstep);
          // Stall until a peer's barrier deadline declares the failure; if
          // no finite timeout is configured (or peers are all stalled too),
          // self-declare after our own grace period so nothing hangs.
          const auto grace =
              has_timeout() ? 2 * timeout_
                            : std::chrono::nanoseconds(std::chrono::seconds(1));
          const auto deadline = std::chrono::steady_clock::now() + grace;
          {
            std::unique_lock<std::mutex> lk(mu_);
            cv_.wait_until(lk, deadline, [&] {
              return active_.load(std::memory_order_relaxed);
            });
          }
          declare(FaultKind::kCollectiveTimeout, global_rank, superstep, where);
          check(where);  // throws
          break;
        }
      }
    }
  }

  const int nranks_;
  FaultPlan plan_;
  std::vector<char> fired_;  // one-shot flags, parallel to plan_.events()
  std::chrono::nanoseconds timeout_{0};  // 0 = wait forever (healthy default)
  std::atomic<bool> armed_{false};       // plan installed and non-empty

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::atomic<bool> active_{false};  // a failure is declared and unrecovered
  FaultEvent info_;                  // kind/rank/superstep of the declaration
  const char* info_where_ = "?";
  int dead_ranks_ = 0;
  int recover_count_ = 0;
  std::uint64_t recover_gen_ = 0;
  std::atomic<std::uint64_t> recovery_epoch_{0};
};

}  // namespace agnn::comm
