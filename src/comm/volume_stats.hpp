// Per-rank communication accounting for the simulated cluster.
//
// The reproduction substitutes the paper's MPI/Piz Daint testbed with an
// in-process SPMD runtime; what makes the substitution honest is that every
// collective and one-sided operation charges the participating ranks the
// number of bytes a bandwidth-optimal MPI implementation would move, and
// counts BSP supersteps. The figures are then reported in terms of
// (a) measured per-rank compute time (thread CPU time, immune to the host
//     being a single core), and
// (b) modeled communication time from the alpha-beta cost model.
#pragma once

#include <atomic>
#include <cstdint>
#include <ctime>

namespace agnn::comm {

struct VolumeStats {
  std::atomic<std::uint64_t> bytes_sent{0};
  std::atomic<std::uint64_t> messages{0};
  std::atomic<std::uint64_t> supersteps{0};
  std::atomic<std::uint64_t> compute_ns{0};
  // Wall time this rank spent blocked in barrier waits (straggler signal:
  // a healthy rank waiting on a slow peer accumulates wait, not compute).
  std::atomic<std::uint64_t> wait_ns{0};

  void charge(std::uint64_t bytes, std::uint64_t msgs, std::uint64_t steps) {
    bytes_sent.fetch_add(bytes, std::memory_order_relaxed);
    messages.fetch_add(msgs, std::memory_order_relaxed);
    supersteps.fetch_add(steps, std::memory_order_relaxed);
  }

  void reset() {
    bytes_sent.store(0);
    messages.store(0);
    supersteps.store(0);
    compute_ns.store(0);
    wait_ns.store(0);
  }
};

// Plain-value snapshot (VolumeStats itself is non-copyable due to atomics).
struct VolumeSnapshot {
  std::uint64_t bytes_sent = 0;
  std::uint64_t messages = 0;
  std::uint64_t supersteps = 0;
  double compute_seconds = 0.0;
  double wait_seconds = 0.0;
};

// Live-path snapshot. The four fields are loaded one by one with relaxed
// order while the owning rank (or, for Window gets, a peer) may still be
// charging, so the result can *tear across fields*: bytes from after a
// charge paired with messages from before it. Each individual field is
// still a valid past value — fine for progress displays and monitoring,
// not for assertions. For exact numbers use snapshot_quiesced() below.
inline VolumeSnapshot snapshot(const VolumeStats& s) {
  return {s.bytes_sent.load(std::memory_order_relaxed),
          s.messages.load(std::memory_order_relaxed),
          s.supersteps.load(std::memory_order_relaxed),
          static_cast<double>(s.compute_ns.load(std::memory_order_relaxed)) *
              1e-9,
          static_cast<double>(s.wait_ns.load(std::memory_order_relaxed)) *
              1e-9};
}

// Quiesced snapshot: cross-field consistent *provided the caller has
// synchronized with every charging thread* — after a Communicator barrier,
// or after SpmdRuntime joined its rank threads. The acquire loads pair with
// the release/seq-cst edges of that synchronization (barrier arrive/wait,
// thread join), making all charges sequenced-before it visible; no charge
// can be concurrent, so the fields cannot tear. Asserting code (tests,
// end-of-run reports) must use this form.
inline VolumeSnapshot snapshot_quiesced(const VolumeStats& s) {
  return {s.bytes_sent.load(std::memory_order_acquire),
          s.messages.load(std::memory_order_acquire),
          s.supersteps.load(std::memory_order_acquire),
          static_cast<double>(s.compute_ns.load(std::memory_order_acquire)) *
              1e-9,
          static_cast<double>(s.wait_ns.load(std::memory_order_acquire)) *
              1e-9};
}

// Thread CPU time of the calling thread, in nanoseconds. Unlike wall time,
// this is unaffected by how many simulated ranks share the physical cores.
inline std::uint64_t thread_cpu_ns() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ULL +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

// RAII region that attributes the enclosed thread CPU time to a rank's
// compute budget.
class ComputeRegion {
 public:
  explicit ComputeRegion(VolumeStats& stats)
      : stats_(stats), start_(thread_cpu_ns()) {}
  ~ComputeRegion() {
    stats_.compute_ns.fetch_add(thread_cpu_ns() - start_,
                                std::memory_order_relaxed);
  }
  ComputeRegion(const ComputeRegion&) = delete;
  ComputeRegion& operator=(const ComputeRegion&) = delete;

 private:
  VolumeStats& stats_;
  std::uint64_t start_;
};

}  // namespace agnn::comm
