// The simulated-cluster SPMD runtime.
//
// `SpmdRuntime::run(p, body)` executes `body(Communicator&)` on p ranks,
// each a thread, sharing nothing except through the Communicator — the same
// discipline as an MPI program. The Communicator provides the collectives
// the paper's distribution scheme needs (barrier, broadcast, reduce,
// allreduce, allgatherv, one-sided windows) plus `split` for the row/column
// sub-communicators of the 2D process grid.
//
// Volume accounting convention (per rank, in bytes; w = payload size,
// g = group size), matching the BSP accounting of the paper's Section 7 —
// bandwidth-optimal algorithms, tree-depth supersteps:
//
//   broadcast    sent w,          ceil(log2 g) supersteps
//   reduce       sent w,          ceil(log2 g) supersteps
//   allreduce    sent 2w,         2 ceil(log2 g) supersteps
//   allgatherv   sent (total-own),ceil(log2 g) supersteps   (ring volume)
//   window get   owner sent w,    1 superstep per exchange phase
//
// Data movement itself is implemented in whatever way is simplest (shared
// staging pointers + barriers); only the *accounting* models the network.
//
// Failure semantics (see comm/fault_injection.hpp and DESIGN.md §10): every
// collective entry is a fault-injection point, and every barrier is checked —
// a declared failure (injected abort, tripped timeout, or a rank dying with
// CommError) surfaces as a structured CommError on EVERY rank instead of a
// deadlock. `Communicator::recover()` is the all-ranks rendezvous that
// clears the failure so a checkpoint-restore loop can retry.
#pragma once

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <exception>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "comm/fault_injection.hpp"
#include "comm/volume_stats.hpp"
#include "obs/obs_scope.hpp"
#include "tensor/common.hpp"

namespace agnn::comm {

namespace detail {

inline std::uint64_t ceil_log2(std::uint64_t x) {
  std::uint64_t r = 0;
  std::uint64_t v = 1;
  while (v < x) {
    v <<= 1;
    ++r;
  }
  return r;
}

// Shared state of one communicator group. Ranks are 0..size-1 within the
// group; `global` maps to the runtime-wide rank ids used for stats.
struct GroupContext {
  explicit GroupContext(int size_, std::vector<int> global_,
                        std::vector<VolumeStats>* stats_,
                        FaultState* faults_ = nullptr)
      : size(size_),
        global(std::move(global_)),
        stats(stats_),
        faults(faults_),
        slots(static_cast<std::size_t>(size_), nullptr),
        sizes(static_cast<std::size_t>(size_), 0),
        split_color(static_cast<std::size_t>(size_), 0),
        split_key(static_cast<std::size_t>(size_), 0),
        subgroup(static_cast<std::size_t>(size_)),
        pending(static_cast<std::size_t>(size_), 0) {}

  int size;
  std::vector<int> global;            // group rank -> global rank
  std::vector<VolumeStats>* stats;    // indexed by global rank
  FaultState* faults;                 // runtime-wide; shared by all groups
  std::vector<const void*> slots;     // per-rank staging pointer
  std::vector<std::size_t> sizes;     // per-rank staging payload size
  // Collective-owned accumulator, written by rank 0 between barriers. Owned
  // by the context (not a raw new/delete pair inside the collective) so an
  // assertion throw mid-collective cannot leak it, and reused across calls
  // so steady-state allreduces allocate nothing after warm-up.
  std::vector<unsigned char> scratch;
  std::vector<int> split_color;
  std::vector<int> split_key;
  std::vector<std::shared_ptr<GroupContext>> subgroup;  // per-rank result of split
  std::vector<int> subrank;           // per-rank rank within its subgroup
  // Per-rank "async collective in flight" flag. Each rank reads and writes
  // ONLY its own entry (no synchronization needed); it guards against
  // starting a second collective on a group whose staging slots are still
  // pinned by an unwaited ibroadcast/iallreduce.
  std::vector<char> pending;

  // Checked barrier replacing std::barrier: identical rendezvous in the
  // healthy case, plus failure propagation and an optional deadline. The
  // outcome is uniform per generation — once the last member arrives and
  // the generation advances, every member returns success (the wake loop
  // checks the generation *before* the failure flag); if any member throws
  // at entry or while waiting, the generation never advances and every
  // other member unwinds too (via the failure flag or the deadline). The
  // recovery-epoch tag lazily resets abandoned arrival counts after
  // FaultState::recover(), when no thread can be inside a wait.
  void barrier_wait(int global_rank, const char* where) {
    std::unique_lock<std::mutex> lk(bar_mu);
    if (faults != nullptr) {
      const std::uint64_t re = faults->recovery_epoch();
      if (bar_epoch != re) {
        bar_epoch = re;
        bar_count = 0;
      }
      faults->check(where);
    }
    const std::uint64_t gen = bar_gen;
    if (++bar_count == size) {
      bar_count = 0;
      ++bar_gen;
      lk.unlock();
      bar_cv.notify_all();
      return;
    }
    const bool finite = faults != nullptr && faults->has_timeout();
    const auto start = std::chrono::steady_clock::now();
    const auto deadline = start + (finite ? faults->timeout()
                                          : std::chrono::nanoseconds(0));
    auto charge_wait = [&] {
      const auto waited = std::chrono::steady_clock::now() - start;
      (*stats)[static_cast<std::size_t>(global_rank)].wait_ns.fetch_add(
          static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(waited)
                  .count()),
          std::memory_order_relaxed);
    };
    while (bar_gen == gen) {
      // Completion is cv-notified; the short poll bounds how long a waiter
      // can miss a failure declared without a notification reaching it.
      bar_cv.wait_for(lk, std::chrono::milliseconds(1));
      if (bar_gen != gen) break;  // completed: uniform success
      if (faults == nullptr) continue;
      if (faults->failure_active()) {
        charge_wait();
        faults->check(where);  // throws
      }
      if (finite && std::chrono::steady_clock::now() >= deadline) {
        charge_wait();
        lk.unlock();
        faults->declare(
            FaultKind::kCollectiveTimeout, global_rank,
            (*stats)[static_cast<std::size_t>(global_rank)].supersteps.load(
                std::memory_order_relaxed),
            where);
        faults->check(where);  // throws
      }
    }
    charge_wait();
  }

 private:
  std::mutex bar_mu;
  std::condition_variable bar_cv;
  int bar_count = 0;
  std::uint64_t bar_gen = 0;    // completed-generation counter
  std::uint64_t bar_epoch = 0;  // FaultState recovery epoch this state is for
};

}  // namespace detail

class Communicator {
 public:
  Communicator(std::shared_ptr<detail::GroupContext> ctx, int rank)
      : ctx_(std::move(ctx)), rank_(rank) {}

  int rank() const { return rank_; }
  int size() const { return ctx_->size; }
  int global_rank() const { return ctx_->global[static_cast<std::size_t>(rank_)]; }

  VolumeStats& stats() {
    return (*ctx_->stats)[static_cast<std::size_t>(global_rank())];
  }

  void barrier() {
    fault_point("barrier");
    ctx_->barrier_wait(global_rank(), "barrier");
  }

  // Recovery rendezvous after a caught CommError: collective over ALL ranks
  // of the runtime (whatever group this communicator is). Clears the active
  // failure and re-arms every group's barriers; throws CommError if the
  // cluster cannot recover (a rank died, or the rendezvous timed out).
  void recover() {
    AGNN_ASSERT(ctx_->faults != nullptr, "recover: no fault state installed");
    ctx_->faults->recover(global_rank());
  }

  // ---- broadcast -------------------------------------------------------
  template <typename T>
  void broadcast(std::span<T> buf, int root) {
    AGNN_COLLECTIVE_SCOPE("broadcast", buf.size_bytes());
    fault_point("broadcast");
    assert_no_pending("broadcast");
    AGNN_ASSERT(root >= 0 && root < size(), "broadcast: bad root");
    if (size() == 1) return;
    ctx_->sizes[static_cast<std::size_t>(rank_)] = buf.size();
    if (rank_ == root) ctx_->slots[static_cast<std::size_t>(root)] = buf.data();
    barrier();
    // A receiver larger than the root would read past the root's staging
    // buffer; every rank checks itself against the root's staged size.
    AGNN_ASSERT(ctx_->sizes[static_cast<std::size_t>(root)] == buf.size(),
                "broadcast: buffer size must match the root's");
    if (rank_ != root && !buf.empty()) {
      const auto* src =
          static_cast<const T*>(ctx_->slots[static_cast<std::size_t>(root)]);
      std::memcpy(buf.data(), src, buf.size_bytes());
    }
    barrier();
    charge_and_mark(buf.size_bytes(), 1,
                    detail::ceil_log2(static_cast<std::uint64_t>(size())));
  }

  // ---- reduce (sum) to root ---------------------------------------------
  template <typename T>
  void reduce_sum(std::span<T> buf, int root) {
    AGNN_COLLECTIVE_SCOPE("reduce_sum", buf.size_bytes());
    fault_point("reduce_sum");
    assert_no_pending("reduce_sum");
    AGNN_ASSERT(root >= 0 && root < size(), "reduce: bad root");
    if (size() == 1) return;
    ctx_->slots[static_cast<std::size_t>(rank_)] = buf.data();
    ctx_->sizes[static_cast<std::size_t>(rank_)] = buf.size();
    barrier();
    // Size agreement is asserted on *every* rank (against the root's staged
    // size) so the offending rank fails loudly, and re-checked by the root
    // before it dereferences any peer's staging pointer.
    AGNN_ASSERT(ctx_->sizes[static_cast<std::size_t>(root)] == buf.size(),
                "reduce: buffer size must match the root's");
    if (rank_ == root) {
      for (int r = 0; r < size(); ++r) {
        if (r == root) continue;
        AGNN_ASSERT(ctx_->sizes[static_cast<std::size_t>(r)] == buf.size(),
                    "reduce: buffer sizes must match");
        const auto* src = static_cast<const T*>(ctx_->slots[static_cast<std::size_t>(r)]);
        for (std::size_t i = 0; i < buf.size(); ++i) buf[i] += src[i];
      }
    }
    barrier();
    charge_and_mark(buf.size_bytes(), 1,
                    detail::ceil_log2(static_cast<std::uint64_t>(size())));
  }

  // ---- allreduce (sum) ----------------------------------------------------
  template <typename T>
  void allreduce_sum(std::span<T> buf) {
    AGNN_COLLECTIVE_SCOPE("allreduce_sum", 2 * buf.size_bytes());
    fault_point("allreduce_sum");
    assert_no_pending("allreduce_sum");
    if (size() == 1) return;
    ctx_->slots[static_cast<std::size_t>(rank_)] = buf.data();
    ctx_->sizes[static_cast<std::size_t>(rank_)] = buf.size();
    barrier();
    AGNN_ASSERT(ctx_->sizes[0] == buf.size(), "allreduce: buffer sizes must match");
    if (rank_ == 0) {
      ctx_->scratch.resize(buf.size_bytes());
      auto* acc = reinterpret_cast<T*>(ctx_->scratch.data());
      std::fill_n(acc, buf.size(), T(0));
      for (int r = 0; r < size(); ++r) {
        AGNN_ASSERT(ctx_->sizes[static_cast<std::size_t>(r)] == buf.size(),
                    "allreduce: buffer sizes must match");
        const auto* src = static_cast<const T*>(ctx_->slots[static_cast<std::size_t>(r)]);
        for (std::size_t i = 0; i < buf.size(); ++i) acc[i] += src[i];
      }
    }
    barrier();
    if (!buf.empty()) {
      std::memcpy(buf.data(), ctx_->scratch.data(), buf.size_bytes());
    }
    barrier();
    charge_and_mark(2 * buf.size_bytes(), 2,
                    2 * detail::ceil_log2(static_cast<std::uint64_t>(size())));
  }

  // ---- allreduce (max) ------------------------------------------------------
  template <typename T>
  void allreduce_max(std::span<T> buf) {
    AGNN_COLLECTIVE_SCOPE("allreduce_max", 2 * buf.size_bytes());
    fault_point("allreduce_max");
    assert_no_pending("allreduce_max");
    if (size() == 1) return;
    ctx_->slots[static_cast<std::size_t>(rank_)] = buf.data();
    ctx_->sizes[static_cast<std::size_t>(rank_)] = buf.size();
    barrier();
    AGNN_ASSERT(ctx_->sizes[0] == buf.size(), "allreduce_max: buffer sizes must match");
    if (rank_ == 0) {
      ctx_->scratch.resize(buf.size_bytes());
      auto* acc = reinterpret_cast<T*>(ctx_->scratch.data());
      std::copy_n(static_cast<const T*>(ctx_->slots[0]), buf.size(), acc);
      for (int r = 1; r < size(); ++r) {
        AGNN_ASSERT(ctx_->sizes[static_cast<std::size_t>(r)] == buf.size(),
                    "allreduce_max: buffer sizes must match");
        const auto* src = static_cast<const T*>(ctx_->slots[static_cast<std::size_t>(r)]);
        for (std::size_t i = 0; i < buf.size(); ++i) {
          if (src[i] > acc[i]) acc[i] = src[i];
        }
      }
    }
    barrier();
    if (!buf.empty()) {
      std::memcpy(buf.data(), ctx_->scratch.data(), buf.size_bytes());
    }
    barrier();
    charge_and_mark(2 * buf.size_bytes(), 2,
                    2 * detail::ceil_log2(static_cast<std::uint64_t>(size())));
  }

  // ---- allgatherv ---------------------------------------------------------
  // Gathers variable-size contributions; returns the concatenation in group
  // rank order. `offsets_out`, if non-null, receives each rank's offset.
  template <typename T>
  std::vector<T> allgatherv(std::span<const T> in,
                            std::vector<std::size_t>* offsets_out = nullptr) {
    AGNN_COLLECTIVE_SCOPE("allgatherv", in.size_bytes());
    fault_point("allgatherv");
    assert_no_pending("allgatherv");
    ctx_->slots[static_cast<std::size_t>(rank_)] = in.data();
    ctx_->sizes[static_cast<std::size_t>(rank_)] = in.size();
    barrier();
    std::size_t total = 0;
    std::vector<std::size_t> offsets(static_cast<std::size_t>(size()));
    for (int r = 0; r < size(); ++r) {
      offsets[static_cast<std::size_t>(r)] = total;
      total += ctx_->sizes[static_cast<std::size_t>(r)];
    }
    std::vector<T> out(total);
    for (int r = 0; r < size(); ++r) {
      const auto* src = static_cast<const T*>(ctx_->slots[static_cast<std::size_t>(r)]);
      const std::size_t cnt = ctx_->sizes[static_cast<std::size_t>(r)];
      if (cnt > 0) {
        std::memcpy(out.data() + offsets[static_cast<std::size_t>(r)], src,
                    cnt * sizeof(T));
      }
    }
    barrier();
    if (size() > 1) {
      charge_and_mark((total - in.size()) * sizeof(T),
                      static_cast<std::uint64_t>(size() - 1),
                      detail::ceil_log2(static_cast<std::uint64_t>(size())));
    }
    if (offsets_out) *offsets_out = std::move(offsets);
    return out;
  }

  // ---- one-sided window ---------------------------------------------------
  // Collectively expose a local buffer; then any rank may `get` slices of a
  // peer's buffer. The *owner* is charged the transferred bytes (it is the
  // sender). Must be closed collectively.
  template <typename T>
  class Window {
   public:
    Window(Communicator& c, std::span<const T> local) : c_(c) {
      c_.fault_point("window_expose");
      c_.assert_no_pending("window_expose");
      c_.ctx_->slots[static_cast<std::size_t>(c_.rank_)] = local.data();
      c_.ctx_->sizes[static_cast<std::size_t>(c_.rank_)] = local.size();
      c_.barrier();
    }
    // Unwinding past an open window must neither throw nor block: with a
    // failure active the close-barrier throws CommError, which is swallowed
    // here — this rank rethrows at its next collective anyway. Explicit
    // close() calls still propagate the error.
    ~Window() {
      try {
        close();
      } catch (...) {
      }
    }
    Window(const Window&) = delete;
    Window& operator=(const Window&) = delete;

    // Copy `out.size()` elements from `src_rank`'s exposed buffer starting
    // at `src_offset` (in elements).
    void get(std::span<T> out, int src_rank, std::size_t src_offset) {
      AGNN_COLLECTIVE_SCOPE("window_get",
                            src_rank == c_.rank_ ? 0 : out.size_bytes());
      AGNN_ASSERT(src_rank >= 0 && src_rank < c_.size(), "window get: bad rank");
      const std::size_t avail = c_.ctx_->sizes[static_cast<std::size_t>(src_rank)];
      AGNN_ASSERT(src_offset + out.size() <= avail, "window get: out of range");
      const auto* src =
          static_cast<const T*>(c_.ctx_->slots[static_cast<std::size_t>(src_rank)]);
      std::memcpy(out.data(), src + src_offset, out.size_bytes());
      if (src_rank != c_.rank_) {
        (*c_.ctx_->stats)[static_cast<std::size_t>(
                              c_.ctx_->global[static_cast<std::size_t>(src_rank)])]
            .charge(out.size_bytes(), 1, 0);
      }
    }

    void close() {
      if (closed_) return;
      closed_ = true;
      AGNN_COLLECTIVE_SCOPE("window_close", 0);
      c_.barrier();
      c_.charge_and_mark(0, 0, 1);  // the exchange phase is one superstep
    }

   private:
    Communicator& c_;
    bool closed_ = false;
  };

  template <typename T>
  Window<T> expose(std::span<const T> local) {
    return Window<T>(*this, local);
  }

  // ---- async collectives --------------------------------------------------
  // ibroadcast / iallreduce_sum split the blocking collective at its first
  // rendezvous: `start` stages this rank's buffer and passes the entry
  // barrier, then returns a handle; `wait()` performs the data movement, the
  // remaining barriers, and the volume/superstep charge of the blocking
  // form. The result and the accounting are therefore identical to the
  // blocking call by construction — the only difference is that the caller
  // may compute between start and wait, which the trace renders as kernel
  // spans nested inside the still-open collective span (the overlap
  // evidence the pipelined SUMMA engines rely on).
  //
  // Contract: the buffer is pinned from start until wait() returns — peers
  // read it through the staging slot during wait — and at most one async
  // collective per (group, rank) may be in flight (staging slots are a
  // single set per group; the `pending` flag asserts this).
  template <typename T>
  class Pending {
   public:
    Pending(Pending&& o) noexcept
        : c_(o.c_),
          op_(o.op_),
          buf_(o.buf_),
          root_(o.root_),
          done_(o.done_),
          span_name_(o.span_name_),
          start_ns_(o.start_ns_) {
      o.done_ = true;
      o.span_name_ = nullptr;
    }
    Pending& operator=(Pending&& o) noexcept {
      if (this != &o) {
        try {
          wait();
        } catch (...) {
        }
        c_ = o.c_;
        op_ = o.op_;
        buf_ = o.buf_;
        root_ = o.root_;
        done_ = o.done_;
        span_name_ = o.span_name_;
        start_ns_ = o.start_ns_;
        o.done_ = true;
        o.span_name_ = nullptr;
      }
      return *this;
    }
    Pending(const Pending&) = delete;
    Pending& operator=(const Pending&) = delete;

    // Like ~Window: unwinding past an unwaited handle must neither throw nor
    // deadlock — with a failure active the completion barrier throws
    // CommError, swallowed here; this rank rethrows at its next collective.
    ~Pending() {
      try {
        wait();
      } catch (...) {
      }
    }

    // Complete the collective: exactly the tail of the blocking form after
    // its first barrier. Idempotent.
    void wait() {
      if (done_) return;
      done_ = true;
      Communicator& c = *c_;
      c.ctx_->pending[static_cast<std::size_t>(c.rank_)] = 0;
      if (op_ == Op::kBroadcast) {
        AGNN_ASSERT(
            c.ctx_->sizes[static_cast<std::size_t>(root_)] == buf_.size(),
            "ibroadcast: buffer size must match the root's");
        if (c.rank_ != root_ && !buf_.empty()) {
          const auto* src = static_cast<const T*>(
              c.ctx_->slots[static_cast<std::size_t>(root_)]);
          std::memcpy(buf_.data(), src, buf_.size_bytes());
        }
        c.barrier();
        c.charge_and_mark(
            buf_.size_bytes(), 1,
            detail::ceil_log2(static_cast<std::uint64_t>(c.size())));
      } else {
        AGNN_ASSERT(c.ctx_->sizes[0] == buf_.size(),
                    "iallreduce_sum: buffer sizes must match");
        if (c.rank_ == 0) {
          c.ctx_->scratch.resize(buf_.size_bytes());
          auto* acc = reinterpret_cast<T*>(c.ctx_->scratch.data());
          std::fill_n(acc, buf_.size(), T(0));
          for (int r = 0; r < c.size(); ++r) {
            AGNN_ASSERT(
                c.ctx_->sizes[static_cast<std::size_t>(r)] == buf_.size(),
                "iallreduce_sum: buffer sizes must match");
            const auto* src = static_cast<const T*>(
                c.ctx_->slots[static_cast<std::size_t>(r)]);
            for (std::size_t i = 0; i < buf_.size(); ++i) acc[i] += src[i];
          }
        }
        c.barrier();
        if (!buf_.empty()) {
          std::memcpy(buf_.data(), c.ctx_->scratch.data(), buf_.size_bytes());
        }
        c.barrier();
        c.charge_and_mark(
            2 * buf_.size_bytes(), 2,
            2 * detail::ceil_log2(static_cast<std::uint64_t>(c.size())));
      }
      close_span();
    }

   private:
    friend class Communicator;
    enum class Op : std::uint8_t { kBroadcast, kAllreduceSum };

    // Trivial (single-rank) completed handle.
    Pending(Communicator& c, Op op) : c_(&c), op_(op), done_(true) {}

    Pending(Communicator& c, Op op, std::span<T> buf, int root,
            const char* span_name, std::uint64_t start_ns)
        : c_(&c),
          op_(op),
          buf_(buf),
          root_(root),
          span_name_(span_name),
          start_ns_(start_ns) {}

    // Closes the trace span and records the start→wait latency into the
    // async collective's histogram. Unlike the blocking collectives this is
    // an off-hot-path registry observe — the span already pays a barrier.
    void close_span() {
      if (span_name_ != nullptr) {
        obs::Tracer::instance().end(span_name_, obs::SpanCategory::kCollective);
        obs::MetricsRegistry::global().observe(
            std::string("comm.") + span_name_ + ".ns",
            obs::detail::now_ns() - start_ns_);
        span_name_ = nullptr;
      }
    }

    Communicator* c_;
    Op op_;
    std::span<T> buf_{};
    int root_ = 0;
    bool done_ = false;
    const char* span_name_ = nullptr;  // non-null iff the Begin was recorded
    std::uint64_t start_ns_ = 0;
  };

  // Start an asynchronous broadcast. Same staging, fault point, and (at
  // wait) accounting as `broadcast`.
  template <typename T>
  Pending<T> ibroadcast(std::span<T> buf, int root) {
    fault_point("ibroadcast");
    AGNN_ASSERT(root >= 0 && root < size(), "ibroadcast: bad root");
    assert_no_pending("ibroadcast");
    if (size() == 1) return Pending<T>(*this, Pending<T>::Op::kBroadcast);
    ctx_->sizes[static_cast<std::size_t>(rank_)] = buf.size();
    if (rank_ == root) ctx_->slots[static_cast<std::size_t>(root)] = buf.data();
    barrier();
    ctx_->pending[static_cast<std::size_t>(rank_)] = 1;
    const char* span = nullptr;
    std::uint64_t start_ns = 0;
    if (obs::Tracer::enabled() &&
        obs::Tracer::instance().begin("ibroadcast",
                                      obs::SpanCategory::kCollective,
                                      buf.size_bytes())) {
      span = "ibroadcast";
      obs::MetricsRegistry::global().observe("comm.ibroadcast.bytes",
                                             buf.size_bytes());
      start_ns = obs::detail::now_ns();
    }
    return Pending<T>(*this, Pending<T>::Op::kBroadcast, buf, root, span,
                      start_ns);
  }

  // Start an asynchronous allreduce(sum). Same staging, fault point, and
  // (at wait) accounting as `allreduce_sum`.
  template <typename T>
  Pending<T> iallreduce_sum(std::span<T> buf) {
    fault_point("iallreduce_sum");
    assert_no_pending("iallreduce_sum");
    if (size() == 1) return Pending<T>(*this, Pending<T>::Op::kAllreduceSum);
    ctx_->slots[static_cast<std::size_t>(rank_)] = buf.data();
    ctx_->sizes[static_cast<std::size_t>(rank_)] = buf.size();
    barrier();
    ctx_->pending[static_cast<std::size_t>(rank_)] = 1;
    const char* span = nullptr;
    std::uint64_t start_ns = 0;
    if (obs::Tracer::enabled() &&
        obs::Tracer::instance().begin("iallreduce_sum",
                                      obs::SpanCategory::kCollective,
                                      2 * buf.size_bytes())) {
      span = "iallreduce_sum";
      obs::MetricsRegistry::global().observe("comm.iallreduce_sum.bytes",
                                             2 * buf.size_bytes());
      start_ns = obs::detail::now_ns();
    }
    return Pending<T>(*this, Pending<T>::Op::kAllreduceSum, buf, 0, span,
                      start_ns);
  }

  // ---- split ---------------------------------------------------------------
  // Partition the group by color; within each color, ranks are ordered by
  // (key, old rank). Collective over the whole group.
  Communicator split(int color, int key);

 private:
  template <typename T>
  friend class Window;
  template <typename T>
  friend class Pending;

  // Starting any staging collective while an async one is in flight on the
  // same group would clobber the staging slots the pending op still reads;
  // each rank checks (and owns) only its own flag.
  void assert_no_pending(const char* what) {
    (void)what;
    AGNN_ASSERT(ctx_->pending[static_cast<std::size_t>(rank_)] == 0,
                "async collective still in flight on this group: wait() the "
                "handle before the next collective");
  }

  // The single fault-injection hook: every collective entry consults the
  // runtime's FaultState, which fires any due plan events for this rank
  // (straggler sleep, abort, stall) and surfaces an active failure as
  // CommError. Costs two atomic loads when no plan is installed.
  void fault_point(const char* where) {
    FaultState* st = ctx_->faults;
    if (st == nullptr) return;
    st->on_collective(where, global_rank(),
                      stats().supersteps.load(std::memory_order_relaxed));
  }

  // Charge the rank and emit a superstep instant carrying the charged
  // bytes, so a trace ties each boundary to its exact billed volume.
  void charge_and_mark(std::uint64_t bytes, std::uint64_t msgs,
                       std::uint64_t steps) {
    VolumeStats& s = stats();
    s.charge(bytes, msgs, steps);
    obs::superstep_mark(bytes,
                        s.supersteps.load(std::memory_order_relaxed));
  }

  std::shared_ptr<detail::GroupContext> ctx_;
  int rank_;
};

inline Communicator Communicator::split(int color, int key) {
  ctx_->split_color[static_cast<std::size_t>(rank_)] = color;
  ctx_->split_key[static_cast<std::size_t>(rank_)] = key;
  barrier();
  if (rank_ == 0) {
    ctx_->subrank.assign(static_cast<std::size_t>(size()), 0);
    std::map<int, std::vector<int>> groups;  // color -> group ranks
    for (int r = 0; r < size(); ++r) {
      groups[ctx_->split_color[static_cast<std::size_t>(r)]].push_back(r);
    }
    for (auto& [col, members] : groups) {
      std::stable_sort(members.begin(), members.end(), [&](int a, int b) {
        return ctx_->split_key[static_cast<std::size_t>(a)] <
               ctx_->split_key[static_cast<std::size_t>(b)];
      });
      std::vector<int> global;
      global.reserve(members.size());
      for (const int m : members) {
        global.push_back(ctx_->global[static_cast<std::size_t>(m)]);
      }
      auto sub = std::make_shared<detail::GroupContext>(
          static_cast<int>(members.size()), std::move(global), ctx_->stats,
          ctx_->faults);
      for (std::size_t i = 0; i < members.size(); ++i) {
        ctx_->subgroup[static_cast<std::size_t>(members[i])] = sub;
        ctx_->subrank[static_cast<std::size_t>(members[i])] = static_cast<int>(i);
      }
    }
  }
  barrier();
  Communicator sub(ctx_->subgroup[static_cast<std::size_t>(rank_)],
                   ctx_->subrank[static_cast<std::size_t>(rank_)]);
  barrier();  // everyone has picked up its handle before slots are reused
  return sub;
}

// Options for a fault-aware run. The default-constructed value means "no
// faults, no timeout" — byte-identical behavior to the plain overload,
// except that the plain overload additionally consults AGNN_FAULTS /
// AGNN_COMM_TIMEOUT_MS (so any existing program is chaos-able from the
// environment), while an explicit RunOptions is authoritative.
struct RunOptions {
  FaultPlan faults;
  // Barrier deadline per collective. <= 0 picks the default: 2s when a
  // fault plan is installed (so injected deadlocks fail fast), otherwise
  // no deadline (healthy runs never spuriously trip under load).
  std::chrono::milliseconds timeout{0};
};

// Executes an SPMD body on `nranks` simulated ranks and returns the final
// per-rank volume/compute snapshots.
class SpmdRuntime {
 public:
  using Body = std::function<void(Communicator&)>;

  static std::vector<VolumeSnapshot> run(int nranks, const Body& body) {
    RunOptions opts;
    opts.faults = FaultPlan::from_env();
    if (const char* v = std::getenv("AGNN_COMM_TIMEOUT_MS")) {
      const long ms = std::atol(v);
      if (ms > 0) opts.timeout = std::chrono::milliseconds(ms);
    }
    return run(nranks, opts, body);
  }

  static std::vector<VolumeSnapshot> run(int nranks, const RunOptions& opts,
                                         const Body& body) {
    AGNN_ASSERT(nranks >= 1, "need at least one rank");
    auto stats = std::make_unique<std::vector<VolumeStats>>(
        static_cast<std::size_t>(nranks));
    auto faults = std::make_unique<FaultState>(nranks);
    const auto timeout =
        opts.timeout.count() > 0
            ? std::chrono::nanoseconds(opts.timeout)
            : (opts.faults.empty() ? std::chrono::nanoseconds(0)
                                   : std::chrono::nanoseconds(
                                         std::chrono::seconds(2)));
    faults->install(opts.faults, timeout);
    std::vector<int> global(static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r) global[static_cast<std::size_t>(r)] = r;
    auto ctx = std::make_shared<detail::GroupContext>(nranks, std::move(global),
                                                      stats.get(), faults.get());

    std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nranks));
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(nranks - 1));
    auto rank_main = [&](int r) {
      try {
        // Tracing: this thread's events render on the rank's track.
        obs::RankBinding trace_rank(r);
        Communicator c(ctx, r);
        body(c);
      } catch (const CommError&) {
        // A structured comm failure is survivable at the runtime level: the
        // rank is marked dead (so peers blocked in barriers or in recover()
        // unwind instead of waiting for it) and the error is rethrown to
        // the caller after the join.
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        faults->mark_rank_dead(r);
      } catch (const std::exception& e) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        // Anything else is a programming error (assertion failure); there
        // is no recovery story for it, so abort loudly.
        std::fprintf(stderr, "fatal: simulated rank %d threw an exception: %s\n",
                     r, e.what());
        std::terminate();
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        std::fprintf(stderr, "fatal: simulated rank %d threw an exception\n", r);
        std::terminate();
      }
    };
    for (int r = 1; r < nranks; ++r) threads.emplace_back(rank_main, r);
    rank_main(0);
    for (auto& t : threads) t.join();
    for (auto& e : errors) {
      if (e) std::rethrow_exception(e);
    }
    std::vector<VolumeSnapshot> out;
    out.reserve(static_cast<std::size_t>(nranks));
    // All rank threads are joined: the counters are quiescent, so the
    // cross-field-consistent snapshot is both available and required here.
    for (auto& s : *stats) out.push_back(snapshot_quiesced(s));
    return out;
  }
};

// Collectively zero the volume/compute counters of every rank. Used to
// exclude one-time setup (data distribution, partitioning metadata) from
// per-layer measurements — the paper's accounting likewise assumes the data
// is already distributed.
inline void reset_all_stats(Communicator& c) {
  c.barrier();
  c.stats().reset();
  c.barrier();
}

// Aggregate helpers over per-rank snapshots.
inline std::uint64_t max_bytes_sent(const std::vector<VolumeSnapshot>& s) {
  std::uint64_t m = 0;
  for (const auto& x : s) m = std::max(m, x.bytes_sent);
  return m;
}
inline std::uint64_t total_bytes_sent(const std::vector<VolumeSnapshot>& s) {
  std::uint64_t t = 0;
  for (const auto& x : s) t += x.bytes_sent;
  return t;
}
inline double max_compute_seconds(const std::vector<VolumeSnapshot>& s) {
  double m = 0;
  for (const auto& x : s) m = std::max(m, x.compute_seconds);
  return m;
}
inline std::uint64_t max_supersteps(const std::vector<VolumeSnapshot>& s) {
  std::uint64_t m = 0;
  for (const auto& x : s) m = std::max(m, x.supersteps);
  return m;
}

}  // namespace agnn::comm
