// A naive 1D A-stationary distributed engine — the design-choice ablation
// for Section 6.3's adoption of the 1.5D scheme.
//
// Rows of A (and of every per-edge sparse matrix) are 1D block-partitioned;
// computing a rank's Psi / aggregation rows requires the FULL feature
// matrix, so every layer allgathers H (n*k words per rank) and the backward
// pass additionally allreduces the column-side gradient contributions
// (2*n*k words). Per layer, per rank:
//
//        1D global:   Theta(n k)
//        1.5D global:  O(n k / sqrt(p))     (dist_engine.hpp)
//
// which is exactly the gap the 1.5D scheme buys. The engines compute
// identical results (tests assert equality), so bench_comm_volume can
// compare them purely on data movement. Step plumbing (layer loop, loss,
// gradient chaining) comes from the shared EngineCoreBase.
#pragma once

#include <vector>

#include "dist/engine_core.hpp"

namespace agnn::dist {

template <typename T>
struct Dist1dLayerCache {
  DenseMatrix<T> h_full;      // the allgathered H^l (every rank)
  DenseMatrix<T> z_own;       // Z^l, owned rows
  CsrMatrix<T> psi_loc;       // Psi rows
  CsrMatrix<T> cos_loc;       // AGNN cosine rows
  CsrMatrix<T> scores_pre_loc;
  DenseMatrix<T> hp_full;     // GAT: H' = H W (full, computed redundantly)
  DenseMatrix<T> ph_own;      // pre-W aggregate rows; GIN: X rows
  DenseMatrix<T> mlp_pre_own;
  DenseMatrix<T> mlp_hidden_own;
};

template <typename T>
class Dist1dGlobalEngine
    : public EngineCoreBase<T, Dist1dLayerCache<T>, Dist1dGlobalEngine<T>> {
  using Base = EngineCoreBase<T, Dist1dLayerCache<T>, Dist1dGlobalEngine<T>>;
  friend Base;

 public:
  using LayerCache = Dist1dLayerCache<T>;
  static constexpr const char* kForwardSpan = "dist1d.forward";
  static constexpr const char* kTrainSpan = "dist1d.train_step";

  Dist1dGlobalEngine(comm::Communicator& world, const CsrMatrix<T>& a_global,
                     GnnModel<T>& model)
      : Base(world, a_global.rows(), model),
        p_(world.size()),
        vr_(block_range(this->n_, p_, world.rank())) {
    a_loc_ = a_global.block(vr_.begin, vr_.end, 0, this->n_);
  }

  const BlockRange& owned_block() const { return vr_; }

  // Owned row blocks partition [0, n) in rank order, so the allgatherv
  // concatenation IS the global matrix.
  DenseMatrix<T> gather_output(const DenseMatrix<T>& h_own) {
    DenseMatrix<T> full;
    allgather_rows_into(h_own, full);
    return full;
  }

 private:
  // ---- engine-core policy hooks ---------------------------------------------

  BlockRange input_block() const { return vr_; }
  // Row blocks are disjoint: every rank's loss contribution counts.
  bool counts_in_loss() const { return true; }
  const DenseMatrix<T>& cached_z(const Dist1dLayerCache<T>& c) const {
    return c.z_own;
  }

  // Allgather owned row blocks into the full matrix (in rank order — the
  // n*k-per-rank cost that defines this scheme), into caller storage.
  void allgather_rows_into(const DenseMatrix<T>& own, DenseMatrix<T>& full) {
    const std::vector<T> flat =
        this->world_.allgatherv(std::span<const T>(own.flat()));
    AGNN_ASSERT(static_cast<index_t>(flat.size()) == this->n_ * own.cols(),
                "1d allgather: unexpected size");
    full.resize(this->n_, own.cols());
    std::copy(flat.begin(), flat.end(), full.data());
  }

  DenseMatrix<T> layer_forward(const Layer<T>& layer, const DenseMatrix<T>& h_own,
                               Dist1dLayerCache<T>* cache) {
    AGNN_TRACE_SCOPE("dist1d.layer_forward", kPhase);
    typename Base::LayerParams params = this->broadcast_params(layer);
    const DenseMatrix<T>& w = params.w;
    const std::vector<T>& a = params.a;
    const DenseMatrix<T>& w2 = params.w2;

    // All intermediates live in the cache slots (or a throwaway scratch in
    // inference mode), overwritten in place across steps.
    Dist1dLayerCache<T> scratch;
    Dist1dLayerCache<T>& c = cache ? *cache : scratch;
    allgather_rows_into(h_own, c.h_full);

    comm::ComputeRegion t(this->world_.stats());
    switch (layer.kind()) {
      case ModelKind::kGCN: {
        spmm(a_loc_, c.h_full, c.ph_own);
        matmul(c.ph_own, w, c.z_own);
        c.psi_loc = a_loc_;
        break;
      }
      case ModelKind::kGIN: {
        spmm(a_loc_, c.h_full, c.ph_own);
        axpy(T(1) + layer.gin_epsilon(), h_own, c.ph_own);
        matmul(c.ph_own, w, c.mlp_pre_own);
        activate(layer.mlp_activation(), c.mlp_pre_own, c.mlp_hidden_own, T(0.01));
        matmul(c.mlp_hidden_own, w2, c.z_own);
        c.psi_loc = a_loc_;
        break;
      }
      case ModelKind::kVA: {
        sddmm(a_loc_, h_own, c.h_full, c.psi_loc);
        spmm(c.psi_loc, c.h_full, c.ph_own);
        matmul(c.ph_own, w, c.z_own);
        break;
      }
      case ModelKind::kAGNN: {
        sddmm_unweighted(a_loc_, h_own, c.h_full, c.cos_loc);
        auto inv_r = this->ws_.acquire_vec(vr_.size());
        auto inv_c = this->ws_.acquire_vec(this->n_);
        inv_row_norms(h_own, *inv_r);
        inv_row_norms(c.h_full, *inv_c);
        scale_rows_cols<T>(c.cos_loc, inv_r.cspan(), inv_c.cspan(), c.cos_loc);
        hadamard_same_pattern(c.cos_loc, a_loc_, c.psi_loc);
        spmm(c.psi_loc, c.h_full, c.ph_own);
        matmul(c.ph_own, w, c.z_own);
        break;
      }
      case ModelKind::kGAT: {
        matmul(c.h_full, w, c.hp_full);  // redundant full projection per rank
        const index_t k_out = layer.out_features();
        const std::span<const T> a_all(a);
        const auto a1 = a_all.subspan(0, static_cast<std::size_t>(k_out));
        const auto a2 = a_all.subspan(static_cast<std::size_t>(k_out));
        auto s1 = this->ws_.acquire_vec(vr_.size());
        auto s2 = this->ws_.acquire_vec(this->n_);
        for (index_t i = 0; i < vr_.size(); ++i) {  // s1 needs owned rows only
          const T* r = c.hp_full.data() + (vr_.begin + i) * k_out;
          T acc = T(0);
          for (index_t g = 0; g < k_out; ++g) acc += r[g] * a1[static_cast<std::size_t>(g)];
          (*s1)[static_cast<std::size_t>(i)] = acc;
        }
        matvec(c.hp_full, a2, *s2);
        psi_gat<T>(a_loc_, s1.cspan(), s2.cspan(), layer.attention_slope(),
                   c.scores_pre_loc, c.psi_loc);
        spmm(c.psi_loc, c.hp_full, c.z_own);
        break;
      }
    }
    return activate(layer.activation(), c.z_own, T(0.01));
  }

  DenseMatrix<T> layer_backward(const Layer<T>& layer,
                                const Dist1dLayerCache<T>& cache,
                                const DenseMatrix<T>& g_own, LayerGrads<T>& grads) {
    AGNN_TRACE_SCOPE("dist1d.layer_backward", kPhase);
    const DenseMatrix<T>& w = layer.weights();
    const index_t own = vr_.size();
    const index_t k_in = layer.in_features();
    const index_t n = this->n_;
    DenseMatrix<T> h_own = cache.h_full.slice_rows(vr_.begin, vr_.end);

    // Column-side gradient contributions live on all n rows; 1D has no
    // column partition, so they are allreduced as a full n x k matrix —
    // the 2 n k term of this scheme's volume.
    DenseMatrix<T> gamma_full(n, k_in, T(0));
    switch (layer.kind()) {
      case ModelKind::kGCN: {
        comm::ComputeRegion t(this->world_.stats());
        grads.d_w = matmul_tn(cache.ph_own, g_own);
        const DenseMatrix<T> m_own = matmul_nt(g_own, w);
        gamma_full = DenseMatrix<T>(n, k_in, T(0));
        spmm_accumulate_rows(a_loc_.transposed(), m_own, gamma_full);
        break;
      }
      case ModelKind::kGIN: {
        comm::ComputeRegion t(this->world_.stats());
        grads.d_w2 = matmul_tn(cache.mlp_hidden_own, g_own);
        const DenseMatrix<T> d_hidden = matmul_nt(g_own, layer.weights2());
        const DenseMatrix<T> d_pre = activation_backward(
            layer.mlp_activation(), cache.mlp_pre_own, d_hidden, T(0.01));
        grads.d_w = matmul_tn(cache.ph_own, d_pre);
        const DenseMatrix<T> d_x = matmul_nt(d_pre, w);
        spmm_accumulate_rows(a_loc_.transposed(), d_x, gamma_full);
        const T c = T(1) + layer.gin_epsilon();
        for (index_t i = 0; i < own; ++i) {
          T* dst = gamma_full.data() + (vr_.begin + i) * k_in;
          const T* src = d_x.data() + i * k_in;
          for (index_t j = 0; j < k_in; ++j) dst[j] += c * src[j];
        }
        break;
      }
      case ModelKind::kVA: {
        comm::ComputeRegion t(this->world_.stats());
        grads.d_w = matmul_tn(cache.ph_own, g_own);
        const DenseMatrix<T> m_own = matmul_nt(g_own, w);
        const CsrMatrix<T> n_loc = sddmm(a_loc_, m_own, cache.h_full);
        spmm_accumulate_rows(n_loc.transposed(), h_own, gamma_full);
        spmm_accumulate_rows(cache.psi_loc.transposed(), m_own, gamma_full);
        const DenseMatrix<T> nh_own = spmm(n_loc, cache.h_full);
        for (index_t i = 0; i < own; ++i) {
          T* dst = gamma_full.data() + (vr_.begin + i) * k_in;
          const T* src = nh_own.data() + i * k_in;
          for (index_t j = 0; j < k_in; ++j) dst[j] += src[j];
        }
        break;
      }
      case ModelKind::kAGNN: {
        comm::ComputeRegion t(this->world_.stats());
        grads.d_w = matmul_tn(cache.ph_own, g_own);
        const DenseMatrix<T> m_own = matmul_nt(g_own, w);
        const CsrMatrix<T> d_loc = sddmm(a_loc_, m_own, cache.h_full);
        const CsrMatrix<T> dc = hadamard_same_pattern(d_loc, cache.cos_loc);
        const std::vector<T> rs_own = sparse_row_sums(dc);
        const std::vector<T> cs_full = sparse_col_sums(dc);
        const std::vector<T> norms = row_l2_norms(cache.h_full);
        const DenseMatrix<T> hhat = unit_rows(cache.h_full);
        const DenseMatrix<T> hhat_own = hhat.slice_rows(vr_.begin, vr_.end);
        DenseMatrix<T> col_part(n, k_in, T(0));
        spmm_accumulate_rows(d_loc.transposed(), hhat_own, col_part);
        for (index_t j = 0; j < n; ++j) {
          const T nj = norms[static_cast<std::size_t>(j)];
          T* row = col_part.data() + j * k_in;
          if (nj <= T(0)) {
            for (index_t g = 0; g < k_in; ++g) row[g] = T(0);
            continue;
          }
          const T coef = cs_full[static_cast<std::size_t>(j)];
          const T* hh = hhat.data() + j * k_in;
          const T inv = T(1) / nj;
          for (index_t g = 0; g < k_in; ++g) row[g] = (row[g] - coef * hh[g]) * inv;
        }
        axpy(T(1), col_part, gamma_full);
        spmm_accumulate_rows(cache.psi_loc.transposed(), m_own, gamma_full);
        const DenseMatrix<T> dh_own = spmm(d_loc, hhat);
        for (index_t i = 0; i < own; ++i) {
          const T ni = norms[static_cast<std::size_t>(vr_.begin + i)];
          if (ni <= T(0)) continue;
          T* dst = gamma_full.data() + (vr_.begin + i) * k_in;
          const T* src = dh_own.data() + i * k_in;
          const T coef = rs_own[static_cast<std::size_t>(i)];
          const T* hh = hhat.data() + (vr_.begin + i) * k_in;
          const T inv = T(1) / ni;
          for (index_t g = 0; g < k_in; ++g) dst[g] += (src[g] - coef * hh[g]) * inv;
        }
        break;
      }
      case ModelKind::kGAT: {
        comm::ComputeRegion t(this->world_.stats());
        const index_t k_out = layer.out_features();
        const std::span<const T> a_all(layer.attention_params());
        const auto a1 = a_all.subspan(0, static_cast<std::size_t>(k_out));
        const auto a2 = a_all.subspan(static_cast<std::size_t>(k_out));
        const CsrMatrix<T> d_psi =
            sddmm(cache.psi_loc.with_values(T(1)), g_own, cache.hp_full);
        const CsrMatrix<T> d_e = row_softmax_backward(cache.psi_loc, d_psi);
        CsrMatrix<T> d_c = d_e;
        {
          auto v = d_c.vals_mutable();
          const auto pre = cache.scores_pre_loc.vals();
          const T slope = layer.attention_slope();
          for (index_t e = 0; e < d_c.nnz(); ++e) {
            const T ce = pre[static_cast<std::size_t>(e)];
            v[static_cast<std::size_t>(e)] *=
                a_loc_.val_at(e) * (ce > T(0) ? T(1) : slope);
          }
        }
        const std::vector<T> ds1_own = sparse_row_sums(d_c);
        const std::vector<T> ds2_full = sparse_col_sums(d_c);
        // dH' contributions to all rows (column side) + own-row terms.
        DenseMatrix<T> dhp_full(n, k_out, T(0));
        spmm_accumulate_rows(cache.psi_loc.transposed(), g_own, dhp_full);
        for (index_t i = 0; i < own; ++i) {
          T* row = dhp_full.data() + (vr_.begin + i) * k_out;
          const T s = ds1_own[static_cast<std::size_t>(i)];
          for (index_t g = 0; g < k_out; ++g) row[g] += s * a1[static_cast<std::size_t>(g)];
        }
        add_outer_inplace(dhp_full, std::span<const T>(ds2_full), a2);
        grads.d_w = matmul_tn(cache.h_full, dhp_full);
        grads.d_a.assign(static_cast<std::size_t>(2 * k_out), T(0));
        const DenseMatrix<T> hp_own = cache.hp_full.slice_rows(vr_.begin, vr_.end);
        const std::vector<T> da1 = matvec_tn(hp_own, std::span<const T>(ds1_own));
        const std::vector<T> da2 =
            matvec_tn(cache.hp_full, std::span<const T>(ds2_full));
        std::copy(da1.begin(), da1.end(), grads.d_a.begin());
        std::copy(da2.begin(), da2.end(), grads.d_a.begin() + k_out);
        gamma_full = matmul_nt(dhp_full, w);
        break;
      }
    }

    this->world_.allreduce_sum(grads.d_w.flat());
    if (!grads.d_w2.empty()) this->world_.allreduce_sum(grads.d_w2.flat());
    if (!grads.d_a.empty()) this->world_.allreduce_sum(std::span<T>(grads.d_a));
    // The defining 1D cost: the full n x k gradient matrix is allreduced.
    this->world_.allreduce_sum(gamma_full.flat());
    return gamma_full.slice_rows(vr_.begin, vr_.end);
  }

  // spmm into specific rows of a taller output (offset 0 — the transposed
  // local block already spans all n rows).
  static void spmm_accumulate_rows(const CsrMatrix<T>& a, const DenseMatrix<T>& h,
                                   DenseMatrix<T>& out) {
    AGNN_ASSERT(a.rows() == out.rows(), "1d accumulate: row mismatch");
    spmm_accumulate(a, h, out);
  }

  int p_;
  BlockRange vr_;
  CsrMatrix<T> a_loc_;  // owned rows x n
};

}  // namespace agnn::dist
