// Runtime selection over the distribution-policy family.
//
// The four engines share the EngineCoreBase surface but are distinct types
// (their layer caches differ). `IDistEngine` erases that so benchmarks, the
// differential harness, and examples can pick the distribution at runtime —
// in particular from the AGNN_DIST environment knob (dist/dist_policy.hpp):
//
//   AGNN_DIST=1d | 1.5d | 2d | 3d | auto     (AGNN_DIST_DEPTH=d for 3d)
//
// `make_dist_engine` is collective: every rank must call it with the same
// policy and arguments, like the engine constructors it wraps.
#pragma once

#include <memory>

#include "dist/dist_1d_engine.hpp"
#include "dist/dist_engine.hpp"
#include "dist/dist_policy.hpp"
#include "dist/dist_summa_engine.hpp"

namespace agnn::dist {

template <typename T>
class IDistEngine {
 public:
  virtual ~IDistEngine() = default;

  struct StepResult {
    T loss = T(0);
  };

  virtual DenseMatrix<T> infer(const DenseMatrix<T>& x_global) = 0;
  virtual StepResult train_step(const DenseMatrix<T>& x_global,
                                std::span<const index_t> labels,
                                Optimizer<T>& opt,
                                std::span<const std::uint8_t> mask = {}) = 0;
  virtual comm::Communicator& world() = 0;
  virtual DistPolicy policy() const = 0;
  virtual index_t num_vertices() const = 0;
};

namespace detail_factory {

template <typename T, typename Engine>
class Adapter final : public IDistEngine<T> {
 public:
  template <typename... Args>
  explicit Adapter(DistPolicy policy, Args&&... args)
      : policy_(policy), engine_(std::forward<Args>(args)...) {}

  DenseMatrix<T> infer(const DenseMatrix<T>& x_global) override {
    return engine_.infer(x_global);
  }
  typename IDistEngine<T>::StepResult train_step(
      const DenseMatrix<T>& x_global, std::span<const index_t> labels,
      Optimizer<T>& opt, std::span<const std::uint8_t> mask) override {
    return {engine_.train_step(x_global, labels, opt, mask).loss};
  }
  comm::Communicator& world() override { return engine_.world(); }
  DistPolicy policy() const override { return policy_; }
  index_t num_vertices() const override { return engine_.num_vertices(); }

  Engine& engine() { return engine_; }

 private:
  DistPolicy policy_;
  Engine engine_;
};

}  // namespace detail_factory

// Construct the engine for `policy` (collective). `depth_hint` is the 3D
// replication depth; 0 derives it (smallest prime factor of p). Throws
// std::logic_error with a policy-naming message when the rank count does not
// fit the requested grid (e.g. 1.5d on a non-square p).
template <typename T>
std::unique_ptr<IDistEngine<T>> make_dist_engine(DistPolicy policy,
                                                 comm::Communicator& world,
                                                 const CsrMatrix<T>& a_global,
                                                 GnnModel<T>& model,
                                                 int depth_hint = 0) {
  switch (policy) {
    case DistPolicy::k1D:
      return std::make_unique<
          detail_factory::Adapter<T, Dist1dGlobalEngine<T>>>(policy, world,
                                                             a_global, model);
    case DistPolicy::k1_5D:
      return std::make_unique<detail_factory::Adapter<T, DistGnnEngine<T>>>(
          policy, world, a_global, model);
    case DistPolicy::k2D:
    case DistPolicy::k3D:
      return std::make_unique<detail_factory::Adapter<T, DistSummaEngine<T>>>(
          policy, world, a_global, model,
          grid_for(policy, world.size(), depth_hint));
  }
  AGNN_ASSERT(false, "unknown distribution policy");
  return nullptr;
}

// Environment-routed construction: AGNN_DIST picks the policy (default: the
// best fit for p), AGNN_DIST_DEPTH the 3D depth.
template <typename T>
std::unique_ptr<IDistEngine<T>> make_dist_engine_from_env(
    comm::Communicator& world, const CsrMatrix<T>& a_global,
    GnnModel<T>& model) {
  return make_dist_engine(policy_from_env(world.size()), world, a_global,
                          model, depth_hint_from_env());
}

}  // namespace agnn::dist
