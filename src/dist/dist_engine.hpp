// Distributed execution of the global tensor formulations (Section 6.3).
//
// Implements the A-stationary 1.5D scheme on a square sqrt(p) x sqrt(p)
// process grid:
//   * every per-edge sparse matrix (A, Psi, and the backward-pass sampled
//     matrices N and D) is distributed in static 2D blocks and never moves;
//   * tall dense matrices move between "layout B" (input: rows C_j,
//     replicated across the grid column) and "layout R" (output: rows R_i,
//     identical within the grid row) — see process_grid.hpp;
//   * each layer: fetch the transpose-partner's feature block (nk/sqrt(p)
//     words), compute the Psi block with the fused local kernels, SpMM the
//     block, allreduce partial sums along the grid row, and redistribute the
//     output to layout B for the next layer.
//
// Per layer this moves O(nk/sqrt(p) + k^2) words per rank — the global-
// formulation bound of Section 7.1 — for forward, backward, and inference.
// Every byte is charged through the Communicator's volume accounting, which
// the theory-verification benchmark (bench_comm_volume) checks against the
// closed-form bound.
//
// The step plumbing (layer loop, loss, gradient chaining) lives in the
// policy-parameterized EngineCoreBase; this file holds only the 1.5D layer
// math and layout exchanges.
#pragma once

#include <vector>

#include "dist/engine_core.hpp"
#include "graph/graph.hpp"

namespace agnn::dist {

// Per-layer intermediates cached by the distributed forward pass.
template <typename T>
struct DistLayerCache {
  DenseMatrix<T> h_b;         // H^l rows C_j
  DenseMatrix<T> h_r;         // H^l rows R_i (partner-fetched; VA/AGNN)
  DenseMatrix<T> z_b;         // Z^l rows C_j
  CsrMatrix<T> psi_loc;       // Psi block (i, j)
  CsrMatrix<T> cos_loc;       // AGNN: cosine block (Psi before A-weighting)
  DenseMatrix<T> ph_r;        // (Psi H)_Ri; for GIN the full X = (A+(1+e)I)H
  // GIN:
  DenseMatrix<T> mlp_pre_r;   // (X W)_Ri pre-activation
  DenseMatrix<T> mlp_hidden_r;  // sigma_mlp(X W)_Ri
  // GAT:
  DenseMatrix<T> hp_b;        // H' = H W rows C_j
  CsrMatrix<T> scores_pre_loc;  // C block (pre-LeakyReLU)
  std::vector<T> s1_r, s2_b;
};

template <typename T>
class DistGnnEngine
    : public EngineCoreBase<T, DistLayerCache<T>, DistGnnEngine<T>> {
  using Base = EngineCoreBase<T, DistLayerCache<T>, DistGnnEngine<T>>;
  friend Base;

 public:
  using LayerCache = DistLayerCache<T>;
  static constexpr const char* kForwardSpan = "dist1_5d.forward";
  static constexpr const char* kTrainSpan = "dist1_5d.train_step";

  // Collective constructor: every rank passes the same global adjacency and
  // a model replica (identical across ranks by construction — same config
  // seed). Block extraction is local; initial data distribution is not
  // charged, matching the paper's accounting.
  DistGnnEngine(comm::Communicator& world, const CsrMatrix<T>& a_global,
                GnnModel<T>& model)
      : Base(world, a_global.rows(), model),
        grid_(ProcessGrid::side_for(world.size())),
        gi_(grid_.row_of(world.rank())),
        gj_(grid_.col_of(world.rank())),
        row_comm_(world.split(gi_, gj_)),
        col_comm_(world.split(grid_.q + gj_, gi_)),
        ri_(block_range(this->n_, grid_.q, gi_)),
        cj_(block_range(this->n_, grid_.q, gj_)) {
    AGNN_ASSERT(a_global.rows() == a_global.cols(), "adjacency must be square");
    a_loc_ = a_global.block(ri_.begin, ri_.end, cj_.begin, cj_.end);
    a_loc_t_ = a_loc_.transposed();
  }

  const BlockRange& row_block() const { return ri_; }
  const BlockRange& col_block() const { return cj_; }
  const CsrMatrix<T>& local_adjacency() const { return a_loc_; }

  // Reassemble a layout-B distributed matrix into the full global matrix.
  DenseMatrix<T> gather_layout_b(const DenseMatrix<T>& local_b) {
    AGNN_ASSERT(local_b.rows() == cj_.size(), "gather: not a layout-B block");
    // Blocks C_0..C_{q-1} are held (among others) by ranks (0, 0)..(0, q-1),
    // which are world ranks 0..q-1 — exactly rank order for allgatherv.
    std::span<const T> contrib;
    if (gi_ == 0) contrib = local_b.flat();
    const std::vector<T> flat = this->world_.allgatherv(contrib);
    AGNN_ASSERT(static_cast<index_t>(flat.size()) == this->n_ * local_b.cols(),
                "gather: unexpected total size");
    return DenseMatrix<T>(this->n_, local_b.cols(), flat);
  }

  DenseMatrix<T> gather_output(const DenseMatrix<T>& local_b) {
    return gather_layout_b(local_b);
  }

 private:
  // ---- engine-core policy hooks ---------------------------------------------

  BlockRange input_block() const { return cj_; }
  // Blocks are replicated across grid rows: only row 0 contributes to sums
  // over the global vertex set (loss, output gather).
  bool counts_in_loss() const { return gi_ == 0; }
  const DenseMatrix<T>& cached_z(const DistLayerCache<T>& c) const {
    return c.z_b;
  }

  // ---- layout exchange helpers ----------------------------------------------

  // Transpose-partner exchange: give my layout-B block, receive the
  // partner's — which is exactly my layout-R block (rows R_i). Also used in
  // the other direction (R -> B). One block of nk/sqrt(p) words per rank.
  void partner_exchange(const DenseMatrix<T>& mine, index_t out_rows,
                        DenseMatrix<T>& out) {
    out.resize(out_rows, mine.cols());
    auto win = this->world_.expose(std::span<const T>(mine.flat()));
    win.get(out.flat(), grid_.partner_of(this->world_.rank()), 0);
    win.close();
  }

  DenseMatrix<T> partner_exchange(const DenseMatrix<T>& mine, index_t out_rows) {
    DenseMatrix<T> out;
    partner_exchange(mine, out_rows, out);
    return out;
  }

  void partner_exchange_vec(const std::vector<T>& mine, index_t out_len,
                            std::vector<T>& out) {
    out.resize(static_cast<std::size_t>(out_len));
    auto win = this->world_.expose(std::span<const T>(mine));
    win.get(std::span<T>(out), grid_.partner_of(this->world_.rank()), 0);
    win.close();
  }

  std::vector<T> partner_exchange_vec(const std::vector<T>& mine, index_t out_len) {
    std::vector<T> out;
    partner_exchange_vec(mine, out_len, out);
    return out;
  }

  // ---- per-layer forward -----------------------------------------------------

  DenseMatrix<T> layer_forward(const Layer<T>& layer, const DenseMatrix<T>& h_b,
                               DistLayerCache<T>* cache) {
    AGNN_TRACE_SCOPE("dist1_5d.layer_forward", kPhase);
    typename Base::LayerParams params = this->broadcast_params(layer);
    const DenseMatrix<T>& w = params.w;
    const std::vector<T>& a = params.a;
    const DenseMatrix<T>& w2 = params.w2;

    // All intermediates live in the cache slots (or a throwaway scratch in
    // inference mode), overwritten in place across steps.
    DistLayerCache<T> scratch;
    DistLayerCache<T>& c = cache ? *cache : scratch;
    const DenseMatrix<T>* x_b = &h_b;  // aggregation input

    switch (layer.kind()) {
      case ModelKind::kGCN: {
        c.psi_loc = a_loc_;
        break;
      }
      case ModelKind::kGIN: {
        // Plain-sum aggregation over A; the (1+eps) self term needs the
        // R_i rows of H, which arrive via the partner exchange.
        partner_exchange(h_b, ri_.size(), c.h_r);
        c.psi_loc = a_loc_;
        break;
      }
      case ModelKind::kVA: {
        partner_exchange(h_b, ri_.size(), c.h_r);
        comm::ComputeRegion t(this->world_.stats());
        sddmm(a_loc_, c.h_r, h_b, c.psi_loc);
        break;
      }
      case ModelKind::kAGNN: {
        partner_exchange(h_b, ri_.size(), c.h_r);
        comm::ComputeRegion t(this->world_.stats());
        // Cosine block: sampled dot products divided by the row/col norms.
        // Norms are local because full feature rows are local in each layout.
        sddmm_unweighted(a_loc_, c.h_r, h_b, c.cos_loc);
        auto nr = this->ws_.acquire_vec(ri_.size());
        auto nc = this->ws_.acquire_vec(cj_.size());
        inv_row_norms(c.h_r, *nr);
        inv_row_norms(h_b, *nc);
        scale_rows_cols<T>(c.cos_loc, nr.cspan(), nc.cspan(), c.cos_loc);
        hadamard_same_pattern(c.cos_loc, a_loc_, c.psi_loc);
        break;
      }
      case ModelKind::kGAT: {
        {
          comm::ComputeRegion t(this->world_.stats());
          matmul(h_b, w, c.hp_b);
          const std::span<const T> a_all(a);
          const auto a2 = a_all.subspan(static_cast<std::size_t>(layer.out_features()));
          matvec(c.hp_b, a2, c.s2_b);
        }
        std::vector<T> s1_b = matvec(c.hp_b, std::span<const T>(a).subspan(
                                                 0, static_cast<std::size_t>(
                                                        layer.out_features())));
        partner_exchange_vec(s1_b, ri_.size(), c.s1_r);
        {
          comm::ComputeRegion t(this->world_.stats());
          // E block: A ⊙ LeakyReLU(s1 1^T + 1 s2^T) sampled on the edges.
          c.scores_pre_loc = a_loc_;
          c.psi_loc = a_loc_;
          auto pre = c.scores_pre_loc.vals_mutable();
          auto ev = c.psi_loc.vals_mutable();
          const T slope = layer.attention_slope();
          for (index_t i = 0; i < a_loc_.rows(); ++i) {
            const T s1i = c.s1_r[static_cast<std::size_t>(i)];
            for (index_t e = a_loc_.row_begin(i); e < a_loc_.row_end(i); ++e) {
              const T cv = s1i + c.s2_b[static_cast<std::size_t>(a_loc_.col_at(e))];
              pre[static_cast<std::size_t>(e)] = cv;
              ev[static_cast<std::size_t>(e)] =
                  a_loc_.val_at(e) * (cv > T(0) ? cv : slope * cv);
            }
          }
        }
        dist_row_softmax_inplace(c.psi_loc, row_comm_, this->ws_);
        x_b = &c.hp_b;
        break;
      }
    }

    // Aggregation: local block SpMM, then reduce partial sums along the row.
    {
      comm::ComputeRegion t(this->world_.stats());
      spmm(c.psi_loc, *x_b, c.ph_r);
    }
    row_comm_.allreduce_sum(c.ph_r.flat());
    // Z in layout R: for GAT it is the reduced aggregate itself; for the
    // others a pooled buffer holds the projection.
    const DenseMatrix<T>* z_r = &c.ph_r;
    auto z_r_h = this->ws_.acquire_dense(ri_.size(), layer.out_features());
    {
      comm::ComputeRegion t(this->world_.stats());
      switch (layer.kind()) {
        case ModelKind::kGAT:
          break;
        case ModelKind::kGIN:
          // X = (A H) + (1+eps) H, then the per-row MLP.
          axpy(T(1) + layer.gin_epsilon(), c.h_r, c.ph_r);
          matmul(c.ph_r, w, c.mlp_pre_r);
          activate(layer.mlp_activation(), c.mlp_pre_r, c.mlp_hidden_r, T(0.01));
          matmul(c.mlp_hidden_r, w2, *z_r_h);
          z_r = &*z_r_h;
          break;
        default:
          matmul(c.ph_r, w, *z_r_h);
          z_r = &*z_r_h;
      }
    }
    // Redistribute Z from layout R to layout B to link into the next layer.
    partner_exchange(*z_r, cj_.size(), c.z_b);
    DenseMatrix<T> h_out;
    {
      comm::ComputeRegion t(this->world_.stats());
      activate(layer.activation(), c.z_b, h_out, T(0.01));
    }
    if (cache) c.h_b = h_b;
    return h_out;
  }

  // ---- per-layer backward -----------------------------------------------------

  DenseMatrix<T> layer_backward(const Layer<T>& layer, const DistLayerCache<T>& cache,
                                const DenseMatrix<T>& g_b, LayerGrads<T>& grads) {
    AGNN_TRACE_SCOPE("dist1_5d.layer_backward", kPhase);
    const DenseMatrix<T>& w = layer.weights();
    switch (layer.kind()) {
      case ModelKind::kGCN: return backward_gcn(layer, cache, g_b, grads, w);
      case ModelKind::kVA: return backward_va(layer, cache, g_b, grads, w);
      case ModelKind::kAGNN: return backward_agnn(layer, cache, g_b, grads, w);
      case ModelKind::kGAT: return backward_gat(layer, cache, g_b, grads, w);
      case ModelKind::kGIN: return backward_gin(layer, cache, g_b, grads, w);
    }
    AGNN_ASSERT(false, "unknown model kind");
    return {};
  }

  DenseMatrix<T> backward_gcn(const Layer<T>&, const DistLayerCache<T>& cache,
                              const DenseMatrix<T>& g_b, LayerGrads<T>& grads,
                              const DenseMatrix<T>& w) {
    const DenseMatrix<T> g_r = partner_exchange(g_b, ri_.size());
    grads.d_w = weight_grad_r(cache.ph_r, g_r);
    comm::ComputeRegion t(this->world_.stats());
    DenseMatrix<T> m_r = matmul_nt(g_r, w);
    DenseMatrix<T> gamma_b = spmm(a_loc_t_, m_r);
    col_comm_.allreduce_sum(gamma_b.flat());
    return gamma_b;
  }

  // GIN: dW2 = hidden^T G, dPre = (G W2^T) ⊙ sigma_mlp'(pre),
  // dW = X^T dPre, dX = dPre W^T, Gamma = A^T dX + (1+eps) dX.
  // All tall operands are cached in layout R; G is fetched into layout R.
  DenseMatrix<T> backward_gin(const Layer<T>& layer, const DistLayerCache<T>& cache,
                              const DenseMatrix<T>& g_b, LayerGrads<T>& grads,
                              const DenseMatrix<T>& w) {
    const DenseMatrix<T> g_r = partner_exchange(g_b, ri_.size());
    grads.d_w2 = weight_grad_r(cache.mlp_hidden_r, g_r);
    DenseMatrix<T> dx_r, gamma_b;
    {
      comm::ComputeRegion t(this->world_.stats());
      const DenseMatrix<T> d_hidden = matmul_nt(g_r, layer.weights2());
      const DenseMatrix<T> d_pre = activation_backward(
          layer.mlp_activation(), cache.mlp_pre_r, d_hidden, T(0.01));
      // dW contribution from column 0 of the grid (layout-R replication).
      DenseMatrix<T> dw(w.rows(), w.cols(), T(0));
      if (gj_ == 0) dw = matmul_tn(cache.ph_r, d_pre);
      grads.d_w = std::move(dw);
      dx_r = matmul_nt(d_pre, w);
      gamma_b = spmm(a_loc_t_, dx_r);
    }
    this->world_.allreduce_sum(grads.d_w.flat());
    col_comm_.allreduce_sum(gamma_b.flat());
    DenseMatrix<T> dx_b = partner_exchange(dx_r, cj_.size());
    comm::ComputeRegion t(this->world_.stats());
    axpy(T(1) + layer.gin_epsilon(), dx_b, gamma_b);
    return gamma_b;
  }

  DenseMatrix<T> backward_va(const Layer<T>&, const DistLayerCache<T>& cache,
                             const DenseMatrix<T>& g_b, LayerGrads<T>& grads,
                             const DenseMatrix<T>& w) {
    DenseMatrix<T> m_b;
    {
      comm::ComputeRegion t(this->world_.stats());
      m_b = matmul_nt(g_b, w);
    }
    const DenseMatrix<T> m_r = partner_exchange(m_b, ri_.size());
    const DenseMatrix<T> g_r = partner_exchange(g_b, ri_.size());
    grads.d_w = weight_grad_r(cache.ph_r, g_r);

    DenseMatrix<T> nh_r, gamma2_b;
    {
      comm::ComputeRegion t(this->world_.stats());
      // N block = A ⊙ (M H^T): the backward SDDMM on the stationary pattern.
      const CsrMatrix<T> n_loc = sddmm(a_loc_, m_r, cache.h_b);
      nh_r = spmm(n_loc, cache.h_b);
      gamma2_b = spmm(n_loc.transposed(), cache.h_r);
      spmm_accumulate(cache.psi_loc.transposed(), m_r, gamma2_b);
    }
    row_comm_.allreduce_sum(nh_r.flat());
    col_comm_.allreduce_sum(gamma2_b.flat());
    DenseMatrix<T> gamma_b = partner_exchange(nh_r, cj_.size());
    comm::ComputeRegion t(this->world_.stats());
    axpy(T(1), gamma2_b, gamma_b);
    return gamma_b;
  }

  DenseMatrix<T> backward_agnn(const Layer<T>&, const DistLayerCache<T>& cache,
                               const DenseMatrix<T>& g_b, LayerGrads<T>& grads,
                               const DenseMatrix<T>& w) {
    DenseMatrix<T> m_b;
    {
      comm::ComputeRegion t(this->world_.stats());
      m_b = matmul_nt(g_b, w);
    }
    const DenseMatrix<T> m_r = partner_exchange(m_b, ri_.size());
    const DenseMatrix<T> g_r = partner_exchange(g_b, ri_.size());
    grads.d_w = weight_grad_r(cache.ph_r, g_r);

    DenseMatrix<T> dh_r, dth_b, gamma_agg_b;
    std::vector<T> rs_r, cs_b;
    std::vector<T> norms_b;
    DenseMatrix<T> hhat_b, hhat_r;
    {
      comm::ComputeRegion t(this->world_.stats());
      const CsrMatrix<T> d_loc = sddmm(a_loc_, m_r, cache.h_b);
      const CsrMatrix<T> dc = hadamard_same_pattern(d_loc, cache.cos_loc);
      rs_r = sparse_row_sums(dc);
      cs_b = sparse_col_sums(dc);
      norms_b = row_l2_norms(cache.h_b);
      hhat_b = unit_rows(cache.h_b);
      hhat_r = unit_rows(cache.h_r);
      dh_r = spmm(d_loc, hhat_b);
      dth_b = spmm(d_loc.transposed(), hhat_r);
      gamma_agg_b = spmm(cache.psi_loc.transposed(), m_r);
    }
    row_comm_.allreduce_sum(std::span<T>(rs_r));
    col_comm_.allreduce_sum(std::span<T>(cs_b));
    row_comm_.allreduce_sum(dh_r.flat());
    col_comm_.allreduce_sum(dth_b.flat());
    col_comm_.allreduce_sum(gamma_agg_b.flat());
    const std::vector<T> rs_b = partner_exchange_vec(rs_r, cj_.size());
    DenseMatrix<T> sum_b = partner_exchange(dh_r, cj_.size());

    comm::ComputeRegion t(this->world_.stats());
    axpy(T(1), dth_b, sum_b);
    const index_t k = sum_b.cols();
    for (index_t i = 0; i < sum_b.rows(); ++i) {
      const T ni = norms_b[static_cast<std::size_t>(i)];
      T* row = sum_b.data() + i * k;
      if (ni <= T(0)) {
        for (index_t j = 0; j < k; ++j) row[j] = T(0);
        continue;
      }
      const T coef = rs_b[static_cast<std::size_t>(i)] + cs_b[static_cast<std::size_t>(i)];
      const T* hh = hhat_b.data() + i * k;
      const T inv = T(1) / ni;
      for (index_t j = 0; j < k; ++j) row[j] = (row[j] - coef * hh[j]) * inv;
    }
    axpy(T(1), gamma_agg_b, sum_b);
    return sum_b;
  }

  DenseMatrix<T> backward_gat(const Layer<T>& layer, const DistLayerCache<T>& cache,
                              const DenseMatrix<T>& g_b, LayerGrads<T>& grads,
                              const DenseMatrix<T>& w) {
    const DenseMatrix<T> g_r = partner_exchange(g_b, ri_.size());
    const index_t k_out = layer.out_features();
    const std::span<const T> a_all(layer.attention_params());
    const auto a1 = a_all.subspan(0, static_cast<std::size_t>(k_out));
    const auto a2 = a_all.subspan(static_cast<std::size_t>(k_out));

    CsrMatrix<T> d_psi;
    std::vector<T> dots_r(static_cast<std::size_t>(ri_.size()), T(0));
    {
      comm::ComputeRegion t(this->world_.stats());
      d_psi = sddmm(cache.psi_loc.with_values(T(1)), g_r, cache.hp_b);
      for (index_t i = 0; i < cache.psi_loc.rows(); ++i) {
        T acc = T(0);
        for (index_t e = cache.psi_loc.row_begin(i); e < cache.psi_loc.row_end(i); ++e) {
          acc += cache.psi_loc.val_at(e) * d_psi.val_at(e);
        }
        dots_r[static_cast<std::size_t>(i)] = acc;
      }
    }
    // The softmax Jacobian's per-row dot spans the whole grid row.
    row_comm_.allreduce_sum(std::span<T>(dots_r));

    std::vector<T> ds1_r, ds2_b;
    DenseMatrix<T> dhp_b;
    {
      comm::ComputeRegion t(this->world_.stats());
      CsrMatrix<T> d_c = d_psi;
      auto v = d_c.vals_mutable();
      const auto pre = cache.scores_pre_loc.vals();
      const T slope = layer.attention_slope();
      for (index_t i = 0; i < d_c.rows(); ++i) {
        const T dot = dots_r[static_cast<std::size_t>(i)];
        for (index_t e = d_c.row_begin(i); e < d_c.row_end(i); ++e) {
          const T de = cache.psi_loc.val_at(e) * (d_psi.val_at(e) - dot);
          const T c = pre[static_cast<std::size_t>(e)];
          v[static_cast<std::size_t>(e)] =
              de * a_loc_.val_at(e) * (c > T(0) ? T(1) : slope);
        }
      }
      ds1_r = sparse_row_sums(d_c);
      ds2_b = sparse_col_sums(d_c);
      dhp_b = spmm(cache.psi_loc.transposed(), g_r);
    }
    row_comm_.allreduce_sum(std::span<T>(ds1_r));
    col_comm_.allreduce_sum(std::span<T>(ds2_b));
    col_comm_.allreduce_sum(dhp_b.flat());
    const std::vector<T> ds1_b = partner_exchange_vec(ds1_r, cj_.size());

    {
      comm::ComputeRegion t(this->world_.stats());
      add_outer_inplace(dhp_b, std::span<const T>(ds1_b), a1);
      add_outer_inplace(dhp_b, std::span<const T>(ds2_b), a2);
    }

    // Parameter gradients: layout-B contributions are replicated across grid
    // rows, so only grid row 0 contributes before the global allreduce.
    DenseMatrix<T> dw(w.rows(), w.cols(), T(0));
    std::vector<T> da(static_cast<std::size_t>(2 * k_out), T(0));
    if (gi_ == 0) {
      comm::ComputeRegion t(this->world_.stats());
      dw = matmul_tn(cache.h_b, dhp_b);
      const std::vector<T> da1 = matvec_tn(cache.hp_b, std::span<const T>(ds1_b));
      const std::vector<T> da2 = matvec_tn(cache.hp_b, std::span<const T>(ds2_b));
      std::copy(da1.begin(), da1.end(), da.begin());
      std::copy(da2.begin(), da2.end(), da.begin() + k_out);
    }
    this->world_.allreduce_sum(dw.flat());
    this->world_.allreduce_sum(std::span<T>(da));
    grads.d_w = std::move(dw);
    grads.d_a = std::move(da);

    comm::ComputeRegion t(this->world_.stats());
    return matmul_nt(dhp_b, w);
  }

  // dW = sum_i (PH)_Ri^T G_Ri: layout-R contributions are replicated across
  // grid columns, so only grid column 0 contributes, then allreduce.
  DenseMatrix<T> weight_grad_r(const DenseMatrix<T>& ph_r, const DenseMatrix<T>& g_r) {
    DenseMatrix<T> dw(ph_r.cols(), g_r.cols(), T(0));
    if (gj_ == 0) {
      comm::ComputeRegion t(this->world_.stats());
      dw = matmul_tn(ph_r, g_r);
    }
    this->world_.allreduce_sum(dw.flat());
    return dw;
  }

  ProcessGrid grid_;
  int gi_, gj_;
  comm::Communicator row_comm_, col_comm_;
  BlockRange ri_, cj_;
  CsrMatrix<T> a_loc_;
  CsrMatrix<T> a_loc_t_;
};

}  // namespace agnn::dist
