// Checkpoint-recovery driver for distributed training.
//
// `train_with_recovery` wraps any engine's train_step loop (all four
// distributed engines share the (x, labels, opt, mask) signature) with the
// failure semantics of comm/fault_injection.hpp:
//
//   - every `checkpoint_every` completed epochs, each rank snapshots its
//     model replica and optimizer state in memory (replicas are bitwise
//     identical across ranks, so no collective is needed), and rank 0
//     optionally persists a checkpoint file via serialization.hpp;
//   - a CommError rolls every rank back to the last checkpoint: recover()
//     rendezvous, bounded exponential backoff, bitwise parameter restore,
//     and the epoch counter rewinds to the checkpointed value;
//   - restores are bounded by `max_restores`; past that the CommError
//     propagates (and SpmdRuntime::run rethrows it to the caller).
//
// Determinism contract: the restore is bitwise (model params + optimizer
// state), the engines' collectives reduce in fixed rank order, and injected
// faults fire at logical (rank, superstep) points — so a recovered run
// reaches bit-for-bit the same parameters as a fault-free run of the same
// seed, which the differential `faults` suite asserts.
//
// Why epoch boundaries agree across ranks: every checked barrier is uniform
// per generation (all members pass or none do — see GroupContext::
// barrier_wait), and the loop ends each epoch with a world barrier. A
// failure anywhere in epoch e therefore unwinds *every* rank inside epoch e,
// before any rank could count e as complete or checkpoint past it.
#pragma once

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "comm/communicator.hpp"
#include "comm/fault_injection.hpp"
#include "core/model.hpp"
#include "core/multihead_gat.hpp"
#include "core/optimizer.hpp"
#include "core/serialization.hpp"
#include "obs/trace.hpp"

namespace agnn::dist {

struct RecoveryOptions {
  int checkpoint_every = 5;  // epochs between checkpoints
  int max_restores = 8;      // give up (rethrow) past this many recoveries
  std::chrono::milliseconds backoff{5};       // doubled per consecutive restore
  std::chrono::milliseconds max_backoff{200};  // backoff cap
  std::string checkpoint_path;  // non-empty: rank 0 persists checkpoints here
};

template <typename T>
struct RecoveryReport {
  std::vector<T> losses;  // per-epoch loss of the successful pass
  int restores = 0;
  int checkpoints = 0;
};

// Flatten/restore the full parameter set of a model replica. Overloaded per
// model family so the recovery loop is generic over all engines.
template <typename T>
void collect_params(const GnnModel<T>& m, std::vector<T>& out) {
  out.clear();
  for (std::size_t l = 0; l < m.num_layers(); ++l) {
    const Layer<T>& layer = m.layer(l);
    out.insert(out.end(), layer.weights().flat().begin(),
               layer.weights().flat().end());
    out.insert(out.end(), layer.attention_params().begin(),
               layer.attention_params().end());
    out.insert(out.end(), layer.weights2().flat().begin(),
               layer.weights2().flat().end());
  }
}

template <typename T>
void restore_params(GnnModel<T>& m, const std::vector<T>& blob) {
  std::size_t pos = 0;
  const auto take = [&](std::span<T> dst) {
    AGNN_ASSERT(pos + dst.size() <= blob.size(), "restore: truncated blob");
    std::copy_n(blob.begin() + static_cast<std::ptrdiff_t>(pos), dst.size(),
                dst.begin());
    pos += dst.size();
  };
  for (std::size_t l = 0; l < m.num_layers(); ++l) {
    Layer<T>& layer = m.layer(l);
    take(layer.weights().flat());
    take(std::span<T>(layer.attention_params()));
    take(layer.weights2().flat());
  }
  AGNN_ASSERT(pos == blob.size(), "restore: oversized blob");
}

template <typename T>
void collect_params(const MultiHeadGat<T>& m, std::vector<T>& out) {
  out.clear();
  for (std::size_t l = 0; l < m.num_layers(); ++l) {
    for (int h = 0; h < m.layer(l).num_heads(); ++h) {
      const GatHeadParams<T>& p = m.layer(l).head(h);
      out.insert(out.end(), p.w.flat().begin(), p.w.flat().end());
      out.insert(out.end(), p.a.begin(), p.a.end());
    }
  }
}

template <typename T>
void restore_params(MultiHeadGat<T>& m, const std::vector<T>& blob) {
  std::size_t pos = 0;
  const auto take = [&](std::span<T> dst) {
    AGNN_ASSERT(pos + dst.size() <= blob.size(), "restore: truncated blob");
    std::copy_n(blob.begin() + static_cast<std::ptrdiff_t>(pos), dst.size(),
                dst.begin());
    pos += dst.size();
  };
  for (std::size_t l = 0; l < m.num_layers(); ++l) {
    for (int h = 0; h < m.layer(l).num_heads(); ++h) {
      GatHeadParams<T>& p = m.layer(l).head(h);
      take(p.w.flat());
      take(std::span<T>(p.a));
    }
  }
  AGNN_ASSERT(pos == blob.size(), "restore: oversized blob");
}

template <typename T, typename Engine, typename Model>
RecoveryReport<T> train_with_recovery(comm::Communicator& world, Engine& engine,
                                      Model& model, Optimizer<T>& opt,
                                      const DenseMatrix<T>& x,
                                      std::span<const index_t> labels,
                                      int epochs,
                                      std::span<const std::uint8_t> mask = {},
                                      const RecoveryOptions& opts = {}) {
  AGNN_ASSERT(epochs >= 0 && opts.checkpoint_every >= 1 &&
                  opts.max_restores >= 0,
              "train_with_recovery: bad options");
  RecoveryReport<T> report;
  report.losses.assign(static_cast<std::size_t>(epochs), T(0));

  std::vector<T> ckpt_params;
  std::vector<double> ckpt_opt;
  int ckpt_epoch = 0;
  const auto take_checkpoint = [&](int completed) {
    collect_params(model, ckpt_params);
    opt.snapshot_state(ckpt_opt);
    ckpt_epoch = completed;
    ++report.checkpoints;
    if (!opts.checkpoint_path.empty() && world.global_rank() == 0) {
      // Persistence is GnnModel-only (the versioned checkpoint format);
      // multi-head replicas recover from the in-memory snapshot alone.
      if constexpr (requires {
                      save_checkpoint(opts.checkpoint_path, model,
                                      std::int64_t{0},
                                      std::span<const double>{});
                    }) {
        save_checkpoint(opts.checkpoint_path, model,
                        static_cast<std::int64_t>(completed),
                        std::span<const double>(ckpt_opt));
      }
    }
  };
  take_checkpoint(0);  // epoch-0 snapshot: the loop can always roll back

  int epoch = 0;
  int consecutive_restores = 0;
  while (epoch < epochs) {
    try {
      const auto res = engine.train_step(x, labels, opt, mask);
      // Epoch-boundary agreement: a rank counts the epoch as complete only
      // if this barrier's generation advances, which it does for all ranks
      // or none. Without it, a fault in the tail of train_step could leave
      // some ranks one epoch ahead and their checkpoints divergent.
      world.barrier();
      report.losses[static_cast<std::size_t>(epoch)] = res.loss;
      ++epoch;
      consecutive_restores = 0;
      if (epoch % opts.checkpoint_every == 0 && epoch < epochs) {
        take_checkpoint(epoch);
      }
    } catch (const comm::CommError&) {
      ++report.restores;
      if (report.restores > opts.max_restores) throw;
      world.recover();  // all-ranks rendezvous; throws if unrecoverable
      auto backoff = opts.backoff * (1 << std::min(consecutive_restores, 10));
      if (backoff > opts.max_backoff) backoff = opts.max_backoff;
      ++consecutive_restores;
      if (backoff.count() > 0) std::this_thread::sleep_for(backoff);
      restore_params(model, ckpt_params);
      opt.restore_state(ckpt_opt);
      epoch = ckpt_epoch;
      obs::fault_mark("fault.restored", static_cast<std::uint64_t>(ckpt_epoch),
                      0);
    }
  }
  return report;
}

}  // namespace agnn::dist
