// The 2D process grid and block partitioning of the distribution scheme
// (Section 6.3 / Section 7.1).
//
// The adjacency matrix (and every per-edge sparse matrix: Psi, N, D, ...)
// is distributed in 2D blocks over a sqrt(p) x sqrt(p) grid: rank (i, j)
// owns the block of rows R_i and columns C_j. Tall dense matrices live in
// one of two layouts:
//
//   * layout B ("input"):  row block C_j, replicated across the grid column
//     — the "distributed in P_y blocks, each replicated P_x times" layout of
//     Section 6.3; every layer consumes and produces this layout.
//   * layout R ("output"): row block R_i, identical on every rank of grid
//     row i — the state after the partial sums of A_ij H_j are reduced
//     along the row.
//
// On the square grid R_i and C_i are the same index range, so converting
// between the layouts is a pairwise "transpose exchange" with the partner
// rank (j, i) — one block of nk/sqrt(p) words, the redistribution step that
// links consecutive layers.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>

#include "tensor/common.hpp"

namespace agnn::dist {

// Even block partition of [0, n) into `nblocks` contiguous ranges.
struct BlockRange {
  index_t begin = 0;
  index_t end = 0;
  index_t size() const { return end - begin; }
};

inline BlockRange block_range(index_t n, index_t nblocks, index_t b) {
  AGNN_ASSERT(nblocks > 0 && b >= 0 && b < nblocks, "block_range: bad block id");
  const index_t base = n / nblocks;
  const index_t rem = n % nblocks;
  const index_t begin = b * base + std::min(b, rem);
  const index_t size = base + (b < rem ? 1 : 0);
  return {begin, begin + size};
}

// Inverse of block_range: the block of the even partition of [0, n) into
// `nblocks` pieces that contains index x. (Empty blocks contain no index, so
// the result always names a block of positive size.)
inline index_t block_index_of(index_t n, index_t nblocks, index_t x) {
  AGNN_ASSERT(nblocks > 0 && x >= 0 && x < n, "block_index_of: bad index");
  const index_t base = n / nblocks;
  const index_t rem = n % nblocks;
  const index_t big = (base + 1) * rem;  // indices covered by the larger blocks
  if (x < big) return x / (base + 1);
  return rem + (x - big) / base;  // base > 0 here: x >= big implies n > rem
}

// Square q x q grid; rank r <-> (row = r / q, col = r % q).
struct ProcessGrid {
  int q = 1;  // grid side; p = q*q ranks

  explicit ProcessGrid(int side) : q(side) {
    AGNN_ASSERT(side >= 1, "grid side must be positive");
  }

  int size() const { return q * q; }
  int row_of(int rank) const { return rank / q; }
  int col_of(int rank) const { return rank % q; }
  int rank_of(int row, int col) const { return row * q + col; }
  // The transpose-exchange partner of rank (i, j) is (j, i).
  int partner_of(int rank) const { return rank_of(col_of(rank), row_of(rank)); }

  // Side of the square 1.5D grid, or nullopt when `nranks` is not a
  // perfect square (the non-throwing form for policy routing).
  static std::optional<int> try_side_for(int nranks) {
    int side = 1;
    while (side * side < nranks) ++side;
    if (side * side != nranks) return std::nullopt;
    return side;
  }

  // Throwing form: non-square rank counts get a structured error naming the
  // family members that DO accept this p, so a mis-sized launch tells the
  // user which AGNN_DIST to pick instead of just "must be a square".
  static int side_for(int nranks) {
    const auto side = try_side_for(nranks);
    if (!side.has_value()) {
      throw std::logic_error(
          "1.5d process grid: rank count " + std::to_string(nranks) +
          " is not a perfect square; distributions accepting p=" +
          std::to_string(nranks) +
          ": AGNN_DIST=1d (row blocks), AGNN_DIST=2d (r x c SUMMA grid), "
          "AGNN_DIST=3d (depth-replicated)");
    }
    return *side;
  }
};

}  // namespace agnn::dist
