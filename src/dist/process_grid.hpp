// The 2D process grid and block partitioning of the distribution scheme
// (Section 6.3 / Section 7.1).
//
// The adjacency matrix (and every per-edge sparse matrix: Psi, N, D, ...)
// is distributed in 2D blocks over a sqrt(p) x sqrt(p) grid: rank (i, j)
// owns the block of rows R_i and columns C_j. Tall dense matrices live in
// one of two layouts:
//
//   * layout B ("input"):  row block C_j, replicated across the grid column
//     — the "distributed in P_y blocks, each replicated P_x times" layout of
//     Section 6.3; every layer consumes and produces this layout.
//   * layout R ("output"): row block R_i, identical on every rank of grid
//     row i — the state after the partial sums of A_ij H_j are reduced
//     along the row.
//
// On the square grid R_i and C_i are the same index range, so converting
// between the layouts is a pairwise "transpose exchange" with the partner
// rank (j, i) — one block of nk/sqrt(p) words, the redistribution step that
// links consecutive layers.
#pragma once

#include "tensor/common.hpp"

namespace agnn::dist {

// Even block partition of [0, n) into `nblocks` contiguous ranges.
struct BlockRange {
  index_t begin = 0;
  index_t end = 0;
  index_t size() const { return end - begin; }
};

inline BlockRange block_range(index_t n, index_t nblocks, index_t b) {
  AGNN_ASSERT(nblocks > 0 && b >= 0 && b < nblocks, "block_range: bad block id");
  const index_t base = n / nblocks;
  const index_t rem = n % nblocks;
  const index_t begin = b * base + std::min(b, rem);
  const index_t size = base + (b < rem ? 1 : 0);
  return {begin, begin + size};
}

// Square q x q grid; rank r <-> (row = r / q, col = r % q).
struct ProcessGrid {
  int q = 1;  // grid side; p = q*q ranks

  explicit ProcessGrid(int side) : q(side) {
    AGNN_ASSERT(side >= 1, "grid side must be positive");
  }

  int size() const { return q * q; }
  int row_of(int rank) const { return rank / q; }
  int col_of(int rank) const { return rank % q; }
  int rank_of(int row, int col) const { return row * q + col; }
  // The transpose-exchange partner of rank (i, j) is (j, i).
  int partner_of(int rank) const { return rank_of(col_of(rank), row_of(rank)); }

  static int side_for(int nranks) {
    int side = 1;
    while (side * side < nranks) ++side;
    AGNN_ASSERT(side * side == nranks, "rank count must be a perfect square");
    return side;
  }
};

}  // namespace agnn::dist
