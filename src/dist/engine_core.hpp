// The policy-parameterized distributed engine core.
//
// Every member of the distribution family (1D row blocks, 1.5D square grid,
// 2D SUMMA, 3D depth-replicated — see dist/dist_policy.hpp) shares the same
// outer structure: slice the replicated input to the rank's block, run the
// layer loop, compute the loss on owned rows against the globally-reduced
// active count, allreduce the scalar loss, chain activation backward through
// the cached pre-activations, and apply globally-identical gradients. Only
// the *per-layer* math (which blocks move, which sub-communicator reduces
// what) differs per policy.
//
// `EngineCoreBase<T, Cache, Derived>` is that shared outer structure as a
// CRTP base. A policy engine derives from it and provides:
//
//   BlockRange input_block()                rows of the rank's H block
//   bool counts_in_loss()                   does this rank's block contribute
//                                           to the loss sum (false on ranks
//                                           holding a replica of a block)
//   DenseMatrix<T> layer_forward(layer, h, Cache*)
//   DenseMatrix<T> layer_backward(layer, cache, g, grads)
//   const DenseMatrix<T>& cached_z(cache)   the layer's pre-activation block
//   DenseMatrix<T> gather_output(h)         reassemble the global matrix
//   static constexpr kForwardSpan/kTrainSpan  trace span names
//
// The free helpers at the bottom (distributed row softmax, row-normalized
// copies) are the per-layer building blocks shared by more than one policy.
#pragma once

#include <vector>

#include "comm/communicator.hpp"
#include "core/layer.hpp"
#include "core/loss.hpp"
#include "core/model.hpp"
#include "core/optimizer.hpp"
#include "core/workspace.hpp"
#include "dist/process_grid.hpp"
#include "obs/trace.hpp"

namespace agnn::dist {

template <typename T, typename Cache, typename Derived>
class EngineCoreBase {
 public:
  // ---- forward -------------------------------------------------------------

  // Full forward pass; x_global is the (replicated) input feature matrix.
  // Returns the final features on the rank's input block. If `caches` is
  // null, runs in inference mode.
  DenseMatrix<T> forward(const DenseMatrix<T>& x_global,
                         std::vector<Cache>* caches) {
    const obs::SpanScope span(Derived::kForwardSpan,
                              obs::SpanCategory::kPhase);
    const BlockRange vb = derived().input_block();
    DenseMatrix<T> h = x_global.slice_rows(vb.begin, vb.end);
    if (caches) caches->resize(model_.num_layers());  // keeps slot storage warm
    for (std::size_t l = 0; l < model_.num_layers(); ++l) {
      h = derived().layer_forward(model_.layer(l), h,
                                  caches ? &(*caches)[l] : nullptr);
    }
    return h;
  }

  // Inference with a final gather of the global output (for validation and
  // examples; the gather itself is a debug output path).
  DenseMatrix<T> infer(const DenseMatrix<T>& x_global) {
    return derived().gather_output(forward(x_global, nullptr));
  }

  // ---- training --------------------------------------------------------------

  struct StepResult {
    T loss = T(0);
  };

  // One full-batch training step. Labels and mask are replicated (like the
  // input features). Gradients are globally allreduced, so the per-rank
  // model replicas stay bitwise in sync.
  StepResult train_step(const DenseMatrix<T>& x_global,
                        std::span<const index_t> labels, Optimizer<T>& opt,
                        std::span<const std::uint8_t> mask = {}) {
    const obs::SpanScope span(Derived::kTrainSpan, obs::SpanCategory::kPhase);
    std::vector<Cache>& caches = caches_;  // persistent slots
    const DenseMatrix<T> h = forward(x_global, &caches);

    // Loss on the owned block, normalized by the global active count.
    index_t active = 0;
    for (index_t i = 0; i < static_cast<index_t>(labels.size()); ++i) {
      if (mask.empty() || mask[static_cast<std::size_t>(i)]) ++active;
    }
    const BlockRange vb = derived().input_block();
    const auto local_labels = labels.subspan(static_cast<std::size_t>(vb.begin),
                                             static_cast<std::size_t>(vb.size()));
    const auto local_mask =
        mask.empty() ? mask
                     : mask.subspan(static_cast<std::size_t>(vb.begin),
                                    static_cast<std::size_t>(vb.size()));
    LossResult<T> loss =
        softmax_cross_entropy(h, local_labels, local_mask, active);

    // Scalar loss: ranks holding a replica of a block must not double-count.
    std::vector<T> loss_buf{derived().counts_in_loss() ? loss.value : T(0)};
    world_.allreduce_sum(std::span<T>(loss_buf));

    // G^L = nabla_H L ⊙ sigma'(Z^L), locally on the owned block.
    const auto& last = model_.layer(model_.num_layers() - 1);
    DenseMatrix<T> g = activation_backward(
        last.activation(), derived().cached_z(caches.back()), loss.grad);

    std::vector<LayerGrads<T>> grads(model_.num_layers());
    for (std::size_t l = model_.num_layers(); l-- > 0;) {
      DenseMatrix<T> gamma =
          derived().layer_backward(model_.layer(l), caches[l], g, grads[l]);
      if (l > 0) {
        g = activation_backward(model_.layer(l - 1).activation(),
                                derived().cached_z(caches[l - 1]), gamma);
      }
    }
    model_.apply_gradients(grads, opt);
    return {loss_buf[0]};
  }

  // ---- accessors -------------------------------------------------------------

  index_t num_vertices() const { return n_; }
  Workspace<T>& workspace() { return ws_; }
  const WorkspaceStats& workspace_stats() const { return ws_.stats(); }

  // The world communicator (exposed so the recovery loop can barrier and
  // rendezvous on the same group the engine trains over).
  comm::Communicator& world() { return world_; }

 protected:
  EngineCoreBase(comm::Communicator& world, index_t n, GnnModel<T>& model)
      : world_(world), n_(n), model_(model) {}

  Derived& derived() { return static_cast<Derived&>(*this); }

  // Model parameters are replicated: broadcast from rank 0 (values are
  // already identical; this charges the O(k^2) parameter-movement term).
  struct LayerParams {
    DenseMatrix<T> w;
    std::vector<T> a;
    DenseMatrix<T> w2;
  };
  LayerParams broadcast_params(const Layer<T>& layer) {
    LayerParams p;
    p.w = layer.weights();
    world_.broadcast(p.w.flat(), 0);
    p.a = layer.attention_params();
    if (!p.a.empty()) world_.broadcast(std::span<T>(p.a), 0);
    p.w2 = layer.weights2();
    if (!p.w2.empty()) world_.broadcast(p.w2.flat(), 0);
    return p;
  }

  comm::Communicator& world_;
  index_t n_;
  GnnModel<T>& model_;
  Workspace<T> ws_;              // per-rank scratch pool
  std::vector<Cache> caches_;    // persistent training caches
};

// ---- shared per-layer building blocks --------------------------------------

// Distributed graph softmax: per-row max and sum span every rank holding a
// column block of the row (the given communicator: the grid row in 1.5D, the
// row family in 2D/3D — Section 4.2 executed blockwise). Normalizes `s`
// (holding the raw E values) in place; reduction vectors are pooled.
template <typename T>
void dist_row_softmax_inplace(CsrMatrix<T>& s, comm::Communicator& row_comm,
                              Workspace<T>& ws) {
  const index_t rows = s.rows();
  auto row_max_h = ws.acquire_vec(rows);
  std::vector<T>& row_max = *row_max_h;
  std::fill(row_max.begin(), row_max.end(),
            -std::numeric_limits<T>::infinity());
  for (index_t i = 0; i < rows; ++i) {
    for (index_t e = s.row_begin(i); e < s.row_end(i); ++e) {
      row_max[static_cast<std::size_t>(i)] =
          std::max(row_max[static_cast<std::size_t>(i)], s.val_at(e));
    }
  }
  row_comm.allreduce_max(std::span<T>(row_max));
  auto v = s.vals_mutable();
  auto row_sum_h = ws.acquire_vec(rows);
  std::vector<T>& row_sum = *row_sum_h;
  std::fill(row_sum.begin(), row_sum.end(), T(0));
  for (index_t i = 0; i < rows; ++i) {
    const T mx = row_max[static_cast<std::size_t>(i)];
    for (index_t e = s.row_begin(i); e < s.row_end(i); ++e) {
      const T ex = std::exp(v[static_cast<std::size_t>(e)] - mx);
      v[static_cast<std::size_t>(e)] = ex;
      row_sum[static_cast<std::size_t>(i)] += ex;
    }
  }
  row_comm.allreduce_sum(std::span<T>(row_sum));
  for (index_t i = 0; i < rows; ++i) {
    const T rs = row_sum[static_cast<std::size_t>(i)];
    if (rs <= T(0)) continue;
    const T inv = T(1) / rs;
    for (index_t e = s.row_begin(i); e < s.row_end(i); ++e) {
      v[static_cast<std::size_t>(e)] *= inv;
    }
  }
}

template <typename T>
void inv_row_norms(const DenseMatrix<T>& h, std::vector<T>& n) {
  row_l2_norms(h, n);
  for (auto& v : n) v = v > T(0) ? T(1) / v : T(0);
}

template <typename T>
DenseMatrix<T> unit_rows(const DenseMatrix<T>& h) {
  DenseMatrix<T> out = h;
  const std::vector<T> n = row_l2_norms(h);
  for (index_t i = 0; i < h.rows(); ++i) {
    const T ni = n[static_cast<std::size_t>(i)];
    if (ni <= T(0)) continue;
    T* row = out.data() + i * h.cols();
    for (index_t j = 0; j < h.cols(); ++j) row[j] /= ni;
  }
  return out;
}

}  // namespace agnn::dist
