// Distributed multi-head GAT on the 1.5D process grid: each attention head
// runs the single-head GAT scheme of dist_engine.hpp (stationary 2D sparse
// blocks, partner feature exchanges, row/column reductions, distributed
// graph softmax), and the heads' outputs are combined per the layer's
// concat/average rule. Per rank, per layer: heads x O(n k_head / sqrt(p))
// words — multi-head attention multiplies the volume by the head count but
// keeps the sqrt(p) scaling.
#pragma once

#include <vector>

#include "comm/communicator.hpp"
#include "core/loss.hpp"
#include "core/multihead_gat.hpp"
#include "core/workspace.hpp"
#include "dist/process_grid.hpp"
#include "graph/graph.hpp"
#include "obs/trace.hpp"

namespace agnn::dist {

template <typename T>
struct DistMultiHeadCache {
  DenseMatrix<T> h_b;  // layer input, rows C_j
  DenseMatrix<T> z_b;  // combined pre-activation, rows C_j
  struct Head {
    CsrMatrix<T> psi_loc;
    CsrMatrix<T> scores_pre_loc;
    DenseMatrix<T> hp_b;
    std::vector<T> s1_r, s2_b;
  };
  std::vector<Head> heads;
};

template <typename T>
class DistMultiHeadGatEngine {
 public:
  DistMultiHeadGatEngine(comm::Communicator& world, const CsrMatrix<T>& a_global,
                         MultiHeadGat<T>& model)
      : world_(world),
        grid_(ProcessGrid::side_for(world.size())),
        gi_(grid_.row_of(world.rank())),
        gj_(grid_.col_of(world.rank())),
        row_comm_(world.split(gi_, gj_)),
        col_comm_(world.split(grid_.q + gj_, gi_)),
        n_(a_global.rows()),
        ri_(block_range(n_, grid_.q, gi_)),
        cj_(block_range(n_, grid_.q, gj_)),
        model_(model) {
    AGNN_ASSERT(a_global.rows() == a_global.cols(), "adjacency must be square");
    a_loc_ = a_global.block(ri_.begin, ri_.end, cj_.begin, cj_.end);
  }

  DenseMatrix<T> forward(const DenseMatrix<T>& x_global,
                         std::vector<DistMultiHeadCache<T>>* caches) {
    AGNN_TRACE_SCOPE("dist_mh_gat.forward", kPhase);
    DenseMatrix<T> h_b = x_global.slice_rows(cj_.begin, cj_.end);
    if (caches) caches->resize(model_.num_layers());  // keeps slot storage warm
    for (std::size_t l = 0; l < model_.num_layers(); ++l) {
      h_b = layer_forward(model_.layer(l), h_b, caches ? &(*caches)[l] : nullptr);
    }
    return h_b;
  }

  Workspace<T>& workspace() { return ws_; }
  const WorkspaceStats& workspace_stats() const { return ws_.stats(); }

  DenseMatrix<T> infer(const DenseMatrix<T>& x_global) {
    const DenseMatrix<T> h_b = forward(x_global, nullptr);
    std::span<const T> contrib;
    if (gi_ == 0) contrib = h_b.flat();
    const std::vector<T> flat = world_.allgatherv(contrib);
    return DenseMatrix<T>(n_, h_b.cols(), flat);
  }

  struct StepResult {
    T loss = T(0);
  };

  StepResult train_step(const DenseMatrix<T>& x_global,
                        std::span<const index_t> labels, Optimizer<T>& opt,
                        std::span<const std::uint8_t> mask = {}) {
    AGNN_TRACE_SCOPE("dist_mh_gat.train_step", kPhase);
    std::vector<DistMultiHeadCache<T>>& caches = caches_;  // persistent slots
    const DenseMatrix<T> h_b = forward(x_global, &caches);

    index_t active = 0;
    for (index_t i = 0; i < static_cast<index_t>(labels.size()); ++i) {
      if (mask.empty() || mask[static_cast<std::size_t>(i)]) ++active;
    }
    const auto local_labels = labels.subspan(static_cast<std::size_t>(cj_.begin),
                                             static_cast<std::size_t>(cj_.size()));
    const auto local_mask =
        mask.empty() ? mask
                     : mask.subspan(static_cast<std::size_t>(cj_.begin),
                                    static_cast<std::size_t>(cj_.size()));
    LossResult<T> loss = softmax_cross_entropy(h_b, local_labels, local_mask, active);
    std::vector<T> loss_buf{gi_ == 0 ? loss.value : T(0)};
    world_.allreduce_sum(std::span<T>(loss_buf));

    const auto& last = model_.layer(model_.num_layers() - 1);
    DenseMatrix<T> g_b =
        activation_backward(last.activation(), caches.back().z_b, loss.grad);
    std::vector<MultiHeadGrads<T>> grads(model_.num_layers());
    for (std::size_t l = model_.num_layers(); l-- > 0;) {
      DenseMatrix<T> gamma_b = layer_backward(model_.layer(l), caches[l], g_b, grads[l]);
      if (l > 0) {
        g_b = activation_backward(model_.layer(l - 1).activation(),
                                  caches[l - 1].z_b, gamma_b);
      }
    }
    model_.apply_gradients(grads, opt);
    return {loss_buf[0]};
  }

  // The world communicator (exposed so the recovery loop can barrier and
  // rendezvous on the same group the engine trains over).
  comm::Communicator& world() { return world_; }

 private:
  void partner_exchange(const DenseMatrix<T>& mine, index_t out_rows,
                        DenseMatrix<T>& out) {
    out.resize(out_rows, mine.cols());
    auto win = world_.expose(std::span<const T>(mine.flat()));
    win.get(out.flat(), grid_.partner_of(world_.rank()), 0);
    win.close();
  }

  DenseMatrix<T> partner_exchange(const DenseMatrix<T>& mine, index_t out_rows) {
    DenseMatrix<T> out;
    partner_exchange(mine, out_rows, out);
    return out;
  }

  void partner_exchange_vec(const std::vector<T>& mine, index_t out_len,
                            std::vector<T>& out) {
    out.resize(static_cast<std::size_t>(out_len));
    auto win = world_.expose(std::span<const T>(mine));
    win.get(std::span<T>(out), grid_.partner_of(world_.rank()), 0);
    win.close();
  }

  std::vector<T> partner_exchange_vec(const std::vector<T>& mine, index_t out_len) {
    std::vector<T> out;
    partner_exchange_vec(mine, out_len, out);
    return out;
  }

  // Normalizes `s` (holding the raw E values) in place; reduction vectors
  // are pooled.
  void dist_row_softmax_inplace(CsrMatrix<T>& s) {
    const index_t rows = s.rows();
    auto row_max_h = ws_.acquire_vec(rows);
    std::vector<T>& row_max = *row_max_h;
    std::fill(row_max.begin(), row_max.end(), -std::numeric_limits<T>::infinity());
    for (index_t i = 0; i < rows; ++i) {
      for (index_t e = s.row_begin(i); e < s.row_end(i); ++e) {
        row_max[static_cast<std::size_t>(i)] =
            std::max(row_max[static_cast<std::size_t>(i)], s.val_at(e));
      }
    }
    row_comm_.allreduce_max(std::span<T>(row_max));
    auto v = s.vals_mutable();
    auto row_sum_h = ws_.acquire_vec(rows);
    std::vector<T>& row_sum = *row_sum_h;
    std::fill(row_sum.begin(), row_sum.end(), T(0));
    for (index_t i = 0; i < rows; ++i) {
      const T mx = row_max[static_cast<std::size_t>(i)];
      for (index_t e = s.row_begin(i); e < s.row_end(i); ++e) {
        const T ex = std::exp(v[static_cast<std::size_t>(e)] - mx);
        v[static_cast<std::size_t>(e)] = ex;
        row_sum[static_cast<std::size_t>(i)] += ex;
      }
    }
    row_comm_.allreduce_sum(std::span<T>(row_sum));
    for (index_t i = 0; i < rows; ++i) {
      const T rs = row_sum[static_cast<std::size_t>(i)];
      if (rs <= T(0)) continue;
      const T inv = T(1) / rs;
      for (index_t e = s.row_begin(i); e < s.row_end(i); ++e) {
        v[static_cast<std::size_t>(e)] *= inv;
      }
    }
  }

  DenseMatrix<T> layer_forward(const MultiHeadGatLayer<T>& layer,
                               const DenseMatrix<T>& h_b,
                               DistMultiHeadCache<T>* cache) {
    AGNN_TRACE_SCOPE("dist_mh_gat.layer_forward", kPhase);
    const index_t k_head = layer.head_features();
    const index_t out = layer.out_features();
    const T head_scale = layer.combine() == HeadCombine::kAverage
                             ? T(1) / static_cast<T>(layer.num_heads())
                             : T(1);
    auto z_r_h = ws_.acquire_dense(ri_.size(), out);
    DenseMatrix<T>& z_r = *z_r_h;
    z_r.fill(T(0));
    // Per-head intermediates live in the cache slots (or a throwaway scratch
    // in inference mode), overwritten in place across steps and heads.
    DistMultiHeadCache<T> scratch;
    DistMultiHeadCache<T>& c = cache ? *cache : scratch;
    if (cache) c.h_b = h_b;
    c.heads.resize(static_cast<std::size_t>(layer.num_heads()));
    auto partial_h = ws_.acquire_dense(ri_.size(), k_head);
    DenseMatrix<T>& partial = *partial_h;
    for (int hd = 0; hd < layer.num_heads(); ++hd) {
      auto& hc = c.heads[static_cast<std::size_t>(hd)];
      DenseMatrix<T> w = layer.head(hd).w;
      world_.broadcast(w.flat(), 0);
      std::vector<T> a = layer.head(hd).a;
      world_.broadcast(std::span<T>(a), 0);

      std::vector<T> s1_b;
      {
        comm::ComputeRegion t(world_.stats());
        matmul(h_b, w, hc.hp_b);
        const std::span<const T> a_all(a);
        s1_b = matvec(hc.hp_b, a_all.subspan(0, static_cast<std::size_t>(k_head)));
        matvec(hc.hp_b, a_all.subspan(static_cast<std::size_t>(k_head)), hc.s2_b);
      }
      partner_exchange_vec(s1_b, ri_.size(), hc.s1_r);

      {
        comm::ComputeRegion t(world_.stats());
        hc.scores_pre_loc = a_loc_;
        hc.psi_loc = a_loc_;
        auto pre = hc.scores_pre_loc.vals_mutable();
        auto ev = hc.psi_loc.vals_mutable();
        const T slope = layer.attention_slope();
        for (index_t i = 0; i < a_loc_.rows(); ++i) {
          const T s1i = hc.s1_r[static_cast<std::size_t>(i)];
          for (index_t e = a_loc_.row_begin(i); e < a_loc_.row_end(i); ++e) {
            const T cv = s1i + hc.s2_b[static_cast<std::size_t>(a_loc_.col_at(e))];
            pre[static_cast<std::size_t>(e)] = cv;
            ev[static_cast<std::size_t>(e)] =
                a_loc_.val_at(e) * (cv > T(0) ? cv : slope * cv);
          }
        }
      }
      dist_row_softmax_inplace(hc.psi_loc);
      {
        comm::ComputeRegion t(world_.stats());
        spmm(hc.psi_loc, hc.hp_b, partial);
      }
      row_comm_.allreduce_sum(partial.flat());
      {
        comm::ComputeRegion t(world_.stats());
        const index_t off = layer.combine() == HeadCombine::kConcat
                                ? static_cast<index_t>(hd) * k_head
                                : 0;
        for (index_t i = 0; i < z_r.rows(); ++i) {
          T* dst = z_r.data() + i * out + off;
          const T* src = partial.data() + i * k_head;
          for (index_t j = 0; j < k_head; ++j) dst[j] += head_scale * src[j];
        }
      }
    }
    partner_exchange(z_r, cj_.size(), c.z_b);
    DenseMatrix<T> h_out;
    {
      comm::ComputeRegion t(world_.stats());
      activate(layer.activation(), c.z_b, h_out, T(0.01));
    }
    return h_out;
  }

  DenseMatrix<T> layer_backward(const MultiHeadGatLayer<T>& layer,
                                const DistMultiHeadCache<T>& cache,
                                const DenseMatrix<T>& g_b, MultiHeadGrads<T>& grads) {
    AGNN_TRACE_SCOPE("dist_mh_gat.layer_backward", kPhase);
    const index_t k_head = layer.head_features();
    const index_t out = layer.out_features();
    const T head_scale = layer.combine() == HeadCombine::kAverage
                             ? T(1) / static_cast<T>(layer.num_heads())
                             : T(1);
    const DenseMatrix<T> g_r = partner_exchange(g_b, ri_.size());
    grads.heads.resize(static_cast<std::size_t>(layer.num_heads()));
    DenseMatrix<T> gamma_b(cj_.size(), layer.in_features(), T(0));

    for (int hd = 0; hd < layer.num_heads(); ++hd) {
      const auto& p = layer.head(hd);
      const auto& hc = cache.heads[static_cast<std::size_t>(hd)];
      const index_t off = layer.combine() == HeadCombine::kConcat
                              ? static_cast<index_t>(hd) * k_head
                              : 0;
      // Slice/scale the head's gradient, in both layouts.
      DenseMatrix<T> gh_r(g_r.rows(), k_head);
      for (index_t i = 0; i < g_r.rows(); ++i) {
        const T* src = g_r.data() + i * out + off;
        T* dst = gh_r.data() + i * k_head;
        for (index_t j = 0; j < k_head; ++j) dst[j] = head_scale * src[j];
      }

      CsrMatrix<T> d_psi;
      std::vector<T> dots_r(static_cast<std::size_t>(ri_.size()), T(0));
      {
        comm::ComputeRegion t(world_.stats());
        d_psi = sddmm(hc.psi_loc.with_values(T(1)), gh_r, hc.hp_b);
        for (index_t i = 0; i < hc.psi_loc.rows(); ++i) {
          T acc = T(0);
          for (index_t e = hc.psi_loc.row_begin(i); e < hc.psi_loc.row_end(i); ++e) {
            acc += hc.psi_loc.val_at(e) * d_psi.val_at(e);
          }
          dots_r[static_cast<std::size_t>(i)] = acc;
        }
      }
      row_comm_.allreduce_sum(std::span<T>(dots_r));

      std::vector<T> ds1_r, ds2_b;
      DenseMatrix<T> dhp_b;
      {
        comm::ComputeRegion t(world_.stats());
        CsrMatrix<T> d_c = d_psi;
        auto v = d_c.vals_mutable();
        const auto pre = hc.scores_pre_loc.vals();
        const T slope = layer.attention_slope();
        for (index_t i = 0; i < d_c.rows(); ++i) {
          const T dot = dots_r[static_cast<std::size_t>(i)];
          for (index_t e = d_c.row_begin(i); e < d_c.row_end(i); ++e) {
            const T de = hc.psi_loc.val_at(e) * (d_psi.val_at(e) - dot);
            const T c = pre[static_cast<std::size_t>(e)];
            v[static_cast<std::size_t>(e)] =
                de * a_loc_.val_at(e) * (c > T(0) ? T(1) : slope);
          }
        }
        ds1_r = sparse_row_sums(d_c);
        ds2_b = sparse_col_sums(d_c);
        dhp_b = spmm(hc.psi_loc.transposed(), gh_r);
      }
      row_comm_.allreduce_sum(std::span<T>(ds1_r));
      col_comm_.allreduce_sum(std::span<T>(ds2_b));
      col_comm_.allreduce_sum(dhp_b.flat());
      const std::vector<T> ds1_b = partner_exchange_vec(ds1_r, cj_.size());

      auto& hg = grads.heads[static_cast<std::size_t>(hd)];
      {
        comm::ComputeRegion t(world_.stats());
        const std::span<const T> a_all(p.a);
        const auto a1 = a_all.subspan(0, static_cast<std::size_t>(k_head));
        const auto a2 = a_all.subspan(static_cast<std::size_t>(k_head));
        add_outer_inplace(dhp_b, std::span<const T>(ds1_b), a1);
        add_outer_inplace(dhp_b, std::span<const T>(ds2_b), a2);
        hg.d_w = DenseMatrix<T>(p.w.rows(), p.w.cols(), T(0));
        hg.d_a.assign(static_cast<std::size_t>(2 * k_head), T(0));
        if (gi_ == 0) {
          hg.d_w = matmul_tn(cache.h_b, dhp_b);
          const std::vector<T> da1 = matvec_tn(hc.hp_b, std::span<const T>(ds1_b));
          const std::vector<T> da2 = matvec_tn(hc.hp_b, std::span<const T>(ds2_b));
          std::copy(da1.begin(), da1.end(), hg.d_a.begin());
          std::copy(da2.begin(), da2.end(), hg.d_a.begin() + k_head);
        }
        axpy(T(1), matmul_nt(dhp_b, p.w), gamma_b);
      }
      world_.allreduce_sum(hg.d_w.flat());
      world_.allreduce_sum(std::span<T>(hg.d_a));
    }
    return gamma_b;
  }

  comm::Communicator& world_;
  ProcessGrid grid_;
  int gi_, gj_;
  comm::Communicator row_comm_, col_comm_;
  index_t n_;
  BlockRange ri_, cj_;
  MultiHeadGat<T>& model_;
  CsrMatrix<T> a_loc_;
  Workspace<T> ws_;
  std::vector<DistMultiHeadCache<T>> caches_;
};

}  // namespace agnn::dist
