// The distribution-policy family (Section 6.3 generalized).
//
// The paper ships only the A-stationary 1.5D scheme on a square grid; the
// communication-avoiding family it belongs to (Tripathy, Yelick & Buluc)
// spans four members, all A-stationary, differing in how the process set
// p is factored over the adjacency blocks and how much the dense features
// are replicated:
//
//   1D    p x 1 row blocks; every layer allgathers the full H        O(n k)
//   1.5D  sqrt(p) x sqrt(p); features replicated down grid columns   O(n k / sqrt(p))
//   2D    r x c SUMMA-style; features owned (not replicated), panel
//         broadcasts pipelined against local SpMM                    O(n k (1/r + 1/c))
//   3D    r x c x d; adjacency columns depth-split, features
//         replicated d-fold, panel volume divided by d               O(n k (1/r + 1/(c d)))
//
// `GridShape` names one member plus its factorization; `grid_for` routes a
// rank count to a valid shape (or throws a structured error naming which
// distributions accept that count); `AGNN_DIST` / `AGNN_DIST_DEPTH` select
// the family member from the environment, mirroring AGNN_SCHEDULE.
#pragma once

#include <cmath>
#include <cstdlib>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

#include "dist/process_grid.hpp"

namespace agnn::dist {

enum class DistPolicy : int { k1D = 0, k1_5D, k2D, k3D };

inline const char* to_string(DistPolicy p) {
  switch (p) {
    case DistPolicy::k1D: return "1d";
    case DistPolicy::k1_5D: return "1.5d";
    case DistPolicy::k2D: return "2d";
    case DistPolicy::k3D: return "3d";
  }
  return "?";
}

inline std::optional<DistPolicy> parse_dist_policy(std::string_view s) {
  if (s == "1d" || s == "1D") return DistPolicy::k1D;
  if (s == "1.5d" || s == "1.5D" || s == "15d") return DistPolicy::k1_5D;
  if (s == "2d" || s == "2D" || s == "summa") return DistPolicy::k2D;
  if (s == "3d" || s == "3D") return DistPolicy::k3D;
  return std::nullopt;
}

// One concrete member of the family: p = rows * cols * depth ranks.
//   1D    rows = p, cols = depth = 1
//   1.5D  rows = cols = sqrt(p), depth = 1   (square grid)
//   2D    rows x cols, depth = 1
//   3D    rows x cols x depth, depth > 1 allowed
struct GridShape {
  DistPolicy policy = DistPolicy::k1_5D;
  int rows = 1;
  int cols = 1;
  int depth = 1;

  int size() const { return rows * cols * depth; }

  std::string describe() const {
    return std::string(to_string(policy)) + ":" + std::to_string(rows) + "x" +
           std::to_string(cols) + "x" + std::to_string(depth);
  }
};

// Most-balanced factorization r * c = p with r >= c (r is the SUMMA stage
// count; more stages means finer pipelining, so the larger factor goes to
// the row side). Always succeeds: primes get p x 1.
inline std::pair<int, int> balanced_factors(int p) {
  AGNN_ASSERT(p >= 1, "balanced_factors: need p >= 1");
  for (int c = static_cast<int>(std::sqrt(static_cast<double>(p))); c >= 1; --c) {
    if (p % c == 0) return {p / c, c};
  }
  return {p, 1};
}

inline bool is_perfect_square(int p) {
  const int s = static_cast<int>(std::sqrt(static_cast<double>(p)) + 0.5);
  return s * s == p;
}

// Which family members accept a given rank count. 1D/2D/3D accept any p
// (2D degenerates to r x 1 for primes; 3D picks the smallest prime factor
// as depth); only the square-grid 1.5D scheme is restricted.
inline bool policy_accepts(DistPolicy policy, int p) {
  if (p < 1) return false;
  return policy != DistPolicy::k1_5D || is_perfect_square(p);
}

inline int smallest_prime_factor(int p) {
  for (int f = 2; f * f <= p; ++f) {
    if (p % f == 0) return f;
  }
  return p;
}

// Route (policy, rank count) to a concrete shape. `depth_hint` (3D only)
// overrides the replication depth; it must divide p. Throws std::logic_error
// naming the distributions that do accept `p` when the request is invalid —
// the structured error demanded by the side_for relaxation.
inline GridShape grid_for(DistPolicy policy, int p, int depth_hint = 0) {
  AGNN_ASSERT(p >= 1, "grid_for: need at least one rank");
  GridShape g;
  g.policy = policy;
  switch (policy) {
    case DistPolicy::k1D:
      g.rows = p;
      return g;
    case DistPolicy::k1_5D: {
      if (!is_perfect_square(p)) {
        throw std::logic_error(
            "1.5d distribution needs a perfect-square rank count, got p=" +
            std::to_string(p) +
            "; valid alternatives for this p: AGNN_DIST=1d (any p), "
            "AGNN_DIST=2d (any p, r x c grid), AGNN_DIST=3d (any p, "
            "depth-replicated)");
      }
      const int q = static_cast<int>(std::sqrt(static_cast<double>(p)) + 0.5);
      g.rows = g.cols = q;
      return g;
    }
    case DistPolicy::k2D: {
      const auto [r, c] = balanced_factors(p);
      g.rows = r;
      g.cols = c;
      return g;
    }
    case DistPolicy::k3D: {
      int d = depth_hint;
      if (d <= 0) d = p > 1 ? smallest_prime_factor(p) : 1;
      if (d < 1 || p % d != 0) {
        throw std::logic_error("3d distribution: depth " + std::to_string(d) +
                               " does not divide p=" + std::to_string(p));
      }
      const auto [r, c] = balanced_factors(p / d);
      g.rows = r;
      g.cols = c;
      g.depth = d;
      return g;
    }
  }
  throw std::logic_error("grid_for: unknown distribution policy");
}

// The default member for a rank count: the paper's 1.5D scheme whenever the
// count is square, otherwise the 2D SUMMA grid (which accepts any p).
inline DistPolicy default_policy_for(int p) {
  return is_perfect_square(p) ? DistPolicy::k1_5D : DistPolicy::k2D;
}

// AGNN_DIST: "1d" | "1.5d" | "2d" | "3d" | "auto" (or unset). Unknown values
// throw (a typo silently falling back to a different distribution would make
// every downstream measurement lie). AGNN_DIST_DEPTH overrides the 3D depth.
inline DistPolicy policy_from_env(int p) {
  const char* v = std::getenv("AGNN_DIST");
  if (v == nullptr || v[0] == '\0' || std::string_view(v) == "auto") {
    return default_policy_for(p);
  }
  const auto parsed = parse_dist_policy(v);
  if (!parsed.has_value()) {
    throw std::logic_error(std::string("AGNN_DIST: unknown distribution '") + v +
                           "' (want 1d, 1.5d, 2d, 3d, or auto)");
  }
  return *parsed;
}

inline int depth_hint_from_env() {
  if (const char* v = std::getenv("AGNN_DIST_DEPTH")) {
    const long d = std::atol(v);
    if (d > 0) return static_cast<int>(d);
  }
  return 0;
}

inline GridShape grid_from_env(int p) {
  return grid_for(policy_from_env(p), p, depth_hint_from_env());
}

}  // namespace agnn::dist
