// SUMMA-style 2D / 3D distributed execution of the global formulations.
//
// The adjacency (and every per-edge sparse matrix) is distributed in static
// blocks over an r x c x d grid of p = r*c*d ranks: rank (i, j, l) owns the
// A block with rows R_i and columns C_j^l, where the C_j^l slices for
// l = 0..d-1 partition the column block C_j — an r x (c*d) partition of A,
// so depth replicates the *dense* operands, never the sparse matrix.
// Tall dense matrices live in three layouts:
//
//   * layout V ("owned"): rank (i, j, l) owns rows V_ij, the i-th sub-block
//     of C_j; the V blocks partition [0, n) and are replicated over depth.
//     Every layer consumes and produces this layout.
//   * layout C ("stationary input"): rows C_j^l, assembled per layer from
//     the owning ranks by a sequence of r panel broadcasts down the grid
//     column — the SUMMA stages.
//   * layout R ("output"): rows R_i, identical on the c*d ranks of the row
//     family after the partial sums of A_i,(j,l) H_(j,l) are allreduced.
//
// The SUMMA stages are *pipelined*: the panel for stage t+1 is posted as an
// ibroadcast (comm/communicator.hpp) while the local kernel for stage t
// runs, so the broadcast span of panel t+1 overlaps the "summa.stage_spmm"
// compute span of panel t in the trace. Volume and results are identical to
// the blocking schedule by construction (Pending::wait charges exactly what
// the blocking collective charges).
//
// Per layer and rank this moves O(nk/c + nk/r + k^2) words — minimized at
// r = c = sqrt(p) (d = 1), the classic 2D SpMM bound; dist/volume_model.hpp
// carries the exact per-rank accounting for the crossover sweeps.
//
// The step plumbing (layer loop, loss, gradient chaining) lives in the
// policy-parameterized EngineCoreBase; this file holds only the SUMMA layer
// math and layout exchanges.
#pragma once

#include <algorithm>
#include <cstring>
#include <optional>
#include <vector>

#include "dist/dist_policy.hpp"
#include "dist/engine_core.hpp"
#include "graph/graph.hpp"

namespace agnn::dist {

// Per-layer intermediates cached by the SUMMA forward pass.
template <typename T>
struct SummaLayerCache {
  DenseMatrix<T> h_v;         // H^l rows V_ij (the layer input)
  DenseMatrix<T> h_c;         // H^l rows C_j^l (panel-broadcast; VA/AGNN)
  DenseMatrix<T> h_r;         // H^l rows R_i (gathered; GIN/VA/AGNN)
  DenseMatrix<T> z_v;         // Z^l rows V_ij
  CsrMatrix<T> psi_loc;       // Psi block (i, (j, l))
  CsrMatrix<T> cos_loc;       // AGNN: cosine block (Psi before A-weighting)
  DenseMatrix<T> ph_r;        // (Psi H)_Ri; for GIN the full X = (A+(1+e)I)H
  // GIN:
  DenseMatrix<T> mlp_pre_r;     // (X W)_Ri pre-activation
  DenseMatrix<T> mlp_hidden_r;  // sigma_mlp(X W)_Ri
  // GAT:
  DenseMatrix<T> hp_v;          // H' = H W rows V_ij
  DenseMatrix<T> hp_c;          // H' rows C_j^l
  CsrMatrix<T> scores_pre_loc;  // C block (pre-LeakyReLU)
  std::vector<T> s1_r, s2_c;
};

template <typename T>
class DistSummaEngine
    : public EngineCoreBase<T, SummaLayerCache<T>, DistSummaEngine<T>> {
  using Base = EngineCoreBase<T, SummaLayerCache<T>, DistSummaEngine<T>>;
  friend Base;

 public:
  using LayerCache = SummaLayerCache<T>;
  static constexpr const char* kForwardSpan = "summa.forward";
  static constexpr const char* kTrainSpan = "summa.train_step";

  // Collective constructor: every rank passes the same global adjacency, a
  // model replica, and the same grid shape (rows*cols*depth == p). Block
  // extraction is local; initial data distribution is not charged, matching
  // the paper's accounting.
  DistSummaEngine(comm::Communicator& world, const CsrMatrix<T>& a_global,
                  GnnModel<T>& model, const GridShape& shape)
      : Base(world, a_global.rows(), model),
        shape_(shape),
        r_(shape.rows),
        c_(shape.cols),
        d_(shape.depth),
        gl_(world.rank() / (shape.rows * shape.cols)),
        gi_((world.rank() % (shape.rows * shape.cols)) / shape.cols),
        gj_(world.rank() % shape.cols),
        // Row family (fixed i): the c*d ranks whose partials sum to R_i.
        row_comm_(world.split(gi_, world.rank())),
        // Column family (fixed j): the r*d ranks that assemble C_j.
        colfam_comm_(world.split(gj_, world.rank())),
        // SUMMA slice (fixed j and l): the r ranks a panel broadcast spans;
        // keyed by grid row, so group rank == i and stage t's root is t.
        slice_comm_(world.split(gj_ * shape.depth + gl_, gi_)) {
    AGNN_ASSERT(a_global.rows() == a_global.cols(), "adjacency must be square");
    AGNN_ASSERT(shape.size() == world.size(),
                "grid shape must match the rank count");
    ri_ = block_range(this->n_, r_, gi_);
    cj_ = block_range(this->n_, c_, gj_);
    const BlockRange ds = block_range(cj_.size(), d_, gl_);
    cs_ = {cj_.begin + ds.begin, cj_.begin + ds.end};
    const BlockRange vs = block_range(cj_.size(), r_, gi_);
    v_ = {cj_.begin + vs.begin, cj_.begin + vs.end};
    a_loc_ = a_global.block(ri_.begin, ri_.end, cs_.begin, cs_.end);
    a_loc_t_ = a_loc_.transposed();
    build_stage_index();
  }

  // Convenience: derive the grid from a policy (AGNN_DIST=2d / 3d routing).
  DistSummaEngine(comm::Communicator& world, const CsrMatrix<T>& a_global,
                  GnnModel<T>& model, DistPolicy policy = DistPolicy::k2D,
                  int depth_hint = 0)
      : DistSummaEngine(world, a_global, model,
                        grid_for(policy, world.size(), depth_hint)) {}

  const GridShape& shape() const { return shape_; }
  const BlockRange& row_block() const { return ri_; }
  const BlockRange& col_block() const { return cs_; }
  const BlockRange& owned_block() const { return v_; }
  const CsrMatrix<T>& local_adjacency() const { return a_loc_; }

  // Reassemble a layout-V distributed matrix into the full global matrix.
  DenseMatrix<T> gather_output(const DenseMatrix<T>& local_v) {
    AGNN_ASSERT(local_v.rows() == v_.size(), "gather: not an owned-rows block");
    // The V blocks partition [0, n) once per depth slice; depth 0 holds one
    // copy each, and its ranks are world ranks 0..r*c-1 in (i, j) row-major
    // order. Gather those, then reorder: global row order is j-major
    // (V_ij sits inside C_j), while rank order is i-major.
    std::span<const T> contrib;
    if (gl_ == 0) contrib = local_v.flat();
    const std::vector<T> flat = this->world_.allgatherv(contrib);
    const index_t k = local_v.cols();
    AGNN_ASSERT(static_cast<index_t>(flat.size()) == this->n_ * k,
                "gather: unexpected total size");
    DenseMatrix<T> out(this->n_, k);
    std::size_t off = 0;
    for (int i2 = 0; i2 < r_; ++i2) {
      for (int j2 = 0; j2 < c_; ++j2) {
        const BlockRange cjb = block_range(this->n_, c_, j2);
        const BlockRange sub = block_range(cjb.size(), r_, i2);
        const std::size_t cnt = static_cast<std::size_t>(sub.size() * k);
        std::memcpy(out.data() + (cjb.begin + sub.begin) * k, flat.data() + off,
                    cnt * sizeof(T));
        off += cnt;
      }
    }
    return out;
  }

 private:
  // ---- engine-core policy hooks ---------------------------------------------

  BlockRange input_block() const { return v_; }
  // V blocks are replicated across depth slices: only depth 0 contributes to
  // sums over the global vertex set (loss, output gather).
  bool counts_in_loss() const { return gl_ == 0; }
  const DenseMatrix<T>& cached_z(const SummaLayerCache<T>& c) const {
    return c.z_v;
  }

  // ---- SUMMA stage machinery -------------------------------------------------

  // Stage panels: panel t is V_tj ∩ C_j^l — the slice of this rank's A
  // columns owned (in layout V) by grid row t. The panels partition C_j^l in
  // increasing t; panel_loc_ holds their C_j^l-relative begins (size r+1).
  void build_stage_index() {
    panel_loc_.assign(static_cast<std::size_t>(r_) + 1, 0);
    for (int t = 0; t <= r_; ++t) {
      const index_t vb =
          (t == r_) ? cj_.end
                    : cj_.begin + block_range(cj_.size(), r_, t).begin;
      panel_loc_[static_cast<std::size_t>(t)] =
          std::clamp(vb, cs_.begin, cs_.end) - cs_.begin;
    }
    // Per-row edge offsets per stage: stage t of row i covers the edge range
    // [stage_begin(i, t), stage_begin(i, t+1)), the columns inside panel t.
    const index_t rows = a_loc_.rows();
    stage_ptr_.assign(static_cast<std::size_t>(rows * (r_ + 1) + 1), 0);
    for (index_t i = 0; i < rows; ++i) {
      for (index_t e = a_loc_.row_begin(i) + 1; e < a_loc_.row_end(i); ++e) {
        AGNN_ASSERT(a_loc_.col_at(e - 1) < a_loc_.col_at(e),
                    "summa: block columns must be sorted ascending");
      }
      index_t e = a_loc_.row_begin(i);
      for (int t = 0; t <= r_; ++t) {
        while (e < a_loc_.row_end(i) &&
               a_loc_.col_at(e) < panel_loc_[static_cast<std::size_t>(t)]) {
          ++e;
        }
        stage_ptr_[static_cast<std::size_t>(i * (r_ + 1) + t)] = e;
      }
    }
  }

  index_t stage_begin(index_t i, index_t t) const {
    return stage_ptr_[static_cast<std::size_t>(i * (r_ + 1) + t)];
  }

  int rank_of(index_t i, index_t j, int l) const {
    return l * (r_ * c_) + static_cast<int>(i) * c_ + static_cast<int>(j);
  }

  // Post the broadcast of stage t's panel down the SUMMA slice. The root
  // (grid row t) owns the panel rows in layout V and seeds its own layout-C
  // rows first; everyone returns a waitable handle for the in-flight panel.
  comm::Communicator::Pending<T> post_stage(index_t t, DenseMatrix<T>& x_c,
                                            const DenseMatrix<T>& x_v) {
    const index_t k = x_c.cols();
    const index_t pb = panel_loc_[static_cast<std::size_t>(t)];
    const index_t pe = panel_loc_[static_cast<std::size_t>(t) + 1];
    T* dst = x_c.data() + pb * k;
    if (gi_ == static_cast<int>(t) && pe > pb) {
      const T* src = x_v.data() + ((cs_.begin + pb) - v_.begin) * k;
      std::memcpy(dst, src, static_cast<std::size_t>((pe - pb) * k) * sizeof(T));
    }
    return slice_comm_.ibroadcast(
        std::span<T>(dst, static_cast<std::size_t>((pe - pb) * k)),
        static_cast<int>(t));
  }

  // The pipelined SUMMA loop: while stage t's local kernel runs, stage t+1's
  // panel is already in flight — its ibroadcast span brackets the stage-t
  // compute span in the trace. compute_stage(t) may read x_c panel-t rows
  // only; the wait() that lands panel t+1 runs after compute_stage(t).
  template <typename StageFn>
  void pipelined_panels(DenseMatrix<T>& x_c, const DenseMatrix<T>& x_v,
                        StageFn&& compute_stage) {
    using Pending = comm::Communicator::Pending<T>;
    std::optional<Pending> cur(post_stage(0, x_c, x_v));
    std::optional<Pending> next;
    for (index_t t = 0; t < r_; ++t) {
      cur->wait();
      if (t + 1 < r_) next = post_stage(t + 1, x_c, x_v);
      compute_stage(t);
      cur = std::move(next);
      next.reset();
    }
  }

  // One SUMMA stage of the blockwise SpMM: accumulate the panel-t columns of
  // Psi against the just-landed panel rows of X into the R_i partial.
  void stage_spmm_accumulate(const CsrMatrix<T>& psi, const DenseMatrix<T>& x_c,
                             index_t t, DenseMatrix<T>& acc) {
    const index_t k = x_c.cols();
    for (index_t i = 0; i < psi.rows(); ++i) {
      T* out = acc.data() + i * k;
      for (index_t e = stage_begin(i, t); e < stage_begin(i, t + 1); ++e) {
        const T av = psi.val_at(e);
        const T* src = x_c.data() + psi.col_at(e) * k;
        for (index_t f = 0; f < k; ++f) out[f] += av * src[f];
      }
    }
  }

  static T dot_rows(const DenseMatrix<T>& x, index_t i, const DenseMatrix<T>& y,
                    index_t j) {
    const T* xi = x.data() + i * x.cols();
    const T* yj = y.data() + j * y.cols();
    T acc = T(0);
    for (index_t f = 0; f < x.cols(); ++f) acc += xi[f] * yj[f];
    return acc;
  }

  // ---- layout exchange helpers ----------------------------------------------

  // Assemble rows [range.begin, range.end) of a layout-V matrix via
  // one-sided gets from the owners in this rank's depth slice.
  void gather_rows(const DenseMatrix<T>& x_v, const BlockRange& range,
                   DenseMatrix<T>& out) {
    const index_t k = x_v.cols();
    out.resize(range.size(), k);
    auto win = this->world_.expose(std::span<const T>(x_v.flat()));
    index_t x = range.begin;
    while (x < range.end) {
      const index_t j2 = block_index_of(this->n_, c_, x);
      const BlockRange cjb = block_range(this->n_, c_, j2);
      const index_t i2 = block_index_of(cjb.size(), r_, x - cjb.begin);
      const BlockRange sub = block_range(cjb.size(), r_, i2);
      const index_t vbeg = cjb.begin + sub.begin;
      const index_t run_end = std::min(range.end, cjb.begin + sub.end);
      win.get(std::span<T>(out.data() + (x - range.begin) * k,
                           static_cast<std::size_t>((run_end - x) * k)),
              rank_of(i2, j2, gl_), static_cast<std::size_t>((x - vbeg) * k));
      x = run_end;
    }
    win.close();
  }

  void gather_rows_vec(const std::vector<T>& x_v, const BlockRange& range,
                       std::vector<T>& out) {
    out.resize(static_cast<std::size_t>(range.size()));
    auto win = this->world_.expose(std::span<const T>(x_v));
    index_t x = range.begin;
    while (x < range.end) {
      const index_t j2 = block_index_of(this->n_, c_, x);
      const BlockRange cjb = block_range(this->n_, c_, j2);
      const index_t i2 = block_index_of(cjb.size(), r_, x - cjb.begin);
      const BlockRange sub = block_range(cjb.size(), r_, i2);
      const index_t vbeg = cjb.begin + sub.begin;
      const index_t run_end = std::min(range.end, cjb.begin + sub.end);
      win.get(std::span<T>(out.data() + (x - range.begin),
                           static_cast<std::size_t>(run_end - x)),
              rank_of(i2, j2, gl_), static_cast<std::size_t>(x - vbeg));
      x = run_end;
    }
    win.close();
  }

  // Redistribute a layout-R matrix (identical across the row family) to the
  // owned V rows; the owner picked for each run shares this rank's (j, l).
  void scatter_rows(const DenseMatrix<T>& x_r, DenseMatrix<T>& out) {
    const index_t k = x_r.cols();
    out.resize(v_.size(), k);
    auto win = this->world_.expose(std::span<const T>(x_r.flat()));
    index_t x = v_.begin;
    while (x < v_.end) {
      const index_t i2 = block_index_of(this->n_, r_, x);
      const BlockRange rb = block_range(this->n_, r_, i2);
      const index_t run_end = std::min(v_.end, rb.end);
      win.get(std::span<T>(out.data() + (x - v_.begin) * k,
                           static_cast<std::size_t>((run_end - x) * k)),
              rank_of(i2, gj_, gl_), static_cast<std::size_t>((x - rb.begin) * k));
      x = run_end;
    }
    win.close();
  }

  void scatter_rows_vec(const std::vector<T>& x_r, std::vector<T>& out) {
    out.resize(static_cast<std::size_t>(v_.size()));
    auto win = this->world_.expose(std::span<const T>(x_r));
    index_t x = v_.begin;
    while (x < v_.end) {
      const index_t i2 = block_index_of(this->n_, r_, x);
      const BlockRange rb = block_range(this->n_, r_, i2);
      const index_t run_end = std::min(v_.end, rb.end);
      win.get(std::span<T>(out.data() + (x - v_.begin),
                           static_cast<std::size_t>(run_end - x)),
              rank_of(i2, gj_, gl_), static_cast<std::size_t>(x - rb.begin));
      x = run_end;
    }
    win.close();
  }

  // Sum backward contributions that land on this rank's A columns (rows
  // C_j^l) over the column family — across grid rows (partial sums) and
  // depth slices (disjoint C_j^l regions of C_j) at once — and slice the
  // owned V rows of the result.
  DenseMatrix<T> reduce_colfam(const DenseMatrix<T>& x_cs) {
    const index_t k = x_cs.cols();
    DenseMatrix<T> full(cj_.size(), k, T(0));
    if (x_cs.rows() > 0) {
      std::memcpy(full.data() + (cs_.begin - cj_.begin) * k, x_cs.data(),
                  static_cast<std::size_t>(x_cs.rows() * k) * sizeof(T));
    }
    colfam_comm_.allreduce_sum(full.flat());
    return full.slice_rows(v_.begin - cj_.begin, v_.end - cj_.begin);
  }

  std::vector<T> reduce_colfam_vec(const std::vector<T>& x_cs) {
    std::vector<T> full(static_cast<std::size_t>(cj_.size()), T(0));
    std::copy(x_cs.begin(), x_cs.end(),
              full.begin() + static_cast<std::size_t>(cs_.begin - cj_.begin));
    colfam_comm_.allreduce_sum(std::span<T>(full));
    return {full.begin() + static_cast<std::size_t>(v_.begin - cj_.begin),
            full.begin() + static_cast<std::size_t>(v_.end - cj_.begin)};
  }

  // ---- per-layer forward -----------------------------------------------------

  DenseMatrix<T> layer_forward(const Layer<T>& layer, const DenseMatrix<T>& h_v,
                               SummaLayerCache<T>* cache) {
    AGNN_TRACE_SCOPE("summa.layer_forward", kPhase);
    typename Base::LayerParams params = this->broadcast_params(layer);
    const DenseMatrix<T>& w = params.w;
    const std::vector<T>& a = params.a;
    const DenseMatrix<T>& w2 = params.w2;

    SummaLayerCache<T> scratch;
    SummaLayerCache<T>& c = cache ? *cache : scratch;
    const index_t kin = h_v.cols();

    switch (layer.kind()) {
      case ModelKind::kGCN: {
        c.psi_loc = a_loc_;
        c.h_c.resize(cs_.size(), kin);
        c.ph_r.resize(ri_.size(), kin);
        c.ph_r.set_zero();
        pipelined_panels(c.h_c, h_v, [&](index_t t) {
          comm::ComputeRegion cr(this->world_.stats());
          AGNN_TRACE_SCOPE("summa.stage_spmm", kKernel);
          stage_spmm_accumulate(c.psi_loc, c.h_c, t, c.ph_r);
        });
        break;
      }
      case ModelKind::kGIN: {
        // Plain-sum aggregation over A; the (1+eps) self term needs the
        // R_i rows of H, gathered from the owners.
        gather_rows(h_v, ri_, c.h_r);
        c.psi_loc = a_loc_;
        c.h_c.resize(cs_.size(), kin);
        c.ph_r.resize(ri_.size(), kin);
        c.ph_r.set_zero();
        pipelined_panels(c.h_c, h_v, [&](index_t t) {
          comm::ComputeRegion cr(this->world_.stats());
          AGNN_TRACE_SCOPE("summa.stage_spmm", kKernel);
          stage_spmm_accumulate(c.psi_loc, c.h_c, t, c.ph_r);
        });
        break;
      }
      case ModelKind::kVA: {
        gather_rows(h_v, ri_, c.h_r);
        c.psi_loc = a_loc_;
        c.h_c.resize(cs_.size(), kin);
        c.ph_r.resize(ri_.size(), kin);
        c.ph_r.set_zero();
        pipelined_panels(c.h_c, h_v, [&](index_t t) {
          comm::ComputeRegion cr(this->world_.stats());
          AGNN_TRACE_SCOPE("summa.stage_spmm", kKernel);
          // Psi = A ⊙ (H H^T) sampled on the stage's edges, then the
          // stage SpMM — both touch only the just-landed panel rows.
          auto pv = c.psi_loc.vals_mutable();
          for (index_t i = 0; i < a_loc_.rows(); ++i) {
            for (index_t e = stage_begin(i, t); e < stage_begin(i, t + 1); ++e) {
              pv[static_cast<std::size_t>(e)] =
                  a_loc_.val_at(e) *
                  dot_rows(c.h_r, i, c.h_c, a_loc_.col_at(e));
            }
          }
          stage_spmm_accumulate(c.psi_loc, c.h_c, t, c.ph_r);
        });
        break;
      }
      case ModelKind::kAGNN: {
        gather_rows(h_v, ri_, c.h_r);
        c.psi_loc = a_loc_;
        c.cos_loc = a_loc_;
        c.h_c.resize(cs_.size(), kin);
        c.ph_r.resize(ri_.size(), kin);
        c.ph_r.set_zero();
        auto nr = this->ws_.acquire_vec(ri_.size());
        auto nc = this->ws_.acquire_vec(cs_.size());
        inv_row_norms(c.h_r, *nr);
        pipelined_panels(c.h_c, h_v, [&](index_t t) {
          comm::ComputeRegion cr(this->world_.stats());
          AGNN_TRACE_SCOPE("summa.stage_spmm", kKernel);
          // Column inverse norms become available as each panel lands.
          const index_t pb = panel_loc_[static_cast<std::size_t>(t)];
          const index_t pe = panel_loc_[static_cast<std::size_t>(t) + 1];
          for (index_t x = pb; x < pe; ++x) {
            const T nx = std::sqrt(dot_rows(c.h_c, x, c.h_c, x));
            (*nc)[static_cast<std::size_t>(x)] = nx > T(0) ? T(1) / nx : T(0);
          }
          auto cv = c.cos_loc.vals_mutable();
          auto pv = c.psi_loc.vals_mutable();
          for (index_t i = 0; i < a_loc_.rows(); ++i) {
            const T ni = (*nr)[static_cast<std::size_t>(i)];
            for (index_t e = stage_begin(i, t); e < stage_begin(i, t + 1); ++e) {
              const index_t col = a_loc_.col_at(e);
              const T cos = dot_rows(c.h_r, i, c.h_c, col) * ni *
                            (*nc)[static_cast<std::size_t>(col)];
              cv[static_cast<std::size_t>(e)] = cos;
              pv[static_cast<std::size_t>(e)] = cos * a_loc_.val_at(e);
            }
          }
          stage_spmm_accumulate(c.psi_loc, c.h_c, t, c.ph_r);
        });
        break;
      }
      case ModelKind::kGAT: {
        const index_t k_out = layer.out_features();
        const std::span<const T> a_all(a);
        const auto a1 = a_all.subspan(0, static_cast<std::size_t>(k_out));
        const auto a2 = a_all.subspan(static_cast<std::size_t>(k_out));
        std::vector<T> s1_v;
        {
          comm::ComputeRegion cr(this->world_.stats());
          matmul(h_v, w, c.hp_v);
          matvec(c.hp_v, a1, s1_v);
        }
        gather_rows_vec(s1_v, ri_, c.s1_r);
        c.scores_pre_loc = a_loc_;
        c.psi_loc = a_loc_;
        c.hp_c.resize(cs_.size(), k_out);
        c.s2_c.assign(static_cast<std::size_t>(cs_.size()), T(0));
        const T slope = layer.attention_slope();
        // The pipelined stages fill the raw E block; the softmax and the
        // aggregation SpMM need the full row, so they run after the loop.
        pipelined_panels(c.hp_c, c.hp_v, [&](index_t t) {
          comm::ComputeRegion cr(this->world_.stats());
          AGNN_TRACE_SCOPE("summa.stage_scores", kKernel);
          const index_t pb = panel_loc_[static_cast<std::size_t>(t)];
          const index_t pe = panel_loc_[static_cast<std::size_t>(t) + 1];
          for (index_t x = pb; x < pe; ++x) {
            const T* row = c.hp_c.data() + x * k_out;
            T acc = T(0);
            for (index_t f = 0; f < k_out; ++f) acc += row[f] * a2[static_cast<std::size_t>(f)];
            c.s2_c[static_cast<std::size_t>(x)] = acc;
          }
          auto pre = c.scores_pre_loc.vals_mutable();
          auto ev = c.psi_loc.vals_mutable();
          for (index_t i = 0; i < a_loc_.rows(); ++i) {
            const T s1i = c.s1_r[static_cast<std::size_t>(i)];
            for (index_t e = stage_begin(i, t); e < stage_begin(i, t + 1); ++e) {
              const T cv = s1i + c.s2_c[static_cast<std::size_t>(a_loc_.col_at(e))];
              pre[static_cast<std::size_t>(e)] = cv;
              ev[static_cast<std::size_t>(e)] =
                  a_loc_.val_at(e) * (cv > T(0) ? cv : slope * cv);
            }
          }
        });
        dist_row_softmax_inplace(c.psi_loc, row_comm_, this->ws_);
        {
          comm::ComputeRegion cr(this->world_.stats());
          spmm(c.psi_loc, c.hp_c, c.ph_r);
        }
        break;
      }
    }

    // Partial sums from every (column, depth) block of the grid row reduce
    // to the full (Psi H)_Ri on each member of the row family.
    row_comm_.allreduce_sum(c.ph_r.flat());
    const DenseMatrix<T>* z_r = &c.ph_r;
    auto z_r_h = this->ws_.acquire_dense(ri_.size(), layer.out_features());
    {
      comm::ComputeRegion cr(this->world_.stats());
      switch (layer.kind()) {
        case ModelKind::kGAT:
          break;
        case ModelKind::kGIN:
          // X = (A H) + (1+eps) H, then the per-row MLP.
          axpy(T(1) + layer.gin_epsilon(), c.h_r, c.ph_r);
          matmul(c.ph_r, w, c.mlp_pre_r);
          activate(layer.mlp_activation(), c.mlp_pre_r, c.mlp_hidden_r, T(0.01));
          matmul(c.mlp_hidden_r, w2, *z_r_h);
          z_r = &*z_r_h;
          break;
        default:
          matmul(c.ph_r, w, *z_r_h);
          z_r = &*z_r_h;
      }
    }
    // Redistribute Z from layout R to the owned V rows for the next layer.
    scatter_rows(*z_r, c.z_v);
    DenseMatrix<T> h_out;
    {
      comm::ComputeRegion cr(this->world_.stats());
      activate(layer.activation(), c.z_v, h_out, T(0.01));
    }
    if (cache) c.h_v = h_v;
    return h_out;
  }

  // ---- per-layer backward ----------------------------------------------------

  DenseMatrix<T> layer_backward(const Layer<T>& layer,
                                const SummaLayerCache<T>& cache,
                                const DenseMatrix<T>& g_v, LayerGrads<T>& grads) {
    AGNN_TRACE_SCOPE("summa.layer_backward", kPhase);
    const DenseMatrix<T>& w = layer.weights();
    switch (layer.kind()) {
      case ModelKind::kGCN: return backward_gcn(layer, cache, g_v, grads, w);
      case ModelKind::kVA: return backward_va(layer, cache, g_v, grads, w);
      case ModelKind::kAGNN: return backward_agnn(layer, cache, g_v, grads, w);
      case ModelKind::kGAT: return backward_gat(layer, cache, g_v, grads, w);
      case ModelKind::kGIN: return backward_gin(layer, cache, g_v, grads, w);
    }
    AGNN_ASSERT(false, "unknown model kind");
    return {};
  }

  DenseMatrix<T> backward_gcn(const Layer<T>&, const SummaLayerCache<T>& cache,
                              const DenseMatrix<T>& g_v, LayerGrads<T>& grads,
                              const DenseMatrix<T>& w) {
    DenseMatrix<T> g_r;
    gather_rows(g_v, ri_, g_r);
    grads.d_w = weight_grad_r(cache.ph_r, g_r);
    DenseMatrix<T> gamma_cs;
    {
      comm::ComputeRegion cr(this->world_.stats());
      const DenseMatrix<T> m_r = matmul_nt(g_r, w);
      gamma_cs = spmm(a_loc_t_, m_r);
    }
    return reduce_colfam(gamma_cs);
  }

  // GIN: dW2 = hidden^T G, dPre = (G W2^T) ⊙ sigma_mlp'(pre),
  // dW = X^T dPre, dX = dPre W^T, Gamma = A^T dX + (1+eps) dX.
  DenseMatrix<T> backward_gin(const Layer<T>& layer,
                              const SummaLayerCache<T>& cache,
                              const DenseMatrix<T>& g_v, LayerGrads<T>& grads,
                              const DenseMatrix<T>& w) {
    DenseMatrix<T> g_r;
    gather_rows(g_v, ri_, g_r);
    grads.d_w2 = weight_grad_r(cache.mlp_hidden_r, g_r);
    DenseMatrix<T> dx_r, gamma_cs;
    {
      comm::ComputeRegion cr(this->world_.stats());
      const DenseMatrix<T> d_hidden = matmul_nt(g_r, layer.weights2());
      const DenseMatrix<T> d_pre = activation_backward(
          layer.mlp_activation(), cache.mlp_pre_r, d_hidden, T(0.01));
      // dW from the single-copy corner of the R replication group.
      DenseMatrix<T> dw(w.rows(), w.cols(), T(0));
      if (gj_ == 0 && gl_ == 0) dw = matmul_tn(cache.ph_r, d_pre);
      grads.d_w = std::move(dw);
      dx_r = matmul_nt(d_pre, w);
      gamma_cs = spmm(a_loc_t_, dx_r);
    }
    this->world_.allreduce_sum(grads.d_w.flat());
    DenseMatrix<T> gamma_v = reduce_colfam(gamma_cs);
    DenseMatrix<T> dx_v;
    scatter_rows(dx_r, dx_v);
    comm::ComputeRegion cr(this->world_.stats());
    axpy(T(1) + layer.gin_epsilon(), dx_v, gamma_v);
    return gamma_v;
  }

  DenseMatrix<T> backward_va(const Layer<T>&, const SummaLayerCache<T>& cache,
                             const DenseMatrix<T>& g_v, LayerGrads<T>& grads,
                             const DenseMatrix<T>& w) {
    DenseMatrix<T> g_r;
    gather_rows(g_v, ri_, g_r);
    grads.d_w = weight_grad_r(cache.ph_r, g_r);
    DenseMatrix<T> nh_r, gamma2_cs;
    {
      comm::ComputeRegion cr(this->world_.stats());
      // N block = A ⊙ (M H^T): the backward SDDMM on the stationary pattern.
      const DenseMatrix<T> m_r = matmul_nt(g_r, w);
      const CsrMatrix<T> n_loc = sddmm(a_loc_, m_r, cache.h_c);
      nh_r = spmm(n_loc, cache.h_c);
      gamma2_cs = spmm(n_loc.transposed(), cache.h_r);
      spmm_accumulate(cache.psi_loc.transposed(), m_r, gamma2_cs);
    }
    row_comm_.allreduce_sum(nh_r.flat());
    DenseMatrix<T> gamma_v = reduce_colfam(gamma2_cs);
    DenseMatrix<T> nh_v;
    scatter_rows(nh_r, nh_v);
    comm::ComputeRegion cr(this->world_.stats());
    axpy(T(1), nh_v, gamma_v);
    return gamma_v;
  }

  DenseMatrix<T> backward_agnn(const Layer<T>&, const SummaLayerCache<T>& cache,
                               const DenseMatrix<T>& g_v, LayerGrads<T>& grads,
                               const DenseMatrix<T>& w) {
    DenseMatrix<T> g_r;
    gather_rows(g_v, ri_, g_r);
    grads.d_w = weight_grad_r(cache.ph_r, g_r);

    DenseMatrix<T> dh_r, dth_cs, gamma_agg_cs;
    std::vector<T> rs_r, cs_cs;
    {
      comm::ComputeRegion cr(this->world_.stats());
      const DenseMatrix<T> m_r = matmul_nt(g_r, w);
      const CsrMatrix<T> d_loc = sddmm(a_loc_, m_r, cache.h_c);
      const CsrMatrix<T> dc = hadamard_same_pattern(d_loc, cache.cos_loc);
      rs_r = sparse_row_sums(dc);
      cs_cs = sparse_col_sums(dc);
      dh_r = spmm(d_loc, unit_rows(cache.h_c));
      dth_cs = spmm(d_loc.transposed(), unit_rows(cache.h_r));
      gamma_agg_cs = spmm(cache.psi_loc.transposed(), m_r);
    }
    row_comm_.allreduce_sum(std::span<T>(rs_r));
    row_comm_.allreduce_sum(dh_r.flat());
    const std::vector<T> cs_v = reduce_colfam_vec(cs_cs);
    const DenseMatrix<T> dth_v = reduce_colfam(dth_cs);
    const DenseMatrix<T> gamma_agg_v = reduce_colfam(gamma_agg_cs);
    std::vector<T> rs_v;
    scatter_rows_vec(rs_r, rs_v);
    DenseMatrix<T> sum_v;
    scatter_rows(dh_r, sum_v);

    comm::ComputeRegion cr(this->world_.stats());
    axpy(T(1), dth_v, sum_v);
    const std::vector<T> norms_v = row_l2_norms(cache.h_v);
    const DenseMatrix<T> hhat_v = unit_rows(cache.h_v);
    const index_t k = sum_v.cols();
    for (index_t i = 0; i < sum_v.rows(); ++i) {
      const T ni = norms_v[static_cast<std::size_t>(i)];
      T* row = sum_v.data() + i * k;
      if (ni <= T(0)) {
        for (index_t j = 0; j < k; ++j) row[j] = T(0);
        continue;
      }
      const T coef =
          rs_v[static_cast<std::size_t>(i)] + cs_v[static_cast<std::size_t>(i)];
      const T* hh = hhat_v.data() + i * k;
      const T inv = T(1) / ni;
      for (index_t j = 0; j < k; ++j) row[j] = (row[j] - coef * hh[j]) * inv;
    }
    axpy(T(1), gamma_agg_v, sum_v);
    return sum_v;
  }

  DenseMatrix<T> backward_gat(const Layer<T>& layer,
                              const SummaLayerCache<T>& cache,
                              const DenseMatrix<T>& g_v, LayerGrads<T>& grads,
                              const DenseMatrix<T>& w) {
    DenseMatrix<T> g_r;
    gather_rows(g_v, ri_, g_r);
    const index_t k_out = layer.out_features();
    const std::span<const T> a_all(layer.attention_params());
    const auto a1 = a_all.subspan(0, static_cast<std::size_t>(k_out));
    const auto a2 = a_all.subspan(static_cast<std::size_t>(k_out));

    CsrMatrix<T> d_psi;
    std::vector<T> dots_r(static_cast<std::size_t>(ri_.size()), T(0));
    {
      comm::ComputeRegion cr(this->world_.stats());
      d_psi = sddmm(cache.psi_loc.with_values(T(1)), g_r, cache.hp_c);
      for (index_t i = 0; i < cache.psi_loc.rows(); ++i) {
        T acc = T(0);
        for (index_t e = cache.psi_loc.row_begin(i);
             e < cache.psi_loc.row_end(i); ++e) {
          acc += cache.psi_loc.val_at(e) * d_psi.val_at(e);
        }
        dots_r[static_cast<std::size_t>(i)] = acc;
      }
    }
    // The softmax Jacobian's per-row dot spans the whole row family.
    row_comm_.allreduce_sum(std::span<T>(dots_r));

    std::vector<T> ds1_r, ds2_cs;
    DenseMatrix<T> dhp_cs;
    {
      comm::ComputeRegion cr(this->world_.stats());
      CsrMatrix<T> d_c = d_psi;
      auto v = d_c.vals_mutable();
      const auto pre = cache.scores_pre_loc.vals();
      const T slope = layer.attention_slope();
      for (index_t i = 0; i < d_c.rows(); ++i) {
        const T dot = dots_r[static_cast<std::size_t>(i)];
        for (index_t e = d_c.row_begin(i); e < d_c.row_end(i); ++e) {
          const T de = cache.psi_loc.val_at(e) * (d_psi.val_at(e) - dot);
          const T c = pre[static_cast<std::size_t>(e)];
          v[static_cast<std::size_t>(e)] =
              de * a_loc_.val_at(e) * (c > T(0) ? T(1) : slope);
        }
      }
      ds1_r = sparse_row_sums(d_c);
      ds2_cs = sparse_col_sums(d_c);
      dhp_cs = spmm(cache.psi_loc.transposed(), g_r);
    }
    row_comm_.allreduce_sum(std::span<T>(ds1_r));
    const std::vector<T> ds2_v = reduce_colfam_vec(ds2_cs);
    DenseMatrix<T> dhp_v = reduce_colfam(dhp_cs);
    std::vector<T> ds1_v;
    scatter_rows_vec(ds1_r, ds1_v);

    {
      comm::ComputeRegion cr(this->world_.stats());
      add_outer_inplace(dhp_v, std::span<const T>(ds1_v), a1);
      add_outer_inplace(dhp_v, std::span<const T>(ds2_v), a2);
    }

    // Parameter gradients: layout-V contributions are replicated across
    // depth, so only depth 0 contributes before the global allreduce.
    DenseMatrix<T> dw(w.rows(), w.cols(), T(0));
    std::vector<T> da(static_cast<std::size_t>(2 * k_out), T(0));
    if (gl_ == 0) {
      comm::ComputeRegion cr(this->world_.stats());
      dw = matmul_tn(cache.h_v, dhp_v);
      const std::vector<T> da1 = matvec_tn(cache.hp_v, std::span<const T>(ds1_v));
      const std::vector<T> da2 = matvec_tn(cache.hp_v, std::span<const T>(ds2_v));
      std::copy(da1.begin(), da1.end(), da.begin());
      std::copy(da2.begin(), da2.end(), da.begin() + k_out);
    }
    this->world_.allreduce_sum(dw.flat());
    this->world_.allreduce_sum(std::span<T>(da));
    grads.d_w = std::move(dw);
    grads.d_a = std::move(da);

    comm::ComputeRegion cr(this->world_.stats());
    return matmul_nt(dhp_v, w);
  }

  // dW = sum_i (PH)_Ri^T G_Ri: layout-R values are identical across the row
  // family, so only its (j=0, l=0) member contributes, then allreduce.
  DenseMatrix<T> weight_grad_r(const DenseMatrix<T>& x_r,
                               const DenseMatrix<T>& g_r) {
    DenseMatrix<T> dw(x_r.cols(), g_r.cols(), T(0));
    if (gj_ == 0 && gl_ == 0) {
      comm::ComputeRegion cr(this->world_.stats());
      dw = matmul_tn(x_r, g_r);
    }
    this->world_.allreduce_sum(dw.flat());
    return dw;
  }

  GridShape shape_;
  int r_, c_, d_;
  int gl_, gi_, gj_;
  comm::Communicator row_comm_, colfam_comm_, slice_comm_;
  BlockRange ri_;  // A row block R_i
  BlockRange cj_;  // column block C_j (all depth slices)
  BlockRange cs_;  // this rank's A column slice C_j^l
  BlockRange v_;   // owned feature rows V_ij
  CsrMatrix<T> a_loc_;
  CsrMatrix<T> a_loc_t_;
  std::vector<index_t> panel_loc_;  // C_j^l-relative panel begins, size r+1
  std::vector<index_t> stage_ptr_;  // per-row per-stage edge offsets
};

}  // namespace agnn::dist
