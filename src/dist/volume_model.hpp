// Closed-form per-layer communication-volume predictions (Section 7), exact
// to the byte for the shipped engines.
//
// The global 1.5D engine moves, per rank and per layer (q = sqrt(p), block
// height b = ceil(n/q), element count in words):
//
//   GCN   k^2        + 3 b k                  (bcast W; allreduce; redistribute)
//   VA    k^2        + 4 b k                  (+ the partner feature exchange)
//   AGNN  k^2        + 4 b k
//   GIN   2 k^2      + 4 b k                  (second MLP matrix broadcast)
//   GAT   k^2 + 2 k  + 3 b k + 5 b            (s-vector exchange + distributed
//                                              softmax max/sum reductions)
//
// — all O(n k / sqrt(p) + k^2), the Section 7.1 bound. The local
// (ghost-exchange) engine's volume depends on the partition: a rank sends
// one feature row per ghost entry it owns across all other ranks' ghost
// lists, which `predicted_local_forward_bytes` computes from the graph.
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/layer.hpp"
#include "dist/process_grid.hpp"

namespace agnn::dist {

// Max-per-rank words moved by ONE forward layer of the global engine.
// Exact when n is divisible by q; an upper bound otherwise (uses the
// largest block for every term).
inline double predicted_global_forward_words(ModelKind kind, index_t n, index_t k,
                                             int ranks) {
  const auto q = static_cast<index_t>(ProcessGrid::side_for(ranks));
  if (q == 1) return 0.0;  // single rank: every collective is free
  const double b = std::ceil(static_cast<double>(n) / static_cast<double>(q));
  const double kd = static_cast<double>(k);
  switch (kind) {
    case ModelKind::kGCN: return kd * kd + 3 * b * kd;
    case ModelKind::kVA: return kd * kd + 4 * b * kd;
    case ModelKind::kAGNN: return kd * kd + 4 * b * kd;
    case ModelKind::kGIN: return 2 * kd * kd + 4 * b * kd;
    case ModelKind::kGAT: return kd * kd + 2 * kd + 3 * b * kd + 5 * b;
  }
  return 0.0;
}

// The Section 7.1 asymptotic bound c*(n k / sqrt(p) + k^2) with c = 1,
// for normalized measured/bound ratios.
inline double section7_bound_words(index_t n, index_t k, int ranks) {
  const double q = std::sqrt(static_cast<double>(ranks));
  return static_cast<double>(n) * static_cast<double>(k) / q +
         static_cast<double>(k) * static_cast<double>(k);
}

// Max-per-rank bytes for one forward layer of the LOCAL (ghost-exchange)
// engine: for each rank, the feature rows it must serve to every other
// rank's ghost list, plus the parameter broadcast. Computed exactly from
// the 1D partition of `adj`.
template <typename T>
double predicted_local_forward_bytes(const CsrMatrix<T>& adj, int ranks, index_t k,
                                     bool has_attention_vector = false,
                                     bool has_second_matrix = false) {
  const index_t n = adj.rows();
  // ghosts[r] = sorted distinct remote neighbors of rank r's owned rows.
  std::vector<std::vector<index_t>> ghosts(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    const auto range = block_range(n, ranks, r);
    std::vector<index_t>& g = ghosts[static_cast<std::size_t>(r)];
    for (index_t i = range.begin; i < range.end; ++i) {
      for (index_t e = adj.row_begin(i); e < adj.row_end(i); ++e) {
        const index_t c = adj.col_at(e);
        if (c < range.begin || c >= range.end) g.push_back(c);
      }
    }
    std::sort(g.begin(), g.end());
    g.erase(std::unique(g.begin(), g.end()), g.end());
  }
  // served[o] = total ghost entries owned by rank o across all ranks.
  std::vector<double> served(static_cast<std::size_t>(ranks), 0.0);
  for (int r = 0; r < ranks; ++r) {
    for (const index_t id : ghosts[static_cast<std::size_t>(r)]) {
      // Owner lookup by block arithmetic.
      int lo = 0, hi = ranks - 1;
      while (lo < hi) {
        const int mid = (lo + hi) / 2;
        if (block_range(n, ranks, mid).end <= id) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      served[static_cast<std::size_t>(lo)] += 1.0;
    }
  }
  double max_words = 0.0;
  const double kd = static_cast<double>(k);
  double param_words = kd * kd;  // W broadcast, charged to every rank
  if (has_attention_vector) param_words += 2 * kd;
  if (has_second_matrix) param_words += kd * kd;
  for (int r = 0; r < ranks; ++r) {
    max_words = std::max(
        max_words, served[static_cast<std::size_t>(r)] * kd +
                       (ranks > 1 ? param_words : 0.0));
  }
  return max_words * sizeof(T);
}

}  // namespace agnn::dist
