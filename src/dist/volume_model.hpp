// Closed-form per-layer communication-volume predictions (Section 7), exact
// to the byte for the shipped engines.
//
// The global 1.5D engine moves, per rank and per layer (q = sqrt(p), block
// height b = ceil(n/q), element count in words):
//
//   GCN   k^2        + 3 b k                  (bcast W; allreduce; redistribute)
//   VA    k^2        + 4 b k                  (+ the partner feature exchange)
//   AGNN  k^2        + 4 b k
//   GIN   2 k^2      + 4 b k                  (second MLP matrix broadcast)
//   GAT   k^2 + 2 k  + 3 b k + 5 b            (s-vector exchange + distributed
//                                              softmax max/sum reductions)
//
// — all O(n k / sqrt(p) + k^2), the Section 7.1 bound. The local
// (ghost-exchange) engine's volume depends on the partition: a rank sends
// one feature row per ghost entry it owns across all other ranks' ghost
// lists, which `predicted_local_forward_bytes` computes from the graph.
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/layer.hpp"
#include "dist/dist_policy.hpp"
#include "dist/process_grid.hpp"

namespace agnn::dist {

namespace detail_volume {

// Parameter-broadcast words per layer (W, and for GAT the attention vector,
// for GIN the second MLP matrix), charged to every rank when p > 1.
inline double param_words(ModelKind kind, index_t k) {
  const double kd = static_cast<double>(k);
  switch (kind) {
    case ModelKind::kGIN: return 2 * kd * kd;
    case ModelKind::kGAT: return kd * kd + 2 * kd;
    default: return kd * kd;
  }
}

inline index_t overlap(const BlockRange& a, const BlockRange& b) {
  return std::max<index_t>(0, std::min(a.end, b.end) - std::max(a.begin, b.begin));
}

}  // namespace detail_volume

// Max-per-rank words moved by ONE forward layer of the global engine.
// Exact when n is divisible by q; an upper bound otherwise (uses the
// largest block for every term).
inline double predicted_global_forward_words(ModelKind kind, index_t n, index_t k,
                                             int ranks) {
  const auto q = static_cast<index_t>(ProcessGrid::side_for(ranks));
  if (q == 1) return 0.0;  // single rank: every collective is free
  const double b = std::ceil(static_cast<double>(n) / static_cast<double>(q));
  const double kd = static_cast<double>(k);
  switch (kind) {
    case ModelKind::kGCN: return kd * kd + 3 * b * kd;
    case ModelKind::kVA: return kd * kd + 4 * b * kd;
    case ModelKind::kAGNN: return kd * kd + 4 * b * kd;
    case ModelKind::kGIN: return 2 * kd * kd + 4 * b * kd;
    case ModelKind::kGAT: return kd * kd + 2 * kd + 3 * b * kd + 5 * b;
  }
  return 0.0;
}

// Max-per-rank words moved by ONE forward layer of the 1D row-block engine:
// the parameter broadcast plus the allgather of everyone else's feature
// rows. Exact for every (n, p) — allgatherv charges (total - own) words, so
// the max lands on a rank owning a small block.
inline double predicted_1d_forward_words(index_t n, index_t k, int ranks,
                                         ModelKind kind) {
  if (ranks == 1) return 0.0;
  double max_words = 0.0;
  for (int r = 0; r < ranks; ++r) {
    const BlockRange vr = block_range(n, ranks, r);
    const double words =
        detail_volume::param_words(kind, k) +
        static_cast<double>(n - vr.size()) * static_cast<double>(k);
    max_words = std::max(max_words, words);
  }
  return max_words;
}

// Max-per-rank words moved by ONE forward layer of the SUMMA engine on an
// r x c x d grid, exact for every (n, shape): replays the engine's protocol
// per rank — the owner-charged gathers/scatters, the pipelined panel
// broadcasts (volume-identical to their blocking forms), and the row-family
// allreduce — and takes the max. Graph-independent: every term depends only
// on the block geometry.
inline double predicted_summa_forward_words(ModelKind kind, index_t n, index_t k,
                                            const GridShape& shape) {
  const int r = shape.rows, c = shape.cols, d = shape.depth;
  if (shape.size() == 1) return 0.0;
  const double kd = static_cast<double>(k);
  double max_words = 0.0;
  for (int gi = 0; gi < r; ++gi) {
    for (int gj = 0; gj < c; ++gj) {
      for (int gl = 0; gl < d; ++gl) {
        const BlockRange ri = block_range(n, r, gi);
        const BlockRange cj = block_range(n, c, gj);
        const BlockRange ds = block_range(cj.size(), d, gl);
        const BlockRange cs{cj.begin + ds.begin, cj.begin + ds.end};
        const BlockRange vs = block_range(cj.size(), r, gi);
        const BlockRange v{cj.begin + vs.begin, cj.begin + vs.end};
        const double own_in_ri =
            static_cast<double>(detail_volume::overlap(v, ri));
        // Rows served from this rank's V block to the layout-R gathers of
        // the c requesters per grid row, minus its own (free) fetches.
        const double gather_served =
            static_cast<double>(c) * static_cast<double>(v.size()) - own_in_ri;
        // Rows served redistributing layout R back to the owned V rows.
        const double scatter_served =
            static_cast<double>(detail_volume::overlap(cj, ri)) - own_in_ri;
        double words = detail_volume::param_words(kind, k);
        if (kind == ModelKind::kGIN || kind == ModelKind::kVA ||
            kind == ModelKind::kAGNN) {
          words += gather_served * kd;  // H rows R_i
        }
        if (kind == ModelKind::kGAT) {
          words += gather_served;  // the s1 score vector, width 1
        }
        if (r > 1) {
          // The SUMMA panel broadcasts assemble all of C_j^l on each slice.
          words += static_cast<double>(cs.size()) * kd;
        }
        if (c * d > 1) {
          words += 2.0 * static_cast<double>(ri.size()) * kd;  // row allreduce
          if (kind == ModelKind::kGAT) {
            words += 4.0 * static_cast<double>(ri.size());  // softmax max+sum
          }
        }
        words += scatter_served * kd;
        max_words = std::max(max_words, words);
      }
    }
  }
  return max_words;
}

// Max-per-rank words for ONE forward layer under any member of the
// distribution-policy family. 1D and SUMMA replays are exact for every
// (n, p); the 1.5D closed form is exact when sqrt(p) divides n.
inline double predicted_policy_forward_words(DistPolicy policy, ModelKind kind,
                                             index_t n, index_t k, int ranks,
                                             int depth_hint = 0) {
  switch (policy) {
    case DistPolicy::k1D:
      return predicted_1d_forward_words(n, k, ranks, kind);
    case DistPolicy::k1_5D:
      return predicted_global_forward_words(kind, n, k, ranks);
    case DistPolicy::k2D:
    case DistPolicy::k3D:
      return predicted_summa_forward_words(kind, n, k,
                                           grid_for(policy, ranks, depth_hint));
  }
  return 0.0;
}

// The Section 7.1 asymptotic bound c*(n k / sqrt(p) + k^2) with c = 1,
// for normalized measured/bound ratios.
inline double section7_bound_words(index_t n, index_t k, int ranks) {
  const double q = std::sqrt(static_cast<double>(ranks));
  return static_cast<double>(n) * static_cast<double>(k) / q +
         static_cast<double>(k) * static_cast<double>(k);
}

// Closed-form asymptotic per-rank bound for each family member, the
// policy-generalized Section 7.1 term (words; constant factor 1):
//   1D    n k            (the full feature matrix every layer)
//   1.5D  n k / sqrt(p) + k^2
//   2D    n k (1/r + 1/c) + k^2     (panel broadcasts + row allreduce)
//   3D    n k (1/r + 1/(c d)) + k^2 (depth shrinks the stationary slice)
inline double policy_bound_words(DistPolicy policy, index_t n, index_t k,
                                 int ranks, int depth_hint = 0) {
  const double nd = static_cast<double>(n);
  const double kd = static_cast<double>(k);
  switch (policy) {
    case DistPolicy::k1D: return nd * kd;
    case DistPolicy::k1_5D: return section7_bound_words(n, k, ranks);
    case DistPolicy::k2D:
    case DistPolicy::k3D: {
      const GridShape s = grid_for(policy, ranks, depth_hint);
      return nd * kd *
                 (1.0 / static_cast<double>(s.rows) +
                  1.0 / static_cast<double>(s.cols * s.depth)) +
             kd * kd;
    }
  }
  return 0.0;
}

// Max-per-rank bytes for one forward layer of the LOCAL (ghost-exchange)
// engine: for each rank, the feature rows it must serve to every other
// rank's ghost list, plus the parameter broadcast. Computed exactly from
// the 1D partition of `adj`.
template <typename T>
double predicted_local_forward_bytes(const CsrMatrix<T>& adj, int ranks, index_t k,
                                     bool has_attention_vector = false,
                                     bool has_second_matrix = false) {
  const index_t n = adj.rows();
  // ghosts[r] = sorted distinct remote neighbors of rank r's owned rows.
  std::vector<std::vector<index_t>> ghosts(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    const auto range = block_range(n, ranks, r);
    std::vector<index_t>& g = ghosts[static_cast<std::size_t>(r)];
    for (index_t i = range.begin; i < range.end; ++i) {
      for (index_t e = adj.row_begin(i); e < adj.row_end(i); ++e) {
        const index_t c = adj.col_at(e);
        if (c < range.begin || c >= range.end) g.push_back(c);
      }
    }
    std::sort(g.begin(), g.end());
    g.erase(std::unique(g.begin(), g.end()), g.end());
  }
  // served[o] = total ghost entries owned by rank o across all ranks.
  std::vector<double> served(static_cast<std::size_t>(ranks), 0.0);
  for (int r = 0; r < ranks; ++r) {
    for (const index_t id : ghosts[static_cast<std::size_t>(r)]) {
      // Owner lookup by block arithmetic.
      int lo = 0, hi = ranks - 1;
      while (lo < hi) {
        const int mid = (lo + hi) / 2;
        if (block_range(n, ranks, mid).end <= id) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      served[static_cast<std::size_t>(lo)] += 1.0;
    }
  }
  double max_words = 0.0;
  const double kd = static_cast<double>(k);
  double param_words = kd * kd;  // W broadcast, charged to every rank
  if (has_attention_vector) param_words += 2 * kd;
  if (has_second_matrix) param_words += kd * kd;
  for (int r = 0; r < ranks; ++r) {
    max_words = std::max(
        max_words, served[static_cast<std::size_t>(r)] * kd +
                       (ranks > 1 ? param_words : 0.0));
  }
  return max_words * sizeof(T);
}

}  // namespace agnn::dist
